module lrp

go 1.22
