// Webserver: the paper's WWW-server demonstration (Figure 5). An HTTP
// server with eight clients runs at full tilt while a SYN flood hammers a
// dummy port on the same machine. Under 4.4BSD the server freezes ("an
// HTTP server based on 4.4 BSD freezes completely under these
// conditions"); under SOFT-LRP the flood's SYNs die cheaply at the dummy
// listener's disabled NI channel and the site stays up.
package main

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func main() {
	const synRate = 10_000 // the rate the paper calls out for the freeze
	for _, arch := range []core.Arch{core.ArchBSD, core.ArchSoftLRP} {
		fmt.Printf("=== %s under a %d SYN/s flood ===\n", arch, synRate)
		run(arch, synRate)
		fmt.Println()
	}
}

func run(arch core.Arch, synRate int64) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	srvAddr := pkt.IP(10, 0, 0, 2)
	cliAddr := pkt.IP(10, 0, 0, 1)
	atkAddr := pkt.IP(10, 0, 0, 3)

	mkCosts := func() *core.CostModel {
		cm := core.DefaultCosts()
		cm.TimeWaitDur = 500 * sim.Millisecond // the paper's setting
		return cm
	}
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: srvAddr, Arch: arch, Costs: mkCosts()})
	client := core.NewHost(eng, nw, core.Config{Name: "client", Addr: cliAddr, Arch: arch, Costs: mkCosts()})
	defer server.Shutdown()
	defer client.Shutdown()

	httpd := &app.HTTPServer{Host: server, Port: 80, Backlog: 32, DocSize: 1300}
	httpd.Start()
	app.StartDummyServer(server, 99, 5)

	clients := make([]*app.HTTPClient, 8)
	for i := range clients {
		clients[i] = &app.HTTPClient{
			Host: client, ServerAddr: srvAddr, ServerPort: 80,
			Name: fmt.Sprintf("mosaic-%d", i),
		}
		clients[i].Start()
	}

	flood := &app.SYNFlood{Net: nw, Src: atkAddr, Dst: srvAddr, DPort: 99, Rate: synRate, Rng: sim.NewRand(7)}

	// One second without the flood, then four seconds under it.
	eng.RunFor(sim.Second)
	before := completed(clients)
	fmt.Printf("  clean:   %d transfers in 1s\n", before)

	flood.Start()
	eng.RunFor(4 * sim.Second)
	during := completed(clients) - before
	st := server.Stats()
	fmt.Printf("  flooded: %.0f transfers/s over 4s (SYNs discarded at disabled channel: %d)\n",
		float64(during)/4, st.DisabledDrops)
	if during == 0 {
		fmt.Println("  -> server frozen: no HTTP requests answered (receiver livelock)")
	}
}

func completed(clients []*app.HTTPClient) (n uint64) {
	for _, c := range clients {
		n += c.Completed.Total()
	}
	return
}
