// Mediastream: the paper's multimedia motivation (§2.2) — "Scheduling
// anomalies, such as those related to bursty data, can be ill-afforded by
// systems that run multimedia applications." A 30 fps frame stream plays
// on a host that also absorbs a bursty 6,000 pkts/s blast at another
// socket. Watch the frame-delivery jitter: BSD's eager batch processing
// delays frames; LRP's traffic separation barely notices.
package main

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func main() {
	fmt.Println("30fps media stream vs 6k pkts/s background blast (10s simulated)")
	fmt.Printf("%-12s %16s %14s %14s\n", "system", "mean jitter µs", "p99 µs", "max µs")
	for _, arch := range []core.Arch{core.ArchBSD, core.ArchSoftLRP, core.ArchNILRP} {
		mean, p99, worst := run(arch)
		fmt.Printf("%-12s %16.0f %14d %14d\n", arch, mean, p99, worst)
	}
}

func run(arch core.Arch) (mean float64, p99, worst int64) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	srvAddr := pkt.IP(10, 0, 0, 2)
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: srvAddr, Arch: arch})
	defer server.Shutdown()

	app.Spinner(server, "background-work")

	player := &app.MediaPlayer{Host: server, Port: 5004, PerFrameCompute: 500}
	player.Start()
	stream := &app.MediaSource{
		Net: nw, Src: pkt.IP(10, 0, 0, 1), Dst: srvAddr,
		SPort: 5004, DPort: 5004,
	}
	stream.Start()

	sink := &app.BlastSink{Host: server, Port: 9, PerPktCompute: 10}
	sink.Start()
	blast := &app.BlastSource{
		Net: nw, Src: pkt.IP(10, 0, 0, 3), Dst: srvAddr,
		SPort: 9000, DPort: 9, Size: 14, Rate: 6000,
		Poisson: true, Rng: sim.NewRand(11),
	}
	blast.Start()

	eng.RunFor(10 * sim.Second)
	return player.Jitter.Mean(), player.Jitter.Percentile(99), player.Jitter.Max()
}
