// Overload: the paper's headline demonstration (Figure 3), live. A blast
// source floods a UDP server at increasing rates; watch 4.4BSD collapse
// into receiver livelock while NI-LRP sheds load on the adaptor and stays
// flat at its maximum — and see WHERE each kernel drops packets.
package main

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func main() {
	archs := []core.Arch{core.ArchBSD, core.ArchNILRP, core.ArchSoftLRP, core.ArchEarlyDemux}
	rates := []int64{4000, 8000, 12000, 16000, 20000}

	fmt.Println("UDP blast overload: delivered pkts/s (and drop locations) by architecture")
	for _, arch := range archs {
		fmt.Printf("\n=== %s ===\n", arch)
		for _, rate := range rates {
			delivered, st := run(arch, rate)
			fmt.Printf("offered %6d -> delivered %6.0f   drops: ipq=%d chan=%d early=%d sockq=%d\n",
				rate, delivered, st.IPQDrops, st.ChannelDrops, st.EarlyDrops, st.SockQDrops)
		}
	}
}

func run(arch core.Arch, rate int64) (float64, core.Stats) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	srvAddr, cliAddr := pkt.IP(10, 0, 0, 2), pkt.IP(10, 0, 0, 1)
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: srvAddr, Arch: arch})
	defer server.Shutdown()

	sink := &app.BlastSink{
		Host:           server,
		Port:           7,
		PerPktCompute:  10,
		DisturbPenalty: server.CM.RxDisturbPenalty,
	}
	sink.Start()
	src := &app.BlastSource{
		Net: nw, Src: cliAddr, Dst: srvAddr,
		SPort: 9000, DPort: 7, Size: 14,
		Rate: rate, Poisson: true, Rng: sim.NewRand(uint64(rate)),
	}
	src.Start()

	eng.RunFor(500 * sim.Millisecond) // warm up
	sink.Received.Reset(eng.Now())
	eng.RunFor(2 * sim.Second)
	return sink.Received.Rate(eng.Now()), server.Stats()
}
