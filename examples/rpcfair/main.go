// Rpcfair: the paper's fairness demonstration (Table 2). A memory-bound
// worker competes with two network-busy RPC servers on one machine. BSD's
// mis-accounting ("CPU time spent in interrupt context ... is charged to
// the application that happens to execute when a packet arrives") and
// eager processing slow the worker down; LRP charges receive processing
// to the receivers and keeps the worker near its fair 1/3 share.
package main

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func main() {
	fmt.Println("Worker vs two RPC servers (per-request compute 120µs, ideal worker share 33%)")
	for _, arch := range []core.Arch{core.ArchBSD, core.ArchSoftLRP, core.ArchNILRP} {
		elapsed, share, rate, intr := run(arch)
		fmt.Printf("%-12s worker finished in %5.2fs  share %4.1f%%  servers %4.0f RPC/s  intr charged to worker %dms\n",
			arch, elapsed, share*100, rate, intr/1000)
	}
}

func run(arch core.Arch) (elapsedSec, share, rate float64, intrCharged int64) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	srvAddr, cliAddr := pkt.IP(10, 0, 0, 2), pkt.IP(10, 0, 0, 1)
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: srvAddr, Arch: arch})
	client := core.NewHost(eng, nw, core.Config{Name: "client", Addr: cliAddr, Arch: arch})
	defer server.Shutdown()
	defer client.Shutdown()

	worker := &app.WorkerServer{
		Host: server, Port: 1000,
		ComputeTime:  2 * sim.Second,
		CachePenalty: 40,
	}
	worker.Start()
	worker.Proc.IntrPenalty = server.CM.RxDisturbPenalty

	pen := server.CM.RxDisturbPenalty
	srv1 := &app.RPCServer{Host: server, Port: 1001, PerCallCompute: 120, CachePenalty: 30, DisturbPenalty: pen}
	srv2 := &app.RPCServer{Host: server, Port: 1002, PerCallCompute: 120, CachePenalty: 30, DisturbPenalty: pen}
	srv1.Start()
	srv2.Start()

	for i, port := range []uint16{1001, 1002} {
		c := &app.RPCClient{
			Host: client, ServerAddr: srvAddr, ServerPort: port,
			Outstanding: 8, Interval: 950, Rng: sim.NewRand(uint64(i) + 9),
		}
		c.Start()
	}
	wc := &app.RPCClient{Host: client, ServerAddr: srvAddr, ServerPort: 1000, Outstanding: 1, Rng: sim.NewRand(42)}
	wc.Start()

	for !worker.Done && eng.Now() < 60*sim.Second {
		eng.RunFor(100 * sim.Millisecond)
	}
	el := worker.Elapsed()
	r := 0.0
	if el > 0 {
		r = float64(srv1.Served.Total()+srv2.Served.Total()) / (float64(el) / 1e6)
	}
	return float64(el) / 1e6, worker.CPUShare(), r, worker.Proc.IntrCharged
}
