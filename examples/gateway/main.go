// Gateway: the paper's §3.5 IP-forwarding daemon. A gateway host forwards
// transit traffic while also running a local application. Under BSD,
// forwarding happens at software-interrupt priority: the local app is
// starved and nothing can control it. Under LRP the forwarding daemon is
// an ordinary process — renice it and forwarding yields to local work
// ("its priority controls resources spent on IP forwarding").
package main

import (
	"fmt"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func main() {
	fmt.Println("Transit flood (12k pkts/s) through a gateway that also runs a local app")
	fmt.Printf("%-10s %-14s %12s %18s\n", "system", "ipfwd nice", "forwarded/s", "local app CPU %")
	for _, cfg := range []struct {
		arch core.Arch
		nice int
	}{
		{core.ArchBSD, 0},
		{core.ArchSoftLRP, 0},
		{core.ArchSoftLRP, 10},
		{core.ArchSoftLRP, 20},
	} {
		fwd, appShare := run(cfg.arch, cfg.nice)
		fmt.Printf("%-10s %-14d %12.0f %17.0f%%\n", cfg.arch, cfg.nice, fwd, appShare*100)
	}
}

func run(arch core.Arch, nice int) (fwdRate, appShare float64) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	gwAddr := pkt.IP(10, 0, 0, 9)
	dstAddr := pkt.IP(10, 0, 0, 2)
	gw := core.NewHost(eng, nw, core.Config{Name: "gw", Addr: gwAddr, Arch: arch})
	dst := core.NewHost(eng, nw, core.Config{Name: "dst", Addr: dstAddr, Arch: arch})
	defer gw.Shutdown()
	defer dst.Shutdown()
	gw.EnableForwarding(nice)

	app := gw.K.Spawn("local-app", 0, func(p *kernel.Proc) {
		for {
			p.Compute(sim.Millisecond)
		}
	})

	// Transit traffic arrives at the gateway's NIC addressed elsewhere.
	nic, _ := nw.LookupNIC(gwAddr)
	rng := sim.NewRand(3)
	var pump func()
	var n uint16
	pump = func() {
		n++
		nic.Rx(pkt.UDPPacket(pkt.IP(172, 16, 0, 1), dstAddr, 99, 7, n, 16, make([]byte, 14), true))
		eng.After(rng.Jitter(83, 0.3), pump)
	}
	eng.At(0, pump)

	const dur = 2 * sim.Second
	eng.RunFor(dur)
	return float64(gw.ForwardStats().Forwarded) / (float64(dur) / 1e6),
		float64(app.UTime) / float64(dur)
}
