// Quickstart: build a two-host simulated network, run a UDP echo exchange
// and a TCP request/response on an LRP (soft demux) kernel, and print
// what happened — the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func main() {
	// One discrete-event engine drives everything.
	eng := sim.NewEngine()
	nw := netsim.New(eng)

	clientAddr := pkt.IP(10, 0, 0, 1)
	serverAddr := pkt.IP(10, 0, 0, 2)

	// Two hosts running the SOFT-LRP network subsystem (works with any
	// NIC: the demultiplexing happens in the host interrupt handler).
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: serverAddr, Arch: core.ArchSoftLRP})
	client := core.NewHost(eng, nw, core.Config{Name: "client", Addr: clientAddr, Arch: core.ArchSoftLRP})
	defer server.Shutdown()
	defer client.Shutdown()

	// A UDP echo server process. Under LRP, the datagram's IP+UDP
	// processing happens inside RecvFrom, in this process's context,
	// charged to this process.
	server.K.Spawn("udp-echo", 0, func(p *kernel.Proc) {
		sock := server.NewUDPSocket(p)
		if err := server.BindUDP(sock, 7); err != nil {
			log.Fatal(err)
		}
		for {
			d, err := server.RecvFrom(p, sock)
			if err != nil {
				return
			}
			_ = server.SendTo(p, sock, d.Src, d.SPort, d.Data)
		}
	})

	// A tiny TCP server: accept one connection, read the request, reply.
	server.K.Spawn("tcp-srv", 0, func(p *kernel.Proc) {
		l := server.NewTCPSocket(p)
		_ = server.BindTCP(l, 80)
		_ = server.Listen(p, l, 5)
		cs, err := server.Accept(p, l)
		if err != nil {
			return
		}
		req, _ := server.RecvStream(p, cs, 1024)
		fmt.Printf("[%8dµs] tcp-srv: got %q\n", p.Now(), req)
		_, _ = server.SendStream(p, cs, []byte("hello from LRP over TCP"))
		server.CloseTCP(p, cs)
	})

	// The client process: UDP echo round trip, then a TCP exchange.
	client.K.Spawn("client", 0, func(p *kernel.Proc) {
		us := client.NewUDPSocket(p)
		_ = client.BindUDP(us, 0)
		start := p.Now()
		_ = client.SendTo(p, us, serverAddr, 7, []byte("ping"))
		d, err := client.RecvFrom(p, us)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8dµs] client: UDP echo %q, RTT %dµs\n", p.Now(), d.Data, p.Now()-start)

		ts := client.NewTCPSocket(p)
		if err := client.ConnectTCP(p, ts, serverAddr, 80); err != nil {
			log.Fatal(err)
		}
		_, _ = client.SendStream(p, ts, []byte("GET /"))
		for {
			data, err := client.RecvStream(p, ts, 1024)
			if err != nil || data == nil {
				break
			}
			fmt.Printf("[%8dµs] client: TCP reply %q\n", p.Now(), data)
		}
		client.CloseTCP(p, ts)
	})

	// Run one simulated second.
	eng.RunFor(sim.Second)

	st := server.Stats()
	fmt.Printf("\nserver after 1s simulated: %d NI channels allocated (max %d), drops: %+v\n",
		st.Channels, st.MaxChannels, st)
}
