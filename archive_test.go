package lrp_test

// Guards the checked-in archives: results/lrpbench_full.{txt,json}
// (the canonical eight-experiment suite),
// results/lrpbench_faults.{txt,json} (the fault robustness curves),
// results/lrpbench_smp.{txt,json} (the multi-core scaling sweep), and
// results/lrpbench_wan.{txt,json} (the internet-scale topology sweep).
// The JSON must decode under the current schema and satisfy every
// shape assertion, and — because results are a pure function of config
// and seed — an in-process re-run must reproduce both files
// byte-for-byte. Regenerate with
//
//	go run ./cmd/lrpbench -out results/lrpbench_full.json all > results/lrpbench_full.txt
//	go run ./cmd/lrpbench -out results/lrpbench_faults.json faults > results/lrpbench_faults.txt
//	go run ./cmd/lrpbench -out results/lrpbench_smp.json smp > results/lrpbench_smp.txt
//	go run ./cmd/lrpbench -out results/lrpbench_wan.json wan > results/lrpbench_wan.txt
//
// whenever a change legitimately moves the numbers.

import (
	"bytes"
	"os"
	"testing"

	"lrp/internal/exp"
	"lrp/internal/race"
	"lrp/internal/render"
	"lrp/internal/results"
)

// loadArchive decodes one checked-in suite.
func loadArchive(t *testing.T, path string) *results.Suite {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := results.Decode(f)
	if err != nil {
		t.Fatalf("%s no longer decodes: %v", path, err)
	}
	if s.Quick {
		t.Errorf("%s was generated with -quick; regenerate at full length", path)
	}
	return s
}

func TestFullRunArchive(t *testing.T) {
	s := loadArchive(t, "results/lrpbench_full.json")
	if len(s.Experiments) != len(results.SuiteExperiments) {
		t.Errorf("archived suite has %d experiments, want %d", len(s.Experiments), len(results.SuiteExperiments))
	}
	for _, v := range results.CheckSuite(s) {
		t.Errorf("archived full run violates a paper-shape assertion: %s", v)
	}
}

func TestFaultsArchive(t *testing.T) {
	s := loadArchive(t, "results/lrpbench_faults.json")
	e := s.Find("faults")
	if e == nil {
		t.Fatal("archived faults suite carries no faults experiment")
	}
	for _, v := range results.CheckFaults(e.Faults) {
		t.Errorf("archived faults run violates a shape assertion: %s", v)
	}
}

func TestSMPArchive(t *testing.T) {
	s := loadArchive(t, "results/lrpbench_smp.json")
	e := s.Find("smp")
	if e == nil {
		t.Fatal("archived smp suite carries no smp experiment")
	}
	for _, v := range results.CheckSMP(e.SMP) {
		t.Errorf("archived smp run violates a shape assertion: %s", v)
	}
}

func TestWANArchive(t *testing.T) {
	s := loadArchive(t, "results/lrpbench_wan.json")
	e := s.Find("wan")
	if e == nil {
		t.Fatal("archived wan suite carries no wan experiment")
	}
	for _, v := range results.CheckWAN(e.WAN) {
		t.Errorf("archived wan run violates a shape assertion: %s", v)
	}
}

// rerunArchive reruns the named experiments at full length in-process
// and compares the rendered text and encoded JSON against the
// checked-in archive pair, byte for byte. This is the determinism
// contract at its strongest: any stray source of nondeterminism or any
// unintended change to simulation behavior — however small — shows up
// as a diff against an archive produced by a different process on a
// different day.
func rerunArchive(t *testing.T, jsonPath, txtPath string, names ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-length re-run; skipped in -short")
	}
	if race.Enabled {
		t.Skip("full-length re-run; too slow under the race detector")
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	wantTxt, err := os.ReadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := exp.RunSuite(exp.Options{Seed: 1, Parallel: 8}, names...)
	if err != nil {
		t.Fatal(err)
	}
	var gotJSON, gotTxt bytes.Buffer
	if err := suite.Encode(&gotJSON); err != nil {
		t.Fatal(err)
	}
	render.Suite(&gotTxt, suite, render.Options{})
	if !bytes.Equal(gotJSON.Bytes(), wantJSON) {
		t.Errorf("re-run JSON differs from %s (%d vs %d bytes); if the change is intended, regenerate the archives",
			jsonPath, gotJSON.Len(), len(wantJSON))
	}
	if !bytes.Equal(gotTxt.Bytes(), wantTxt) {
		t.Errorf("re-run text differs from %s (%d vs %d bytes); if the change is intended, regenerate the archives",
			txtPath, gotTxt.Len(), len(wantTxt))
	}
}

func TestFullRunArchiveByteIdentical(t *testing.T) {
	rerunArchive(t, "results/lrpbench_full.json", "results/lrpbench_full.txt")
}

func TestFaultsArchiveByteIdentical(t *testing.T) {
	rerunArchive(t, "results/lrpbench_faults.json", "results/lrpbench_faults.txt", "faults")
}

func TestSMPArchiveByteIdentical(t *testing.T) {
	rerunArchive(t, "results/lrpbench_smp.json", "results/lrpbench_smp.txt", "smp")
}

func TestWANArchiveByteIdentical(t *testing.T) {
	rerunArchive(t, "results/lrpbench_wan.json", "results/lrpbench_wan.txt", "wan")
}
