package lrp_test

// Guards the checked-in full-run archive: results/lrpbench_full.json
// must decode under the current schema and satisfy every paper-shape
// assertion. Regenerate it with
//
//	go run ./cmd/lrpbench -out results/lrpbench_full.json all > results/lrpbench_full.txt
//
// whenever a change legitimately moves the numbers.

import (
	"os"
	"testing"

	"lrp/internal/results"
)

func TestFullRunArchive(t *testing.T) {
	f, err := os.Open("results/lrpbench_full.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := results.Decode(f)
	if err != nil {
		t.Fatalf("archived suite no longer decodes: %v", err)
	}
	if s.Quick {
		t.Error("archived suite was generated with -quick; regenerate at full length")
	}
	if len(s.Experiments) != len(results.SuiteExperiments) {
		t.Errorf("archived suite has %d experiments, want %d", len(s.Experiments), len(results.SuiteExperiments))
	}
	for _, v := range results.CheckSuite(s) {
		t.Errorf("archived full run violates a paper-shape assertion: %s", v)
	}
}
