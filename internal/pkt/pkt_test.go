package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	srcAddr = IP(10, 0, 0, 1)
	dstAddr = IP(10, 0, 0, 2)
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x01, 0x02, 0x03}
	// Manually: 0x0102 + 0x0300 = 0x0402 -> ^0x0402.
	if got := Checksum(b); got != ^uint16(0x0402) {
		t.Fatalf("odd-length checksum = %#x", got)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS:      0x10,
		TotalLen: 84,
		ID:       0x1234,
		Flags:    FlagDontFragment,
		TTL:      64,
		Proto:    ProtoUDP,
		Src:      srcAddr,
		Dst:      dstAddr,
	}
	b := make([]byte, 84)
	EncodeIPv4(b, &h)
	got, hlen, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if hlen != IPv4HeaderLen {
		t.Fatalf("hlen = %d", hlen)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv4FragmentFields(t *testing.T) {
	h := IPv4Header{TotalLen: 40, ID: 9, Flags: FlagMoreFrags, FragOff: 185, TTL: 5, Proto: ProtoUDP, Src: srcAddr, Dst: dstAddr}
	b := make([]byte, 40)
	EncodeIPv4(b, &h)
	got, _, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MoreFragments() || !got.IsFragment() || got.FragOff != 185 {
		t.Fatalf("fragment fields lost: %+v", got)
	}
	h2 := IPv4Header{TotalLen: 40, FragOff: 100, TTL: 5, Proto: ProtoUDP, Src: srcAddr, Dst: dstAddr}
	b2 := make([]byte, 40)
	EncodeIPv4(b2, &h2)
	got2, _, _ := DecodeIPv4(b2)
	if got2.MoreFragments() {
		t.Fatal("MF should be clear")
	}
	if !got2.IsFragment() {
		t.Fatal("nonzero offset should count as fragment")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	h := IPv4Header{TotalLen: 20, TTL: 1, Proto: ProtoUDP, Src: srcAddr, Dst: dstAddr}
	b := make([]byte, 20)
	EncodeIPv4(b, &h)

	if _, _, err := DecodeIPv4(b[:10]); err != ErrTruncated {
		t.Fatalf("short buffer: %v", err)
	}
	bad := append([]byte(nil), b...)
	bad[0] = 0x65 // version 6
	if _, _, err := DecodeIPv4(bad); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
	bad = append([]byte(nil), b...)
	bad[0] = 0x44 // IHL 4 (<5)
	if _, _, err := DecodeIPv4(bad); err != ErrBadHeaderLen {
		t.Fatalf("bad IHL: %v", err)
	}
	bad = append([]byte(nil), b...)
	bad[8] ^= 0xff // corrupt TTL -> checksum fails
	if _, _, err := DecodeIPv4(bad); err != ErrBadChecksum {
		t.Fatalf("corrupt header: %v", err)
	}
	// TotalLen larger than buffer.
	h.TotalLen = 100
	EncodeIPv4(b, &h)
	if _, _, err := DecodeIPv4(b); err != ErrTruncated {
		t.Fatalf("overlong TotalLen: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("hello, LRP")
	for _, ck := range []bool{true, false} {
		p := UDPPacket(srcAddr, dstAddr, 1234, 80, 7, 64, payload, ck)
		ih, hlen, err := DecodeIPv4(p)
		if err != nil {
			t.Fatal(err)
		}
		if ih.Proto != ProtoUDP || ih.TotalLen != uint16(len(p)) {
			t.Fatalf("bad IP header %+v", ih)
		}
		uh, err := DecodeUDP(p[hlen:], ih.Src, ih.Dst)
		if err != nil {
			t.Fatalf("checksum=%v: %v", ck, err)
		}
		if uh.SrcPort != 1234 || uh.DstPort != 80 {
			t.Fatalf("ports lost: %+v", uh)
		}
		got := p[hlen+UDPHeaderLen : hlen+int(uh.Length)]
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %q", got)
		}
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	p := UDPPacket(srcAddr, dstAddr, 1, 2, 0, 64, []byte("abcdef"), true)
	c := Corrupt(p)
	ih, hlen, err := DecodeIPv4(c)
	if err != nil {
		t.Fatalf("IP header should still parse: %v", err)
	}
	if _, err := DecodeUDP(c[hlen:], ih.Src, ih.Dst); err != ErrBadChecksum {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestUDPNoChecksumSkipsValidation(t *testing.T) {
	p := UDPPacket(srcAddr, dstAddr, 1, 2, 0, 64, []byte("abcdef"), false)
	c := Corrupt(p)
	ih, hlen, _ := DecodeIPv4(c)
	if _, err := DecodeUDP(c[hlen:], ih.Src, ih.Dst); err != nil {
		t.Fatalf("checksum disabled should accept corruption: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHeader{
		SrcPort: 5000, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPSyn | TCPAck, Window: 32 * 1024, MSS: 1460,
	}
	p := TCPSegment(srcAddr, dstAddr, &h, 42, 64, nil)
	ih, hlen, err := DecodeIPv4(p)
	if err != nil {
		t.Fatal(err)
	}
	got, off, err := DecodeTCP(p[hlen:], ih.Src, ih.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if off != TCPHeaderLen+TCPMSSOptLen {
		t.Fatalf("data offset = %d", off)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestTCPRoundTripWithPayload(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 1000)
	h := TCPHeader{SrcPort: 1, DstPort: 2, Seq: 100, Ack: 200, Flags: TCPAck | TCPPsh, Window: 8192}
	p := TCPSegment(srcAddr, dstAddr, &h, 1, 64, payload)
	ih, hlen, err := DecodeIPv4(p)
	if err != nil {
		t.Fatal(err)
	}
	got, off, err := DecodeTCP(p[hlen:], ih.Src, ih.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.MSS != 0 {
		t.Fatalf("phantom MSS: %d", got.MSS)
	}
	if !bytes.Equal(p[hlen+off:], payload) {
		t.Fatal("payload mismatch")
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	h := TCPHeader{SrcPort: 1, DstPort: 2, Seq: 9, Flags: TCPAck, Window: 100}
	p := TCPSegment(srcAddr, dstAddr, &h, 1, 64, []byte("data!"))
	c := Corrupt(p)
	ih, hlen, _ := DecodeIPv4(c)
	if _, _, err := DecodeTCP(c[hlen:], ih.Src, ih.Dst); err != ErrBadChecksum {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestTCPFlagString(t *testing.T) {
	if s := TCPFlagString(TCPSyn | TCPAck); s != "SYN|ACK" {
		t.Fatalf("got %q", s)
	}
	if s := TCPFlagString(0); s != "none" {
		t.Fatalf("got %q", s)
	}
}

func TestTCPDecodeTruncated(t *testing.T) {
	if _, _, err := DecodeTCP(make([]byte, 10), srcAddr, dstAddr); err != ErrTruncated {
		t.Fatalf("got %v", err)
	}
	// Data offset beyond buffer.
	b := make([]byte, TCPHeaderLen)
	b[12] = 0xf0 // offset 60
	if _, _, err := DecodeTCP(b, srcAddr, dstAddr); err != ErrBadHeaderLen {
		t.Fatalf("got %v", err)
	}
}

func TestTCPOptionScanIgnoresUnknown(t *testing.T) {
	// Hand-build a header with a NOP, an unknown option, then MSS.
	hlen := TCPHeaderLen + 12
	seg := make([]byte, hlen)
	seg[12] = byte(hlen/4) << 4
	seg[13] = TCPAck
	opts := seg[TCPHeaderLen:]
	opts[0] = 1                   // NOP
	opts[1], opts[2] = 254, 4     // unknown kind, len 4
	opts[5], opts[6] = 2, 4       // MSS
	opts[7], opts[8] = 0x05, 0xb4 // 1460
	opts[9], opts[10], opts[11] = 0, 0, 0
	// Compute checksum via Encode-style path: zero cksum then fill.
	var sum [2]byte
	_ = sum
	// Patch checksum manually.
	seg[16], seg[17] = 0, 0
	ck := testPseudo(srcAddr, dstAddr, ProtoTCP, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	h, off, err := DecodeTCP(seg, srcAddr, dstAddr)
	if err != nil {
		t.Fatal(err)
	}
	if off != hlen || h.MSS != 1460 {
		t.Fatalf("off=%d mss=%d", off, h.MSS)
	}
}

// testPseudo re-exposes the pseudo-header checksum for option tests.
func testPseudo(src, dst Addr, proto byte, seg []byte) uint16 {
	return pseudoChecksum(src, dst, proto, seg)
}

func TestAddrHelpers(t *testing.T) {
	if IP(224, 0, 0, 1).IsMulticast() != true {
		t.Fatal("224.0.0.1 should be multicast")
	}
	if IP(10, 1, 2, 3).IsMulticast() {
		t.Fatal("10.1.2.3 is not multicast")
	}
	if !(Addr{}).IsZero() {
		t.Fatal("zero addr")
	}
	if IP(1, 2, 3, 4).String() != "1.2.3.4" {
		t.Fatal("addr string")
	}
}

// Property: UDP packets round-trip for arbitrary ports and payloads.
func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sport, dport uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		p := UDPPacket(srcAddr, dstAddr, sport, dport, 3, 64, payload, true)
		ih, hlen, err := DecodeIPv4(p)
		if err != nil {
			return false
		}
		uh, err := DecodeUDP(p[hlen:], ih.Src, ih.Dst)
		if err != nil {
			return false
		}
		return uh.SrcPort == sport && uh.DstPort == dport &&
			bytes.Equal(p[hlen+UDPHeaderLen:hlen+int(uh.Length)], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TCP headers round-trip for arbitrary field values.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(sport, dport uint16, seq, ack uint32, flags byte, win uint16) bool {
		h := TCPHeader{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack,
			Flags: flags & 0x3f, Window: win}
		p := TCPSegment(srcAddr, dstAddr, &h, 1, 64, []byte("xy"))
		ih, hlen, err := DecodeIPv4(p)
		if err != nil {
			return false
		}
		got, _, err := DecodeTCP(p[hlen:], ih.Src, ih.Dst)
		if err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Internet checksum of any buffer with its own checksum
// embedded verifies to zero.
func TestChecksumSelfVerifyProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 4 {
			return true
		}
		b := append([]byte(nil), data...)
		if len(b)%2 == 1 {
			b = append(b, 0)
		}
		b[0], b[1] = 0, 0
		ck := Checksum(b)
		b[0], b[1] = byte(ck>>8), byte(ck)
		return Checksum(b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUDPEncodeDecode(b *testing.B) {
	payload := make([]byte, 1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := UDPPacket(srcAddr, dstAddr, 1, 2, uint16(i), 64, payload, true)
		ih, hlen, err := DecodeIPv4(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeUDP(p[hlen:], ih.Src, ih.Dst); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: decoders never panic on arbitrary bytes — they are the first
// code to touch untrusted wire input.
func TestDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = DecodeIPv4(b)
		_, _ = DecodeUDP(b, srcAddr, dstAddr)
		_, _, _ = DecodeTCP(b, srcAddr, dstAddr)
		_ = Checksum(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a checksummed UDP packet is
// detected either by the IP header checksum or the UDP checksum (or
// renders the packet unparseable) — except for the rare 16-bit-sum
// aliasing where a flip in length fields produces an equal sum.
func TestSingleByteCorruptionDetected(t *testing.T) {
	base := UDPPacket(srcAddr, dstAddr, 1234, 80, 7, 64, []byte("integrity matters"), true)
	undetected := 0
	for i := range base {
		c := append([]byte(nil), base...)
		c[i] ^= 0x5a
		ih, hlen, err := DecodeIPv4(c)
		if err != nil {
			continue // detected at IP
		}
		if ih.Proto != ProtoUDP || ih.Src != srcAddr || ih.Dst != dstAddr {
			continue // header change visible
		}
		if _, err := DecodeUDP(c[hlen:int(ih.TotalLen)], ih.Src, ih.Dst); err != nil {
			continue // detected at UDP
		}
		undetected++
	}
	if undetected > 0 {
		t.Fatalf("%d single-byte corruptions went undetected", undetected)
	}
}
