package pkt

// This file provides whole-packet builders. The protocol implementations
// use them on the transmit side; traffic generators use them to synthesize
// wire traffic (including deliberately malformed traffic for the overload
// experiments).

// UDPPacket assembles a complete IPv4/UDP packet with the given addressing
// and payload. If checksum is false the UDP checksum is left zero (the
// paper's UDP throughput tests ran with UDP checksumming disabled).
func UDPPacket(src, dst Addr, sport, dport uint16, id uint16, ttl byte, payload []byte, checksum bool) []byte {
	total := IPv4HeaderLen + UDPHeaderLen + len(payload)
	b := make([]byte, total)
	ih := IPv4Header{
		TotalLen: uint16(total),
		ID:       id,
		TTL:      ttl,
		Proto:    ProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	uh := UDPHeader{
		SrcPort: sport,
		DstPort: dport,
		Length:  uint16(UDPHeaderLen + len(payload)),
	}
	copy(b[IPv4HeaderLen+UDPHeaderLen:], payload)
	EncodeUDP(b[IPv4HeaderLen:], &uh, src, dst, checksum)
	EncodeIPv4(b, &ih)
	return b
}

// TCPSegment assembles a complete IPv4/TCP segment.
func TCPSegment(src, dst Addr, h *TCPHeader, id uint16, ttl byte, payload []byte) []byte {
	hlen := h.HeaderLen()
	segLen := hlen + len(payload)
	total := IPv4HeaderLen + segLen
	b := make([]byte, total)
	ih := IPv4Header{
		TotalLen: uint16(total),
		ID:       id,
		TTL:      ttl,
		Proto:    ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	copy(b[IPv4HeaderLen+hlen:], payload)
	EncodeTCP(b[IPv4HeaderLen:], h, src, dst, segLen)
	EncodeIPv4(b, &ih)
	return b
}

// Corrupt returns a copy of p with one byte of the transport payload (or
// header, for short packets) flipped, leaving the IP header intact so the
// packet still reaches protocol input where its checksum fails. This models
// the paper's "corrupted data packets" overload source.
func Corrupt(p []byte) []byte {
	c := make([]byte, len(p))
	copy(c, p)
	if len(c) > IPv4HeaderLen {
		c[len(c)-1] ^= 0xff
	}
	return c
}
