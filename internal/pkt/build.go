package pkt

// This file provides whole-packet builders. The protocol implementations
// use them on the transmit side; traffic generators use them to synthesize
// wire traffic (including deliberately malformed traffic for the overload
// experiments).
//
// The Append variants write into a caller-supplied buffer so a sender can
// build packets in recycled mbuf storage; the slice-returning builders are
// thin wrappers that allocate a fresh exact-size buffer, preserving their
// original output byte for byte.

// UDPTotalLen returns the on-wire length of a UDP packet with the given
// payload size — the capacity a caller should reserve before AppendUDP.
func UDPTotalLen(payloadLen int) int {
	return IPv4HeaderLen + UDPHeaderLen + payloadLen
}

// TCPTotalLen returns the on-wire length of a TCP segment with the given
// header (options included) and payload size.
func TCPTotalLen(h *TCPHeader, payloadLen int) int {
	return IPv4HeaderLen + h.HeaderLen() + payloadLen
}

// AppendUDP appends a complete IPv4/UDP packet to dst and returns the
// extended slice. If checksum is false the UDP checksum is left zero (the
// paper's UDP throughput tests ran with UDP checksumming disabled). When
// cap(dst) >= len(dst)+UDPTotalLen(len(payload)) the build allocates
// nothing.
//
//lrp:hotpath
func AppendUDP(dst []byte, src, dstAddr Addr, sport, dport uint16, id uint16, ttl byte, payload []byte, checksum bool) []byte {
	total := UDPTotalLen(len(payload))
	start := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[start:]
	ih := IPv4Header{
		TotalLen: uint16(total),
		ID:       id,
		TTL:      ttl,
		Proto:    ProtoUDP,
		Src:      src,
		Dst:      dstAddr,
	}
	uh := UDPHeader{
		SrcPort: sport,
		DstPort: dport,
		Length:  uint16(UDPHeaderLen + len(payload)),
	}
	copy(b[IPv4HeaderLen+UDPHeaderLen:], payload)
	EncodeUDP(b[IPv4HeaderLen:], &uh, src, dstAddr, checksum)
	EncodeIPv4(b, &ih)
	return dst
}

// AppendTCP appends a complete IPv4/TCP segment to dst and returns the
// extended slice. When cap(dst) >= len(dst)+TCPTotalLen(h, len(payload))
// the build allocates nothing.
//
//lrp:hotpath
func AppendTCP(dst []byte, src, dstAddr Addr, h *TCPHeader, id uint16, ttl byte, payload []byte) []byte {
	hlen := h.HeaderLen()
	segLen := hlen + len(payload)
	total := IPv4HeaderLen + segLen
	start := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[start:]
	ih := IPv4Header{
		TotalLen: uint16(total),
		ID:       id,
		TTL:      ttl,
		Proto:    ProtoTCP,
		Src:      src,
		Dst:      dstAddr,
	}
	copy(b[IPv4HeaderLen+hlen:], payload)
	EncodeTCP(b[IPv4HeaderLen:], h, src, dstAddr, segLen)
	EncodeIPv4(b, &ih)
	return dst
}

// UDPPacket assembles a complete IPv4/UDP packet in a fresh buffer.
func UDPPacket(src, dst Addr, sport, dport uint16, id uint16, ttl byte, payload []byte, checksum bool) []byte {
	b := make([]byte, 0, UDPTotalLen(len(payload)))
	return AppendUDP(b, src, dst, sport, dport, id, ttl, payload, checksum)
}

// TCPSegment assembles a complete IPv4/TCP segment in a fresh buffer.
func TCPSegment(src, dst Addr, h *TCPHeader, id uint16, ttl byte, payload []byte) []byte {
	b := make([]byte, 0, TCPTotalLen(h, len(payload)))
	return AppendTCP(b, src, dst, h, id, ttl, payload)
}

// Corrupt returns a copy of p with one byte of the transport payload (or
// header, for short packets) flipped, leaving the IP header intact so the
// packet still reaches protocol input where its checksum fails. This models
// the paper's "corrupted data packets" overload source.
func Corrupt(p []byte) []byte {
	c := make([]byte, len(p))
	copy(c, p)
	if len(c) > IPv4HeaderLen {
		c[len(c)-1] ^= 0xff
	}
	return c
}

// CorruptInPlace flips the last byte of p (when it extends past the IP
// header), the in-buffer equivalent of Corrupt for pre-built packets in
// recycled storage.
func CorruptInPlace(p []byte) {
	if len(p) > IPv4HeaderLen {
		p[len(p)-1] ^= 0xff
	}
}
