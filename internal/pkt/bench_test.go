package pkt

import "testing"

var benchPayload = make([]byte, 1400)

// BenchmarkPktUDPPacket measures whole-packet UDP construction (the
// blast/media traffic generators' per-packet work).
func BenchmarkPktUDPPacket(b *testing.B) {
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = UDPPacket(src, dst, 9, 7, uint16(i), 64, benchPayload[:14], true)
	}
}

// BenchmarkPktAppendUDP measures UDP construction into a reused buffer,
// the generators' steady-state per-packet work.
func BenchmarkPktAppendUDP(b *testing.B) {
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendUDP(buf[:0], src, dst, 9, 7, uint16(i), 64, benchPayload[:14], true)
	}
}

// BenchmarkPktAppendTCP measures TCP segment construction into a reused
// buffer, the transmit path's steady-state per-segment work.
func BenchmarkPktAppendTCP(b *testing.B) {
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	h := TCPHeader{SrcPort: 80, DstPort: 4000, Seq: 1, Ack: 2, Flags: TCPAck, Window: 8192}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendTCP(buf[:0], src, dst, &h, uint16(i), 64, benchPayload)
	}
}

// BenchmarkPktTCPSegment measures whole-segment TCP construction (the TCP
// transmit path's per-segment work).
func BenchmarkPktTCPSegment(b *testing.B) {
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	h := TCPHeader{SrcPort: 80, DstPort: 4000, Seq: 1, Ack: 2, Flags: TCPAck, Window: 8192}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TCPSegment(src, dst, &h, uint16(i), 64, benchPayload)
	}
}
