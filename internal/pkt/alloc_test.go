package pkt

import (
	"testing"

	"lrp/internal/race"
)

// TestAppendBuildersZeroAllocs pins AppendUDP and AppendTCP at zero
// allocations per packet when the destination has capacity — the contract
// the senders rely on when building into recycled mbuf storage.
func TestAppendBuildersZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation disables the zero-fill append optimization")
	}
	src, dst := IP(10, 0, 0, 1), IP(10, 0, 0, 2)
	payload := make([]byte, 1400)
	buf := make([]byte, 0, 2048)
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendUDP(buf[:0], src, dst, 9, 7, 1, 64, payload, true)
	}); n != 0 {
		t.Errorf("AppendUDP allocates %v per op with capacity, want 0", n)
	}
	h := TCPHeader{SrcPort: 80, DstPort: 4000, Seq: 1, Ack: 2, Flags: TCPAck, Window: 8192}
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendTCP(buf[:0], src, dst, &h, 1, 64, payload)
	}); n != 0 {
		t.Errorf("AppendTCP allocates %v per op with capacity, want 0", n)
	}
}
