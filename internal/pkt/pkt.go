// Package pkt defines the wire formats used by the simulated network:
// IPv4, UDP and TCP headers with real binary encoding and Internet
// checksums.
//
// The LRP demultiplexing function and the protocol implementations parse
// these bytes exactly as a kernel would, so header corruption, fragment
// handling and checksum failures exercise the same code paths the paper
// discusses (e.g. "a flood of corrupted data packets can still cause
// livelock" in an early-demux-only system).
package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4 address.
type Addr [4]byte

// IP builds an Addr from four octets, mirroring the dotted-quad notation.
func IP(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is the unspecified address 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// IsMulticast reports whether the address is in the class-D multicast range
// 224.0.0.0/4.
func (a Addr) IsMulticast() bool { return a[0]&0xf0 == 0xe0 }

// IP protocol numbers (the subset the stack implements).
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Header sizes in bytes. Options are not used by this stack except the TCP
// MSS option, so the sizes are fixed.
const (
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
	TCPMSSOptLen  = 4
)

// IPv4 fragmentation flag bits within the flags/fragment-offset field.
const (
	FlagDontFragment = 0x4000
	FlagMoreFrags    = 0x2000
	fragOffMask      = 0x1fff
)

var (
	// ErrTruncated reports a buffer too short for the claimed header.
	ErrTruncated = errors.New("pkt: truncated packet")
	// ErrBadChecksum reports a checksum validation failure.
	ErrBadChecksum = errors.New("pkt: bad checksum")
	// ErrBadVersion reports a non-IPv4 version nibble.
	ErrBadVersion = errors.New("pkt: bad IP version")
	// ErrBadHeaderLen reports an IHL outside [5, buffer].
	ErrBadHeaderLen = errors.New("pkt: bad IP header length")
)

// IPv4Header is a decoded IPv4 header. The stack never emits IP options, so
// HeaderLen is always 20 on output, but input parsing honours the IHL field.
type IPv4Header struct {
	TOS      byte
	TotalLen uint16
	ID       uint16
	Flags    uint16 // FlagDontFragment | FlagMoreFrags
	FragOff  uint16 // in 8-byte units
	TTL      byte
	Proto    byte
	Src      Addr
	Dst      Addr
}

// MoreFragments reports whether the MF bit is set.
func (h *IPv4Header) MoreFragments() bool { return h.Flags&FlagMoreFrags != 0 }

// IsFragment reports whether the packet is any fragment of a larger datagram
// (nonzero offset or MF set).
func (h *IPv4Header) IsFragment() bool {
	return h.FragOff != 0 || h.MoreFragments()
}

// PayloadLen returns the length in bytes of the transport payload carried by
// a packet with this header.
func (h *IPv4Header) PayloadLen() int { return int(h.TotalLen) - IPv4HeaderLen }

// EncodeIPv4 writes a 20-byte IPv4 header (with checksum) into b, which must
// be at least IPv4HeaderLen bytes.
func EncodeIPv4(b []byte, h *IPv4Header) {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], h.Flags|(h.FragOff&fragOffMask))
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
}

// DecodeIPv4 parses and validates an IPv4 header from b. It returns the
// header and the header length in bytes.
func DecodeIPv4(b []byte) (IPv4Header, int, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, 0, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return h, 0, ErrBadVersion
	}
	hlen := int(b[0]&0x0f) * 4
	if hlen < IPv4HeaderLen || hlen > len(b) {
		return h, 0, ErrBadHeaderLen
	}
	if Checksum(b[:hlen]) != 0 {
		return h, 0, ErrBadChecksum
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	if int(h.TotalLen) < hlen || int(h.TotalLen) > len(b) {
		return h, 0, ErrTruncated
	}
	h.ID = binary.BigEndian.Uint16(b[4:])
	ff := binary.BigEndian.Uint16(b[6:])
	h.Flags = ff &^ fragOffMask
	h.FragOff = ff & fragOffMask
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, hlen, nil
}

// UDPHeader is a decoded UDP header.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16 // header + payload
}

// EncodeUDP writes the UDP header and computes the checksum over the pseudo
// header, UDP header, and payload (which must already follow the header in
// b). If checksum is false the checksum field is zero (checksumming
// disabled, as in the paper's UDP throughput test).
func EncodeUDP(b []byte, h *UDPHeader, src, dst Addr, checksum bool) {
	_ = b[UDPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], h.Length)
	b[6], b[7] = 0, 0
	if checksum {
		ck := pseudoChecksum(src, dst, ProtoUDP, b[:h.Length])
		if ck == 0 {
			ck = 0xffff // 0 means "no checksum" on the wire
		}
		binary.BigEndian.PutUint16(b[6:], ck)
	}
}

// DecodeUDP parses a UDP header and validates its checksum (when present)
// against the payload in b.
func DecodeUDP(b []byte, src, dst Addr) (UDPHeader, error) {
	var h UDPHeader
	if len(b) < UDPHeaderLen {
		return h, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Length = binary.BigEndian.Uint16(b[4:])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return h, ErrTruncated
	}
	if binary.BigEndian.Uint16(b[6:]) != 0 {
		if pseudoChecksum(src, dst, ProtoUDP, b[:h.Length]) != 0 {
			return h, ErrBadChecksum
		}
	}
	return h, nil
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCPFlagString renders flags like "SYN|ACK" for logs and tests.
func TCPFlagString(f byte) string {
	names := []struct {
		bit  byte
		name string
	}{
		{TCPFin, "FIN"}, {TCPSyn, "SYN"}, {TCPRst, "RST"},
		{TCPPsh, "PSH"}, {TCPAck, "ACK"}, {TCPUrg, "URG"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}

// TCPHeader is a decoded TCP header. MSS is the only option the stack uses;
// MSS == 0 means the option was absent.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   byte
	Window  uint16
	MSS     uint16 // 0 if no MSS option present
}

// HeaderLen returns the encoded length of the header including options.
func (h *TCPHeader) HeaderLen() int {
	if h.MSS != 0 {
		return TCPHeaderLen + TCPMSSOptLen
	}
	return TCPHeaderLen
}

// EncodeTCP writes the TCP header (and MSS option if set) and computes the
// checksum over the pseudo header plus the segment, which must occupy
// b[:segLen] with the payload already in place after the header.
func EncodeTCP(b []byte, h *TCPHeader, src, dst Addr, segLen int) {
	hlen := h.HeaderLen()
	_ = b[hlen-1]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = byte(hlen/4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	b[16], b[17] = 0, 0 // checksum
	b[18], b[19] = 0, 0 // urgent pointer (unused)
	if h.MSS != 0 {
		b[20] = 2 // kind: MSS
		b[21] = 4 // length
		binary.BigEndian.PutUint16(b[22:], h.MSS)
	}
	binary.BigEndian.PutUint16(b[16:], pseudoChecksum(src, dst, ProtoTCP, b[:segLen]))
}

// DecodeTCP parses a TCP header from b (the full segment) and validates the
// checksum. It returns the header and the data offset in bytes.
func DecodeTCP(b []byte, src, dst Addr) (TCPHeader, int, error) {
	var h TCPHeader
	if len(b) < TCPHeaderLen {
		return h, 0, ErrTruncated
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return h, 0, ErrBadHeaderLen
	}
	if pseudoChecksum(src, dst, ProtoTCP, b) != 0 {
		return h, 0, ErrBadChecksum
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Seq = binary.BigEndian.Uint32(b[4:])
	h.Ack = binary.BigEndian.Uint32(b[8:])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:])
	// Scan options for MSS.
	opts := b[TCPHeaderLen:off]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				opts = nil
				break
			}
			if opts[0] == 2 && opts[1] == 4 {
				h.MSS = binary.BigEndian.Uint16(opts[2:])
			}
			opts = opts[opts[1]:]
		}
	}
	return h, off, nil
}

// Checksum computes the 16-bit one's-complement Internet checksum of b.
// A buffer containing a correct embedded checksum sums to zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the transport checksum including the IPv4 pseudo
// header (src, dst, zero, proto, length).
func pseudoChecksum(src, dst Addr, proto byte, seg []byte) uint16 {
	var ph [12]byte
	copy(ph[0:4], src[:])
	copy(ph[4:8], dst[:])
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:], uint16(len(seg)))
	var sum uint32
	for i := 0; i < 12; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ph[i:]))
	}
	b := seg
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
