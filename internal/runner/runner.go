// Package runner executes experiment sweeps over a bounded worker pool.
//
// Every experiment in this repository is a sweep over independent,
// deterministic, single-goroutine simulation worlds: a job builds its
// own sim.Engine, network and hosts, runs to completion, and returns a
// result that depends only on the job's inputs — never on wall-clock
// time or goroutine scheduling. Sweep points are therefore
// embarrassingly parallel, and this package exploits that: jobs run
// concurrently up to a worker bound, while results are always assembled
// in declaration order, so a parallel run is byte-identical to a serial
// one.
//
// The package is deliberately dependency-free (stdlib sync only) so it
// sits below internal/exp without cycles.
package runner

import "sync"

// Pool bounds how many jobs execute concurrently. A nil Pool, or one
// built with workers <= 1, runs jobs inline on the caller's goroutine.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool that admits at most workers concurrent jobs.
// Values below 1 are treated as 1 (serial, inline execution).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return cap(p.sem)
}

// Map runs fn(i, items[i]) for every item, at most p.Workers() at a
// time, and returns the results in item order. With a serial pool the
// calls happen inline, in order; otherwise each call runs on its own
// goroutine and fn must not share mutable state across calls. A panic
// in any job is re-raised on the caller's goroutine after all jobs
// have drained.
//
// Even a single-item Map goes through the pool: when several sweeps
// share one pool (suite-wide scheduling, see exp.RunSuite), the worker
// bound must cover every simulation world, not just the multi-item
// sweeps. Slots are held only while a job runs — never across the final
// wait — so concurrent Map calls on a shared pool cannot deadlock.
func Map[T, R any](p *Pool, items []T, fn func(int, T) R) []R {
	out := make([]R, len(items))
	if p.Workers() <= 1 {
		for i, it := range items {
			out[i] = fn(i, it)
		}
		return out
	}
	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue any
	)
	for i := range items {
		p.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicValue = r })
				}
				<-p.sem
				wg.Done()
			}()
			out[i] = fn(i, items[i])
		}(i)
	}
	wg.Wait()
	if panicValue != nil {
		panic(panicValue)
	}
	return out
}

// Concurrent runs fn(i, items[i]) for every item on its own goroutine,
// unbounded, and returns the results in item order. A panic in any call
// is re-raised on the caller's goroutine after all calls have drained.
//
// It exists for coordinators — code that does no simulation work itself
// but fans out sweeps over a shared Pool (the suite runner launching
// experiment drivers). Coordinators must not occupy pool slots: a
// coordinator blocked inside a slot while its own sweep jobs wait for
// slots would deadlock the pool. Never use Concurrent for the
// simulation jobs themselves; that is what Map's bound is for.
func Concurrent[T, R any](items []T, fn func(int, T) R) []R {
	out := make([]R, len(items))
	if len(items) <= 1 {
		for i, it := range items {
			out[i] = fn(i, it)
		}
		return out
	}
	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue any
	)
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicValue = r })
				}
				wg.Done()
			}()
			out[i] = fn(i, items[i])
		}(i)
	}
	wg.Wait()
	if panicValue != nil {
		panic(panicValue)
	}
	return out
}

// Pair is one cell of a two-axis cross product.
type Pair[A, B any] struct {
	A A
	B B
}

// Cross enumerates the cross product of two axes in row-major order:
// as[0]×bs[0], as[0]×bs[1], …, as[1]×bs[0], … — the same order a
// serial nested loop would visit.
func Cross[A, B any](as []A, bs []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, Pair[A, B]{A: a, B: b})
		}
	}
	return out
}

// Spec declares a sweep scenario: for every system and every point on
// the sweep axis, Run builds a fresh simulation world and returns one
// measurement. Specs carry no execution policy; the same Spec can run
// serially or across a pool with identical results.
type Spec[S, X, R any] struct {
	// Name identifies the scenario in progress output.
	Name string
	// Systems is the outer axis: the kernel configurations under test.
	Systems []S
	// Axis is the inner sweep axis (offered rates, SYN rates, …).
	Axis []X
	// Run measures one (system, point) cell in a private world.
	Run func(S, X) R
}

// Sweep executes the spec over the pool and returns one row per
// system, each holding that system's measurements in axis order.
func Sweep[S, X, R any](p *Pool, spec Spec[S, X, R]) [][]R {
	cells := Map(p, Cross(spec.Systems, spec.Axis), func(_ int, c Pair[S, X]) R {
		return spec.Run(c.A, c.B)
	})
	rows := make([][]R, len(spec.Systems))
	for i := range spec.Systems {
		rows[i] = cells[i*len(spec.Axis) : (i+1)*len(spec.Axis) : (i+1)*len(spec.Axis)]
	}
	return rows
}
