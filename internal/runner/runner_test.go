package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	got := Map(NewPool(8), items, func(i, v int) int {
		// Finish late items first so completion order is scrambled.
		time.Sleep(time.Duration(len(items)-i) * 100 * time.Microsecond)
		return v * v
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	Map(NewPool(workers), make([]struct{}, 24), func(int, struct{}) int {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", p, workers)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("observed %d concurrent jobs; pool never overlapped work", p)
	}
}

func TestMapSerialRunsInline(t *testing.T) {
	// Workers <= 1 must execute on the caller's goroutine, in order:
	// appending to a shared slice without a lock is then race-free.
	var order []int
	Map(NewPool(1), []int{0, 1, 2, 3}, func(i, _ int) int {
		order = append(order, i)
		return 0
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial call order %v", order)
		}
	}
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Errorf("workers below 1 should clamp to 1")
	}
	if (*Pool)(nil).Workers() != 1 {
		t.Errorf("nil pool should report 1 worker")
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = 7 * i
	}
	fn := func(i, v int) string { return fmt.Sprintf("%d:%d", i, v*v-v) }
	serial := Map(NewPool(1), items, fn)
	parallel := Map(NewPool(16), items, fn)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("results diverge at %d: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a job was swallowed")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Map(NewPool(4), []int{0, 1, 2, 3, 4, 5}, func(i, _ int) int {
		if i == 3 {
			panic("boom")
		}
		return i
	})
}

func TestCrossOrder(t *testing.T) {
	got := Cross([]string{"a", "b"}, []int{1, 2, 3})
	want := []Pair[string, int]{
		{"a", 1}, {"a", 2}, {"a", 3},
		{"b", 1}, {"b", 2}, {"b", 3},
	}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSweepShapesGrid(t *testing.T) {
	spec := Spec[string, int, string]{
		Name:    "grid",
		Systems: []string{"x", "y", "z"},
		Axis:    []int{10, 20},
		Run:     func(s string, v int) string { return fmt.Sprintf("%s@%d", s, v) },
	}
	rows := Sweep(NewPool(4), spec)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for i, sys := range spec.Systems {
		if len(rows[i]) != 2 {
			t.Fatalf("row %d len %d", i, len(rows[i]))
		}
		for j, v := range spec.Axis {
			if want := fmt.Sprintf("%s@%d", sys, v); rows[i][j] != want {
				t.Fatalf("rows[%d][%d] = %q, want %q", i, j, rows[i][j], want)
			}
		}
	}
}

// TestMapManyWorkersFewItems guards the admission path when the bound
// exceeds the item count.
func TestMapManyWorkersFewItems(t *testing.T) {
	got := Map(NewPool(32), []int{5, 6}, func(_, v int) int { return v + 1 })
	if got[0] != 6 || got[1] != 7 {
		t.Fatalf("got %v", got)
	}
	var wg sync.WaitGroup
	// Concurrent use of one pool by several sweeps must also be safe.
	p := NewPool(4)
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Map(p, make([]int, 20), func(i, _ int) int { return i })
		}()
	}
	wg.Wait()
}
