package nic

// Receive-side scaling: the deterministic flow hash a multi-queue
// adaptor applies to every arriving packet to pick a receive queue.
// Real adaptors use a keyed Toeplitz hash over the same tuple; the
// property that matters for the simulation — and for LRP's accounting
// story — is that the mapping is a pure function of the flow identity,
// so one flow's packets always land on one queue (and therefore one
// CPU, under the queue→CPU affinity map), while a population of flows
// spreads across queues.

import "lrp/internal/pkt"

// rssOffset and rssPrime are the FNV-1a constants; FNV is cheap,
// deterministic, and spreads the low-entropy address/port tuples the
// experiments use well enough for the ±10% uniformity the multi-queue
// model needs.
const (
	rssOffset uint32 = 2166136261
	rssPrime  uint32 = 16777619
)

// RSSHash hashes a flow tuple (source/destination address and port)
// onto a 32-bit value. It is symmetric in nothing: direction matters,
// exactly as on a real adaptor, so a request flow and its reply flow
// may land on different queues of their respective hosts.
func RSSHash(src, dst pkt.Addr, sport, dport uint16) uint32 {
	h := rssOffset
	for _, b := range src {
		h = (h ^ uint32(b)) * rssPrime
	}
	for _, b := range dst {
		h = (h ^ uint32(b)) * rssPrime
	}
	h = (h ^ uint32(sport>>8)) * rssPrime
	h = (h ^ uint32(sport&0xff)) * rssPrime
	h = (h ^ uint32(dport>>8)) * rssPrime
	h = (h ^ uint32(dport&0xff)) * rssPrime
	return h
}

// FlowHash extracts the flow tuple from a raw IPv4 packet and returns
// its RSS hash. Fragments (including the first, which still carries
// ports) hash on the address pair alone, so every fragment of a
// datagram reaches the same queue — the same compromise real adaptors
// make, since non-first fragments carry no transport header. Packets
// too short or malformed to carry a tuple hash to a stable value on
// the address bytes available, keeping the function total: the queue
// choice must be defined for every packet the wire can deliver.
//
//lrp:hotpath
func FlowHash(b []byte) uint32 {
	if len(b) < pkt.IPv4HeaderLen {
		return RSSHash(pkt.Addr{}, pkt.Addr{}, 0, 0)
	}
	var src, dst pkt.Addr
	copy(src[:], b[12:16])
	copy(dst[:], b[16:20])
	hlen := int(b[0]&0x0f) * 4
	ff := uint16(b[6])<<8 | uint16(b[7])
	frag := ff&(pkt.FlagMoreFrags|0x1fff) != 0
	proto := b[9]
	if frag || (proto != pkt.ProtoUDP && proto != pkt.ProtoTCP) ||
		hlen < pkt.IPv4HeaderLen || len(b) < hlen+4 {
		return RSSHash(src, dst, 0, 0)
	}
	sport := uint16(b[hlen])<<8 | uint16(b[hlen+1])
	dport := uint16(b[hlen+2])<<8 | uint16(b[hlen+3])
	return RSSHash(src, dst, sport, dport)
}
