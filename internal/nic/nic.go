// Package nic models a network interface adaptor: a bounded receive ring
// with host-interrupt signalling, a transmit interface queue drained at
// link speed, an optional embedded processor (as on the FORE SBA-200's
// i960) that can run the LRP demultiplexing function on the adaptor, and
// the NI channel structure shared between the adaptor and the kernel.
//
// The NIC is policy-free: what happens when a packet is received — raise
// an interrupt per packet (BSD), demultiplex in the interrupt handler
// (soft demux), or demultiplex on the embedded processor (NI demux) — is
// wired up by the architecture layer via callbacks.
package nic

import (
	"lrp/internal/mbuf"
	"lrp/internal/sim"
)

// Mode selects where received packets go before the host sees them.
type Mode int

const (
	// ModeRaw delivers packets to the host receive ring and raises a host
	// interrupt; all demultiplexing happens on the host. Used by the BSD,
	// SOFT-LRP and Early-Demux configurations.
	ModeRaw Mode = iota
	// ModeSmart runs OnNICProcess for each packet on the embedded NIC
	// processor (after a per-packet processing delay) instead of touching
	// the host. Used by the NI-LRP configuration.
	ModeSmart
)

// Stats counts NIC-level events. The scalar fields are adaptor-wide
// aggregates with the same meanings they had when the adaptor modelled
// a single receive ring; Queues breaks the receive-side counters down
// per RSS queue (one entry per configured rx queue, in queue order).
type Stats struct {
	RxPackets    uint64 // packets received from the wire
	RxRingDrops  uint64 // packets lost to receive-ring overflow (ModeRaw)
	NICDrops     uint64 // packets dropped by the embedded processor's input queue
	TxPackets    uint64 // packets transmitted
	TxQueueDrops uint64 // packets lost to interface-queue overflow
	HostIntrs    uint64 // host interrupts raised
	FaultDrops   uint64 // packets discarded by an injected receive fault

	// Queues holds the per-receive-queue breakdown. RxRingDrops over
	// Queues sums to the aggregate; RxPackets over Queues counts the
	// packets steered to a ring (aggregate RxPackets minus fault drops
	// and ModeSmart traffic); HostIntrs over Queues counts ring-raised
	// interrupts (interrupts raised on behalf of the embedded processor
	// via RaiseIntr belong to an NI channel, not a ring, and count only
	// in the aggregate).
	Queues []QueueStats
}

// QueueStats counts one receive queue's events (ModeRaw rings).
type QueueStats struct {
	RxPackets   uint64 // packets the RSS hash steered to this queue
	RxRingDrops uint64 // packets lost to this queue's ring overflow
	HostIntrs   uint64 // host interrupts raised by this queue's ring
}

// NIC is one simulated network adaptor.
type NIC struct {
	Eng  *sim.Engine
	Name string

	// Pool supplies receive buffers; exhaustion drops packets at the ring,
	// mirroring mbuf exhaustion in the host (ModeRaw) or on-board buffer
	// exhaustion (ModeSmart).
	Pool *mbuf.Pool

	// Mode selects the receive path.
	Mode Mode

	// OnHostIntr is invoked (in engine context) when the adaptor raises a
	// host interrupt: on ring empty->nonempty transitions in ModeRaw, or
	// when requested by a channel in ModeSmart. The architecture layer
	// typically posts hardware-interrupt work to the kernel here.
	OnHostIntr func()

	// OnQueueIntr, when non-nil, replaces OnHostIntr for receive-ring
	// interrupts and identifies which queue raised the line. A
	// multi-queue architecture layer installs it to route each queue's
	// interrupt to its affinity-mapped CPU; single-queue configurations
	// leave it nil and keep the legacy OnHostIntr wiring.
	OnQueueIntr func(q int)

	// OnNICProcess runs on the embedded processor for each received packet
	// in ModeSmart, after NICPerPktCost of adaptor CPU time. It should
	// classify the packet onto an NI channel (or drop it).
	OnNICProcess func(m *mbuf.Mbuf)

	// NICPerPktCost is the embedded processor's per-packet processing time
	// in microseconds (ModeSmart).
	NICPerPktCost int64

	// NICInputLimit bounds the embedded processor's input backlog; beyond
	// it packets are dropped on the adaptor, costing the host nothing.
	NICInputLimit int

	// RxFault, when non-nil, is consulted for every packet arriving from
	// the wire; returning true discards the packet before any buffer is
	// allocated, modelling adaptor-level receive faults (a DMA engine
	// overrunning its descriptor ring). Installed by the fault-injection
	// subsystem; nil outside fault runs.
	RxFault func() bool

	// Transmit is installed by the network layer; it serializes m onto the
	// wire and calls done when the link is free for the next packet. The
	// mbuf arrives with its accounting already released (BeginTransfer);
	// the network layer must EndTransfer it when the packet leaves the wire.
	Transmit func(m *mbuf.Mbuf, done func())

	rxq          []rxQueue
	intrDisabled bool

	nicBacklog   int      // packets queued for the embedded processor
	nicBusyUntil sim.Time // when the embedded processor finishes its backlog
	// nicLane feeds the embedded processor's completion events to the
	// engine: the processor serves packets serially, so completion times
	// are non-decreasing by construction and each post is a plain lane
	// append instead of a heap sift.
	nicLane *sim.Lane
	// nicPend holds the packets awaiting the embedded processor, FIFO from
	// nicHead; completions fire in post order, so the head is always the
	// packet being finished. nicStep is the single completion thunk shared
	// by every packet — a per-packet closure would allocate per packet.
	nicPend []*mbuf.Mbuf
	nicHead int
	nicStep func()

	ifq    *mbuf.Queue
	txBusy bool

	stats Stats
}

// rxQueue is one receive ring plus its interrupt line state.
type rxQueue struct {
	ring        *mbuf.Queue
	intrPending bool
	stats       QueueStats
}

// Config bundles NIC construction parameters.
type Config struct {
	Name          string
	Mode          Mode
	RxRingSize    int // ModeRaw ring slots per queue (0 = 64)
	RxQueues      int // receive queues the RSS hash spreads over (0 = 1)
	IfqLimit      int // interface queue limit (0 = 50, the BSD default)
	Pool          *mbuf.Pool
	NICPerPktCost int64
	NICInputLimit int
}

// New creates a NIC.
func New(eng *sim.Engine, cfg Config) *NIC {
	if cfg.RxRingSize == 0 {
		cfg.RxRingSize = 64
	}
	if cfg.IfqLimit == 0 {
		cfg.IfqLimit = 50
	}
	if cfg.Pool == nil {
		cfg.Pool = mbuf.NewPool(0)
	}
	if cfg.NICInputLimit == 0 {
		cfg.NICInputLimit = 256
	}
	if cfg.RxQueues == 0 {
		cfg.RxQueues = 1
	}
	n := &NIC{
		Eng:           eng,
		Name:          cfg.Name,
		Pool:          cfg.Pool,
		Mode:          cfg.Mode,
		NICPerPktCost: cfg.NICPerPktCost,
		NICInputLimit: cfg.NICInputLimit,
		rxq:           make([]rxQueue, cfg.RxQueues),
		ifq:           mbuf.NewQueue(cfg.IfqLimit),
		nicLane:       eng.NewLane(),
	}
	for i := range n.rxq {
		n.rxq[i].ring = mbuf.NewQueue(cfg.RxRingSize)
	}
	n.nicStep = func() {
		m := n.nicPend[n.nicHead]
		n.nicPend[n.nicHead] = nil
		n.nicHead++
		if n.nicHead == len(n.nicPend) {
			n.nicPend = n.nicPend[:0]
			n.nicHead = 0
		}
		n.nicBacklog--
		if n.OnNICProcess != nil {
			n.OnNICProcess(m)
		} else {
			m.Free()
		}
	}
	return n
}

// NumRxQueues returns the number of configured receive queues.
func (n *NIC) NumRxQueues() int { return len(n.rxq) }

// Stats returns a snapshot of the NIC counters, folding in queue drops.
func (n *NIC) Stats() Stats {
	s := n.stats
	s.Queues = make([]QueueStats, len(n.rxq))
	for i := range n.rxq {
		qs := n.rxq[i].stats
		qs.RxRingDrops += n.rxq[i].ring.Drops()
		s.Queues[i] = qs
		s.RxRingDrops += n.rxq[i].ring.Drops()
	}
	s.TxQueueDrops += n.ifq.Drops()
	return s
}

// Rx accepts a packet from the wire (engine context).
func (n *NIC) Rx(b []byte) {
	n.stats.RxPackets++
	if n.RxFault != nil && n.RxFault() {
		n.stats.FaultDrops++
		return
	}
	switch n.Mode {
	case ModeRaw:
		q := 0
		if len(n.rxq) > 1 {
			q = int(FlowHash(b) % uint32(len(n.rxq)))
		}
		rq := &n.rxq[q]
		rq.stats.RxPackets++
		m := n.Pool.AllocCopy(b)
		if m == nil {
			n.stats.RxRingDrops++
			rq.stats.RxRingDrops++
			return
		}
		m.Arrival = n.Eng.Now()
		if !rq.ring.Enqueue(m) {
			return // counted via ring.Drops
		}
		if !rq.intrPending && !n.intrDisabled {
			rq.intrPending = true
			n.stats.HostIntrs++
			rq.stats.HostIntrs++
			n.raiseRing(q)
		}
	case ModeSmart:
		if n.nicBacklog >= n.NICInputLimit {
			n.stats.NICDrops++
			return
		}
		m := n.Pool.AllocCopy(b)
		if m == nil {
			n.stats.NICDrops++
			return
		}
		m.Arrival = n.Eng.Now()
		// The embedded processor serves packets serially.
		now := n.Eng.Now()
		if n.nicBusyUntil < now {
			n.nicBusyUntil = now
		}
		n.nicBusyUntil += n.NICPerPktCost
		n.nicBacklog++
		n.nicPend = append(n.nicPend, m) //lrp:coldalloc grows to the backlog high-water, then stabilizes
		n.nicLane.Post(n.nicBusyUntil, n.nicStep)
	}
}

// raiseRing invokes the interrupt callback for queue q's ring: the
// per-queue line when installed, else the legacy single line.
func (n *NIC) raiseRing(q int) {
	if n.OnQueueIntr != nil {
		n.OnQueueIntr(q)
		return
	}
	if n.OnHostIntr != nil {
		n.OnHostIntr()
	}
}

// RxDequeue removes the next packet from receive queue 0 (driver code in
// host interrupt context). It returns nil when the ring is empty.
func (n *NIC) RxDequeue() *mbuf.Mbuf { return n.rxq[0].ring.Dequeue() }

// RxDequeueQ removes the next packet from receive queue q's ring.
func (n *NIC) RxDequeueQ(q int) *mbuf.Mbuf { return n.rxq[q].ring.Dequeue() }

// RxPeek returns queue 0's ring head without removing it (drivers use it
// to price data-dependent interrupt work before performing it).
func (n *NIC) RxPeek() *mbuf.Mbuf { return n.rxq[0].ring.Peek() }

// RxPeekQ returns queue q's ring head without removing it.
func (n *NIC) RxPeekQ(q int) *mbuf.Mbuf { return n.rxq[q].ring.Peek() }

// RxPending returns the number of packets waiting in queue 0's ring.
func (n *NIC) RxPending() int { return n.rxq[0].ring.Len() }

// RxPendingQ returns the number of packets waiting in queue q's ring.
func (n *NIC) RxPendingQ(q int) int { return n.rxq[q].ring.Len() }

// IntrDone re-enables queue 0's receive interrupts after the driver has
// drained the ring. If packets arrived meanwhile, a new interrupt is
// raised immediately (engine context).
func (n *NIC) IntrDone() { n.IntrDoneQ(0) }

// IntrDoneQ is IntrDone for receive queue q.
func (n *NIC) IntrDoneQ(q int) {
	rq := &n.rxq[q]
	rq.intrPending = false
	if n.intrDisabled {
		return
	}
	if rq.ring.Len() > 0 && n.Mode == ModeRaw {
		rq.intrPending = true
		n.stats.HostIntrs++
		rq.stats.HostIntrs++
		n.raiseRing(q)
	}
}

// SetIntrEnabled enables or disables receive interrupts on every queue
// (the Mogul & Ramakrishnan livelock mitigation disables them under
// overload and polls instead). Re-enabling raises an interrupt
// immediately, in queue order, on each queue with packets waiting.
func (n *NIC) SetIntrEnabled(enabled bool) {
	n.intrDisabled = !enabled
	if !enabled || n.Mode != ModeRaw {
		return
	}
	for q := range n.rxq {
		rq := &n.rxq[q]
		if !rq.intrPending && rq.ring.Len() > 0 {
			rq.intrPending = true
			n.stats.HostIntrs++
			rq.stats.HostIntrs++
			n.raiseRing(q)
		}
	}
}

// RaiseIntr raises a host interrupt on behalf of the embedded processor
// (ModeSmart), e.g. when a channel transitions empty->nonempty and the
// receiver requested interrupts.
func (n *NIC) RaiseIntr() {
	n.stats.HostIntrs++
	if n.OnHostIntr != nil {
		n.OnHostIntr()
	}
}

// Send queues a packet for transmission. It is dropped (and freed) if the
// interface queue is full. Transmission consumes no host CPU; the caller
// accounts any driver cost itself.
func (n *NIC) Send(m *mbuf.Mbuf) {
	if !n.ifq.Enqueue(m) {
		return
	}
	n.kickTx()
}

// IfqLen returns the current interface queue depth.
func (n *NIC) IfqLen() int { return n.ifq.Len() }

// kickTx starts transmitting if the link is idle.
func (n *NIC) kickTx() {
	if n.txBusy {
		return
	}
	m := n.ifq.Dequeue()
	if m == nil {
		return
	}
	n.txBusy = true
	n.stats.TxPackets++
	// Release the pool slot now (transmission has started, as when this
	// path freed the mbuf and kept its bytes) but keep the storage alive
	// until the network layer finishes with it.
	m.BeginTransfer()
	if n.Transmit == nil {
		m.EndTransfer()
		n.txDone()
		return
	}
	n.Transmit(m, n.txDone)
}

func (n *NIC) txDone() {
	n.txBusy = false
	n.kickTx()
}

// Channel is an LRP network-interface channel: the queue pair shared
// between the adaptor and the kernel for one endpoint. (This simulator
// models the receiver queue and its free-buffer budget as a single bounded
// queue; the transmit direction shares the NIC interface queue.)
type Channel struct {
	// Queue holds demultiplexed packets awaiting protocol processing.
	Queue *mbuf.Queue
	// IntrRequested is set by the kernel when a process blocks on the
	// channel: the NIC then raises a host interrupt on the next
	// empty->nonempty transition ("if the queue was previously empty, and
	// a state flag indicates that interrupts are requested for this
	// socket, the NI generates a host interrupt").
	IntrRequested bool
	// ProcessingDisabled causes arriving packets to be discarded at the
	// channel. Used for listening sockets whose backlog is full: "protocol
	// processing is disabled for listening sockets that have exceeded
	// their listen backlog limit, thus causing the discard of further SYN
	// packets at the NI channel queue."
	ProcessingDisabled bool

	// DisabledDrops counts packets discarded due to ProcessingDisabled.
	DisabledDrops uint64

	// Owner is an opaque reference to the endpoint (socket) the channel
	// feeds; the architecture layer uses it during dispatch.
	Owner any
}

// NewChannel creates a channel with the given queue limit.
func NewChannel(limit int) *Channel {
	return &Channel{Queue: mbuf.NewQueue(limit)}
}

// Deliver enqueues a demultiplexed packet, honouring early discard. It
// returns true if the packet was queued and the queue was previously
// empty (i.e. the caller should consider raising a host interrupt).
func (c *Channel) Deliver(m *mbuf.Mbuf) (wasEmpty bool, ok bool) {
	if c.ProcessingDisabled {
		c.DisabledDrops++
		m.Free()
		return false, false
	}
	wasEmpty = c.Queue.Len() == 0
	if !c.Queue.Enqueue(m) {
		return false, false
	}
	return wasEmpty, true
}
