package nic

// Property tests for the RSS flow hash — the three guarantees the
// multi-queue model leans on: the hash is a pure function (identical
// across calls and process runs, pinned here by golden values), a flow
// population spreads near-evenly across queues, and every packet of one
// flow lands on one queue, fragments included.

import (
	"testing"

	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// TestRSSHashGolden pins the hash function itself: these values were
// computed by the current FNV-1a tuple hash, and any change to the
// constants, byte order, or tuple layout shows up here before it
// silently reshuffles every flow→queue map in the archived experiments.
func TestRSSHashGolden(t *testing.T) {
	cases := []struct {
		src, dst     pkt.Addr
		sport, dport uint16
		want         uint32
	}{
		{pkt.IP(10, 0, 0, 1), pkt.IP(10, 0, 0, 2), 9000, 100, RSSHash(pkt.IP(10, 0, 0, 1), pkt.IP(10, 0, 0, 2), 9000, 100)},
	}
	// Self-consistency across repeated calls.
	for _, c := range cases {
		for i := 0; i < 3; i++ {
			if got := RSSHash(c.src, c.dst, c.sport, c.dport); got != c.want {
				t.Fatalf("RSSHash not stable: call %d gave %#x, first gave %#x", i, got, c.want)
			}
		}
	}
	// Golden values: the function, not just its stability.
	golden := []struct {
		src, dst     pkt.Addr
		sport, dport uint16
		want         uint32
	}{
		{pkt.IP(0, 0, 0, 0), pkt.IP(0, 0, 0, 0), 0, 0, 0xe23c62b5},
		{pkt.IP(10, 0, 0, 1), pkt.IP(10, 0, 0, 2), 9000, 100, 0x81ca4967},
		{pkt.IP(10, 0, 0, 2), pkt.IP(10, 0, 0, 1), 100, 9000, 0xf3033463},
	}
	for _, c := range golden {
		if got := RSSHash(c.src, c.dst, c.sport, c.dport); got != c.want {
			t.Errorf("RSSHash(%v,%v,%d,%d) = %#08x, want %#08x",
				c.src, c.dst, c.sport, c.dport, got, c.want)
		}
	}
	// Direction matters, as on a real adaptor.
	fwd := RSSHash(pkt.IP(10, 0, 0, 1), pkt.IP(10, 0, 0, 2), 9000, 100)
	rev := RSSHash(pkt.IP(10, 0, 0, 2), pkt.IP(10, 0, 0, 1), 100, 9000)
	if fwd == rev {
		t.Errorf("forward and reverse flows hash identically (%#x); direction must matter", fwd)
	}
}

// TestRSSUniformity: a population of random flows spreads across every
// queue count the simulator uses, each queue within ±10% of an even
// share.
func TestRSSUniformity(t *testing.T) {
	rng := sim.NewRand(1)
	const flows = 20000
	type tuple struct {
		src, dst     pkt.Addr
		sport, dport uint16
	}
	pop := make([]tuple, flows)
	for i := range pop {
		pop[i] = tuple{
			src:   pkt.IP(10, byte(rng.Int63n(4)), byte(rng.Int63n(256)), byte(rng.Int63n(256))),
			dst:   pkt.IP(10, 0, 0, 2),
			sport: uint16(1024 + rng.Int63n(60000)),
			dport: uint16(1 + rng.Int63n(1024)),
		}
	}
	for _, nq := range []int{2, 4, 8} {
		counts := make([]int, nq)
		for _, f := range pop {
			counts[RSSHash(f.src, f.dst, f.sport, f.dport)%uint32(nq)]++
		}
		even := float64(flows) / float64(nq)
		for q, n := range counts {
			if frac := float64(n) / even; frac < 0.9 || frac > 1.1 {
				t.Errorf("nq=%d: queue %d holds %d of %d flows (%.2fx even share, want within ±10%%)",
					nq, q, n, flows, frac)
			}
		}
	}
}

// TestRSSFlowAffinity: every packet of a flow — whole datagrams and all
// fragments of a fragmented one — hashes to the same queue, so one
// flow's receive processing stays on one CPU.
func TestRSSFlowAffinity(t *testing.T) {
	src, dst := pkt.IP(10, 0, 0, 1), pkt.IP(10, 0, 0, 2)
	const sport, dport = 9001, 200
	want := FlowHash(pkt.UDPPacket(src, dst, sport, dport, 1, 64, make([]byte, 32), true))
	if want != RSSHash(src, dst, sport, dport) {
		t.Fatalf("FlowHash %#x disagrees with RSSHash %#x for the same tuple",
			want, RSSHash(src, dst, sport, dport))
	}
	// Repeated datagrams of the flow, varying id and payload.
	for id := uint16(2); id < 32; id++ {
		p := pkt.UDPPacket(src, dst, sport, dport, id, 64, make([]byte, int(id)), true)
		if got := FlowHash(p); got != want {
			t.Fatalf("datagram id=%d hashed to %#x, first to %#x: flow split across queues", id, got, want)
		}
	}
	// Fragments hash on addresses alone — but still all to one value,
	// and first fragments (which carry ports) must agree with later ones
	// (which do not).
	frag := pkt.UDPPacket(src, dst, sport, dport, 40, 64, make([]byte, 32), true)
	frag[6] |= byte(pkt.FlagMoreFrags >> 8) // first fragment: MF set, offset 0
	first := FlowHash(frag)
	later := pkt.UDPPacket(src, dst, sport, dport, 40, 64, make([]byte, 32), true)
	later[7] = 3 // non-first fragment: offset 3 (in 8-byte units)
	if got := FlowHash(later); got != first {
		t.Fatalf("fragments of one datagram split: first frag %#x, later frag %#x", first, got)
	}
	if first != RSSHash(src, dst, 0, 0) {
		t.Fatalf("fragment hash %#x not the address-only hash %#x", first, RSSHash(src, dst, 0, 0))
	}
}
