package nic

import (
	"testing"

	"lrp/internal/mbuf"
	"lrp/internal/sim"
)

func rawNIC(eng *sim.Engine) *NIC {
	return New(eng, Config{Name: "test", Mode: ModeRaw, RxRingSize: 4})
}

func TestRawRxRaisesOneInterruptPerBatch(t *testing.T) {
	eng := sim.NewEngine()
	n := rawNIC(eng)
	intrs := 0
	n.OnHostIntr = func() { intrs++ }
	n.Rx(make([]byte, 10))
	n.Rx(make([]byte, 10))
	n.Rx(make([]byte, 10))
	if intrs != 1 {
		t.Fatalf("interrupts = %d, want 1 (coalesced while pending)", intrs)
	}
	if n.RxPending() != 3 {
		t.Fatalf("ring = %d", n.RxPending())
	}
	// Drain and complete: no packets left, no new interrupt.
	for n.RxDequeue() != nil {
	}
	n.IntrDone()
	if intrs != 1 {
		t.Fatalf("interrupts = %d after drain", intrs)
	}
	// Next packet raises again.
	n.Rx(make([]byte, 10))
	if intrs != 2 {
		t.Fatalf("interrupts = %d, want 2", intrs)
	}
}

func TestIntrDoneReRaisesWhenRingNonEmpty(t *testing.T) {
	eng := sim.NewEngine()
	n := rawNIC(eng)
	intrs := 0
	n.OnHostIntr = func() { intrs++ }
	n.Rx(make([]byte, 10))
	n.RxDequeue().Free()
	n.Rx(make([]byte, 10)) // arrives while handler still running: no new intr
	if intrs != 1 {
		t.Fatalf("interrupts = %d", intrs)
	}
	n.IntrDone() // ring non-empty -> immediate re-raise
	if intrs != 2 {
		t.Fatalf("interrupts = %d, want 2", intrs)
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	eng := sim.NewEngine()
	n := rawNIC(eng) // ring size 4
	for i := 0; i < 6; i++ {
		n.Rx(make([]byte, 10))
	}
	st := n.Stats()
	if st.RxRingDrops != 2 {
		t.Fatalf("ring drops = %d, want 2", st.RxRingDrops)
	}
	if st.RxPackets != 6 {
		t.Fatalf("rx packets = %d", st.RxPackets)
	}
}

func TestPoolExhaustionDropsAtRing(t *testing.T) {
	eng := sim.NewEngine()
	pool := mbuf.NewPool(2)
	n := New(eng, Config{Mode: ModeRaw, RxRingSize: 10, Pool: pool})
	for i := 0; i < 4; i++ {
		n.Rx(make([]byte, 10))
	}
	if n.Stats().RxRingDrops != 2 {
		t.Fatalf("drops = %d", n.Stats().RxRingDrops)
	}
}

func TestSmartModeProcessesSerially(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Mode: ModeSmart, NICPerPktCost: 10})
	var times []sim.Time
	n.OnNICProcess = func(m *mbuf.Mbuf) {
		times = append(times, eng.Now())
		m.Free()
	}
	eng.At(0, func() {
		n.Rx(make([]byte, 10))
		n.Rx(make([]byte, 10))
		n.Rx(make([]byte, 10))
	})
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("processed %d", len(times))
	}
	want := []sim.Time{10, 20, 30}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestSmartModeBacklogLimit(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Mode: ModeSmart, NICPerPktCost: 100, NICInputLimit: 2})
	processed := 0
	n.OnNICProcess = func(m *mbuf.Mbuf) { processed++; m.Free() }
	eng.At(0, func() {
		for i := 0; i < 5; i++ {
			n.Rx(make([]byte, 10))
		}
	})
	eng.Run()
	if processed != 2 {
		t.Fatalf("processed = %d, want 2", processed)
	}
	if n.Stats().NICDrops != 3 {
		t.Fatalf("nic drops = %d, want 3", n.Stats().NICDrops)
	}
}

func TestSendSerializesViaTransmit(t *testing.T) {
	eng := sim.NewEngine()
	pool := mbuf.NewPool(0)
	n := New(eng, Config{Mode: ModeRaw, IfqLimit: 10})
	var sentAt []sim.Time
	n.Transmit = func(m *mbuf.Mbuf, done func()) {
		sentAt = append(sentAt, eng.Now())
		eng.After(50, func() { m.EndTransfer(); done() }) // 50µs serialization per packet
	}
	eng.At(0, func() {
		n.Send(pool.Alloc(make([]byte, 100)))
		n.Send(pool.Alloc(make([]byte, 100)))
		n.Send(pool.Alloc(make([]byte, 100)))
	})
	eng.Run()
	want := []sim.Time{0, 50, 100}
	if len(sentAt) != 3 {
		t.Fatalf("sent %d", len(sentAt))
	}
	for i := range want {
		if sentAt[i] != want[i] {
			t.Fatalf("sentAt = %v, want %v", sentAt, want)
		}
	}
	if n.Stats().TxPackets != 3 {
		t.Fatalf("tx = %d", n.Stats().TxPackets)
	}
}

func TestIfqOverflowDrops(t *testing.T) {
	eng := sim.NewEngine()
	pool := mbuf.NewPool(0)
	n := New(eng, Config{Mode: ModeRaw, IfqLimit: 2})
	n.Transmit = func(m *mbuf.Mbuf, done func()) {
		eng.After(1000, func() { m.EndTransfer(); done() })
	}
	eng.At(0, func() {
		for i := 0; i < 5; i++ {
			n.Send(pool.Alloc(make([]byte, 10)))
		}
	})
	eng.RunFor(100)
	// One in flight, two queued, two dropped.
	if d := n.Stats().TxQueueDrops; d != 2 {
		t.Fatalf("ifq drops = %d, want 2", d)
	}
}

func TestChannelDeliverEarlyDiscard(t *testing.T) {
	pool := mbuf.NewPool(0)
	c := NewChannel(2)
	we, ok := c.Deliver(pool.Alloc(nil))
	if !we || !ok {
		t.Fatalf("first deliver: wasEmpty=%v ok=%v", we, ok)
	}
	we, ok = c.Deliver(pool.Alloc(nil))
	if we || !ok {
		t.Fatalf("second deliver: wasEmpty=%v ok=%v", we, ok)
	}
	if _, ok = c.Deliver(pool.Alloc(nil)); ok {
		t.Fatal("over-limit deliver should fail")
	}
	if c.Queue.Drops() != 1 {
		t.Fatalf("drops = %d", c.Queue.Drops())
	}
	if pool.Stats().InUse != 2 {
		t.Fatalf("dropped packet not freed: %d in use", pool.Stats().InUse)
	}
}

func TestChannelProcessingDisabled(t *testing.T) {
	pool := mbuf.NewPool(0)
	c := NewChannel(10)
	c.ProcessingDisabled = true
	if _, ok := c.Deliver(pool.Alloc(nil)); ok {
		t.Fatal("disabled channel accepted packet")
	}
	if c.DisabledDrops != 1 {
		t.Fatalf("disabled drops = %d", c.DisabledDrops)
	}
	if pool.Stats().InUse != 0 {
		t.Fatal("dropped packet leaked")
	}
}
