package tcp

// Additional TCP behaviour tests: half-close, listener lifecycle,
// retransmission backoff timing, window updates, and state-machine edges.

import (
	"bytes"
	"testing"

	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func TestHalfCloseDataStillFlows(t *testing.T) {
	// After the client closes its sending side, the server can keep
	// sending data until it closes too.
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.Close()
	n.eng.RunFor(20 * 1000)
	if sv.State != CloseWait {
		t.Fatalf("server state %v", sv.State)
	}
	sv.Write([]byte("late data"))
	n.eng.RunFor(20 * 1000)
	if got := cl.Read(100); string(got) != "late data" {
		t.Fatalf("client got %q after half-close", got)
	}
	sv.Close()
	n.eng.RunFor(20 * 1000)
	if sv.State != Closed {
		t.Fatalf("server state %v", sv.State)
	}
}

func TestWriteAfterCloseRefused(t *testing.T) {
	n := newTestNet(t)
	cl, _ := dial(t, n)
	cl.Close()
	if n := cl.Write([]byte("x")); n != 0 {
		t.Fatalf("write after close accepted %d bytes", n)
	}
}

func TestListenerAbortKillsEmbryonic(t *testing.T) {
	n := newTestNet(t)
	l := n.newConn(hostB, 80, pkt.Addr{}, 0)
	l.ListenOn(5)
	cl := n.newConn(hostA, 4000, hostB, 80)
	cl.Connect()
	// Tear the listener down mid-handshake-ish; existing children live on,
	// but the listener stops accepting new SYNs.
	n.eng.RunFor(5 * 1000)
	l.Abort()
	if l.State != Closed {
		t.Fatalf("listener state %v", l.State)
	}
	h2 := n.newConn(hostA, 4001, hostB, 80)
	h2.Connect()
	n.eng.RunFor(20 * 1000)
	if h2.State == Established {
		t.Fatal("connect succeeded against a closed listener")
	}
}

func TestSynRetransmitBackoffTiming(t *testing.T) {
	n := newTestNet(t)
	var sent []sim.Time
	n.drop = func(b []byte) bool { return true }
	n.hooks.Output = func(c *Conn, b []byte) {
		sent = append(sent, n.eng.Now())
	}
	cl := n.newConn(hostA, 4000, hostB, 80)
	cl.Connect()
	n.eng.RunFor(60 * sim.Second)
	// Initial SYN + MaxSynRetries(3) retransmissions with doubling RTO
	// (1s, 2s, 4s).
	if len(sent) != 4 {
		t.Fatalf("SYN transmissions: %d (%v)", len(sent), sent)
	}
	gap1 := sent[1] - sent[0]
	gap2 := sent[2] - sent[1]
	gap3 := sent[3] - sent[2]
	if gap2 < gap1*18/10 || gap3 < gap2*18/10 {
		t.Fatalf("backoff not exponential: %d %d %d", gap1, gap2, gap3)
	}
}

func TestWindowUpdateAfterRead(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 512
	sv.RcvBuf.Limit = 1024
	sv.sendAck()
	n.eng.RunFor(10 * 1000)
	cl.Write(bytes.Repeat([]byte{1}, 4096))
	n.eng.RunFor(sim.Second)
	if sv.RcvBuf.Len() != 1024 {
		t.Fatalf("receiver buffered %d", sv.RcvBuf.Len())
	}
	// Reading must advertise the opened window so transfer resumes
	// without waiting for the (5s) persist probe.
	sv.Read(1024)
	n.eng.RunFor(2 * sim.Second)
	if sv.RcvBuf.Len() == 0 {
		t.Fatal("window update did not restart the transfer")
	}
}

func TestRetransmitAfterTotalLossWindow(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	// Drop everything for a while, then heal the network.
	dropping := true
	n.drop = func(b []byte) bool { return dropping }
	cl.Write([]byte("persistent"))
	n.eng.RunFor(3 * sim.Second)
	if got, _ := sv.Readable(); got != 0 {
		t.Fatal("data leaked through a dropped wire")
	}
	dropping = false
	n.eng.RunFor(20 * sim.Second)
	if got := sv.Read(100); string(got) != "persistent" {
		t.Fatalf("data not retransmitted after healing: %q", got)
	}
	if cl.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions counted")
	}
}

func TestCwndCollapsesOnRTO(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 1024
	pump(t, n, cl, sv, 256*1024) // grow cwnd
	grown := cl.cwnd
	if grown <= 2*cl.MSS {
		t.Fatalf("cwnd did not grow: %d", grown)
	}
	dropping := true
	n.drop = func(b []byte) bool { return dropping }
	cl.Write(bytes.Repeat([]byte{2}, 8192))
	n.eng.RunFor(5 * sim.Second) // several RTOs
	if cl.cwnd != cl.MSS {
		t.Fatalf("cwnd after RTO = %d, want 1 MSS", cl.cwnd)
	}
	if cl.ssthresh >= grown {
		t.Fatalf("ssthresh %d not reduced from %d", cl.ssthresh, grown)
	}
	dropping = false
	n.eng.RunFor(20 * sim.Second)
}

func TestAcceptQueueOrder(t *testing.T) {
	n := newTestNet(t)
	l := n.newConn(hostB, 80, pkt.Addr{}, 0)
	l.ListenOn(10)
	for i := 0; i < 3; i++ {
		c := n.newConn(hostA, uint16(6000+i), hostB, 80)
		c.Connect()
		n.eng.RunFor(5 * 1000)
	}
	if l.AcceptQueueLen() != 3 {
		t.Fatalf("accept queue %d", l.AcceptQueueLen())
	}
	for i := 0; i < 3; i++ {
		nc, ok := l.Accept()
		if !ok || nc.RPort != uint16(6000+i) {
			t.Fatalf("accept %d returned %v %v", i, ok, nc)
		}
	}
}

func TestDuplicateSynAckHarmless(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	// Replay a SYN|ACK at the established client: it must not disturb the
	// connection (the client just re-states its ACK).
	h := pkt.TCPHeader{
		SrcPort: sv.LPort, DstPort: cl.LPort,
		Seq: sv.iss, Ack: cl.iss + 1,
		Flags: pkt.TCPSyn | pkt.TCPAck, Window: 8192,
	}
	cl.Input(hostB, &h, nil)
	if cl.State != Established {
		t.Fatalf("client state %v after duplicate SYN|ACK", cl.State)
	}
	cl.Write([]byte("still works"))
	n.eng.RunFor(10 * 1000)
	if got := sv.Read(100); string(got) != "still works" {
		t.Fatalf("connection broken: %q", got)
	}
}

func TestStrayAckToListenerIgnored(t *testing.T) {
	n := newTestNet(t)
	l := n.newConn(hostB, 80, pkt.Addr{}, 0)
	l.ListenOn(5)
	h := pkt.TCPHeader{SrcPort: 7000, DstPort: 80, Seq: 1, Ack: 999, Flags: pkt.TCPAck, Window: 100}
	l.Input(hostA, &h, nil)
	if l.State != Listen || l.synCount != 0 {
		t.Fatalf("listener disturbed by stray ACK: %v %d", l.State, l.synCount)
	}
}

func TestTimeWaitConnIgnoresLateData(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.Close()
	n.eng.RunFor(20 * 1000)
	sv.Read(10)
	sv.Close()
	n.eng.RunFor(20 * 1000)
	if cl.State != TimeWait {
		t.Fatalf("client state %v", cl.State)
	}
	// A late (retransmitted) FIN arrives during TIME_WAIT: must be
	// acknowledged without corrupting state.
	h := pkt.TCPHeader{
		SrcPort: sv.LPort, DstPort: cl.LPort,
		Seq: sv.sndNxt - 1, Ack: cl.sndNxt,
		Flags: pkt.TCPFin | pkt.TCPAck, Window: 100,
	}
	cl.Input(hostB, &h, nil)
	if cl.State != TimeWait {
		t.Fatalf("late FIN broke TIME_WAIT: %v", cl.State)
	}
	n.eng.RunFor(sim.Second)
	if cl.State != Closed {
		t.Fatalf("TIME_WAIT never expired: %v", cl.State)
	}
}

func TestBacklogFullAccounting(t *testing.T) {
	n := newTestNet(t)
	l := n.newConn(hostB, 80, pkt.Addr{}, 0)
	l.ListenOn(2)
	if l.BacklogFull() {
		t.Fatal("fresh listener reports full backlog")
	}
	for i := 0; i < 2; i++ {
		c := n.newConn(hostA, uint16(6100+i), hostB, 80)
		c.Connect()
	}
	n.eng.RunFor(10 * 1000)
	if !l.BacklogFull() {
		t.Fatalf("backlog should be full: accept queue %d, embryonic %d", l.AcceptQueueLen(), l.synCount)
	}
	l.Accept()
	if l.BacklogFull() {
		t.Fatal("accept did not free a backlog slot")
	}
}

func TestReadableReportsEOFOnlyAfterDrain(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.Write([]byte("tail"))
	cl.Close()
	n.eng.RunFor(20 * 1000)
	rb, fin := sv.Readable()
	if rb != 4 || !fin {
		t.Fatalf("readable=%d fin=%v", rb, fin)
	}
	if got := sv.Read(10); string(got) != "tail" {
		t.Fatalf("got %q", got)
	}
	rb, fin = sv.Readable()
	if rb != 0 || !fin {
		t.Fatalf("after drain: readable=%d fin=%v", rb, fin)
	}
}
