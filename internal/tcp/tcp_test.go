package tcp

import (
	"bytes"
	"testing"

	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// testNet wires Conns together through a simulated wire with configurable
// delay and loss, playing the role of the host environment (timers, output,
// demultiplexing). It is deliberately independent of the kernel packages so
// TCP is testable in isolation.
type testNet struct {
	t      *testing.T
	eng    *sim.Engine
	delay  int64
	drop   func(b []byte) bool // return true to lose the packet
	conns  []*Conn
	timers map[*Conn]map[Timer]sim.Event
	events map[*Conn][]Event
	iss    uint32
	hooks  *Hooks
}

func newTestNet(t *testing.T) *testNet {
	n := &testNet{
		t:      t,
		eng:    sim.NewEngine(),
		delay:  100, // µs one-way
		timers: make(map[*Conn]map[Timer]sim.Event),
		events: make(map[*Conn][]Event),
	}
	n.hooks = &Hooks{
		Now:    n.eng.Now,
		Output: n.output,
		ArmTimer: func(c *Conn, tm Timer, d int64) {
			n.disarm(c, tm)
			m := n.timers[c]
			if m == nil {
				m = make(map[Timer]sim.Event)
				n.timers[c] = m
			}
			m[tm] = n.eng.After(d, func() {
				delete(m, tm)
				c.TimerExpire(tm)
			})
		},
		DisarmTimer: func(c *Conn, tm Timer) { n.disarm(c, tm) },
		Notify: func(c *Conn, ev Event) {
			n.events[c] = append(n.events[c], ev)
		},
		NewChild: func(l *Conn, remote pkt.Addr, rport uint16) *Conn {
			nc := n.newConn(l.Local, l.LPort, remote, rport)
			return nc
		},
		Dealloc: func(c *Conn) {
			for i, q := range n.conns {
				if q == c {
					n.conns = append(n.conns[:i], n.conns[i+1:]...)
					break
				}
			}
		},
		TimeWaitDur:   500 * 1000,
		MaxSynRetries: 3,
	}
	return n
}

func (n *testNet) disarm(c *Conn, tm Timer) {
	if m := n.timers[c]; m != nil {
		if ev, ok := m[tm]; ok {
			n.eng.Cancel(ev)
			delete(m, tm)
		}
	}
}

func (n *testNet) newConn(local pkt.Addr, lport uint16, remote pkt.Addr, rport uint16) *Conn {
	n.iss += 64000
	c := NewConn(n.hooks, local, lport, remote, rport, n.iss)
	n.conns = append(n.conns, c)
	return c
}

// output decodes and routes a packet to the destination conn after delay.
func (n *testNet) output(src *Conn, b []byte) {
	if n.drop != nil && n.drop(b) {
		return
	}
	cp := append([]byte(nil), b...)
	n.eng.After(n.delay, func() { n.deliver(cp) })
}

func (n *testNet) deliver(b []byte) {
	ih, hlen, err := pkt.DecodeIPv4(b)
	if err != nil {
		n.t.Fatalf("bad IP packet on wire: %v", err)
	}
	th, off, err := pkt.DecodeTCP(b[hlen:int(ih.TotalLen)], ih.Src, ih.Dst)
	if err != nil {
		n.t.Fatalf("bad TCP segment on wire: %v", err)
	}
	payload := b[hlen+off : int(ih.TotalLen)]
	// Exact match first, then listener. Closed conns still present in the
	// table receive the segment and answer with RST, as a host would.
	var listener *Conn
	for _, c := range n.conns {
		if c.Local == ih.Dst && c.LPort == th.DstPort {
			if c.listening {
				listener = c
				continue
			}
			if c.Remote == ih.Src && c.RPort == th.SrcPort {
				c.Input(ih.Src, &th, payload)
				return
			}
		}
	}
	if listener != nil {
		listener.Input(ih.Src, &th, payload)
	}
	// Unmatched segments fall on the floor (no RST host behaviour here).
}

func (n *testNet) sawEvent(c *Conn, ev Event) bool {
	for _, e := range n.events[c] {
		if e == ev {
			return true
		}
	}
	return false
}

var (
	hostA = pkt.IP(10, 0, 0, 1)
	hostB = pkt.IP(10, 0, 0, 2)
)

// dial sets up a listener on B and an active open from A, runs the
// handshake, and returns (client, serverChild).
func dial(t *testing.T, n *testNet) (*Conn, *Conn) {
	t.Helper()
	l := n.newConn(hostB, 80, pkt.Addr{}, 0)
	l.ListenOn(5)
	cl := n.newConn(hostA, 4000, hostB, 80)
	cl.Connect()
	n.eng.RunFor(10 * 1000)
	if cl.State != Established {
		t.Fatalf("client state %v", cl.State)
	}
	sv, ok := l.Accept()
	if !ok {
		t.Fatal("no connection to accept")
	}
	if sv.State != Established {
		t.Fatalf("server child state %v", sv.State)
	}
	return cl, sv
}

func TestHandshake(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	if !n.sawEvent(cl, EvEstablished) {
		t.Fatal("client missed EvEstablished")
	}
	if sv.Remote != hostA || sv.RPort != 4000 {
		t.Fatalf("child addressing %v:%d", sv.Remote, sv.RPort)
	}
}

func TestDataTransferBothWays(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.Write([]byte("ping"))
	n.eng.RunFor(10 * 1000)
	if got, _ := sv.Readable(); got != 4 {
		t.Fatalf("server readable %d", got)
	}
	if string(sv.Read(100)) != "ping" {
		t.Fatal("server data mismatch")
	}
	sv.Write([]byte("pong!"))
	n.eng.RunFor(10 * 1000)
	if string(cl.Read(100)) != "pong!" {
		t.Fatal("client data mismatch")
	}
}

func TestMSSNegotiation(t *testing.T) {
	n := newTestNet(t)
	l := n.newConn(hostB, 80, pkt.Addr{}, 0)
	l.ListenOn(5)
	cl := n.newConn(hostA, 4000, hostB, 80)
	cl.MSS = 1460
	cl.Connect()
	n.eng.RunFor(10 * 1000)
	sv, _ := l.Accept()
	if sv == nil || sv.MSS != 1460 {
		t.Fatalf("server MSS not negotiated down: %+v", sv)
	}
	if cl.MSS != 1460 {
		t.Fatalf("client MSS %d", cl.MSS)
	}
}

// pump drives a bulk transfer of total bytes from src to dst, reading at
// the receiver as data arrives; returns received bytes.
func pump(t *testing.T, n *testNet, src, dst *Conn, total int) []byte {
	t.Helper()
	var sent int
	var rcvd []byte
	chunk := bytes.Repeat([]byte{0xa5}, 8192)
	var feed func()
	feed = func() {
		for sent < total {
			c := chunk
			if total-sent < len(c) {
				c = c[:total-sent]
			}
			w := src.Write(c)
			sent += w
			if w < len(c) {
				break // buffer full; retry later
			}
		}
		if sent < total {
			n.eng.After(500, feed)
		}
	}
	var drain func()
	drain = func() {
		rcvd = append(rcvd, dst.Read(1<<20)...)
		if len(rcvd) < total {
			n.eng.After(500, drain)
		}
	}
	n.eng.At(n.eng.Now(), feed)
	n.eng.At(n.eng.Now(), drain)
	n.eng.RunFor(120 * sim.Second)
	return rcvd
}

func TestBulkTransfer(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	const total = 1 << 20
	got := pump(t, n, cl, sv, total)
	if len(got) != total {
		t.Fatalf("received %d of %d bytes", len(got), total)
	}
	for i, b := range got {
		if b != 0xa5 {
			t.Fatalf("corrupt byte at %d", i)
		}
	}
	if cl.Stats.Retransmits != 0 {
		t.Fatalf("unexpected retransmits on a lossless wire: %d", cl.Stats.Retransmits)
	}
}

func TestBulkTransferWithLoss(t *testing.T) {
	n := newTestNet(t)
	rng := sim.NewRand(1234)
	cl, sv := dial(t, n)
	n.drop = func(b []byte) bool { return rng.Float64() < 0.05 }
	const total = 512 * 1024
	got := pump(t, n, cl, sv, total)
	if len(got) != total {
		t.Fatalf("received %d of %d bytes despite retransmission", len(got), total)
	}
	if cl.Stats.Retransmits+cl.Stats.FastRexmts == 0 {
		t.Fatal("no retransmissions recorded on a lossy wire")
	}
}

func TestOutOfOrderDelivery(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 4 // force many tiny segments
	// Reorder by delaying every other packet substantially more.
	toggle := false
	n.hooks.Output = func(c *Conn, b []byte) {
		cp := append([]byte(nil), b...)
		d := n.delay
		if toggle {
			d *= 10
		}
		toggle = !toggle
		n.eng.After(d, func() { n.deliver(cp) })
	}
	cl.Write([]byte("abcdefghijklmnop"))
	n.eng.RunFor(sim.Second)
	got := sv.Read(100)
	if string(got) != "abcdefghijklmnop" {
		t.Fatalf("got %q", got)
	}
	if sv.Stats.OOOSegs == 0 {
		t.Fatal("no out-of-order segments seen; test ineffective")
	}
}

func TestCloseSequence(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.Write([]byte("bye"))
	cl.Close()
	n.eng.RunFor(20 * 1000)
	if sv.State != CloseWait {
		t.Fatalf("server state %v, want CLOSE_WAIT", sv.State)
	}
	if rb, fin := sv.Readable(); rb != 3 || !fin {
		t.Fatalf("readable=%d fin=%v", rb, fin)
	}
	sv.Read(10)
	sv.Close()
	n.eng.RunFor(20 * 1000)
	if cl.State != TimeWait {
		t.Fatalf("client state %v, want TIME_WAIT", cl.State)
	}
	if sv.State != Closed {
		t.Fatalf("server state %v, want CLOSED", sv.State)
	}
	if !n.sawEvent(cl, EvTimeWait) {
		t.Fatal("no EvTimeWait")
	}
	// After the (test-configured 500ms) 2MSL period the client closes too.
	n.eng.RunFor(sim.Second)
	if cl.State != Closed {
		t.Fatalf("client state %v after 2MSL", cl.State)
	}
	if !n.sawEvent(cl, EvClosed) {
		t.Fatal("no EvClosed")
	}
}

func TestSimultaneousClose(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.Close()
	sv.Close()
	n.eng.RunFor(20 * 1000)
	// Both sides sent FINs before seeing the other's: both pass through
	// CLOSING into TIME_WAIT.
	if cl.State != TimeWait || sv.State != TimeWait {
		t.Fatalf("states %v/%v, want TIME_WAIT/TIME_WAIT", cl.State, sv.State)
	}
	n.eng.RunFor(sim.Second)
	if cl.State != Closed || sv.State != Closed {
		t.Fatalf("states %v/%v after 2MSL", cl.State, sv.State)
	}
}

func TestListenBacklogDropsSYNs(t *testing.T) {
	n := newTestNet(t)
	l := n.newConn(hostB, 80, pkt.Addr{}, 0)
	l.ListenOn(2)
	// Three clients connect simultaneously; the third SYN must be dropped
	// silently (and retried by its TCP).
	var cls []*Conn
	for i := 0; i < 3; i++ {
		c := n.newConn(hostA, uint16(5000+i), hostB, 80)
		c.Connect()
		cls = append(cls, c)
	}
	n.eng.RunFor(10 * 1000)
	if l.Stats.SynDropped == 0 {
		t.Fatal("no SYN dropped at full backlog")
	}
	est := 0
	for _, c := range cls {
		if c.State == Established {
			est++
		}
	}
	if est != 2 {
		t.Fatalf("%d clients established, want 2", est)
	}
	// Draining the accept queue lets the retransmitted SYN through.
	l.Accept()
	l.Accept()
	n.eng.RunFor(5 * sim.Second)
	for _, c := range cls {
		if c.State != Established {
			t.Fatalf("client %d state %v after backlog drained", c.LPort, c.State)
		}
	}
}

func TestConnectGivesUpAfterRetries(t *testing.T) {
	n := newTestNet(t)
	n.drop = func(b []byte) bool { return true } // black hole
	cl := n.newConn(hostA, 4000, hostB, 80)
	cl.Connect()
	n.eng.RunFor(120 * sim.Second)
	if cl.State != Closed {
		t.Fatalf("state %v, want CLOSED after giving up", cl.State)
	}
	if !n.sawEvent(cl, EvReset) {
		t.Fatal("no failure notification")
	}
	if cl.Stats.Retransmits < 2 {
		t.Fatalf("SYN retransmits = %d", cl.Stats.Retransmits)
	}
}

func TestConnectionRefusedByRst(t *testing.T) {
	n := newTestNet(t)
	// A closed (non-listening) conn bound at the port answers with RST.
	dead := n.newConn(hostB, 80, hostA, 4000)
	_ = dead // state Closed: Input sends RST
	cl := n.newConn(hostA, 4000, hostB, 80)
	cl.Connect()
	n.eng.RunFor(10 * 1000)
	if cl.State != Closed {
		t.Fatalf("client state %v, want CLOSED after RST", cl.State)
	}
	if !n.sawEvent(cl, EvReset) {
		t.Fatal("no EvReset")
	}
}

func TestAbortSendsRST(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.Abort()
	n.eng.RunFor(10 * 1000)
	if sv.State != Closed {
		t.Fatalf("server state %v after RST", sv.State)
	}
	if !n.sawEvent(sv, EvReset) {
		t.Fatal("server missed EvReset")
	}
}

func TestZeroWindowPersist(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 1024
	sv.RcvBuf.Limit = 2048
	// Fill the receiver's buffer; it will advertise zero window.
	cl.Write(bytes.Repeat([]byte{1}, 8192))
	n.eng.RunFor(sim.Second)
	if sv.RcvBuf.Len() != 2048 {
		t.Fatalf("receiver buffered %d", sv.RcvBuf.Len())
	}
	// Sender must not have lost the remaining data; once the app reads,
	// transfer resumes (via window update or persist probe).
	total := 2048
	for i := 0; i < 40 && total < 8192; i++ {
		got := sv.Read(1 << 20)
		total += len(got)
		n.eng.RunFor(sim.Second)
	}
	if total != 8192 {
		t.Fatalf("only %d bytes arrived", total)
	}
}

func TestFastRetransmit(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 512
	cl.cwnd = 64 * 1024 // plenty of window so dupacks flow
	dropped := false
	count := 0
	n.drop = func(b []byte) bool {
		count++
		if !dropped && count == 3 { // lose one early data segment
			ih, hlen, _ := pkt.DecodeIPv4(b)
			if int(ih.TotalLen) > hlen+20 { // only drop a data segment
				dropped = true
				return true
			}
		}
		return false
	}
	cl.Write(bytes.Repeat([]byte{7}, 8192))
	n.eng.RunFor(150 * 1000) // well under the 200ms min RTO
	if !dropped {
		t.Skip("loss pattern did not hit a data segment")
	}
	if cl.Stats.FastRexmts == 0 {
		t.Fatalf("no fast retransmit (rexmts=%d)", cl.Stats.Retransmits)
	}
	if got := sv.Read(1 << 20); len(got) != 8192 {
		t.Fatalf("received %d", len(got))
	}
}

func TestRTTEstimator(t *testing.T) {
	n := newTestNet(t)
	n.delay = 500
	cl, sv := dial(t, n)
	// Trickle traffic with delayed ACKs inflates RTT samples by the
	// delack interval (as on real BSD); measure the estimator itself with
	// immediate ACKs.
	sv.AckEveryAck = true
	for i := 0; i < 20; i++ {
		cl.Write([]byte("0123456789"))
		n.eng.RunFor(20 * 1000)
		sv.Read(100)
	}
	if cl.srtt == 0 {
		t.Fatal("no RTT samples taken")
	}
	// RTT should be near 2*delay = 1000µs.
	if cl.srtt < 500 || cl.srtt > 5000 {
		t.Fatalf("srtt = %dµs, want ~1000", cl.srtt)
	}
}

func TestSlowStartGrowsCwnd(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 1024
	cl.cwnd = 1024
	start := cl.cwnd
	pump(t, n, cl, sv, 128*1024)
	if cl.cwnd <= start {
		t.Fatalf("cwnd did not grow: %d", cl.cwnd)
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	// With a tiny receive buffer and a receiver that never reads, the
	// sender must stop once the advertised window is consumed. The small
	// window is advertised before any data flows (a window that shrinks
	// under in-flight data legitimately leaves data outstanding).
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 512
	sv.RcvBuf.Limit = 1024
	sv.sendAck() // advertise the shrunken window
	n.eng.RunFor(10 * 1000)
	cl.Write(bytes.Repeat([]byte{2}, 64*1024))
	n.eng.RunFor(30 * sim.Second)
	if sv.RcvBuf.Len() > 1024 {
		t.Fatalf("receiver holds %d bytes, beyond its window", sv.RcvBuf.Len())
	}
	if int(cl.sndNxt-cl.sndUna) > 1024+1 {
		t.Fatalf("sender has %d in flight beyond window", cl.sndNxt-cl.sndUna)
	}
}

func TestDeadConnRepliesRST(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	// Kill the server side silently, then send data: client must get RST.
	sv.State = Closed
	cl.Write([]byte("hello?"))
	n.eng.RunFor(10 * 1000)
	if cl.State != Closed || !n.sawEvent(cl, EvReset) {
		t.Fatalf("client state %v, reset=%v", cl.State, n.sawEvent(cl, EvReset))
	}
}
