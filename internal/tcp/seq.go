package tcp

// TCP sequence-space arithmetic (RFC 793 modular comparisons).

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// seqMax returns the later of two sequence numbers.
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
