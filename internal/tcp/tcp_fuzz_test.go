package tcp

// Robustness: a connection fed arbitrary garbage segments must never
// panic and must keep its internal invariants.

import (
	"testing"
	"testing/quick"

	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// checkInvariants asserts internal sequence-space sanity.
func checkInvariants(t *testing.T, c *Conn) {
	t.Helper()
	if seqGT(c.sndUna, c.sndNxt) {
		t.Fatalf("sndUna %d beyond sndNxt %d", c.sndUna, c.sndNxt)
	}
	if c.cwnd < 1 {
		t.Fatalf("cwnd %d", c.cwnd)
	}
	if c.RcvBuf.Len() > c.RcvBuf.Limit && c.RcvBuf.Limit > 0 {
		t.Fatalf("rcvbuf %d over limit %d", c.RcvBuf.Len(), c.RcvBuf.Limit)
	}
}

// TestRandomSegmentsNoPanic feeds random headers/payloads into
// connections in various states.
func TestRandomSegmentsNoPanic(t *testing.T) {
	f := func(seed uint64, nSegs uint8) bool {
		rng := sim.NewRand(seed)
		n := newTestNet(t)
		cl, sv := dial(t, n)
		l := n.newConn(hostB, 81, pkt.Addr{}, 0)
		l.ListenOn(3)
		targets := []*Conn{cl, sv, l}
		for i := 0; i < int(nSegs); i++ {
			c := targets[rng.Int63n(int64(len(targets)))]
			h := pkt.TCPHeader{
				SrcPort: uint16(rng.Int63n(65536)),
				DstPort: c.LPort,
				Seq:     uint32(rng.Uint64()),
				Ack:     uint32(rng.Uint64()),
				Flags:   byte(rng.Int63n(64)),
				Window:  uint16(rng.Int63n(65536)),
			}
			payload := make([]byte, rng.Int63n(64))
			c.Input(hostA, &h, payload)
			checkInvariants(t, cl)
			checkInvariants(t, sv)
			n.eng.RunFor(rng.Int63n(5000))
		}
		// The engine must drain cleanly afterwards.
		n.eng.RunFor(10 * sim.Second)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomSegmentsAroundValidWindow biases sequence numbers near the
// valid window, where off-by-one bugs live.
func TestRandomSegmentsAroundValidWindow(t *testing.T) {
	f := func(seed uint64, nSegs uint8) bool {
		rng := sim.NewRand(seed)
		n := newTestNet(t)
		cl, sv := dial(t, n)
		for i := 0; i < int(nSegs); i++ {
			base := sv.rcvNxt
			h := pkt.TCPHeader{
				SrcPort: cl.LPort,
				DstPort: sv.LPort,
				Seq:     base + uint32(rng.Int63n(64)) - 32,
				Ack:     sv.sndUna + uint32(rng.Int63n(64)) - 32,
				Flags:   pkt.TCPAck | byte(rng.Int63n(2))*pkt.TCPPsh,
				Window:  uint16(rng.Int63n(65536)),
			}
			payload := make([]byte, rng.Int63n(48))
			for j := range payload {
				payload[j] = byte(rng.Uint64())
			}
			sv.Input(hostA, &h, payload)
			checkInvariants(t, sv)
			n.eng.RunFor(rng.Int63n(2000))
		}
		// The connection must still carry correctly-framed data end to end
		// if it survived in the Established state.
		if cl.State == Established && sv.State == Established {
			sv.RcvBuf.Read(sv.RcvBuf.Len()) // clear garbage
			cl.Write([]byte("probe"))
			n.eng.RunFor(5 * sim.Second)
		}
		n.eng.RunFor(5 * sim.Second)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
