package tcp

// Tests for Nagle's algorithm and delayed acknowledgments.

import (
	"bytes"
	"testing"

	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// countDataSegments wraps the wire to count data-bearing segments.
func countDataSegments(n *testNet) (*int, *int) {
	dataSegs := new(int)
	acks := new(int)
	inner := n.hooks.Output
	n.hooks.Output = func(c *Conn, b []byte) {
		ih, hlen, err := pkt.DecodeIPv4(b)
		if err == nil {
			th, off, err2 := pkt.DecodeTCP(b[hlen:int(ih.TotalLen)], ih.Src, ih.Dst)
			if err2 == nil {
				payload := int(ih.TotalLen) - hlen - off
				if payload > 0 {
					*dataSegs++
				} else if th.Flags == pkt.TCPAck {
					*acks++
				}
			}
		}
		inner(c, b)
	}
	return dataSegs, acks
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 1024
	dataSegs, _ := countDataSegments(n)
	// 20 small writes in quick succession: the first goes out alone, the
	// rest coalesce while it is unacknowledged.
	for i := 0; i < 20; i++ {
		cl.Write(bytes.Repeat([]byte{byte(i)}, 10))
	}
	n.eng.RunFor(sim.Second)
	if got := sv.Read(1000); len(got) != 200 {
		t.Fatalf("received %d bytes", len(got))
	}
	if *dataSegs > 6 {
		t.Fatalf("%d data segments for 20 tinygrams; Nagle not coalescing", *dataSegs)
	}
}

func TestNoDelaySendsEachWrite(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 1024
	cl.NoDelay = true
	cl.cwnd = 64 * 1024
	dataSegs, _ := countDataSegments(n)
	for i := 0; i < 10; i++ {
		cl.Write([]byte("tiny"))
	}
	n.eng.RunFor(sim.Second)
	if got := sv.Read(1000); len(got) != 40 {
		t.Fatalf("received %d bytes", len(got))
	}
	if *dataSegs < 8 {
		t.Fatalf("only %d data segments with NoDelay; writes were coalesced", *dataSegs)
	}
}

func TestDelayedAckHalvesAckTraffic(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 1024
	_, acks := countDataSegments(n)
	pump(t, n, cl, sv, 64*1024)
	withDelack := *acks

	n2 := newTestNet(t)
	cl2, sv2 := dial(t, n2)
	cl2.MSS = 1024
	sv2.AckEveryAck = true
	_, acks2 := countDataSegments(n2)
	pump(t, n2, cl2, sv2, 64*1024)
	without := *acks2

	if withDelack*15/10 > without {
		t.Fatalf("delayed ACKs did not reduce ACK traffic: %d vs %d", withDelack, without)
	}
}

func TestDelackTimerFiresForLoneSegment(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	_ = sv
	cl.Write([]byte("lone"))
	// The single segment's ACK arrives only after the delack interval.
	n.eng.RunFor(50 * 1000) // < 100ms delack
	if cl.sndUna == cl.sndNxt {
		t.Fatal("ACK arrived before the delack timer")
	}
	n.eng.RunFor(200 * 1000)
	if cl.sndUna != cl.sndNxt {
		t.Fatal("delack timer never acknowledged the segment")
	}
}

func TestFinAckedImmediately(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	_ = sv
	cl.Close()
	n.eng.RunFor(10 * 1000) // well under the delack interval
	if cl.State != FinWait2 {
		t.Fatalf("FIN not acknowledged promptly: client in %v", cl.State)
	}
}

func TestNagleFlushesWhenFlightDrains(t *testing.T) {
	n := newTestNet(t)
	cl, sv := dial(t, n)
	cl.MSS = 4096
	cl.Write(bytes.Repeat([]byte{1}, 100)) // goes out immediately (no flight)
	cl.Write(bytes.Repeat([]byte{2}, 100)) // held by Nagle
	n.eng.RunFor(5 * 1000)
	if got, _ := sv.Readable(); got != 100 {
		t.Fatalf("receiver has %d bytes; second tinygram should be held", got)
	}
	// Once the first segment is acknowledged, the held data flushes.
	n.eng.RunFor(sim.Second)
	sv.Read(1000)
	n.eng.RunFor(sim.Second)
	if sv.RcvBuf.Base < 200 {
		t.Fatalf("held data never flushed: %d bytes total", sv.RcvBuf.Base)
	}
}
