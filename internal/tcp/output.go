package tcp

import "lrp/internal/pkt"

// output transmits whatever the send window and congestion window allow,
// including a queued FIN once the buffer drains. Mirrors tcp_output.
func (c *Conn) output() {
	if c.State == Closed || c.State == Listen || c.listening {
		return
	}
	for {
		inFlight := int(c.sndNxt - c.sndUna)
		win := int(c.sndWnd)
		if c.cwnd < win {
			win = c.cwnd
		}
		usable := win - inFlight
		offset := int(c.sndNxt - c.sndUna) // bytes into SndBuf
		if c.finSent && offset > 0 {
			offset-- // FIN occupies one sequence number past the data
		}
		pending := c.SndBuf.Len() - offset
		if pending < 0 {
			pending = 0
		}

		// Zero window with data pending: run the persist machinery.
		if usable <= 0 {
			if pending > 0 && c.sndWnd == 0 && inFlight == 0 {
				c.armPersist()
			}
			return
		}

		n := pending
		if n > usable {
			n = usable
		}
		if n > c.MSS {
			n = c.MSS
		}

		sendFin := c.finQueued && !c.finSent && pending-n == 0 && usable > n
		if n == 0 && !sendFin {
			return
		}
		// Nagle: hold a sub-MSS segment while data is outstanding — but
		// only when the segment is small because the buffer ran dry
		// (n == pending). A window-limited segment (n < pending) is sent:
		// holding it would deadlock against the receiver's delayed ACK.
		if !c.NoDelay && !sendFin && n > 0 && n < c.MSS && n == pending && inFlight > 0 {
			return
		}

		flags := byte(pkt.TCPAck)
		var payload []byte
		if n > 0 {
			payload = c.SndBuf.Peek(offset, n)
			if pending == n {
				flags |= pkt.TCPPsh
			}
		}
		if sendFin {
			flags |= pkt.TCPFin
		}
		seq := c.sndNxt
		c.clearDelack() // the segment carries our ACK
		c.sendFlags(flags, seq, payload, false)
		c.sndNxt += uint32(n)
		if sendFin {
			c.finSent = true
			c.sndNxt++
		}
		// Time one segment per window for RTT estimation (Karn: only
		// non-retransmitted data is timed; rttStart==0 means idle).
		if n > 0 && c.rttStart == 0 {
			c.rttStart = c.H.Now()
			c.rttSeq = seq + uint32(n)
		}
		c.armRexmt()
	}
}

// rto returns the current retransmission timeout.
func (c *Conn) rto() int64 {
	var rto int64
	if c.srtt == 0 {
		rto = initialRTO
	} else {
		rto = c.srtt + 4*c.rttvar
	}
	if rto < minRTO {
		rto = minRTO
	}
	rto <<= uint(c.rexmits)
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// armRexmt (re)starts the retransmission timer.
func (c *Conn) armRexmt() {
	c.H.ArmTimer(c, TimerRexmt, c.rto())
}

func (c *Conn) armPersist() {
	c.H.ArmTimer(c, TimerPersist, persistIvl)
}

// updateRTT folds a measured sample into the Jacobson estimator.
func (c *Conn) updateRTT(sample int64) {
	if sample < 1 {
		sample = 1
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
		return
	}
	delta := sample - c.srtt
	c.srtt += delta / 8
	if delta < 0 {
		delta = -delta
	}
	c.rttvar += (delta - c.rttvar) / 4
}

// TimerExpire processes a fired timer. The host calls it from the same
// execution context it uses for other protocol processing.
func (c *Conn) TimerExpire(t Timer) {
	switch t {
	case TimerRexmt:
		c.rexmtExpire()
	case TimerPersist:
		c.persistExpire()
	case TimerTimeWait:
		if c.State == TimeWait {
			c.toClosed()
		}
	case TimerDelack:
		if c.delackPending {
			c.sendAck()
		}
	}
}

// rexmtExpire retransmits the oldest unacknowledged segment.
func (c *Conn) rexmtExpire() {
	switch c.State {
	case Closed, Listen, TimeWait:
		return
	}
	c.rexmits++
	maxTries := maxRexmits
	if c.State == SynSent || c.State == SynRcvd {
		maxTries = c.H.MaxSynRetries
		if maxTries <= 0 {
			maxTries = 4
		}
	}
	if c.rexmits > maxTries {
		// Give up: the paper's Fig. 5 clients see exactly this when their
		// connection requests are lost at an overloaded server.
		c.notify(EvReset)
		c.toClosed()
		return
	}
	c.Stats.Retransmits++
	c.rttStart = 0 // Karn: do not time retransmitted data

	switch c.State {
	case SynSent:
		c.sendFlags(pkt.TCPSyn, c.iss, nil, true)
	case SynRcvd:
		c.sendFlags(pkt.TCPSyn|pkt.TCPAck, c.iss, nil, true)
	default:
		// Congestion response: multiplicative decrease, restart slow start.
		c.congestionReset()
		c.retransmitHead()
	}
	c.armRexmt()
}

// halveFlight returns half the data in flight, floored at two segments —
// the multiplicative-decrease target.
func (c *Conn) halveFlight() int {
	flight := int(c.sndNxt - c.sndUna)
	if w := int(c.sndWnd); w < flight {
		flight = w
	}
	half := flight / 2
	if half < 2*c.MSS {
		half = 2 * c.MSS
	}
	return half
}

// congestionReset applies the RTO congestion response.
func (c *Conn) congestionReset() {
	c.ssthresh = c.halveFlight()
	c.cwnd = c.MSS
	c.dupAcks = 0
}

// retransmitHead resends one segment starting at sndUna.
func (c *Conn) retransmitHead() {
	n := c.SndBuf.Len()
	if n > c.MSS {
		n = c.MSS
	}
	flags := byte(pkt.TCPAck)
	var payload []byte
	if n > 0 {
		payload = c.SndBuf.Peek(0, n)
	} else if c.finSent {
		flags |= pkt.TCPFin
	} else {
		return
	}
	c.sendFlags(flags, c.sndUna, payload, false)
}

// persistExpire sends a one-byte window probe.
func (c *Conn) persistExpire() {
	if c.State == Closed || c.State == Listen {
		return
	}
	if c.sndWnd > 0 {
		c.output()
		return
	}
	if c.SndBuf.Len() > 0 {
		probe := c.SndBuf.Peek(0, 1)
		c.sendFlags(pkt.TCPAck, c.sndUna, probe, false)
	}
	c.armPersist()
}

// openCwnd grows the congestion window on a new ACK (slow start below
// ssthresh, linear congestion avoidance above).
func (c *Conn) openCwnd() {
	if c.cwnd < c.ssthresh {
		c.cwnd += c.MSS
	} else {
		incr := c.MSS * c.MSS / c.cwnd
		if incr < 1 {
			incr = 1
		}
		c.cwnd += incr
	}
	if max := 64 * 1024; c.cwnd > max {
		c.cwnd = max
	}
}
