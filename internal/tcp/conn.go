// Package tcp implements the TCP state machine used by every network
// subsystem architecture in the reproduction: connection establishment
// with listen backlog, sliding-window data transfer, RTT estimation,
// retransmission with exponential backoff, slow start and congestion
// avoidance, fast retransmit, window probing, and the full close sequence
// including a configurable TIME_WAIT period (the paper's HTTP experiment
// sets it to 500 ms).
//
// The package is execution-context free: segment processing is performed
// by whoever calls Input — a software interrupt (BSD/Early-Demux), the
// LRP asynchronous protocol processing thread, or a receive system call —
// and costs are accounted by the caller. Interaction with the environment
// (sending packets, arming timers, waking sockets) goes through Hooks.
package tcp

import (
	"fmt"

	"lrp/internal/pkt"
	"lrp/internal/socket"
)

// State is a TCP connection state.
type State int

// TCP states.
const (
	Closed State = iota
	Listen
	SynSent
	SynRcvd
	Established
	FinWait1
	FinWait2
	CloseWait
	Closing
	LastAck
	TimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK",
	"TIME_WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Timer identifies one of a connection's timers.
type Timer int

// Connection timers.
const (
	TimerRexmt Timer = iota
	TimerPersist
	TimerTimeWait
	TimerDelack
	NumTimers
)

func (t Timer) String() string {
	switch t {
	case TimerRexmt:
		return "rexmt"
	case TimerPersist:
		return "persist"
	case TimerTimeWait:
		return "timewait"
	case TimerDelack:
		return "delack"
	}
	return "?"
}

// Event is a connection notification delivered via Hooks.Notify.
type Event int

// Connection events.
const (
	// EvEstablished: active open completed.
	EvEstablished Event = iota
	// EvAcceptable: a new connection is ready on a listener's accept queue.
	EvAcceptable
	// EvReadable: receive data (or a FIN) became available.
	EvReadable
	// EvWritable: send buffer space became available.
	EvWritable
	// EvTimeWait: the connection entered TIME_WAIT (NI-LRP deallocates the
	// NI channel here).
	EvTimeWait
	// EvClosed: the connection is fully closed and deallocated.
	EvClosed
	// EvReset: the connection was reset (or gave up retransmitting).
	EvReset
)

// Hooks connects a Conn to its host environment. All callbacks run in the
// context of whatever code called into the Conn.
type Hooks struct {
	// Now returns the current time in µs.
	Now func() int64
	// Output transmits a fully encoded IP packet. b is built in a scratch
	// buffer the connection reuses for its next segment: it is valid only
	// until Output returns, so the host must copy (or fully consume) it.
	Output func(c *Conn, b []byte)
	// ArmTimer (re)schedules a timer to fire after delay µs; DisarmTimer
	// cancels it. The host must call TimerExpire in an appropriate
	// processing context when it fires.
	ArmTimer    func(c *Conn, t Timer, delay int64)
	DisarmTimer func(c *Conn, t Timer)
	// Notify reports socket-visible events.
	Notify func(c *Conn, ev Event)
	// NewChild allocates a connection for an incoming SYN on listener l.
	// The host creates the Conn (with its own ISS), binds it in its
	// demultiplexing tables, and returns it; returning nil refuses the
	// connection (silent drop).
	NewChild func(l *Conn, remote pkt.Addr, rport uint16) *Conn
	// Dealloc tears down host state (PCB/channel bindings) for a dead conn.
	Dealloc func(c *Conn)
	// TimeWaitDur is the 2MSL wait; the paper's Fig. 5 runs used 500 ms
	// instead of the default 30 s.
	TimeWaitDur int64
	// MaxSynRetries bounds SYN/SYN-ACK retransmissions.
	MaxSynRetries int
}

// Stats counts per-connection protocol events.
type Stats struct {
	SegsIn      uint64
	SegsOut     uint64
	BytesIn     uint64
	BytesOut    uint64
	Retransmits uint64
	FastRexmts  uint64
	DupAcksIn   uint64
	OOOSegs     uint64
	DroppedSegs uint64 // segments dropped by protocol processing
	SynDropped  uint64 // SYNs dropped at a full listen backlog
}

// Default protocol parameters.
const (
	DefaultMSS = 9140 // ATM MTU 9180 - 40 bytes of headers
	DefaultBuf = 32 * 1024
	minRTO     = 200 * 1000       // 200 ms
	maxRTO     = 64 * 1000 * 1000 // 64 s
	initialRTO = 1000 * 1000      // 1 s
	persistIvl = 5 * 1000 * 1000
	maxRexmits = 8
	oooLimit   = 32
)

type oooSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

// Conn is one TCP connection (or listener).
type Conn struct {
	H *Hooks

	Local  pkt.Addr
	LPort  uint16
	Remote pkt.Addr
	RPort  uint16

	State State

	// UserData points back at the owning socket; opaque to this package.
	UserData any

	// Send state.
	iss       uint32
	sndUna    uint32
	sndNxt    uint32
	sndWnd    uint32
	SndBuf    *socket.StreamBuf
	finQueued bool
	finSent   bool
	cwnd      int
	ssthresh  int
	dupAcks   int
	rexmits   int
	rttSeq    uint32
	rttStart  int64
	srtt      int64 // scaled: actual srtt (µs)
	rttvar    int64

	// Receive state.
	rcvNxt      uint32
	RcvBuf      *socket.StreamBuf
	lastAdvWnd  uint32
	ooo         []oooSeg
	peerFinRcvd bool

	// MSS is the negotiated maximum segment size.
	MSS int

	// NoDelay disables Nagle's algorithm (small segments are held while
	// data is in flight, as 4.4BSD does by default).
	NoDelay bool
	// AckEveryAck disables delayed acknowledgments (BSD acknowledges
	// every second segment or after the fast-timeout, whichever first).
	AckEveryAck   bool
	delackPending bool
	delackSegs    int

	// Listener state.
	listening bool
	backlog   int
	synCount  int
	acceptQ   []*Conn
	parent    *Conn

	ipID uint16

	// txScratch is reused for every outgoing segment build (see
	// Hooks.Output for the resulting lifetime contract).
	txScratch []byte

	Stats Stats
}

// NewConn creates a connection object in the Closed state.
func NewConn(h *Hooks, local pkt.Addr, lport uint16, remote pkt.Addr, rport uint16, iss uint32) *Conn {
	return &Conn{
		H:        h,
		Local:    local,
		LPort:    lport,
		Remote:   remote,
		RPort:    rport,
		iss:      iss,
		sndUna:   iss,
		sndNxt:   iss,
		SndBuf:   socket.NewStreamBuf(DefaultBuf),
		RcvBuf:   socket.NewStreamBuf(DefaultBuf),
		MSS:      DefaultMSS,
		cwnd:     DefaultMSS,
		ssthresh: 64 * 1024,
	}
}

// SetBufSizes resizes the socket buffers (must be called before data
// transfer; the paper's throughput test used 32 KByte buffers).
func (c *Conn) SetBufSizes(snd, rcv int) {
	c.SndBuf.Limit = snd
	c.RcvBuf.Limit = rcv
}

// ListenOn puts the connection into LISTEN with the given backlog.
func (c *Conn) ListenOn(backlog int) {
	if backlog < 1 {
		backlog = 1
	}
	c.State = Listen
	c.listening = true
	c.backlog = backlog
}

// BacklogFull reports whether a new SYN would currently be refused —
// LRP's trigger for disabling protocol processing on the listen channel.
func (c *Conn) BacklogFull() bool {
	return c.listening && c.synCount+len(c.acceptQ) >= c.backlog
}

// Accept dequeues an established connection from a listener.
func (c *Conn) Accept() (*Conn, bool) {
	if len(c.acceptQ) == 0 {
		return nil, false
	}
	nc := c.acceptQ[0]
	c.acceptQ = c.acceptQ[1:]
	nc.parent = nil
	return nc, true
}

// AcceptQueueLen returns the number of connections awaiting accept.
func (c *Conn) AcceptQueueLen() int { return len(c.acceptQ) }

// Connect starts an active open (sends the SYN).
func (c *Conn) Connect() {
	c.State = SynSent
	c.sndNxt = c.iss
	c.sendFlags(pkt.TCPSyn, c.sndNxt, nil, true)
	c.sndNxt++
	c.armRexmt()
}

// SndNxt returns the next send sequence number (observability/testing).
func (c *Conn) SndNxt() uint32 { return c.sndNxt }

// RcvNxt returns the next expected receive sequence number.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cwnd }

// SRTT returns the smoothed round-trip time estimate in µs (0 before the
// first sample).
func (c *Conn) SRTT() int64 { return c.srtt }

// Readable returns the number of bytes available to read, and whether the
// peer has closed (EOF after the bytes are drained).
func (c *Conn) Readable() (int, bool) {
	return c.RcvBuf.Len(), c.peerFinRcvd
}

// Read removes up to n bytes from the receive buffer, sending a window
// update if the window had collapsed.
func (c *Conn) Read(n int) []byte {
	wasSmall := c.windowSmall()
	out := c.RcvBuf.Read(n)
	if len(out) > 0 && wasSmall && !c.windowSmall() {
		// Window opened meaningfully: tell the peer.
		c.sendAck()
	}
	return out
}

// windowSmall reports whether the advertisable window is below the
// update threshold: two segments or half the receive buffer, whichever is
// smaller (the BSD window-update criterion).
func (c *Conn) windowSmall() bool {
	threshold := 2 * c.MSS
	if lim := c.RcvBuf.Limit; lim > 0 && lim/2 < threshold {
		threshold = lim / 2
	}
	return c.RcvBuf.Space() < threshold
}

// Write appends data to the send buffer and transmits what the windows
// allow; it returns the number of bytes accepted.
func (c *Conn) Write(data []byte) int {
	if c.State != Established && c.State != CloseWait {
		return 0
	}
	if c.finQueued {
		return 0
	}
	n := c.SndBuf.Append(data)
	c.output()
	return n
}

// WriteSpace returns the free space in the send buffer.
func (c *Conn) WriteSpace() int { return c.SndBuf.Space() }

// Close performs an orderly close: any buffered data is sent first, then a
// FIN. Reading is still possible until the peer closes.
func (c *Conn) Close() {
	switch c.State {
	case Closed, Listen, SynSent:
		c.toClosed()
		return
	case Established:
		c.State = FinWait1
	case CloseWait:
		c.State = LastAck
	default:
		return // already closing
	}
	c.finQueued = true
	c.output()
}

// Abort sends a RST and discards the connection immediately.
func (c *Conn) Abort() {
	if c.State != Closed && c.State != Listen && c.State != SynSent {
		c.sendRST(c.sndNxt)
	}
	c.toClosed()
}

// toClosed finalizes teardown.
//
//lrp:coldalloc runs once per connection lifetime, never per segment
func (c *Conn) toClosed() {
	if c.State == Closed && !c.listening {
		return
	}
	prev := c.State
	c.State = Closed
	c.listening = false
	for _, t := range []Timer{TimerRexmt, TimerPersist, TimerTimeWait} {
		c.H.DisarmTimer(c, t)
	}
	if c.parent != nil {
		// Dying embryonic connection: release the backlog slot.
		c.parent.synCount--
		c.parent = nil
	}
	if c.H.Dealloc != nil {
		c.H.Dealloc(c)
	}
	if prev != Closed {
		c.notify(EvClosed)
	}
}

func (c *Conn) notify(ev Event) {
	if c.H.Notify != nil {
		c.H.Notify(c, ev)
	}
}

// rcvWnd returns the window to advertise.
func (c *Conn) rcvWnd() uint16 {
	sp := c.RcvBuf.Space()
	if sp > 65535 {
		sp = 65535
	}
	return uint16(sp)
}

// sendFlags emits a control/data segment.
func (c *Conn) sendFlags(flags byte, seq uint32, payload []byte, withMSS bool) {
	h := pkt.TCPHeader{
		SrcPort: c.LPort,
		DstPort: c.RPort,
		Seq:     seq,
		Window:  c.rcvWnd(),
		Flags:   flags,
	}
	if flags&pkt.TCPAck != 0 {
		h.Ack = c.rcvNxt
	}
	if withMSS {
		h.MSS = uint16(c.MSS)
	}
	c.ipID++
	c.txScratch = pkt.AppendTCP(c.txScratch[:0], c.Local, c.Remote, &h, c.ipID, 64, payload)
	c.Stats.SegsOut++
	c.Stats.BytesOut += uint64(len(payload))
	c.lastAdvWnd = uint32(h.Window)
	c.H.Output(c, c.txScratch)
}

// sendAck emits a bare ACK advertising the current window and clears any
// pending delayed acknowledgment.
func (c *Conn) sendAck() {
	c.clearDelack()
	c.sendFlags(pkt.TCPAck, c.sndNxt, nil, false)
}

// delackInterval is the delayed-ACK fast timeout (BSD's 200 ms fasttimo
// fires, on average, 100 ms after data arrives).
const delackInterval = 100 * 1000

// ackData acknowledges received in-order data: immediately for every
// second segment (or when disabled), otherwise after the delack timer.
func (c *Conn) ackData() {
	if c.AckEveryAck {
		c.sendAck()
		return
	}
	c.delackSegs++
	if c.delackSegs >= 2 {
		c.sendAck()
		return
	}
	if !c.delackPending {
		c.delackPending = true
		c.H.ArmTimer(c, TimerDelack, delackInterval)
	}
}

// clearDelack cancels a pending delayed acknowledgment (any segment we
// transmit carries the ACK anyway).
func (c *Conn) clearDelack() {
	c.delackSegs = 0
	if c.delackPending {
		c.delackPending = false
		c.H.DisarmTimer(c, TimerDelack)
	}
}

// sendRST emits a reset.
func (c *Conn) sendRST(seq uint32) {
	h := pkt.TCPHeader{
		SrcPort: c.LPort, DstPort: c.RPort,
		Seq: seq, Ack: c.rcvNxt,
		Flags: pkt.TCPRst | pkt.TCPAck,
	}
	c.ipID++
	c.txScratch = pkt.AppendTCP(c.txScratch[:0], c.Local, c.Remote, &h, c.ipID, 64, nil)
	c.Stats.SegsOut++
	c.H.Output(c, c.txScratch)
}
