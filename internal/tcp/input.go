package tcp

import "lrp/internal/pkt"

// Input processes one received segment. src is the sending host's address
// (from the IP header), needed by listeners to address new children. The
// header must already be decoded and checksum-verified by the caller
// (which also accounts the processing cost in its own execution context).
func (c *Conn) Input(src pkt.Addr, h *pkt.TCPHeader, payload []byte) {
	c.Stats.SegsIn++

	if c.listening {
		c.listenInput(src, h)
		return
	}

	switch c.State {
	case Closed:
		// Stray segment to a dead connection: RST unless it is itself one.
		if h.Flags&pkt.TCPRst == 0 {
			c.sendRST(h.Ack)
		}
		return
	case SynSent:
		c.synSentInput(h)
		return
	}

	// RST processing (loose validation: accept any in-window reset).
	if h.Flags&pkt.TCPRst != 0 {
		c.Stats.DroppedSegs++
		c.notify(EvReset)
		c.toClosed()
		return
	}

	// A SYN on a synchronized connection: duplicate SYN|ACK retransmission
	// in SYN_RCVD is benign; anything else gets an ACK re-stating state.
	if h.Flags&pkt.TCPSyn != 0 && c.State != SynRcvd {
		c.sendAck()
		return
	}

	if h.Flags&pkt.TCPAck == 0 {
		c.Stats.DroppedSegs++
		return
	}

	c.ackInput(h)
	if c.State == Closed {
		return
	}

	if len(payload) > 0 || h.Flags&pkt.TCPFin != 0 {
		c.dataInput(h, payload)
	}

	// Piggyback transmission opportunities created by the ACK.
	c.output()
}

// listenInput handles segments arriving on a listening connection.
func (c *Conn) listenInput(src pkt.Addr, h *pkt.TCPHeader) {
	if h.Flags&pkt.TCPRst != 0 {
		return
	}
	if h.Flags&pkt.TCPSyn == 0 {
		// Not a connection request; stale segment (e.g. to a closed
		// child): ignore. A RST here would interfere with TIME_WAIT
		// assassination semantics we don't model.
		c.Stats.DroppedSegs++
		return
	}
	if c.BacklogFull() {
		// BSD drops the SYN silently once the backlog fills; the client
		// retransmits and backs off exponentially.
		c.Stats.SynDropped++
		return
	}
	if c.H.NewChild == nil {
		c.Stats.SynDropped++
		return
	}
	nc := c.H.NewChild(c, src, h.SrcPort)
	if nc == nil {
		c.Stats.SynDropped++
		return
	}
	nc.parent = c
	c.synCount++
	nc.State = SynRcvd
	nc.rcvNxt = h.Seq + 1
	nc.sndWnd = uint32(h.Window)
	if h.MSS != 0 && int(h.MSS) < nc.MSS {
		nc.MSS = int(h.MSS)
	}
	if nc.cwnd > nc.MSS {
		nc.cwnd = nc.MSS
	}
	nc.sndNxt = nc.iss + 1
	nc.sendFlags(pkt.TCPSyn|pkt.TCPAck, nc.iss, nil, true)
	nc.armRexmt()
}

// synSentInput completes an active open.
func (c *Conn) synSentInput(h *pkt.TCPHeader) {
	if h.Flags&pkt.TCPRst != 0 {
		// Connection refused.
		c.notify(EvReset)
		c.toClosed()
		return
	}
	if h.Flags&(pkt.TCPSyn|pkt.TCPAck) != pkt.TCPSyn|pkt.TCPAck {
		c.Stats.DroppedSegs++
		return
	}
	if h.Ack != c.iss+1 {
		c.sendRST(h.Ack)
		return
	}
	c.rcvNxt = h.Seq + 1
	c.sndUna = h.Ack
	c.sndWnd = uint32(h.Window)
	if h.MSS != 0 && int(h.MSS) < c.MSS {
		c.MSS = int(h.MSS)
	}
	if c.cwnd > c.MSS {
		c.cwnd = c.MSS
	}
	c.rexmits = 0
	c.H.DisarmTimer(c, TimerRexmt)
	c.State = Established
	c.sendAck()
	c.notify(EvEstablished)
	c.output()
}

// ackInput processes the acknowledgment and window fields.
func (c *Conn) ackInput(h *pkt.TCPHeader) {
	ack := h.Ack

	// Handshake completion for passive opens.
	if c.State == SynRcvd {
		if ack == c.iss+1 {
			c.sndUna = ack
			c.sndWnd = uint32(h.Window)
			c.rexmits = 0
			c.H.DisarmTimer(c, TimerRexmt)
			c.State = Established
			if p := c.parent; p != nil {
				p.synCount--
				p.acceptQ = append(p.acceptQ, c) //lrp:coldalloc once per accepted connection, bounded by the listen backlog
				p.notify(EvAcceptable)
			}
			c.notify(EvEstablished)
		}
		return
	}

	switch {
	case seqGT(ack, c.sndNxt):
		// Acks data we never sent.
		c.sendAck()
		return
	case seqLEQ(ack, c.sndUna):
		// Duplicate ACK.
		if ack == c.sndUna && c.SndBuf.Len() > 0 && uint32(h.Window) == c.sndWnd {
			c.Stats.DupAcksIn++
			c.dupAcks++
			if c.dupAcks == 3 {
				// Fast retransmit (Reno without full fast recovery): halve
				// the window and resend the missing segment.
				c.Stats.FastRexmts++
				half := c.halveFlight()
				c.ssthresh = half
				c.cwnd = half
				c.retransmitHead()
				c.armRexmt()
			}
		}
		c.sndWnd = uint32(h.Window)
		return
	}

	// New data acknowledged.
	c.dupAcks = 0
	acked := int(ack - c.sndUna)
	dataAcked := acked
	if c.finSent && ack == c.sndNxt {
		dataAcked-- // the FIN's sequence slot
	}
	if dataAcked > 0 {
		c.SndBuf.Discard(dataAcked)
		c.notify(EvWritable)
	}
	c.sndUna = ack
	c.sndWnd = uint32(h.Window)
	c.rexmits = 0

	// RTT sample.
	if c.rttStart != 0 && seqGEQ(ack, c.rttSeq) {
		c.updateRTT(c.H.Now() - c.rttStart)
		c.rttStart = 0
	}

	c.openCwnd()

	if c.sndUna == c.sndNxt {
		c.H.DisarmTimer(c, TimerRexmt)
	} else {
		c.armRexmt()
	}

	// Close-sequence state transitions driven by our FIN being acked.
	finAcked := c.finSent && ack == c.sndNxt
	switch c.State {
	case FinWait1:
		if finAcked {
			c.State = FinWait2
		}
	case Closing:
		if finAcked {
			c.enterTimeWait()
		}
	case LastAck:
		if finAcked {
			c.toClosed()
		}
	}
}

// dataInput processes the payload (and FIN) of a segment.
func (c *Conn) dataInput(h *pkt.TCPHeader, payload []byte) {
	seq := h.Seq
	fin := h.Flags&pkt.TCPFin != 0

	// Trim data already received.
	if seqLT(seq, c.rcvNxt) {
		skip := int(c.rcvNxt - seq)
		if skip >= len(payload) {
			if !fin || seqLT(seq+uint32(len(payload)), c.rcvNxt) {
				// Entirely duplicate.
				c.sendAck()
				return
			}
			payload = nil
		} else {
			payload = payload[skip:]
		}
		seq = c.rcvNxt
	}

	if seq != c.rcvNxt {
		// Out of order: queue (bounded) and send a duplicate ACK to
		// trigger fast retransmit at the sender.
		c.Stats.OOOSegs++
		if len(c.ooo) < oooLimit {
			cp := append([]byte(nil), payload...)                       //lrp:coldalloc loss-recovery path: the segment must outlive its mbuf
			c.ooo = append(c.ooo, oooSeg{seq: seq, data: cp, fin: fin}) //lrp:coldalloc loss-recovery path, bounded by oooLimit
		}
		c.sendAck()
		return
	}

	c.acceptData(payload, fin)
	c.drainOOO()
	if c.peerFinRcvd || len(payload) == 0 {
		// FIN (or pure window probes) are acknowledged immediately.
		c.sendAck()
		return
	}
	c.ackData()
}

// acceptData appends in-order payload to the receive buffer and handles a
// FIN that immediately follows it.
func (c *Conn) acceptData(payload []byte, fin bool) {
	if len(payload) > 0 {
		n := c.RcvBuf.Append(payload)
		// Bytes beyond the buffer are dropped; the advertised window
		// should have prevented this, but a shrunken window and data in
		// flight can race. The peer retransmits.
		c.rcvNxt += uint32(n)
		c.Stats.BytesIn += uint64(n)
		if n > 0 {
			c.notify(EvReadable)
		}
		if n < len(payload) {
			return // FIN (if any) is beyond what we accepted
		}
	}
	if fin && !c.peerFinRcvd {
		c.peerFinRcvd = true
		c.rcvNxt++
		c.notify(EvReadable)
		switch c.State {
		case Established:
			c.State = CloseWait
		case FinWait1:
			// Our FIN unacked and peer's FIN arrived: simultaneous close.
			c.State = Closing
		case FinWait2:
			c.enterTimeWait()
		}
	}
}

// drainOOO merges queued out-of-order segments that are now in order.
func (c *Conn) drainOOO() {
	for {
		progress := false
		for i := 0; i < len(c.ooo); i++ {
			s := c.ooo[i]
			if seqGT(s.seq, c.rcvNxt) {
				continue
			}
			// Usable: trim any overlap.
			payload := s.data
			if seqLT(s.seq, c.rcvNxt) {
				skip := int(c.rcvNxt - s.seq)
				if skip > len(payload) {
					payload = nil
				} else {
					payload = payload[skip:]
				}
			}
			c.acceptData(payload, s.fin)
			c.ooo = append(c.ooo[:i], c.ooo[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}

// enterTimeWait starts the 2MSL wait.
func (c *Conn) enterTimeWait() {
	c.State = TimeWait
	c.H.DisarmTimer(c, TimerRexmt)
	c.H.DisarmTimer(c, TimerPersist)
	dur := c.H.TimeWaitDur
	if dur <= 0 {
		dur = 30 * 1000 * 1000
	}
	c.H.ArmTimer(c, TimerTimeWait, dur)
	c.notify(EvTimeWait)
}
