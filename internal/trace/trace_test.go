package trace

import (
	"strings"
	"testing"
)

func fakeClock() (func() int64, *int64) {
	t := new(int64)
	return func() int64 { *t += 10; return *t }, t
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(KindDrop, "ignored %d", 1)
	if l.Len() != 0 || l.Overwritten() != 0 || l.Dump() != "" || l.Events() != nil {
		t.Fatal("nil log misbehaved")
	}
	l.SetFilter(func(Kind) bool { return true })
}

func TestAppendAndDump(t *testing.T) {
	clock, _ := fakeClock()
	l := New(8, clock)
	l.Add(KindDispatch, "proc %s", "worker")
	l.Add(KindDrop, "channel full")
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	d := l.Dump()
	for _, want := range []string{"dispatch", "proc worker", "drop", "channel full", "10µs", "20µs"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestRingOverwrite(t *testing.T) {
	clock, _ := fakeClock()
	l := New(3, clock)
	for i := 0; i < 7; i++ {
		l.Add(KindUser, "e%d", i)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Overwritten() != 4 {
		t.Fatalf("overwritten = %d", l.Overwritten())
	}
	evs := l.Events()
	// Chronological: e4, e5, e6.
	want := []string{"e4", "e5", "e6"}
	for i, e := range evs {
		if e.Detail != want[i] {
			t.Fatalf("events %v", evs)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At <= evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestFilter(t *testing.T) {
	clock, _ := fakeClock()
	l := New(8, clock)
	l.SetFilter(func(k Kind) bool { return k == KindDrop })
	l.Add(KindDispatch, "skipped")
	l.Add(KindDrop, "kept")
	if l.Len() != 1 || l.Events()[0].Detail != "kept" {
		t.Fatalf("filter failed: %v", l.Events())
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindDispatch; k <= KindUser; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind format")
	}
}
