// Package trace provides a lightweight, bounded event log for the
// simulation: kernels and hosts append timestamped events (dispatches,
// interrupts, demux verdicts, queue drops) and tools dump them for
// debugging. Tracing is off unless a Log is attached, and appending to a
// nil Log is a no-op, so instrumented code paths cost nothing in normal
// runs.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindDispatch Kind = iota // scheduler gave a process the CPU
	KindIntr                 // hardware interrupt work ran
	KindSoftIntr             // software interrupt work ran
	KindDemux                // a packet was classified
	KindDrop                 // a packet was dropped (detail says where)
	KindDeliver              // a message reached a socket queue
	KindProto                // protocol event (TCP state change etc.)
	KindUser                 // application-defined
	KindFault                // fault injection fired (detail says which impairment)
)

var kindNames = [...]string{
	"dispatch", "intr", "softintr", "demux", "drop", "deliver", "proto", "user", "fault",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one log entry.
type Event struct {
	At     int64 // simulated µs
	Kind   Kind
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%10dµs %-8s %s", e.At, e.Kind, e.Detail)
}

// Log is a bounded ring of events. The zero value is unusable; use New.
// A nil *Log accepts (and discards) events, so callers never need to
// check for enablement.
type Log struct {
	now     func() int64
	events  []Event
	next    int
	wrapped bool
	dropped uint64
	filter  func(Kind) bool
}

// New creates a log holding up to capacity events (older events are
// overwritten). now supplies timestamps — typically sim.Engine.Now.
func New(capacity int, now func() int64) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{now: now, events: make([]Event, 0, capacity)}
}

// SetFilter restricts recording to kinds where keep returns true.
func (l *Log) SetFilter(keep func(Kind) bool) {
	if l != nil {
		l.filter = keep
	}
}

// Add records an event. Safe on a nil log.
func (l *Log) Add(k Kind, format string, args ...any) {
	if l == nil {
		return
	}
	if l.filter != nil && !l.filter(k) {
		return
	}
	e := Event{At: l.now(), Kind: k, Detail: fmt.Sprintf(format, args...)}
	if len(l.events) < cap(l.events) {
		l.events = append(l.events, e) //lrp:nolint hotalloc -- guarded by len < cap: appends into preallocated capacity, never grows
		return
	}
	// Ring: overwrite oldest.
	l.events[l.next] = e
	l.next = (l.next + 1) % cap(l.events)
	l.wrapped = true
	l.dropped++
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Overwritten returns how many events were lost to the ring bound.
func (l *Log) Overwritten() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Events returns retained events in chronological order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	if !l.wrapped {
		return append([]Event(nil), l.events...)
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// Dump renders the retained events, one per line.
func (l *Log) Dump() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	if l.dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events overwritten)\n", l.dropped)
	}
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
