// Package socket provides the socket-layer data structures shared by all
// network-subsystem architectures: sockets, datagram receive queues,
// stream buffers and the wait queues processes block on. Protocol state
// machines live in the udp and tcp packages; system-call semantics (and
// thus the difference between BSD and LRP receive processing) live in the
// core package.
package socket

import (
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
)

// Type distinguishes datagram (UDP) from stream (TCP) sockets.
type Type int

const (
	// Dgram is a UDP socket.
	Dgram Type = iota
	// Stream is a TCP socket.
	Stream
)

// Datagram is one received UDP message with its source address.
type Datagram struct {
	Data  []byte
	Src   pkt.Addr
	SPort uint16
	// Arrival is when the packet arrived from the wire, for latency
	// measurements.
	Arrival int64
	// M, when non-nil, owns Data's backing storage: the datagram still
	// rides in the kernel buffer it arrived in (real kernels free the mbuf
	// after recv's copyout; the simulation hands the bytes over instead).
	// A consumer that is done with Data should call Release so the buffer
	// returns to its pool; dropping the datagram without releasing is safe
	// — the collector reclaims it — but wastes the pool's free lists.
	M *mbuf.Mbuf
}

// Release returns the datagram's backing buffer to its pool. Data must not
// be used afterwards. Safe on datagrams that own no buffer, and on the
// zero Datagram.
//
//lrp:hotpath
func (d *Datagram) Release() {
	if m := d.M; m != nil {
		d.M, d.Data = nil, nil
		m.EndTransfer()
	}
}

// DgramQueue is a bounded FIFO of received datagrams (the BSD socket
// receive queue for UDP, bounded in messages).
type DgramQueue struct {
	Limit int
	q     []Datagram
	drops uint64
}

// NewDgramQueue returns a queue bounded at limit datagrams (0 = unbounded).
func NewDgramQueue(limit int) *DgramQueue { return &DgramQueue{Limit: limit} }

// Len returns the number of queued datagrams.
func (q *DgramQueue) Len() int { return len(q.q) }

// Full reports whether the queue is at its limit.
func (q *DgramQueue) Full() bool { return q.Limit > 0 && len(q.q) >= q.Limit }

// Drops returns the count of datagrams refused because the queue was full.
func (q *DgramQueue) Drops() uint64 { return q.drops }

// Enqueue appends d; it reports false (and counts a drop) if full.
//
//lrp:coldalloc amortized: the queue keeps its capacity until it drains past the trim threshold
func (q *DgramQueue) Enqueue(d Datagram) bool {
	if q.Full() {
		q.drops++
		return false
	}
	q.q = append(q.q, d)
	return true
}

// Dequeue removes and returns the head datagram.
func (q *DgramQueue) Dequeue() (Datagram, bool) {
	if len(q.q) == 0 {
		return Datagram{}, false
	}
	d := q.q[0]
	q.q[0] = Datagram{}
	q.q = q.q[1:]
	if len(q.q) == 0 && cap(q.q) > 1024 {
		q.q = nil
	}
	return d, true
}

// StreamBuf is a bounded byte buffer (TCP send/receive socket buffer).
type StreamBuf struct {
	Limit int
	data  []byte
	// Base tracks how many bytes have ever been removed, so stream offsets
	// can be mapped to sequence numbers by the TCP layer.
	Base int64
}

// NewStreamBuf returns a buffer bounded at limit bytes.
func NewStreamBuf(limit int) *StreamBuf { return &StreamBuf{Limit: limit} }

// Len returns the number of buffered bytes.
func (b *StreamBuf) Len() int { return len(b.data) }

// Space returns how many more bytes fit.
func (b *StreamBuf) Space() int {
	if b.Limit <= 0 {
		return int(^uint(0) >> 1)
	}
	s := b.Limit - len(b.data)
	if s < 0 {
		return 0
	}
	return s
}

// Append copies in as much of p as fits and returns the number accepted.
//
//lrp:coldalloc amortized growth bounded by Limit: the socket buffer reaches steady-state capacity and stops allocating
func (b *StreamBuf) Append(p []byte) int {
	n := len(p)
	if sp := b.Space(); n > sp {
		n = sp
	}
	b.data = append(b.data, p[:n]...)
	return n
}

// Read removes up to n bytes from the front.
func (b *StreamBuf) Read(n int) []byte {
	if n > len(b.data) {
		n = len(b.data)
	}
	out := make([]byte, n)
	copy(out, b.data)
	b.data = b.data[n:]
	b.Base += int64(n)
	if len(b.data) == 0 && cap(b.data) > 64*1024 {
		b.data = nil
	}
	return out
}

// Peek returns up to n bytes starting at offset off from the front,
// without removing them (used by TCP retransmission).
func (b *StreamBuf) Peek(off, n int) []byte {
	if off >= len(b.data) {
		return nil
	}
	end := off + n
	if end > len(b.data) {
		end = len(b.data)
	}
	return b.data[off:end]
}

// Discard removes n bytes from the front without copying (ACK processing).
func (b *StreamBuf) Discard(n int) {
	if n > len(b.data) {
		n = len(b.data)
	}
	b.data = b.data[n:]
	b.Base += int64(n)
	if len(b.data) == 0 && cap(b.data) > 64*1024 {
		b.data = nil
	}
}

// Stats collects per-socket counters used by the experiments.
type Stats struct {
	RxDelivered uint64 // messages/segments delivered to the application
	RxBytes     uint64
	TxPackets   uint64
	TxBytes     uint64
	// SockQDrops counts packets discarded at the socket queue (BSD) —
	// distinct from channel-queue drops, which live on the NI channel.
	SockQDrops uint64
	// ProtoDrops counts packets discarded during protocol processing
	// (bad checksum, no connection state, etc.).
	ProtoDrops uint64
}

// Socket is one communication endpoint.
type Socket struct {
	Type  Type
	Proto byte

	Local  pkt.Addr
	LPort  uint16
	Remote pkt.Addr
	RPort  uint16

	Bound     bool
	Connected bool
	Closed    bool

	// NoUDPChecksum disables UDP checksumming on this socket (the paper's
	// UDP throughput test ran with checksumming disabled).
	NoUDPChecksum bool

	// Owner is the process that receives this socket's traffic; LRP
	// schedules and charges receive processing to it. For sockets shared
	// by several processes, this is the highest-priority participant.
	Owner *kernel.Proc

	// RecvDgrams is the datagram receive queue (Dgram sockets).
	RecvDgrams *DgramQueue

	// Conn is the attached TCP connection state (Stream sockets); typed
	// as any to avoid an import cycle with the tcp package.
	Conn any

	// Backlog is the configured listen backlog (the live accept queue
	// lives on the TCP connection).
	Backlog int
	// Listening marks a stream socket in LISTEN state.
	Listening bool

	// NIChan is the LRP network-interface channel feeding this socket
	// (nil under BSD and Early-Demux).
	NIChan *nic.Channel

	// SignalAct caches the host's channel-signal action for this socket so
	// the empty->nonempty interrupt path does not allocate a closure per
	// signal. Built lazily by the host; opaque to this package.
	SignalAct func()

	// Wait queues.
	RcvWait    kernel.WaitQ
	SndWait    kernel.WaitQ
	AcceptWait kernel.WaitQ

	Stats Stats
}

// NewSocket creates an unbound socket of the given type owned by owner.
func NewSocket(t Type, owner *kernel.Proc) *Socket {
	s := &Socket{Type: t, Owner: owner}
	if t == Dgram {
		s.Proto = pkt.ProtoUDP
	} else {
		s.Proto = pkt.ProtoTCP
	}
	return s
}
