package socket

import (
	"bytes"
	"testing"
	"testing/quick"

	"lrp/internal/pkt"
)

func TestDgramQueueFIFO(t *testing.T) {
	q := NewDgramQueue(0)
	for i := 0; i < 10; i++ {
		if !q.Enqueue(Datagram{Data: []byte{byte(i)}}) {
			t.Fatal("unbounded enqueue failed")
		}
	}
	for i := 0; i < 10; i++ {
		d, ok := q.Dequeue()
		if !ok || d.Data[0] != byte(i) {
			t.Fatalf("dequeue %d: %v %v", i, ok, d)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestDgramQueueLimit(t *testing.T) {
	q := NewDgramQueue(2)
	q.Enqueue(Datagram{})
	q.Enqueue(Datagram{})
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Enqueue(Datagram{}) {
		t.Fatal("over-limit enqueue succeeded")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d", q.Drops())
	}
	q.Dequeue()
	if q.Full() {
		t.Fatal("queue should have space after dequeue")
	}
}

func TestDgramQueueModel(t *testing.T) {
	// Property: queue behaviour matches a simple slice model under any
	// operation sequence.
	f := func(ops []bool) bool {
		q := NewDgramQueue(4)
		var model []byte
		next := byte(0)
		for _, enq := range ops {
			if enq {
				ok := q.Enqueue(Datagram{Data: []byte{next}})
				if ok != (len(model) < 4) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				d, ok := q.Dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if d.Data[0] != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamBufAppendRead(t *testing.T) {
	b := NewStreamBuf(10)
	if n := b.Append([]byte("hello")); n != 5 {
		t.Fatalf("append = %d", n)
	}
	if n := b.Append([]byte("world!!")); n != 5 {
		t.Fatalf("append should truncate to space: %d", n)
	}
	if b.Space() != 0 || b.Len() != 10 {
		t.Fatalf("space=%d len=%d", b.Space(), b.Len())
	}
	got := b.Read(7)
	if string(got) != "hellowo" {
		t.Fatalf("read %q", got)
	}
	if b.Base != 7 {
		t.Fatalf("base = %d", b.Base)
	}
	if string(b.Read(100)) != "rld" {
		t.Fatal("tail read wrong")
	}
}

func TestStreamBufPeekDiscard(t *testing.T) {
	b := NewStreamBuf(0)
	b.Append([]byte("abcdefgh"))
	if got := b.Peek(2, 3); string(got) != "cde" {
		t.Fatalf("peek %q", got)
	}
	if got := b.Peek(6, 10); string(got) != "gh" {
		t.Fatalf("peek past end %q", got)
	}
	if got := b.Peek(100, 1); got != nil {
		t.Fatalf("peek beyond = %q", got)
	}
	b.Discard(3)
	if b.Len() != 5 || b.Base != 3 {
		t.Fatalf("len=%d base=%d", b.Len(), b.Base)
	}
	if got := b.Peek(0, 2); string(got) != "de" {
		t.Fatalf("peek after discard %q", got)
	}
	b.Discard(100) // over-discard clamps
	if b.Len() != 0 || b.Base != 8 {
		t.Fatalf("len=%d base=%d after full discard", b.Len(), b.Base)
	}
}

func TestStreamBufUnlimited(t *testing.T) {
	b := NewStreamBuf(0)
	big := bytes.Repeat([]byte{1}, 1<<20)
	if n := b.Append(big); n != len(big) {
		t.Fatalf("unlimited append = %d", n)
	}
	if b.Space() <= 0 {
		t.Fatal("unlimited buffer reports no space")
	}
}

// Property: any interleaving of appends/reads preserves byte order and
// Base accounting.
func TestStreamBufProperty(t *testing.T) {
	f := func(chunks [][]byte, reads []uint8) bool {
		b := NewStreamBuf(256)
		var model []byte
		ri := 0
		for _, c := range chunks {
			n := b.Append(c)
			exp := len(c)
			if sp := 256 - len(model); exp > sp {
				exp = sp
			}
			if n != exp {
				return false
			}
			model = append(model, c[:n]...)
			if ri < len(reads) {
				r := int(reads[ri])
				ri++
				got := b.Read(r)
				exp := r
				if exp > len(model) {
					exp = len(model)
				}
				if !bytes.Equal(got, model[:exp]) {
					return false
				}
				model = model[exp:]
			}
		}
		return b.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSocketProtocols(t *testing.T) {
	d := NewSocket(Dgram, nil)
	if d.Proto != pkt.ProtoUDP {
		t.Fatalf("dgram proto = %d", d.Proto)
	}
	s := NewSocket(Stream, nil)
	if s.Proto != pkt.ProtoTCP {
		t.Fatalf("stream proto = %d", s.Proto)
	}
}
