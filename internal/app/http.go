package app

import (
	"bytes"
	"fmt"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// HTTPServer models NCSA httpd 1.5.1 in the paper's Fig. 5 setup: a
// listening socket, a handler process per connection, a ~1300-byte
// document, and an HTTP/1.0 close after each response.
type HTTPServer struct {
	Host    *core.Host
	Port    uint16
	Backlog int
	// DocSize is the response body size ("approximately 1300 bytes").
	DocSize int
	// PerRequestCompute models request parsing, filesystem lookup and
	// response generation.
	PerRequestCompute int64

	Served  metrics.Counter
	Proc    *kernel.Proc
	started bool
}

// Start spawns the accept loop; each connection is handled by its own
// process, as NCSA httpd used a process per connection.
func (s *HTTPServer) Start() {
	if s.Backlog == 0 {
		s.Backlog = 16
	}
	if s.DocSize == 0 {
		s.DocSize = 1300
	}
	if s.PerRequestCompute == 0 {
		s.PerRequestCompute = 500
	}
	s.Proc = s.Host.K.Spawn("httpd", 0, func(p *kernel.Proc) {
		l := s.Host.NewTCPSocket(p)
		if err := s.Host.BindTCP(l, s.Port); err != nil {
			panic(err)
		}
		if err := s.Host.Listen(p, l, s.Backlog); err != nil {
			panic(err)
		}
		s.started = true
		n := 0
		for {
			cs, err := s.Host.Accept(p, l)
			if err != nil {
				return
			}
			n++
			name := fmt.Sprintf("httpd-%d", n)
			s.Host.K.Spawn(name, 0, func(hp *kernel.Proc) {
				s.handle(hp, cs)
			})
		}
	})
}

// handle serves one connection: read the request, compute, respond, close.
func (s *HTTPServer) handle(p *kernel.Proc, cs *socket.Socket) {
	req, err := s.Host.RecvStream(p, cs, 4096)
	if err != nil || req == nil {
		s.Host.AbortTCP(nil, cs)
		return
	}
	p.Compute(s.PerRequestCompute)
	if _, err := s.Host.SendStream(p, cs, s.doc()); err != nil {
		s.Host.AbortTCP(nil, cs)
		return
	}
	s.Host.CloseTCP(p, cs)
	s.Served.Inc()
}

// doc builds the response document.
func (s *HTTPServer) doc() []byte {
	head := []byte("HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n")
	body := bytes.Repeat([]byte("x"), s.DocSize)
	return append(head, body...)
}

// HTTPClient continually requests the document, opening a fresh connection
// per transfer (HTTP/1.0 semantics, "eight HTTP clients on a single
// machine continually request HTTP transfers from the server").
type HTTPClient struct {
	Host       *core.Host
	ServerAddr pkt.Addr
	ServerPort uint16
	Name       string

	Completed metrics.Counter
	Failures  metrics.Counter
	Latency   metrics.Histogram
	Proc      *kernel.Proc
}

// Start spawns the client process.
func (c *HTTPClient) Start() {
	c.Proc = c.Host.K.Spawn(c.Name, 0, func(p *kernel.Proc) {
		for {
			start := p.Now()
			if c.fetch(p) {
				c.Completed.Inc()
				c.Latency.Add(p.Now() - start)
			} else {
				c.Failures.Inc()
				// Brief pause before retrying a failed transfer, like a
				// browser user.
				p.Delay(100 * sim.Millisecond)
			}
		}
	})
}

// fetch performs one HTTP/1.0 transaction; false on any failure.
func (c *HTTPClient) fetch(p *kernel.Proc) bool {
	s := c.Host.NewTCPSocket(p)
	if err := c.Host.ConnectTCP(p, s, c.ServerAddr, c.ServerPort); err != nil {
		c.Host.AbortTCP(nil, s)
		return false
	}
	if _, err := c.Host.SendStream(p, s, []byte("GET /index.html HTTP/1.0\r\n\r\n")); err != nil {
		c.Host.AbortTCP(nil, s)
		return false
	}
	ok := false
	for {
		data, err := c.Host.RecvStream(p, s, 16*1024)
		if err != nil {
			c.Host.AbortTCP(nil, s)
			return false
		}
		if data == nil {
			break // EOF
		}
		if len(data) > 0 {
			ok = true
		}
	}
	c.Host.CloseTCP(p, s)
	return ok
}
