package app

import (
	"bytes"
	"fmt"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// HTTPServer models NCSA httpd 1.5.1 in the paper's Fig. 5 setup: a
// listening socket, a handler process per connection, a ~1300-byte
// document, and an HTTP/1.0 close after each response.
type HTTPServer struct {
	Host    *core.Host
	Port    uint16
	Backlog int
	// DocSize is the response body size ("approximately 1300 bytes").
	DocSize int
	// PerRequestCompute models request parsing, filesystem lookup and
	// response generation.
	PerRequestCompute int64
	// Coroutine hosts the accept loop and handler processes on goroutine
	// coroutines instead of stepping them stacklessly (the fallback
	// execution mode).
	Coroutine bool

	Served  metrics.Counter
	Proc    *kernel.Proc
	started bool
}

// Start spawns the accept loop; each connection is handled by its own
// process, as NCSA httpd used a process per connection.
func (s *HTTPServer) Start() {
	if s.Backlog == 0 {
		s.Backlog = 16
	}
	if s.DocSize == 0 {
		s.DocSize = 1300
	}
	if s.PerRequestCompute == 0 {
		s.PerRequestCompute = 500
	}
	var (
		pc  int
		l   *socket.Socket
		n   int
		lis core.ListenOp
		acc core.AcceptOp
	)
	s.Proc = spawnStep(s.Host.K, "httpd", 0, s.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				l = s.Host.NewTCPSocket(p)
				if err := s.Host.BindTCP(l, s.Port); err != nil {
					panic(err)
				}
				pc = 1
			case 1:
				if !s.Host.ListenStep(p, l, s.Backlog, &lis) {
					return
				}
				if lis.Err != nil {
					panic(lis.Err)
				}
				s.started = true
				pc = 2
			case 2:
				if !s.Host.AcceptStep(p, l, &acc) {
					return
				}
				if acc.Err != nil {
					p.ReqExit()
					return
				}
				cs := acc.NS
				acc = core.AcceptOp{}
				n++
				name := fmt.Sprintf("httpd-%d", n)
				spawnStep(s.Host.K, name, 0, s.Coroutine, s.handleStep(cs))
			}
		}
	})
}

// handleStep builds the per-connection handler machine: read the request,
// compute, respond, close.
func (s *HTTPServer) handleStep(cs *socket.Socket) kernel.StepFn {
	var (
		pc int
		rs core.RecvStreamOp
		ss core.SendStreamOp
		cl core.CloseTCPOp
	)
	return func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				if !s.Host.RecvStreamStep(p, cs, 4096, &rs) {
					return
				}
				if rs.Err != nil || rs.Data == nil {
					s.Host.AbortTCP(nil, cs)
					p.ReqExit()
					return
				}
				pc = 1
				if p.ReqCompute(s.PerRequestCompute) {
					return
				}
			case 1:
				ss = core.SendStreamOp{Data: s.doc()}
				pc = 2
			case 2:
				if !s.Host.SendStreamStep(p, cs, &ss) {
					return
				}
				if ss.Err != nil {
					s.Host.AbortTCP(nil, cs)
					p.ReqExit()
					return
				}
				pc = 3
			case 3:
				if !s.Host.CloseTCPStep(p, cs, &cl) {
					return
				}
				s.Served.Inc()
				p.ReqExit()
				return
			}
		}
	}
}

// doc builds the response document.
func (s *HTTPServer) doc() []byte {
	head := []byte("HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n")
	body := bytes.Repeat([]byte("x"), s.DocSize)
	return append(head, body...)
}

// HTTPClient continually requests the document, opening a fresh connection
// per transfer (HTTP/1.0 semantics, "eight HTTP clients on a single
// machine continually request HTTP transfers from the server").
type HTTPClient struct {
	Host       *core.Host
	ServerAddr pkt.Addr
	ServerPort uint16
	Name       string
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	Completed metrics.Counter
	Failures  metrics.Counter
	Latency   metrics.Histogram
	Proc      *kernel.Proc
}

// HTTP client machine states: one fetch per pass through hcConn..hcClose.
const (
	hcStart = iota
	hcConn
	hcSend
	hcRecv
	hcClose
)

// Start spawns the client process: a loop of HTTP/1.0 transactions, each
// on a fresh connection, with a browser-like pause after a failure.
func (c *HTTPClient) Start() {
	var (
		pc    int
		start sim.Time
		sck   *socket.Socket
		ok    bool
		conn  core.ConnectTCPOp
		ss    core.SendStreamOp
		rs    core.RecvStreamOp
		cl    core.CloseTCPOp
	)
	fail := func(p *kernel.Proc) bool {
		c.Host.AbortTCP(nil, sck)
		c.Failures.Inc()
		pc = hcStart
		// Brief pause before retrying a failed transfer, like a browser
		// user.
		return p.ReqDelay(100 * sim.Millisecond)
	}
	c.Proc = spawnStep(c.Host.K, c.Name, 0, c.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case hcStart:
				start = p.Now()
				sck = c.Host.NewTCPSocket(p)
				ok = false
				conn = core.ConnectTCPOp{}
				pc = hcConn
			case hcConn:
				if !c.Host.ConnectTCPStep(p, sck, c.ServerAddr, c.ServerPort, &conn) {
					return
				}
				if conn.Err != nil {
					if fail(p) {
						return
					}
					continue
				}
				ss = core.SendStreamOp{Data: []byte("GET /index.html HTTP/1.0\r\n\r\n")}
				pc = hcSend
			case hcSend:
				if !c.Host.SendStreamStep(p, sck, &ss) {
					return
				}
				if ss.Err != nil {
					if fail(p) {
						return
					}
					continue
				}
				rs = core.RecvStreamOp{}
				pc = hcRecv
			case hcRecv:
				if !c.Host.RecvStreamStep(p, sck, 16*1024, &rs) {
					return
				}
				if rs.Err != nil {
					if fail(p) {
						return
					}
					continue
				}
				if rs.Data == nil { // EOF
					cl = core.CloseTCPOp{}
					pc = hcClose
					continue
				}
				if len(rs.Data) > 0 {
					ok = true
				}
				rs = core.RecvStreamOp{}
			case hcClose:
				if !c.Host.CloseTCPStep(p, sck, &cl) {
					return
				}
				if ok {
					c.Completed.Inc()
					c.Latency.Add(p.Now() - start)
					pc = hcStart
					continue
				}
				c.Failures.Inc()
				pc = hcStart
				// Brief pause before retrying a failed transfer, like a
				// browser user.
				if p.ReqDelay(100 * sim.Millisecond) {
					return
				}
			}
		}
	})
}
