package app

import (
	"encoding/binary"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// UDPWindowReceiver acknowledges each datagram by sequence number; the
// paper measured UDP throughput "using a simple sliding-window protocol"
// with checksumming disabled.
type UDPWindowReceiver struct {
	Host *core.Host
	Port uint16
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	Bytes metrics.Counter
	Pkts  metrics.Counter
	Proc  *kernel.Proc
}

// Start spawns the receiver.
func (r *UDPWindowReceiver) Start() {
	var (
		pc   int
		sock *socket.Socket
		ack  []byte
		d    socket.Datagram
		recv core.RecvFromOp
		send core.SendToOp
	)
	r.Proc = spawnStep(r.Host.K, "udpwin-rx", 0, r.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				sock = r.Host.NewUDPSocket(p)
				sock.NoUDPChecksum = true // per the paper's methodology
				if err := r.Host.BindUDP(sock, r.Port); err != nil {
					panic(err)
				}
				ack = make([]byte, 4)
				pc = 1
			case 1:
				if !r.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				d = recv.D
				recv.Reset()
				r.Bytes.Addn(uint64(len(d.Data)))
				r.Pkts.Inc()
				if len(d.Data) >= 4 {
					copy(ack, d.Data[:4])
					d.Release() // seq copied into the ack buffer
					send.Reset()
					pc = 2
				} else {
					d.Release() // runt datagram; nothing to ack
				}
			case 2:
				if !r.Host.SendToStep(p, sock, d.Src, d.SPort, ack, &send) {
					return
				}
				if send.Err != nil {
					p.ReqExit()
					return
				}
				pc = 1
			}
		}
	})
}

// UDPWindowSender keeps Window datagrams of Size bytes outstanding toward
// the receiver, resending on a coarse timeout (losses are rare on the
// clean simulated LAN; the protocol exists to pace the sender, as in the
// paper).
type UDPWindowSender struct {
	Host       *core.Host
	PeerAddr   pkt.Addr
	PeerPort   uint16
	Size       int
	Window     int
	TotalBytes int64 // stop after this much (0: run forever)
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	Sent     metrics.Counter
	Finished bool
	Proc     *kernel.Proc
}

// Start spawns the sender.
func (s *UDPWindowSender) Start() {
	if s.Size == 0 {
		s.Size = 8192
	}
	if s.Window == 0 {
		s.Window = 8
	}
	var (
		pc        int
		sock      *socket.Socket
		payload   []byte
		seq, ackd uint32
		sentBytes int64
		recv      core.RecvFromOp
		send      core.SendToOp
	)
	s.Proc = spawnStep(s.Host.K, "udpwin-tx", 0, s.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				sock = s.Host.NewUDPSocket(p)
				sock.NoUDPChecksum = true // per the paper's methodology
				if err := s.Host.BindUDP(sock, 0); err != nil {
					panic(err)
				}
				payload = make([]byte, s.Size)
				recv = core.RecvFromOp{Timed: true, Timeout: 200 * sim.Millisecond}
				pc = 1
			case 1:
				if int(seq-ackd) < s.Window && (s.TotalBytes == 0 || sentBytes < s.TotalBytes) {
					binary.BigEndian.PutUint32(payload, seq)
					seq++
					sentBytes += int64(len(payload))
					s.Sent.Inc()
					send.Reset()
					pc = 2
				} else if s.TotalBytes > 0 && sentBytes >= s.TotalBytes && ackd == seq {
					s.Finished = true
					p.ReqExit()
					return
				} else {
					recv.Reset()
					pc = 3
				}
			case 2:
				if !s.Host.SendToStep(p, sock, s.PeerAddr, s.PeerPort, payload, &send) {
					return
				}
				pc = 1 // send errors are ignored, as in the blocking sender
			case 3:
				if !s.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				pc = 1
				if !recv.OK {
					// Timeout: go back to the last acknowledged datagram.
					seq = ackd
					sentBytes = int64(ackd) * int64(s.Size)
					continue
				}
				if len(recv.D.Data) >= 4 {
					a := binary.BigEndian.Uint32(recv.D.Data) + 1
					if a > ackd {
						ackd = a
					}
				}
				recv.D.Release() // ack consumed
			}
		}
	})
}

// TCPTransfer moves TotalBytes over one connection and records the elapsed
// time ("TCP throughput was measured by transferring 24 Mbytes of data,
// with the socket send and receive buffers set to 32 KByte").
type TCPTransfer struct {
	Server     *core.Host
	Client     *core.Host
	ServerAddr pkt.Addr
	Port       uint16
	TotalBytes int
	// Coroutine hosts both processes on goroutine coroutines instead of
	// stepping them stacklessly (the fallback execution mode).
	Coroutine bool

	Received int
	Started  sim.Time
	Ended    sim.Time
	Done     bool
}

// Start spawns both sides.
func (x *TCPTransfer) Start() {
	var (
		rpc int
		l   *socket.Socket
		cs  *socket.Socket
		lis core.ListenOp
		acc core.AcceptOp
		rs  core.RecvStreamOp
	)
	spawnStep(x.Server.K, "tcpxfer-rx", 0, x.Coroutine, func(p *kernel.Proc) {
		for {
			switch rpc {
			case 0:
				l = x.Server.NewTCPSocket(p)
				if err := x.Server.BindTCP(l, x.Port); err != nil {
					panic(err)
				}
				rpc = 1
			case 1:
				if !x.Server.ListenStep(p, l, 5, &lis) {
					return
				}
				if lis.Err != nil {
					panic(lis.Err)
				}
				rpc = 2
			case 2:
				if !x.Server.AcceptStep(p, l, &acc) {
					return
				}
				if acc.Err != nil {
					p.ReqExit()
					return
				}
				cs = acc.NS
				rpc = 3
			case 3:
				if !x.Server.RecvStreamStep(p, cs, 64*1024, &rs) {
					return
				}
				if rs.Err != nil || rs.Data == nil {
					x.Ended = p.Now()
					x.Done = true
					p.ReqExit()
					return
				}
				x.Received += len(rs.Data)
				rs = core.RecvStreamOp{}
			}
		}
	})
	var (
		tpc   int
		sck   *socket.Socket
		chunk []byte
		sent  int
		conn  core.ConnectTCPOp
		ss    core.SendStreamOp
		cls   core.CloseTCPOp
	)
	spawnStep(x.Client.K, "tcpxfer-tx", 0, x.Coroutine, func(p *kernel.Proc) {
		for {
			switch tpc {
			case 0:
				sck = x.Client.NewTCPSocket(p)
				tpc = 1
			case 1:
				if !x.Client.ConnectTCPStep(p, sck, x.ServerAddr, x.Port, &conn) {
					return
				}
				if conn.Err != nil {
					p.ReqExit()
					return
				}
				x.Started = p.Now()
				chunk = make([]byte, 32*1024)
				tpc = 2
			case 2:
				if sent >= x.TotalBytes {
					tpc = 4
					continue
				}
				n := len(chunk)
				if x.TotalBytes-sent < n {
					n = x.TotalBytes - sent
				}
				ss = core.SendStreamOp{Data: chunk[:n]}
				tpc = 3
			case 3:
				if !x.Client.SendStreamStep(p, sck, &ss) {
					return
				}
				if ss.Err != nil {
					p.ReqExit()
					return
				}
				sent += ss.Total
				tpc = 2
			case 4:
				if !x.Client.CloseTCPStep(p, sck, &cls) {
					return
				}
				p.ReqExit()
				return
			}
		}
	})
}

// ThroughputMbps returns the achieved goodput in Mbit/s once Done.
func (x *TCPTransfer) ThroughputMbps() float64 {
	if !x.Done || x.Ended <= x.Started {
		return 0
	}
	return float64(x.Received) * 8 / float64(x.Ended-x.Started)
}
