package app

import (
	"encoding/binary"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// UDPWindowReceiver acknowledges each datagram by sequence number; the
// paper measured UDP throughput "using a simple sliding-window protocol"
// with checksumming disabled.
type UDPWindowReceiver struct {
	Host *core.Host
	Port uint16

	Bytes metrics.Counter
	Pkts  metrics.Counter
	Proc  *kernel.Proc
}

// Start spawns the receiver.
func (r *UDPWindowReceiver) Start() {
	r.Proc = r.Host.K.Spawn("udpwin-rx", 0, func(p *kernel.Proc) {
		sock := r.Host.NewUDPSocket(p)
		sock.NoUDPChecksum = true // per the paper's methodology
		if err := r.Host.BindUDP(sock, r.Port); err != nil {
			panic(err)
		}
		ack := make([]byte, 4)
		for {
			d, err := r.Host.RecvFrom(p, sock)
			if err != nil {
				return
			}
			r.Bytes.Addn(uint64(len(d.Data)))
			r.Pkts.Inc()
			if len(d.Data) >= 4 {
				copy(ack, d.Data[:4])
				if err := r.Host.SendTo(p, sock, d.Src, d.SPort, ack); err != nil {
					return
				}
			}
		}
	})
}

// UDPWindowSender keeps Window datagrams of Size bytes outstanding toward
// the receiver, resending on a coarse timeout (losses are rare on the
// clean simulated LAN; the protocol exists to pace the sender, as in the
// paper).
type UDPWindowSender struct {
	Host       *core.Host
	PeerAddr   pkt.Addr
	PeerPort   uint16
	Size       int
	Window     int
	TotalBytes int64 // stop after this much (0: run forever)

	Sent     metrics.Counter
	Finished bool
	Proc     *kernel.Proc
}

// Start spawns the sender.
func (s *UDPWindowSender) Start() {
	if s.Size == 0 {
		s.Size = 8192
	}
	if s.Window == 0 {
		s.Window = 8
	}
	s.Proc = s.Host.K.Spawn("udpwin-tx", 0, func(p *kernel.Proc) {
		sock := s.Host.NewUDPSocket(p)
		sock.NoUDPChecksum = true // per the paper's methodology
		if err := s.Host.BindUDP(sock, 0); err != nil {
			panic(err)
		}
		payload := make([]byte, s.Size)
		var seq, ackd uint32
		var sentBytes int64
		send := func() {
			binary.BigEndian.PutUint32(payload, seq)
			seq++
			sentBytes += int64(len(payload))
			s.Sent.Inc()
			_ = s.Host.SendTo(p, sock, s.PeerAddr, s.PeerPort, payload)
		}
		for {
			for int(seq-ackd) < s.Window && (s.TotalBytes == 0 || sentBytes < s.TotalBytes) {
				send()
			}
			if s.TotalBytes > 0 && sentBytes >= s.TotalBytes && ackd == seq {
				s.Finished = true
				return
			}
			d, ok, err := s.Host.RecvFromTimeout(p, sock, 200*sim.Millisecond)
			if err != nil {
				return
			}
			if !ok {
				// Timeout: go back to the last acknowledged datagram.
				seq = ackd
				sentBytes = int64(ackd) * int64(s.Size)
				continue
			}
			if len(d.Data) >= 4 {
				a := binary.BigEndian.Uint32(d.Data) + 1
				if a > ackd {
					ackd = a
				}
			}
		}
	})
}

// TCPTransfer moves TotalBytes over one connection and records the elapsed
// time ("TCP throughput was measured by transferring 24 Mbytes of data,
// with the socket send and receive buffers set to 32 KByte").
type TCPTransfer struct {
	Server     *core.Host
	Client     *core.Host
	ServerAddr pkt.Addr
	Port       uint16
	TotalBytes int

	Received int
	Started  sim.Time
	Ended    sim.Time
	Done     bool
}

// Start spawns both sides.
func (x *TCPTransfer) Start() {
	x.Server.K.Spawn("tcpxfer-rx", 0, func(p *kernel.Proc) {
		l := x.Server.NewTCPSocket(p)
		if err := x.Server.BindTCP(l, x.Port); err != nil {
			panic(err)
		}
		if err := x.Server.Listen(p, l, 5); err != nil {
			panic(err)
		}
		cs, err := x.Server.Accept(p, l)
		if err != nil {
			return
		}
		for {
			data, err := x.Server.RecvStream(p, cs, 64*1024)
			if err != nil || data == nil {
				break
			}
			x.Received += len(data)
		}
		x.Ended = p.Now()
		x.Done = true
	})
	x.Client.K.Spawn("tcpxfer-tx", 0, func(p *kernel.Proc) {
		s := x.Client.NewTCPSocket(p)
		if err := x.Client.ConnectTCP(p, s, x.ServerAddr, x.Port); err != nil {
			return
		}
		x.Started = p.Now()
		chunk := make([]byte, 32*1024)
		sent := 0
		for sent < x.TotalBytes {
			n := len(chunk)
			if x.TotalBytes-sent < n {
				n = x.TotalBytes - sent
			}
			w, err := x.Client.SendStream(p, s, chunk[:n])
			if err != nil {
				return
			}
			sent += w
		}
		x.Client.CloseTCP(p, s)
	})
}

// ThroughputMbps returns the achieved goodput in Mbit/s once Done.
func (x *TCPTransfer) ThroughputMbps() float64 {
	if !x.Done || x.Ended <= x.Started {
		return 0
	}
	return float64(x.Received) * 8 / float64(x.Ended-x.Started)
}
