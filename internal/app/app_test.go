package app

import (
	"fmt"
	"testing"

	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

var (
	addrA = pkt.IP(10, 0, 0, 1)
	addrB = pkt.IP(10, 0, 0, 2)
)

type rig struct {
	eng    *sim.Engine
	nw     *netsim.Network
	client *core.Host
	server *core.Host
}

func newRig(t *testing.T, arch core.Arch) *rig {
	t.Helper()
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	client := core.NewHost(eng, nw, core.Config{Name: "client", Addr: addrA, Arch: arch})
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: addrB, Arch: arch})
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })
	return &rig{eng: eng, nw: nw, client: client, server: server}
}

func TestBlastSourceRate(t *testing.T) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	src := &BlastSource{
		Net: nw, Src: addrA, Dst: addrB, SPort: 1, DPort: 2,
		Size: 14, Rate: 5000, Rng: sim.NewRand(3),
	}
	src.Start()
	eng.RunFor(2 * sim.Second)
	sent := src.Sent.Total()
	if sent < 9000 || sent > 11000 {
		t.Fatalf("sent %d packets in 2s at 5000/s", sent)
	}
	src.Stop()
	before := src.Sent.Total()
	eng.RunFor(sim.Second)
	if src.Sent.Total() != before {
		t.Fatal("source kept sending after Stop")
	}
}

func TestBlastSourcePoissonRate(t *testing.T) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	src := &BlastSource{
		Net: nw, Src: addrA, Dst: addrB, SPort: 1, DPort: 2,
		Size: 14, Rate: 8000, Poisson: true, Rng: sim.NewRand(9),
	}
	src.Start()
	eng.RunFor(2 * sim.Second)
	sent := src.Sent.Total()
	if sent < 14000 || sent > 18000 {
		t.Fatalf("Poisson source sent %d in 2s at 8000/s", sent)
	}
}

func TestBlastSinkReceives(t *testing.T) {
	r := newRig(t, core.ArchSoftLRP)
	sink := &BlastSink{Host: r.server, Port: 7}
	sink.Start()
	src := &BlastSource{
		Net: r.nw, Src: addrA, Dst: addrB, SPort: 1, DPort: 7,
		Size: 14, Rate: 2000, Rng: sim.NewRand(5),
	}
	src.Start()
	r.eng.RunFor(sim.Second)
	got, sent := sink.Received.Total(), src.Sent.Total()
	if got == 0 || got < sent*95/100 {
		t.Fatalf("sink received %d of %d", got, sent)
	}
}

func TestPingPongMeasuresRTT(t *testing.T) {
	r := newRig(t, core.ArchBSD)
	srv := &PingPongServer{Host: r.server, Port: 7}
	srv.Start()
	cli := &PingPongClient{
		Host: r.client, ServerAddr: addrB, ServerPort: 7,
		Iterations: 50,
	}
	cli.Start()
	r.eng.RunFor(5 * sim.Second)
	if !cli.Done {
		t.Fatal("client did not finish")
	}
	if cli.RTT.Count() != 50 || cli.Lost != 0 {
		t.Fatalf("rtt samples %d, lost %d", cli.RTT.Count(), cli.Lost)
	}
	if cli.RTT.Mean() <= 0 {
		t.Fatal("non-positive RTT")
	}
}

func TestPingPongWarmupDiscards(t *testing.T) {
	r := newRig(t, core.ArchBSD)
	srv := &PingPongServer{Host: r.server, Port: 7}
	srv.Start()
	cli := &PingPongClient{
		Host: r.client, ServerAddr: addrB, ServerPort: 7,
		Iterations: 30, Warmup: 20,
	}
	cli.Start()
	r.eng.RunFor(5 * sim.Second)
	if cli.RTT.Count() != 30 {
		t.Fatalf("samples = %d, want 30 (warmup discarded)", cli.RTT.Count())
	}
}

func TestPingPongCountsLosses(t *testing.T) {
	// No server: every probe times out.
	r := newRig(t, core.ArchBSD)
	cli := &PingPongClient{
		Host: r.client, ServerAddr: addrB, ServerPort: 7,
		Iterations: 5, ReplyTimeout: 10 * sim.Millisecond,
	}
	cli.Start()
	r.eng.RunFor(sim.Second)
	if cli.Lost != 5 {
		t.Fatalf("lost = %d, want 5", cli.Lost)
	}
}

func TestUDPWindowTransfer(t *testing.T) {
	r := newRig(t, core.ArchNILRP)
	rx := &UDPWindowReceiver{Host: r.server, Port: 9000}
	rx.Start()
	tx := &UDPWindowSender{
		Host: r.client, PeerAddr: addrB, PeerPort: 9000,
		Size: 8192, Window: 8, TotalBytes: 1 << 20,
	}
	tx.Start()
	r.eng.RunFor(10 * sim.Second)
	if !tx.Finished {
		t.Fatalf("transfer incomplete: %d bytes at receiver", rx.Bytes.Total())
	}
	if rx.Bytes.Total() < 1<<20 {
		t.Fatalf("receiver got %d bytes", rx.Bytes.Total())
	}
}

func TestTCPTransferApp(t *testing.T) {
	r := newRig(t, core.ArchSoftLRP)
	x := &TCPTransfer{
		Server: r.server, Client: r.client, ServerAddr: addrB,
		Port: 5001, TotalBytes: 1 << 20,
	}
	x.Start()
	r.eng.RunFor(30 * sim.Second)
	if !x.Done || x.Received != 1<<20 {
		t.Fatalf("done=%v received=%d", x.Done, x.Received)
	}
	if x.ThroughputMbps() <= 0 {
		t.Fatal("no throughput computed")
	}
}

func TestRPCRoundTrips(t *testing.T) {
	r := newRig(t, core.ArchSoftLRP)
	srv := &RPCServer{Host: r.server, Port: 1001, PerCallCompute: 100}
	srv.Start()
	cli := &RPCClient{
		Host: r.client, ServerAddr: addrB, ServerPort: 1001,
		Outstanding: 2, Rng: sim.NewRand(4),
	}
	cli.Start()
	r.eng.RunFor(sim.Second)
	if cli.Completed.Total() == 0 {
		t.Fatal("no RPCs completed")
	}
	if cli.RTT.Count() == 0 || cli.RTT.Mean() < 100 {
		t.Fatalf("rtt %v", cli.RTT.Mean())
	}
	if srv.Served.Total() < cli.Completed.Total() {
		t.Fatalf("server served %d < client completed %d", srv.Served.Total(), cli.Completed.Total())
	}
}

func TestWorkerServerLifecycle(t *testing.T) {
	r := newRig(t, core.ArchBSD)
	w := &WorkerServer{Host: r.server, Port: 1000, ComputeTime: 100 * sim.Millisecond}
	w.Start()
	wc := &RPCClient{Host: r.client, ServerAddr: addrB, ServerPort: 1000, Outstanding: 1, Rng: sim.NewRand(2)}
	wc.Start()
	r.eng.RunFor(2 * sim.Second)
	if !w.Done {
		t.Fatal("worker did not complete")
	}
	el := w.Elapsed()
	if el < 100*sim.Millisecond || el > 500*sim.Millisecond {
		t.Fatalf("elapsed %d for 100ms of CPU on an idle host", el)
	}
	if s := w.CPUShare(); s < 0.5 {
		t.Fatalf("share %v on an idle host", s)
	}
}

func TestHTTPServerAndClients(t *testing.T) {
	for _, arch := range []core.Arch{core.ArchBSD, core.ArchSoftLRP} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			r := newRig(t, arch)
			hs := &HTTPServer{Host: r.server, Port: 80, DocSize: 1300}
			hs.Start()
			var clients []*HTTPClient
			for i := 0; i < 3; i++ {
				c := &HTTPClient{
					Host: r.client, ServerAddr: addrB, ServerPort: 80,
					Name: fmt.Sprintf("c%d", i),
				}
				c.Start()
				clients = append(clients, c)
			}
			r.eng.RunFor(2 * sim.Second)
			var done, failed uint64
			for _, c := range clients {
				done += c.Completed.Total()
				failed += c.Failures.Total()
			}
			if done < 100 {
				t.Fatalf("only %d transfers in 2s", done)
			}
			if failed > done/50 {
				t.Fatalf("%d failures vs %d successes on a clean network", failed, done)
			}
			if hs.Served.Total() == 0 {
				t.Fatal("server counted no requests")
			}
		})
	}
}

func TestSYNFloodUniqueSources(t *testing.T) {
	r := newRig(t, core.ArchSoftLRP)
	StartDummyServer(r.server, 99, 5)
	f := &SYNFlood{Net: r.nw, Src: addrA, Dst: addrB, DPort: 99, Rate: 5000, Rng: sim.NewRand(8)}
	f.Start()
	r.eng.RunFor(sim.Second)
	if f.Sent.Total() < 4000 {
		t.Fatalf("flood sent only %d", f.Sent.Total())
	}
	f.Stop()
	st := r.server.Stats()
	// Backlog 5 accepted as embryonic, the rest discarded at the disabled
	// channel (plus a handful that raced the disable).
	if st.DisabledDrops < f.Sent.Total()*8/10 {
		t.Fatalf("only %d of %d SYNs discarded at the channel", st.DisabledDrops, f.Sent.Total())
	}
}

func TestSpinnerConsumesIdleCPU(t *testing.T) {
	// Priority behaviour of nice +20 is covered by kernel tests; here just
	// check the spinner actually occupies the otherwise-idle CPU.
	r := newRig(t, core.ArchBSD)
	sp := Spinner(r.server, "spin")
	r.eng.RunFor(100 * sim.Millisecond)
	if sp.UTime < 90*sim.Millisecond {
		t.Fatalf("spinner consumed only %dµs of an idle CPU", sp.UTime)
	}
}

func TestMediaSourceAndPlayer(t *testing.T) {
	r := newRig(t, core.ArchSoftLRP)
	player := &MediaPlayer{Host: r.server, Port: 5004, PerFrameCompute: 200}
	player.Start()
	src := &MediaSource{
		Net: r.nw, Src: addrA, Dst: addrB, SPort: 5004, DPort: 5004,
	}
	src.Start()
	r.eng.RunFor(2 * sim.Second)
	src.Stop()
	frames := player.Frames.Total()
	// 30 fps for 2s = ~60 frames.
	if frames < 55 || frames > 61 {
		t.Fatalf("player saw %d frames in 2s", frames)
	}
	// Idle host: jitter should be negligible.
	if player.Jitter.Mean() > 20 {
		t.Fatalf("idle-host jitter %v", player.Jitter.Mean())
	}
	before := src.Sent.Total()
	r.eng.RunFor(sim.Second)
	if src.Sent.Total() != before {
		t.Fatal("source kept sending after Stop")
	}
}

func TestUDPWindowRetransmitsOnAckLoss(t *testing.T) {
	// Force timeouts by losing half the traffic; the window protocol must
	// still complete (go-back-N).
	r := newRig(t, core.ArchBSD)
	r.nw.SetLoss(0.2, sim.NewRand(5))
	rx := &UDPWindowReceiver{Host: r.server, Port: 9000}
	rx.Start()
	tx := &UDPWindowSender{
		Host: r.client, PeerAddr: addrB, PeerPort: 9000,
		Size: 4096, Window: 4, TotalBytes: 128 * 1024,
	}
	tx.Start()
	r.eng.RunFor(60 * sim.Second)
	if !tx.Finished {
		t.Fatalf("lossy window transfer incomplete: receiver has %d bytes", rx.Bytes.Total())
	}
}
