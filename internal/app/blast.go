// Package app implements the workloads of the paper's evaluation: UDP
// blast sources and sinks, ping-pong latency probes, a sliding-window UDP
// throughput test, a UDP RPC facility, an HTTP/1.0-style server and
// clients, a SYN flooder, and background compute processes. Each maps to
// the traffic the paper describes; the experiment drivers in internal/exp
// assemble them into the published tables and figures.
package app

import (
	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/metrics"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// BlastSource injects fixed-rate UDP traffic directly onto the wire, like
// the paper's in-kernel packet source ("we have been unable to generate
// high enough packet rates ... even when using an in-kernel packet source
// on the sender" — a user-space sender would bottleneck first).
type BlastSource struct {
	Net   *netsim.Network
	Src   pkt.Addr
	Dst   pkt.Addr
	SPort uint16
	DPort uint16
	Size  int   // UDP payload bytes (the paper used 14)
	Rate  int64 // packets per second
	// Poisson selects exponentially distributed inter-packet gaps (the
	// natural burstiness of real traffic, which drives interrupt batching
	// and queue-overflow behaviour below saturation); otherwise gaps are
	// uniform within ±Jitter.
	Poisson bool
	Jitter  float64
	Rng     *sim.Rand

	Sent    metrics.Counter
	stopped bool
	ipid    uint16
	pool    *mbuf.Pool
	// lane carries the source's self-chained emission events: at most one
	// is outstanding, so posting is a lane append, not a heap sift.
	lane *sim.Lane
	// emit is the single reusable firing thunk; rebuilding it per packet
	// would allocate a closure on every emission.
	emit func()
}

// Start begins injection; call Stop to end it.
func (b *BlastSource) Start() {
	if b.Rng == nil {
		b.Rng = sim.NewRand(1)
	}
	if b.Jitter == 0 {
		b.Jitter = 0.3
	}
	b.pool = mbuf.NewPool(genPoolLimit)
	b.lane = b.Net.Eng.NewLane()
	b.emit = func() {
		if b.stopped {
			return
		}
		b.ipid++
		b.Sent.Inc()
		injectUDP(b.Net, b.pool, b.Src, b.Dst, b.SPort, b.DPort, b.ipid, b.Size)
		b.schedule()
	}
	b.schedule()
}

// Stop halts injection.
func (b *BlastSource) Stop() { b.stopped = true }

func (b *BlastSource) schedule() {
	if b.stopped || b.Rate <= 0 {
		return
	}
	gap := sim.Second / b.Rate
	if gap < 1 {
		gap = 1
	}
	if b.Poisson {
		gap = b.Rng.ExpDuration(gap)
	} else {
		gap = b.Rng.Jitter(gap, b.Jitter)
	}
	b.lane.PostAfter(gap, b.emit)
}

// BlastSink is the receiving process: it reads datagrams as fast as it can
// and discards them, optionally spending PerPktCompute per packet.
type BlastSink struct {
	Host *core.Host
	Port uint16
	// PerPktCompute is application work per packet (µs).
	PerPktCompute int64
	// DisturbPenalty sets the receiver's interrupt cache-disturbance
	// penalty (see kernel.Proc.IntrPenalty).
	DisturbPenalty int64
	// CPU is the simulated CPU the sink process is spawned on (multi-CPU
	// hosts; 0 — the boot CPU — otherwise).
	CPU int
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	Received metrics.Counter
	Proc     *kernel.Proc
	Sock     *socket.Socket
}

// Start spawns the sink process.
func (s *BlastSink) Start() {
	var (
		pc   int
		recv core.RecvFromOp
	)
	s.Proc = spawnStep(s.Host.KernelAt(s.CPU), "blast-sink", 0, s.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				p.IntrPenalty = s.DisturbPenalty
				s.Sock = s.Host.NewUDPSocket(p)
				if err := s.Host.BindUDP(s.Sock, s.Port); err != nil {
					panic(err)
				}
				pc = 1
			case 1:
				if !s.Host.RecvFromStep(p, s.Sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				recv.D.Release() // the sink discards the payload
				recv.Reset()
				s.Received.Inc()
				if p.ReqCompute(s.PerPktCompute) {
					return
				}
			}
		}
	})
}

// Spinner is a low-priority compute-bound background process ("the
// machines involved in the ping-pong exchange were each running a
// low-priority (nice +20) background process executing an infinite
// loop"), used to keep the CPU out of the idle loop.
func Spinner(h *core.Host, name string) *kernel.Proc {
	return h.K.SpawnStep(name, 20, func(p *kernel.Proc) {
		p.ReqCompute(10 * sim.Millisecond)
	})
}
