package app

// Dual-mode equivalence: every workload in this package is a StepFn
// state machine that can be hosted stacklessly (SpawnStep) or on a
// goroutine coroutine (SpawnStepCoro), selected by the Coroutine flag;
// the kernel daemons flip the same way via core.Config.CoroutineProcs.
// The two modes must be indistinguishable in simulation: identical
// event-by-event traces and identical accounting. These tests run full
// workload worlds both ways and compare everything observable.

import (
	"fmt"
	"strings"
	"testing"

	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/sim"
)

// equivWorld runs a mixed UDP+TCP workload world — ping-pong, blast,
// window transfer, HTTP, RPC, media — with every process hosted in the
// given mode, and renders the complete observable outcome: both hosts'
// traces, statistics, per-process accounting, and workload results.
func equivWorld(arch core.Arch, coro bool) string {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	client := core.NewHost(eng, nw, core.Config{
		Name: "client", Addr: addrA, Arch: arch, CoroutineProcs: coro,
	})
	server := core.NewHost(eng, nw, core.Config{
		Name: "server", Addr: addrB, Arch: arch, CoroutineProcs: coro,
	})
	defer client.Shutdown()
	defer server.Shutdown()
	ct := client.EnableTrace(1 << 14)
	st := server.EnableTrace(1 << 14)

	pps := &PingPongServer{Host: server, Port: 7, Coroutine: coro}
	pps.Start()
	ppc := &PingPongClient{
		Host: client, ServerAddr: addrB, ServerPort: 7,
		Iterations: 40, Interval: 3000, Coroutine: coro,
	}
	ppc.Start()

	sink := &BlastSink{Host: server, Port: 9, PerPktCompute: 20, Coroutine: coro}
	sink.Start()
	src := &BlastSource{
		Net: nw, Src: addrA, Dst: addrB, SPort: 1, DPort: 9,
		Size: 14, Rate: 3000, Rng: sim.NewRand(5),
	}
	src.Start()

	wrx := &UDPWindowReceiver{Host: server, Port: 11, Coroutine: coro}
	wrx.Start()
	wtx := &UDPWindowSender{
		Host: client, PeerAddr: addrB, PeerPort: 11,
		Size: 1024, Window: 4, TotalBytes: 64 * 1024, Coroutine: coro,
	}
	wtx.Start()

	xfer := &TCPTransfer{
		Server: server, Client: client, ServerAddr: addrB,
		Port: 13, TotalBytes: 256 * 1024, Coroutine: coro,
	}
	xfer.Start()

	httpd := &HTTPServer{Host: server, Port: 80, Coroutine: coro}
	httpd.Start()
	web := &HTTPClient{
		Host: client, ServerAddr: addrB, ServerPort: 80,
		Name: "web-cli", Coroutine: coro,
	}
	web.Start()

	rpcs := &RPCServer{Host: server, Port: 17, PerCallCompute: 100, Coroutine: coro}
	rpcs.Start()
	rpcc := &RPCClient{
		Host: client, ServerAddr: addrB, ServerPort: 17,
		Interval: 2000, Outstanding: 2, Coroutine: coro,
	}
	rpcc.Start()

	player := &MediaPlayer{Host: client, Port: 19, PerFrameCompute: 50, Coroutine: coro}
	player.Start()
	ms := &MediaSource{
		Net: nw, Src: addrB, Dst: addrA, SPort: 2, DPort: 19,
		FrameSize: 1000, Interval: 20_000,
	}
	ms.Start()

	eng.RunFor(2 * sim.Second)

	var b strings.Builder
	fmt.Fprintf(&b, "pingpong rtt=%d mean=%.3f lost=%d done=%v\n",
		ppc.RTT.Count(), ppc.RTT.Mean(), ppc.Lost, ppc.Done)
	fmt.Fprintf(&b, "blast sent=%d recv=%d\n", src.Sent.Total(), sink.Received.Total())
	fmt.Fprintf(&b, "window pkts=%d bytes=%d sent=%d fin=%v\n",
		wrx.Pkts.Total(), wrx.Bytes.Total(), wtx.Sent.Total(), wtx.Finished)
	fmt.Fprintf(&b, "tcpxfer recv=%d done=%v mbps=%.3f\n",
		xfer.Received, xfer.Done, xfer.ThroughputMbps())
	fmt.Fprintf(&b, "http served=%d completed=%d failed=%d latmean=%.3f\n",
		httpd.Served.Total(), web.Completed.Total(), web.Failures.Total(), web.Latency.Mean())
	fmt.Fprintf(&b, "rpc served=%d completed=%d rttmean=%.3f\n",
		rpcs.Served.Total(), rpcc.Completed.Total(), rpcc.RTT.Mean())
	fmt.Fprintf(&b, "media frames=%d jitmean=%.3f\n", player.Frames.Total(), player.Jitter.Mean())
	for _, h := range []*core.Host{client, server} {
		fmt.Fprintf(&b, "%s stats=%+v\n", h.Name, h.Stats())
		for _, p := range h.K.Procs() {
			fmt.Fprintf(&b, "  proc %s utime=%d stime=%d dead=%v\n",
				p.Name, p.UTime, p.STime, p.Dead())
		}
	}
	fmt.Fprintf(&b, "-- client trace (%d events, %d overwritten) --\n%s", ct.Len(), ct.Overwritten(), ct.Dump())
	fmt.Fprintf(&b, "-- server trace (%d events, %d overwritten) --\n%s", st.Len(), st.Overwritten(), st.Dump())
	return b.String()
}

// TestStacklessCoroutineEquivalence requires a full workload world to
// produce identical traces and accounting whether every process runs
// stacklessly or on goroutine coroutines, under both the LRP and BSD
// architectures (LRP exercises the APP and idle daemons; BSD the softint
// path).
func TestStacklessCoroutineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("four full workload worlds; skipped in -short")
	}
	for _, arch := range []core.Arch{core.ArchSoftLRP, core.ArchBSD} {
		stackless := equivWorld(arch, false)
		coro := equivWorld(arch, true)
		if stackless != coro {
			t.Errorf("%v: stackless and coroutine worlds diverged:\n%s", arch, firstDiff(stackless, coro))
		}
		if !strings.Contains(stackless, "done=true") {
			t.Errorf("%v: ping-pong client did not finish:\n%s", arch, stackless[:200])
		}
	}
}

// firstDiff locates the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  stackless: %s\n  coroutine: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
