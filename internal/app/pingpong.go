package app

import (
	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// PingPongServer echoes datagrams on a port ("a server process (ping-pong
// server) running on machine B").
type PingPongServer struct {
	Host *core.Host
	Port uint16
	// CPU is the simulated CPU the echo process is spawned on (multi-CPU
	// hosts; 0 — the boot CPU — otherwise).
	CPU  int
	Proc *kernel.Proc
}

// Start spawns the echo process.
func (s *PingPongServer) Start() {
	s.Proc = s.Host.KernelAt(s.CPU).Spawn("pingpong-srv", 0, func(p *kernel.Proc) {
		sock := s.Host.NewUDPSocket(p)
		if err := s.Host.BindUDP(sock, s.Port); err != nil {
			panic(err)
		}
		for {
			d, err := s.Host.RecvFrom(p, sock)
			if err != nil {
				return
			}
			if err := s.Host.SendTo(p, sock, d.Src, d.SPort, d.Data); err != nil {
				return
			}
		}
	})
}

// PingPongClient ping-pongs a short message with a PingPongServer and
// records round-trip times ("Latency was measured by ping-ponging a 1-byte
// message between two workstations 10,000 times").
type PingPongClient struct {
	Host       *core.Host
	ServerAddr pkt.Addr
	ServerPort uint16
	MsgSize    int
	Iterations int
	// Warmup discards the first Warmup round trips from the histogram so
	// measurements reflect scheduler steady state (priorities take a
	// second or two to equilibrate under background load).
	Warmup int
	// StartAfter delays the first probe (µs), e.g. until background load
	// reaches steady state.
	StartAfter int64
	// Interval spaces probes apart (µs); 0 sends back-to-back.
	Interval int64
	// ReplyTimeout bounds one round trip; timed-out probes count as lost
	// (BSD's IP-queue drops under load make some probes unanswerable:
	// "packet dropping at the IP queue makes latency measurements
	// impossible at rates beyond 15,000 pkts/sec").
	ReplyTimeout int64

	RTT  metrics.Histogram
	Lost int
	Done bool
	Proc *kernel.Proc
}

// Start spawns the client process.
func (c *PingPongClient) Start() {
	if c.MsgSize == 0 {
		c.MsgSize = 1
	}
	if c.ReplyTimeout == 0 {
		c.ReplyTimeout = 500 * sim.Millisecond
	}
	c.Proc = c.Host.K.Spawn("pingpong-cli", 0, func(p *kernel.Proc) {
		sock := c.Host.NewUDPSocket(p)
		if err := c.Host.BindUDP(sock, 0); err != nil {
			panic(err)
		}
		p.Delay(c.StartAfter)
		msg := make([]byte, c.MsgSize)
		total := c.Iterations + c.Warmup
		for i := 0; c.Iterations == 0 || i < total; i++ {
			p.Delay(c.Interval)
			start := p.Now()
			if err := c.Host.SendTo(p, sock, c.ServerAddr, c.ServerPort, msg); err != nil {
				return
			}
			_, ok, err := c.Host.RecvFromTimeout(p, sock, c.ReplyTimeout)
			if err != nil {
				return
			}
			if i < c.Warmup {
				continue
			}
			if !ok {
				c.Lost++
				continue
			}
			c.RTT.Add(p.Now() - start)
		}
		c.Done = true
	})
}
