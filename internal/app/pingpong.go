package app

import (
	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// PingPongServer echoes datagrams on a port ("a server process (ping-pong
// server) running on machine B").
type PingPongServer struct {
	Host *core.Host
	Port uint16
	// CPU is the simulated CPU the echo process is spawned on (multi-CPU
	// hosts; 0 — the boot CPU — otherwise).
	CPU int
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool
	Proc      *kernel.Proc
}

// Echo-server machine states.
const (
	ppsSetup = iota
	ppsRecv
	ppsSend
)

// Start spawns the echo process.
func (s *PingPongServer) Start() {
	var (
		pc   int
		sock *socket.Socket
		d    socket.Datagram
		recv core.RecvFromOp
		send core.SendToOp
	)
	s.Proc = spawnStep(s.Host.KernelAt(s.CPU), "pingpong-srv", 0, s.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case ppsSetup:
				sock = s.Host.NewUDPSocket(p)
				if err := s.Host.BindUDP(sock, s.Port); err != nil {
					panic(err)
				}
				pc = ppsRecv
			case ppsRecv:
				if !s.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				d = recv.D
				recv.Reset()
				send.Reset()
				pc = ppsSend
			case ppsSend:
				if !s.Host.SendToStep(p, sock, d.Src, d.SPort, d.Data, &send) {
					return
				}
				if send.Err != nil {
					p.ReqExit()
					return
				}
				d.Release() // echoed (send copied the bytes); buffer is dead
				pc = ppsRecv
			}
		}
	})
}

// PingPongClient ping-pongs a short message with a PingPongServer and
// records round-trip times ("Latency was measured by ping-ponging a 1-byte
// message between two workstations 10,000 times").
type PingPongClient struct {
	Host       *core.Host
	ServerAddr pkt.Addr
	ServerPort uint16
	MsgSize    int
	Iterations int
	// Warmup discards the first Warmup round trips from the histogram so
	// measurements reflect scheduler steady state (priorities take a
	// second or two to equilibrate under background load).
	Warmup int
	// StartAfter delays the first probe (µs), e.g. until background load
	// reaches steady state.
	StartAfter int64
	// Interval spaces probes apart (µs); 0 sends back-to-back.
	Interval int64
	// ReplyTimeout bounds one round trip; timed-out probes count as lost
	// (BSD's IP-queue drops under load make some probes unanswerable:
	// "packet dropping at the IP queue makes latency measurements
	// impossible at rates beyond 15,000 pkts/sec").
	ReplyTimeout int64
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	RTT  metrics.Histogram
	Lost int
	Done bool
	Proc *kernel.Proc
}

// Probe-client machine states.
const (
	ppcSetup = iota
	ppcLoop
	ppcProbe
	ppcSend
	ppcRecv
)

// Start spawns the client process.
func (c *PingPongClient) Start() {
	if c.MsgSize == 0 {
		c.MsgSize = 1
	}
	if c.ReplyTimeout == 0 {
		c.ReplyTimeout = 500 * sim.Millisecond
	}
	var (
		pc    int
		sock  *socket.Socket
		msg   []byte
		total int
		i     int
		start sim.Time
		recv  core.RecvFromOp
		send  core.SendToOp
	)
	c.Proc = spawnStep(c.Host.K, "pingpong-cli", 0, c.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case ppcSetup:
				sock = c.Host.NewUDPSocket(p)
				if err := c.Host.BindUDP(sock, 0); err != nil {
					panic(err)
				}
				msg = make([]byte, c.MsgSize)
				total = c.Iterations + c.Warmup
				recv = core.RecvFromOp{Timed: true, Timeout: c.ReplyTimeout}
				pc = ppcLoop
				if p.ReqDelay(c.StartAfter) {
					return
				}
			case ppcLoop:
				if c.Iterations != 0 && i >= total {
					c.Done = true
					p.ReqExit()
					return
				}
				pc = ppcProbe
				if p.ReqDelay(c.Interval) {
					return
				}
			case ppcProbe:
				start = p.Now()
				send.Reset()
				pc = ppcSend
			case ppcSend:
				if !c.Host.SendToStep(p, sock, c.ServerAddr, c.ServerPort, msg, &send) {
					return
				}
				if send.Err != nil {
					p.ReqExit()
					return
				}
				recv.Reset()
				pc = ppcRecv
			case ppcRecv:
				if !c.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				recv.D.Release() // only the round-trip time matters
				i++
				pc = ppcLoop
				if i-1 < c.Warmup {
					continue
				}
				if !recv.OK {
					c.Lost++
					continue
				}
				c.RTT.Add(p.Now() - start)
			}
		}
	})
}
