package app

// Packet-build plumbing shared by the traffic generators. Each generator
// owns a private mbuf pool and builds its packets in recycled storage, so
// a long blast run stops allocating once the pool warms up.

import (
	"lrp/internal/mbuf"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
)

// genPoolLimit bounds each generator's private buffer pool. It only needs
// to cover packets in flight on the simulated wire; the builders fall
// back to fresh buffers if it ever runs dry, so sizing affects recycling
// efficiency, not correctness.
const genPoolLimit = 4096

// zeroPayload backs the all-zero payloads the generators send. It must
// stay all-zero: the append builders copy from it, never into it.
var zeroPayload = make([]byte, 64*1024)

// zeros returns an all-zero payload of length n.
func zeros(n int) []byte {
	if n <= len(zeroPayload) {
		return zeroPayload[:n]
	}
	return make([]byte, n)
}

// injectUDP builds an IPv4/UDP packet in recycled pool storage and places
// it on the wire; the storage returns to the pool once the network has
// finished delivering the packet.
func injectUDP(nw *netsim.Network, pool *mbuf.Pool, src, dst pkt.Addr, sport, dport, id uint16, size int) {
	if m := pool.AllocBuf(pkt.UDPTotalLen(size)); m != nil {
		m.Data = pkt.AppendUDP(m.Data, src, dst, sport, dport, id, 64, zeros(size), true)
		nw.InjectMbuf(m)
		return
	}
	nw.Inject(pkt.UDPPacket(src, dst, sport, dport, id, 64, make([]byte, size), true))
}
