package app

import (
	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/metrics"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// The paper's §2.2 motivates LRP for multimedia: "Scheduling anomalies,
// such as those related to bursty data, can be ill-afforded by systems
// that run multimedia applications." A MediaSource emits a fixed-rate
// frame stream; a MediaPlayer measures per-frame delivery jitter, which
// under BSD inflates with unrelated bursty traffic and under LRP does not
// (traffic separation + receiver-priority processing).

// MediaSource injects periodic "frames" (one datagram each) at a fixed
// frame rate, like a video sender.
type MediaSource struct {
	Net       *netsim.Network
	Src, Dst  pkt.Addr
	SPort     uint16
	DPort     uint16
	FrameSize int
	// Interval is the frame period in µs (e.g. 33_333 for 30 fps).
	Interval int64

	Sent    metrics.Counter
	stopped bool
	ipid    uint16
	pool    *mbuf.Pool
	// lane carries the stream's self-chained frame events: at most one is
	// outstanding, so posting is a lane append, not a heap sift.
	lane *sim.Lane
	// emit is the single reusable firing thunk; rebuilding it per frame
	// would allocate a closure on every emission.
	emit func()
}

// Start begins the stream.
func (m *MediaSource) Start() {
	if m.FrameSize == 0 {
		m.FrameSize = 1400
	}
	if m.Interval == 0 {
		m.Interval = 33_333
	}
	m.pool = mbuf.NewPool(genPoolLimit)
	m.lane = m.Net.Eng.NewLane()
	m.emit = func() {
		if m.stopped {
			return
		}
		m.ipid++
		m.Sent.Inc()
		injectUDP(m.Net, m.pool, m.Src, m.Dst, m.SPort, m.DPort, m.ipid, m.FrameSize)
		m.schedule()
	}
	m.schedule()
}

// Stop halts the stream.
func (m *MediaSource) Stop() { m.stopped = true }

func (m *MediaSource) schedule() {
	if m.stopped {
		return
	}
	m.lane.PostAfter(m.Interval, m.emit)
}

// MediaPlayer receives the stream and records inter-frame delivery
// jitter: the absolute deviation of each gap between consecutive frame
// *deliveries to the application* from the nominal frame interval.
type MediaPlayer struct {
	Host *core.Host
	Port uint16
	// Interval is the nominal frame period (µs).
	Interval int64
	// PerFrameCompute models decode work.
	PerFrameCompute int64
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	Frames metrics.Counter
	Jitter metrics.Histogram
	Proc   *kernel.Proc
}

// Start spawns the player process.
func (m *MediaPlayer) Start() {
	if m.Interval == 0 {
		m.Interval = 33_333
	}
	var (
		pc   int
		sock *socket.Socket
		last sim.Time
		recv core.RecvFromOp
	)
	m.Proc = spawnStep(m.Host.K, "media-player", 0, m.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				sock = m.Host.NewUDPSocket(p)
				if err := m.Host.BindUDP(sock, m.Port); err != nil {
					panic(err)
				}
				pc = 1
			case 1:
				if !m.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				recv.D.Release() // the player only times frames
				recv.Reset()
				now := p.Now()
				if last != 0 {
					dev := now - last - m.Interval
					if dev < 0 {
						dev = -dev
					}
					m.Jitter.Add(dev)
				}
				last = now
				m.Frames.Inc()
				if p.ReqCompute(m.PerFrameCompute) {
					return
				}
			}
		}
	})
}
