package app

import (
	"encoding/binary"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// The Table 2 workload: "The RPC facility we used is based on UDP
// datagrams." An RPCServer performs PerCallCompute of work per request and
// replies; an RPCClient keeps requests outstanding, "distributed near
// uniformly in time".

// RPCServer answers UDP RPC requests after computing for PerCallCompute µs.
type RPCServer struct {
	Host *core.Host
	Port uint16
	// PerCallCompute is the per-request computation ("Fast", "Medium" and
	// "Slow" correspond to tests with different amounts of per-request
	// computations").
	PerCallCompute int64
	// CachePenalty marks the computation memory-bound (see kernel.Proc).
	CachePenalty int64
	// DisturbPenalty is the per-interrupt-disturbance cache cost (see
	// kernel.Proc.IntrPenalty).
	DisturbPenalty int64
	ReplySize      int

	Served metrics.Counter
	Proc   *kernel.Proc
}

// Start spawns the server process.
func (s *RPCServer) Start() {
	if s.ReplySize == 0 {
		s.ReplySize = 32
	}
	s.Proc = s.Host.K.Spawn("rpc-srv", 0, func(p *kernel.Proc) {
		p.CachePenalty = s.CachePenalty
		p.IntrPenalty = s.DisturbPenalty
		sock := s.Host.NewUDPSocket(p)
		if err := s.Host.BindUDP(sock, s.Port); err != nil {
			panic(err)
		}
		reply := make([]byte, s.ReplySize)
		for {
			d, err := s.Host.RecvFrom(p, sock)
			if err != nil {
				return
			}
			p.Compute(s.PerCallCompute)
			if len(d.Data) >= 8 {
				copy(reply, d.Data[:8]) // echo the request id
			}
			if err := s.Host.SendTo(p, sock, d.Src, d.SPort, reply); err != nil {
				return
			}
			s.Served.Inc()
		}
	})
}

// WorkerServer performs one long, memory-bound computation in response to
// a single RPC ("The first server process, called the worker, performs a
// memory-bound computation... approximately 11.5 seconds of CPU time and
// has a memory working set that covers a significant fraction (35%) of
// the second level cache").
type WorkerServer struct {
	Host        *core.Host
	Port        uint16
	ComputeTime int64 // total CPU the call needs
	// CachePenalty is the per-preemption cache-refill cost of the large
	// working set.
	CachePenalty int64

	StartedAt  sim.Time
	FinishedAt sim.Time
	Done       bool
	Proc       *kernel.Proc
}

// Start spawns the worker process.
func (w *WorkerServer) Start() {
	w.Proc = w.Host.K.Spawn("worker", 0, func(p *kernel.Proc) {
		p.CachePenalty = w.CachePenalty
		sock := w.Host.NewUDPSocket(p)
		if err := w.Host.BindUDP(sock, w.Port); err != nil {
			panic(err)
		}
		d, err := w.Host.RecvFrom(p, sock)
		if err != nil {
			return
		}
		w.StartedAt = p.Now()
		// Compute in slices so preemption effects (and their cache
		// penalties) are visible at realistic granularity.
		const slice = 5 * sim.Millisecond
		remaining := w.ComputeTime
		for remaining > 0 {
			c := slice
			if remaining < c {
				c = remaining
			}
			p.Compute(c)
			remaining -= c
		}
		_ = w.Host.SendTo(p, sock, d.Src, d.SPort, []byte("done"))
		w.FinishedAt = p.Now()
		w.Done = true
	})
}

// Elapsed returns the worker call's wall-clock completion time.
func (w *WorkerServer) Elapsed() int64 {
	if !w.Done {
		return 0
	}
	return w.FinishedAt - w.StartedAt
}

// CPUShare returns the worker's CPU share over the call: CPU time consumed
// divided by elapsed time (the paper's fairness metric; ideal is 1/3 with
// two other busy servers).
func (w *WorkerServer) CPUShare() float64 {
	el := w.Elapsed()
	if el == 0 {
		return 0
	}
	return float64(w.Proc.CPUTime()) / float64(el)
}

// RPCClient issues requests to one server, keeping Outstanding requests in
// flight at near-uniform spacing ("(1) each server has a number of
// outstanding RPC requests at all times, and (2) the requests are
// distributed near uniformly in time").
type RPCClient struct {
	Host       *core.Host
	ServerAddr pkt.Addr
	ServerPort uint16
	// Interval is the target spacing between request transmissions (µs).
	Interval int64
	// Outstanding caps requests in flight.
	Outstanding int
	Rng         *sim.Rand

	Completed metrics.Counter
	RTT       metrics.Histogram
	Proc      *kernel.Proc
}

// Start spawns the client process.
func (c *RPCClient) Start() {
	if c.Outstanding == 0 {
		c.Outstanding = 4
	}
	if c.Rng == nil {
		c.Rng = sim.NewRand(77)
	}
	c.Proc = c.Host.K.Spawn("rpc-cli", 0, func(p *kernel.Proc) {
		sock := c.Host.NewUDPSocket(p)
		if err := c.Host.BindUDP(sock, 0); err != nil {
			panic(err)
		}
		inflight := 0
		sendTimes := make(map[uint64]int64)
		var id uint64
		req := make([]byte, 64)
		for {
			for inflight < c.Outstanding {
				id++
				binary.BigEndian.PutUint64(req, id)
				sendTimes[id] = p.Now()
				if err := c.Host.SendTo(p, sock, c.ServerAddr, c.ServerPort, req); err != nil {
					return
				}
				inflight++
				if c.Interval > 0 {
					p.Delay(c.Rng.Jitter(c.Interval, 0.2))
				}
			}
			d, ok, err := c.Host.RecvFromTimeout(p, sock, sim.Second)
			if err != nil {
				return
			}
			if !ok {
				// Lost request or reply (rare off-overload): refill.
				inflight = 0
				continue
			}
			inflight--
			if len(d.Data) >= 8 {
				rid := binary.BigEndian.Uint64(d.Data)
				if t0, found := sendTimes[rid]; found {
					c.RTT.Add(p.Now() - t0)
					delete(sendTimes, rid)
				}
			}
			c.Completed.Inc()
		}
	})
}
