package app

import (
	"encoding/binary"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// The Table 2 workload: "The RPC facility we used is based on UDP
// datagrams." An RPCServer performs PerCallCompute of work per request and
// replies; an RPCClient keeps requests outstanding, "distributed near
// uniformly in time".

// RPCServer answers UDP RPC requests after computing for PerCallCompute µs.
type RPCServer struct {
	Host *core.Host
	Port uint16
	// PerCallCompute is the per-request computation ("Fast", "Medium" and
	// "Slow" correspond to tests with different amounts of per-request
	// computations").
	PerCallCompute int64
	// CachePenalty marks the computation memory-bound (see kernel.Proc).
	CachePenalty int64
	// DisturbPenalty is the per-interrupt-disturbance cache cost (see
	// kernel.Proc.IntrPenalty).
	DisturbPenalty int64
	ReplySize      int
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	Served metrics.Counter
	Proc   *kernel.Proc
}

// Start spawns the server process.
func (s *RPCServer) Start() {
	if s.ReplySize == 0 {
		s.ReplySize = 32
	}
	var (
		pc    int
		sock  *socket.Socket
		reply []byte
		d     socket.Datagram
		recv  core.RecvFromOp
		send  core.SendToOp
	)
	s.Proc = spawnStep(s.Host.K, "rpc-srv", 0, s.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				p.CachePenalty = s.CachePenalty
				p.IntrPenalty = s.DisturbPenalty
				sock = s.Host.NewUDPSocket(p)
				if err := s.Host.BindUDP(sock, s.Port); err != nil {
					panic(err)
				}
				reply = make([]byte, s.ReplySize)
				pc = 1
			case 1:
				if !s.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				d = recv.D
				recv.Reset()
				pc = 2
				if p.ReqCompute(s.PerCallCompute) {
					return
				}
			case 2:
				if len(d.Data) >= 8 {
					copy(reply, d.Data[:8]) // echo the request id
				}
				d.Release() // only the id was needed
				send.Reset()
				pc = 3
			case 3:
				if !s.Host.SendToStep(p, sock, d.Src, d.SPort, reply, &send) {
					return
				}
				if send.Err != nil {
					p.ReqExit()
					return
				}
				s.Served.Inc()
				pc = 1
			}
		}
	})
}

// WorkerServer performs one long, memory-bound computation in response to
// a single RPC ("The first server process, called the worker, performs a
// memory-bound computation... approximately 11.5 seconds of CPU time and
// has a memory working set that covers a significant fraction (35%) of
// the second level cache").
type WorkerServer struct {
	Host        *core.Host
	Port        uint16
	ComputeTime int64 // total CPU the call needs
	// CachePenalty is the per-preemption cache-refill cost of the large
	// working set.
	CachePenalty int64
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	StartedAt  sim.Time
	FinishedAt sim.Time
	Done       bool
	Proc       *kernel.Proc
}

// Start spawns the worker process.
func (w *WorkerServer) Start() {
	var (
		pc        int
		sock      *socket.Socket
		d         socket.Datagram
		remaining int64
		recv      core.RecvFromOp
		send      core.SendToOp
	)
	w.Proc = spawnStep(w.Host.K, "worker", 0, w.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				p.CachePenalty = w.CachePenalty
				sock = w.Host.NewUDPSocket(p)
				if err := w.Host.BindUDP(sock, w.Port); err != nil {
					panic(err)
				}
				pc = 1
			case 1:
				if !w.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				d = recv.D
				d.Release() // only the reply address is needed
				w.StartedAt = p.Now()
				remaining = w.ComputeTime
				pc = 2
			case 2:
				if remaining <= 0 {
					send.Reset()
					pc = 3
					continue
				}
				// Compute in slices so preemption effects (and their cache
				// penalties) are visible at realistic granularity.
				c := 5 * sim.Millisecond
				if remaining < c {
					c = remaining
				}
				remaining -= c
				if p.ReqCompute(c) {
					return
				}
			case 3:
				if !w.Host.SendToStep(p, sock, d.Src, d.SPort, []byte("done"), &send) {
					return
				}
				w.FinishedAt = p.Now()
				w.Done = true
				p.ReqExit()
				return
			}
		}
	})
}

// Elapsed returns the worker call's wall-clock completion time.
func (w *WorkerServer) Elapsed() int64 {
	if !w.Done {
		return 0
	}
	return w.FinishedAt - w.StartedAt
}

// CPUShare returns the worker's CPU share over the call: CPU time consumed
// divided by elapsed time (the paper's fairness metric; ideal is 1/3 with
// two other busy servers).
func (w *WorkerServer) CPUShare() float64 {
	el := w.Elapsed()
	if el == 0 {
		return 0
	}
	return float64(w.Proc.CPUTime()) / float64(el)
}

// RPCClient issues requests to one server, keeping Outstanding requests in
// flight at near-uniform spacing ("(1) each server has a number of
// outstanding RPC requests at all times, and (2) the requests are
// distributed near uniformly in time").
type RPCClient struct {
	Host       *core.Host
	ServerAddr pkt.Addr
	ServerPort uint16
	// Interval is the target spacing between request transmissions (µs).
	Interval int64
	// Outstanding caps requests in flight.
	Outstanding int
	Rng         *sim.Rand
	// Coroutine hosts the process on a goroutine coroutine instead of
	// stepping it stacklessly (the fallback execution mode).
	Coroutine bool

	Completed metrics.Counter
	RTT       metrics.Histogram
	Proc      *kernel.Proc
}

// Start spawns the client process.
func (c *RPCClient) Start() {
	if c.Outstanding == 0 {
		c.Outstanding = 4
	}
	if c.Rng == nil {
		c.Rng = sim.NewRand(77)
	}
	var (
		pc        int
		sock      *socket.Socket
		inflight  int
		sendTimes map[uint64]int64
		id        uint64
		req       []byte
		recv      core.RecvFromOp
		send      core.SendToOp
	)
	c.Proc = spawnStep(c.Host.K, "rpc-cli", 0, c.Coroutine, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				sock = c.Host.NewUDPSocket(p)
				if err := c.Host.BindUDP(sock, 0); err != nil {
					panic(err)
				}
				sendTimes = make(map[uint64]int64)
				req = make([]byte, 64)
				recv = core.RecvFromOp{Timed: true, Timeout: sim.Second}
				pc = 1
			case 1:
				if inflight < c.Outstanding {
					id++
					binary.BigEndian.PutUint64(req, id)
					sendTimes[id] = p.Now()
					send.Reset()
					pc = 2
					continue
				}
				recv.Reset()
				pc = 3
			case 2:
				if !c.Host.SendToStep(p, sock, c.ServerAddr, c.ServerPort, req, &send) {
					return
				}
				if send.Err != nil {
					p.ReqExit()
					return
				}
				inflight++
				pc = 1
				if c.Interval > 0 {
					if p.ReqDelay(c.Rng.Jitter(c.Interval, 0.2)) {
						return
					}
				}
			case 3:
				if !c.Host.RecvFromStep(p, sock, &recv) {
					return
				}
				if recv.Err != nil {
					p.ReqExit()
					return
				}
				if !recv.OK {
					// Lost request or reply (rare off-overload): refill.
					inflight = 0
					pc = 1
					continue
				}
				inflight--
				if len(recv.D.Data) >= 8 {
					rid := binary.BigEndian.Uint64(recv.D.Data)
					if t0, found := sendTimes[rid]; found {
						c.RTT.Add(p.Now() - t0)
						delete(sendTimes, rid)
					}
				}
				recv.D.Release() // id consumed
				c.Completed.Inc()
				pc = 1
			}
		}
	})
}
