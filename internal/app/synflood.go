package app

import (
	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/metrics"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// SYNFlood injects "fake TCP connection establishment requests (SYN
// packets) to a dummy server" at a fixed rate, each from a fresh source
// port so no two belong to the same embryonic connection. "No connections
// are ever established as a result of these requests; TCP on the server
// side discards most of them once the dummy server's listen backlog is
// exceeded."
type SYNFlood struct {
	Net    *netsim.Network
	Src    pkt.Addr
	Dst    pkt.Addr
	DPort  uint16
	Rate   int64 // SYNs per second
	Jitter float64
	Rng    *sim.Rand

	Sent    metrics.Counter
	stopped bool
	sport   uint16
	seq     uint32
	ipid    uint16
	pool    *mbuf.Pool
	// lane carries the flood's self-chained emission events: at most one
	// is outstanding, so posting is a lane append, not a heap sift.
	lane *sim.Lane
	// emit is the single reusable firing thunk; rebuilding it per SYN
	// would allocate a closure on every emission.
	emit func()
}

// Start begins the flood; Stop halts it.
func (f *SYNFlood) Start() {
	if f.Rng == nil {
		f.Rng = sim.NewRand(99)
	}
	if f.Jitter == 0 {
		f.Jitter = 0.3
	}
	if f.sport == 0 {
		f.sport = 1024
	}
	f.pool = mbuf.NewPool(genPoolLimit)
	f.lane = f.Net.Eng.NewLane()
	f.emit = func() {
		if f.stopped {
			return
		}
		f.sport++
		if f.sport < 1024 {
			f.sport = 1024
		}
		f.seq += 12345
		f.ipid++
		h := pkt.TCPHeader{
			SrcPort: f.sport,
			DstPort: f.DPort,
			Seq:     f.seq,
			Flags:   pkt.TCPSyn,
			Window:  8192,
			MSS:     1460,
		}
		f.Sent.Inc()
		if m := f.pool.AllocBuf(pkt.TCPTotalLen(&h, 0)); m != nil {
			m.Data = pkt.AppendTCP(m.Data, f.Src, f.Dst, &h, f.ipid, 64, nil)
			f.Net.InjectMbuf(m)
		} else {
			f.Net.Inject(pkt.TCPSegment(f.Src, f.Dst, &h, f.ipid, 64, nil))
		}
		f.schedule()
	}
	f.schedule()
}

// Stop halts the flood.
func (f *SYNFlood) Stop() { f.stopped = true }

func (f *SYNFlood) schedule() {
	if f.stopped || f.Rate <= 0 {
		return
	}
	gap := sim.Second / f.Rate
	if gap < 1 {
		gap = 1
	}
	f.lane.PostAfter(f.Rng.Jitter(gap, f.Jitter), f.emit)
}

// StartDummyServer spawns the flood's victim: "a dummy server running on
// the server machine" that listens on port but never accepts, so its
// backlog fills after the first few SYNs.
func StartDummyServer(h *core.Host, port uint16, backlog int) *kernel.Proc {
	var (
		pc  int
		l   *socket.Socket
		lis core.ListenOp
	)
	return h.K.SpawnStep("dummy-srv", 0, func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				l = h.NewTCPSocket(p)
				if err := h.BindTCP(l, port); err != nil {
					panic(err)
				}
				pc = 1
			case 1:
				if !h.ListenStep(p, l, backlog, &lis) {
					return
				}
				if lis.Err != nil {
					panic(lis.Err)
				}
				pc = 2
				p.ReqSleep(&l.AcceptWait) // sleeps forever; never accepts
				return
			case 2:
				p.ReqExit() // woken only at teardown
				return
			}
		}
	})
}
