package app

import "lrp/internal/kernel"

// spawnStep starts a workload process in the requested execution mode:
// stackless (the default) or goroutine-hosted when the workload's
// Coroutine flag selects the fallback. The body is the same StepFn either
// way and issues the same request stream, so scheduling, accounting and
// results are identical in both modes.
func spawnStep(k *kernel.Kernel, name string, nice int, coro bool, step kernel.StepFn) *kernel.Proc {
	if coro {
		return k.SpawnStepCoro(name, nice, step)
	}
	return k.SpawnStep(name, nice, step)
}
