// Package metrics provides the small set of measurement tools the
// experiments need: latency histograms, rate counters, and time-series
// helpers. Everything operates on simulated-time microseconds.
package metrics

import (
	"fmt"
	"sort"
)

// Histogram collects latency samples (µs) and reports order statistics.
type Histogram struct {
	samples []int64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum int64
	for _, v := range h.samples {
		sum += v
	}
	return float64(sum) / float64(len(h.samples))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0-100), or 0 with no samples.
func (h *Histogram) Percentile(p float64) int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	idx := int(p / 100 * float64(len(h.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Median returns the 50th percentile.
func (h *Histogram) Median() int64 { return h.Percentile(50) }

// Min and Max return the extremes, or 0 with no samples.
func (h *Histogram) Min() int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample.
func (h *Histogram) Max() int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Median(), h.Percentile(99), h.Max())
}

// Counter counts events over a measurement window so warmup can be
// excluded: Reset at the window start, Rate at the end.
type Counter struct {
	total      uint64
	windowBase uint64
	windowT0   int64
}

// Inc adds one event.
func (c *Counter) Inc() { c.total++ }

// Addn adds n events.
func (c *Counter) Addn(n uint64) { c.total += n }

// Total returns the all-time count.
func (c *Counter) Total() uint64 { return c.total }

// Reset marks the start of a measurement window at time now (µs).
func (c *Counter) Reset(now int64) {
	c.windowBase = c.total
	c.windowT0 = now
}

// WindowCount returns events since the last Reset.
func (c *Counter) WindowCount() uint64 { return c.total - c.windowBase }

// Rate returns events per second since the last Reset, evaluated at now.
func (c *Counter) Rate(now int64) float64 {
	dt := now - c.windowT0
	if dt <= 0 {
		return 0
	}
	return float64(c.total-c.windowBase) / (float64(dt) / 1e6)
}
