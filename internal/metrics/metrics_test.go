package metrics

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Median() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Median() != 5 {
		t.Fatalf("median = %d", h.Median())
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(0); p != 1 {
		t.Fatalf("p0 = %d", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %d", p)
	}
	if p := h.Percentile(50); p < 45 || p > 55 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(99); p < 95 {
		t.Fatalf("p99 = %d", p)
	}
}

func TestHistogramInterleavedAddAndQuery(t *testing.T) {
	// Queries sort lazily; adds after a query must still be seen.
	var h Histogram
	h.Add(10)
	_ = h.Median()
	h.Add(1)
	if h.Min() != 1 {
		t.Fatal("add after query lost")
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestHistogramMonotoneProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Add(int64(v))
		}
		prev := h.Min()
		for p := 0.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: median matches a reference computation.
func TestHistogramMedianReference(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		ref := make([]int64, len(vals))
		for i, v := range vals {
			h.Add(int64(v))
			ref[i] = int64(v)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		return h.Median() == ref[(len(ref)-1)/2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterWindows(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(9)
	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
	c.Reset(1_000_000)
	if c.WindowCount() != 0 {
		t.Fatal("reset did not clear the window")
	}
	c.Addn(500)
	if c.WindowCount() != 500 {
		t.Fatalf("window = %d", c.WindowCount())
	}
	// 500 events over half a second = 1000/s.
	if r := c.Rate(1_500_000); r != 1000 {
		t.Fatalf("rate = %v", r)
	}
	if r := c.Rate(1_000_000); r != 0 {
		t.Fatalf("zero-width window rate = %v", r)
	}
	if c.Total() != 510 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(2)
	h.Add(4)
	if s := h.String(); s == "" {
		t.Fatal("empty string")
	}
}
