// Package topo builds declarative multi-hop topologies over the netsim
// switch fabric: chains of IP-forwarding hosts and fan-in trees with
// configurable branching, the shapes of internet-scale paths between a
// client population and a server under test. The paper's evaluation is a
// single LAN segment; LRP's headline claims (stable throughput, no
// receive livelock) matter most at internet fan-in, where transit
// gateways are themselves receive-livelock candidates.
//
// A topology is expressed entirely with per-port next-hop routes
// (netsim.AddRouteFrom): each segment of a chain is a route on the
// upstream attachment pointing at the next forwarding host, so the
// packet takes every hop — paying each gateway's receive path and a TTL
// decrement — even though all hosts share one switch fabric. Builders
// wire the forward and reverse routes, enable IP forwarding on the
// transit hosts, and Validate walks every edge-to-server path without
// sending traffic.
//
// Per-hop impairment comes free from the existing fault layer:
// ImpairSegments compiles one fault.Pipeline per receiving port along
// the paths (independent forked RNG streams per segment), so WAN-ish
// loss/delay/reorder profiles apply hop by hop.
package topo

import (
	"fmt"

	"lrp/internal/core"
	"lrp/internal/fault"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// maxPathHops bounds the reachability walk; a longer path means a
// routing loop (or a topology the TTL budget could not cross anyway).
const maxPathHops = 32

// Spec carries what every builder needs: the world, a host factory
// (binding architecture, cost model and link parameters), and the nice
// value for the LRP forwarding daemons on transit hosts.
type Spec struct {
	Eng *sim.Engine
	Net *netsim.Network
	// Make constructs one attached host. The factory chooses everything
	// but name and address (arch, costs, link speed), so a whole
	// topology runs one kernel configuration per call site.
	Make func(name string, addr pkt.Addr) *core.Host
	// FwdNice is the nice value of the forwarding daemons spawned on
	// transit hosts (LRP architectures; ignored by the eager kernels).
	FwdNice int
}

// Topology is a built multi-hop world: a server under test, transit
// gateways, and edge hosts where client populations attach. Slices are
// in deterministic construction order.
type Topology struct {
	Name     string
	Eng      *sim.Engine
	Net      *netsim.Network
	Server   *core.Host
	Gateways []*core.Host
	// Edges are the attach-point hosts: an aggregated population injects
	// from an edge's address and its traffic follows that port's routes
	// into the topology.
	Edges []*core.Host

	// segRx lists the receiving addresses of the topology's inter-host
	// segments (every gateway plus the server), in path order: the
	// granularity at which ImpairSegments applies per-hop fault plans.
	segRx []pkt.Addr
}

// Standard address blocks: the server, then transit gateways, then edge
// hosts, in distinct /24s of net 10.
var (
	serverAddr = pkt.IP(10, 1, 0, 1)
)

func gwAddr(i int) pkt.Addr   { return pkt.IP(10, 1, 1, byte(i+1)) }
func edgeAddr(i int) pkt.Addr { return pkt.IP(10, 1, 2, byte(i+1)) }

// Direct builds the degenerate 1-hop topology: one edge host and the
// server on the same segment, no transit gateways — the paper's own LAN
// setup, kept as the baseline cell of every wan sweep.
func Direct(spec Spec) *Topology {
	t := &Topology{Name: "1hop", Eng: spec.Eng, Net: spec.Net}
	t.Server = spec.Make("S", serverAddr)
	t.Edges = []*core.Host{spec.Make("E0", edgeAddr(0))}
	t.segRx = []pkt.Addr{serverAddr}
	return t
}

// Chain builds edge -> G1 -> ... -> Ghops -> server: hops transit
// gateways, each forwarding toward the server, with reverse routes so
// server-originated traffic (TCP handshakes, responses) retraces the
// chain back to the edge.
func Chain(spec Spec, hops int) *Topology {
	if hops < 1 {
		panic("topo: Chain needs at least one transit hop")
	}
	t := &Topology{Name: fmt.Sprintf("chain%d", hops+1), Eng: spec.Eng, Net: spec.Net}
	t.Server = spec.Make("S", serverAddr)
	edge := spec.Make("E0", edgeAddr(0))
	t.Edges = []*core.Host{edge}
	for i := 0; i < hops; i++ {
		g := spec.Make(fmt.Sprintf("G%d", i+1), gwAddr(i))
		g.EnableForwarding(spec.FwdNice)
		t.Gateways = append(t.Gateways, g)
	}
	// Forward path: edge -> G1, Gi -> Gi+1; the last gateway reaches the
	// server directly.
	mustRoute(spec.Net, edge.Addr, serverAddr, t.Gateways[0].Addr)
	for i := 0; i < hops-1; i++ {
		mustRoute(spec.Net, t.Gateways[i].Addr, serverAddr, t.Gateways[i+1].Addr)
	}
	// Reverse path: server -> Ghops, Gi -> Gi-1; G1 reaches the edge
	// directly.
	mustRoute(spec.Net, serverAddr, edge.Addr, t.Gateways[hops-1].Addr)
	for i := hops - 1; i > 0; i-- {
		mustRoute(spec.Net, t.Gateways[i].Addr, edge.Addr, t.Gateways[i-1].Addr)
	}
	for i := 0; i < hops; i++ {
		t.segRx = append(t.segRx, t.Gateways[i].Addr)
	}
	t.segRx = append(t.segRx, serverAddr)
	return t
}

// FanIn builds a fan-in tree with the given branching: branching^depth
// edge hosts at the leaves, each group of `branching` children feeding
// one gateway, levels of gateways converging on a root gateway that
// feeds the server. depth counts gateway levels, so FanIn(spec, 4, 2)
// is 16 edges -> 4 aggregation gateways -> 1 root gateway -> server.
func FanIn(spec Spec, branching, depth int) *Topology {
	if branching < 2 || depth < 1 {
		panic("topo: FanIn needs branching >= 2 and depth >= 1")
	}
	leaves := 1
	for i := 0; i < depth; i++ {
		leaves *= branching
	}
	t := &Topology{Name: fmt.Sprintf("tree%d", leaves), Eng: spec.Eng, Net: spec.Net}
	t.Server = spec.Make("S", serverAddr)

	// Gateway levels, root (level 0, one node) outward; level k has
	// branching^k nodes. parent(level k, index j) = node j/branching of
	// level k-1.
	levels := make([][]*core.Host, depth)
	n := 0
	width := 1
	for k := 0; k < depth; k++ {
		for j := 0; j < width; j++ {
			g := spec.Make(fmt.Sprintf("G%d", n+1), gwAddr(n))
			g.EnableForwarding(spec.FwdNice)
			levels[k] = append(levels[k], g)
			t.Gateways = append(t.Gateways, g)
			n++
		}
		width *= branching
	}
	for i := 0; i < leaves; i++ {
		t.Edges = append(t.Edges, spec.Make(fmt.Sprintf("E%d", i), edgeAddr(i)))
	}

	// Forward routes: each edge sends server-bound traffic to its leaf
	// gateway; each gateway forwards to its parent; the root reaches the
	// server directly.
	leafGws := levels[depth-1]
	for i, e := range t.Edges {
		mustRoute(spec.Net, e.Addr, serverAddr, leafGws[i/branching].Addr)
	}
	for k := depth - 1; k >= 1; k-- {
		for j, g := range levels[k] {
			mustRoute(spec.Net, g.Addr, serverAddr, levels[k-1][j/branching].Addr)
		}
	}

	// Reverse routes, per edge: the server sends via the root; each
	// gateway sends via the child whose subtree holds the edge; leaf
	// gateways reach their edges directly. Edge i's ancestor at level k
	// is node i / branching^(depth-k) of that level.
	for i, e := range t.Edges {
		mustRoute(spec.Net, serverAddr, e.Addr, levels[0][0].Addr)
		div := leaves
		for k := 0; k < depth-1; k++ {
			div /= branching // edges per level-(k+1) subtree
			cur := levels[k][i/(div*branching)]
			next := levels[k+1][i/div]
			mustRoute(spec.Net, cur.Addr, e.Addr, next.Addr)
		}
	}

	for k := depth - 1; k >= 0; k-- {
		for _, g := range levels[k] {
			t.segRx = append(t.segRx, g.Addr)
		}
	}
	t.segRx = append(t.segRx, serverAddr)
	return t
}

// mustRoute installs a per-port next-hop route; builders construct both
// endpoints before routing, so failure is a construction bug.
func mustRoute(nw *netsim.Network, from, dst, via pkt.Addr) {
	if err := nw.AddRouteFrom(from, dst, via); err != nil {
		panic(err)
	}
}

// Validate walks every edge-to-server path and every server-to-edge
// path through the installed routes, confirming each terminates at its
// destination within maxPathHops, and that every transit host on the
// way runs IP forwarding.
func (t *Topology) Validate() error {
	fwd := make(map[pkt.Addr]bool, len(t.Gateways))
	for _, g := range t.Gateways {
		fwd[g.Addr] = true
	}
	for _, e := range t.Edges {
		if err := t.walk(e.Addr, t.Server.Addr, fwd); err != nil {
			return err
		}
		if err := t.walk(t.Server.Addr, e.Addr, fwd); err != nil {
			return err
		}
	}
	return nil
}

// walk traces one path from -> dst hop by hop.
func (t *Topology) walk(from, dst pkt.Addr, fwd map[pkt.Addr]bool) error {
	cur := from
	for hop := 0; hop < maxPathHops; hop++ {
		next, ok := t.Net.NextHopFrom(cur, dst)
		if !ok {
			return fmt.Errorf("topo %s: no route from %v toward %v (at %v)", t.Name, from, dst, cur)
		}
		if next == dst {
			return nil
		}
		if !fwd[next] {
			return fmt.Errorf("topo %s: path %v -> %v transits %v, which does not forward", t.Name, from, dst, next)
		}
		cur = next
	}
	return fmt.Errorf("topo %s: path %v -> %v exceeds %d hops (routing loop?)", t.Name, from, dst, maxPathHops)
}

// Hops returns the number of inter-host segments on an edge-to-server
// path (1 for Direct, transit hops + 1 otherwise). Populations size
// their TTL above it.
func (t *Topology) Hops() int { return len(t.segRx) }

// ImpairSegments compiles plan once per topology segment and installs
// each pipeline on the segment's receiving port (gateway and server
// attachments), so the same WAN profile applies independently at every
// hop. Each segment's pipeline is reseeded with a distinct derived seed:
// adjacent hops must not replay identical drop sequences.
func (t *Topology) ImpairSegments(plan fault.Plan) error {
	for i, addr := range t.segRx {
		p := plan
		p.Seed = plan.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		pl, err := fault.New(p)
		if err != nil {
			return err
		}
		if err := t.Net.SetPortFaults(addr, pl); err != nil {
			return err
		}
	}
	return nil
}

// Shutdown stops every host in the topology.
func (t *Topology) Shutdown() {
	for _, h := range t.Edges {
		h.Shutdown()
	}
	for _, h := range t.Gateways {
		h.Shutdown()
	}
	t.Server.Shutdown()
}
