package topo

import (
	"testing"

	"lrp/internal/core"
	"lrp/internal/fault"
	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

const mbps155 = 155_000_000

func testSpec(arch core.Arch) (Spec, *sim.Engine) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	spec := Spec{
		Eng: eng,
		Net: nw,
		Make: func(name string, addr pkt.Addr) *core.Host {
			return core.NewHost(eng, nw, core.Config{Name: name, Addr: addr, Arch: arch})
		},
	}
	return spec, eng
}

func TestBuildersValidate(t *testing.T) {
	for _, build := range []struct {
		name string
		mk   func(Spec) *Topology
	}{
		{"direct", func(s Spec) *Topology { return Direct(s) }},
		{"chain3", func(s Spec) *Topology { return Chain(s, 2) }},
		{"chain5", func(s Spec) *Topology { return Chain(s, 4) }},
		{"tree16", func(s Spec) *Topology { return FanIn(s, 4, 2) }},
		{"tree27", func(s Spec) *Topology { return FanIn(s, 3, 3) }},
	} {
		t.Run(build.name, func(t *testing.T) {
			spec, _ := testSpec(core.ArchSoftLRP)
			topo := build.mk(spec)
			defer topo.Shutdown()
			if err := topo.Validate(); err != nil {
				t.Fatal(err)
			}
			if topo.Hops() != len(topo.Gateways)+1 && build.name != "tree16" && build.name != "tree27" {
				t.Fatalf("Hops()=%d with %d gateways", topo.Hops(), len(topo.Gateways))
			}
		})
	}
}

func TestChainDeliversThroughEveryGateway(t *testing.T) {
	spec, eng := testSpec(core.ArchSoftLRP)
	topo := Chain(spec, 2)
	defer topo.Shutdown()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	got := sinkUDP(topo)
	edge := topo.Edges[0]
	b := pkt.UDPPacket(edge.Addr, topo.Server.Addr, 99, 7, 1, 64, nil, true)
	eng.At(100, func() { topo.Net.InjectFrom(edge.Addr, b) })
	eng.RunFor(200 * sim.Millisecond)
	if *got != 1 {
		t.Fatalf("server got %d datagrams, want 1", *got)
	}
	for i, g := range topo.Gateways {
		if g.ForwardStats().Forwarded != 1 {
			t.Fatalf("gateway %d forwarded %d packets, want 1", i, g.ForwardStats().Forwarded)
		}
	}
}

func TestFanInAggregatesAllEdges(t *testing.T) {
	spec, eng := testSpec(core.ArchSoftLRP)
	topo := FanIn(spec, 4, 2)
	defer topo.Shutdown()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Edges) != 16 || len(topo.Gateways) != 5 {
		t.Fatalf("tree16 has %d edges, %d gateways", len(topo.Edges), len(topo.Gateways))
	}
	got := sinkUDP(topo)
	for i, e := range topo.Edges {
		b := pkt.UDPPacket(e.Addr, topo.Server.Addr, 99, 7, uint16(i+1), 64, nil, true)
		addr := e.Addr
		eng.At(int64(100+i*50), func() { topo.Net.InjectFrom(addr, b) })
	}
	eng.RunFor(500 * sim.Millisecond)
	if *got != 16 {
		t.Fatalf("server got %d datagrams, want 16 (one per edge)", *got)
	}
	// The root gateway (G1) carries everything; the four leaf gateways
	// carry their own subtree.
	if f := topo.Gateways[0].ForwardStats().Forwarded; f != 16 {
		t.Fatalf("root forwarded %d, want 16", f)
	}
	for i := 1; i < 5; i++ {
		if f := topo.Gateways[i].ForwardStats().Forwarded; f != 4 {
			t.Fatalf("leaf gateway %d forwarded %d, want 4", i, f)
		}
	}
}

func TestImpairSegmentsDropsEverythingAtFullLoss(t *testing.T) {
	spec, eng := testSpec(core.ArchSoftLRP)
	topo := Chain(spec, 2)
	defer topo.Shutdown()
	if err := topo.ImpairSegments(fault.LossPlan(1.0, 1)); err != nil {
		t.Fatal(err)
	}
	got := sinkUDP(topo)
	edge := topo.Edges[0]
	for i := 0; i < 10; i++ {
		b := pkt.UDPPacket(edge.Addr, topo.Server.Addr, 99, 7, uint16(i+1), 64, nil, true)
		eng.At(int64(100+i*100), func() { topo.Net.InjectFrom(edge.Addr, b) })
	}
	eng.RunFor(200 * sim.Millisecond)
	if *got != 0 {
		t.Fatalf("server got %d datagrams through a 100%% loss chain", *got)
	}
}

func TestValidateDetectsRoutingLoop(t *testing.T) {
	spec, _ := testSpec(core.ArchSoftLRP)
	topo := Chain(spec, 2)
	defer topo.Shutdown()
	// Sabotage: make G2 route server-bound traffic back to G1.
	if err := spec.Net.AddRouteFrom(topo.Gateways[1].Addr, topo.Server.Addr, topo.Gateways[0].Addr); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err == nil {
		t.Fatal("Validate accepted a routing loop")
	}
}

func TestReversePathReachesEdges(t *testing.T) {
	// Server-originated traffic must retrace the chain: required for TCP.
	spec, eng := testSpec(core.ArchSoftLRP)
	topo := Chain(spec, 2)
	defer topo.Shutdown()
	edge := topo.Edges[0]
	var got int
	edge.K.Spawn("edgesink", 0, func(p *kernel.Proc) {
		s := edge.NewUDPSocket(p)
		_ = edge.BindUDP(s, 9)
		for {
			if _, err := edge.RecvFrom(p, s); err != nil {
				return
			}
			got++
		}
	})
	b := pkt.UDPPacket(topo.Server.Addr, edge.Addr, 99, 9, 1, 64, nil, true)
	eng.At(100, func() { topo.Net.InjectFrom(topo.Server.Addr, b) })
	eng.RunFor(200 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("edge got %d reverse datagrams, want 1", got)
	}
	for i, g := range topo.Gateways {
		if g.ForwardStats().Forwarded != 1 {
			t.Fatalf("gateway %d forwarded %d on the reverse path", i, g.ForwardStats().Forwarded)
		}
	}
}

// sinkUDP runs a UDP sink on port 7 of the server and returns the
// delivered-datagram count.
func sinkUDP(t *Topology) *int {
	var got int
	srv := t.Server
	srv.K.Spawn("sink", 0, func(p *kernel.Proc) {
		s := srv.NewUDPSocket(p)
		_ = srv.BindUDP(s, 7)
		for {
			if _, err := srv.RecvFrom(p, s); err != nil {
				return
			}
			got++
		}
	})
	return &got
}
