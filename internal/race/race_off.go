//go:build !race

// Package race reports whether the build has the race detector enabled.
// Allocation-pinning tests consult Enabled to skip themselves: race
// instrumentation legitimately changes allocation behavior (for one, it
// disables the zero-fill append optimization), so AllocsPerRun contracts
// only hold in uninstrumented builds.
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
