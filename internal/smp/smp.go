// Package smp composes M simulated kernels (internal/kernel) into one
// multi-CPU host. Each kernel keeps its own run queue, interrupt
// queues, and accounting — exactly the per-CPU scheduler state of a
// real SMP — and the cluster supplies the glue the paper's
// uniprocessor evaluation never needed:
//
//   - cross-CPU wakeups: a process woken from another CPU's context is
//     made runnable on its home CPU by an inter-processor interrupt
//     (sim.IPI) — flight latency, then a hardware-interrupt work item
//     on the home kernel that drains the pending-wakeup list. The IPI
//     line coalesces, so a burst of remote wakeups costs one
//     interrupt.
//   - work stealing: a CPU about to go idle may migrate one runnable,
//     unpinned process from a sibling's run queue, paying an explicit
//     migration cost (the cache-refill price of running cold).
//   - idle halting: a CPU with nothing to run simply stops consuming
//     events until an interrupt, IPI, or clock tick touches it; halts
//     are counted per CPU.
//
// The cluster owns no scheduling policy beyond these hooks; everything
// else — priorities, decay, preemption, charging — is the per-kernel
// machinery unchanged. A host with one CPU never creates a cluster,
// and a kernel with a nil Group behaves byte-identically to the
// pre-SMP kernel.
package smp

import (
	"fmt"

	"lrp/internal/kernel"
	"lrp/internal/sim"
)

// Default cost parameters, in microseconds. They are deliberately
// small next to the per-packet protocol costs: IPIs and migrations are
// cheap, it is the serialization they imply that the experiments
// measure.
const (
	DefaultIPILatency  = 2
	DefaultIPICost     = 8
	DefaultMigrateCost = 30
)

// Config parameterizes a cluster. Zero fields take the defaults above.
type Config struct {
	// IPILatency is the flight time of an inter-processor interrupt.
	IPILatency int64
	// IPICost is the hardware-interrupt work the receiving CPU performs
	// per delivered IPI (charged like any other interrupt).
	IPICost int64
	// MigrateCost is added to a stolen process's next burst: the cache
	// refill it pays for running cold on the thief CPU.
	MigrateCost int64
}

// CPUStats counts one CPU's SMP events.
type CPUStats struct {
	Halts         uint64 // transitions to idle with nothing to run
	Steals        uint64 // processes this CPU stole from siblings
	RemoteWakes   uint64 // wakeups queued for this CPU from other CPUs
	IPIsSent      uint64 // signals raised on this CPU's line
	IPIsDelivered uint64 // interrupts actually taken (coalescing absorbs the rest)
}

// cpu is one member: its kernel, its inbound IPI line, and the wakeup
// list that line's interrupt drains.
type cpu struct {
	k            *kernel.Kernel
	ipi          sim.IPI
	pendingWakes []*kernel.Proc
	stats        CPUStats
}

// Cluster links M kernels sharing one engine into a multi-CPU host.
type Cluster struct {
	Eng  *sim.Engine
	cfg  Config
	cpus []*cpu
	g    *kernel.Group
}

// New builds a cluster over ks (at least two kernels on the same
// engine), pointing every kernel's Group at the shared group and
// installing the remote-wake, steal, and halt hooks.
func New(eng *sim.Engine, ks []*kernel.Kernel, cfg Config) *Cluster {
	if len(ks) < 2 {
		panic(fmt.Sprintf("smp: cluster needs at least 2 CPUs, got %d", len(ks)))
	}
	if cfg.IPILatency == 0 {
		cfg.IPILatency = DefaultIPILatency
	}
	if cfg.IPICost == 0 {
		cfg.IPICost = DefaultIPICost
	}
	if cfg.MigrateCost == 0 {
		cfg.MigrateCost = DefaultMigrateCost
	}
	cl := &Cluster{Eng: eng, cfg: cfg, g: &kernel.Group{}}
	for _, k := range ks {
		c := &cpu{k: k}
		c.ipi = sim.IPI{Eng: eng, Latency: cfg.IPILatency}
		cl.cpus = append(cl.cpus, c)
	}
	for _, c := range cl.cpus {
		c := c
		// The delivered signal is a hardware interrupt on the home CPU;
		// its work item drains every wakeup queued while it was in
		// flight.
		c.ipi.Deliver = func() {
			c.stats.IPIsDelivered++
			c.k.PostHW(kernel.WorkItem{Cost: cl.cfg.IPICost, Fn: func() { cl.drainWakes(c) }})
		}
		c.k.Group = cl.g
	}
	cl.g.RemoteWake = cl.remoteWake
	cl.g.Steal = cl.steal
	cl.g.OnHalt = cl.onHalt
	return cl
}

// Kernels returns the member kernels in CPU order.
func (cl *Cluster) Kernels() []*kernel.Kernel {
	out := make([]*kernel.Kernel, len(cl.cpus))
	for i, c := range cl.cpus {
		out[i] = c.k
	}
	return out
}

// Stats returns a per-CPU snapshot of SMP counters, folding in the IPI
// line counts.
func (cl *Cluster) Stats() []CPUStats {
	out := make([]CPUStats, len(cl.cpus))
	for i, c := range cl.cpus {
		s := c.stats
		s.IPIsSent = c.ipi.Sent
		s.IPIsDelivered = c.ipi.Delivered
		out[i] = s
	}
	return out
}

// cpuOf resolves a kernel to its member entry (linear scan: clusters
// are small and sim-core code avoids map iteration).
func (cl *Cluster) cpuOf(k *kernel.Kernel) *cpu {
	for _, c := range cl.cpus {
		if c.k == k {
			return c
		}
	}
	panic(fmt.Sprintf("smp: kernel %q is not a cluster member", k.Name))
}

// remoteWake queues p for delivery on its home CPU and raises that
// CPU's IPI line. Called by the kernel's wakeup path after p has been
// detached from its wait queue.
//
//lrp:hotpath
func (cl *Cluster) remoteWake(p *kernel.Proc) {
	c := cl.cpuOf(p.K)
	c.pendingWakes = append(c.pendingWakes, p) //lrp:coldalloc grows to high-water, then recycles capacity
	c.stats.RemoteWakes++
	c.ipi.Send()
}

// drainWakes completes every pending remote wakeup on c, in arrival
// order. DeliverWakeup assigns fresh run-queue sequence numbers at
// delivery time, so IPI-delivered processes never reorder processes
// that became runnable on c before the interrupt landed.
func (cl *Cluster) drainWakes(c *cpu) {
	for i := 0; i < len(c.pendingWakes); i++ {
		p := c.pendingWakes[i]
		c.pendingWakes[i] = nil
		p.DeliverWakeup()
	}
	c.pendingWakes = c.pendingWakes[:0]
}

// steal runs when thief is about to go idle: scan the siblings in CPU
// order starting after the thief (deterministic round order) and
// migrate the first victim's best stealable process. The victim's
// next-to-run process is never taken, so a CPU with a single runnable
// process is left alone.
func (cl *Cluster) steal(thief *kernel.Kernel) *kernel.Proc {
	self := 0
	for i, c := range cl.cpus {
		if c.k == thief {
			self = i
			break
		}
	}
	n := len(cl.cpus)
	for off := 1; off < n; off++ {
		victim := cl.cpus[(self+off)%n]
		cand := victim.k.StealCandidate()
		if cand == nil {
			continue
		}
		if cand.MigrateTo(thief, cl.cfg.MigrateCost) {
			cl.cpus[self].stats.Steals++
			return cand
		}
	}
	return nil
}

// onHalt counts a CPU going idle with nothing to run.
func (cl *Cluster) onHalt(k *kernel.Kernel) {
	cl.cpuOf(k).stats.Halts++
}
