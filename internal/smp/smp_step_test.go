package smp_test

// Mixed-mode SMP coverage: work stealing, remote wakeups and IPIs must
// treat stackless processes exactly like goroutine-hosted ones. The same
// two-CPU world — compute-bound procs that get stolen, a remote sleeper
// woken across CPUs — runs in every hosting combination and must produce
// identical timings, accounting, migrations and steal counts.

import (
	"fmt"
	"strings"
	"testing"

	"lrp/internal/kernel"
	"lrp/internal/sim"
	"lrp/internal/smp"
)

func mixedWorld(coroWorkers, coroSleeper bool) string {
	eng := sim.NewEngine()
	k0 := kernel.New(eng, "cpu0")
	k1 := kernel.New(eng, "cpu1")
	defer k0.Shutdown()
	defer k1.Shutdown()
	cl := smp.New(eng, []*kernel.Kernel{k0, k1}, smp.Config{})

	spawn := func(k *kernel.Kernel, coro bool, name string, step kernel.StepFn) *kernel.Proc {
		if coro {
			return k.SpawnStepCoro(name, 0, step)
		}
		return k.SpawnStep(name, 0, step)
	}

	var wq kernel.WaitQ
	ends := map[string]sim.Time{}
	// Two compute-bound processes spawned on CPU 0: the idle CPU 1 steals
	// one. Worker a wakes the remote sleeper partway through.
	worker := func(name string, wake bool) kernel.StepFn {
		iter := 0
		return func(p *kernel.Proc) {
			for {
				if iter == 20 {
					ends[name] = p.Now()
					p.ReqExit()
					return
				}
				iter++
				if wake && iter == 10 {
					wq.WakeupAll()
				}
				if p.ReqCompute(1000) {
					return
				}
			}
		}
	}
	a := spawn(k0, coroWorkers, "worker-a", worker("a", true))
	b := spawn(k0, coroWorkers, "worker-b", worker("b", false))
	slpc := 0
	s := spawn(k1, coroSleeper, "sleeper", func(p *kernel.Proc) {
		for {
			switch slpc {
			case 0:
				slpc = 1
				p.ReqSleep(&wq)
				return
			case 1:
				slpc = 2
				if p.ReqCompute(500) {
					return
				}
			case 2:
				ends["s"] = p.Now()
				p.ReqExit()
				return
			}
		}
	})
	eng.RunFor(sim.Second)

	out := fmt.Sprintf("ends a=%d b=%d s=%d\n", ends["a"], ends["b"], ends["s"])
	for _, p := range []*kernel.Proc{a, b, s} {
		out += fmt.Sprintf("proc %s utime=%d stime=%d home=%s dead=%v\n",
			p.Name, p.UTime, p.STime, p.K.Name, p.Dead())
	}
	for i, st := range cl.Stats() {
		out += fmt.Sprintf("cpu%d steals=%d remotewakes=%d ipis=%d/%d halts=%d\n",
			i, st.Steals, st.RemoteWakes, st.IPIsSent, st.IPIsDelivered, st.Halts)
	}
	return out
}

// TestSMPMixedModeEquivalence checks every hosting combination against
// the all-stackless baseline, and that the baseline actually exercised
// the SMP machinery (a steal moved a worker, the remote wake landed).
func TestSMPMixedModeEquivalence(t *testing.T) {
	base := mixedWorld(false, false)
	for _, tc := range []struct{ workers, sleeper bool }{
		{true, true}, {true, false}, {false, true},
	} {
		if got := mixedWorld(tc.workers, tc.sleeper); got != base {
			t.Errorf("coroWorkers=%v coroSleeper=%v diverged:\n%s\nbaseline:\n%s",
				tc.workers, tc.sleeper, got, base)
		}
	}
	if !strings.Contains(base, "steals=1") {
		t.Errorf("baseline world did not steal a worker:\n%s", base)
	}
	if strings.Contains(base, " s=0\n") {
		t.Errorf("remote sleeper never finished:\n%s", base)
	}
}
