package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{Title: "test chart", XLabel: "x", YLabel: "y"}
	c.Add("up", []float64{0, 1, 2, 3}, []float64{0, 10, 20, 30})
	c.Add("down", []float64{0, 1, 2, 3}, []float64{30, 20, 10, 0})
	out := c.Render()
	for _, want := range []string{"test chart", "up", "down", "*", "o", "|", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 18 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if out := c.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("got %q", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := Chart{}
	c.Add("dot", []float64{5}, []float64{5})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (all same y) must not divide by zero.
	c := Chart{}
	c.Add("flat", []float64{0, 1, 2}, []float64{7, 7, 7})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not plotted:\n%s", out)
	}
}

func TestMarkersDistinct(t *testing.T) {
	c := Chart{Width: 40, Height: 10}
	c.Add("a", []float64{0, 1}, []float64{0, 10})
	c.Add("b", []float64{0, 1}, []float64{10, 0})
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers not distinct:\n%s", out)
	}
}

func TestYAxisAnchoredAtZero(t *testing.T) {
	c := Chart{Width: 30, Height: 5}
	c.Add("high", []float64{0, 1}, []float64{100, 110})
	out := c.Render()
	if !strings.Contains(out, "0 |") {
		t.Fatalf("y axis should include zero:\n%s", out)
	}
}
