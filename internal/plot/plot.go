// Package plot renders simple ASCII line charts in the terminal, so
// lrpbench can draw the paper's figures (throughput vs offered load,
// latency vs background rate, HTTP throughput vs SYN rate) next to their
// numeric tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// defaultMarkers cycle when a series does not set one.
var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart describes one plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	Series []Series
}

// Add appends a series built from x/y pairs.
func (c *Chart) Add(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// Render draws the chart into a string.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // y axis anchored at zero
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !any {
		return c.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plotXY := func(x, y float64, m byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(h-1)))
		if col < 0 || col >= w || row < 0 || row >= h {
			return
		}
		r := h - 1 - row
		if grid[r][col] == ' ' || grid[r][col] == m {
			grid[r][col] = m
		} else {
			grid[r][col] = '&' // overlapping series
		}
	}

	for si, s := range c.Series {
		m := s.Marker
		if m == 0 {
			m = defaultMarkers[si%len(defaultMarkers)]
		}
		// Linear interpolation between successive points for a line-ish look.
		for i := 0; i+1 < len(s.X); i++ {
			steps := w / max(1, len(s.X)-1)
			if steps < 2 {
				steps = 2
			}
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				plotXY(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, m)
			}
		}
		if len(s.X) == 1 {
			plotXY(s.X[0], s.Y[0], m)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLab := c.YLabel
	fmt.Fprintf(&b, "%s\n", yLab)
	for i, row := range grid {
		yVal := ymax - (ymax-ymin)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%10.0f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*.0f%*.0f\n", "", w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", center(c.XLabel, w))
	}
	// Legend.
	for si, s := range c.Series {
		m := s.Marker
		if m == 0 {
			m = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "%10s  %c %s\n", "", m, s.Name)
	}
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
