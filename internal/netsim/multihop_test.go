// Multi-hop forwarding regression tests (external package: these drive
// full core.Host gateways over the netsim fabric, which the internal
// netsim tests cannot import).
//
// A 3-hop chain — edge -> G1 -> G2 -> server — built from per-port
// next-hop routes must decrement TTL at every forwarding host and drop
// the packet mid-chain when the TTL budget runs out, for every kernel
// architecture that can forward.
package netsim_test

import (
	"testing"

	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

const mbps155 = 155_000_000

// chainWorld builds edge(raw) -> G1 -> G2 -> server(raw) with the
// gateways running arch. The raw endpoints let the test inject chosen
// TTLs and decode the TTL that survives the chain.
func chainWorld(t *testing.T, arch core.Arch) (*sim.Engine, *netsim.Network, *nic.NIC, *core.Host, *core.Host) {
	t.Helper()
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	edge := pkt.IP(10, 2, 0, 1)
	srv := pkt.IP(10, 2, 0, 2)
	ne := nic.New(eng, nic.Config{Name: "E", Mode: nic.ModeRaw})
	ns := nic.New(eng, nic.Config{Name: "S", Mode: nic.ModeRaw})
	nw.Attach(ne, edge, mbps155, 10)
	nw.Attach(ns, srv, mbps155, 10)
	g1 := core.NewHost(eng, nw, core.Config{Name: "G1", Addr: pkt.IP(10, 2, 0, 3), Arch: arch})
	g2 := core.NewHost(eng, nw, core.Config{Name: "G2", Addr: pkt.IP(10, 2, 0, 4), Arch: arch})
	g1.EnableForwarding(0)
	g2.EnableForwarding(0)
	for _, r := range [][3]pkt.Addr{
		{edge, srv, g1.Addr},
		{g1.Addr, srv, g2.Addr},
		// Reverse path, unused here but part of the chain contract.
		{srv, edge, g2.Addr},
		{g2.Addr, edge, g1.Addr},
	} {
		if err := nw.AddRouteFrom(r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	return eng, nw, ns, g1, g2
}

func forwardingArches() []core.Arch {
	return []core.Arch{core.ArchBSD, core.ArchEarlyDemux, core.ArchSoftLRP, core.ArchNILRP}
}

func TestChainTTLDecrementedPerHop(t *testing.T) {
	for _, arch := range forwardingArches() {
		t.Run(arch.String(), func(t *testing.T) {
			eng, nw, ns, g1, g2 := chainWorld(t, arch)
			defer g1.Shutdown()
			defer g2.Shutdown()
			edge := pkt.IP(10, 2, 0, 1)
			srv := pkt.IP(10, 2, 0, 2)
			b := pkt.UDPPacket(edge, srv, 99, 7, 1, 64, []byte("abc"), true)
			eng.At(100, func() { nw.InjectFrom(edge, b) })
			eng.RunFor(200 * sim.Millisecond)
			if ns.RxPending() != 1 {
				t.Fatalf("server received %d packets, want 1 (g1=%+v g2=%+v net=%+v)",
					ns.RxPending(), g1.ForwardStats(), g2.ForwardStats(), nw.Stats())
			}
			m := ns.RxDequeue()
			ih, _, err := pkt.DecodeIPv4(m.Data)
			if err != nil {
				t.Fatal(err)
			}
			if ih.TTL != 62 {
				t.Fatalf("TTL arrived as %d, want 62 (decremented once per forwarding hop)", ih.TTL)
			}
			if g1.ForwardStats().Forwarded != 1 || g2.ForwardStats().Forwarded != 1 {
				t.Fatalf("forward counters g1=%+v g2=%+v", g1.ForwardStats(), g2.ForwardStats())
			}
		})
	}
}

func TestChainTTLExpiryDropsMidChain(t *testing.T) {
	for _, arch := range forwardingArches() {
		t.Run(arch.String(), func(t *testing.T) {
			eng, nw, ns, g1, g2 := chainWorld(t, arch)
			defer g1.Shutdown()
			defer g2.Shutdown()
			edge := pkt.IP(10, 2, 0, 1)
			srv := pkt.IP(10, 2, 0, 2)
			// TTL 2: G1 forwards with TTL 1, G2 must drop instead of
			// forwarding a dead packet.
			b := pkt.UDPPacket(edge, srv, 99, 7, 1, 2, nil, true)
			eng.At(100, func() { nw.InjectFrom(edge, b) })
			eng.RunFor(200 * sim.Millisecond)
			if ns.RxPending() != 0 {
				t.Fatalf("server received %d packets, want 0", ns.RxPending())
			}
			if g1.ForwardStats().Forwarded != 1 {
				t.Fatalf("g1 should forward TTL 2 once: %+v", g1.ForwardStats())
			}
			if g2.ForwardStats().TTLDrops != 1 {
				t.Fatalf("g2 should TTL-drop: %+v", g2.ForwardStats())
			}
			// TTL 3 is exactly enough to cross both gateways.
			b3 := pkt.UDPPacket(edge, srv, 99, 7, 2, 3, nil, true)
			eng.At(eng.Now()+100, func() { nw.InjectFrom(edge, b3) })
			eng.RunFor(200 * sim.Millisecond)
			if ns.RxPending() != 1 {
				t.Fatalf("TTL 3 should survive the 3-hop chain, server got %d", ns.RxPending())
			}
			m := ns.RxDequeue()
			if ih, _, err := pkt.DecodeIPv4(m.Data); err != nil || ih.TTL != 1 {
				t.Fatalf("TTL 3 should arrive as 1, got %v (err %v)", ih.TTL, err)
			}
		})
	}
}
