package netsim

import (
	"testing"

	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

var addrC = pkt.IP(10, 0, 0, 3)

func threeHosts(t *testing.T) (*sim.Engine, *Network, *nic.NIC, *nic.NIC, *nic.NIC) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng)
	na := nic.New(eng, nic.Config{Name: "A", Mode: nic.ModeRaw})
	nb := nic.New(eng, nic.Config{Name: "B", Mode: nic.ModeRaw})
	nc := nic.New(eng, nic.Config{Name: "C", Mode: nic.ModeRaw})
	nw.Attach(na, addrA, mbps155, 10)
	nw.Attach(nb, addrB, mbps155, 10)
	nw.Attach(nc, addrC, mbps155, 10)
	return eng, nw, na, nb, nc
}

func TestPerPortRoutePrecedesDirectAttachment(t *testing.T) {
	// A per-port next-hop route must win over direct attachment: that is
	// what makes a multi-hop chain expressible on one switch fabric. A
	// sends to C, but A's port routes C-bound traffic via B.
	eng, nw, na, nb, nc := threeHosts(t)
	if err := nw.AddRouteFrom(addrA, addrC, addrB); err != nil {
		t.Fatal(err)
	}
	pool := mbuf.NewPool(0)
	p := pkt.UDPPacket(addrA, addrC, 1, 7, 1, 64, nil, true)
	eng.At(0, func() { na.Send(pool.Alloc(p)) })
	eng.Run()
	if nb.RxPending() != 1 || nc.RxPending() != 0 {
		t.Fatalf("B got %d, C got %d; want the next-hop (B) to receive", nb.RxPending(), nc.RxPending())
	}
}

func TestPerPortRouteOnlyAffectsThatPort(t *testing.T) {
	// B's traffic to C must still be delivered directly even though A
	// detours via B.
	eng, nw, _, nb, nc := threeHosts(t)
	if err := nw.AddRouteFrom(addrA, addrC, addrB); err != nil {
		t.Fatal(err)
	}
	pool := mbuf.NewPool(0)
	p := pkt.UDPPacket(addrB, addrC, 1, 7, 1, 64, nil, true)
	eng.At(0, func() { nb.Send(pool.Alloc(p)) })
	eng.Run()
	if nc.RxPending() != 1 {
		t.Fatalf("C got %d; direct delivery broken by another port's route", nc.RxPending())
	}
}

func TestInjectFromObservesPortRoutes(t *testing.T) {
	eng, nw, _, nb, nc := threeHosts(t)
	if err := nw.AddRouteFrom(addrA, addrC, addrB); err != nil {
		t.Fatal(err)
	}
	p := pkt.UDPPacket(addrA, addrC, 1, 7, 1, 64, nil, true)
	eng.At(0, func() { nw.InjectFrom(addrA, p) })
	eng.Run()
	if nb.RxPending() != 1 || nc.RxPending() != 0 {
		t.Fatalf("B got %d, C got %d; InjectFrom must follow A's routes", nb.RxPending(), nc.RxPending())
	}
	// Plain Inject has no source port and still delivers directly.
	eng.At(eng.Now()+1, func() { nw.Inject(p) })
	eng.Run()
	if nc.RxPending() != 1 {
		t.Fatalf("C got %d after plain Inject", nc.RxPending())
	}
}

func TestAddRouteFromRequiresAttachment(t *testing.T) {
	_, nw, _, _, _ := threeHosts(t)
	far := pkt.IP(99, 9, 9, 9)
	if err := nw.AddRouteFrom(far, addrC, addrB); err == nil {
		t.Fatal("route from unattached port accepted")
	}
	if err := nw.AddRouteFrom(addrA, addrC, far); err == nil {
		t.Fatal("route via unattached next hop accepted")
	}
}

func TestNextHopFromPrecedence(t *testing.T) {
	_, nw, _, _, _ := threeHosts(t)
	far := pkt.IP(172, 16, 0, 9)
	// Direct attachment wins when no per-port route exists.
	if hop, ok := nw.NextHopFrom(addrA, addrC); !ok || hop != addrC {
		t.Fatalf("direct: hop=%v ok=%v", hop, ok)
	}
	// Per-port route overrides it.
	if err := nw.AddRouteFrom(addrA, addrC, addrB); err != nil {
		t.Fatal(err)
	}
	if hop, ok := nw.NextHopFrom(addrA, addrC); !ok || hop != addrB {
		t.Fatalf("per-port: hop=%v ok=%v", hop, ok)
	}
	// Network-wide routes answer for everyone else.
	nw.AddRoute(far, addrB)
	if hop, ok := nw.NextHopFrom(addrC, far); !ok || hop != addrB {
		t.Fatalf("global: hop=%v ok=%v", hop, ok)
	}
	if _, ok := nw.NextHopFrom(addrC, pkt.IP(1, 2, 3, 4)); ok {
		t.Fatal("unroutable destination reported reachable")
	}
}
