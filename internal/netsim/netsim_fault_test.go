package netsim

import (
	"testing"

	"lrp/internal/fault"
	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// oneSink builds a network with a single raw-mode receiver at addrB with
// a deep ring, for fault-delivery tests.
func oneSink(t *testing.T) (*sim.Engine, *Network, *nic.NIC) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng)
	b := nic.New(eng, nic.Config{Name: "B", Mode: nic.ModeRaw, RxRingSize: 4096})
	nw.Attach(b, addrB, mbps155, 10)
	return eng, nw, b
}

func udpTo(dst pkt.Addr, payload []byte) []byte {
	return pkt.UDPPacket(addrA, dst, 1, 7, 1, 64, payload, true)
}

func TestSetFaultsDrop(t *testing.T) {
	eng, nw, b := oneSink(t)
	nw.SetFaults(fault.MustNew(fault.LossPlan(9, 1)))
	eng.At(0, func() { nw.Inject(udpTo(addrB, nil)) })
	eng.Run()
	if b.RxPending() != 0 || nw.Stats().Lost != 1 {
		t.Fatalf("total-loss pipeline: pending=%d stats=%+v", b.RxPending(), nw.Stats())
	}
	// Clearing the pipeline restores delivery.
	nw.SetFaults(nil)
	eng.At(eng.Now()+1, func() { nw.Inject(udpTo(addrB, nil)) })
	eng.Run()
	if b.RxPending() != 1 {
		t.Fatal("delivery not restored after clearing faults")
	}
}

func TestPortFaultsScopedToPort(t *testing.T) {
	// A per-port pipeline impairs only its own port's traffic.
	eng := sim.NewEngine()
	nw := New(eng)
	b := nic.New(eng, nic.Config{Name: "B", Mode: nic.ModeRaw})
	c := nic.New(eng, nic.Config{Name: "C", Mode: nic.ModeRaw})
	addrC := pkt.IP(10, 0, 0, 3)
	nw.Attach(b, addrB, mbps155, 10)
	nw.Attach(c, addrC, mbps155, 10)
	if err := nw.SetPortFaults(addrB, fault.MustNew(fault.LossPlan(9, 1))); err != nil {
		t.Fatal(err)
	}
	eng.At(0, func() {
		nw.Inject(udpTo(addrB, nil))
		nw.Inject(udpTo(addrC, nil))
	})
	eng.Run()
	if b.RxPending() != 0 || c.RxPending() != 1 {
		t.Fatalf("port scoping: b=%d c=%d, want 0/1", b.RxPending(), c.RxPending())
	}
	if err := nw.SetPortFaults(pkt.IP(99, 9, 9, 9), nil); err == nil {
		t.Fatal("SetPortFaults accepted an unattached address")
	}
}

func TestFaultReorderOvertakes(t *testing.T) {
	// Packet 1 is held back 500µs by a reorder segment that expires
	// before packet 2 is sent; packet 2 must arrive first.
	eng, nw, b := oneSink(t)
	nw.SetFaults(fault.MustNew(fault.Plan{Seed: 9, Segments: []fault.Segment{
		{Kind: fault.KindReorder, Rate: 1, DelayUs: 500, End: 100},
	}}))
	eng.At(0, func() { nw.Inject(udpTo(addrB, []byte("first"))) })
	eng.At(200, func() { nw.Inject(udpTo(addrB, []byte("later"))) })
	eng.Run()
	if b.RxPending() != 2 {
		t.Fatalf("delivered %d of 2", b.RxPending())
	}
	m1 := b.RxDequeue()
	m2 := b.RxDequeue()
	p1 := string(m1.Data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:])
	if p1 != "later" {
		t.Fatalf("head of ring is %q; held packet was not overtaken", p1)
	}
	if m2.Arrival <= m1.Arrival {
		t.Fatalf("arrivals not reordered: %d then %d", m1.Arrival, m2.Arrival)
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	eng, nw, b := oneSink(t)
	nw.SetFaults(fault.MustNew(fault.DuplicatePlan(9, 1, 40)))
	pool := mbuf.NewPool(4)
	eng.At(0, func() {
		nw.InjectMbuf(pool.AllocCopy(udpTo(addrB, []byte("twin"))))
	})
	eng.Run()
	if b.RxPending() != 2 {
		t.Fatalf("duplicate delivered %d copies, want 2", b.RxPending())
	}
	m1, m2 := b.RxDequeue(), b.RxDequeue()
	if gap := m2.Arrival - m1.Arrival; gap != 40 {
		t.Fatalf("copy gap %dµs, want 40", gap)
	}
	if s := pool.Stats(); s.InUse != 0 {
		t.Fatalf("duplication leaked a wire reference: %d in use", s.InUse)
	}
	if nw.Stats().Delivered != 2 {
		t.Fatalf("stats %+v, want Delivered=2", nw.Stats())
	}
}

func TestFaultCorruptFailsChecksumWithoutTouchingSource(t *testing.T) {
	eng, nw, b := oneSink(t)
	nw.SetFaults(fault.MustNew(fault.CorruptPlan(9, 1)))
	orig := udpTo(addrB, []byte("pristine"))
	saved := append([]byte(nil), orig...)
	eng.At(0, func() { nw.Inject(orig) })
	eng.Run()
	m := b.RxDequeue()
	if m == nil {
		t.Fatal("corrupted packet not delivered")
	}
	ih, hlen, err := pkt.DecodeIPv4(m.Data)
	if err != nil {
		t.Fatalf("IP header should still parse: %v", err)
	}
	if _, err := pkt.DecodeUDP(m.Data[hlen:], ih.Src, ih.Dst); err != pkt.ErrBadChecksum {
		t.Fatalf("want ErrBadChecksum after corruption, got %v", err)
	}
	for i := range orig {
		if orig[i] != saved[i] {
			t.Fatalf("source buffer mutated at byte %d", i)
		}
	}
	if nw.Stats().Corrupted != 1 {
		t.Fatalf("stats %+v, want Corrupted=1", nw.Stats())
	}
}

func TestFaultFlapWindowedOutage(t *testing.T) {
	// Link down over [0, 1000), up afterwards.
	eng, nw, b := oneSink(t)
	nw.SetFaults(fault.MustNew(fault.Plan{Seed: 9, Segments: []fault.Segment{
		{Kind: fault.KindFlap, DownUs: 1000, UpUs: 1000},
	}}))
	eng.At(500, func() { nw.Inject(udpTo(addrB, nil)) })  // outage
	eng.At(1500, func() { nw.Inject(udpTo(addrB, nil)) }) // link up
	eng.Run()
	if b.RxPending() != 1 || nw.Stats().Lost != 1 {
		t.Fatalf("flap: pending=%d stats=%+v, want 1 delivered 1 lost", b.RxPending(), nw.Stats())
	}
}

func TestFaultDeliveryDeterministic(t *testing.T) {
	// The same plan over the same traffic gives identical stats and
	// identical arrival times, run to run.
	run := func() (Stats, []sim.Time) {
		eng, nw, b := oneSink(t)
		nw.SetFaults(fault.MustNew(fault.Plan{Seed: 31, Segments: []fault.Segment{
			{Kind: fault.KindGilbertElliott, PGoodBad: 0.05, PBadGood: 0.2, BadLoss: 1},
			{Kind: fault.KindJitter, JitterUs: 200},
			{Kind: fault.KindDuplicate, Rate: 0.1, DelayUs: 30},
		}}))
		for i := 0; i < 200; i++ {
			at := sim.Time(i * 50)
			eng.At(at, func() { nw.Inject(udpTo(addrB, []byte("d"))) })
		}
		eng.Run()
		var arrivals []sim.Time
		for {
			m := b.RxDequeue()
			if m == nil {
				break
			}
			arrivals = append(arrivals, m.Arrival)
			m.Free()
		}
		return nw.Stats(), arrivals
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged:\n  %+v\n  %+v", s1, s2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("arrival counts diverged: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d diverged: %d vs %d", i, a1[i], a2[i])
		}
	}
}
