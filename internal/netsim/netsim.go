// Package netsim models the local-area network connecting simulated hosts:
// point-to-point attachment of NICs to a non-blocking switch with
// configurable link bandwidth and propagation delay, plus raw packet
// injectors for traffic generators (the equivalent of the paper's
// "in-kernel packet source on the sender").
package netsim

import (
	"fmt"

	"lrp/internal/fault"
	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// DefaultFrameOverhead approximates per-packet link-level overhead in
// bytes (ATM AAL5 trailer + cell headers, amortized).
const DefaultFrameOverhead = 24

// Stats counts network-level events.
type Stats struct {
	Delivered uint64 // packets handed to a destination NIC (duplicates included)
	NoRoute   uint64 // packets whose destination IP had no attached host
	Injected  uint64 // packets entered via Inject
	Lost      uint64 // packets dropped by injected loss (any fault pipeline drop)
	Corrupted uint64 // packets delivered with fault-injected payload corruption
}

// port is one host attachment.
type port struct {
	nic          *nic.NIC
	addr         pkt.Addr
	bwBytesPerUs float64 // link bandwidth
	propDelay    int64
	// rxFreeAt serializes delivery into the host: a 155 Mbit/s link can
	// only hand over so many packets per second.
	rxFreeAt sim.Time
	// txLane carries this port's wire-serialization completions (the NIC
	// transmits one packet at a time) and rxLane its fault-free inbound
	// deliveries (rxFreeAt makes delivery times non-decreasing): both are
	// FIFO by construction, so posting is a lane append, not a heap sift.
	// Fault-delayed and duplicated deliveries intentionally break FIFO
	// order and take the engine's wheel instead.
	txLane *sim.Lane
	rxLane *sim.Lane
	// rcDst/rcVia cache the last unicast routing decision for packets
	// leaving this attachment, so steady flows skip the per-packet map
	// lookups. Invalidated whenever the topology changes.
	rcDst pkt.Addr
	rcVia *port
	// faults, when non-nil, impairs traffic delivered to this port, on
	// top of the network-wide pipeline.
	faults *fault.Pipeline
	// routes are this port's next-hop entries: traffic transmitted (or
	// injected) from this attachment for a matching destination is handed
	// to the attached host at the entry's gateway address, even when the
	// destination is itself attached. This is what makes multi-hop
	// topologies expressible on one switch fabric: each segment of a
	// forwarding chain is a per-port route pointing at the next hop,
	// rather than a (single, global) destination route. Nil until the
	// first AddRouteFrom.
	routes map[pkt.Addr]pkt.Addr
}

// Network is the simulated LAN.
type Network struct {
	Eng *sim.Engine
	// FrameOverhead is added to every packet's size for serialization
	// timing.
	FrameOverhead int

	ports  map[pkt.Addr]*port
	order  []*port // attachment order, for deterministic multicast fanout
	routes map[pkt.Addr]pkt.Addr
	stats  Stats

	// faults, when non-nil, impairs every delivery on the network.
	faults *fault.Pipeline
	// scratch backs corrupted deliveries: the wire bytes are copied here
	// and flipped at delivery time, so shared mbuf storage (multicast
	// fanout, generator-recycled buffers) is never mutated. One buffer
	// suffices because the receiving NIC copies the packet synchronously
	// in Rx and events fire one at a time.
	scratch []byte
	// postBuf is the reusable argument block for duplicate deliveries'
	// PostBatch call (the engine does not retain the slice).
	postBuf [2]sim.Post
	// freeDeliv recycles delivery thunks: one closure per pooled object,
	// built at creation, instead of one per delivered packet.
	freeDeliv []*delivery
	// rcDst/rcVia cache the last routing decision for origin-less
	// (injected) traffic; injFrom/injPort the last injector attachment
	// lookup. Invalidated whenever the topology changes.
	rcDst   pkt.Addr
	rcVia   *port
	injFrom pkt.Addr
	injPort *port
}

// delivery is a pooled in-flight packet handoff: the receive-side firing
// thunk for one packet, recycled so the per-packet hot path does not
// allocate a closure per delivery. fn is bound to run once at creation.
type delivery struct {
	nw      *Network
	dst     *port
	b       []byte
	m       *mbuf.Mbuf
	corrupt bool
	fn      func()
}

// newDelivery takes a delivery from the free list (or builds one) and fills
// it for the packet at hand.
//
//lrp:hotpath
func (nw *Network) newDelivery(dst *port, b []byte, m *mbuf.Mbuf, corrupt bool) *delivery {
	var d *delivery
	if n := len(nw.freeDeliv); n > 0 {
		d = nw.freeDeliv[n-1]
		nw.freeDeliv = nw.freeDeliv[:n-1]
	} else {
		d = &delivery{nw: nw} //lrp:coldalloc free-list miss; steady state pops the list
		d.fn = d.run
	}
	d.dst, d.b, d.m, d.corrupt = dst, b, m, corrupt
	return d
}

// run completes the delivery: hand the wire bytes to the receiving NIC and
// release the wire reference. The delivery object is recycled first (into
// locals), because Rx can synchronously trigger further deliveries —
// forwarding, protocol replies — that must be free to reuse it.
//
//lrp:hotpath
func (d *delivery) run() {
	nw, dst, b, m := d.nw, d.dst, d.b, d.m
	corrupt := d.corrupt
	// Clear the packet references so the free list does not pin the last
	// delivery's wire bytes and mbuf until the slot is reused.
	d.dst, d.b, d.m = nil, nil, nil
	if corrupt {
		b = nw.corruptCopy(b)
	}
	nw.freeDeliv = append(nw.freeDeliv, d) //lrp:coldalloc free list grows to the in-flight high-water, then stabilizes
	dst.nic.Rx(b)
	m.EndTransfer()
}

// New creates an empty network.
func New(eng *sim.Engine) *Network {
	return &Network{
		Eng:           eng,
		FrameOverhead: DefaultFrameOverhead,
		ports:         make(map[pkt.Addr]*port),
		routes:        make(map[pkt.Addr]pkt.Addr),
	}
}

// Attach connects n to the network at addr with the given link bandwidth
// (bits per second) and one-way propagation delay (µs). It installs the
// NIC's Transmit hook.
func (nw *Network) Attach(n *nic.NIC, addr pkt.Addr, bandwidthBps int64, propDelay int64) {
	if _, dup := nw.ports[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate attachment for %v", addr))
	}
	p := &port{
		nic:          n,
		addr:         addr,
		bwBytesPerUs: float64(bandwidthBps) / 8 / 1e6,
		propDelay:    propDelay,
		txLane:       nw.Eng.NewLane(),
		rxLane:       nw.Eng.NewLane(),
	}
	nw.ports[addr] = p
	nw.order = append(nw.order, p)
	nw.routesChanged()
	n.Transmit = func(m *mbuf.Mbuf, done func()) {
		st := nw.serializationTime(p, m.Len())
		p.txLane.PostAfter(st, func() {
			done()
			nw.route(p, m.Data, m, p.propDelay)
		})
	}
}

// Stats returns a snapshot of network counters.
func (nw *Network) Stats() Stats { return nw.stats }

// serializationTime returns the wire time for a packet of size bytes on
// port p (µs, minimum 1).
func (nw *Network) serializationTime(p *port, size int) int64 {
	if p.bwBytesPerUs <= 0 {
		return 1
	}
	t := int64(float64(size+nw.FrameOverhead) / p.bwBytesPerUs)
	if t < 1 {
		t = 1
	}
	return t
}

// route looks up the destination IP and schedules delivery. from, when
// non-nil, is the attachment the packet left through: its per-port
// next-hop routes are consulted first and take precedence over direct
// attachment (a point-to-point uplink forwards everything to its
// gateway, even traffic for hosts that happen to share the fabric).
// m, when non-nil, is the in-transfer mbuf whose storage backs b; route
// owns one wire reference to it and releases it on every non-delivery
// path.
func (nw *Network) route(from *port, b []byte, m *mbuf.Mbuf, propDelay int64) {
	ih, _, err := pkt.DecodeIPv4(b)
	if err != nil {
		nw.stats.NoRoute++
		m.EndTransfer()
		return
	}
	if ih.Dst.IsMulticast() {
		// LAN multicast: every attached host except the sender receives a
		// copy (in deterministic attachment order). Each delivery consumes
		// one wire reference on the shared storage.
		first := true
		for _, p := range nw.order {
			if p.addr == ih.Src {
				continue
			}
			if !first && m != nil {
				m.AddRef()
			}
			first = false
			nw.deliverTo(p, b, m, propDelay)
		}
		if first {
			m.EndTransfer() // no receivers
		}
		return
	}
	rcDst, rcVia := &nw.rcDst, &nw.rcVia
	if from != nil {
		rcDst, rcVia = &from.rcDst, &from.rcVia
	}
	if hop := *rcVia; hop != nil && *rcDst == ih.Dst {
		nw.deliverTo(hop, b, m, propDelay)
		return
	}
	if from != nil && from.routes != nil {
		if via, ok := from.routes[ih.Dst]; ok {
			if hop, hok := nw.ports[via]; hok {
				*rcDst, *rcVia = ih.Dst, hop
				nw.deliverTo(hop, b, m, propDelay)
				return
			}
			nw.stats.NoRoute++
			m.EndTransfer()
			return
		}
	}
	dst, ok := nw.ports[ih.Dst]
	if !ok {
		if via, hasRoute := nw.routes[ih.Dst]; hasRoute {
			if gw, gok := nw.ports[via]; gok {
				*rcDst, *rcVia = ih.Dst, gw
				nw.deliverTo(gw, b, m, propDelay)
				return
			}
		}
		nw.stats.NoRoute++
		m.EndTransfer()
		return
	}
	*rcDst, *rcVia = ih.Dst, dst
	nw.deliverTo(dst, b, m, propDelay)
}

// deliverTo schedules delivery of b into one attached host, serialized at
// the receiver's link rate: back-to-back packets arrive no faster than
// the destination link can carry them. It consumes one wire reference on m:
// the receiving NIC copies the packet in Rx, after which the storage is
// released for recycling.
//
// Fault pipelines (network-wide, then per-port) are consulted once per
// delivery. A fault delay is added after link serialization and does not
// extend rxFreeAt: the held packet is "in flight" longer while the link
// stays free, so later packets genuinely overtake it (reordering).
func (nw *Network) deliverTo(dst *port, b []byte, m *mbuf.Mbuf, propDelay int64) {
	var v fault.Verdict
	if nw.faults != nil {
		v = nw.faults.Apply(nw.Eng.Now())
	}
	if dst.faults != nil {
		v.Merge(dst.faults.Apply(nw.Eng.Now()))
	}
	if v.Drop {
		nw.stats.Lost++
		m.EndTransfer()
		return
	}
	now := nw.Eng.Now()
	arrive := now + propDelay
	rxTime := nw.serializationTime(dst, len(b))
	if arrive < dst.rxFreeAt {
		arrive = dst.rxFreeAt
	}
	dst.rxFreeAt = arrive + rxTime
	deliver := arrive + rxTime + sim.Time(v.ExtraDelayUs)
	nw.stats.Delivered++
	corrupt := v.Corrupt
	if corrupt {
		nw.stats.Corrupted++
	}
	d := nw.newDelivery(dst, b, m, corrupt)
	if v.Duplicate {
		// The copy rides its own wire reference on the shared storage and
		// receives the same corruption treatment as the original. Both
		// deliveries re-enter the engine as one non-decreasing batch.
		if m != nil {
			m.AddRef()
		}
		nw.stats.Delivered++
		dup := nw.newDelivery(dst, b, m, corrupt)
		nw.postBuf[0] = sim.Post{At: deliver, Fn: d.fn}
		nw.postBuf[1] = sim.Post{At: deliver + sim.Time(v.DupDelayUs), Fn: dup.fn}
		nw.Eng.PostBatch(nw.postBuf[:])
		nw.postBuf[0].Fn, nw.postBuf[1].Fn = nil, nil
		return
	}
	if v.ExtraDelayUs != 0 {
		// A fault-delayed packet may be overtaken by later traffic: it
		// leaves the port's FIFO delivery order and takes the wheel.
		nw.Eng.At(deliver, d.fn)
		return
	}
	dst.rxLane.Post(deliver, d.fn)
}

// corruptCopy returns the wire bytes with a payload byte flipped, in the
// network's scratch buffer. The original storage is never touched: it
// may back other deliveries (multicast, duplicates) or belong to a
// generator that reuses it.
func (nw *Network) corruptCopy(b []byte) []byte {
	if cap(nw.scratch) < len(b) {
		nw.scratch = make([]byte, len(b)) //lrp:coldalloc grows to the largest corrupted packet, then stabilizes
	}
	s := nw.scratch[:len(b)]
	copy(s, b)
	pkt.CorruptInPlace(s)
	return s
}

// SetLoss makes the network drop each delivered packet with probability
// rate (failure injection for protocol testing). A nil rng seeds a
// deterministic default.
//
// It is a compatibility shim over the fault pipeline: rate > 0 installs
// a one-segment Bernoulli plan driven by the caller's generator (one
// Float64 draw per delivery, exactly as the pre-pipeline implementation
// drew), and rate <= 0 clears the network-wide pipeline.
func (nw *Network) SetLoss(rate float64, rng *sim.Rand) {
	if rate <= 0 {
		nw.faults = nil
		return
	}
	nw.faults = fault.NewBernoulli(rate, rng)
}

// SetFaults installs (or, with nil, clears) a network-wide fault
// pipeline applied to every delivery. The caller keeps the *fault.Pipeline
// handle for stats and tracing.
func (nw *Network) SetFaults(p *fault.Pipeline) { nw.faults = p }

// SetPortFaults installs (or, with nil, clears) a fault pipeline applied
// only to traffic delivered to the host attached at addr, composing with
// any network-wide pipeline.
func (nw *Network) SetPortFaults(addr pkt.Addr, p *fault.Pipeline) error {
	prt, ok := nw.ports[addr]
	if !ok {
		return fmt.Errorf("netsim: no attachment at %v", addr)
	}
	prt.faults = p
	return nil
}

// routesChanged invalidates every cached routing decision. Called whenever
// the topology gains an attachment or a route, so caches only ever serve
// decisions the current topology would repeat.
func (nw *Network) routesChanged() {
	nw.rcVia = nil
	nw.injPort = nil
	for _, p := range nw.order {
		p.rcVia = nil
	}
}

// AddRoute makes traffic for an unattached destination address travel via
// the attached gateway host at via (which must run IP forwarding for the
// traffic to go anywhere).
func (nw *Network) AddRoute(dst, via pkt.Addr) {
	nw.routes[dst] = via
	nw.routesChanged()
}

// AddRouteFrom installs a next-hop route on the attachment at from:
// traffic leaving that port for dst is delivered to the attached host at
// via (which must forward it onward). Per-port routes take precedence
// over direct attachment, so a chain A -> G1 -> G2 -> B is expressed as
// a route toward B on each upstream port even though B shares the
// fabric. Both from and via must already be attached.
func (nw *Network) AddRouteFrom(from, dst, via pkt.Addr) error {
	p, ok := nw.ports[from]
	if !ok {
		return fmt.Errorf("netsim: no attachment at %v to route from", from)
	}
	if _, ok := nw.ports[via]; !ok {
		return fmt.Errorf("netsim: next hop %v for %v is not attached", via, dst)
	}
	if p.routes == nil {
		p.routes = make(map[pkt.Addr]pkt.Addr)
	}
	p.routes[dst] = via
	nw.routesChanged()
	return nil
}

// NextHopFrom reports where a packet for dst leaving the attachment at
// from would be delivered: the per-port next hop, the direct attachment,
// or the network-wide gateway route, in that order of precedence. ok is
// false when the packet would be dropped with NoRoute. Topology builders
// use it to validate reachability without sending traffic.
func (nw *Network) NextHopFrom(from, dst pkt.Addr) (pkt.Addr, bool) {
	if p, ok := nw.ports[from]; ok && p.routes != nil {
		if via, ok := p.routes[dst]; ok {
			_, attached := nw.ports[via]
			return via, attached
		}
	}
	if _, ok := nw.ports[dst]; ok {
		return dst, true
	}
	if via, ok := nw.routes[dst]; ok {
		_, attached := nw.ports[via]
		return via, attached
	}
	return pkt.Addr{}, false
}

// Inject places a raw packet on the wire toward its IP destination, as if
// sent by an infinitely fast host. Traffic generators for overload
// experiments use this; it bypasses any sender-side kernel entirely (the
// paper used an in-kernel packet source for the same reason).
func (nw *Network) Inject(b []byte) {
	nw.stats.Injected++
	nw.route(nil, b, nil, 0)
}

// InjectMbuf injects a packet built in pool-owned mbuf storage. The mbuf's
// accounting is released immediately (the generator's pool slot frees at
// injection, like a sender NIC's does at transmit start) and its storage
// recycles to the generator's pool once the last receiver has taken a copy.
// Generators use this with a private pool to send without per-packet
// allocation.
func (nw *Network) InjectMbuf(m *mbuf.Mbuf) {
	m.BeginTransfer()
	nw.stats.Injected++
	nw.route(nil, m.Data, m, 0)
}

// InjectMbufFrom is InjectMbuf as if transmitted by the host attached at
// from: the packet observes that port's next-hop routes and propagation
// delay, so an aggregated generator co-located with an edge host sends
// into the topology the way the host itself would (minus sender-side
// kernel work and link serialization, like every injector).
//
//lrp:hotpath
func (nw *Network) InjectMbufFrom(from pkt.Addr, m *mbuf.Mbuf) {
	p := nw.injPort
	if p == nil || nw.injFrom != from {
		p = nw.ports[from]
		if p != nil {
			nw.injFrom, nw.injPort = from, p
		}
	}
	m.BeginTransfer()
	nw.stats.Injected++
	if p == nil {
		nw.route(nil, m.Data, m, 0)
		return
	}
	nw.route(p, m.Data, m, p.propDelay)
}

// InjectFrom is Inject observing the attachment at from, as InjectMbufFrom.
func (nw *Network) InjectFrom(from pkt.Addr, b []byte) {
	nw.stats.Injected++
	if p := nw.ports[from]; p != nil {
		nw.route(p, b, nil, p.propDelay)
		return
	}
	nw.route(nil, b, nil, 0)
}

// LookupNIC returns the NIC attached at addr, if any.
func (nw *Network) LookupNIC(addr pkt.Addr) (*nic.NIC, bool) {
	p, ok := nw.ports[addr]
	if !ok {
		return nil, false
	}
	return p.nic, true
}
