// Package netsim models the local-area network connecting simulated hosts:
// point-to-point attachment of NICs to a non-blocking switch with
// configurable link bandwidth and propagation delay, plus raw packet
// injectors for traffic generators (the equivalent of the paper's
// "in-kernel packet source on the sender").
package netsim

import (
	"fmt"

	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// DefaultFrameOverhead approximates per-packet link-level overhead in
// bytes (ATM AAL5 trailer + cell headers, amortized).
const DefaultFrameOverhead = 24

// Stats counts network-level events.
type Stats struct {
	Delivered uint64 // packets handed to a destination NIC
	NoRoute   uint64 // packets whose destination IP had no attached host
	Injected  uint64 // packets entered via Inject
	Lost      uint64 // packets dropped by injected loss
}

// port is one host attachment.
type port struct {
	nic          *nic.NIC
	addr         pkt.Addr
	bwBytesPerUs float64 // link bandwidth
	propDelay    int64
	// rxFreeAt serializes delivery into the host: a 155 Mbit/s link can
	// only hand over so many packets per second.
	rxFreeAt sim.Time
}

// Network is the simulated LAN.
type Network struct {
	Eng *sim.Engine
	// FrameOverhead is added to every packet's size for serialization
	// timing.
	FrameOverhead int

	ports  map[pkt.Addr]*port
	order  []*port // attachment order, for deterministic multicast fanout
	routes map[pkt.Addr]pkt.Addr
	stats  Stats

	lossRate float64
	lossRng  *sim.Rand
}

// New creates an empty network.
func New(eng *sim.Engine) *Network {
	return &Network{
		Eng:           eng,
		FrameOverhead: DefaultFrameOverhead,
		ports:         make(map[pkt.Addr]*port),
		routes:        make(map[pkt.Addr]pkt.Addr),
	}
}

// Attach connects n to the network at addr with the given link bandwidth
// (bits per second) and one-way propagation delay (µs). It installs the
// NIC's Transmit hook.
func (nw *Network) Attach(n *nic.NIC, addr pkt.Addr, bandwidthBps int64, propDelay int64) {
	if _, dup := nw.ports[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate attachment for %v", addr))
	}
	p := &port{
		nic:          n,
		addr:         addr,
		bwBytesPerUs: float64(bandwidthBps) / 8 / 1e6,
		propDelay:    propDelay,
	}
	nw.ports[addr] = p
	nw.order = append(nw.order, p)
	n.Transmit = func(m *mbuf.Mbuf, done func()) {
		st := nw.serializationTime(p, m.Len())
		nw.Eng.After(st, func() {
			done()
			nw.route(m.Data, m, p.propDelay)
		})
	}
}

// Stats returns a snapshot of network counters.
func (nw *Network) Stats() Stats { return nw.stats }

// serializationTime returns the wire time for a packet of size bytes on
// port p (µs, minimum 1).
func (nw *Network) serializationTime(p *port, size int) int64 {
	if p.bwBytesPerUs <= 0 {
		return 1
	}
	t := int64(float64(size+nw.FrameOverhead) / p.bwBytesPerUs)
	if t < 1 {
		t = 1
	}
	return t
}

// route looks up the destination IP and schedules delivery. m, when
// non-nil, is the in-transfer mbuf whose storage backs b; route owns one
// wire reference to it and releases it on every non-delivery path.
func (nw *Network) route(b []byte, m *mbuf.Mbuf, propDelay int64) {
	ih, _, err := pkt.DecodeIPv4(b)
	if err != nil {
		nw.stats.NoRoute++
		m.EndTransfer()
		return
	}
	if ih.Dst.IsMulticast() {
		// LAN multicast: every attached host except the sender receives a
		// copy (in deterministic attachment order). Each delivery consumes
		// one wire reference on the shared storage.
		first := true
		for _, p := range nw.order {
			if p.addr == ih.Src {
				continue
			}
			if !first && m != nil {
				m.AddRef()
			}
			first = false
			nw.deliverTo(p, b, m, propDelay)
		}
		if first {
			m.EndTransfer() // no receivers
		}
		return
	}
	dst, ok := nw.ports[ih.Dst]
	if !ok {
		if via, hasRoute := nw.routes[ih.Dst]; hasRoute {
			if gw, gok := nw.ports[via]; gok {
				nw.deliverTo(gw, b, m, propDelay)
				return
			}
		}
		nw.stats.NoRoute++
		m.EndTransfer()
		return
	}
	nw.deliverTo(dst, b, m, propDelay)
}

// deliverTo schedules delivery of b into one attached host, serialized at
// the receiver's link rate: back-to-back packets arrive no faster than
// the destination link can carry them. It consumes one wire reference on m:
// the receiving NIC copies the packet in Rx, after which the storage is
// released for recycling.
func (nw *Network) deliverTo(dst *port, b []byte, m *mbuf.Mbuf, propDelay int64) {
	if nw.lossRate > 0 && nw.lossRng.Float64() < nw.lossRate {
		nw.stats.Lost++
		m.EndTransfer()
		return
	}
	now := nw.Eng.Now()
	arrive := now + propDelay
	rxTime := nw.serializationTime(dst, len(b))
	if arrive < dst.rxFreeAt {
		arrive = dst.rxFreeAt
	}
	dst.rxFreeAt = arrive + rxTime
	nw.stats.Delivered++
	nw.Eng.At(arrive+rxTime, func() {
		dst.nic.Rx(b)
		m.EndTransfer()
	})
}

// SetLoss makes the network drop each delivered packet with probability
// rate (failure injection for protocol testing). A nil rng seeds a
// deterministic default.
func (nw *Network) SetLoss(rate float64, rng *sim.Rand) {
	if rng == nil {
		rng = sim.NewRand(0x105e)
	}
	nw.lossRate = rate
	nw.lossRng = rng
}

// AddRoute makes traffic for an unattached destination address travel via
// the attached gateway host at via (which must run IP forwarding for the
// traffic to go anywhere).
func (nw *Network) AddRoute(dst, via pkt.Addr) {
	nw.routes[dst] = via
}

// Inject places a raw packet on the wire toward its IP destination, as if
// sent by an infinitely fast host. Traffic generators for overload
// experiments use this; it bypasses any sender-side kernel entirely (the
// paper used an in-kernel packet source for the same reason).
func (nw *Network) Inject(b []byte) {
	nw.stats.Injected++
	nw.route(b, nil, 0)
}

// InjectMbuf injects a packet built in pool-owned mbuf storage. The mbuf's
// accounting is released immediately (the generator's pool slot frees at
// injection, like a sender NIC's does at transmit start) and its storage
// recycles to the generator's pool once the last receiver has taken a copy.
// Generators use this with a private pool to send without per-packet
// allocation.
func (nw *Network) InjectMbuf(m *mbuf.Mbuf) {
	m.BeginTransfer()
	nw.stats.Injected++
	nw.route(m.Data, m, 0)
}

// LookupNIC returns the NIC attached at addr, if any.
func (nw *Network) LookupNIC(addr pkt.Addr) (*nic.NIC, bool) {
	p, ok := nw.ports[addr]
	if !ok {
		return nil, false
	}
	return p.nic, true
}
