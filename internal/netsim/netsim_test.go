package netsim

import (
	"fmt"
	"testing"

	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

const mbps155 = 155_000_000

var (
	addrA = pkt.IP(10, 0, 0, 1)
	addrB = pkt.IP(10, 0, 0, 2)
)

func twoHosts(t *testing.T) (*sim.Engine, *Network, *nic.NIC, *nic.NIC) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng)
	na := nic.New(eng, nic.Config{Name: "A", Mode: nic.ModeRaw})
	nb := nic.New(eng, nic.Config{Name: "B", Mode: nic.ModeRaw})
	nw.Attach(na, addrA, mbps155, 10)
	nw.Attach(nb, addrB, mbps155, 10)
	return eng, nw, na, nb
}

func TestDelivery(t *testing.T) {
	eng, _, na, nb := twoHosts(t)
	pool := mbuf.NewPool(0)
	p := pkt.UDPPacket(addrA, addrB, 1, 7, 1, 64, []byte("hello"), true)
	eng.At(0, func() { na.Send(pool.Alloc(p)) })
	eng.Run()
	if nb.RxPending() != 1 {
		t.Fatalf("B received %d packets", nb.RxPending())
	}
	m := nb.RxDequeue()
	if string(m.Data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:]) != "hello" {
		t.Fatal("payload corrupted in transit")
	}
	// Latency: tx serialization + propagation + rx serialization >= 2x
	// wire time + 10µs.
	if m.Arrival < 10 {
		t.Fatalf("arrived at %d, faster than propagation delay", m.Arrival)
	}
}

func TestNoRouteCounted(t *testing.T) {
	eng, nw, na, _ := twoHosts(t)
	pool := mbuf.NewPool(0)
	p := pkt.UDPPacket(addrA, pkt.IP(99, 9, 9, 9), 1, 7, 1, 64, nil, true)
	eng.At(0, func() { na.Send(pool.Alloc(p)) })
	eng.Run()
	if nw.Stats().NoRoute != 1 {
		t.Fatalf("noroute = %d", nw.Stats().NoRoute)
	}
}

func TestInject(t *testing.T) {
	eng, nw, _, nb := twoHosts(t)
	p := pkt.UDPPacket(addrA, addrB, 1, 7, 1, 64, make([]byte, 14), true)
	eng.At(0, func() { nw.Inject(p) })
	eng.Run()
	if nb.RxPending() != 1 {
		t.Fatalf("B received %d", nb.RxPending())
	}
	if nw.Stats().Injected != 1 || nw.Stats().Delivered != 1 {
		t.Fatalf("stats %+v", nw.Stats())
	}
}

func TestReceiverLinkSerializationLimitsRate(t *testing.T) {
	// Injecting a large burst instantaneously must deliver packets paced
	// by the receiver's link bandwidth, not all at once.
	eng, nw, _, nb := twoHosts(t)
	nb.OnHostIntr = func() {}
	var arrivals []sim.Time
	done := make([]byte, 0)
	_ = done
	p := pkt.UDPPacket(addrA, addrB, 1, 7, 1, 64, make([]byte, 1458), false)
	const n = 10
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			nw.Inject(p)
		}
	})
	// Poll ring as packets land.
	var poll func()
	poll = func() {
		for {
			m := nb.RxDequeue()
			if m == nil {
				break
			}
			arrivals = append(arrivals, eng.Now())
			m.Free()
			nb.IntrDone()
		}
		if len(arrivals) < n {
			eng.After(1, poll)
		}
	}
	eng.At(0, poll)
	eng.RunFor(sim.Second)
	if len(arrivals) != n {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	// 1500+24 bytes at 155 Mbit/s is ~78µs per packet; the last packet
	// should land no earlier than (n-1) * ~70µs.
	if last := arrivals[len(arrivals)-1]; last < 9*70 {
		t.Fatalf("burst compressed: last arrival at %dµs", last)
	}
}

func TestThroughputMatchesBandwidth(t *testing.T) {
	// Saturating the sender with large UDP packets should deliver
	// approximately link bandwidth at the receiver.
	eng, _, na, nb := twoHosts(t)
	pool := mbuf.NewPool(0)
	payload := make([]byte, 8000)
	var rxBytes int
	// Feed the interface queue continuously.
	var feed func()
	feed = func() {
		for na.IfqLen() < 10 {
			na.Send(pool.Alloc(pkt.UDPPacket(addrA, addrB, 1, 7, 1, 64, payload, false)))
		}
		eng.After(100, feed)
	}
	var drain func()
	drain = func() {
		for {
			m := nb.RxDequeue()
			if m == nil {
				break
			}
			rxBytes += m.Len()
			m.Free()
		}
		nb.IntrDone()
		eng.After(100, drain)
	}
	eng.At(0, feed)
	eng.At(0, drain)
	eng.RunFor(sim.Second)
	gotMbps := float64(rxBytes) * 8 / 1e6
	if gotMbps < 120 || gotMbps > 156 {
		t.Fatalf("throughput %.1f Mbit/s, want ~150", gotMbps)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng)
	na := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	nw.Attach(na, addrA, mbps155, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	nw.Attach(na, addrA, mbps155, 10)
}

func TestMulticastFanoutDelivery(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng)
	a := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	b := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	c := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	nw.Attach(a, addrA, mbps155, 10)
	nw.Attach(b, addrB, mbps155, 10)
	nw.Attach(c, pkt.IP(10, 0, 0, 3), mbps155, 10)
	group := pkt.IP(224, 0, 0, 9)
	p := pkt.UDPPacket(addrA, group, 1, 5353, 1, 64, []byte("m"), true)
	pool := mbuf.NewPool(0)
	eng.At(0, func() { a.Send(pool.Alloc(p)) })
	eng.Run()
	// Sender excluded; both others get a copy.
	if a.RxPending() != 0 {
		t.Fatal("sender received its own multicast")
	}
	if b.RxPending() != 1 || c.RxPending() != 1 {
		t.Fatalf("fanout: b=%d c=%d", b.RxPending(), c.RxPending())
	}
}

func TestRouteViaGateway(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng)
	gw := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	nw.Attach(gw, addrB, mbps155, 10)
	far := pkt.IP(172, 16, 0, 9)
	nw.AddRoute(far, addrB)
	eng.At(0, func() {
		nw.Inject(pkt.UDPPacket(addrA, far, 1, 7, 1, 64, nil, true))
	})
	eng.Run()
	if gw.RxPending() != 1 {
		t.Fatalf("gateway received %d packets for the routed prefix", gw.RxPending())
	}
	if nw.Stats().NoRoute != 0 {
		t.Fatal("routed packet counted as NoRoute")
	}
	// Unrouted foreign destination still counts NoRoute.
	eng.At(eng.Now()+1, func() {
		nw.Inject(pkt.UDPPacket(addrA, pkt.IP(172, 16, 0, 10), 1, 7, 1, 64, nil, true))
	})
	eng.Run()
	if nw.Stats().NoRoute != 1 {
		t.Fatalf("noroute = %d", nw.Stats().NoRoute)
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng)
	b := nic.New(eng, nic.Config{Mode: nic.ModeRaw, RxRingSize: 4096})
	nw.Attach(b, addrB, mbps155, 10)
	nw.SetLoss(0.5, sim.NewRand(77))
	p := pkt.UDPPacket(addrA, addrB, 1, 7, 1, 64, nil, true)
	eng.At(0, func() {
		for i := 0; i < 1000; i++ {
			nw.Inject(p)
		}
	})
	eng.Run()
	got := b.RxPending()
	lost := int(nw.Stats().Lost)
	if got+lost != 1000 {
		t.Fatalf("got %d + lost %d != 1000", got, lost)
	}
	if lost < 400 || lost > 600 {
		t.Fatalf("lost %d of 1000 at 50%% loss", lost)
	}
	// Disabling loss restores full delivery.
	nw.SetLoss(0, nil)
	eng.At(eng.Now()+1, func() { nw.Inject(p) })
	eng.Run()
	if int(nw.Stats().Lost) != lost {
		t.Fatal("loss still active after disable")
	}
}

func TestMalformedInjectNoRoute(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng)
	eng.At(0, func() { nw.Inject([]byte{1, 2, 3}) })
	eng.Run()
	if nw.Stats().NoRoute != 1 {
		t.Fatalf("malformed packet not counted: %+v", nw.Stats())
	}
}

func TestRouteViaDetachedGatewayNoRoute(t *testing.T) {
	// A route whose gateway host is not attached must fall through to
	// NoRoute accounting, not panic or deliver.
	eng := sim.NewEngine()
	nw := New(eng)
	far := pkt.IP(172, 16, 0, 9)
	nw.AddRoute(far, addrB) // addrB never attached
	eng.At(0, func() {
		nw.Inject(pkt.UDPPacket(addrA, far, 1, 7, 1, 64, nil, true))
	})
	eng.Run()
	if s := nw.Stats(); s.NoRoute != 1 || s.Delivered != 0 {
		t.Fatalf("detached gateway: stats %+v, want NoRoute=1 Delivered=0", s)
	}
}

func TestRouteViaGatewayReleasesMbuf(t *testing.T) {
	// The gateway delivery path must consume the wire reference exactly
	// once: after delivery the sender pool drains back to zero.
	eng := sim.NewEngine()
	nw := New(eng)
	gw := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	nw.Attach(gw, addrB, mbps155, 10)
	far := pkt.IP(172, 16, 0, 9)
	nw.AddRoute(far, addrB)
	pool := mbuf.NewPool(8)
	eng.At(0, func() {
		m := pool.AllocCopy(pkt.UDPPacket(addrA, far, 1, 7, 1, 64, nil, true))
		nw.InjectMbuf(m)
	})
	eng.Run()
	if gw.RxPending() != 1 {
		t.Fatalf("gateway received %d", gw.RxPending())
	}
	if s := pool.Stats(); s.InUse != 0 {
		t.Fatalf("routed mbuf leaked: %d still in use", s.InUse)
	}
}

func TestMulticastFanoutOrderDeterministic(t *testing.T) {
	// Multicast copies must reach receivers in attachment order — the
	// fanout iterates nw.order, never the ports map. Observed via the
	// host-interrupt hook, which fires synchronously inside Rx.
	for run := 0; run < 3; run++ {
		eng := sim.NewEngine()
		nw := New(eng)
		var firing []string
		hook := func(name string) func() {
			return func() { firing = append(firing, name) }
		}
		addrs := []pkt.Addr{pkt.IP(10, 0, 0, 3), addrB, pkt.IP(10, 0, 0, 4)}
		names := []string{"c", "b", "d"}
		for i, a := range addrs {
			n := nic.New(eng, nic.Config{Name: names[i], Mode: nic.ModeRaw})
			n.OnHostIntr = hook(names[i])
			nw.Attach(n, a, mbps155, 10)
		}
		p := pkt.UDPPacket(addrA, pkt.IP(224, 0, 0, 9), 1, 5353, 1, 64, []byte("m"), true)
		eng.At(0, func() { nw.Inject(p) })
		eng.Run()
		if got := fmt.Sprint(firing); got != "[c b d]" {
			t.Fatalf("run %d: fanout order %v, want attachment order [c b d]", run, firing)
		}
	}
}

func TestMulticastNoReceiversReleasesStorage(t *testing.T) {
	// A multicast from the only attached host has no receivers: the wire
	// reference must still be released so the pool drains.
	eng := sim.NewEngine()
	nw := New(eng)
	a := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	nw.Attach(a, addrA, mbps155, 10)
	pool := mbuf.NewPool(4)
	eng.At(0, func() {
		m := pool.AllocCopy(pkt.UDPPacket(addrA, pkt.IP(224, 0, 0, 9), 1, 5353, 1, 64, nil, true))
		nw.InjectMbuf(m)
	})
	eng.Run()
	if s := nw.Stats(); s.Delivered != 0 {
		t.Fatalf("delivered %d copies with no receivers", s.Delivered)
	}
	if s := pool.Stats(); s.InUse != 0 {
		t.Fatalf("no-receiver multicast leaked: %d in use", s.InUse)
	}
}

func TestMulticastFanoutReleasesAllReferences(t *testing.T) {
	// Fanout to two receivers takes an extra wire reference; both must be
	// consumed at delivery so the generator pool drains.
	eng := sim.NewEngine()
	nw := New(eng)
	a := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	b := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	c := nic.New(eng, nic.Config{Mode: nic.ModeRaw})
	nw.Attach(a, addrA, mbps155, 10)
	nw.Attach(b, addrB, mbps155, 10)
	nw.Attach(c, pkt.IP(10, 0, 0, 3), mbps155, 10)
	pool := mbuf.NewPool(4)
	eng.At(0, func() {
		m := pool.AllocCopy(pkt.UDPPacket(addrA, pkt.IP(224, 0, 0, 9), 1, 5353, 1, 64, []byte("m"), true))
		nw.InjectMbuf(m)
	})
	eng.Run()
	if b.RxPending() != 1 || c.RxPending() != 1 {
		t.Fatalf("fanout: b=%d c=%d", b.RxPending(), c.RxPending())
	}
	if s := pool.Stats(); s.InUse != 0 {
		t.Fatalf("fanout leaked: %d in use", s.InUse)
	}
}
