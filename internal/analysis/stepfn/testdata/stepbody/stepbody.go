// Package stepbody poses as "lrp/internal/app" in the stepfn analyzer's
// tests, exercising the stackless contract against the real kernel types:
// blocking Proc calls are flagged in every StepFn position (argument,
// factory return, variable), Req* setters and goroutine-mode bodies pass,
// and nested engine-context closures are left alone.
package stepbody

import "lrp/internal/kernel"

// argPosition: a literal passed to a StepFn parameter is a step body.
func argPosition(k *kernel.Kernel, wq *kernel.WaitQ) {
	k.SpawnStep("bad", 0, func(p *kernel.Proc) {
		p.Compute(10) // want `step body calls the blocking Proc\.Compute`
		p.Sleep(wq)   // want `step body calls the blocking Proc\.Sleep`
	})
	k.SpawnStep("good", 0, func(p *kernel.Proc) {
		if p.ReqCompute(10) { // request setters are the stackless idiom
			return
		}
		p.ReqSleep(wq)
	})
}

// coroPosition: SpawnStepCoro hosts the same machine on a goroutine, but
// the body remains a StepFn and must still not block.
func coroPosition(k *kernel.Kernel) {
	k.SpawnStepCoro("bad-coro", 0, func(p *kernel.Proc) {
		p.Delay(5) // want `step body calls the blocking Proc\.Delay`
		p.ReqExit()
	})
}

// factory: a literal returned from a StepFn-typed result is a step body.
func factory(d int64) kernel.StepFn {
	return func(p *kernel.Proc) {
		p.ComputeSys(d) // want `step body calls the blocking Proc\.ComputeSys`
		p.Exit()        // want `step body calls the blocking Proc\.Exit`
	}
}

// assigned: a literal assigned to a StepFn variable is a step body.
func assigned() kernel.StepFn {
	var step kernel.StepFn
	step = func(p *kernel.Proc) {
		p.Block() // want `step body calls Proc\.Block`
	}
	return step
}

// waived carries the goroutine-mode waiver: blocking calls are the
// convention there, so nothing is reported.
func waived(k *kernel.Kernel) {
	k.SpawnStepCoro("waived", 0, func(p *kernel.Proc) { //lrp:coroutine
		p.Compute(10)
		p.Exit()
	})
}

// nested: closures inside a step body run in engine context (timers,
// wakeup hooks) under different rules; the analyzer does not descend.
func nested(k *kernel.Kernel, defer2 func(func())) {
	k.SpawnStep("nested", 0, func(p *kernel.Proc) {
		defer2(func() {
			p.Compute(10) // engine-context closure: out of scope
		})
		p.ReqExit()
	})
}

// plainFunc is not in StepFn position: the blocking wrapper idiom
// (`for !step { p.Block() }`) lives in functions like this one.
func plainFunc(p *kernel.Proc, wq *kernel.WaitQ) {
	p.Sleep(wq)
	p.Block()
}
