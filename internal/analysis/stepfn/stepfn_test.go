package stepfn_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/stepfn"
)

// TestStacklessContract drives the stepfn checks over testdata posing as
// an app package: blocking Proc calls are flagged in argument, factory
// and assignment StepFn positions; Req* setters, //lrp:coroutine bodies,
// nested engine-context closures and plain blocking wrappers pass.
func TestStacklessContract(t *testing.T) {
	analysistest.Run(t, stepfn.Analyzer, "testdata/stepbody", "lrp/internal/app")
}
