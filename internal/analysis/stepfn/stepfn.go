// Package stepfn enforces the stackless-process contract on kernel.StepFn
// bodies (DESIGN.md §11): a step body runs inline on the scheduler's
// goroutine, so it must never call the blocking Proc methods (Compute,
// Sleep, Delay, Exit, Block, ...). Where a goroutine body blocks, a step
// body stores the same typed request via the matching Req* setter and
// returns; calling the blocking variant instead would panic at the first
// yield — this analyzer moves that discovery to lint time.
//
// A "step body" is a function literal in StepFn position: passed to a
// parameter of type kernel.StepFn (SpawnStep, SpawnStepCoro and their
// wrappers), returned from a function whose result type is kernel.StepFn
// (the step-factory idiom), or assigned to a StepFn variable or field.
// Nested function literals inside a step body (timer callbacks and the
// like) run in engine context under different rules and are not scanned.
//
// A literal whose opening line carries `//lrp:coroutine` is waived: it
// marks a body written for goroutine hosting only (SpawnStepCoro), where
// blocking calls are legal.
package stepfn

import (
	"go/ast"
	"go/types"

	"lrp/internal/analysis/framework"
)

// Analyzer is the stackless-contract check.
var Analyzer = &framework.Analyzer{
	Name: "stepfn",
	Doc:  "check that StepFn bodies issue requests via Req* setters instead of calling blocking Proc methods",
	Run:  run,
}

const kernelPkg = "lrp/internal/kernel"

// blocking maps each blocking Proc method to the request setter a step
// body must use instead.
var blocking = map[string]string{
	"Compute":       "ReqCompute",
	"ComputeSys":    "ReqComputeSys",
	"ComputeSysFor": "ReqComputeSysFor",
	"Sleep":         "ReqSleep",
	"SleepTimeout":  "ReqSleepTimeout",
	"Delay":         "ReqDelay",
	"Exit":          "ReqExit",
}

func run(pass *framework.Pass) error {
	// The kernel owns the abstraction: SpawnStepCoro's driver loop and the
	// request plumbing legitimately mix both calling conventions.
	if pass.PkgPath == kernelPkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, lit := range StepLiterals(pass, f) {
			checkBody(pass, lit)
		}
	}
	return nil
}

// StepLiterals collects every function literal in StepFn position in f —
// passed to a StepFn parameter, returned from a StepFn result slot, or
// assigned to a StepFn variable or field. Shared with the stepreq
// analyzer, which verifies the request protocol of the same bodies.
func StepLiterals(pass *framework.Pass, f *ast.File) []*ast.FuncLit {
	var out []*ast.FuncLit
	seen := map[*ast.FuncLit]bool{}
	add := func(e ast.Expr) {
		if lit, ok := e.(*ast.FuncLit); ok && !seen[lit] {
			seen[lit] = true
			out = append(out, lit)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sig := calleeSignature(pass, n)
			if sig == nil {
				return true
			}
			for i, arg := range n.Args {
				if isStepFn(paramType(sig, i)) {
					add(arg)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && isStepFn(pass.TypesInfo.TypeOf(lhs)) {
					add(n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && isStepFn(obj.Type()) && i < len(n.Values) {
					add(n.Values[i])
				}
			}
		case *ast.KeyValueExpr:
			if isStepFn(pass.TypesInfo.TypeOf(n.Value)) {
				// Composite-literal fields carry the field's type only when
				// the literal converts; fall back on the key's object type.
				add(n.Value)
			}
			if id, ok := n.Key.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && isStepFn(obj.Type()) {
					add(n.Value)
				}
			}
		case *ast.FuncDecl:
			collectReturns(pass, declSignature(pass, n), n.Body, add)
		case *ast.FuncLit:
			collectReturns(pass, litSignature(pass, n), n.Body, add)
		}
		return true
	})
	return out
}

// collectReturns marks function literals returned in a StepFn result slot
// of the enclosing function, without descending into nested literals
// (those have their own signatures and their own Inspect visit).
func collectReturns(pass *framework.Pass, sig *types.Signature, body *ast.BlockStmt, add func(ast.Expr)) {
	if sig == nil || body == nil {
		return
	}
	idx := stepResultIndexes(sig)
	if len(idx) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, i := range idx {
				if i < len(n.Results) {
					add(n.Results[i])
				}
			}
		}
		return true
	})
}

// checkBody flags blocking Proc calls inside one step body.
func checkBody(pass *framework.Pass, lit *ast.FuncLit) {
	if pass.LineDirective(lit.Pos(), "lrp:coroutine") {
		return // declared goroutine-mode: blocking is the convention
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested closures run in engine context
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := pass.TypesInfo.TypeOf(sel.X)
		if !IsProc(recv) {
			return true
		}
		name := sel.Sel.Name
		if req, bad := blocking[name]; bad {
			pass.Reportf(call.Pos(), "step body calls the blocking Proc.%s: a stackless body must store the request with %s and return (//lrp:coroutine waives goroutine-mode bodies)", name, req)
		} else if name == "Block" {
			pass.Reportf(call.Pos(), "step body calls Proc.Block: a step returns to the scheduler instead of blocking (//lrp:coroutine waives goroutine-mode bodies)")
		}
		return true
	})
}

// calleeSignature resolves the signature of a call's callee, nil for type
// conversions and non-function callees.
func calleeSignature(pass *framework.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func declSignature(pass *framework.Pass, d *ast.FuncDecl) *types.Signature {
	obj := pass.TypesInfo.Defs[d.Name]
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

func litSignature(pass *framework.Pass, l *ast.FuncLit) *types.Signature {
	tv, ok := pass.TypesInfo.Types[l]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// paramType returns the type of parameter i, folding variadic tails.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if i >= n {
		if !sig.Variadic() {
			return nil
		}
		i = n - 1
	}
	t := sig.Params().At(i).Type()
	if sig.Variadic() && i == n-1 {
		if sl, ok := t.(*types.Slice); ok {
			return sl.Elem()
		}
	}
	return t
}

// stepResultIndexes lists the result slots of type kernel.StepFn.
func stepResultIndexes(sig *types.Signature) []int {
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isStepFn(sig.Results().At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// isStepFn reports whether t is the named type lrp/internal/kernel.StepFn.
func isStepFn(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "StepFn" && obj.Pkg() != nil && obj.Pkg().Path() == kernelPkg
}

// IsProc reports whether t is kernel.Proc or a pointer to it.
func IsProc(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && obj.Pkg().Path() == kernelPkg
}
