// Package stepreq verifies the request protocol of the stackless-process
// machinery (DESIGN.md §11) by abstract interpretation of step bodies and
// step helper machines. The stepfn analyzer checks the calling convention
// (Req* setters instead of blocking methods); this analyzer checks the
// protocol itself, the part the runtime can only catch as a panic on a
// path actually executed:
//
//   - a kernel.StepFn body must store exactly one request via a Req*
//     setter before returning (kernel.stepStackless panics otherwise), on
//     every path;
//   - a step helper machine (`func(p *kernel.Proc, ..., fr *Op) bool`)
//     must have a request pending on every `return false` (yield) path
//     and no request pending on any `return true` (completion) path;
//   - arming a second request before returning overwrites the first —
//     the scheduler applies only the last one, so the first is lost;
//   - the result of a conditional setter (ReqCompute, ReqComputeSys,
//     ReqComputeSysFor, ReqDelay — no-ops when the cost is zero) and of a
//     step helper must not be discarded: the caller cannot otherwise know
//     whether to yield or continue;
//   - a completed helper frame must be Reset (or overwritten with a fresh
//     composite literal) before being stepped again — a completed frame's
//     pc still points at its final state;
//   - an mbuf acquired into a local must not still be held at a yield:
//     locals die across dispatches, so the reference must be transferred
//     (stored into the frame or a queue), freed, or be nil by then.
//
// The analysis is path-sensitive where the step idiom demands it. A body
// of the shape `for { switch pc { case ...: } }` is interpreted as a
// state machine: each arm gets its own abstract entry state, entry to an
// arm refines the tracked pc cell to that arm's case values, and the
// dispatch loop runs to a fixpoint. Between statements the interpreter
// carries a bounded *set* of abstract states rather than one join — so
// `if ok { fr.Reset(); pc = send }` keeps (pc=send, frame reset) and
// (pc=recv, frame done) apart until dispatch routes each to its arm,
// which a plain joined dataflow cannot do. Calls to function literals
// bound to local variables (retry closures and the like) are interpreted
// inline, splitting on their boolean result, so captured pc updates and
// Req* calls inside them are seen. All domains are may-sets over finite
// lattices; a report fires when a violating state is reachable on some
// path the analysis can follow.
//
// Soundness boundary (DESIGN.md §12): calls through function values other
// than single-assignment locals, and the stdlib, are not interpreted;
// bool results stored into variables before being tested are not tracked;
// cross-dispatch frame state is invisible (each dispatch starts with
// unknown frames). The analyzer errs toward silence on what it cannot
// see.
package stepreq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"lrp/internal/analysis/framework"
	"lrp/internal/analysis/stepfn"
)

// Analyzer is the step-request protocol check.
var Analyzer = &framework.Analyzer{
	Name: "stepreq",
	Doc:  "verify StepFn/step-helper request arming: a request on every yield path, none on completion paths, Reset before frame reuse, no mbuf held across a yield",
	Run:  run,
}

const (
	kernelPkg = "lrp/internal/kernel"
	mbufPkg   = "lrp/internal/mbuf"
)

// Conditional setters return false (arming nothing) on a zero-cost
// request; the always setters arm unconditionally. costArg names the
// duration argument, so a provably positive constant cost upgrades a
// conditional setter to an unconditional one.
var condReq = map[string]int{ // name -> cost argument index
	"ReqCompute": 0, "ReqComputeSys": 0, "ReqComputeSysFor": 1,
	"ReqDelay": 0,
}
var alwaysReq = map[string]bool{
	"ReqSleep": true, "ReqSleepTimeout": true, "ReqExit": true,
}

func run(pass *framework.Pass) error {
	// The kernel owns the abstraction: its drivers and setters mix the
	// conventions legitimately.
	if pass.PkgPath == kernelPkg {
		return nil
	}
	helpers := helperFuncs(pass.Prog)
	for _, f := range pass.Files {
		lits := litLocals(pass.TypesInfo, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || !helpers[fn] {
				continue
			}
			an := &analyzer{pass: pass, helpers: helpers, lits: lits, helper: true}
			an.analyze(fd.Body)
		}
		for _, lit := range stepfn.StepLiterals(pass, f) {
			if pass.LineDirective(lit.Pos(), "lrp:coroutine") {
				continue // goroutine-mode body: Block-driven, different rules
			}
			an := &analyzer{pass: pass, helpers: helpers, lits: lits, helper: false}
			an.analyze(lit.Body)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Whole-program classification (shared across passes via the Program).

var helperCache = map[*framework.Program]map[*types.Func]bool{}

// helperFuncs classifies the program's step helper machines: non-kernel
// functions with at least one *kernel.Proc parameter and exactly one bool
// result that (transitively) arm a request. The transitive closure runs
// over the program call graph, so a machine that delegates all its
// arming to sub-machines still qualifies.
func helperFuncs(prog *framework.Program) map[*types.Func]bool {
	if h, ok := helperCache[prog]; ok {
		return h
	}
	g := prog.CallGraph()
	// Direct armers: any function whose body calls a Req* setter on a
	// Proc.
	arms := map[*types.Func]bool{}
	for _, fi := range g.Funcs() {
		info := fi.Pkg.TypesInfo
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if _, cond := condReq[name]; (cond || alwaysReq[name]) && stepfn.IsProc(info.TypeOf(sel.X)) {
				arms[fi.Fn] = true
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs() {
			if arms[fi.Fn] {
				continue
			}
			for _, e := range g.Callees(fi.Fn) {
				if arms[e.Callee] {
					arms[fi.Fn] = true
					changed = true
					break
				}
			}
		}
	}
	h := map[*types.Func]bool{}
	for _, fi := range g.Funcs() {
		if !arms[fi.Fn] || fi.Pkg.Path == kernelPkg {
			continue
		}
		sig := fi.Fn.Type().(*types.Signature)
		if sig.Results().Len() != 1 || !isBool(sig.Results().At(0).Type()) {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if stepfn.IsProc(sig.Params().At(i).Type()) {
				h[fi.Fn] = true
				break
			}
		}
	}
	helperCache[prog] = h
	return h
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// litLocals maps single-assignment local variables to the function
// literal they hold, for inline interpretation of calls through them
// (the `fail := func(p *kernel.Proc) bool {...}` retry-closure idiom).
// A variable written more than once is dropped: the binding would be
// ambiguous.
func litLocals(info *types.Info, f *ast.File) map[*types.Var]*ast.FuncLit {
	out := map[*types.Var]*ast.FuncLit{}
	writes := map[*types.Var]int{}
	bind := func(name *ast.Ident, val ast.Expr) {
		v, ok := info.ObjectOf(name).(*types.Var)
		if !ok {
			return
		}
		writes[v]++
		if lit, ok := ast.Unparen(val).(*ast.FuncLit); ok {
			out[v] = lit
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if i < len(n.Rhs) {
					bind(id, n.Rhs[i])
				} else if v, ok := info.ObjectOf(id).(*types.Var); ok {
					writes[v]++
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					bind(name, n.Values[i])
				}
			}
		}
		return true
	})
	for v, n := range writes {
		if n > 1 {
			delete(out, v)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Abstract domain.

// memKey names a tracked storage cell: a variable, or a depth-1 field of
// one (`pc` is {pcVar,""}; `fr.lazy` is {frVar,"lazy"}).
type memKey struct {
	v     *types.Var
	field string
}

// valSet is a may-set of integer constants, with an explicit top.
type valSet struct {
	top  bool
	vals map[int64]bool
}

const valCap = 32

func topVals() valSet { return valSet{top: true} }

func single(v int64) valSet { return valSet{vals: map[int64]bool{v: true}} }

func (s valSet) clone() valSet {
	if s.top {
		return s
	}
	m := make(map[int64]bool, len(s.vals))
	for k := range s.vals {
		m[k] = true
	}
	return valSet{vals: m}
}

func (s valSet) union(o valSet) valSet {
	if s.top || o.top {
		return topVals()
	}
	out := s.clone()
	for k := range o.vals {
		out.vals[k] = true
	}
	if len(out.vals) > valCap {
		return topVals()
	}
	return out
}

func (s valSet) equal(o valSet) bool {
	if s.top != o.top {
		return false
	}
	if s.top {
		return true
	}
	if len(s.vals) != len(o.vals) {
		return false
	}
	for k := range s.vals {
		if !o.vals[k] {
			return false
		}
	}
	return true
}

// Frame lifecycle bits (may-set; 0 = unknown, which never triggers).
const (
	fReset   = 1 << iota // freshly zeroed: Reset() or composite-literal store
	fRunning             // stepped and yielded: mid-operation
	fDone                // stepped to completion: results live, pc is final
)

// Armed-request bits (may-set).
const (
	aNone  = 1 << iota // no request pending is possible
	aArmed             // a pending request is possible
)

// state is one abstract state.
type state struct {
	dead   bool
	armed  uint8
	ints   map[memKey]valSet // absent = top
	frames map[memKey]uint8  // absent = unknown
	mbufs  map[*types.Var]token.Pos
}

func deadState() state { return state{dead: true} }

func entryState() state {
	return state{
		armed:  aNone,
		ints:   map[memKey]valSet{},
		frames: map[memKey]uint8{},
		mbufs:  map[*types.Var]token.Pos{},
	}
}

func (s state) clone() state {
	if s.dead {
		return s
	}
	out := state{
		armed:  s.armed,
		ints:   make(map[memKey]valSet, len(s.ints)),
		frames: make(map[memKey]uint8, len(s.frames)),
		mbufs:  make(map[*types.Var]token.Pos, len(s.mbufs)),
	}
	for k, v := range s.ints {
		out.ints[k] = v.clone()
	}
	for k, v := range s.frames {
		out.frames[k] = v
	}
	for k, v := range s.mbufs {
		out.mbufs[k] = v
	}
	return out
}

// join unions o into s, reporting whether s changed. The lattice is
// finite in every dimension, so repeated joins terminate.
func (s *state) join(o state) bool {
	if o.dead {
		return false
	}
	if s.dead {
		*s = o.clone()
		return true
	}
	changed := false
	if s.armed|o.armed != s.armed {
		s.armed |= o.armed
		changed = true
	}
	// ints: absent means top, so a key survives only if present in both.
	for k, v := range s.ints {
		ov, ok := o.ints[k]
		if !ok {
			delete(s.ints, k) // other side is top
			changed = true
			continue
		}
		u := v.union(ov)
		if !u.equal(v) {
			s.ints[k] = u
			changed = true
		}
	}
	for k, v := range o.frames {
		if s.frames[k]|v != s.frames[k] {
			s.frames[k] |= v
			changed = true
		}
	}
	for k, pos := range o.mbufs {
		if _, ok := s.mbufs[k]; !ok {
			s.mbufs[k] = pos
			changed = true
		}
	}
	return changed
}

func (s state) lookupInt(k memKey) valSet {
	if v, ok := s.ints[k]; ok {
		return v
	}
	return topVals()
}

// states is a bounded disjunction of abstract states (empty = dead).
// Keeping branch outcomes apart until machine dispatch preserves the
// pc <-> frame/armed correlations the protocol checks depend on.
type states []state

const stateCap = 48

// pack drops dead members and collapses to a single join when the
// disjunction grows past the cap.
func pack(sts states) states {
	out := sts[:0]
	for _, s := range sts {
		if !s.dead {
			out = append(out, s)
		}
	}
	if len(out) > stateCap {
		joined := deadState()
		for _, s := range out {
			joined.join(s)
		}
		return states{joined}
	}
	return out
}

func joinAll(sts states) state {
	out := deadState()
	for _, s := range sts {
		out.join(s)
	}
	return out
}

// ---------------------------------------------------------------------------
// The interpreter.

type analyzer struct {
	pass    *framework.Pass
	helpers map[*types.Func]bool
	lits    map[*types.Var]*ast.FuncLit
	helper  bool // target kind: helper machine vs StepFn body

	locals   map[*types.Var]bool // mbuf locals declared in the body
	reported map[token.Pos]map[string]bool

	// inlineRet, when non-nil, redirects return statements of an inlined
	// function literal into per-edge accumulators instead of applying
	// the protocol checks.
	inlineRet   *inlineAcc
	inlineDepth int
	inlining    map[*ast.FuncLit]bool
}

type inlineAcc struct {
	t, f states // bool-result literals: states on the true/false edges
	out  states // void literals: states at return
}

// ctx carries the branch targets of the enclosing statements: states
// flowing to break and continue accumulate there.
type ctx struct {
	brk  *states
	cont *states
}

func (an *analyzer) analyze(body *ast.BlockStmt) {
	an.reported = map[token.Pos]map[string]bool{}
	an.locals = mbufLocals(an.pass.TypesInfo, body)
	an.inlining = map[*ast.FuncLit]bool{}
	out := an.execList(body.List, states{entryState()}, ctx{})
	if !an.helper {
		// Falling off the end of a StepFn body is a return.
		for _, st := range out {
			an.checkStepReturn(body.Rbrace, st)
		}
	}
}

// reportf deduplicates by position and message: fixpoint iteration may
// evaluate one site under many states, and the domains are may-sets, so
// once a report fires it stays valid.
func (an *analyzer) reportf(pos token.Pos, format string, args ...any) {
	if an.inlineRet != nil {
		// Reports inside an inlined literal would be attributed to
		// caller-specific states; the literal is also analyzed in its own
		// right when it is in step position.
		return
	}
	msgs := an.reported[pos]
	if msgs == nil {
		msgs = map[string]bool{}
		an.reported[pos] = msgs
	}
	if msgs[format] {
		return
	}
	msgs[format] = true
	an.pass.Reportf(pos, format, args...)
}

// mbufLocals collects *mbuf.Mbuf variables declared inside the analyzed
// body (not parameters — those are caller-owned — and not inside nested
// function literals, whose captures persist across dispatches by
// design).
func mbufLocals(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && isMbufPtr(v.Type()) {
			out[v] = true
		}
		return true
	})
	return out
}

func isMbufPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Mbuf" && obj.Pkg() != nil && obj.Pkg().Path() == mbufPkg
}

// memKeyOf resolves an expression to a tracked cell: `x`, `&x`, `x.f`,
// `&x.f`, `*x` all map onto {x, [f]}.
func (an *analyzer) memKeyOf(e ast.Expr) (memKey, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return an.memKeyOf(x.X)
		}
	case *ast.StarExpr:
		return an.memKeyOf(x.X)
	case *ast.Ident:
		if v, ok := an.pass.TypesInfo.ObjectOf(x).(*types.Var); ok {
			return memKey{v: v}, true
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(x.X).(*ast.Ident)
		if !ok {
			return memKey{}, false
		}
		if v, ok := an.pass.TypesInfo.ObjectOf(base).(*types.Var); ok {
			return memKey{v: v, field: x.Sel.Name}, true
		}
	}
	return memKey{}, false
}

// constIntOf evaluates e as an integer constant.
func (an *analyzer) constIntOf(e ast.Expr) (int64, bool) {
	tv, ok := an.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// constBoolOf evaluates e as a boolean constant.
func (an *analyzer) constBoolOf(e ast.Expr) (bool, bool) {
	tv, ok := an.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// calleeOf statically resolves a call's target function.
func (an *analyzer) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := an.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := an.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// litCallee resolves a call through a single-assignment local function
// variable to its literal.
func (an *analyzer) litCallee(call *ast.CallExpr) *ast.FuncLit {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := an.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	return an.lits[v]
}

// reqCall classifies a call as a Req* setter on a Proc. A conditional
// setter whose cost argument is a positive constant is reported as
// unconditional: it can never take the zero-cost path.
func (an *analyzer) reqCall(call *ast.CallExpr) (name string, conditional, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	name = sel.Sel.Name
	costArg, isCond := condReq[name]
	if !isCond && !alwaysReq[name] {
		return "", false, false
	}
	if !stepfn.IsProc(an.pass.TypesInfo.TypeOf(sel.X)) {
		return "", false, false
	}
	if isCond && costArg < len(call.Args) {
		if c, isC := an.constIntOf(call.Args[costArg]); isC && c > 0 {
			isCond = false
		}
	}
	return name, isCond, true
}

// helperCall classifies a call as a step helper invocation and locates
// its frame argument (last argument by convention).
func (an *analyzer) helperCall(call *ast.CallExpr) (fn *types.Func, frame memKey, hasFrame bool, ok bool) {
	fn = an.calleeOf(call)
	if fn == nil || !an.helpers[fn] {
		return nil, memKey{}, false, false
	}
	if n := len(call.Args); n > 0 {
		if k, kOk := an.memKeyOf(call.Args[n-1]); kOk {
			return fn, k, true, true
		}
	}
	return fn, memKey{}, false, true
}

// isPanicCall matches a direct call of the panic builtin.
func (an *analyzer) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := an.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// clearMbufUses releases every tracked mbuf local that appears inside e
// in a position that can transfer ownership: as a call argument or
// receiver, or captured by a closure. Conservative in the quiet
// direction — any such appearance clears.
func (an *analyzer) clearMbufUses(e ast.Expr, st *state) {
	if e == nil || st.dead || len(st.mbufs) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure capturing the mbuf keeps it alive deliberately.
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := an.pass.TypesInfo.Uses[id].(*types.Var); ok {
						delete(st.mbufs, v)
					}
				}
				return true
			})
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := an.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st.mbufs, v) // method call: Free/transfer/enqueue
				}
			}
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := an.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st.mbufs, v) // handed to the callee
				}
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Statement execution over state disjunctions.

func (an *analyzer) execList(list []ast.Stmt, sts states, cx ctx) states {
	for _, s := range list {
		if len(sts) == 0 {
			return sts
		}
		sts = an.execStmt(s, sts, cx)
	}
	return sts
}

// mapStates applies a single-state transfer function to each disjunct.
func mapStates(sts states, f func(state) state) states {
	out := make(states, 0, len(sts))
	for _, st := range sts {
		out = append(out, f(st))
	}
	return pack(out)
}

func (an *analyzer) execStmt(s ast.Stmt, sts states, cx ctx) states {
	sts = pack(sts)
	if len(sts) == 0 {
		return sts
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return an.execList(s.List, sts, cx)

	case *ast.ExprStmt:
		return an.execExprStmt(s, sts)

	case *ast.AssignStmt:
		return mapStates(sts, func(st state) state { return an.execAssign(s, st) })

	case *ast.DeclStmt:
		return mapStates(sts, func(st state) state { return an.execDecl(s, st) })

	case *ast.IncDecStmt:
		return mapStates(sts, func(st state) state {
			if k, ok := an.memKeyOf(s.X); ok {
				v := st.lookupInt(k)
				if !v.top {
					out := valSet{vals: map[int64]bool{}}
					for x := range v.vals {
						if s.Tok == token.INC {
							out.vals[x+1] = true
						} else {
							out.vals[x-1] = true
						}
					}
					st.ints[k] = out
				}
			}
			return st
		})

	case *ast.ReturnStmt:
		for _, st := range sts {
			an.execReturn(s, st)
		}
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			sts = an.execStmt(s.Init, sts, cx)
		}
		var tIn, fIn states
		for _, st := range sts {
			t, f := an.evalCond(s.Cond, st)
			tIn = append(tIn, t)
			fIn = append(fIn, f)
		}
		out := an.execStmt(s.Body, pack(tIn), cx)
		if s.Else != nil {
			out = append(out, an.execStmt(s.Else, pack(fIn), cx)...)
		} else {
			out = append(out, pack(fIn)...)
		}
		return pack(out)

	case *ast.ForStmt:
		return an.execFor(s, sts, cx)

	case *ast.RangeStmt:
		return an.execRange(s, sts)

	case *ast.SwitchStmt:
		return an.execSwitch(s, sts, cx)

	case *ast.TypeSwitchStmt:
		// Each arm from the same entry; protocol state rarely depends on
		// dynamic types.
		var brks states
		inner := ctx{brk: &brks, cont: cx.cont}
		if s.Init != nil {
			sts = an.execStmt(s.Init, sts, ctx{})
		}
		var out states
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			entry := make(states, len(sts))
			for i, st := range sts {
				entry[i] = st.clone()
			}
			out = append(out, an.execList(cc.Body, entry, inner)...)
		}
		if !hasDefault {
			out = append(out, sts...)
		}
		out = append(out, brks...)
		return pack(out)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if cx.brk != nil {
				*cx.brk = append(*cx.brk, sts...)
			}
			return nil
		case token.CONTINUE:
			if cx.cont != nil {
				*cx.cont = append(*cx.cont, sts...)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled by the switch executors (must be a clause's final
			// statement); pass the states through.
			return sts
		case token.GOTO:
			// No gotos in the step machines; give up on the path.
			return nil
		}
		return sts

	case *ast.LabeledStmt:
		return an.execStmt(s.Stmt, sts, cx)

	case *ast.DeferStmt, *ast.GoStmt, *ast.SelectStmt, *ast.SendStmt, *ast.EmptyStmt:
		// Outside the step idiom (and mostly banned by determinism);
		// ignore their effects.
		return sts
	}
	return sts
}

// execExprStmt handles statement-position calls: the spot where a
// discarded result is a protocol bug.
func (an *analyzer) execExprStmt(s *ast.ExprStmt, sts states) states {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return sts
	}
	if an.isPanicCall(call) {
		return nil
	}
	if name, conditional, ok := an.reqCall(call); ok {
		out := make(states, 0, len(sts))
		for _, st := range sts {
			an.checkDoubleArm(call.Pos(), name, st)
			if conditional {
				an.reportf(call.Pos(), "result of %s ignored: on the zero-cost path nothing is armed and the step would yield with no pending request; write `if p.%s(...) { ...; return }`", name, name)
			}
			an.clearMbufUses(call, &st)
			st.armed = aArmed
			out = append(out, st)
		}
		return pack(out)
	}
	if fn, frame, hasFrame, ok := an.helperCall(call); ok {
		an.reportf(call.Pos(), "result of step helper %s ignored: the caller cannot know whether the operation completed or yielded (use `if !%s(...) { return }`)", framework.ShortName(fn), fn.Name())
		out := make(states, 0, len(sts))
		for _, st := range sts {
			an.checkFrameReuse(call.Pos(), fn, frame, hasFrame, st)
			an.clearMbufUses(call, &st)
			if hasFrame {
				st.frames[frame] = fDone | fRunning
			}
			st.armed |= aArmed
			out = append(out, st)
		}
		return pack(out)
	}
	if lit := an.litCallee(call); lit != nil {
		var out states
		for _, st := range sts {
			t, f, outs, ok := an.inlineLit(lit, call, st)
			if !ok {
				an.clearMbufUses(call, &st)
				out = append(out, st)
				continue
			}
			out = append(out, t...)
			out = append(out, f...)
			out = append(out, outs...)
		}
		return pack(out)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Block" &&
		stepfn.IsProc(an.pass.TypesInfo.TypeOf(sel.X)) {
		// Goroutine-mode driver: Block consumes the pending request.
		return mapStates(sts, func(st state) state {
			st.armed = aNone
			return st
		})
	}
	// Reset on a tracked frame.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" {
		if k, kOk := an.memKeyOf(sel.X); kOk {
			return mapStates(sts, func(st state) state {
				an.clearMbufUses(call, &st)
				st.frames[k] = fReset
				return st
			})
		}
	}
	// Any other call: mbuf arguments are handed off.
	return mapStates(sts, func(st state) state {
		an.clearMbufUses(call, &st)
		return st
	})
}

// inlineLit interprets a call to a local function literal in the caller's
// state: captured pc cells, frames and Req* effects inside the literal
// are applied for real. For a single-bool-result literal the return
// expressions are split into true/false edge states; for a void literal
// the states at its returns (and its fall-off end) are the call's output.
func (an *analyzer) inlineLit(lit *ast.FuncLit, call *ast.CallExpr, st state) (t, f, out states, ok bool) {
	sig, _ := an.pass.TypesInfo.TypeOf(lit).(*types.Signature)
	if sig == nil || sig.Results().Len() > 1 || an.inlining[lit] || an.inlineDepth >= 4 {
		return nil, nil, nil, false
	}
	boolResult := sig.Results().Len() == 1
	if boolResult && !isBool(sig.Results().At(0).Type()) {
		return nil, nil, nil, false
	}
	for _, arg := range call.Args {
		an.clearMbufUses(arg, &st)
	}
	acc := &inlineAcc{}
	prevAcc, prevDepth := an.inlineRet, an.inlineDepth
	an.inlineRet, an.inlineDepth = acc, an.inlineDepth+1
	an.inlining[lit] = true
	fall := an.execList(lit.Body.List, states{st.clone()}, ctx{})
	an.inlining[lit] = false
	an.inlineRet, an.inlineDepth = prevAcc, prevDepth
	if boolResult {
		return pack(acc.t), pack(acc.f), nil, true
	}
	return nil, nil, pack(append(acc.out, fall...)), true
}

// execAssign tracks constant stores to pc cells, composite-literal frame
// resets, and mbuf acquisition/release.
func (an *analyzer) execAssign(s *ast.AssignStmt, st state) state {
	// Right-hand sides first: calls may arm, and mbuf uses clear.
	for _, rhs := range s.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if name, conditional, ok := an.reqCall(call); ok {
				// `armed := p.ReqX(...)` — the stored bool is not tracked;
				// assume both outcomes.
				an.checkDoubleArm(call.Pos(), name, st)
				if conditional {
					st.armed |= aArmed | aNone
				} else {
					st.armed = aArmed
				}
			} else if fn, frame, hasFrame, ok := an.helperCall(call); ok {
				an.checkFrameReuse(call.Pos(), fn, frame, hasFrame, st)
				if hasFrame {
					st.frames[frame] = fDone | fRunning
				}
				st.armed |= aArmed | aNone
			}
		}
		an.clearMbufUses(rhs, &st)
	}
	n := len(s.Lhs)
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == n {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0] // multi-value call: per-LHS values unknown
		}
		k, kOk := an.memKeyOf(lhs)
		if kOk && rhs != nil && len(s.Rhs) == n {
			// pc-style integer store.
			if c, isC := an.constIntOf(rhs); isC {
				st.ints[k] = single(c)
			} else if _, tracked := st.ints[k]; tracked {
				delete(st.ints, k) // non-constant store: back to top
			}
			// Frame overwrite with a fresh value resets it.
			if _, isLit := ast.Unparen(rhs).(*ast.CompositeLit); isLit {
				st.frames[k] = fReset
			} else if ce, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall && len(ce.Args) == 1 {
				if tv, ok := an.pass.TypesInfo.Types[ce.Fun]; ok && tv.IsType() {
					if _, inner := ast.Unparen(ce.Args[0]).(*ast.CompositeLit); inner {
						st.frames[k] = fReset // T(T2{...}) conversion
					}
				}
			}
		}
		// mbuf tracking.
		if id, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
			if v, isVar := an.pass.TypesInfo.ObjectOf(id).(*types.Var); isVar && an.locals[v] {
				switch {
				case rhs == nil:
					delete(st.mbufs, v)
				case isNilExpr(an.pass.TypesInfo, rhs):
					delete(st.mbufs, v)
				default:
					if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall && len(s.Rhs) == n {
						st.mbufs[v] = lhs.Pos() // acquired
					} else {
						delete(st.mbufs, v) // aliased from elsewhere: caller's problem
					}
				}
				continue
			}
		}
		// Storing a held mbuf into anything non-local transfers it.
		if rhs != nil {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
				if v, ok := an.pass.TypesInfo.Uses[id].(*types.Var); ok {
					delete(st.mbufs, v)
				}
			}
		}
	}
	return st
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// execDecl handles `var m = acquire()` declarations.
func (an *analyzer) execDecl(s *ast.DeclStmt, st state) state {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return st
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			v, ok := an.pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if i < len(vs.Values) {
				an.clearMbufUses(vs.Values[i], &st)
				if an.locals[v] {
					if _, isCall := ast.Unparen(vs.Values[i]).(*ast.CallExpr); isCall {
						st.mbufs[v] = name.Pos()
					}
				}
				if c, isC := an.constIntOf(vs.Values[i]); isC {
					st.ints[memKey{v: v}] = single(c)
				}
			}
		}
	}
	return st
}

// execReturn applies the protocol checks at a return site — or, inside
// an inlined literal, routes the state to the call's result edges.
func (an *analyzer) execReturn(s *ast.ReturnStmt, st state) {
	if st.dead {
		return
	}
	if acc := an.inlineRet; acc != nil {
		if len(s.Results) == 1 {
			t, f := an.evalCond(s.Results[0], st)
			acc.t = append(acc.t, t)
			acc.f = append(acc.f, f)
		} else {
			acc.out = append(acc.out, st)
		}
		return
	}
	for _, r := range s.Results {
		an.clearMbufUses(r, &st)
		// Returning the mbuf itself hands it to the caller.
		if id, ok := ast.Unparen(r).(*ast.Ident); ok {
			if v, ok := an.pass.TypesInfo.Uses[id].(*types.Var); ok {
				delete(st.mbufs, v)
			}
		}
	}
	if !an.helper {
		an.checkStepReturn(s.Pos(), st)
		return
	}
	if len(s.Results) != 1 {
		return
	}
	val, isConst := an.constBoolOf(s.Results[0])
	if !isConst {
		return // computed result: cannot tell yield from completion
	}
	if val {
		if st.armed&aArmed != 0 {
			an.reportf(s.Pos(), "step helper completes (return true) with a request possibly still pending: the scheduler would apply a stale request; completion paths must not arm")
		}
	} else {
		if st.armed&aNone != 0 {
			an.reportf(s.Pos(), "step helper yields (return false) with possibly no pending request: every yield path must arm a Req* setter first (the scheduler panics on an empty request)")
		}
		an.checkMbufHeld(s.Pos(), st)
	}
}

// checkStepReturn checks a StepFn-body return (every return is a yield
// back to the scheduler).
func (an *analyzer) checkStepReturn(pos token.Pos, st state) {
	if st.dead {
		return
	}
	if st.armed&aNone != 0 {
		an.reportf(pos, "step body may return with no pending request: kernel.stepStackless panics on an empty request; every path to return must arm exactly one Req* setter")
	}
	an.checkMbufHeld(pos, st)
}

// checkMbufHeld reports mbuf locals still held at a yield.
func (an *analyzer) checkMbufHeld(pos token.Pos, st state) {
	for v := range st.mbufs {
		an.reportf(pos, "mbuf in %q may still be held at this yield: locals do not survive a dispatch, so transfer it (store into the frame or a queue), free it, or prove it nil before yielding", v.Name())
	}
}

// checkDoubleArm reports arming over an already-pending request.
func (an *analyzer) checkDoubleArm(pos token.Pos, name string, st state) {
	if !st.dead && st.armed&aArmed != 0 {
		an.reportf(pos, "%s may overwrite a request armed earlier on this path: the scheduler applies only the last request, so the first is lost (return to the scheduler between requests)", name)
	}
}

// checkFrameReuse reports stepping a completed frame that was not Reset.
func (an *analyzer) checkFrameReuse(pos token.Pos, fn *types.Func, frame memKey, hasFrame bool, st state) {
	if !hasFrame || st.dead {
		return
	}
	if st.frames[frame]&fDone != 0 {
		an.reportf(pos, "frame passed to %s may have already completed on this path without a Reset: a completed frame's pc still holds its final state, so re-stepping it resumes in the wrong arm", framework.ShortName(fn))
	}
}

// ---------------------------------------------------------------------------
// Conditions.

// evalCond evaluates a branch condition, returning the states on the
// true and false edges. Calls inside the condition apply their protocol
// effects to the respective edge.
func (an *analyzer) evalCond(e ast.Expr, st state) (state, state) {
	if st.dead {
		return st, st
	}
	if v, isC := an.constBoolOf(e); isC {
		if v {
			return st.clone(), deadState()
		}
		return deadState(), st.clone()
	}
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			t, f := an.evalCond(x.X, st)
			return f, t
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			t1, f1 := an.evalCond(x.X, st)
			t2, f2 := an.evalCond(x.Y, t1)
			f2.join(f1)
			return t2, f2
		case token.LOR:
			t1, f1 := an.evalCond(x.X, st)
			t2, f2 := an.evalCond(x.Y, f1)
			t2.join(t1)
			return t2, f2
		case token.EQL, token.NEQ:
			return an.evalCompare(x, st)
		}
	case *ast.CallExpr:
		return an.evalCondCall(x, st)
	}
	// Opaque condition: same state on both edges, after call noise.
	out := st.clone()
	an.clearMbufUses(e, &out)
	return out, out.clone()
}

// evalCompare refines tracked cells across ==/!= against constants and
// nil.
func (an *analyzer) evalCompare(x *ast.BinaryExpr, st state) (state, state) {
	refine := func(keyExpr, valExpr ast.Expr) (state, state, bool) {
		// mbuf nil test.
		if id, ok := ast.Unparen(keyExpr).(*ast.Ident); ok && isNilExpr(an.pass.TypesInfo, valExpr) {
			if v, ok := an.pass.TypesInfo.Uses[id].(*types.Var); ok && an.locals[v] {
				eq := st.clone() // == nil: not held
				delete(eq.mbufs, v)
				ne := st.clone()
				if x.Op == token.EQL {
					return eq, ne, true
				}
				return ne, eq, true
			}
		}
		// tracked int vs constant.
		k, kOk := an.memKeyOf(keyExpr)
		c, cOk := an.constIntOf(valExpr)
		if !kOk || !cOk {
			return state{}, state{}, false
		}
		cur := st.lookupInt(k)
		eq := st.clone()
		eq.ints[k] = single(c)
		if !cur.top && !cur.vals[c] {
			eq = deadState()
		}
		ne := st.clone()
		if !cur.top {
			rest := valSet{vals: map[int64]bool{}}
			for v := range cur.vals {
				if v != c {
					rest.vals[v] = true
				}
			}
			if len(rest.vals) == 0 {
				ne = deadState()
			} else {
				ne.ints[k] = rest
			}
		}
		if x.Op == token.EQL {
			return eq, ne, true
		}
		return ne, eq, true
	}
	if t, f, ok := refine(x.X, x.Y); ok {
		return t, f
	}
	if t, f, ok := refine(x.Y, x.X); ok {
		return t, f
	}
	out := st.clone()
	an.clearMbufUses(x, &out)
	return out, out.clone()
}

// evalCondCall applies a call's protocol effects per branch edge.
func (an *analyzer) evalCondCall(call *ast.CallExpr, st state) (state, state) {
	if name, conditional, ok := an.reqCall(call); ok {
		an.checkDoubleArm(call.Pos(), name, st)
		t := st.clone()
		an.clearMbufUses(call, &t)
		t.armed = aArmed
		if conditional {
			f := st.clone()
			an.clearMbufUses(call, &f)
			return t, f // false edge: zero-cost no-op, nothing armed
		}
		return t, deadState() // always-arm setters return true
	}
	if fn, frame, hasFrame, ok := an.helperCall(call); ok {
		an.checkFrameReuse(call.Pos(), fn, frame, hasFrame, st)
		t := st.clone()
		an.clearMbufUses(call, &t)
		f := t.clone()
		if hasFrame {
			t.frames[frame] = fDone    // completed: results in frame
			f.frames[frame] = fRunning // yielded mid-operation
		}
		f.armed = aArmed // the helper armed before returning false
		return t, f
	}
	if lit := an.litCallee(call); lit != nil {
		if t, f, _, ok := an.inlineLit(lit, call, st); ok {
			return joinAll(t), joinAll(f)
		}
	}
	out := st.clone()
	an.clearMbufUses(call, &out)
	return out, out.clone()
}

// ---------------------------------------------------------------------------
// Loops and switches.

// execFor interprets a for loop. The machine idiom — `for` with no
// condition whose body is a single switch over a tracked integer cell
// with constant cases — gets the per-arm partitioned fixpoint; everything
// else gets a joined fixpoint.
func (an *analyzer) execFor(s *ast.ForStmt, sts states, cx ctx) states {
	if s.Init != nil {
		sts = an.execStmt(s.Init, sts, ctx{})
	}
	if sw, key, ok := an.matchMachine(s); ok {
		an.execMachine(sw, key, sts)
		return nil // the dispatch loop never falls through
	}
	var brks states
	entry := joinAll(sts)
	for {
		var conts states
		inner := ctx{brk: &brks, cont: &conts}
		iter := states{entry.clone()}
		if s.Cond != nil {
			var tIn states
			for _, st := range iter {
				t, f := an.evalCond(s.Cond, st)
				tIn = append(tIn, t)
				brks = append(brks, f)
			}
			iter = pack(tIn)
		}
		fall := an.execStmt(s.Body, iter, inner)
		fall = append(fall, conts...)
		if s.Post != nil {
			fall = an.execStmt(s.Post, fall, ctx{})
		}
		if !entry.join(joinAll(fall)) {
			break
		}
	}
	return pack(brks)
}

// execRange interprets a range loop: body runs zero or more times.
func (an *analyzer) execRange(s *ast.RangeStmt, sts states) states {
	sts = mapStates(sts, func(st state) state {
		an.clearMbufUses(s.X, &st)
		return st
	})
	var brks states
	entry := joinAll(sts)
	for {
		var conts states
		inner := ctx{brk: &brks, cont: &conts}
		fall := an.execStmt(s.Body, states{entry.clone()}, inner)
		fall = append(fall, conts...)
		if !entry.join(joinAll(fall)) {
			break
		}
	}
	out := append(states{}, sts...) // zero iterations
	out = append(out, brks...)
	return pack(out)
}

// matchMachine recognizes the step-machine dispatch shape.
func (an *analyzer) matchMachine(s *ast.ForStmt) (*ast.SwitchStmt, memKey, bool) {
	if s.Cond != nil || s.Post != nil || len(s.Body.List) != 1 {
		return nil, memKey{}, false
	}
	sw, ok := s.Body.List[0].(*ast.SwitchStmt)
	if !ok || sw.Init != nil || sw.Tag == nil {
		return nil, memKey{}, false
	}
	key, ok := an.memKeyOf(sw.Tag)
	if !ok {
		return nil, memKey{}, false
	}
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		for _, e := range cc.List {
			if _, isC := an.constIntOf(e); !isC {
				return nil, memKey{}, false
			}
		}
	}
	return sw, key, true
}

// execMachine runs the per-arm partitioned fixpoint over a machine
// switch: each arm keeps its own (joined) entry state, dispatch refines
// the pc cell to the matched case values, and every arm exit (end of
// case, break, continue) re-dispatches — each exit disjunct separately,
// so branch-dependent pc assignments route precisely. The loop itself
// never falls through: every way out is a return.
func (an *analyzer) execMachine(sw *ast.SwitchStmt, key memKey, sts states) {
	clauses := make([]*ast.CaseClause, len(sw.Body.List))
	consts := make([][]int64, len(clauses))
	defaultIdx := -1
	var allConsts []int64
	for i, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		clauses[i] = cc
		if cc.List == nil {
			defaultIdx = i
			continue
		}
		for _, e := range cc.List {
			v, _ := an.constIntOf(e)
			consts[i] = append(consts[i], v)
			allConsts = append(allConsts, v)
		}
	}
	entries := make([]state, len(clauses))
	for i := range entries {
		entries[i] = deadState()
	}
	dirty := make([]bool, len(clauses))

	dispatch := func(s state) {
		if s.dead {
			return
		}
		pc := s.lookupInt(key)
		for i, cc := range clauses {
			if cc.List == nil {
				continue
			}
			var matched []int64
			for _, v := range consts[i] {
				if pc.top || pc.vals[v] {
					matched = append(matched, v)
				}
			}
			if len(matched) == 0 {
				continue
			}
			e := s.clone()
			vs := valSet{vals: map[int64]bool{}}
			for _, v := range matched {
				vs.vals[v] = true
			}
			e.ints[key] = vs
			if entries[i].join(e) {
				dirty[i] = true
			}
		}
		if defaultIdx >= 0 {
			e := s.clone()
			if !pc.top {
				rest := valSet{vals: map[int64]bool{}}
				for v := range pc.vals {
					covered := false
					for _, c := range allConsts {
						if v == c {
							covered = true
							break
						}
					}
					if !covered {
						rest.vals[v] = true
					}
				}
				if len(rest.vals) == 0 {
					return
				}
				e.ints[key] = rest
			}
			if entries[defaultIdx].join(e) {
				dirty[defaultIdx] = true
			}
		}
	}
	for _, st := range sts {
		dispatch(st)
	}
	for {
		i := -1
		for j, d := range dirty {
			if d {
				i = j
				break
			}
		}
		if i < 0 {
			break
		}
		dirty[i] = false
		body := clauses[i].Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if b, ok := body[n-1].(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		var redisp states
		inner := ctx{brk: &redisp, cont: &redisp}
		out := an.execList(body, states{entries[i].clone()}, inner)
		if fallsThrough && i+1 < len(clauses) {
			if entries[i+1].join(joinAll(out)) {
				dirty[i+1] = true
			}
		} else {
			redisp = append(redisp, out...)
		}
		for _, r := range redisp {
			dispatch(r)
		}
	}
}

// execSwitch interprets a switch outside the machine-loop shape,
// refining the tag cell per arm when it is tracked and constant.
func (an *analyzer) execSwitch(s *ast.SwitchStmt, sts states, cx ctx) states {
	if s.Init != nil {
		sts = an.execStmt(s.Init, sts, ctx{})
	}
	var key memKey
	keyOk := false
	if s.Tag != nil {
		key, keyOk = an.memKeyOf(s.Tag)
	}
	var brks states
	inner := ctx{brk: &brks, cont: cx.cont}
	var out states
	hasDefault := false
	var pending states // fallthrough carry
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		var entry states
		switch {
		case cc.List == nil:
			hasDefault = true
			for _, st := range sts {
				entry = append(entry, st.clone())
			}
		case keyOk:
			for _, st := range sts {
				e := st.clone()
				vs := valSet{vals: map[int64]bool{}}
				allConst := true
				for _, x := range cc.List {
					v, isC := an.constIntOf(x)
					if !isC {
						allConst = false
						break
					}
					vs.vals[v] = true
				}
				if allConst {
					cur := st.lookupInt(key)
					if !cur.top {
						inter := valSet{vals: map[int64]bool{}}
						for v := range vs.vals {
							if cur.vals[v] {
								inter.vals[v] = true
							}
						}
						vs = inter
					}
					if len(vs.vals) == 0 {
						continue
					}
					e.ints[key] = vs
				}
				entry = append(entry, e)
			}
		case s.Tag == nil && len(cc.List) == 1:
			// Expression switch: `switch { case cond: }`.
			for _, st := range sts {
				t, _ := an.evalCond(cc.List[0], st)
				entry = append(entry, t)
			}
		default:
			for _, st := range sts {
				entry = append(entry, st.clone())
			}
		}
		entry = append(entry, pending...)
		pending = nil
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if b, ok := body[n-1].(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		cOut := an.execList(body, pack(entry), inner)
		if fallsThrough {
			pending = cOut
		} else {
			out = append(out, cOut...)
		}
	}
	out = append(out, pending...)
	if !hasDefault {
		out = append(out, sts...) // no arm matched
	}
	out = append(out, brks...)
	return pack(out)
}
