// Package stepproto poses as "lrp/internal/app" in the stepreq analyzer's
// tests, exercising the request protocol against the real kernel types:
// yield paths that arm nothing, completion paths that leave a request
// pending, double-arming, discarded helper and conditional-setter results,
// frame reuse without Reset, and mbuf locals held across a yield — plus
// the shapes that must stay silent: the dispatch-machine idiom with
// branch-correlated pc updates, constant-positive-cost setters, and retry
// closures interpreted inline.
package stepproto

import (
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
)

// op is a minimal step-helper frame.
type op struct {
	pc  int
	Err error
}

// Reset rearms the frame for a fresh operation.
func (o *op) Reset() { *o = op{} }

// stepOp is a well-formed two-state helper: arm and yield, then complete.
func stepOp(p *kernel.Proc, o *op) bool {
	if o.pc == 0 {
		o.pc = 1
		p.ReqCompute(5)
		return false
	}
	return true
}

// toggle keeps fixture conditions opaque to the analyzer.
var toggle bool

func flip() bool { return toggle }

// stepYieldBad arms on one path but yields bare on the other.
func stepYieldBad(p *kernel.Proc, o *op) bool {
	if o.pc == 0 {
		o.pc = 1
		p.ReqCompute(5)
		return false
	}
	if o.pc == 1 {
		o.pc = 2
		return false // want `step helper yields \(return false\) with possibly no pending request`
	}
	return true
}

// stepDoneBad completes with the request it just armed still pending.
func stepDoneBad(p *kernel.Proc, o *op) bool {
	o.pc = 1
	p.ReqCompute(5)
	return true // want `step helper completes \(return true\) with a request possibly still pending`
}

// stepDoubleArm arms twice before returning: the second request silently
// replaces the first.
func stepDoubleArm(p *kernel.Proc, wq *kernel.WaitQ) bool {
	p.ReqCompute(5)
	p.ReqSleep(wq) // want `ReqSleep may overwrite a request armed earlier`
	return false
}

// stepCondIgnored discards a conditional setter's result: on the
// zero-cost path nothing is armed.
func stepCondIgnored(p *kernel.Proc, cost int64) bool {
	p.ReqCompute(cost) // want `result of ReqCompute ignored`
	return false
}

// frameReuse steps a completed frame again without a Reset.
func frameReuse(p *kernel.Proc, a *op) bool {
	if !stepOp(p, a) {
		return false
	}
	if !stepOp(p, a) { // want `frame passed to .*stepOp may have already completed on this path without a Reset`
		return false
	}
	return true
}

// frameResetOK is the corrected shape: Reset between operations.
func frameResetOK(p *kernel.Proc, a *op) bool {
	if !stepOp(p, a) {
		return false
	}
	a.Reset()
	if !stepOp(p, a) {
		return false
	}
	return true
}

// inlineDoubleArm catches a double-arm that is only visible through a
// local retry closure: the closure's ReqDelay is interpreted inline, so
// its true edge carries the armed request into the caller.
func inlineDoubleArm(p *kernel.Proc, wq *kernel.WaitQ) bool {
	arm := func(q *kernel.Proc) bool {
		return q.ReqDelay(100)
	}
	if arm(p) {
		p.ReqSleep(wq) // want `ReqSleep may overwrite a request armed earlier`
		return false
	}
	return true
}

// ignoredHelper discards a step helper's result inside a StepFn body: the
// body can no longer tell completion from yield, and may fall off the end
// with nothing armed.
func ignoredHelper(k *kernel.Kernel, a *op) {
	k.SpawnStep("ignored", 0, func(p *kernel.Proc) {
		stepOp(p, a) // want `result of step helper .*stepOp ignored`
	}) // want `step body may return with no pending request`
}

// forgotArm falls off the end of a StepFn body with no request on the
// not-done path.
func forgotArm(k *kernel.Kernel) {
	k.SpawnStep("forgot", 0, func(p *kernel.Proc) {
		if flip() {
			p.ReqExit()
			return
		}
	}) // want `step body may return with no pending request`
}

// acquire and stash stand in for mbuf pool and queue transfer APIs.
func acquire() *mbuf.Mbuf { return nil }

func stash(m *mbuf.Mbuf) {}

// mbufHeld yields while a locally acquired mbuf is still live; mbufMoved
// transfers it first and is clean.
func mbufHeld(k *kernel.Kernel, wq *kernel.WaitQ) {
	k.SpawnStep("leak", 0, func(p *kernel.Proc) {
		m := acquire()
		if m == nil {
			p.ReqExit()
			return
		}
		p.ReqSleep(wq)
	}) // want `mbuf in "m" may still be held at this yield`
	k.SpawnStep("moved", 0, func(p *kernel.Proc) {
		m := acquire()
		stash(m)
		p.ReqSleep(wq)
	})
}

// machineOK is the two-frame dispatch machine from the transfer apps:
// the send frame is Reset only on the branch that routes to the send arm.
// Keeping that branch's state apart from the stay-in-receive state until
// dispatch is exactly what the disjunctive interpreter exists for — a
// joined analysis reports a phantom Reset violation here.
func machineOK(k *kernel.Kernel, recv, send *op) {
	pc := 1
	k.SpawnStep("mach", 0, func(p *kernel.Proc) {
		for {
			switch pc {
			case 1:
				if !stepOp(p, recv) {
					return
				}
				recv.Reset()
				if flip() {
					send.Reset()
					pc = 2
				}
			case 2:
				if !stepOp(p, send) {
					return
				}
				pc = 1
			}
		}
	})
}

// machineMissingReset re-enters a completed frame's arm without a Reset.
func machineMissingReset(k *kernel.Kernel, recv *op) {
	pc := 1
	k.SpawnStep("machbad", 0, func(p *kernel.Proc) {
		for {
			switch pc {
			case 1:
				if !stepOp(p, recv) {
					return
				}
				pc = 2
			case 2:
				if !stepOp(p, recv) { // want `frame passed to .*stepOp may have already completed on this path without a Reset`
					return
				}
				p.ReqExit()
				return
			}
		}
	})
}

// spinner: a constant positive cost can never take the zero-cost no-op
// path, so the discarded result is fine and the body always yields armed.
func spinner(k *kernel.Kernel) {
	k.SpawnStep("spin", 0, func(p *kernel.Proc) {
		p.ReqCompute(10)
	})
}

// coroWaived is driven in goroutine mode; the protocol does not apply.
func coroWaived(k *kernel.Kernel, a *op) {
	k.SpawnStepCoro("coro", 0, func(p *kernel.Proc) { //lrp:coroutine
		for !stepOp(p, a) {
			p.Block()
		}
		p.Exit()
	})
}
