package stepreq_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/stepreq"
)

// TestStepProtocol drives the stepreq interpreter over testdata posing as
// an app package against the real kernel types: yield-without-request,
// completion-with-pending, double-arming (direct and through an inlined
// retry closure), discarded conditional-setter and helper results, frame
// reuse without Reset, and mbuf locals held across a yield are flagged;
// the dispatch-machine idiom with branch-correlated pc updates, constant
// positive costs, Reset-between-operations, mbuf transfer, and
// //lrp:coroutine bodies stay silent.
func TestStepProtocol(t *testing.T) {
	analysistest.Run(t, stepreq.Analyzer, "testdata/stepproto", "lrp/internal/app")
}
