// Package mbufown mechanically checks the mbuf ownership protocol that the
// allocation-free packet cycle depends on (see internal/mbuf):
//
//   - an mbuf put in flight with BeginTransfer must, on every path through
//     the function, be released with EndTransfer or handed to another owner
//     (passed to a call, captured by a closure, stored, or returned).
//     A path that simply drops the handle leaks the struct and its storage
//     out of the recycling cycle.
//   - Free must not follow Detach or BeginTransfer on the same mbuf: both
//     hand the release duty elsewhere (the wire reference releases with
//     EndTransfer), and Free at that point either double-releases pool
//     accounting or silently skips the wire-reference bookkeeping.
//   - once an mbuf has been released (Free or EndTransfer), neither the
//     mbuf nor any variable previously bound to its Data bytes may be
//     used: the storage may already back an unrelated packet. Bytes taken
//     with Detach are exempt — Detach exists precisely to let delivered
//     data outlive the mbuf.
//
// The analysis is intraprocedural and flow-sensitive over structured
// control flow (if/for/switch), tracking mbuf-typed local variables by
// their type object. It is deliberately conservative: passing an mbuf to
// any call transfers ownership, so cross-function protocols (a NIC
// beginning a transfer that the network layer ends) never misreport.
package mbufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"lrp/internal/analysis/framework"
)

// Analyzer is the mbuf ownership check.
var Analyzer = &framework.Analyzer{
	Name: "mbufown",
	Doc:  "check mbuf ownership protocol: BeginTransfer/EndTransfer pairing, Free-after-Detach, use-after-release",
	Run:  run,
}

const mbufPkg = "lrp/internal/mbuf"

func run(pass *framework.Pass) error {
	// The mbuf package itself implements the protocol and may touch
	// released storage (recycle does, on purpose).
	if pass.PkgPath == mbufPkg {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					newChecker(pass).checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				newChecker(pass).checkFunc(fn.Body)
				return false // checkFunc descends into nested literals itself
			}
			return true
		})
	}
	return nil
}

// ownState is the abstract state of one tracked mbuf variable.
type ownState struct {
	inflight token.Pos // BeginTransfer site with an open release obligation
	released token.Pos // Free/EndTransfer site
	detached bool
	freeSeen token.Pos // Free site (for double-protocol reporting)
}

// pathState is the per-path abstract store.
type pathState struct {
	vars    map[*types.Var]*ownState
	aliases map[*types.Var]*types.Var // data variable -> mbuf variable
	dead    bool                      // path ended (return/panic)
}

func newPathState() *pathState {
	return &pathState{vars: map[*types.Var]*ownState{}, aliases: map[*types.Var]*types.Var{}}
}

func (st *pathState) clone() *pathState {
	c := newPathState()
	c.dead = st.dead
	for v, s := range st.vars {
		cp := *s
		c.vars[v] = &cp
	}
	for a, m := range st.aliases {
		c.aliases[a] = m
	}
	return c
}

// merge folds other into st as the join of two control-flow paths. Dead
// paths contribute nothing. The join is "may": a variable possibly
// released on one branch is treated as released, which matches how the
// reports are phrased (on some path).
func (st *pathState) merge(other *pathState) {
	if other.dead {
		return
	}
	if st.dead {
		*st = *other.clone()
		return
	}
	for v, o := range other.vars {
		s, ok := st.vars[v]
		if !ok {
			cp := *o
			st.vars[v] = &cp
			continue
		}
		if s.inflight == token.NoPos {
			s.inflight = o.inflight
		}
		if s.released == token.NoPos {
			s.released = o.released
		}
		if s.freeSeen == token.NoPos {
			s.freeSeen = o.freeSeen
		}
		s.detached = s.detached || o.detached
	}
	for a, m := range other.aliases {
		if _, ok := st.aliases[a]; !ok {
			st.aliases[a] = m
		}
	}
}

type checker struct {
	pass     *framework.Pass
	reported map[token.Pos]bool
}

func newChecker(pass *framework.Pass) *checker {
	return &checker{pass: pass, reported: map[token.Pos]bool{}}
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// checkFunc analyzes one function body from a fresh state and checks
// release obligations at every exit.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := newPathState()
	c.stmts(body.List, st)
	c.exitCheck(st)
}

// exitCheck fires the leak diagnostics for obligations still open when a
// path leaves the function.
func (c *checker) exitCheck(st *pathState) {
	if st.dead {
		return
	}
	for _, s := range st.vars {
		if s.inflight != token.NoPos {
			c.reportOnce(s.inflight,
				"BeginTransfer without a matching EndTransfer on every path: the in-flight mbuf (and its storage) leaks out of the recycling cycle")
		}
	}
}

func (c *checker) stmts(list []ast.Stmt, st *pathState) {
	for _, s := range list {
		if st.dead {
			return
		}
		c.stmt(s, st)
	}
}

func (c *checker) stmt(s ast.Stmt, st *pathState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(c.pass, call) {
			st.dead = true
			return
		}
		c.expr(s.X, st)
	case *ast.AssignStmt:
		c.assign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st)
		}
		c.exitCheck(st)
		st.dead = true
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st)
		then := st.clone()
		c.stmts(s.Body.List, then)
		els := st.clone()
		if s.Else != nil {
			c.stmt(s.Else, els)
		}
		*st = *then
		st.merge(els)
	case *ast.BlockStmt:
		c.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.expr(s.Cond, st)
		}
		c.loopBody(s.Body, s.Post, st, s.Cond == nil)
	case *ast.RangeStmt:
		c.expr(s.X, st)
		c.loopBody(s.Body, nil, st, false)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.expr(s.Tag, st)
		}
		c.switchBody(s.Body, st, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.switchBody(s.Body, st, hasDefault(s.Body))
	case *ast.DeferStmt:
		c.deferred(s.Call, st)
	case *ast.GoStmt:
		c.expr(s.Call, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	case *ast.IncDecStmt:
		c.expr(s.X, st)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: treat as ending this straight-line segment.
		// Obligations are still checked at function exits reached through
		// the merged loop-exit state.
		st.dead = true
	}
}

// loopBody analyzes a loop body twice so state created in iteration one
// (e.g. a release at the bottom) is visible at the top of iteration two,
// then merges the body exit into the fall-through state. infinite marks
// `for {}` loops, whose fall-through is unreachable unless the body can
// break (approximated by merging anyway — conservative but simple).
func (c *checker) loopBody(body *ast.BlockStmt, post ast.Stmt, st *pathState, infinite bool) {
	entry := st.clone()
	for i := 0; i < 2; i++ {
		iter := entry.clone()
		iter.dead = false
		c.stmts(body.List, iter)
		if post != nil && !iter.dead {
			c.stmt(post, iter)
		}
		entry.merge(iter)
	}
	if infinite {
		// Fall-through only via break; approximate with the body state.
		*st = *entry
		return
	}
	st.merge(entry)
}

func (c *checker) switchBody(body *ast.BlockStmt, st *pathState, hasDefault bool) {
	merged := newPathState()
	merged.dead = true
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := st.clone()
		for _, e := range cc.List {
			c.expr(e, branch)
		}
		c.stmts(cc.Body, branch)
		merged.merge(branch)
	}
	if !hasDefault {
		merged.merge(st)
	}
	*st = *merged
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// deferred handles `defer x.Free()` / `defer x.EndTransfer()`: the release
// is guaranteed at exit, so the obligation clears, but the bytes stay
// usable for the rest of the body.
func (c *checker) deferred(call *ast.CallExpr, st *pathState) {
	if v, name, ok := c.protocolCall(call); ok && (name == "Free" || name == "EndTransfer") {
		if s := st.vars[v]; s != nil {
			s.inflight = token.NoPos
		}
		return
	}
	c.expr(call, st)
}

// assign processes an assignment: RHS effects first, then LHS rebinding.
func (c *checker) assign(s *ast.AssignStmt, st *pathState) {
	// b := m.Data and b := m.Detach() get alias treatment when the RHS is
	// exactly that expression.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if lhs, ok := s.Lhs[0].(*ast.Ident); ok {
			if mv, isData := c.mbufDataExpr(s.Rhs[0], st); isData {
				if av := c.localVar(lhs); av != nil {
					st.aliases[av] = mv
					delete(st.vars, av)
					return
				}
			}
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if v, name, ok := c.protocolCall(call); ok && name == "Detach" {
					// Detached bytes are caller-owned: no alias tracking,
					// but record the Detach on the mbuf.
					c.transition(v, name, call, st)
					if av := c.localVar(lhs); av != nil {
						delete(st.aliases, av)
						delete(st.vars, av)
					}
					return
				}
			}
		}
	}
	for _, r := range s.Rhs {
		c.expr(r, st)
	}
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if v := c.localVar(id); v != nil {
				// Rebinding kills previous tracking for this name.
				delete(st.vars, v)
				delete(st.aliases, v)
				continue
			}
		}
		// Compound LHS (m.Data = ..., q[i] = ...): treat as a use.
		c.expr(l, st)
	}
}

// expr walks an expression, applying protocol transitions and reporting
// uses of released mbufs or their bytes.
func (c *checker) expr(e ast.Expr, st *pathState) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		if v, name, ok := c.protocolCall(e); ok {
			c.transition(v, name, e, st)
			return
		}
		c.expr(e.Fun, st)
		for _, a := range e.Args {
			// Passing a tracked mbuf to any call transfers ownership.
			if id, ok := a.(*ast.Ident); ok {
				if v := c.localVar(id); v != nil && c.isMbufVar(v) {
					c.useVar(v, id.Pos(), st)
					if s := st.vars[v]; s != nil {
						s.inflight = token.NoPos
					}
					continue
				}
			}
			c.expr(a, st)
		}
	case *ast.FuncLit:
		// Capturing a tracked mbuf hands it to the closure.
		for v, s := range st.vars {
			if capturesVar(c.pass, e, v) {
				s.inflight = token.NoPos
			}
		}
		newChecker(c.pass).checkFunc(e.Body)
	case *ast.Ident:
		if v := c.localVar(e); v != nil {
			c.useVar(v, e.Pos(), st)
			if mv, ok := st.aliases[v]; ok {
				c.useAlias(v, mv, e.Pos(), st)
			}
		}
	case *ast.SelectorExpr:
		c.expr(e.X, st)
	case *ast.BinaryExpr:
		c.expr(e.X, st)
		c.expr(e.Y, st)
	case *ast.UnaryExpr:
		c.expr(e.X, st)
	case *ast.ParenExpr:
		c.expr(e.X, st)
	case *ast.StarExpr:
		c.expr(e.X, st)
	case *ast.IndexExpr:
		c.expr(e.X, st)
		c.expr(e.Index, st)
	case *ast.SliceExpr:
		c.expr(e.X, st)
		c.expr(e.Low, st)
		c.expr(e.High, st)
		c.expr(e.Max, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.expr(el, st)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Value, st)
	case *ast.TypeAssertExpr:
		c.expr(e.X, st)
	}
}

// useVar reports a use of an mbuf variable whose storage was released.
func (c *checker) useVar(v *types.Var, pos token.Pos, st *pathState) {
	s := st.vars[v]
	if s == nil || s.released == token.NoPos {
		return
	}
	c.reportOnce(pos, "use of mbuf %q after it was released (Free/EndTransfer): the struct and storage may already back another packet", v.Name())
}

// useAlias reports a use of bytes that died with their mbuf's release.
func (c *checker) useAlias(alias, m *types.Var, pos token.Pos, st *pathState) {
	s := st.vars[m]
	if s == nil || s.released == token.NoPos || s.detached {
		return
	}
	c.reportOnce(pos, "use of %q, the backing bytes of mbuf %q, after release: Detach the data first if it must outlive the mbuf", alias.Name(), m.Name())
}

// transition applies one protocol method call to the state machine.
func (c *checker) transition(v *types.Var, name string, call *ast.CallExpr, st *pathState) {
	s := st.vars[v]
	if s == nil {
		s = &ownState{}
		st.vars[v] = s
	}
	if s.released != token.NoPos {
		c.reportOnce(call.Pos(), "%s on mbuf %q after it was already released: the storage may back another packet", name, v.Name())
		return
	}
	switch name {
	case "BeginTransfer":
		if s.inflight != token.NoPos {
			c.reportOnce(call.Pos(), "second BeginTransfer on mbuf %q: pool accounting would be released twice", v.Name())
			return
		}
		s.inflight = call.Pos()
	case "EndTransfer":
		s.inflight = token.NoPos
		s.released = call.Pos()
	case "Free":
		if s.detached {
			c.reportOnce(call.Pos(), "Free on mbuf %q after Detach: detached buffers ride the transfer protocol; release the struct with EndTransfer", v.Name())
		} else if s.inflight != token.NoPos {
			c.reportOnce(call.Pos(), "Free on mbuf %q after BeginTransfer: an in-flight mbuf must be released with EndTransfer, Free skips the wire-reference bookkeeping", v.Name())
		}
		s.inflight = token.NoPos
		s.released = call.Pos()
		s.freeSeen = call.Pos()
	case "Detach":
		s.detached = true
	}
}

// protocolCall matches x.<Free|Detach|BeginTransfer|EndTransfer|AddRef>()
// where x is an identifier of type *mbuf.Mbuf, returning its variable.
func (c *checker) protocolCall(call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Free", "Detach", "BeginTransfer", "EndTransfer":
	default:
		return nil, "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	v := c.localVar(id)
	if v == nil || !c.isMbufVar(v) {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

// mbufDataExpr matches `x.Data` for a tracked mbuf variable x.
func (c *checker) mbufDataExpr(e ast.Expr, st *pathState) (*types.Var, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Data" {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v := c.localVar(id)
	if v == nil || !c.isMbufVar(v) {
		return nil, false
	}
	return v, true
}

// localVar resolves an identifier to the variable it uses or defines.
func (c *checker) localVar(id *ast.Ident) *types.Var {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isMbufVar reports whether v's type is *mbuf.Mbuf (or mbuf.Mbuf).
func (c *checker) isMbufVar(v *types.Var) bool {
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Mbuf" && obj.Pkg() != nil && obj.Pkg().Path() == mbufPkg
}

// capturesVar reports whether the function literal references v.
func capturesVar(pass *framework.Pass, fl *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isPanic matches a direct call to the panic builtin.
func isPanic(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
