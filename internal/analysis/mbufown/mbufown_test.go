package mbufown_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/mbufown"
)

// TestOwnershipProtocol drives the state machine over testdata posing as a
// protocol-layer package. It includes the acceptance demonstration (an
// unpaired BeginTransfer fails) and the required negative case (Detach
// followed by caller-owned reuse of the bytes passes).
func TestOwnershipProtocol(t *testing.T) {
	analysistest.Run(t, mbufown.Analyzer, "testdata/mbufguard", "lrp/internal/core")
}
