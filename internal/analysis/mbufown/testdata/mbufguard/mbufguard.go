// Package mbufguard poses as "lrp/internal/core" in the mbufown analyzer's
// tests, exercising the ownership state machine against the real
// lrp/internal/mbuf types.
package mbufguard

import "lrp/internal/mbuf"

// leak is the acceptance demonstration: an unpaired BeginTransfer fails.
func leak(p *mbuf.Pool, b []byte) {
	m := p.AllocCopy(b)
	if m == nil {
		return
	}
	m.BeginTransfer() // want `BeginTransfer without a matching EndTransfer on every path`
}

// leakOnOnePath: pairing must hold on EVERY path, not just the slow one.
func leakOnOnePath(p *mbuf.Pool, b []byte, slow bool) {
	m := p.AllocCopy(b)
	m.BeginTransfer() // want `BeginTransfer without a matching EndTransfer on every path`
	if slow {
		m.EndTransfer()
	}
}

// balanced transfers are clean.
func balanced(p *mbuf.Pool, b []byte) {
	m := p.AllocCopy(b)
	m.BeginTransfer()
	m.EndTransfer()
}

// branchBalanced: every path releases, including early returns.
func branchBalanced(p *mbuf.Pool, b []byte, slow bool) {
	m := p.AllocCopy(b)
	m.BeginTransfer()
	if slow {
		m.EndTransfer()
		return
	}
	m.EndTransfer()
}

// deferredRelease: a deferred EndTransfer discharges the obligation.
func deferredRelease(p *mbuf.Pool, b []byte) {
	m := p.AllocCopy(b)
	m.BeginTransfer()
	defer m.EndTransfer()
}

// handOff: passing the mbuf to a callee transfers the obligation with it.
func handOff(p *mbuf.Pool, b []byte, deliver func(*mbuf.Mbuf)) {
	m := p.AllocCopy(b)
	m.BeginTransfer()
	deliver(m)
}

// doubleBegin releases the pool accounting twice.
func doubleBegin(p *mbuf.Pool, b []byte) {
	m := p.AllocCopy(b)
	m.BeginTransfer()
	m.BeginTransfer() // want `second BeginTransfer on mbuf "m"`
	m.EndTransfer()
}

// freeAfterDetach: a detached mbuf's struct is released with EndTransfer.
func freeAfterDetach(p *mbuf.Pool, b []byte) []byte {
	m := p.AllocCopy(b)
	data := m.Detach()
	m.Free() // want `Free on mbuf "m" after Detach`
	return data
}

// detachReuse is the required negative case: Detach hands the bytes to the
// caller, and using them after the mbuf is released is fine.
func detachReuse(p *mbuf.Pool, b []byte) []byte {
	m := p.AllocCopy(b)
	m.BeginTransfer()
	data := m.Detach()
	m.EndTransfer()
	data[0] = 1 // caller-owned bytes stay valid after release
	return data
}

// freeInFlight skips the wire-reference bookkeeping.
func freeInFlight(p *mbuf.Pool, b []byte) {
	m := p.AllocCopy(b)
	m.BeginTransfer()
	m.Free() // want `Free on mbuf "m" after BeginTransfer`
}

// useAfterFree touches the struct once the pool may have recycled it.
func useAfterFree(p *mbuf.Pool, b []byte) int {
	m := p.AllocCopy(b)
	m.Free()
	return m.Len() // want `use of mbuf "m" after it was released`
}

// useBytesAfterFree touches the backing array after recycling.
func useBytesAfterFree(p *mbuf.Pool, raw []byte) byte {
	m := p.AllocCopy(raw)
	b := m.Data
	m.Free()
	return b[0] // want `use of "b", the backing bytes of mbuf "m", after release`
}

// useBeforeFree is clean: reads precede the release.
func useBeforeFree(p *mbuf.Pool, raw []byte) byte {
	m := p.AllocCopy(raw)
	b := m.Data
	v := b[0]
	m.Free()
	return v
}
