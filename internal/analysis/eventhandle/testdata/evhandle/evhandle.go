// Package evhandle poses as "lrp/internal/core" in the eventhandle
// analyzer's tests, exercising handle discipline against the real
// lrp/internal/sim types.
package evhandle

import "lrp/internal/sim"

type holder struct {
	bad *sim.Event // want `\*sim\.Event pins recycled event storage`
	ok  sim.Event  // storing the handle by value is the design
}

func pointers(eng *sim.Engine) {
	ev := eng.After(10, func() {})
	p := &ev // want `taking the address of a sim\.Event`
	_ = p
}

func compare(a, b sim.Event) bool {
	if a == b { // want `comparing sim\.Event handles for identity`
		return true
	}
	if a == (sim.Event{}) { // want `comparing a sim\.Event against the zero literal`
		return true
	}
	return a.When() == b.When() // comparing firing times is fine
}

// rearmBroken never re-arms after the first firing: a fired handle is
// stale but non-zero.
func rearmBroken(eng *sim.Engine, ev sim.Event) sim.Event {
	if ev.IsZero() { // want `IsZero\(\) gates re-scheduling`
		ev = eng.After(10, func() {})
	}
	return ev
}

// rearmActive is the correct re-arm guard.
func rearmActive(eng *sim.Engine, ev sim.Event) sim.Event {
	if !ev.Active() {
		ev = eng.After(10, func() {})
	}
	return ev
}

// closeBurst is the kernel's documented pattern: IsZero answers "was a
// burst opened", and the handle is explicitly zeroed after cancelling.
func closeBurst(eng *sim.Engine, ev sim.Event) sim.Event {
	if !ev.IsZero() {
		eng.Cancel(ev)
		ev = sim.Event{}
	}
	return ev
}

// resetIfNever assigns the zero handle inside an IsZero guard; nothing is
// scheduled, so nothing is flagged.
func resetIfNever(ev sim.Event) sim.Event {
	if ev.IsZero() {
		ev = sim.Event{}
	}
	return ev
}

// laneRearmBroken shows the same stale-handle bug through a lane: Post and
// PostAfter hand back ordinary sim.Event handles, so an IsZero re-arm
// guard is just as dead as with Engine.After.
func laneRearmBroken(l *sim.Lane, ev sim.Event) sim.Event {
	if ev.IsZero() { // want `IsZero\(\) gates re-scheduling`
		ev = l.PostAfter(10, func() {})
	}
	return ev
}

// laneRearmActive is the correct guard for a lane-resident event.
func laneRearmActive(l *sim.Lane, ev sim.Event) sim.Event {
	if !ev.Active() {
		ev = l.PostAfter(10, func() {})
	}
	return ev
}

func lanePointers(l *sim.Lane) {
	ev := l.Post(10, func() {})
	p := &ev // want `taking the address of a sim\.Event`
	_ = p
}
