// Package eventhandle checks uses of sim.Event, the generation-counted
// handle returned by the engine's scheduling methods. Handles are values:
// the engine recycles the pooled event storage behind them, so the only
// meaningful questions are Active() ("still pending?") and IsZero()
// ("was anything ever scheduled here?"). The analyzer flags the stale
// patterns that the generation counter exists to defuse:
//
//   - storing a *sim.Event (a pointer type in a declaration, or taking
//     &ev): a pointer pins one incarnation of recycled storage and
//     resurrects exactly the stale-handle bugs the design removed.
//   - comparing two handles with == or !=: handle identity says nothing
//     once storage is recycled; ask Active(), or compare the When() values
//     the caller actually cares about.
//   - comparing a handle against the zero literal sim.Event{}: that is
//     IsZero() spelled fragilely.
//   - re-arming guarded by IsZero(): `if ev.IsZero() { ev = eng.After(...) }`
//     never re-arms after the first firing, because a fired handle is
//     stale but non-zero. Use Active(), or zero the handle in the event
//     body (the kernel's burst pattern, documented on Event.IsZero).
package eventhandle

import (
	"go/ast"
	"go/types"

	"lrp/internal/analysis/framework"
)

// Analyzer is the event-handle check.
var Analyzer = &framework.Analyzer{
	Name: "eventhandle",
	Doc:  "check sim.Event handle discipline: no pointers to handles, no identity comparison, Active() vs IsZero()",
	Run:  run,
}

const simPkg = "lrp/internal/sim"

func run(pass *framework.Pass) error {
	// The sim package owns the abstraction and its internals.
	if pass.PkgPath == simPkg {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.IsType() && isEvent(tv.Type.(*types.Pointer).Elem()) {
					pass.Reportf(n.Pos(), "*sim.Event pins recycled event storage and goes stale when the event fires: store the Event handle by value")
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if tv, ok := pass.TypesInfo.Types[n.X]; ok && isEvent(tv.Type) {
						pass.Reportf(n.Pos(), "taking the address of a sim.Event: handles are values; a pointer resurrects stale-handle bugs")
					}
				}
			case *ast.BinaryExpr:
				op := n.Op.String()
				if op != "==" && op != "!=" {
					return true
				}
				xt, xok := pass.TypesInfo.Types[n.X]
				yt, yok := pass.TypesInfo.Types[n.Y]
				if !xok || !yok || !isEvent(xt.Type) || !isEvent(yt.Type) {
					return true
				}
				if isZeroEventLit(pass, n.X) || isZeroEventLit(pass, n.Y) {
					pass.Reportf(n.Pos(), "comparing a sim.Event against the zero literal: use ev.IsZero()")
				} else {
					pass.Reportf(n.Pos(), "comparing sim.Event handles for identity: recycled storage makes identity meaningless; use Active() or compare When()")
				}
			case *ast.IfStmt:
				checkIsZeroRearm(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkIsZeroRearm flags `if ev.IsZero() { ... ev = <schedule> ... }`.
func checkIsZeroRearm(pass *framework.Pass, ifs *ast.IfStmt) {
	call, ok := ifs.Cond.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "IsZero" {
		return
	}
	recvTV, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isEvent(recvTV.Type) {
		return
	}
	recv := types.ExprString(sel.X)
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if types.ExprString(lhs) != recv {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if rhsSchedules(pass, rhs) {
				pass.Reportf(ifs.Pos(), "IsZero() gates re-scheduling of %s, but a fired handle is non-zero and stale, so this never re-arms: use Active(), or zero the handle when the event fires", recv)
				return false
			}
		}
		return true
	})
}

// rhsSchedules reports whether e contains a call returning a sim.Event
// (Engine.At/After or a wrapper).
func rhsSchedules(pass *framework.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[call]; ok && tv.Type != nil && isEvent(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isZeroEventLit matches the composite literal sim.Event{}.
func isZeroEventLit(pass *framework.Pass, e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		e = p.X
	}
	cl, ok := e.(*ast.CompositeLit)
	return ok && len(cl.Elts) == 0
}

// isEvent reports whether t is the named type lrp/internal/sim.Event.
func isEvent(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == simPkg
}
