package eventhandle_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/eventhandle"
)

// TestHandleDiscipline drives the stale-handle checks over testdata posing
// as a sim-core consumer, including the negative cases for the documented
// patterns: value storage, Active() re-arm guards, and the kernel's
// IsZero-then-Cancel burst bookkeeping.
func TestHandleDiscipline(t *testing.T) {
	analysistest.Run(t, eventhandle.Analyzer, "testdata/evhandle", "lrp/internal/core")
}
