// Package hotalloc reports heap-allocating constructs inside functions
// annotated `//lrp:hotpath` (a line in the function's doc comment). The
// annotated set — the sim event loop, the mbuf recycling cycle, the rx
// path, and the pkt append builders — is pinned allocation-free by the
// AllocsPerRun tests and BENCH_core.json; this analyzer catches the
// regression at compile review time instead of at the next bench run.
//
// Flagged inside a hot function:
//
//   - append whose destination is not a parameter of the function.
//     Appending into a caller-provided buffer is the builder contract
//     (the caller sized it; see mbuf.Pool.AllocBuf) — appending to
//     anything else may grow and allocate.
//   - make, new, &T{...}, and slice/map literals: direct allocations.
//   - string(b) / []byte(s) conversions: each copies.
//   - func literals that are not immediately invoked: the closure (and
//     everything it captures) escapes.
//   - interface conversions at call arguments, assignments, and explicit
//     conversions: boxing a concrete value allocates.
//
// Two escapes: a statement that is a direct panic(...) call is cold by
// definition and skipped entirely, and a line carrying
// `//lrp:coldalloc <reason>` waives its findings (used for the amortized
// free-list refill sites, which allocate only on pool miss).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"lrp/internal/analysis/framework"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "report heap allocations (append growth, conversions, closures, boxing) in //lrp:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.HasDirective(fd.Doc, "lrp:hotpath") {
				continue
			}
			params := paramSet(pass, fd)
			check(pass, fd.Body, params)
		}
	}
	return nil
}

// paramSet collects the function's parameter and receiver variables.
func paramSet(pass *framework.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	if fd.Recv != nil {
		addFields(fd.Recv)
	}
	addFields(fd.Type.Params)
	return out
}

// check walks a hot function body, skipping whole panic statements and
// remembering which func literals are invoked on the spot (ast.Inspect
// visits a CallExpr before its Fun, so the set is filled in time).
func check(pass *framework.Pass, body ast.Node, params map[*types.Var]bool) {
	calledNow := map[*ast.FuncLit]bool{}
	extendMake := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isBuiltin(pass, call, "panic") {
				return false // cold by definition
			}
		case *ast.CallExpr:
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				calledNow[fl] = true
			}
			// append(dst, make([]T, n)...) is the zero-fill extension
			// idiom: the compiler recognizes it and allocates nothing
			// when dst has capacity, so the inner make is exempt.
			if isBuiltin(pass, n, "append") && n.Ellipsis.IsValid() && len(n.Args) == 2 {
				if mk, ok := n.Args[1].(*ast.CallExpr); ok && isBuiltin(pass, mk, "make") {
					extendMake[mk] = true
				}
			}
			if extendMake[n] {
				return true
			}
			return checkCall(pass, n, params)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in a hot path")
					return false
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal allocates its backing store in a hot path", kindName(tv.Type))
			}
		case *ast.FuncLit:
			if !calledNow[n] {
				pass.Reportf(n.Pos(), "func literal may escape and allocate (the closure and its captures) in a hot path")
			}
			return false // the literal's own body is a different function
		case *ast.AssignStmt:
			checkBoxingAssign(pass, n)
		}
		return true
	})
}

// checkCall handles the call-shaped checks; it returns false when the
// walk should not descend (the default walker would revisit children).
func checkCall(pass *framework.Pass, call *ast.CallExpr, params map[*types.Var]bool) bool {
	// Type conversions.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type)
		return true
	}
	switch {
	case isBuiltin(pass, call, "append"):
		if len(call.Args) > 0 && !isParamExpr(pass, call.Args[0], params) {
			pass.Reportf(call.Pos(), "append may grow and allocate in a hot path: preallocate capacity, or append into a caller-sized parameter buffer")
		}
		return true
	case isBuiltin(pass, call, "make"):
		pass.Reportf(call.Pos(), "make allocates in a hot path")
		return true
	case isBuiltin(pass, call, "new"):
		pass.Reportf(call.Pos(), "new allocates in a hot path")
		return true
	}
	checkBoxingCall(pass, call)
	return true
}

// checkConversion flags string<->[]byte copies and interface boxing via
// explicit conversion.
func checkConversion(pass *framework.Pass, call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	fromTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	if isString(to) && isByteSlice(from) || isByteSlice(to) && isString(from) {
		pass.Reportf(call.Pos(), "%s(%s) conversion copies in a hot path", kindName(to), kindName(from))
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) {
		pass.Reportf(call.Pos(), "conversion to interface boxes (allocates) in a hot path")
	}
}

// checkBoxingCall flags concrete arguments passed to interface parameters.
func checkBoxingCall(pass *framework.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // []T passed whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing concrete %s to interface parameter boxes (allocates) in a hot path", at.Type.String())
	}
}

// checkBoxingAssign flags assigning a concrete value to an interface
// variable.
func checkBoxingAssign(pass *framework.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt, ok := pass.TypesInfo.Types[lhs]
		if !ok || lt.Type == nil || !types.IsInterface(lt.Type.Underlying()) {
			continue
		}
		rt, ok := pass.TypesInfo.Types[as.Rhs[i]]
		if !ok || rt.Type == nil || rt.IsNil() || types.IsInterface(rt.Type.Underlying()) {
			continue
		}
		pass.Reportf(as.Rhs[i].Pos(), "assigning concrete %s to interface boxes (allocates) in a hot path", rt.Type.String())
	}
}

// isParamExpr reports whether e denotes (a slice of) a parameter or
// receiver variable, e.g. `b` or `b[:n]`. Only direct parameter
// identifiers qualify: appending to a field (even of the receiver) grows
// owned state and must be reported or explicitly waived.
func isParamExpr(pass *framework.Pass, e ast.Expr, params map[*types.Var]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
				return params[v]
			}
			return false
		default:
			return false
		}
	}
}

// isBuiltin matches a direct call to the named builtin.
func isBuiltin(pass *framework.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// kindName prints a type compactly for diagnostics.
func kindName(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if isByteSlice(t) {
			return "[]byte"
		}
		_ = u
		return "slice"
	case *types.Map:
		return "map"
	case *types.Basic:
		return u.Name()
	}
	return t.String()
}
