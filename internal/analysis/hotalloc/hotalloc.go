// Package hotalloc reports heap-allocating constructs inside functions
// annotated `//lrp:hotpath` (a line in the function's doc comment) — and,
// interprocedurally, inside any function reachable from one through the
// program call graph. The annotated set — the sim event loop, the mbuf
// recycling cycle, the rx path, and the pkt append builders — is pinned
// allocation-free by the AllocsPerRun tests and BENCH_core.json; this
// analyzer catches the regression at compile review time instead of at the
// next bench run, including the wrapper loophole where a hot function
// delegates the allocation to a helper.
//
// Flagged inside a hot function or a function it (transitively) calls:
//
//   - append whose destination is not a parameter of the function.
//     Appending into a caller-provided buffer is the builder contract
//     (the caller sized it; see mbuf.Pool.AllocBuf) — appending to
//     anything else may grow and allocate.
//   - make, new, &T{...}, and slice/map literals: direct allocations.
//   - string(b) / []byte(s) conversions: each copies.
//   - func literals that are not immediately invoked: the closure (and
//     everything it captures) escapes.
//   - interface conversions at call arguments, assignments, and explicit
//     conversions: boxing a concrete value allocates.
//
// Transitive findings are reported at the allocation site with the call
// chain from the hot root in the message. Traversal stops at functions
// that are themselves `//lrp:hotpath` (they are their own roots), at
// functions whose doc comment carries `//lrp:coldalloc <reason>` (a
// declared-cold callee: amortized refill, assertion formatting), and at
// call sites inside panic(...) statements (cold by definition). Calls
// through function values and into packages outside the module are not
// traversed — see DESIGN.md §12 for the soundness boundary.
//
// Line escapes are unchanged: a statement that is a direct panic(...)
// call is skipped entirely, and a line carrying `//lrp:coldalloc <reason>`
// waives its findings at any call depth (suppressions span the whole
// program).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lrp/internal/analysis/framework"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "report heap allocations (append growth, conversions, closures, boxing) in //lrp:hotpath functions and everything they transitively call",
	Run:  run,
}

// finding is one allocation site inside a scanned function.
type finding struct {
	pos token.Pos
	msg string
}

// findingCache memoizes per-function scan results across roots and passes
// (a helper reachable from many hot roots is scanned once). Keyed by
// declaration identity, which is stable for the lifetime of a loader.
var findingCache = map[*ast.FuncDecl][]finding{}

func run(pass *framework.Pass) error {
	g := pass.Prog.CallGraph()
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.HasDirective(fd.Doc, "lrp:hotpath") {
				continue
			}
			root, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			// Direct findings first, with the original message shape.
			for _, fnd := range scanFunc(pass.Pkg, pass.TypesInfo, fd) {
				if !reported[fnd.pos] {
					reported[fnd.pos] = true
					pass.Reportf(fnd.pos, "%s", fnd.msg)
				}
			}
			if root == nil {
				continue
			}
			transitive(pass, g, root, reported)
		}
	}
	return nil
}

// transitive walks the call graph from root in depth-first source order,
// reporting the findings of every reachable callee together with the call
// chain that reaches it.
func transitive(pass *framework.Pass, g *framework.CallGraph, root *types.Func, reported map[token.Pos]bool) {
	type frame struct {
		fn    *types.Func
		chain []*types.Func // path from root, excluding root, including fn
	}
	visited := map[*types.Func]bool{root: true}
	var stack []frame
	push := func(from *types.Func, chain []*types.Func) {
		for _, e := range g.Callees(from) {
			if e.InPanic || visited[e.Callee] {
				continue
			}
			fi := g.Info(e.Callee)
			if fi == nil {
				continue // no body in the program (stdlib, interface decl)
			}
			if framework.HasDirective(fi.Decl.Doc, "lrp:hotpath") {
				continue // its own root; reported there without a chain
			}
			if framework.HasDirective(fi.Decl.Doc, "lrp:coldalloc") {
				continue // declared cold at any depth
			}
			visited[e.Callee] = true
			next := append(append([]*types.Func(nil), chain...), e.Callee)
			stack = append(stack, frame{fn: e.Callee, chain: next})
		}
	}
	push(root, nil)
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fi := g.Info(fr.fn)
		for _, fnd := range scanFunc(fi.Pkg.Types, fi.Pkg.TypesInfo, fi.Decl) {
			if reported[fnd.pos] {
				continue
			}
			reported[fnd.pos] = true
			pass.Reportf(fnd.pos, "%s (reached from //lrp:hotpath %s via %s)",
				fnd.msg, framework.ShortName(root), chainString(root, fr.chain))
		}
		push(fr.fn, fr.chain)
	}
}

// chainString renders root -> f -> g for the diagnostic.
func chainString(root *types.Func, chain []*types.Func) string {
	var b strings.Builder
	b.WriteString(framework.ShortName(root))
	for _, fn := range chain {
		b.WriteString(" -> ")
		b.WriteString(framework.ShortName(fn))
	}
	return b.String()
}

// scanner holds the per-function scan context.
type scanner struct {
	pkg      *types.Package
	info     *types.Info
	params   map[*types.Var]bool
	findings []finding
}

func (s *scanner) reportf(pos token.Pos, format string, args ...any) {
	s.findings = append(s.findings, finding{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// scanFunc returns the allocation findings of one function body,
// memoized.
func scanFunc(pkg *types.Package, info *types.Info, fd *ast.FuncDecl) []finding {
	if cached, ok := findingCache[fd]; ok {
		return cached
	}
	s := &scanner{pkg: pkg, info: info, params: paramSet(info, fd)}
	s.check(fd.Body)
	findingCache[fd] = s.findings
	return s.findings
}

// paramSet collects the function's parameter and receiver variables.
func paramSet(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	if fd.Recv != nil {
		addFields(fd.Recv)
	}
	addFields(fd.Type.Params)
	return out
}

// check walks a hot function body, skipping whole panic statements and
// remembering which func literals are invoked on the spot (ast.Inspect
// visits a CallExpr before its Fun, so the set is filled in time).
func (s *scanner) check(body ast.Node) {
	calledNow := map[*ast.FuncLit]bool{}
	extendMake := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && s.isBuiltin(call, "panic") {
				return false // cold by definition
			}
		case *ast.CallExpr:
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				calledNow[fl] = true
			}
			// append(dst, make([]T, n)...) is the zero-fill extension
			// idiom: the compiler recognizes it and allocates nothing
			// when dst has capacity, so the inner make is exempt.
			if s.isBuiltin(n, "append") && n.Ellipsis.IsValid() && len(n.Args) == 2 {
				if mk, ok := n.Args[1].(*ast.CallExpr); ok && s.isBuiltin(mk, "make") {
					extendMake[mk] = true
				}
			}
			if extendMake[n] {
				return true
			}
			return s.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					s.reportf(n.Pos(), "&composite literal allocates in a hot path")
					return false
				}
			}
		case *ast.CompositeLit:
			tv, ok := s.info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				s.reportf(n.Pos(), "%s literal allocates its backing store in a hot path", kindName(tv.Type))
			}
		case *ast.FuncLit:
			if !calledNow[n] {
				s.reportf(n.Pos(), "func literal may escape and allocate (the closure and its captures) in a hot path")
			}
			return false // the literal's own body is a different function
		case *ast.AssignStmt:
			s.checkBoxingAssign(n)
		}
		return true
	})
}

// checkCall handles the call-shaped checks; it returns false when the
// walk should not descend (the default walker would revisit children).
func (s *scanner) checkCall(call *ast.CallExpr) bool {
	// Type conversions.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
		s.checkConversion(call, tv.Type)
		return true
	}
	switch {
	case s.isBuiltin(call, "append"):
		if s.isDeleteIdiom(call) {
			return true // append(s[:i], s[i+1:]...) shifts in place, never grows
		}
		if len(call.Args) > 0 && !s.isParamExpr(call.Args[0]) {
			s.reportf(call.Pos(), "append may grow and allocate in a hot path: preallocate capacity, or append into a caller-sized parameter buffer")
		}
		return true
	case s.isBuiltin(call, "make"):
		s.reportf(call.Pos(), "make allocates in a hot path")
		return true
	case s.isBuiltin(call, "new"):
		s.reportf(call.Pos(), "new allocates in a hot path")
		return true
	}
	s.checkBoxingCall(call)
	return true
}

// checkConversion flags string<->[]byte copies and interface boxing via
// explicit conversion.
func (s *scanner) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	fromTV, ok := s.info.Types[call.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	if isString(to) && isByteSlice(from) || isByteSlice(to) && isString(from) {
		s.reportf(call.Pos(), "%s(%s) conversion copies in a hot path", kindName(to), kindName(from))
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) {
		s.reportf(call.Pos(), "conversion to interface boxes (allocates) in a hot path")
	}
}

// checkBoxingCall flags concrete arguments passed to interface parameters.
func (s *scanner) checkBoxingCall(call *ast.CallExpr) {
	tv, ok := s.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // []T passed whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := s.info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		s.reportf(arg.Pos(), "passing concrete %s to interface parameter boxes (allocates) in a hot path", at.Type.String())
	}
}

// checkBoxingAssign flags assigning a concrete value to an interface
// variable.
func (s *scanner) checkBoxingAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt, ok := s.info.Types[lhs]
		if !ok || lt.Type == nil || !types.IsInterface(lt.Type.Underlying()) {
			continue
		}
		rt, ok := s.info.Types[as.Rhs[i]]
		if !ok || rt.Type == nil || rt.IsNil() || types.IsInterface(rt.Type.Underlying()) {
			continue
		}
		s.reportf(as.Rhs[i].Pos(), "assigning concrete %s to interface boxes (allocates) in a hot path", rt.Type.String())
	}
}

// isDeleteIdiom matches the element-removal shape
// append(s[:i], s[j:]...) where both arguments slice the same base
// expression: the result can never exceed the source length, so the
// backing store is reused and nothing allocates.
func (s *scanner) isDeleteIdiom(call *ast.CallExpr) bool {
	if !call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	src, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return s.sameBase(dst.X, src.X)
}

// sameBase reports whether two expressions are the same side-effect-free
// variable reference: an identifier or a selector chain over one.
func (s *scanner) sameBase(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && s.info.Uses[x] != nil && s.info.Uses[x] == s.info.Uses[y]
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && s.sameBase(x.X, y.X)
	}
	return false
}

// isParamExpr reports whether e denotes (a slice of) a parameter or
// receiver variable, e.g. `b` or `b[:n]`. Only direct parameter
// identifiers qualify: appending to a field (even of the receiver) grows
// owned state and must be reported or explicitly waived.
func (s *scanner) isParamExpr(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := s.info.Uses[x].(*types.Var); ok {
				return s.params[v]
			}
			return false
		default:
			return false
		}
	}
}

// isBuiltin matches a direct call to the named builtin.
func (s *scanner) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := s.info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// kindName prints a type compactly for diagnostics.
func kindName(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if isByteSlice(t) {
			return "[]byte"
		}
		_ = u
		return "slice"
	case *types.Map:
		return "map"
	case *types.Basic:
		return u.Name()
	}
	return t.String()
}
