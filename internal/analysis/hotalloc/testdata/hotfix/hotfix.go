// Package hotfix exercises the hotalloc analyzer: only functions whose doc
// comment carries //lrp:hotpath are checked, and every allocating construct
// inside one is a finding unless waived.
package hotfix

import "fmt"

type stateT struct{ buf []byte }

// builder covers the append and direct-allocation rules.
//
//lrp:hotpath
func builder(dst []byte, n int) []byte {
	dst = append(dst, make([]byte, n)...) // zero-fill extension idiom: exempt
	dst = append(dst[:0], dst...)         // appending into a parameter: exempt
	var local []byte
	local = append(local, dst...) // want `append may grow and allocate`
	_ = local
	buf := make([]byte, n) // want `make allocates`
	_ = buf
	p := new(int) // want `new allocates`
	_ = p
	s := &stateT{} // want `&composite literal allocates`
	_ = s
	sl := []int{1, 2} // want `slice literal allocates`
	_ = sl
	mp := map[string]int{} // want `map literal allocates`
	_ = mp
	return dst
}

// fill appends into owned state, not a parameter: still a finding.
//
//lrp:hotpath
func (s *stateT) fill(b []byte) {
	s.buf = append(s.buf, b...) // want `append may grow and allocate`
}

// convert covers the copying conversions.
//
//lrp:hotpath
func convert(s string, b []byte) (string, []byte) {
	x := string(b) // want `conversion copies`
	y := []byte(s) // want `conversion copies`
	return x, y
}

func sink(v any) { _ = v }

// boxing covers interface conversions at calls, assignments, and explicit
// conversions.
//
//lrp:hotpath
func boxing(n int) {
	sink(n) // want `passing concrete int to interface parameter boxes`
	var i any
	i = n // want `assigning concrete int to interface boxes`
	_ = i
	j := any(n) // want `conversion to interface boxes`
	_ = j
}

// closures: immediately-invoked literals run on the stack; stored ones
// escape with their captures.
//
//lrp:hotpath
func closures(xs []int) int {
	total := 0
	func() { total++ }()
	fn := func() { total += 2 } // want `func literal may escape`
	fn()
	return total
}

// guarded covers the two escapes: panic statements are cold by definition,
// and a line waived with //lrp:coldalloc is accepted.
//
//lrp:hotpath
func guarded(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
	b := make([]byte, n) //lrp:coldalloc refill path, amortized over the pool lifetime
	return b
}

// cold is not annotated: nothing here is checked.
func cold(n int) []byte {
	return append(make([]byte, 0, n), byte(n))
}
