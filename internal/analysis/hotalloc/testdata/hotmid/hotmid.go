// Package hotmid is the middle frame of the hotalloc transitive-test
// chain: allocation-free itself, it forwards from the hot root to the
// allocating leaf (and to the waived shapes that must stay silent).
package hotmid

import "lrp/internal/hotdeep"

// Middle forwards to the leaf: the wrapper loophole the interprocedural
// analysis exists to close.
func Middle(reg *hotdeep.Registry, n int) []int {
	hotdeep.Remove(reg, 0)
	_ = hotdeep.Refill()
	return hotdeep.Grow(n)
}

// OwnRoot is itself a hot root: traversal from other roots stops here
// (its findings are reported against it directly, without a chain).
//
//lrp:hotpath
func OwnRoot() *Registry {
	return &Registry{} // want `&composite literal allocates in a hot path$`
}

// Registry mirrors the leaf type for the own-root check.
type Registry struct {
	n int
}
