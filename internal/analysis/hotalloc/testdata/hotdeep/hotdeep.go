// Package hotdeep is the leaf of the hotalloc transitive-test chain: it
// allocates, three frames below the hot root, and also hosts the shapes
// that must stay silent at depth — the declared-cold helper, the in-place
// deletion idiom, and an allocation reached only through panic.
package hotdeep

// Grow allocates; it is reached from the hot root via two intermediate
// frames, so the diagnostic must carry the full chain.
func Grow(n int) []int {
	return make([]int, n) // want `make allocates in a hot path \(reached from //lrp:hotpath hotroot\.Hot via hotroot\.Hot -> hotmid\.Middle -> hotdeep\.Grow\)`
}

// Refill is declared cold: traversal must stop here, so its make (and
// anything it calls) is never reported.
//
//lrp:coldalloc amortized refill for the transitive fixture
func Refill() []int {
	return make([]int, 64)
}

// Remove uses the append deletion idiom, which shifts within the existing
// backing store and never allocates.
func Remove(reg *Registry, i int) {
	reg.items = append(reg.items[:i], reg.items[i+1:]...)
}

// Registry holds a slice for the deletion-idiom check.
type Registry struct {
	items []int
}

// Fail allocates only inside panic, which is cold by definition.
func Fail(msg string) {
	panic("hotdeep: " + msg)
}
