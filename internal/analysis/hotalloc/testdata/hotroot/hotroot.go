// Package hotroot is the root of the hotalloc transitive-test chain: its
// hot function allocates nothing directly, so every diagnostic it earns
// comes from the call graph.
package hotroot

import (
	"lrp/internal/hotdeep"
	"lrp/internal/hotmid"
)

// Hot is the annotated root; the allocation three frames down in
// hotdeep.Grow is reported with this root's chain.
//
//lrp:hotpath
func Hot(reg *hotdeep.Registry, n int) []int {
	out := hotmid.Middle(reg, n)
	_ = hotmid.OwnRoot()
	return out
}
