package hotalloc_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/hotalloc"
)

// TestHotPathAllocations drives every allocation rule and every escape:
// the zero-fill append idiom, parameter-buffer appends, panic coldness,
// //lrp:coldalloc waivers, and unannotated functions staying unchecked.
func TestHotPathAllocations(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/hotfix", "lrp/internal/core")
}
