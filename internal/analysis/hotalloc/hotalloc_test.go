package hotalloc_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/hotalloc"
)

// TestHotPathAllocations drives every allocation rule and every escape:
// the zero-fill append idiom, parameter-buffer appends, panic coldness,
// //lrp:coldalloc waivers, and unannotated functions staying unchecked.
func TestHotPathAllocations(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/hotfix", "lrp/internal/core")
}

// TestTransitiveAllocations drives the interprocedural sweep across a
// three-package chain: the leaf's make is reported with the full
// root -> mid -> leaf chain, a //lrp:coldalloc doc comment stops
// traversal at any depth, a nested //lrp:hotpath function is its own
// root (no chain), the append deletion idiom is recognized as
// non-allocating, and panic-only allocations stay cold.
func TestTransitiveAllocations(t *testing.T) {
	analysistest.RunProgram(t, hotalloc.Analyzer,
		analysistest.Fixture{Dir: "testdata/hotdeep", Path: "lrp/internal/hotdeep"},
		analysistest.Fixture{Dir: "testdata/hotmid", Path: "lrp/internal/hotmid"},
		analysistest.Fixture{Dir: "testdata/hotroot", Path: "lrp/internal/hotroot"},
	)
}
