// Package kernelco poses as "lrp/internal/kernel" in the determinism
// analyzer's tests: a `go` statement carrying the //lrp:coroutine waiver
// (the kernel's strict-handoff process coroutines) is permitted; a bare
// one is not.
package kernelco

func start(fn func()) {
	go fn() //lrp:coroutine strict channel handoff keeps one goroutine runnable
	go fn() // want `go statement spawns a goroutine`
}
