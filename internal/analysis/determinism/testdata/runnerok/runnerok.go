// Package runnerok poses as "lrp/internal/runner" in the determinism
// analyzer's tests: the experiment sweep's worker pool is the one
// deliberately concurrent package, so none of this is flagged.
package runnerok

import "sync"

func fanOut(jobs []func() int) []int {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out []int
	)
	for _, j := range jobs {
		wg.Add(1)
		go func(fn func() int) {
			defer wg.Done()
			v := fn()
			mu.Lock()
			out = append(out, v)
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return out
}
