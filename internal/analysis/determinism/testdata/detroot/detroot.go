// Package detroot poses as "lrp/internal/core" (a sim-core package) in
// the determinism transitive tests: it is clean in isolation, and every
// diagnostic it triggers points into the helper package it calls.
package detroot

import "lrp/internal/dethelper"

// Record funnels sim-core execution into the helper package; the
// wall-clock and map-order findings are reported at the helper's sites
// with this caller's chain.
func Record() int64 {
	return dethelper.Stamp()
}
