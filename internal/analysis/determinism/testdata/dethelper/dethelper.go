// Package dethelper poses as a module-internal utility package outside
// the sim-core set: its own pass applies only the concurrency rules, so
// the wall-clock read and map iteration below are reportable solely
// through the transitive sweep from a sim-core caller.
package dethelper

import "time"

// sums gives Sum a map to iterate.
var sums = map[string]int{}

// Stamp reads the wall clock and drags Sum into the reachable set: legal
// for a package nothing in sim-core calls, a determinism leak the moment
// one does.
func Stamp() int64 {
	return time.Now().UnixNano() + int64(Sum(sums)) // want `time\.Now reads the wall clock or arms a real timer.*\(reached from sim-core via core\.Record -> dethelper\.Stamp\)`
}

// Sum iterates a map in randomized order, two frames below the sim-core
// caller.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map iterates in randomized order.*\(reached from sim-core via core\.Record -> dethelper\.Stamp -> dethelper\.Sum\)`
		total += v
	}
	return total
}
