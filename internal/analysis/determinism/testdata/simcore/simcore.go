// Package simcore poses as "lrp/internal/core" in the determinism
// analyzer's tests: every rule group applies here.
package simcore

import (
	"math/rand"
	"sync" // want `package imports "sync"`
	"time" // want `sim-core package imports "time"`
)

func clock() int64 {
	t := time.Now()   // want `time\.Now reads the wall clock`
	_ = time.Since(t) // want `time\.Since reads the wall clock`
	return t.UnixNano()
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func roll() int {
	return rand.Intn(6) // want `rand\.Intn uses the shared global generator`
}

// seeded is tolerated: an explicitly seeded private source is
// reproducible, unlike the package-level generator.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

func iterate(m map[string]int, s []int) int {
	total := 0
	for _, v := range m { // want `range over map iterates in randomized order`
		total += v
	}
	for _, v := range s { // slices iterate deterministically
		total += v
	}
	for _, v := range m { //lrp:nolint determinism — summing commutes, order cannot leak
		total += v
	}
	return total
}

func spawn(mu *sync.Mutex, ch chan int) {
	go func() { ch <- 1 }() // want `go statement spawns a goroutine`
	select {                // want `select statement`
	case <-ch:
	default:
	}
	mu.Lock()
}
