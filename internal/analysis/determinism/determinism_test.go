package determinism_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/determinism"
)

// TestSimCoreViolations is the acceptance demonstration: a time.Now (or
// timer, global rand, map range, goroutine, select) introduced into a
// sim-core package such as internal/core fails the build.
func TestSimCoreViolations(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/simcore", "lrp/internal/core")
}

// TestRunnerConcurrencyAllowed pins the allowlist: the experiment runner's
// worker-pool goroutines and sync primitives are not findings.
func TestRunnerConcurrencyAllowed(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/runnerok", "lrp/internal/runner")
}

// TestKernelCoroutineWaiver pins the one sanctioned go statement form:
// kernel coroutines annotated //lrp:coroutine pass, bare ones fail.
func TestKernelCoroutineWaiver(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/kernelco", "lrp/internal/kernel")
}
