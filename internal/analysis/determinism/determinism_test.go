package determinism_test

import (
	"testing"

	"lrp/internal/analysis/analysistest"
	"lrp/internal/analysis/determinism"
)

// TestSimCoreViolations is the acceptance demonstration: a time.Now (or
// timer, global rand, map range, goroutine, select) introduced into a
// sim-core package such as internal/core fails the build.
func TestSimCoreViolations(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/simcore", "lrp/internal/core")
}

// TestTransitiveHelpers drives the interprocedural sweep: a helper
// package outside the sim-core set is held to the wall-clock and
// map-order rules once a sim-core function reaches it, and the findings
// carry the call chain from the sim-core root.
func TestTransitiveHelpers(t *testing.T) {
	analysistest.RunProgram(t, determinism.Analyzer,
		analysistest.Fixture{Dir: "testdata/dethelper", Path: "lrp/internal/dethelper"},
		analysistest.Fixture{Dir: "testdata/detroot", Path: "lrp/internal/core"},
	)
}

// TestRunnerConcurrencyAllowed pins the allowlist: the experiment runner's
// worker-pool goroutines and sync primitives are not findings.
func TestRunnerConcurrencyAllowed(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/runnerok", "lrp/internal/runner")
}

// TestKernelCoroutineWaiver pins the one sanctioned go statement form:
// kernel coroutines annotated //lrp:coroutine pass, bare ones fail.
func TestKernelCoroutineWaiver(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/kernelco", "lrp/internal/kernel")
}
