// Package determinism enforces the repository's reproducibility invariant:
// simulation results must be a pure function of configuration and seed.
// PAPER.md's four-architecture comparison is only meaningful because every
// run replays identical load; one wall-clock read or one map-ordered event
// emission silently breaks that.
//
// Inside the sim-core packages the analyzer forbids:
//
//   - wall-clock time: any import of "time" and any call to its clock or
//     timer constructors (time.Now, time.Since, time.NewTimer, ...). The
//     simulation advances time only through sim.Engine.
//   - global math/rand state: package-level generator functions
//     (rand.Intn, rand.Seed, ...). Explicitly seeded sources are the
//     repo's own sim.Rand; math/rand.New is tolerated for interop.
//   - map iteration: every range over a map, because Go randomizes
//     iteration order per run. Iterate a deterministic slice instead, or
//     sort the keys first.
//
// Across all internal packages (not just sim-core) it forbids goroutine
// creation, select statements, and imports of sync or sync/atomic, with
// two escapes: lrp/internal/runner (the experiment sweep worker pool —
// the one deliberately concurrent package) is allowlisted wholesale, and
// the kernel may mark a `go` statement with `//lrp:coroutine` for its
// strict-handoff process coroutines, which keep exactly one goroutine
// runnable at a time and are therefore deterministic.
//
// The wall-clock, global-rand, and map-iteration bans are also enforced
// transitively: a helper outside the sim-core set that is reachable (via
// the program call graph) from a sim-core function is held to the same
// rules, and the finding is reported at the offending site with the call
// chain from sim-core. Without this, moving `time.Now()` into a helper
// package would silence the analyzer while still poisoning the results.
// Reachability stops at lrp/internal/runner (allowlisted wholesale: the
// sweep scheduler legitimately times and shuffles work across real
// goroutines) and does not cross dynamic calls — see DESIGN.md §12.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lrp/internal/analysis/framework"
)

// Analyzer is the determinism check.
var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time, global math/rand, map iteration, and unmanaged concurrency in simulation code",
	Run:  run,
}

// simCore lists the packages that execute inside a simulation run. Code
// here feeds event scheduling or experiment output, so all four rule
// groups apply.
var simCore = map[string]bool{
	"lrp/internal/sim":    true,
	"lrp/internal/core":   true,
	"lrp/internal/kernel": true,
	"lrp/internal/netsim": true,
	"lrp/internal/nic":    true,
	"lrp/internal/tcp":    true,
	"lrp/internal/demux":  true,
	"lrp/internal/mbuf":   true,
	"lrp/internal/pkt":    true,
	"lrp/internal/ipv4":   true,
	"lrp/internal/socket": true,
	"lrp/internal/fault":  true,
	"lrp/internal/smp":    true,
	"lrp/internal/topo":   true,
	"lrp/internal/pop":    true,
}

// concurrencyAllowed lists packages exempt from the goroutine/sync rules.
var concurrencyAllowed = map[string]bool{
	"lrp/internal/runner": true,
}

// coroutinePkg is the only package whose `go` statements may carry the
// //lrp:coroutine waiver: the kernel's simulated processes are goroutines
// driven by strict channel handoff (exactly one runnable at any instant).
const coroutinePkg = "lrp/internal/kernel"

// bannedTime are the "time" package functions that read the wall clock or
// create real timers.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedRand are the math/rand (and math/rand/v2) package-level functions
// backed by the shared global generator.
var bannedRand = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func run(pass *framework.Pass) error {
	core := simCore[pass.PkgPath]
	internal := strings.HasPrefix(pass.PkgPath, "lrp/internal/")
	checkConc := (core || internal) && !concurrencyAllowed[pass.PkgPath]
	if !core && !checkConc {
		return nil
	}
	if core {
		transitive(pass)
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "time":
				if core {
					pass.Reportf(imp.Pos(), "sim-core package imports %q: simulation layers must use sim.Time and the engine clock, never the wall clock", path)
				}
			case "sync", "sync/atomic":
				if checkConc {
					pass.Reportf(imp.Pos(), "package imports %q: the simulation is single-threaded by construction; only internal/runner may synchronize", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !checkConc {
					return true
				}
				if pass.PkgPath == coroutinePkg && pass.LineDirective(n.Pos(), "lrp:coroutine") {
					return true
				}
				pass.Reportf(n.Pos(), "go statement spawns a goroutine: simulation code is single-threaded (kernel coroutines must carry //lrp:coroutine)")
			case *ast.SelectStmt:
				if checkConc {
					pass.Reportf(n.Pos(), "select statement: simulation code is single-threaded by construction")
				}
			case *ast.SelectorExpr:
				if !core {
					return true
				}
				pkgName, ok := selectorPackage(pass, n)
				if !ok {
					return true
				}
				switch pkgName {
				case "time":
					if bannedTime[n.Sel.Name] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock or arms a real timer: use the sim.Engine clock (Now/At/After)", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if bannedRand[n.Sel.Name] {
						pass.Reportf(n.Pos(), "%s.%s uses the shared global generator: use an explicitly seeded sim.Rand", pkgName, n.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				if !core {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "range over map iterates in randomized order: iterate a deterministic slice or sort the keys first")
				}
			}
			return true
		})
	}
	return nil
}

// selectorPackage resolves sel's qualifier to an imported package path,
// reporting ok=false for ordinary field/method selectors.
func selectorPackage(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// finding is one sim-core-rule violation inside a helper function.
type finding struct {
	pos token.Pos
	msg string
}

// findingCache memoizes helper scans across roots and passes, keyed by
// declaration identity (stable for the lifetime of a loader).
var findingCache = map[*ast.FuncDecl][]finding{}

// transitive applies the sim-core time/rand/map-order rules to every
// module-internal helper reachable from a function declared in this
// sim-core package, reporting at the helper's offending site with the
// call chain from the root.
func transitive(pass *framework.Pass) {
	g := pass.Prog.CallGraph()
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if root == nil {
				continue
			}
			type frame struct {
				fn    *types.Func
				chain []*types.Func
			}
			visited := map[*types.Func]bool{root: true}
			var stack []frame
			push := func(from *types.Func, chain []*types.Func) {
				for _, e := range g.Callees(from) {
					if visited[e.Callee] {
						continue
					}
					fi := g.Info(e.Callee)
					if fi == nil {
						continue // no body in the program (stdlib)
					}
					// Sim-core packages are checked by their own pass;
					// runner is allowlisted; non-module code is out of
					// scope.
					if simCore[fi.Pkg.Path] || concurrencyAllowed[fi.Pkg.Path] ||
						!strings.HasPrefix(fi.Pkg.Path, "lrp/") {
						continue
					}
					visited[e.Callee] = true
					next := append(append([]*types.Func(nil), chain...), e.Callee)
					stack = append(stack, frame{fn: e.Callee, chain: next})
				}
			}
			push(root, nil)
			for len(stack) > 0 {
				fr := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				fi := g.Info(fr.fn)
				for _, fnd := range scanHelper(fi) {
					if reported[fnd.pos] {
						continue
					}
					reported[fnd.pos] = true
					pass.Reportf(fnd.pos, "%s (reached from sim-core via %s)",
						fnd.msg, chainString(root, fr.chain))
				}
				push(fr.fn, fr.chain)
			}
		}
	}
}

// chainString renders root -> f -> g for the diagnostic.
func chainString(root *types.Func, chain []*types.Func) string {
	s := framework.ShortName(root)
	for _, fn := range chain {
		s += " -> " + framework.ShortName(fn)
	}
	return s
}

// scanHelper collects the sim-core-rule violations (banned time/rand
// selectors, map iteration) in one helper body, memoized.
func scanHelper(fi *framework.FuncInfo) []finding {
	if cached, ok := findingCache[fi.Decl]; ok {
		return cached
	}
	var out []finding
	info := fi.Pkg.TypesInfo
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pn.Imported().Path(); path {
			case "time":
				if bannedTime[n.Sel.Name] {
					out = append(out, finding{n.Pos(), fmt.Sprintf(
						"time.%s reads the wall clock or arms a real timer: use the sim.Engine clock (Now/At/After)", n.Sel.Name)})
				}
			case "math/rand", "math/rand/v2":
				if bannedRand[n.Sel.Name] {
					out = append(out, finding{n.Pos(), fmt.Sprintf(
						"%s.%s uses the shared global generator: use an explicitly seeded sim.Rand", path, n.Sel.Name)})
				}
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				out = append(out, finding{n.Pos(),
					"range over map iterates in randomized order: iterate a deterministic slice or sort the keys first"})
			}
		}
		return true
	})
	findingCache[fi.Decl] = out
	return out
}
