// Package lrplint bundles the repository's analyzers into one runnable
// suite, shared by cmd/lrplint and the analyzer tests. Besides the plain
// text mode it provides a JSON output mode, a baseline mechanism (CI fails
// on findings not present in a checked-in baseline, so waived legacy
// findings are tracked instead of hidden), and a -why debug verb that
// prints call-graph paths from //lrp:hotpath roots to a named function.
package lrplint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lrp/internal/analysis/determinism"
	"lrp/internal/analysis/eventhandle"
	"lrp/internal/analysis/framework"
	"lrp/internal/analysis/hotalloc"
	"lrp/internal/analysis/mbufown"
	"lrp/internal/analysis/stepfn"
	"lrp/internal/analysis/stepreq"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		determinism.Analyzer,
		mbufown.Analyzer,
		eventhandle.Analyzer,
		hotalloc.Analyzer,
		stepfn.Analyzer,
		stepreq.Analyzer,
	}
}

// Options controls one suite run.
type Options struct {
	// JSON emits findings as a JSON array (the same schema the baseline
	// file uses) instead of one text line per finding.
	JSON bool
	// Baseline is the path of a baseline file; when set, findings matching
	// a baseline entry are reported but do not count toward the exit
	// status, so CI fails only on new findings.
	Baseline string
}

// Finding is one diagnostic in the JSON/baseline schema. File is
// module-relative so baselines survive checkouts at different paths; Line
// and Col are informational and ignored by baseline matching (edits above
// a waived finding must not un-waive it).
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// key is the baseline identity of a finding: position-independent.
func (f Finding) key() string { return f.Analyzer + "\x00" + f.File + "\x00" + f.Message }

// Run loads the packages matched by patterns (relative to the module
// containing dir), applies the suite, and writes diagnostics to w. It
// returns the number of findings that count toward failure (all findings,
// minus baselined ones when a baseline is configured).
func Run(dir string, patterns []string, w io.Writer, opts Options) (int, error) {
	loader, err := framework.NewLoader(dir)
	if err != nil {
		return 0, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	prog := framework.NewProgram(pkgs, loader.Loaded())
	diags, err := framework.Run(prog, Analyzers())
	if err != nil {
		return 0, err
	}
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(loader.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		findings = append(findings, Finding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}

	// Baseline matching is a multiset: N baseline entries with one key
	// absorb at most N findings with that key; extras are new.
	newCount := len(findings)
	baselined := map[int]bool{}
	if opts.Baseline != "" {
		allowance, err := loadBaseline(opts.Baseline)
		if err != nil {
			return 0, err
		}
		newCount = 0
		for i, f := range findings {
			if allowance[f.key()] > 0 {
				allowance[f.key()]--
				baselined[i] = true
			} else {
				newCount++
			}
		}
	}

	if opts.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return 0, err
		}
		return newCount, nil
	}
	for i, f := range findings {
		suffix := ""
		if baselined[i] {
			suffix = " (baselined)"
		}
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]%s\n", f.File, f.Line, f.Col, f.Message, f.Analyzer, suffix)
	}
	return newCount, nil
}

// loadBaseline reads a baseline file (the -json output format) into a
// key -> count allowance map.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []Finding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	out := map[string]int{}
	for _, e := range entries {
		out[e.key()]++
	}
	return out, nil
}

// Why prints, for every //lrp:hotpath root that reaches it, one shortest
// call-graph path to each function whose name matches symbol — the triage
// companion to hotalloc's transitive diagnostics. symbol matches by
// suffix against names of the form "pkg.Func" and "pkg.(*Recv).Method"
// (e.g. "sendFrags", "core.sendFrags", "(*Host).sendFrags").
func Why(dir string, symbol string, patterns []string, w io.Writer) error {
	loader, err := framework.NewLoader(dir)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	prog := framework.NewProgram(pkgs, loader.Loaded())
	g := prog.CallGraph()

	var targets []*types.Func
	for _, fi := range g.Funcs() {
		name := framework.ShortName(fi.Fn)
		if name == symbol || strings.HasSuffix(name, "."+symbol) || strings.Contains(name, symbol) {
			targets = append(targets, fi.Fn)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no function in the loaded program matches %q", symbol)
	}
	var roots []*framework.FuncInfo
	for _, fi := range g.Funcs() {
		if framework.HasDirective(fi.Decl.Doc, "lrp:hotpath") {
			roots = append(roots, fi)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return framework.ShortName(roots[i].Fn) < framework.ShortName(roots[j].Fn)
	})
	for _, target := range targets {
		fmt.Fprintf(w, "%s:\n", framework.ShortName(target))
		found := 0
		for _, root := range roots {
			path := g.PathFrom(root.Fn, target)
			if path == nil {
				continue
			}
			found++
			line := framework.ShortName(root.Fn)
			for _, e := range path {
				line += " -> " + framework.ShortName(e.Callee)
			}
			fmt.Fprintf(w, "  %s\n", line)
		}
		if found == 0 {
			fmt.Fprintf(w, "  (unreachable from any //lrp:hotpath root)\n")
		}
	}
	return nil
}
