// Package lrplint bundles the repository's analyzers into one runnable
// suite, shared by cmd/lrplint and the analyzer tests.
package lrplint

import (
	"fmt"
	"io"

	"lrp/internal/analysis/determinism"
	"lrp/internal/analysis/eventhandle"
	"lrp/internal/analysis/framework"
	"lrp/internal/analysis/hotalloc"
	"lrp/internal/analysis/mbufown"
	"lrp/internal/analysis/stepfn"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		determinism.Analyzer,
		mbufown.Analyzer,
		eventhandle.Analyzer,
		hotalloc.Analyzer,
		stepfn.Analyzer,
	}
}

// Run loads the packages matched by patterns (relative to the module
// containing dir), applies the suite, and writes diagnostics to w. It
// returns the number of findings.
func Run(dir string, patterns []string, w io.Writer) (int, error) {
	loader, err := framework.NewLoader(dir)
	if err != nil {
		return 0, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	diags, err := framework.Run(pkgs, Analyzers())
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags), nil
}
