package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path ("lrp/internal/sim")
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // non-test files, sorted by filename
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of the enclosing module from
// source. Packages inside the module are resolved by mapping their import
// path onto a directory; standard-library imports are type-checked from
// GOROOT source via go/importer's "source" compiler mode, which needs no
// pre-built export data and no network. Third-party imports are
// unsupported — the module has none, by construction.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every module-internal package the loader has parsed and
// type-checked so far — the requested patterns plus their module
// dependencies pulled in by imports — sorted by import path. Standard
// library packages are not included (they are type-checked without
// retaining syntax).
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else is delegated to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of one directory as
// the package with the given import path. The path need not correspond to
// the directory's real location — analyzer tests use this to check testdata
// under an assumed identity such as "lrp/internal/core".
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, "_") || strings.HasPrefix(n, ".") {
			continue
		}
		// Honor //go:build constraints and GOOS/GOARCH filename suffixes so
		// mutually exclusive files (e.g. race_on.go / race_off.go) don't both
		// land in one type-check unit.
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Load expands patterns ("./...", "./internal/sim", "lrp/internal/sim", a
// directory path) relative to the module root and loads every matched
// package. Directories named testdata, hidden directories, and directories
// with no non-test Go files are skipped during ... expansion.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walkGoDirs(l.ModuleDir, add)
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if strings.HasPrefix(base, l.ModulePath) {
				base = "." + strings.TrimPrefix(base, l.ModulePath)
			}
			walkGoDirs(filepath.Join(l.ModuleDir, base), add)
		case pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/"):
			add(filepath.Join(l.ModuleDir, strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")))
		default:
			abs := pat
			if !filepath.IsAbs(pat) {
				abs = filepath.Join(l.ModuleDir, pat)
			}
			add(abs)
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkGoDirs calls add for every directory under root that contains at
// least one non-test Go file.
func walkGoDirs(root string, add func(string)) {
	filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			n := d.Name()
			if n == "testdata" || (len(n) > 1 && (strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_"))) {
				return filepath.SkipDir
			}
			return nil
		}
		n := d.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
			!strings.HasPrefix(n, "_") && !strings.HasPrefix(n, ".") {
			add(filepath.Dir(p))
		}
		return nil
	})
}
