// Package framework is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast and go/types. The container this repository grows in has no module
// proxy access, so the real x/tools cannot be vendored; this package
// reproduces the small slice of its API that the lrplint analyzers need:
// an Analyzer descriptor, a per-package Pass with syntax + type
// information, and position-sorted diagnostics.
//
// Suppression: a diagnostic is dropped when the source line it points at
// carries a `//lrp:nolint` comment (optionally naming the analyzers it
// silences, comma- or space-separated), or — for the hotalloc analyzer
// only — a `//lrp:coldalloc <reason>` comment marking a deliberate,
// amortized or cold allocation site. Waivers are greppable by design:
// every exception to an invariant is written in the source it excuses.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the check against one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring analysis.Pass. Prog is the whole-program view shared by every
// pass of one run: interprocedural analyzers reach the call graph (and the
// ASTs of dependency packages) through it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info
	Prog      *Program

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each of the program's packages and returns
// the surviving diagnostics sorted by position. Suppressed findings
// (nolint/coldalloc lines) are filtered out before sorting; the
// suppression set spans the whole program, so a waiver in a callee's
// package also silences interprocedural findings that point there.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := suppressionSet{}
	for _, pkg := range prog.All {
		sup.scan(pkg)
	}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			var out []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.TypesInfo,
				Prog:      prog,
				diags:     &out,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range out {
				if !sup.suppressed(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppressionSet maps file:line to the analyzer names waived there; the
// empty name set means "all analyzers".
type suppressionSet map[string]map[string]bool

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

func (s suppressionSet) suppressed(analyzer string, pos token.Position) bool {
	names, ok := s[key(pos.Filename, pos.Line)]
	if !ok {
		return false
	}
	return len(names) == 0 || names[analyzer]
}

// scan adds a package's waiver directives to the set.
func (out suppressionSet) scan(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				line := pkg.Fset.Position(c.Pos()).Line
				file := pkg.Fset.Position(c.Pos()).Filename
				switch {
				case strings.HasPrefix(text, "lrp:nolint"):
					rest := strings.TrimPrefix(text, "lrp:nolint")
					names := map[string]bool{}
					for _, n := range strings.FieldsFunc(rest, func(r rune) bool {
						return r == ',' || r == ' ' || r == '\t'
					}) {
						names[n] = true
					}
					out[key(file, line)] = names
				case strings.HasPrefix(text, "lrp:coldalloc"):
					out[key(file, line)] = map[string]bool{"hotalloc": true}
				}
			}
		}
	}
}

// HasDirective reports whether cg contains a comment line whose text,
// after the comment marker, starts with the given directive (e.g.
// "lrp:hotpath"). Directive comments have no space after // — exactly the
// form ast.CommentGroup.Text strips — so this inspects the raw list.
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// LineDirective reports whether any comment beginning on the same source
// line as pos starts with the given directive.
func (p *Pass) LineDirective(pos token.Pos, directive string) bool {
	target := p.Fset.Position(pos)
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename != target.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if p.Fset.Position(c.Pos()).Line != target.Line {
					continue
				}
				text := strings.TrimPrefix(c.Text, "//")
				if text == directive || strings.HasPrefix(text, directive+" ") {
					return true
				}
			}
		}
	}
	return false
}
