package framework

// Interprocedural support: a Program bundles every package loaded for one
// analysis run and lazily builds a whole-program call graph over the typed
// ASTs. The graph is CHA/RTA-style: static calls and method calls resolve
// directly from go/types object identity; calls through an interface
// method expand to the matching concrete method of every named type in the
// loaded program whose method set implements that interface. Calls through
// function values (fields, parameters, closures) and reflection are not
// resolved — this is the documented unsoundness (DESIGN.md §12); the
// protocols those values implement (kernel.StepFn) get their own dedicated
// path-sensitive analyzer instead.
//
// The graph is built once per Program and memoized; analyzers share it
// through Pass.Prog as a read-only fact store.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view of one analysis run. Pkgs are the
// packages under analysis (whose passes report diagnostics); All is the
// analysis universe — Pkgs plus every module-internal dependency the
// loader pulled in — over which the call graph and cross-package
// suppressions are computed.
type Program struct {
	Pkgs []*Package
	All  []*Package

	graph *CallGraph
}

// NewProgram builds a Program. all may be nil, in which case the universe
// is just pkgs.
func NewProgram(pkgs, all []*Package) *Program {
	if all == nil {
		all = pkgs
	}
	return &Program{Pkgs: pkgs, All: all}
}

// FuncInfo ties a function object to its declaration and home package.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Edge is one resolved call: Caller invokes Callee at Site.
type Edge struct {
	Site   token.Pos
	Caller *types.Func
	Callee *types.Func
	// InPanic marks a call lexically inside a panic(...) statement or its
	// arguments: cold by definition, so allocation analyses skip it.
	InPanic bool
	// ViaIface marks an edge produced by interface method-set expansion
	// rather than static resolution (a may-call, not a must-call).
	ViaIface bool
}

// CallGraph is the memoized whole-program call graph.
type CallGraph struct {
	funcs []*FuncInfo // deterministic order: by package path, then position
	info  map[*types.Func]*FuncInfo
	out   map[*types.Func][]Edge

	namedTypes []*types.Named                // concrete named types in the program
	implCache  map[*types.Func][]*types.Func // interface method -> concrete methods
}

// CallGraph returns the program's call graph, building it on first use.
// The build is single-threaded, like everything in this framework.
func (p *Program) CallGraph() *CallGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p.All)
	}
	return p.graph
}

// Funcs lists every function and method with a body in the program, in
// deterministic order.
func (g *CallGraph) Funcs() []*FuncInfo { return g.funcs }

// Info returns the declaration record for fn, or nil when fn has no body
// in the loaded program (stdlib, interface methods).
func (g *CallGraph) Info(fn *types.Func) *FuncInfo { return g.info[fn] }

// Callees returns fn's outgoing edges in source order.
func (g *CallGraph) Callees(fn *types.Func) []Edge { return g.out[fn] }

// ShortName renders fn compactly for diagnostics: pkgname.Func or
// pkgname.(*Recv).Method.
func ShortName(fn *types.Func) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		recv := ""
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
			recv = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			recv += named.Obj().Name()
		} else {
			recv += rt.String()
		}
		name = "(" + recv + ")." + name
	}
	if fn.Pkg() != nil {
		if i := strings.LastIndex(fn.Pkg().Path(), "/"); i >= 0 {
			return fn.Pkg().Path()[i+1:] + "." + name
		}
		return fn.Pkg().Path() + "." + name
	}
	return name
}

// PathFrom returns a shortest call path (as edges) from root to target, or
// nil when target is unreachable from root. Deterministic: ties break in
// edge (source) order.
func (g *CallGraph) PathFrom(root, target *types.Func) []Edge {
	if root == target {
		return []Edge{}
	}
	prev := map[*types.Func]Edge{}
	queue := []*types.Func{root}
	seen := map[*types.Func]bool{root: true}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.out[fn] {
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			prev[e.Callee] = e
			if e.Callee == target {
				var path []Edge
				for at := target; at != root; {
					e := prev[at]
					path = append([]Edge{e}, path...)
					at = e.Caller
				}
				return path
			}
			queue = append(queue, e.Callee)
		}
	}
	return nil
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		info:      map[*types.Func]*FuncInfo{},
		out:       map[*types.Func][]Edge{},
		implCache: map[*types.Func][]*types.Func{},
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	// Index every declared function/method with a body.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				g.info[fn] = fi
				g.funcs = append(g.funcs, fi)
			}
		}
		// Concrete named types for interface dispatch resolution.
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}
	// Edges. Calls inside nested function literals are attributed to the
	// enclosing declared function: the literal may run later, but it is
	// still code the caller put in motion.
	for _, fi := range g.funcs {
		g.addEdges(fi)
	}
	return g
}

// addEdges walks one function body collecting call edges, tracking whether
// the walk is inside a panic(...) statement.
func (g *CallGraph) addEdges(fi *FuncInfo) {
	var walk func(n ast.Node, inPanic bool)
	walk = func(n ast.Node, inPanic bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := fi.Pkg.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					for _, a := range call.Args {
						walk(a, true)
					}
					return false
				}
			}
			g.resolveCall(fi, call, inPanic)
			return true
		})
	}
	walk(fi.Decl.Body, false)
}

// resolveCall records the edge(s) for one call expression.
func (g *CallGraph) resolveCall(fi *FuncInfo, call *ast.CallExpr, inPanic bool) {
	info := fi.Pkg.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	add := func(callee *types.Func, viaIface bool) {
		g.out[fi.Fn] = append(g.out[fi.Fn], Edge{
			Site: call.Pos(), Caller: fi.Fn, Callee: callee,
			InPanic: inPanic, ViaIface: viaIface,
		})
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			add(fn, false)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if recvIface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				for _, impl := range g.implementations(m, recvIface) {
					add(impl, true)
				}
				return
			}
			add(m, false)
			return
		}
		// Package-qualified function: pkg.F().
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			add(fn, false)
		}
	}
	// Anything else (call of a function value, index expression, ...) is a
	// dynamic call the graph does not resolve.
}

// implementations returns the concrete methods that a call to interface
// method m (on iface) may dispatch to, restricted to types declared in the
// loaded program. Memoized per interface method.
func (g *CallGraph) implementations(m *types.Func, iface *types.Interface) []*types.Func {
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range g.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			// Only methods with bodies in the program are useful targets.
			if g.info[fn] != nil {
				impls = append(impls, fn)
			}
		}
	}
	g.implCache[m] = impls
	return impls
}
