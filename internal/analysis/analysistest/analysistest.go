// Package analysistest runs one analyzer over a testdata package and
// checks its diagnostics against expectations written in the sources,
// mirroring the golang.org/x/tools analysistest convention:
//
//	time.Now() // want `time\.Now`
//
// A `// want` comment holds one or more backquoted or double-quoted
// regular expressions; each must match exactly one diagnostic reported on
// that line, in order. Lines without a want comment must produce no
// diagnostics. The testdata directory is loaded under an assumed import
// path, so a fixture can pose as a sim-core package ("lrp/internal/core")
// or as the allowlisted runner ("lrp/internal/runner") to exercise
// path-sensitive rules; fixture imports of real module packages (sim,
// mbuf) resolve against the real tree.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lrp/internal/analysis/framework"
)

// expectation is one want pattern awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads dir as a package with import path pkgpath, applies the
// analyzer, and reports any mismatch between diagnostics and the
// `// want` expectations as test errors.
func Run(t *testing.T, a *framework.Analyzer, dir, pkgpath string) {
	t.Helper()
	RunProgram(t, a, Fixture{Dir: dir, Path: pkgpath})
}

// Fixture names one testdata directory and the import path it poses as.
type Fixture struct {
	Dir  string
	Path string
}

// RunProgram loads several fixture directories as one program — in the
// given order, so an earlier fixture can be imported by a later one under
// its assumed path — applies the analyzer to every package, and checks
// the union of diagnostics against the `// want` expectations of all
// fixtures. This is how interprocedural analyzers are tested: the call
// chain can cross fixture-package boundaries.
func RunProgram(t *testing.T, a *framework.Analyzer, fixtures ...Fixture) {
	t.Helper()
	if len(fixtures) == 0 {
		t.Fatal("no fixtures")
	}
	loader, err := framework.NewLoader(fixtures[0].Dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	var pkgs []*framework.Package
	for _, fx := range fixtures {
		pkg, err := loader.LoadDir(fx.Dir, fx.Path)
		if err != nil {
			t.Fatalf("load %s as %s: %v", fx.Dir, fx.Path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := framework.NewProgram(pkgs, loader.Loaded())
	diags, err := framework.Run(prog, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	var expects []*expectation
	for _, pkg := range pkgs {
		exp, err := parseWants(pkg)
		if err != nil {
			t.Fatalf("parse expectations: %v", err)
		}
		expects = append(expects, exp...)
	}
	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmet expectation matching the diagnostic.
func claim(expects []*expectation, d framework.Diagnostic) bool {
	for _, e := range expects {
		if e.met || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.met = true
			return true
		}
	}
	return false
}

// parseWants extracts `// want` expectations from every comment in the
// package, keyed to the line the comment sits on.
func parseWants(pkg *framework.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parsePatterns(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want payload into its quoted regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in want: %s", s)
			}
			lit = s[1 : 1+end]
			s = s[2+end:]
		case '"':
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in want: %s", s)
			}
			q := s[:end+2]
			var err error
			lit, err = strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", q, err)
			}
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted: %s", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(s)
	}
	return out, nil
}
