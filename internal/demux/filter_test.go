package demux

import (
	"testing"

	"lrp/internal/pkt"
)

func udpTo(port uint16) []byte {
	return pkt.UDPPacket(cli, srv, 999, port, 1, 64, []byte("x"), true)
}

func tcpTo(port uint16) []byte {
	h := pkt.TCPHeader{SrcPort: 999, DstPort: port, Flags: pkt.TCPAck, Window: 100}
	return pkt.TCPSegment(cli, srv, &h, 1, 64, nil)
}

func TestUDPPortFilterMatches(t *testing.T) {
	p := CompileUDPPortFilter(7)
	if !p.Run(udpTo(7)) {
		t.Fatal("filter rejected matching packet")
	}
	if p.Run(udpTo(8)) {
		t.Fatal("filter accepted wrong port")
	}
	if p.Run(tcpTo(7)) {
		t.Fatal("UDP filter accepted TCP packet")
	}
}

func TestTCPPortFilterMatches(t *testing.T) {
	p := CompileTCPPortFilter(80)
	if !p.Run(tcpTo(80)) {
		t.Fatal("filter rejected matching packet")
	}
	if p.Run(udpTo(80)) {
		t.Fatal("TCP filter accepted UDP packet")
	}
}

func TestFilterRejectsFragments(t *testing.T) {
	p := CompileUDPPortFilter(7)
	b := udpTo(7)
	ih, _, _ := pkt.DecodeIPv4(b)
	ih.FragOff = 10
	pkt.EncodeIPv4(b, &ih)
	if p.Run(b) {
		t.Fatal("filter accepted a non-first fragment")
	}
}

func TestFilterRejectsShortPackets(t *testing.T) {
	p := CompileUDPPortFilter(7)
	if p.Run([]byte{0x45, 0x00}) {
		t.Fatal("filter accepted a truncated packet")
	}
	if p.Run(nil) {
		t.Fatal("filter accepted an empty packet")
	}
}

func TestMalformedProgramTerminates(t *testing.T) {
	// An infinite jump loop must hit the step bound, not hang.
	p := Program{{Op: OpJEQ, K: 0, Jt: 0, Jf: 0}} // pc stays in range? pc++ runs off the end
	loop := Program{
		{Op: OpLDB, K: 0},
		{Op: OpJEQ, K: 0x45, Jt: 0xfe, Jf: 0xfe}, // wild jumps
	}
	_ = p.Run([]byte{0x45})
	_ = loop.Run([]byte{0x45})
	// Reaching here without hanging is the assertion; also check step cap.
	self := make(Program, 0, 8)
	self = append(self, Insn{Op: OpLDB, K: 0})
	ok, steps := self.exec([]byte{1})
	if ok || steps == 0 {
		t.Fatalf("exec: ok=%v steps=%d", ok, steps)
	}
}

func TestFilterTableLinearScanCost(t *testing.T) {
	ft := NewFilterTable[int]()
	for i := 0; i < 50; i++ {
		ft.Bind(CompileUDPPortFilter(uint16(1000+i)), i)
	}
	// Matching the last filter costs ~50x the first: the linear-scan
	// weakness of interpreted filter demux.
	_, ok, stepsFirst := ft.Classify(udpTo(1000))
	if !ok {
		t.Fatal("first filter did not match")
	}
	ep, ok, stepsLast := ft.Classify(udpTo(1049))
	if !ok || ep != 49 {
		t.Fatalf("last filter: ok=%v ep=%d", ok, ep)
	}
	if stepsLast < 10*stepsFirst {
		t.Fatalf("linear scan cost not visible: first=%d last=%d", stepsFirst, stepsLast)
	}
	if _, ok, _ := ft.Classify(udpTo(9999)); ok {
		t.Fatal("unbound port matched")
	}
	if ft.StepsExecuted == 0 || ft.Lookups != 3 {
		t.Fatalf("stats: %d steps, %d lookups", ft.StepsExecuted, ft.Lookups)
	}
}

func TestFilterTableUnbind(t *testing.T) {
	ft := NewFilterTable[string]()
	h1 := ft.Bind(CompileUDPPortFilter(1), "one")
	ft.Bind(CompileUDPPortFilter(2), "two")
	ft.Unbind(h1)
	if ft.Len() != 1 {
		t.Fatalf("len = %d", ft.Len())
	}
	if _, ok, _ := ft.Classify(udpTo(1)); ok {
		t.Fatal("unbound filter matched")
	}
	if ep, ok, _ := ft.Classify(udpTo(2)); !ok || ep != "two" {
		t.Fatal("remaining filter lost")
	}
	ft.Unbind(99) // out of range: no-op
}

func BenchmarkHandCodedVsFilterDemux(b *testing.B) {
	// The comparison behind the paper's related-work claim.
	tb := NewTable[int]()
	ft := NewFilterTable[int]()
	for i := 0; i < 32; i++ {
		tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, uint16(1000+i), i)
		ft.Bind(CompileUDPPortFilter(uint16(1000+i)), i)
	}
	p := udpTo(1031)
	b.Run("hand-coded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, v := tb.Classify(p, 0); v != Match {
				b.Fatal(v)
			}
		}
	})
	b.Run("interpreted-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, _ := ft.Classify(p); !ok {
				b.Fatal("no match")
			}
		}
	})
}
