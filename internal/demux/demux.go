// Package demux implements LRP's self-contained packet demultiplexing
// function: it maps a raw packet to the endpoint (NI channel) that should
// receive it.
//
// Per the paper, the function "is self-contained, and has minimal
// requirements on its execution environment (non-blocking, no dynamic
// memory allocation, no timers)", so it can run either on a network
// interface's embedded processor (NI demux) or in the host device driver's
// interrupt handler (soft demux). It "can efficiently demultiplex all
// packets in the TCP/IP protocol family, including IP fragments": the
// fragment carrying the transport header establishes a mapping from the
// IP (src, dst, id) triple to the endpoint; fragments that arrive before
// that mapping exists go to a special fragment channel that the IP
// reassembler consults.
//
// The table is generic over the endpoint type so it can bind NI channels,
// sockets, or test doubles without import cycles.
package demux

import (
	"lrp/internal/pkt"
)

// Verdict classifies the outcome of a demultiplexing attempt.
type Verdict int

const (
	// Match: the packet maps to a bound endpoint.
	Match Verdict = iota
	// NoMatch: no endpoint is bound for the packet's destination.
	NoMatch
	// Malformed: the packet's IP header is unparseable; it carries no
	// usable destination.
	Malformed
	// FragMiss: the packet is an IP fragment whose transport header has
	// not been seen yet; it belongs on the special fragment channel.
	FragMiss
	// OtherProto: the packet belongs to a protocol without port-level
	// demultiplexing (e.g. ICMP); it maps to the protocol's proxy daemon
	// endpoint if one is bound, else NoMatch is returned instead.
	OtherProto
)

func (v Verdict) String() string {
	switch v {
	case Match:
		return "match"
	case NoMatch:
		return "nomatch"
	case Malformed:
		return "malformed"
	case FragMiss:
		return "fragmiss"
	case OtherProto:
		return "otherproto"
	}
	return "?"
}

// fiveTuple identifies a fully connected endpoint.
type fiveTuple struct {
	proto         byte
	local, remote pkt.Addr
	lport, rport  uint16
}

// listenKey identifies a bound-but-unconnected endpoint. A zero local
// address matches any destination address (INADDR_ANY).
type listenKey struct {
	proto byte
	local pkt.Addr
	lport uint16
}

// fragKey identifies an in-flight fragmented datagram.
type fragKey struct {
	src, dst pkt.Addr
	id       uint16
	proto    byte
}

type fragEntry[E any] struct {
	ep      E
	expires int64
}

// fragTTL is how long a fragment mapping stays valid, in microseconds.
const fragTTL = 30 * 1000 * 1000

// Table is the demultiplexing table. It is not safe for concurrent use;
// the simulation is single-threaded by construction.
type Table[E any] struct {
	exact  map[fiveTuple]E
	listen map[listenKey]E
	proto  map[byte]E // proxy endpoints for ICMP etc.
	frags  map[fragKey]fragEntry[E]

	// fragOrder lists frag keys in insertion order so the purge scan is
	// deterministic (sim-core code must not range over maps). A key
	// deleted via DropFrag leaves a tombstone here; purge compacts it.
	fragOrder []fragKey

	// One-entry classification cache: server workloads hammer a handful of
	// flows, so the previous packet's 5-tuple usually repeats and the two
	// map probes (connected, then listen) can be skipped. Any bind or
	// unbind invalidates it, since a new exact binding must shadow a
	// cached listen match.
	cKey fiveTuple
	cEp  E
	cOK  bool

	// Stats
	Lookups    uint64
	FragHits   uint64
	FragMisses uint64
}

// invalidate clears the classification cache after a binding change.
func (t *Table[E]) invalidate() {
	var zero E
	t.cKey, t.cEp, t.cOK = fiveTuple{}, zero, false
}

// NewTable returns an empty table.
func NewTable[E any]() *Table[E] {
	return &Table[E]{
		exact:  make(map[fiveTuple]E),
		listen: make(map[listenKey]E),
		proto:  make(map[byte]E),
		frags:  make(map[fragKey]fragEntry[E]),
	}
}

// BindConnected installs an endpoint for a fully specified 5-tuple
// (connected TCP socket or connected UDP socket).
func (t *Table[E]) BindConnected(proto byte, local pkt.Addr, lport uint16, remote pkt.Addr, rport uint16, ep E) {
	t.exact[fiveTuple{proto, local, remote, lport, rport}] = ep
	t.invalidate()
}

// UnbindConnected removes a connected binding.
func (t *Table[E]) UnbindConnected(proto byte, local pkt.Addr, lport uint16, remote pkt.Addr, rport uint16) {
	delete(t.exact, fiveTuple{proto, local, remote, lport, rport})
	t.invalidate()
}

// BindListen installs an endpoint for a local (addr, port) pair; a zero
// addr matches any local address.
func (t *Table[E]) BindListen(proto byte, local pkt.Addr, lport uint16, ep E) {
	t.listen[listenKey{proto, local, lport}] = ep
	t.invalidate()
}

// UnbindListen removes a listening binding.
func (t *Table[E]) UnbindListen(proto byte, local pkt.Addr, lport uint16) {
	delete(t.listen, listenKey{proto, local, lport})
	t.invalidate()
}

// BindProto installs a proxy endpoint for a whole IP protocol (the LRP
// daemon channels for ICMP and similar traffic).
func (t *Table[E]) BindProto(proto byte, ep E) {
	t.proto[proto] = ep
}

// UnbindProto removes a protocol proxy binding.
func (t *Table[E]) UnbindProto(proto byte) {
	delete(t.proto, proto)
}

// LookupConnected returns the endpoint bound to the exact 5-tuple.
func (t *Table[E]) LookupConnected(proto byte, local pkt.Addr, lport uint16, remote pkt.Addr, rport uint16) (E, bool) {
	ep, ok := t.exact[fiveTuple{proto, local, remote, lport, rport}]
	return ep, ok
}

// LookupListen returns the endpoint bound to (proto, local, lport), trying
// the specific address before the wildcard.
func (t *Table[E]) LookupListen(proto byte, local pkt.Addr, lport uint16) (E, bool) {
	if ep, ok := t.listen[listenKey{proto, local, lport}]; ok {
		return ep, true
	}
	ep, ok := t.listen[listenKey{proto, pkt.Addr{}, lport}]
	return ep, ok
}

// Classify maps a raw packet to its endpoint. now is the current simulated
// time in microseconds (used only to age fragment mappings — the function
// itself sets no timers).
func (t *Table[E]) Classify(b []byte, now int64) (ep E, v Verdict) {
	t.Lookups++
	ih, hlen, err := pkt.DecodeIPv4(b)
	if err != nil {
		return ep, Malformed
	}
	if ih.IsFragment() {
		return t.classifyFragment(b, &ih, hlen, now)
	}
	return t.classifyTransport(b[hlen:], &ih)
}

// classifyTransport resolves a non-fragmented (or first-fragment) packet's
// transport header against the table.
func (t *Table[E]) classifyTransport(seg []byte, ih *pkt.IPv4Header) (ep E, v Verdict) {
	switch ih.Proto {
	case pkt.ProtoUDP, pkt.ProtoTCP:
		if len(seg) < 4 {
			return ep, Malformed
		}
		// Only the ports are needed; transport checksum validation is
		// protocol processing and deliberately NOT done here — the paper's
		// point is that corrupted packets must still be demultiplexed (and
		// charged) to their destination.
		sport := uint16(seg[0])<<8 | uint16(seg[1])
		dport := uint16(seg[2])<<8 | uint16(seg[3])
		key := fiveTuple{ih.Proto, ih.Dst, ih.Src, dport, sport}
		if t.cOK && t.cKey == key {
			return t.cEp, Match
		}
		if e, ok := t.LookupConnected(ih.Proto, ih.Dst, dport, ih.Src, sport); ok {
			t.cKey, t.cEp, t.cOK = key, e, true
			return e, Match
		}
		if e, ok := t.LookupListen(ih.Proto, ih.Dst, dport); ok {
			t.cKey, t.cEp, t.cOK = key, e, true
			return e, Match
		}
		return ep, NoMatch
	default:
		if e, ok := t.proto[ih.Proto]; ok {
			return e, OtherProto
		}
		return ep, NoMatch
	}
}

// classifyFragment handles IP fragments: a first fragment carries the
// transport header and establishes the mapping; later fragments use it.
func (t *Table[E]) classifyFragment(b []byte, ih *pkt.IPv4Header, hlen int, now int64) (ep E, v Verdict) {
	key := fragKey{ih.Src, ih.Dst, ih.ID, ih.Proto}
	if ih.FragOff == 0 {
		e, verdict := t.classifyTransport(b[hlen:], ih)
		if verdict == Match || verdict == OtherProto {
			if _, exists := t.frags[key]; !exists {
				t.fragOrder = append(t.fragOrder, key)
			}
			t.frags[key] = fragEntry[E]{ep: e, expires: now + fragTTL}
			t.maybePurgeFrags(now)
		}
		return e, verdict
	}
	if fe, ok := t.frags[key]; ok && fe.expires > now {
		t.FragHits++
		return fe.ep, Match
	}
	t.FragMisses++
	return ep, FragMiss
}

// maybePurgeFrags opportunistically drops expired fragment mappings so the
// map stays bounded without timers. It scans fragOrder, not the map, so the
// work done is identical on every run; DropFrag tombstones are compacted
// away on the same pass.
func (t *Table[E]) maybePurgeFrags(now int64) {
	if len(t.frags) < 1024 && len(t.fragOrder) < 2*len(t.frags)+1024 {
		return
	}
	kept := t.fragOrder[:0]
	for _, k := range t.fragOrder {
		fe, ok := t.frags[k]
		if !ok {
			continue // tombstone left by DropFrag
		}
		if fe.expires <= now {
			delete(t.frags, k)
			continue
		}
		kept = append(kept, k)
	}
	t.fragOrder = kept
}

// DropFrag removes a fragment mapping (used when reassembly completes or
// is abandoned).
func (t *Table[E]) DropFrag(src, dst pkt.Addr, id uint16, proto byte) {
	delete(t.frags, fragKey{src, dst, id, proto})
}
