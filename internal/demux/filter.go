package demux

// An interpreted packet-filter classifier, in the style of the
// CSPF/BPF/MPF lineage the paper's related work discusses ([12, 18, 25]).
// User-level network subsystems of the era demultiplexed with interpreted
// filters like this one; the paper notes that compared with LRP's
// hand-coded demux function "the overhead is likely to be high, and
// livelock protection poor". The Filter VM exists so that claim can be
// measured: FilterTable classifies by running one small filter program
// per bound endpoint until one accepts, and reports the interpreter work
// so hosts can charge proportional demux cost.
//
// The instruction set is a minimal BPF-like accumulator machine:
//
//	LDB  off        A = pkt[off]          (out-of-range load: reject)
//	LDH  off        A = be16(pkt[off:])
//	JEQ  k, jt, jf  pc += (A == k) ? jt : jf
//	AND  k          A &= k
//	RSH  k          A >>= k
//	RET  k          accept (k != 0) or reject (k == 0)

// Op is a filter opcode.
type Op uint8

// Filter opcodes.
const (
	OpLDB Op = iota
	OpLDH
	OpJEQ
	OpAND
	OpRSH
	OpRET
)

// Insn is one filter instruction.
type Insn struct {
	Op     Op
	K      uint32
	Jt, Jf uint8
}

// Program is a filter program.
type Program []Insn

// maxFilterSteps bounds execution so malformed programs terminate.
const maxFilterSteps = 256

// exec interprets the program, returning the verdict and the number of
// instructions executed (the cost driver for interpreted demux).
func (p Program) exec(pkt []byte) (accept bool, steps int) {
	var a uint32
	pc := 0
	for steps < maxFilterSteps && pc < len(p) {
		in := p[pc]
		pc++
		steps++
		switch in.Op {
		case OpLDB:
			if int(in.K) >= len(pkt) {
				return false, steps
			}
			a = uint32(pkt[in.K])
		case OpLDH:
			if int(in.K)+1 >= len(pkt) {
				return false, steps
			}
			a = uint32(pkt[in.K])<<8 | uint32(pkt[in.K+1])
		case OpJEQ:
			if a == in.K {
				pc += int(in.Jt)
			} else {
				pc += int(in.Jf)
			}
		case OpAND:
			a &= in.K
		case OpRSH:
			a >>= in.K
		case OpRET:
			return in.K != 0, steps
		default:
			return false, steps
		}
	}
	return false, steps
}

// Run executes the program against a packet and reports acceptance.
func (p Program) Run(pkt []byte) bool {
	ok, _ := p.exec(pkt)
	return ok
}

// CompileUDPPortFilter builds the classic "IPv4/UDP to my port" filter
// (rejecting non-first fragments and packets with IP options, as the
// simple filters of the era did).
func CompileUDPPortFilter(port uint16) Program {
	return compilePortFilter(17, port)
}

// CompileTCPPortFilter accepts IPv4/TCP packets to the given port.
func CompileTCPPortFilter(port uint16) Program {
	return compilePortFilter(6, port)
}

func compilePortFilter(proto byte, port uint16) Program {
	return Program{
		// Version/IHL byte: version must be 4, IHL must be 5 (the
		// fixed-offset filters of the era punted on IP options).
		{Op: OpLDB, K: 0},
		{Op: OpJEQ, K: 0x45, Jt: 0, Jf: 7}, // -> RET 0
		// Protocol.
		{Op: OpLDB, K: 9},
		{Op: OpJEQ, K: uint32(proto), Jt: 0, Jf: 5}, // -> RET 0
		// Non-first fragments carry no transport header.
		{Op: OpLDH, K: 6},
		{Op: OpAND, K: 0x1fff},
		{Op: OpJEQ, K: 0, Jt: 0, Jf: 2}, // -> RET 0
		// Destination port at 20+2.
		{Op: OpLDH, K: 22},
		{Op: OpJEQ, K: uint32(port), Jt: 1, Jf: 0},
		{Op: OpRET, K: 0},
		{Op: OpRET, K: 1},
	}
}

// FilterTable classifies by running each bound endpoint's filter program
// in order — the linear-scan structure of the early packet-filter
// systems. (MPF later merged common prefixes; this is the baseline the
// paper's related work worries about.)
type FilterTable[E any] struct {
	entries []filterEntry[E]
	// StepsExecuted accumulates interpreter steps across all lookups.
	StepsExecuted uint64
	Lookups       uint64
}

type filterEntry[E any] struct {
	prog Program
	ep   E
}

// NewFilterTable returns an empty filter table.
func NewFilterTable[E any]() *FilterTable[E] {
	return &FilterTable[E]{}
}

// Bind appends a filter program for an endpoint and returns its handle
// for Unbind.
func (t *FilterTable[E]) Bind(prog Program, ep E) int {
	t.entries = append(t.entries, filterEntry[E]{prog: prog, ep: ep})
	return len(t.entries) - 1
}

// Unbind removes the entry at the handle returned by Bind. Handles of
// later entries shift down, as in a simple filter list.
func (t *FilterTable[E]) Unbind(handle int) {
	if handle < 0 || handle >= len(t.entries) {
		return
	}
	t.entries = append(t.entries[:handle], t.entries[handle+1:]...)
}

// Len returns the number of bound filters.
func (t *FilterTable[E]) Len() int { return len(t.entries) }

// Classify runs the filters in order; the first acceptor wins. steps is
// the total interpreter work performed, for cost accounting.
func (t *FilterTable[E]) Classify(pkt []byte) (ep E, ok bool, steps int) {
	t.Lookups++
	for _, e := range t.entries {
		accept, n := e.prog.exec(pkt)
		steps += n
		if accept {
			t.StepsExecuted += uint64(steps)
			return e.ep, true, steps
		}
	}
	t.StepsExecuted += uint64(steps)
	return ep, false, steps
}
