package demux

import (
	"testing"

	"lrp/internal/pkt"
	"lrp/internal/race"
)

var (
	cli = pkt.IP(10, 0, 0, 1)
	srv = pkt.IP(10, 0, 0, 2)
)

func TestListenMatch(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	p := pkt.UDPPacket(cli, srv, 9999, 7, 1, 64, []byte("hi"), true)
	ep, v := tb.Classify(p, 0)
	if v != Match || ep != "echo" {
		t.Fatalf("got %v %q", v, ep)
	}
}

func TestSpecificAddrBeatsWildcard(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "any")
	tb.BindListen(pkt.ProtoUDP, srv, 7, "specific")
	p := pkt.UDPPacket(cli, srv, 1, 7, 1, 64, nil, true)
	ep, v := tb.Classify(p, 0)
	if v != Match || ep != "specific" {
		t.Fatalf("got %v %q", v, ep)
	}
}

func TestConnectedBeatsListen(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoTCP, pkt.Addr{}, 80, "listener")
	tb.BindConnected(pkt.ProtoTCP, srv, 80, cli, 5555, "conn")
	h := pkt.TCPHeader{SrcPort: 5555, DstPort: 80, Flags: pkt.TCPAck, Window: 100}
	p := pkt.TCPSegment(cli, srv, &h, 1, 64, nil)
	ep, v := tb.Classify(p, 0)
	if v != Match || ep != "conn" {
		t.Fatalf("got %v %q", v, ep)
	}
	// A different client port falls back to the listener.
	h.SrcPort = 5556
	p = pkt.TCPSegment(cli, srv, &h, 1, 64, nil)
	ep, v = tb.Classify(p, 0)
	if v != Match || ep != "listener" {
		t.Fatalf("got %v %q", v, ep)
	}
}

func TestNoMatch(t *testing.T) {
	tb := NewTable[string]()
	p := pkt.UDPPacket(cli, srv, 1, 12345, 1, 64, nil, true)
	if _, v := tb.Classify(p, 0); v != NoMatch {
		t.Fatalf("got %v", v)
	}
}

func TestMalformed(t *testing.T) {
	tb := NewTable[string]()
	if _, v := tb.Classify([]byte{1, 2, 3}, 0); v != Malformed {
		t.Fatalf("short packet: %v", v)
	}
	p := pkt.UDPPacket(cli, srv, 1, 7, 1, 64, nil, true)
	p[9] ^= 0xff // corrupt the IP header itself
	if _, v := tb.Classify(p, 0); v != Malformed {
		t.Fatalf("corrupt IP header: %v", v)
	}
}

func TestCorruptPayloadStillMatches(t *testing.T) {
	// The demux function must not validate transport checksums: corrupted
	// packets still demultiplex to their destination (and get discarded
	// later, at the receiver's expense under LRP).
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	p := pkt.Corrupt(pkt.UDPPacket(cli, srv, 1, 7, 1, 64, []byte("payload"), true))
	ep, v := tb.Classify(p, 0)
	if v != Match || ep != "echo" {
		t.Fatalf("got %v %q", v, ep)
	}
}

func TestUnbind(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	tb.UnbindListen(pkt.ProtoUDP, pkt.Addr{}, 7)
	p := pkt.UDPPacket(cli, srv, 1, 7, 1, 64, nil, true)
	if _, v := tb.Classify(p, 0); v != NoMatch {
		t.Fatalf("got %v", v)
	}
	tb.BindConnected(pkt.ProtoTCP, srv, 80, cli, 5555, "c")
	tb.UnbindConnected(pkt.ProtoTCP, srv, 80, cli, 5555)
	h := pkt.TCPHeader{SrcPort: 5555, DstPort: 80, Flags: pkt.TCPAck}
	if _, v := tb.Classify(pkt.TCPSegment(cli, srv, &h, 1, 64, nil), 0); v != NoMatch {
		t.Fatalf("got %v", v)
	}
}

func TestProtoProxy(t *testing.T) {
	tb := NewTable[string]()
	tb.BindProto(pkt.ProtoICMP, "icmpd")
	// Build a minimal ICMP packet: IP header + 8 bytes.
	b := make([]byte, pkt.IPv4HeaderLen+8)
	ih := pkt.IPv4Header{TotalLen: uint16(len(b)), TTL: 64, Proto: pkt.ProtoICMP, Src: cli, Dst: srv}
	pkt.EncodeIPv4(b, &ih)
	ep, v := tb.Classify(b, 0)
	if v != OtherProto || ep != "icmpd" {
		t.Fatalf("got %v %q", v, ep)
	}
	tb.UnbindProto(pkt.ProtoICMP)
	if _, v := tb.Classify(b, 0); v != NoMatch {
		t.Fatalf("after unbind: %v", v)
	}
}

// buildFragments splits a UDP packet into two IP fragments.
func buildFragments(t *testing.T, payloadLen int) (first, second []byte) {
	t.Helper()
	payload := make([]byte, payloadLen)
	whole := pkt.UDPPacket(cli, srv, 1000, 7, 77, 64, payload, false)
	seg := whole[pkt.IPv4HeaderLen:]
	cut := 8 * ((len(seg) / 2) / 8) // fragment offsets are 8-byte units
	mk := func(data []byte, off int, more bool) []byte {
		b := make([]byte, pkt.IPv4HeaderLen+len(data))
		flags := uint16(0)
		if more {
			flags = pkt.FlagMoreFrags
		}
		ih := pkt.IPv4Header{
			TotalLen: uint16(len(b)), ID: 77, Flags: flags,
			FragOff: uint16(off / 8), TTL: 64, Proto: pkt.ProtoUDP,
			Src: cli, Dst: srv,
		}
		copy(b[pkt.IPv4HeaderLen:], data)
		pkt.EncodeIPv4(b, &ih)
		return b
	}
	return mk(seg[:cut], 0, true), mk(seg[cut:], cut, false)
}

func TestFragmentsInOrder(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	first, second := buildFragments(t, 2000)
	ep, v := tb.Classify(first, 0)
	if v != Match || ep != "echo" {
		t.Fatalf("first frag: %v %q", v, ep)
	}
	ep, v = tb.Classify(second, 10)
	if v != Match || ep != "echo" {
		t.Fatalf("second frag should hit the mapping: %v %q", v, ep)
	}
	if tb.FragHits != 1 {
		t.Fatalf("fraghits=%d", tb.FragHits)
	}
}

func TestFragmentsOutOfOrder(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	first, second := buildFragments(t, 2000)
	// Second fragment arrives first: no transport header -> FragMiss.
	if _, v := tb.Classify(second, 0); v != FragMiss {
		t.Fatalf("out-of-order frag: %v", v)
	}
	if _, v := tb.Classify(first, 1); v != Match {
		t.Fatalf("first frag: %v", v)
	}
	// Re-delivery of the trailing fragment now matches.
	if _, v := tb.Classify(second, 2); v != Match {
		t.Fatalf("retry frag: %v", v)
	}
}

func TestFragmentMappingExpires(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	first, second := buildFragments(t, 2000)
	tb.Classify(first, 0)
	if _, v := tb.Classify(second, fragTTL+1); v != FragMiss {
		t.Fatalf("expired mapping should miss: %v", v)
	}
}

func TestDropFrag(t *testing.T) {
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	first, second := buildFragments(t, 2000)
	tb.Classify(first, 0)
	tb.DropFrag(cli, srv, 77, pkt.ProtoUDP)
	if _, v := tb.Classify(second, 1); v != FragMiss {
		t.Fatalf("dropped mapping should miss: %v", v)
	}
}

func TestClassifyDoesNotAllocateOnFastPath(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	tb := NewTable[string]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, "echo")
	p := pkt.UDPPacket(cli, srv, 1, 7, 1, 64, []byte("x"), true)
	allocs := testing.AllocsPerRun(100, func() {
		tb.Classify(p, 0)
	})
	if allocs > 0 {
		t.Fatalf("fast-path classify allocates %.1f times per call", allocs)
	}
}

func BenchmarkClassifyUDP(b *testing.B) {
	tb := NewTable[int]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 7, 1)
	p := pkt.UDPPacket(cli, srv, 1, 7, 1, 64, make([]byte, 14), true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, v := tb.Classify(p, 0); v != Match {
			b.Fatal(v)
		}
	}
}

// Regression for the frag-purge rewrite: the purge used to range over the
// frags map, making the scan order (and thus any future tie-breaking
// behavior) nondeterministic. It now walks the insertion-order key list
// and compacts DropFrag tombstones on the same pass.
func TestFragPurgeScansInsertionOrder(t *testing.T) {
	tb := NewTable[int]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 99, 7)
	mkFrag := func(id uint16) []byte {
		b := pkt.UDPPacket(cli, srv, 5, 99, id, 64, make([]byte, 64), false)
		ih, _, _ := pkt.DecodeIPv4(b)
		ih.Flags |= pkt.FlagMoreFrags
		pkt.EncodeIPv4(b, &ih)
		return b
	}
	const live = 1500
	for id := 0; id < live; id++ {
		if _, v := tb.Classify(mkFrag(uint16(id)), 0); v != Match {
			t.Fatalf("first fragment %d: verdict %v", id, v)
		}
	}
	// The purge threshold (1024) was crossed, but nothing had expired.
	if len(tb.frags) != live || len(tb.fragOrder) != live {
		t.Fatalf("frags=%d order=%d, want %d live mappings", len(tb.frags), len(tb.fragOrder), live)
	}
	// One insert past the TTL expires every earlier mapping in one pass;
	// only the new mapping survives, and the order list shrinks with it.
	if _, v := tb.Classify(mkFrag(9999), fragTTL+1); v != Match {
		t.Fatalf("late first fragment: verdict %v", v)
	}
	if len(tb.frags) != 1 || len(tb.fragOrder) != 1 {
		t.Fatalf("after purge: frags=%d order=%d, want 1", len(tb.frags), len(tb.fragOrder))
	}
	// The surviving mapping still resolves non-first fragments...
	late := mkFrag(9999)
	ih, _, _ := pkt.DecodeIPv4(late)
	ih.FragOff = 64 / 8
	pkt.EncodeIPv4(late, &ih)
	if _, v := tb.Classify(late, fragTTL+2); v != Match {
		t.Fatalf("surviving mapping: verdict %v", v)
	}
	// ...and a purged one misses.
	old := mkFrag(3)
	ih, _, _ = pkt.DecodeIPv4(old)
	ih.FragOff = 64 / 8
	pkt.EncodeIPv4(old, &ih)
	if _, v := tb.Classify(old, fragTTL+2); v != FragMiss {
		t.Fatalf("purged mapping: verdict %v, want FragMiss", v)
	}
}

// DropFrag leaves a tombstone in the insertion-order list; the purge pass
// must compact tombstones without disturbing live mappings.
func TestFragOrderCompactsDropTombstones(t *testing.T) {
	tb := NewTable[int]()
	tb.BindListen(pkt.ProtoUDP, pkt.Addr{}, 99, 7)
	mkFrag := func(id uint16) []byte {
		b := pkt.UDPPacket(cli, srv, 5, 99, id, 64, make([]byte, 64), false)
		ih, _, _ := pkt.DecodeIPv4(b)
		ih.Flags |= pkt.FlagMoreFrags
		pkt.EncodeIPv4(b, &ih)
		return b
	}
	const n = 1200
	const dropped = 1150
	for id := 0; id < n; id++ {
		tb.Classify(mkFrag(uint16(id)), 0)
	}
	for id := 0; id < dropped; id++ {
		tb.DropFrag(cli, srv, uint16(id), pkt.ProtoUDP)
	}
	if len(tb.frags) != n-dropped {
		t.Fatalf("frags=%d after drops, want %d", len(tb.frags), n-dropped)
	}
	// The next insert leaves the order list dominated by tombstones
	// (past the 2*live+1024 compaction trigger), so the purge pass runs
	// and compacts them; the surviving mappings keep insertion order.
	tb.Classify(mkFrag(n), 0)
	if len(tb.frags) != n-dropped+1 {
		t.Fatalf("frags=%d, want %d", len(tb.frags), n-dropped+1)
	}
	if len(tb.fragOrder) != len(tb.frags) {
		t.Fatalf("order=%d not compacted to frags=%d", len(tb.fragOrder), len(tb.frags))
	}
	for i, k := range tb.fragOrder[:10] {
		want := uint16(dropped + i)
		if k.id != want {
			t.Fatalf("fragOrder[%d].id = %d, want %d (insertion order broken)", i, k.id, want)
		}
	}
}
