// Package mbuf models the BSD network-buffer abstraction: reference-counted
// packet buffers drawn from a bounded pool.
//
// The pool bound matters to the reproduction: in 4.4BSD, aggregate traffic
// bursts "can exceed the IP queue limit and/or exhaust the mbuf pool",
// delaying or losing packets destined for other sockets. The pool keeps
// exact accounting so experiments can report whether drops happened for
// lack of mbufs (the paper's instrumentation reported none at their rates;
// ours can check the same).
package mbuf

import "fmt"

// Mbuf holds one packet (this simulator does not split packets across
// chained buffers; a chain field would add fidelity but no behaviour the
// experiments depend on). Data aliases the packet bytes; Len is the packet
// length.
type Mbuf struct {
	Data []byte

	// Arrival is the simulated time the packet was captured from the wire,
	// used to measure queueing delay. Zero when not applicable.
	Arrival int64

	pool *Pool
}

// Len returns the packet length in bytes.
func (m *Mbuf) Len() int { return len(m.Data) }

// Free returns the buffer to its pool. Freeing a nil mbuf or one not drawn
// from a pool is a no-op. Double frees panic: they indicate a logic error
// in queue handling.
func (m *Mbuf) Free() {
	if m == nil || m.pool == nil {
		return
	}
	p := m.pool
	m.pool = nil
	m.Data = nil
	p.inUse--
	if p.inUse < 0 {
		panic("mbuf: double free")
	}
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Allocs    uint64 // successful allocations
	Failures  uint64 // allocations denied because the pool was exhausted
	InUse     int    // buffers currently outstanding
	Limit     int    // pool capacity
	HighWater int    // maximum simultaneous buffers in use
}

// Pool is a bounded mbuf allocator. The zero value is unusable; call
// NewPool. Pools are not safe for concurrent use; the simulation is single
// threaded by construction.
type Pool struct {
	limit     int
	inUse     int
	highWater int
	allocs    uint64
	failures  uint64
}

// NewPool returns a pool that allows up to limit buffers outstanding.
// limit <= 0 means unlimited.
func NewPool(limit int) *Pool {
	return &Pool{limit: limit}
}

// Alloc returns a buffer holding data (which the mbuf aliases; the caller
// must not reuse it), or nil if the pool is exhausted.
func (p *Pool) Alloc(data []byte) *Mbuf {
	if p.limit > 0 && p.inUse >= p.limit {
		p.failures++
		return nil
	}
	p.inUse++
	if p.inUse > p.highWater {
		p.highWater = p.inUse
	}
	p.allocs++
	return &Mbuf{Data: data, pool: p}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Allocs:    p.allocs,
		Failures:  p.failures,
		InUse:     p.inUse,
		Limit:     p.limit,
		HighWater: p.highWater,
	}
}

// String summarizes the pool state for logs.
func (p *Pool) String() string {
	return fmt.Sprintf("mbuf pool: %d/%d in use (hw %d, %d allocs, %d failures)",
		p.inUse, p.limit, p.highWater, p.allocs, p.failures)
}

// Queue is a bounded FIFO of mbufs — the building block for the shared IP
// queue, socket queues, interface queues, and NI channel queues. A Limit of
// 0 means unbounded.
type Queue struct {
	Limit int
	buf   []*Mbuf
	drops uint64
}

// NewQueue returns a queue bounded at limit packets (0 = unbounded).
func NewQueue(limit int) *Queue { return &Queue{Limit: limit} }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.buf) }

// Full reports whether an Enqueue would be refused.
func (q *Queue) Full() bool { return q.Limit > 0 && len(q.buf) >= q.Limit }

// Drops returns the number of packets refused because the queue was full.
func (q *Queue) Drops() uint64 { return q.drops }

// Enqueue appends m, or frees it and returns false if the queue is full.
// (Callers that must not free on failure should test Full first.)
func (q *Queue) Enqueue(m *Mbuf) bool {
	if q.Full() {
		q.drops++
		m.Free()
		return false
	}
	q.buf = append(q.buf, m)
	return true
}

// Dequeue removes and returns the head packet, or nil if empty.
func (q *Queue) Dequeue() *Mbuf {
	if len(q.buf) == 0 {
		return nil
	}
	m := q.buf[0]
	q.buf[0] = nil
	q.buf = q.buf[1:]
	// Reset the backing array occasionally so the queue doesn't pin memory.
	if len(q.buf) == 0 && cap(q.buf) > 1024 {
		q.buf = nil
	}
	return m
}

// Peek returns the head packet without removing it, or nil if empty.
func (q *Queue) Peek() *Mbuf {
	if len(q.buf) == 0 {
		return nil
	}
	return q.buf[0]
}

// Flush frees all queued packets and empties the queue.
func (q *Queue) Flush() {
	for _, m := range q.buf {
		m.Free()
	}
	q.buf = nil
}
