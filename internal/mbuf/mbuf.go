// Package mbuf models the BSD network-buffer abstraction: reference-counted
// packet buffers drawn from a bounded pool.
//
// The pool bound matters to the reproduction: in 4.4BSD, aggregate traffic
// bursts "can exceed the IP queue limit and/or exhaust the mbuf pool",
// delaying or losing packets destined for other sockets. The pool keeps
// exact accounting so experiments can report whether drops happened for
// lack of mbufs (the paper's instrumentation reported none at their rates;
// ours can check the same).
//
// Both mbuf structs and their byte storage are recycled through per-pool
// free lists, so the steady-state packet cycle (alloc, enqueue, deliver,
// free) performs no heap allocation. Storage recycling distinguishes owned
// buffers (drawn from the pool's size-classed free lists by AllocBuf and
// AllocCopy) from aliased ones (Alloc wraps caller memory the pool must
// never hand out again). Recycling never changes the accounting: the
// counters (limit, in-use, high-water, failures) move at exactly the same
// points as when Free simply discarded the buffer.
package mbuf

import "fmt"

// bufClasses are the recycled storage sizes, chosen to cover the common
// packet populations: small control packets, ordinary datagrams, and
// full-MTU packets (the IP-over-ATM MTU of 9180 plus headers fits the top
// class). Larger requests fall back to plain make and are not recycled.
var bufClasses = [...]int{256, 2048, 16384}

// classFor returns the index of the smallest class holding n bytes, or -1
// if n exceeds every class.
func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// Mbuf holds one packet (this simulator does not split packets across
// chained buffers; a chain field would add fidelity but no behaviour the
// experiments depend on). Data aliases the packet bytes; Len is the packet
// length.
type Mbuf struct {
	Data []byte

	// Arrival is the simulated time the packet was captured from the wire,
	// used to measure queueing delay. Zero when not applicable.
	Arrival int64

	// pool is non-nil while the mbuf is counted against its pool's limit;
	// Free and BeginTransfer clear it when they release the accounting.
	pool *Pool
	// owner is the recycling home for the struct and any owned storage. It
	// stays set through a wire transfer, after pool has been released.
	owner *Pool
	// buf is the owned backing array (full capacity), nil when Data aliases
	// caller memory. Only owned arrays return to the free lists.
	buf []byte
	// refs counts extra wire references beyond the first (multicast fanout);
	// EndTransfer recycles storage only when it reaches zero.
	refs int32
}

// Len returns the packet length in bytes.
func (m *Mbuf) Len() int { return len(m.Data) }

// Free returns the buffer to its pool. Freeing a nil mbuf or one not drawn
// from a pool is a no-op. Double frees panic: they indicate a logic error
// in queue handling.
//
// Free recycles the struct and any owned storage, so the caller must not
// touch the mbuf — or any Data slice it did not Detach — afterwards.
//
//lrp:hotpath
func (m *Mbuf) Free() {
	if m == nil || m.pool == nil {
		return
	}
	p := m.pool
	m.pool = nil
	p.inUse--
	if p.inUse < 0 {
		panic("mbuf: double free")
	}
	m.owner.recycle(m)
}

// Detach surrenders the packet bytes to the caller: it returns Data and
// disowns the backing array so a later Free recycles only the struct. Use
// it when delivered data outlives the mbuf (e.g. bytes handed to an
// application datagram).
//
//lrp:hotpath
func (m *Mbuf) Detach() []byte {
	b := m.Data
	m.buf = nil
	return b
}

// BeginTransfer releases the mbuf's pool accounting — exactly as Free does,
// including the double-free check — while keeping the struct and storage
// alive for wire transit. The sender's pool slot is released when
// transmission starts (as in the pre-recycling code, which freed the mbuf
// and kept a reference to its bytes); the storage itself is recycled by
// EndTransfer once the last receiver has copied the packet.
//
//lrp:hotpath
func (m *Mbuf) BeginTransfer() {
	if m == nil || m.pool == nil {
		return
	}
	p := m.pool
	m.pool = nil
	p.inUse--
	if p.inUse < 0 {
		panic("mbuf: double free")
	}
}

// AddRef adds one wire reference, for fanout paths that deliver the same
// mbuf to several receivers. Each reference must be released with
// EndTransfer.
//
//lrp:hotpath
func (m *Mbuf) AddRef() { m.refs++ }

// EndTransfer releases one wire reference; the final release recycles the
// struct and storage. The accounting was already released by BeginTransfer.
//
//lrp:hotpath
func (m *Mbuf) EndTransfer() {
	if m == nil {
		return
	}
	if m.refs > 0 {
		m.refs--
		return
	}
	m.owner.recycle(m)
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Allocs    uint64 // successful allocations
	Failures  uint64 // allocations denied because the pool was exhausted
	InUse     int    // buffers currently outstanding
	Limit     int    // pool capacity
	HighWater int    // maximum simultaneous buffers in use
}

// Pool is a bounded mbuf allocator. The zero value is unusable; call
// NewPool. Pools are not safe for concurrent use; the simulation is single
// threaded by construction.
type Pool struct {
	limit     int
	pressure  int // buffers withheld by fault injection (transient pool pressure)
	inUse     int
	highWater int
	allocs    uint64
	failures  uint64

	freeM   []*Mbuf                   // recycled structs
	freeBuf [len(bufClasses)][][]byte // recycled storage, by size class
}

// NewPool returns a pool that allows up to limit buffers outstanding.
// limit <= 0 means unlimited.
func NewPool(limit int) *Pool {
	return &Pool{limit: limit}
}

// SetPressure withholds n buffers from a bounded pool, shrinking the
// effective limit to limit-n (floored at 1) until the pressure is lifted
// with SetPressure(0). Fault injection uses it to model transient
// external demand on the shared mbuf pool — the paper's "aggregate
// traffic bursts ... exhaust the mbuf pool" failure mode — without
// circulating real packets. Unbounded pools ignore pressure. Buffers
// already outstanding are unaffected; only new reservations see the
// reduced limit, exactly as real exhaustion behaves.
func (p *Pool) SetPressure(n int) {
	if n < 0 {
		n = 0
	}
	p.pressure = n
}

// reserve performs the bounded-accounting half of every allocation. It
// must stay byte-for-byte equivalent to the original Alloc counters: the
// experiments assert on high-water and failure values. (Pressure is
// zero outside fault-injection runs, leaving the legacy comparison
// untouched.)
//
//lrp:hotpath
func (p *Pool) reserve() bool {
	limit := p.limit
	if p.pressure > 0 && limit > 0 {
		if limit -= p.pressure; limit < 1 {
			limit = 1
		}
	}
	if limit > 0 && p.inUse >= limit {
		p.failures++
		return false
	}
	p.inUse++
	if p.inUse > p.highWater {
		p.highWater = p.inUse
	}
	p.allocs++
	return true
}

// getMbuf returns a recycled struct or a fresh one.
//
//lrp:hotpath
func (p *Pool) getMbuf() *Mbuf {
	if n := len(p.freeM); n > 0 {
		m := p.freeM[n-1]
		p.freeM[n-1] = nil
		p.freeM = p.freeM[:n-1]
		m.pool = p
		m.owner = p
		return m
	}
	return &Mbuf{pool: p, owner: p} //lrp:coldalloc free-list miss; steady state pops the list
}

// getBuf returns an owned array with capacity >= n: recycled when the size
// class has one, freshly allocated otherwise. Oversize requests get an
// exact-size array that will not be recycled.
//
//lrp:hotpath
func (p *Pool) getBuf(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, n) //lrp:coldalloc oversize request; deliberately not recycled
	}
	if fn := len(p.freeBuf[ci]); fn > 0 {
		b := p.freeBuf[ci][fn-1]
		p.freeBuf[ci][fn-1] = nil
		p.freeBuf[ci] = p.freeBuf[ci][:fn-1]
		return b
	}
	return make([]byte, bufClasses[ci]) //lrp:coldalloc size-class miss; steady state pops the class list
}

// putBuf returns an owned array to its size class. Arrays whose capacity is
// not exactly a class size (oversize fallbacks) are dropped for the GC.
//
//lrp:hotpath
func (p *Pool) putBuf(b []byte) {
	c := cap(b)
	for i, cs := range bufClasses {
		if c == cs {
			p.freeBuf[i] = append(p.freeBuf[i], b[:c]) //lrp:coldalloc class list grows to high-water, then stabilizes
			return
		}
	}
}

// recycle returns a released mbuf's storage and struct to the free lists.
//
//lrp:hotpath
func (p *Pool) recycle(m *Mbuf) {
	if m.buf != nil {
		p.putBuf(m.buf)
		m.buf = nil
	}
	m.Data = nil
	m.Arrival = 0
	m.refs = 0
	m.pool = nil
	m.owner = nil
	p.freeM = append(p.freeM, m) //lrp:coldalloc struct list grows to high-water, then stabilizes
}

// Alloc returns a buffer holding data (which the mbuf aliases; the caller
// must not reuse it), or nil if the pool is exhausted. The aliased array is
// never recycled — it belongs to the caller.
//
//lrp:hotpath
func (p *Pool) Alloc(data []byte) *Mbuf {
	if !p.reserve() {
		return nil
	}
	m := p.getMbuf()
	m.Data = data
	return m
}

// AllocCopy returns a buffer holding a private copy of b, or nil if the
// pool is exhausted. The copy lives in pool-owned storage, so the caller
// may reuse or recycle b immediately. Data's capacity is clipped to its
// length: appending to it never scribbles on the recycled spare capacity.
//
//lrp:hotpath
func (p *Pool) AllocCopy(b []byte) *Mbuf {
	if !p.reserve() {
		return nil
	}
	m := p.getMbuf()
	m.buf = p.getBuf(len(b))
	m.Data = m.buf[:len(b):len(b)]
	copy(m.Data, b)
	return m
}

// AllocBuf returns an empty mbuf backed by owned storage with capacity at
// least n, for building a packet in place with the pkt append builders:
//
//	m := pool.AllocBuf(pkt.UDPTotalLen(len(payload)))
//	m.Data = pkt.AppendUDP(m.Data, ...)
//
// Staying within n keeps the build allocation-free; exceeding it makes
// append fall back to a fresh array (correct, but a new allocation).
//
//lrp:hotpath
func (p *Pool) AllocBuf(n int) *Mbuf {
	if !p.reserve() {
		return nil
	}
	m := p.getMbuf()
	m.buf = p.getBuf(n)
	m.Data = m.buf[:0]
	return m
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Allocs:    p.allocs,
		Failures:  p.failures,
		InUse:     p.inUse,
		Limit:     p.limit,
		HighWater: p.highWater,
	}
}

// String summarizes the pool state for logs.
func (p *Pool) String() string {
	return fmt.Sprintf("mbuf pool: %d/%d in use (hw %d, %d allocs, %d failures)",
		p.inUse, p.limit, p.highWater, p.allocs, p.failures)
}

// Queue is a bounded FIFO of mbufs — the building block for the shared IP
// queue, socket queues, interface queues, and NI channel queues. A Limit of
// 0 means unbounded. The queue is a ring buffer: steady-state enqueue and
// dequeue touch no allocator.
type Queue struct {
	Limit int
	ring  []*Mbuf
	head  int
	count int
	drops uint64
}

// NewQueue returns a queue bounded at limit packets (0 = unbounded).
func NewQueue(limit int) *Queue { return &Queue{Limit: limit} }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Full reports whether an Enqueue would be refused.
func (q *Queue) Full() bool { return q.Limit > 0 && q.count >= q.Limit }

// Drops returns the number of packets refused because the queue was full.
func (q *Queue) Drops() uint64 { return q.drops }

// grow doubles the ring, unwrapping the live entries to the front.
//
//lrp:coldalloc amortized geometric growth: at most log2(peak) allocations per queue lifetime
func (q *Queue) grow() {
	n := len(q.ring) * 2
	if n < 8 {
		n = 8
	}
	ring := make([]*Mbuf, n)
	for i := 0; i < q.count; i++ {
		ring[i] = q.ring[(q.head+i)%len(q.ring)]
	}
	q.ring = ring
	q.head = 0
}

// Enqueue appends m, or frees it and returns false if the queue is full.
// (Callers that must not free on failure should test Full first.)
//
//lrp:hotpath
func (q *Queue) Enqueue(m *Mbuf) bool {
	if q.Full() {
		q.drops++
		m.Free()
		return false
	}
	if q.count == len(q.ring) {
		q.grow()
	}
	i := q.head + q.count
	if i >= len(q.ring) {
		i -= len(q.ring)
	}
	q.ring[i] = m
	q.count++
	return true
}

// Dequeue removes and returns the head packet, or nil if empty.
//
//lrp:hotpath
func (q *Queue) Dequeue() *Mbuf {
	if q.count == 0 {
		return nil
	}
	m := q.ring[q.head]
	q.ring[q.head] = nil
	q.head++
	if q.head == len(q.ring) {
		q.head = 0
	}
	q.count--
	return m
}

// Peek returns the head packet without removing it, or nil if empty.
//
//lrp:hotpath
func (q *Queue) Peek() *Mbuf {
	if q.count == 0 {
		return nil
	}
	return q.ring[q.head]
}

// Flush frees all queued packets and empties the queue.
func (q *Queue) Flush() {
	for q.count > 0 {
		q.Dequeue().Free()
	}
}
