package mbuf

import "testing"

// sink forces mbufs to escape to the heap, as they do in production where
// every allocation passes through a queue.
var sink *Mbuf

// BenchmarkMbufAllocFree measures the per-packet buffer cycle: one
// allocation aliasing wire bytes, one free.
func BenchmarkMbufAllocFree(b *testing.B) {
	p := NewPool(0)
	data := make([]byte, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = p.Alloc(data)
		sink.Free()
	}
}

// BenchmarkMbufQueueChurn measures a bounded queue's steady-state
// enqueue/dequeue cycle (every rx ring, ifq and NI channel operation).
func BenchmarkMbufQueueChurn(b *testing.B) {
	p := NewPool(0)
	q := NewQueue(64)
	data := make([]byte, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p.Alloc(data))
		q.Dequeue().Free()
	}
}
