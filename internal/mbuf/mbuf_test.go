package mbuf

import (
	"testing"
	"testing/quick"
)

func TestPoolExhaustion(t *testing.T) {
	p := NewPool(2)
	a := p.Alloc(make([]byte, 10))
	b := p.Alloc(make([]byte, 10))
	if a == nil || b == nil {
		t.Fatal("allocations within limit failed")
	}
	if c := p.Alloc(nil); c != nil {
		t.Fatal("allocation beyond limit succeeded")
	}
	st := p.Stats()
	if st.Failures != 1 || st.InUse != 2 || st.HighWater != 2 {
		t.Fatalf("stats %+v", st)
	}
	a.Free()
	if c := p.Alloc(nil); c == nil {
		t.Fatal("allocation after free failed")
	}
}

func TestPoolUnlimited(t *testing.T) {
	p := NewPool(0)
	for i := 0; i < 1000; i++ {
		if p.Alloc(nil) == nil {
			t.Fatal("unlimited pool denied allocation")
		}
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPool(1)
	m := p.Alloc(nil)
	m2 := *m // stash a copy with the pool pointer still set
	m.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m2.Free()
}

func TestFreeNilAndPoolless(t *testing.T) {
	var m *Mbuf
	m.Free() // must not panic
	(&Mbuf{Data: []byte{1}}).Free()
}

func TestQueueFIFO(t *testing.T) {
	p := NewPool(0)
	q := NewQueue(0)
	for i := 0; i < 5; i++ {
		q.Enqueue(p.Alloc([]byte{byte(i)}))
	}
	for i := 0; i < 5; i++ {
		m := q.Dequeue()
		if m == nil || m.Data[0] != byte(i) {
			t.Fatalf("dequeue %d got %v", i, m)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("empty queue returned packet")
	}
}

func TestQueueLimitDropsAndFrees(t *testing.T) {
	p := NewPool(0)
	q := NewQueue(2)
	q.Enqueue(p.Alloc(nil))
	q.Enqueue(p.Alloc(nil))
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Enqueue(p.Alloc(nil)) {
		t.Fatal("enqueue on full queue succeeded")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d", q.Drops())
	}
	if p.Stats().InUse != 2 {
		t.Fatalf("dropped mbuf not freed: %+v", p.Stats())
	}
}

func TestQueuePeek(t *testing.T) {
	p := NewPool(0)
	q := NewQueue(0)
	if q.Peek() != nil {
		t.Fatal("peek on empty")
	}
	q.Enqueue(p.Alloc([]byte{7}))
	if q.Peek().Data[0] != 7 || q.Len() != 1 {
		t.Fatal("peek must not dequeue")
	}
}

func TestQueueFlushFreesAll(t *testing.T) {
	p := NewPool(0)
	q := NewQueue(0)
	for i := 0; i < 10; i++ {
		q.Enqueue(p.Alloc(nil))
	}
	q.Flush()
	if q.Len() != 0 || p.Stats().InUse != 0 {
		t.Fatalf("flush left state: len=%d inuse=%d", q.Len(), p.Stats().InUse)
	}
}

// Property: for any interleaving of enqueues and dequeues, pool accounting
// balances and FIFO order holds.
func TestQueuePoolInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewPool(0)
		q := NewQueue(8)
		next := byte(0)
		expect := byte(0)
		for _, enq := range ops {
			if enq {
				if q.Enqueue(p.Alloc([]byte{next})) {
					next++
				} else {
					// A drop at the tail breaks the contiguous-sequence
					// shortcut; replay against an exact model instead.
					return modelCheck(ops)
				}
			} else if m := q.Dequeue(); m != nil {
				if m.Data[0] != expect {
					return false
				}
				expect++
				m.Free()
			}
		}
		return p.Stats().InUse == q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// modelCheck replays ops against a simple slice model once a drop occurs,
// verifying queue behaviour against the model exactly.
func modelCheck(ops []bool) bool {
	p := NewPool(0)
	q := NewQueue(8)
	var model []byte
	next := byte(0)
	for _, enq := range ops {
		if enq {
			ok := q.Enqueue(p.Alloc([]byte{next}))
			if ok != (len(model) < 8) {
				return false
			}
			if ok {
				model = append(model, next)
			}
			next++
		} else {
			m := q.Dequeue()
			if len(model) == 0 {
				if m != nil {
					return false
				}
				continue
			}
			if m == nil || m.Data[0] != model[0] {
				return false
			}
			model = model[1:]
			m.Free()
		}
	}
	return q.Len() == len(model) && p.Stats().InUse == len(model)
}
