package mbuf

import (
	"testing"

	"lrp/internal/race"
)

// TestPoolCycleZeroAllocs pins the steady-state buffer cycle at zero
// allocations per operation: after warm-up, Alloc/AllocCopy/AllocBuf all
// draw structs and arrays from the pool's free lists and Free returns
// them.
func TestPoolCycleZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	p := NewPool(0)
	data := make([]byte, 42)
	// Warm up every path so the struct and buffer free lists are primed.
	p.Alloc(data).Free()
	p.AllocCopy(data).Free()
	p.AllocBuf(64).Free()
	if n := testing.AllocsPerRun(100, func() {
		sink = p.Alloc(data)
		sink.Free()
	}); n != 0 {
		t.Errorf("Alloc+Free allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink = p.AllocCopy(data)
		sink.Free()
	}); n != 0 {
		t.Errorf("AllocCopy+Free allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink = p.AllocBuf(64)
		sink.Free()
	}); n != 0 {
		t.Errorf("AllocBuf+Free allocates %v per op, want 0", n)
	}
}

// TestFreeRecyclesBackingArray is the regression test for Free discarding
// its buffer: two sequential AllocCopy/Free cycles must hand back the
// same backing array, not a fresh one each time.
func TestFreeRecyclesBackingArray(t *testing.T) {
	p := NewPool(0)
	data := make([]byte, 42)
	m1 := p.AllocCopy(data)
	first := &m1.Data[0]
	m1.Free()
	m2 := p.AllocCopy(data)
	if &m2.Data[0] != first {
		t.Fatalf("second AllocCopy got a fresh backing array; want the one recycled by Free")
	}
	m2.Free()
	m3 := p.AllocCopy(data)
	if &m3.Data[0] != first {
		t.Fatalf("third AllocCopy got a fresh backing array; want the recycled one")
	}
	m3.Free()
}
