package core

// Tests for the paper's §3.1/§3.5 features: multicast groups sharing one
// NI channel, and IP forwarding via a priority-controlled daemon.

import (
	"fmt"
	"testing"

	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

var groupAddr = pkt.IP(224, 1, 2, 3)

func TestMulticastFanout(t *testing.T) {
	forEachArch(t, func(t *testing.T, r *rig) {
		const members = 3
		got := make([]int, members)
		for i := 0; i < members; i++ {
			i := i
			r.server.K.Spawn(fmt.Sprintf("member-%d", i), 0, func(p *kernel.Proc) {
				s := r.server.NewUDPSocket(p)
				if err := r.server.JoinGroup(p, s, groupAddr, 5353); err != nil {
					t.Error(err)
					return
				}
				for {
					if _, err := r.server.RecvFrom(p, s); err != nil {
						return
					}
					got[i]++
				}
			})
		}
		// Sender on the client host.
		r.client.K.Spawn("sender", 0, func(p *kernel.Proc) {
			s := r.client.NewUDPSocket(p)
			p.Delay(5000) // let every member join before the first send
			for i := 0; i < 5; i++ {
				if err := r.client.SendTo(p, s, groupAddr, 5353, []byte("announce")); err != nil {
					t.Error(err)
				}
				p.Delay(2000)
			}
		})
		r.eng.RunFor(sim.Second)
		for i, n := range got {
			if n != 5 {
				t.Fatalf("member %d received %d of 5 datagrams", i, n)
			}
		}
	})
}

func TestMulticastSharesOneChannel(t *testing.T) {
	// "Multiple sockets bound to the same UDP multicast group share a
	// single NI channel."
	r := newRig(t, ArchSoftLRP)
	base := r.server.Stats().Channels
	r.server.K.Spawn("joiner", 0, func(p *kernel.Proc) {
		s1 := r.server.NewUDPSocket(p)
		s2 := r.server.NewUDPSocket(p)
		s3 := r.server.NewUDPSocket(p)
		_ = r.server.JoinGroup(p, s1, groupAddr, 5353)
		_ = r.server.JoinGroup(p, s2, groupAddr, 5353)
		_ = r.server.JoinGroup(p, s3, groupAddr, 5353)
		if got := r.server.Stats().Channels; got != base+1 {
			t.Errorf("three members allocated %d channels, want 1", got-base)
		}
		r.server.LeaveGroup(p, s1)
		r.server.LeaveGroup(p, s2)
		if got := r.server.Stats().Channels; got != base+1 {
			t.Errorf("channel freed while members remain: %d", got-base)
		}
		r.server.LeaveGroup(p, s3)
		if got := r.server.Stats().Channels; got != base {
			t.Errorf("last leave did not free the shared channel: %d", got-base)
		}
	})
	r.eng.RunFor(100 * sim.Millisecond)
}

func TestMulticastRequiresClassD(t *testing.T) {
	r := newRig(t, ArchSoftLRP)
	r.server.K.Spawn("joiner", 0, func(p *kernel.Proc) {
		s := r.server.NewUDPSocket(p)
		if err := r.server.JoinGroup(p, s, pkt.IP(10, 1, 1, 1), 5353); err == nil {
			t.Error("joining a unicast address succeeded")
		}
	})
	r.eng.RunFor(10 * sim.Millisecond)
}

func TestForwardingDaemon(t *testing.T) {
	for _, arch := range []Arch{ArchBSD, ArchSoftLRP, ArchNILRP} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			nw := netsim.New(eng)
			gwAddr := pkt.IP(10, 0, 0, 9)
			dstAddr := pkt.IP(10, 0, 0, 2)
			gw := NewHost(eng, nw, Config{Name: "GW", Addr: gwAddr, Arch: arch})
			dst := NewHost(eng, nw, Config{Name: "B", Addr: dstAddr, Arch: arch})
			defer gw.Shutdown()
			defer dst.Shutdown()
			gw.EnableForwarding(0)

			// An off-LAN source 172.16.0.1 reaches 10.0.0.2 via GW: inject
			// packets addressed to an address the LAN can't see directly by
			// routing through the gateway.
			farSrc := pkt.IP(172, 16, 0, 1)
			farDst := pkt.IP(172, 16, 0, 2)
			nw.AddRoute(farDst, gwAddr) // traffic for the far subnet -> GW
			_ = farSrc

			var got int
			dst.K.Spawn("sink", 0, func(p *kernel.Proc) {
				s := dst.NewUDPSocket(p)
				_ = dst.BindUDP(s, 7)
				for {
					if _, err := dst.RecvFrom(p, s); err != nil {
						return
					}
					got++
				}
			})
			// Also check transit to an attached host: packets for dstAddr
			// delivered to GW's NIC must be forwarded onward.
			for i := 0; i < 10; i++ {
				b := pkt.UDPPacket(farSrc, dstAddr, 99, 7, uint16(i), 8, make([]byte, 14), true)
				d := int64(1000 * (i + 1))
				eng.At(d, func() {
					if n, ok := nw.LookupNIC(gwAddr); ok {
						n.Rx(b)
					}
				})
			}
			eng.RunFor(sim.Second)
			if got != 10 {
				t.Fatalf("destination received %d of 10 forwarded packets", got)
			}
			fs := gw.ForwardStats()
			if fs.Forwarded != 10 {
				t.Fatalf("gateway forwarded %d, want 10", fs.Forwarded)
			}
			if arch.IsLRP() {
				fp := gw.FwdProc()
				if fp == nil || fp.CPUTime() == 0 {
					t.Fatal("LRP forwarding daemon was not charged for forwarding")
				}
			}
		})
	}
}

func TestForwardingTTLExpiry(t *testing.T) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	gwAddr := pkt.IP(10, 0, 0, 9)
	gw := NewHost(eng, nw, Config{Name: "GW", Addr: gwAddr, Arch: ArchSoftLRP})
	defer gw.Shutdown()
	gw.EnableForwarding(0)
	b := pkt.UDPPacket(pkt.IP(172, 16, 0, 1), pkt.IP(10, 0, 0, 2), 99, 7, 1, 1 /* TTL=1 */, nil, true)
	eng.At(100, func() {
		if n, ok := nw.LookupNIC(gwAddr); ok {
			n.Rx(b)
		}
	})
	eng.RunFor(100 * sim.Millisecond)
	if gw.ForwardStats().TTLDrops != 1 {
		t.Fatalf("TTL-expired packet not dropped: %+v", gw.ForwardStats())
	}
}

func TestLRPForwardingPriorityControls(t *testing.T) {
	// The paper: the IP daemon's "priority controls resources spent on IP
	// forwarding. The IP daemon competes with other processes for CPU
	// time." A niced daemon on a busy LRP gateway forwards less than a
	// normal-priority one; under BSD forwarding is uncontrollable (it
	// preempts the application either way).
	measure := func(arch Arch, nice int) (fwd uint64, appWork int64) {
		eng := sim.NewEngine()
		nw := netsim.New(eng)
		gwAddr := pkt.IP(10, 0, 0, 9)
		gw := NewHost(eng, nw, Config{Name: "GW", Addr: gwAddr, Arch: arch})
		defer gw.Shutdown()
		gw.EnableForwarding(nice)
		// A local compute-bound application on the gateway.
		app := gw.K.Spawn("localapp", 0, func(p *kernel.Proc) {
			for {
				p.Compute(sim.Millisecond)
			}
		})
		// Transit flood: 12k pkts/s through the gateway.
		n, _ := nw.LookupNIC(gwAddr)
		var pump func()
		count := 0
		pump = func() {
			if count >= 12000 {
				return
			}
			count++
			b := pkt.UDPPacket(pkt.IP(172, 16, 0, 1), pkt.IP(10, 0, 0, 2), 99, 7, uint16(count), 8, make([]byte, 14), true)
			n.Rx(b)
			eng.After(83, pump)
		}
		eng.At(0, pump)
		eng.RunFor(sim.Second)
		return gw.ForwardStats().Forwarded, app.UTime
	}

	fwdHi, appHi := measure(ArchSoftLRP, 0)
	fwdLo, appLo := measure(ArchSoftLRP, 20)
	if fwdLo >= fwdHi {
		t.Errorf("niced daemon forwarded %d >= normal %d", fwdLo, fwdHi)
	}
	if appLo <= appHi {
		t.Errorf("nicing the daemon should give the app more CPU: %d vs %d", appLo, appHi)
	}
	// BSD: forwarding happens at softint priority regardless; the local
	// app is starved of the same amount either way, and the "nice" knob
	// does nothing.
	fwdBsd0, appBsd0 := measure(ArchBSD, 0)
	fwdBsd20, _ := measure(ArchBSD, 20)
	if diff := fwdBsd20 - fwdBsd0; diff > fwdBsd0/10 || fwdBsd0-fwdBsd20 > fwdBsd0/10 {
		t.Errorf("BSD forwarding rate should ignore the nice knob: %d vs %d (diff %d)", fwdBsd0, fwdBsd20, diff)
	}
	if appBsd0 > appHi {
		t.Errorf("BSD app (%d µs) should not beat LRP app (%d µs) under transit load", appBsd0, appHi)
	}
}

func TestPollingStableUnderOverload(t *testing.T) {
	// The M&R mitigation must not livelock: delivered throughput under a
	// 20k pkts/s blast stays near the quota-bound rate while BSD (same
	// eager processing, interrupt-driven) collapses.
	measure := func(arch Arch) float64 {
		eng := sim.NewEngine()
		nw := netsim.New(eng)
		server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: arch})
		defer server.Shutdown()
		var got uint64
		server.K.Spawn("sink", 0, func(p *kernel.Proc) {
			s := server.NewUDPSocket(p)
			_ = server.BindUDP(s, 7)
			for {
				if _, err := server.RecvFrom(p, s); err != nil {
					return
				}
				got++
				p.Compute(10)
			}
		})
		rng := sim.NewRand(17)
		var pump func()
		pump = func() {
			nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, make([]byte, 14), true))
			eng.After(rng.ExpDuration(50), pump) // ~20k pkts/s Poisson
		}
		eng.At(0, pump)
		eng.RunFor(2 * sim.Second)
		return float64(got) / 2
	}
	polling := measure(ArchPolling)
	bsd := measure(ArchBSD)
	if polling < 3000 {
		t.Fatalf("polling delivered only %.0f/s at 20k offered", polling)
	}
	if bsd > polling/2 {
		t.Fatalf("BSD (%.0f/s) should collapse while polling (%.0f/s) holds", bsd, polling)
	}
}

func TestPollingReturnsToInterrupts(t *testing.T) {
	// After the overload subsides, the system must leave polled mode and
	// answer low-rate traffic promptly again.
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: ArchPolling})
	defer server.Shutdown()
	var rtts []int64
	server.K.Spawn("echo", 0, func(p *kernel.Proc) {
		s := server.NewUDPSocket(p)
		_ = server.BindUDP(s, 7)
		for {
			d, err := server.RecvFrom(p, s)
			if err != nil {
				return
			}
			rtts = append(rtts, p.Now()-d.Arrival)
		}
	})
	// Burst to force polled mode.
	eng.At(1000, func() {
		for i := 0; i < 64; i++ {
			nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, uint16(i), 64, make([]byte, 14), true))
		}
	})
	// A lone packet long after the burst: must be handled via interrupt
	// with low latency.
	eng.At(sim.Second, func() {
		nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 99, 64, make([]byte, 14), true))
	})
	eng.RunFor(2 * sim.Second)
	if server.Stats().PollTransitions == 0 {
		t.Fatal("burst never triggered polled mode")
	}
	if len(rtts) == 0 {
		t.Fatal("no packets delivered")
	}
	last := rtts[len(rtts)-1]
	if last > 500 {
		t.Fatalf("post-overload packet took %dµs; interrupts not re-enabled", last)
	}
}

func TestPollingLacksTrafficSeparation(t *testing.T) {
	// "their system does not achieve traffic separation, and therefore
	// drops packets irrespective of their destination during periods of
	// overload" — a low-rate flow through an overloaded polling host loses
	// packets; through a SOFT-LRP host it does not.
	lost := func(arch Arch) int {
		eng := sim.NewEngine()
		nw := netsim.New(eng)
		server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: arch})
		defer server.Shutdown()
		// The overloaded socket.
		server.K.Spawn("sink", 0, func(p *kernel.Proc) {
			s := server.NewUDPSocket(p)
			_ = server.BindUDP(s, 7)
			for {
				if _, err := server.RecvFrom(p, s); err != nil {
					return
				}
				p.Compute(10)
			}
		})
		// The victim flow: one probe every 10ms to a different socket.
		var got int
		server.K.Spawn("victim", 0, func(p *kernel.Proc) {
			s := server.NewUDPSocket(p)
			_ = server.BindUDP(s, 8)
			for {
				if _, err := server.RecvFrom(p, s); err != nil {
					return
				}
				got++
			}
		})
		rng := sim.NewRand(23)
		var blast func()
		blast = func() {
			nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, make([]byte, 14), true))
			eng.After(rng.ExpDuration(50), blast) // ~20k pkts/s
		}
		eng.At(0, blast)
		// Probes start after 100ms so both sockets are bound well before
		// the first one (binding itself races the blast for CPU).
		const probes = 100
		for i := 0; i < probes; i++ {
			seq := uint16(i)
			eng.At(int64(100_000+10_000*(i+1)), func() {
				nw.Inject(pkt.UDPPacket(addrC, addrB, 10, 8, seq, 64, []byte("probe"), true))
			})
		}
		eng.RunFor(2 * sim.Second)
		return probes - got
	}
	pollLost := lost(ArchPolling)
	lrpLost := lost(ArchSoftLRP)
	if lrpLost > 2 {
		t.Fatalf("SOFT-LRP lost %d probes; traffic separation broken", lrpLost)
	}
	if pollLost < 10 {
		t.Fatalf("polling lost only %d probes; expected indiscriminate drops", pollLost)
	}
}
