package core

// Resumable socket operations for stackless processes.
//
// Every blocking socket call in udpsock.go/tcpcalls.go is built on a step
// machine in this file (or tcpsteps.go): an exported *Op frame holding the
// operation's program counter and locals, plus a Step method the caller
// invokes repeatedly. A Step method returns true when the operation has
// completed (results live in the frame) and false when it has issued a
// scheduling request via the kernel's Req* setters — a stackless caller
// then returns to the scheduler, while a goroutine caller loops with
// p.Block(). Both drivers produce the same request stream, so scheduling,
// accounting and event order are identical in either mode (the archive
// byte-identity tests pin this).
//
// Fidelity rule: each machine replicates the exact interleaving of reads,
// mutations and yields of the blocking original it replaced — e.g. the
// receive deadline is computed before the syscall charge, a raw packet's
// bytes are read only after the protocol-processing charge, and zero-cost
// charges fall through inline without yielding, exactly as the blocking
// Compute variants return without yielding.

import (
	"lrp/internal/ipv4"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// SendToOp is the frame of one UDP transmit (SendToStep).
type SendToOp struct {
	pc    int
	frags [][]byte

	// Err is the operation's result, valid once Step returns true.
	Err error
}

// Reset prepares the frame for a fresh transmit, keeping the fragment
// scratch so repeated sends through one frame do not allocate.
func (fr *SendToOp) Reset() {
	fr.pc = sendCharge
	fr.Err = nil
}

// SendTo machine states.
const (
	sendCharge = iota // charge the syscall + transmit-side protocol cost
	sendBuild         // build the packet, fragment, charge per extra fragment
	sendXmit          // copy fragments into mbufs and hand to the NIC
)

// SendToStep advances one UDP transmit. All architectures perform
// transmit-side processing in the sender's context, as BSD does. dst,
// dport and data must be the same values on every call for one operation.
func (h *Host) SendToStep(p *kernel.Proc, s *socket.Socket, dst pkt.Addr, dport uint16, data []byte, fr *SendToOp) bool {
	for {
		switch fr.pc {
		case sendCharge:
			if s.Closed {
				fr.Err = ErrClosed
				return true
			}
			if !s.Bound {
				if err := h.BindUDP(s, 0); err != nil {
					fr.Err = err
					return true
				}
			}
			cost := h.CM.SyscallFixed + h.CM.CopyCost(len(data)) + h.CM.UDPOutCost + h.CM.IPOutCost
			if !s.NoUDPChecksum {
				cost += h.CM.ChecksumCost(len(data))
			}
			fr.pc = sendBuild
			if p.ReqComputeSys(cost) {
				return false
			}
		case sendBuild:
			// Build into the host's scratch buffer; sendFrags copies each
			// fragment into pool-owned storage, so the scratch is free for
			// the next send.
			h.txScratch = pkt.AppendUDP(h.txScratch[:0], h.Addr, dst, s.LPort, dport, h.nextIPID(), 64, data, !s.NoUDPChecksum)
			b := h.txScratch
			fr.frags = append(fr.frags[:0], b)
			if len(b) > h.MTU {
				frags := ipv4.Fragment(b, h.MTU)
				if frags == nil {
					fr.Err = ErrNoBufs
					return true
				}
				fr.frags = frags
				fr.pc = sendXmit
				if len(frags) > 1 && p.ReqComputeSys(int64(len(frags)-1)*h.CM.IPOutCost) {
					return false
				}
				continue
			}
			fr.pc = sendXmit
		case sendXmit:
			fr.Err = h.sendFrags(s, fr.frags)
			return true
		}
	}
}

// RecvFromOp is the frame of one UDP receive (RecvFromStep), covering the
// plain, deadline-bounded, and multicast-member receive paths.
type RecvFromOp struct {
	// Timed selects the deadline-bounded variant; Timeout is its budget in
	// µs. Both must be set before the first Step call.
	Timed   bool
	Timeout int64

	pc       int
	deadline sim.Time
	g        *mcastGroup
	m        *mbuf.Mbuf
	lazy     lazyInputOp
	fan      mcastFanoutOp
	fanD     socket.Datagram

	// Results, valid once Step returns true: the datagram, whether one
	// arrived (false only on a Timed expiry), and any error.
	D   socket.Datagram
	OK  bool
	Err error
}

// Reset prepares the frame for a fresh receive with the same deadline
// configuration.
func (fr *RecvFromOp) Reset() {
	*fr = RecvFromOp{Timed: fr.Timed, Timeout: fr.Timeout}
}

// RecvFrom machine states.
const (
	recvStart     = iota // record the deadline, charge the syscall entry
	recvDispatch         // route to the unicast or multicast loop
	recvLoop             // unicast: poll queues or sleep
	recvLazy             // unicast: lazy protocol processing of one raw packet
	recvTimedWake        // unicast: woke from a timed sleep
	recvMcastLoop        // multicast: poll queues or sleep
	recvMcastLazy        // multicast: lazy processing on the shared channel
	recvMcastFan         // multicast: fan a datagram out to the members
	recvDone             // final copy-out charge issued
)

// RecvFromStep advances one UDP receive. Under LRP, protocol processing
// for queued raw packets happens here — "in the context of the user
// process performing the system call".
func (h *Host) RecvFromStep(p *kernel.Proc, s *socket.Socket, fr *RecvFromOp) bool {
	for {
		switch fr.pc {
		case recvStart:
			if fr.Timed {
				fr.deadline = h.Eng.Now() + fr.Timeout
			}
			fr.pc = recvDispatch
			if p.ReqComputeSys(h.CM.SyscallFixed) {
				return false
			}
		case recvDispatch:
			if !fr.Timed {
				if g := h.mcastMember[s]; g != nil {
					fr.g = g
					fr.pc = recvMcastLoop
					continue
				}
			}
			fr.pc = recvLoop
		case recvLoop:
			if s.Closed {
				fr.Err = ErrClosed
				return true
			}
			// Already-processed datagrams first (softint under BSD/Early-
			// Demux; the idle thread under LRP).
			if d, ok := s.RecvDgrams.Dequeue(); ok {
				fr.D = d
				fr.OK = true
				fr.pc = recvDone
				if p.ReqComputeSys(h.CM.SockQueueCost + h.CM.CopyCost(len(d.Data))) {
					return false
				}
				continue
			}
			// LRP lazy path: raw packets on the NI channel.
			if s.NIChan != nil {
				if m := s.NIChan.Queue.Dequeue(); m != nil {
					fr.m = m
					fr.lazy = lazyInputOp{}
					fr.pc = recvLazy
					continue
				}
				s.NIChan.IntrRequested = true
			}
			if fr.Timed {
				remain := fr.deadline - h.Eng.Now()
				if remain <= 0 {
					return true // OK=false: deadline passed
				}
				fr.pc = recvTimedWake
				p.ReqSleepTimeout(&s.RcvWait, remain)
				return false
			}
			p.ReqSleep(&s.RcvWait)
			return false
		case recvTimedWake:
			if p.TimedOut() {
				return true // OK=false: timed out while asleep
			}
			fr.pc = recvLoop
		case recvLazy:
			if !h.udpLazyInputStep(p, p, s, fr.m, &fr.lazy) {
				return false
			}
			fr.m = nil
			if !fr.lazy.ok {
				fr.pc = recvLoop // bad packet; keep trying
				continue
			}
			fr.D = fr.lazy.d
			fr.OK = true
			fr.pc = recvDone
			if p.ReqComputeSys(h.CM.CopyCost(len(fr.D.Data))) {
				return false
			}
		case recvMcastLoop:
			// Member-socket receive: drain the member queue, else lazily
			// process the group's shared channel and fan out.
			if s.Closed {
				fr.Err = ErrClosed
				return true
			}
			if d, ok := s.RecvDgrams.Dequeue(); ok {
				fr.D = d
				fr.OK = true
				fr.pc = recvDone
				if p.ReqComputeSys(h.CM.SockQueueCost + h.CM.CopyCost(len(d.Data))) {
					return false
				}
				continue
			}
			if ch := fr.g.gsock.NIChan; ch != nil {
				if m := ch.Queue.Dequeue(); m != nil {
					fr.m = m
					fr.lazy = lazyInputOp{}
					fr.pc = recvMcastLazy
					continue
				}
				fr.g.gsock.Owner = fr.g.bestOwner()
				ch.IntrRequested = true
			}
			p.ReqSleep(&s.RcvWait)
			return false
		case recvMcastLazy:
			if !h.udpLazyInputStep(p, p, fr.g.gsock, fr.m, &fr.lazy) {
				return false
			}
			fr.m = nil
			if !fr.lazy.ok {
				fr.pc = recvMcastLoop
				continue
			}
			fr.fanD = fr.lazy.d
			if mm := fr.fanD.M; mm != nil {
				// Fanout copies share the bytes, so no member may recycle
				// them: disown the storage (the GC reclaims it) and recycle
				// just the struct, as the pre-handoff code did.
				fr.fanD.M = nil
				mm.Detach()
				mm.EndTransfer()
			}
			fr.fan = mcastFanoutOp{members: fr.g.members}
			fr.pc = recvMcastFan
		case recvMcastFan:
			if !h.mcastFanoutStep(p, fr.fanD, &fr.fan) {
				return false
			}
			fr.fan = mcastFanoutOp{}
			fr.pc = recvMcastLoop // our own queue now holds the datagram
		case recvDone:
			return true
		}
	}
}

// lazyInputOp is the frame of udpLazyInputStep: IP+UDP receive processing
// for one raw packet in process context.
type lazyInputOp struct {
	pc      int
	b       []byte
	arrival sim.Time
	whole   []byte
	drain   fragDrainOp
	d       socket.Datagram
	ok      bool
}

// Lazy-input machine states.
const (
	lazyCharge  = iota // charge dequeue + protocol-processing cost
	lazyProcess        // read the packet, run reassembly
	lazyDrain          // pull missing fragments off the fragment channel
	lazyDecode         // decode headers and build the datagram
)

// udpLazyInputStep performs IP+UDP receive processing for one raw packet
// in process context. CPU is consumed by p but charged to owner (identical
// to p for a process in a receive call; the socket owner when the idle
// thread processes on its behalf). It consults the fragment channel when
// reassembly is missing pieces.
func (h *Host) udpLazyInputStep(p, owner *kernel.Proc, s *socket.Socket, m *mbuf.Mbuf, fr *lazyInputOp) bool {
	for {
		switch fr.pc {
		case lazyCharge:
			fr.pc = lazyProcess
			if p.ReqComputeSysFor(owner, h.channelDequeueCost()+h.lrpProtoInCost(m.Data)) {
				return false
			}
		case lazyProcess:
			fr.b = m.Data
			fr.arrival = m.Arrival
			// Release the pool slot before protocol processing (matching the
			// old free-then-read accounting) but keep the storage until the
			// raw bytes are no longer needed — or hand the mbuf to the
			// delivered datagram when the bytes escape into it. The transfer
			// spans scheduler yields, so the flow-sensitive pairing check
			// cannot follow it: every state that completes the machine ends
			// the transfer or moves its ownership into Datagram.M.
			m.BeginTransfer() //lrp:nolint mbufown
			whole, done := h.reasm.Input(fr.b, h.Eng.Now())
			if !done {
				fr.drain = fragDrainOp{}
				fr.pc = lazyDrain
				continue
			}
			fr.whole = whole
			fr.pc = lazyDecode
		case lazyDrain:
			if !h.fragDrainStep(p, owner, fr.b, &fr.drain) {
				return false
			}
			if !fr.drain.ok {
				m.EndTransfer()
				return true // ok=false
			}
			fr.whole = fr.drain.whole
			fr.pc = lazyDecode
		case lazyDecode:
			whole := fr.whole
			ih, hlen, err := pkt.DecodeIPv4(whole)
			if err != nil || ih.Proto != pkt.ProtoUDP {
				s.Stats.ProtoDrops++
				m.EndTransfer()
				return true
			}
			seg := whole[hlen:int(ih.TotalLen)]
			uh, err := pkt.DecodeUDP(seg, ih.Src, ih.Dst)
			if err != nil {
				s.Stats.ProtoDrops++
				m.EndTransfer()
				return true
			}
			s.Stats.RxDelivered++
			s.Stats.RxBytes += uint64(int(uh.Length) - pkt.UDPHeaderLen)
			var own *mbuf.Mbuf
			if aliases(whole, fr.b) {
				// The datagram rides in the packet's own buffer: hand the
				// mbuf over with it so the consumer can recycle the storage
				// once the bytes are dead (Datagram.Release).
				own = m
			} else {
				m.EndTransfer() // reassembled elsewhere; packet buffer is done
			}
			fr.d = socket.Datagram{
				Data:    seg[pkt.UDPHeaderLen:int(uh.Length)],
				Src:     ih.Src,
				SPort:   uh.SrcPort,
				Arrival: fr.arrival,
				M:       own,
			}
			fr.ok = true
			return true
		}
	}
}

// fragDrainOp is the frame of fragDrainStep.
type fragDrainOp struct {
	pc    int
	fm    *mbuf.Mbuf
	whole []byte
	ok    bool
}

// Fragment-drain machine states.
const (
	fragCheck   = iota // is reassembly actually missing pieces?
	fragDequeue        // pull the next queued fragment, charge for it
	fragInput          // feed it to the reassembler
)

// fragDrainStep feeds packets from the special fragment channel to the
// reassembler ("The IP reassembly function checks this channel queue when
// it misses fragments during reassembly"). Completes with ok and the
// assembled datagram if one emerges. p may be nil (engine-context callers
// that pre-charged); a nil p never yields.
func (h *Host) fragDrainStep(p, owner *kernel.Proc, trigger []byte, fr *fragDrainOp) bool {
	for {
		switch fr.pc {
		case fragCheck:
			if h.fragChan == nil {
				return true
			}
			ih, _, err := pkt.DecodeIPv4(trigger)
			if err != nil || !h.reasm.MissingFor(ih.Src, ih.Dst, ih.ID, ih.Proto) {
				return true
			}
			fr.pc = fragDequeue
		case fragDequeue:
			fm := h.fragChan.Queue.Dequeue()
			if fm == nil {
				return true // ok=false
			}
			fr.fm = fm
			fr.pc = fragInput
			if p != nil && p.ReqComputeSysFor(owner, h.CM.IPInCost) {
				return false
			}
		case fragInput:
			// Fragments are copied by the reassembler; the assembled datagram
			// never aliases this mbuf, so its storage recycles immediately.
			fb := fr.fm.Data
			fr.fm.BeginTransfer()
			whole, done := h.reasm.Input(fb, h.Eng.Now())
			fr.fm.EndTransfer()
			fr.fm = nil
			if done {
				fr.whole = whole
				fr.ok = true
				return true
			}
			fr.pc = fragDequeue
		}
	}
}

// mcastFanoutOp is the frame of mcastFanoutStep. The member list is
// captured when the frame is initialized, like the range clause of the
// loop it replaces.
type mcastFanoutOp struct {
	pc      int
	members []*socket.Socket
	i       int
}

// mcastFanoutStep delivers one processed datagram to every member socket.
// Each enqueue costs SockQueueCost in the current context (p may be nil
// for softint callers whose cost was pre-charged; a nil p never yields).
func (h *Host) mcastFanoutStep(p *kernel.Proc, d socket.Datagram, fr *mcastFanoutOp) bool {
	for {
		switch fr.pc {
		case 0:
			if fr.i >= len(fr.members) {
				return true
			}
			m := fr.members[fr.i]
			if m.Closed || m.RecvDgrams == nil {
				fr.i++
				continue
			}
			fr.pc = 1
			if p != nil && p.ReqComputeSys(h.CM.SockQueueCost) {
				return false
			}
		case 1:
			m := fr.members[fr.i]
			if m.RecvDgrams.Enqueue(d) {
				m.Stats.RxDelivered++
				m.Stats.RxBytes += uint64(len(d.Data))
				m.RcvWait.WakeupAll()
			}
			fr.i++
			fr.pc = 0
		}
	}
}
