package core

import (
	"bytes"
	"fmt"
	"testing"

	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

var allArchs = []Arch{ArchBSD, ArchNILRP, ArchSoftLRP, ArchEarlyDemux}

var (
	addrA = pkt.IP(10, 0, 0, 1)
	addrB = pkt.IP(10, 0, 0, 2)
	addrC = pkt.IP(10, 0, 0, 3)
)

// rig is a two-host test network with the server on the arch under test.
type rig struct {
	eng    *sim.Engine
	nw     *netsim.Network
	server *Host
	client *Host
}

func newRig(t *testing.T, arch Arch) *rig {
	t.Helper()
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	server := NewHost(eng, nw, Config{Name: "server", Addr: addrB, Arch: arch})
	client := NewHost(eng, nw, Config{Name: "client", Addr: addrA, Arch: arch})
	t.Cleanup(func() {
		server.Shutdown()
		client.Shutdown()
	})
	return &rig{eng: eng, nw: nw, server: server, client: client}
}

func forEachArch(t *testing.T, fn func(t *testing.T, r *rig)) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			fn(t, newRig(t, arch))
		})
	}
}

func TestUDPEndToEnd(t *testing.T) {
	forEachArch(t, func(t *testing.T, r *rig) {
		var got []socket.Datagram
		r.server.K.Spawn("srv", 0, func(p *kernel.Proc) {
			s := r.server.NewUDPSocket(p)
			if err := r.server.BindUDP(s, 7); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 3; i++ {
				d, err := r.server.RecvFrom(p, s)
				if err != nil {
					t.Error(err)
					return
				}
				got = append(got, d)
			}
		})
		r.client.K.Spawn("cli", 0, func(p *kernel.Proc) {
			s := r.client.NewUDPSocket(p)
			for i := 0; i < 3; i++ {
				if err := r.client.SendTo(p, s, addrB, 7, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
					t.Error(err)
				}
				p.Delay(1000)
			}
		})
		r.eng.RunFor(sim.Second)
		if len(got) != 3 {
			t.Fatalf("received %d datagrams", len(got))
		}
		for i, d := range got {
			if string(d.Data) != fmt.Sprintf("msg-%d", i) {
				t.Fatalf("datagram %d = %q", i, d.Data)
			}
			if d.Src != addrA {
				t.Fatalf("src = %v", d.Src)
			}
		}
	})
}

func TestUDPEcho(t *testing.T) {
	forEachArch(t, func(t *testing.T, r *rig) {
		r.server.K.Spawn("echo", 0, func(p *kernel.Proc) {
			s := r.server.NewUDPSocket(p)
			_ = r.server.BindUDP(s, 7)
			for {
				d, err := r.server.RecvFrom(p, s)
				if err != nil {
					return
				}
				_ = r.server.SendTo(p, s, d.Src, d.SPort, d.Data)
			}
		})
		var rtt int64
		r.client.K.Spawn("cli", 0, func(p *kernel.Proc) {
			s := r.client.NewUDPSocket(p)
			_ = r.client.BindUDP(s, 0)
			start := p.Now()
			_ = r.client.SendTo(p, s, addrB, 7, []byte("x"))
			if _, err := r.client.RecvFrom(p, s); err != nil {
				t.Error(err)
				return
			}
			rtt = p.Now() - start
		})
		r.eng.RunFor(sim.Second)
		if rtt == 0 {
			t.Fatal("no echo round trip")
		}
		// Sanity bounds: hundreds of µs on an idle simulated machine.
		if rtt < 50 || rtt > 5000 {
			t.Fatalf("rtt = %dµs", rtt)
		}
	})
}

func TestUDPLargeDatagramFragments(t *testing.T) {
	forEachArch(t, func(t *testing.T, r *rig) {
		payload := bytes.Repeat([]byte{0x42}, 30000) // > MTU: 4 fragments
		var got []byte
		r.server.K.Spawn("srv", 0, func(p *kernel.Proc) {
			s := r.server.NewUDPSocket(p)
			_ = r.server.BindUDP(s, 7)
			d, err := r.server.RecvFrom(p, s)
			if err == nil {
				got = d.Data
			}
		})
		r.client.K.Spawn("cli", 0, func(p *kernel.Proc) {
			s := r.client.NewUDPSocket(p)
			_ = r.client.SendTo(p, s, addrB, 7, payload)
		})
		r.eng.RunFor(sim.Second)
		if !bytes.Equal(got, payload) {
			t.Fatalf("reassembled %d bytes, want %d", len(got), len(payload))
		}
	})
}

func TestUDPOverloadEarlyDiscardLocations(t *testing.T) {
	// Flood a slow receiver and check that drops happen at the location
	// each architecture predicts: socket queue (BSD), NI channel (LRP),
	// early discard (Early-Demux).
	forEachArch(t, func(t *testing.T, r *rig) {
		r.server.K.Spawn("slow", 0, func(p *kernel.Proc) {
			s := r.server.NewUDPSocket(p)
			_ = r.server.BindUDP(s, 7)
			for {
				if _, err := r.server.RecvFrom(p, s); err != nil {
					return
				}
				p.Compute(2000) // 2ms per packet: max 500 pkts/s
			}
		})
		// Inject 3000 pkts/s for half a second from a raw source.
		payload := make([]byte, 14)
		var inject func()
		n := 0
		inject = func() {
			if n >= 1500 {
				return
			}
			n++
			r.nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, uint16(n), 64, payload, true))
			r.eng.After(333, inject)
		}
		r.eng.At(0, inject)
		r.eng.RunFor(sim.Second)
		st := r.server.Stats()
		total := st.SockQDrops + st.ChannelDrops + st.EarlyDrops + st.IPQDrops
		if total == 0 {
			t.Fatalf("overload produced no drops: %+v", st)
		}
		switch r.server.Arch {
		case ArchBSD:
			if st.SockQDrops == 0 {
				t.Fatalf("BSD should drop at the socket queue: %+v", st)
			}
			if st.ChannelDrops != 0 || st.EarlyDrops != 0 {
				t.Fatalf("BSD dropped at LRP locations: %+v", st)
			}
		case ArchNILRP, ArchSoftLRP:
			if st.ChannelDrops == 0 {
				t.Fatalf("LRP should drop at the NI channel: %+v", st)
			}
			if st.SockQDrops != 0 || st.IPQDrops != 0 {
				t.Fatalf("LRP dropped at BSD locations: %+v", st)
			}
		case ArchEarlyDemux:
			if st.EarlyDrops == 0 {
				t.Fatalf("Early-Demux should drop at early discard: %+v", st)
			}
		}
	})
}

func TestTCPEndToEnd(t *testing.T) {
	forEachArch(t, func(t *testing.T, r *rig) {
		const msg = "GET / HTTP/1.0\r\n\r\n"
		const reply = "HTTP/1.0 200 OK\r\n\r\nhello"
		var gotReq, gotReply string
		r.server.K.Spawn("srv", 0, func(p *kernel.Proc) {
			l := r.server.NewTCPSocket(p)
			_ = r.server.BindTCP(l, 80)
			_ = r.server.Listen(p, l, 5)
			cs, err := r.server.Accept(p, l)
			if err != nil {
				t.Error(err)
				return
			}
			data, err := r.server.RecvStream(p, cs, 1024)
			if err != nil {
				t.Error(err)
				return
			}
			gotReq = string(data)
			if _, err := r.server.SendStream(p, cs, []byte(reply)); err != nil {
				t.Error(err)
			}
			r.server.CloseTCP(p, cs)
		})
		r.client.K.Spawn("cli", 0, func(p *kernel.Proc) {
			s := r.client.NewTCPSocket(p)
			if err := r.client.ConnectTCP(p, s, addrB, 80); err != nil {
				t.Error(err)
				return
			}
			if _, err := r.client.SendStream(p, s, []byte(msg)); err != nil {
				t.Error(err)
				return
			}
			var buf []byte
			for {
				data, err := r.client.RecvStream(p, s, 1024)
				if err != nil {
					t.Error(err)
					return
				}
				if data == nil {
					break // EOF
				}
				buf = append(buf, data...)
			}
			gotReply = string(buf)
			r.client.CloseTCP(p, s)
		})
		r.eng.RunFor(5 * sim.Second)
		if gotReq != msg {
			t.Fatalf("server got %q", gotReq)
		}
		if gotReply != reply {
			t.Fatalf("client got %q", gotReply)
		}
	})
}

func TestTCPBulkTransfer(t *testing.T) {
	forEachArch(t, func(t *testing.T, r *rig) {
		const total = 2 << 20
		var received int
		r.server.K.Spawn("sink", 0, func(p *kernel.Proc) {
			l := r.server.NewTCPSocket(p)
			_ = r.server.BindTCP(l, 5001)
			_ = r.server.Listen(p, l, 5)
			cs, err := r.server.Accept(p, l)
			if err != nil {
				return
			}
			for {
				data, err := r.server.RecvStream(p, cs, 64*1024)
				if err != nil || data == nil {
					return
				}
				received += len(data)
			}
		})
		r.client.K.Spawn("src", 0, func(p *kernel.Proc) {
			s := r.client.NewTCPSocket(p)
			if err := r.client.ConnectTCP(p, s, addrB, 5001); err != nil {
				return
			}
			chunk := make([]byte, 32*1024)
			sent := 0
			for sent < total {
				n, err := r.client.SendStream(p, s, chunk)
				if err != nil {
					return
				}
				sent += n
			}
			r.client.CloseTCP(p, s)
		})
		r.eng.RunFor(30 * sim.Second)
		if received != total {
			t.Fatalf("received %d of %d bytes", received, total)
		}
	})
}

func TestLRPSYNFloodDiscardsAtChannel(t *testing.T) {
	// SYNs beyond the listen backlog must be dropped at the NI channel
	// (processing disabled) under LRP, costing no protocol processing.
	r := newRig(t, ArchSoftLRP)
	r.server.K.Spawn("dummy", 0, func(p *kernel.Proc) {
		l := r.server.NewTCPSocket(p)
		_ = r.server.BindTCP(l, 99)
		_ = r.server.Listen(p, l, 4)
		p.Sleep(&l.AcceptWait) // never accepts
	})
	// Flood fake SYNs from unique fake sources.
	n := 0
	var flood func()
	flood = func() {
		if n >= 2000 {
			return
		}
		n++
		h := pkt.TCPHeader{
			SrcPort: uint16(1000 + n%50000), DstPort: 99,
			Seq: uint32(n), Flags: pkt.TCPSyn, Window: 8192, MSS: 1460,
		}
		r.nw.Inject(pkt.TCPSegment(addrA, addrB, &h, uint16(n), 64, nil))
		r.eng.After(100, flood)
	}
	r.eng.At(0, flood)
	r.eng.RunFor(sim.Second)
	st := r.server.Stats()
	if st.DisabledDrops == 0 {
		t.Fatalf("no SYNs discarded at disabled channel: %+v", st)
	}
	if st.DisabledDrops < 1500 {
		t.Fatalf("only %d of ~1996 excess SYNs discarded at the channel", st.DisabledDrops)
	}
}

func TestNIChannelDeallocInTimeWait(t *testing.T) {
	// NI-LRP deallocates a connection's channel when it enters TIME_WAIT;
	// channel count must return to baseline after connections churn.
	r := newRig(t, ArchNILRP)
	r.server.CM.TimeWaitDur = 100 * 1000 // 100ms for test speed
	r.client.CM.TimeWaitDur = 100 * 1000
	done := 0
	r.server.K.Spawn("srv", 0, func(p *kernel.Proc) {
		l := r.server.NewTCPSocket(p)
		_ = r.server.BindTCP(l, 80)
		_ = r.server.Listen(p, l, 8)
		for {
			cs, err := r.server.Accept(p, l)
			if err != nil {
				return
			}
			// Read request, reply, close (server does active close ->
			// server side enters TIME_WAIT, as on a web server).
			if data, _ := r.server.RecvStream(p, cs, 1024); data != nil {
				_, _ = r.server.SendStream(p, cs, []byte("resp"))
			}
			r.server.CloseTCP(p, cs)
		}
	})
	r.client.K.Spawn("cli", 0, func(p *kernel.Proc) {
		for i := 0; i < 5; i++ {
			s := r.client.NewTCPSocket(p)
			if err := r.client.ConnectTCP(p, s, addrB, 80); err != nil {
				t.Error(err)
				return
			}
			_, _ = r.client.SendStream(p, s, []byte("req"))
			for {
				data, err := r.client.RecvStream(p, s, 1024)
				if err != nil || data == nil {
					break
				}
			}
			r.client.CloseTCP(p, s)
			done++
		}
	})
	r.eng.RunFor(10 * sim.Second)
	if done != 5 {
		t.Fatalf("completed %d of 5 exchanges", done)
	}
	st := r.server.Stats()
	// Baseline channels: listener + ICMP daemon. All per-connection
	// channels must be gone (TIME_WAIT dealloc + final close).
	if st.Channels > 2 {
		t.Fatalf("%d channels still allocated (leak)", st.Channels)
	}
	if st.MaxChannels <= 2 {
		t.Fatalf("max channels %d: per-connection channels never existed?", st.MaxChannels)
	}
}

func TestICMPPing(t *testing.T) {
	for _, arch := range []Arch{ArchBSD, ArchSoftLRP, ArchNILRP} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			r := newRig(t, arch)
			r.client.K.Spawn("ping", 0, func(p *kernel.Proc) {
				for i := 0; i < 4; i++ {
					r.client.Ping(p, addrB, uint16(i), 56)
					p.Delay(10 * 1000)
				}
			})
			r.eng.RunFor(sim.Second)
			if got := r.server.EchoReplies(); got != 4 {
				t.Fatalf("server sent %d echo replies, want 4", got)
			}
		})
	}
}

func TestLRPChargesReceiverNotVictim(t *testing.T) {
	// A compute-bound victim shares the CPU with a blast receiver. Under
	// BSD, interrupt-level protocol processing is charged to the victim;
	// under LRP (NI demux) the victim is charged almost nothing.
	measure := func(arch Arch) (victimCharged, receiverCharged int64) {
		r := newRig(t, arch)
		defer r.eng.Stop()
		var victim, receiver *kernel.Proc
		victim = r.server.K.Spawn("victim", 0, func(p *kernel.Proc) {
			for {
				p.Compute(10 * 1000)
			}
		})
		receiver = r.server.K.Spawn("blast-recv", 0, func(p *kernel.Proc) {
			s := r.server.NewUDPSocket(p)
			_ = r.server.BindUDP(s, 7)
			for {
				if _, err := r.server.RecvFrom(p, s); err != nil {
					return
				}
			}
		})
		payload := make([]byte, 14)
		n := 0
		var inject func()
		inject = func() {
			if n >= 3000 {
				return
			}
			n++
			r.nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, uint16(n), 64, payload, true))
			r.eng.After(300, inject)
		}
		r.eng.At(0, inject)
		r.eng.RunFor(sim.Second)
		vc, rc := victim.IntrCharged, receiver.IntrCharged+receiver.STime
		r.server.Shutdown()
		r.client.Shutdown()
		return vc, rc
	}
	bsdVictim, _ := measure(ArchBSD)
	lrpVictim, lrpReceiver := measure(ArchNILRP)
	if bsdVictim == 0 {
		t.Fatal("BSD charged the victim nothing; mis-accounting not modeled")
	}
	if lrpVictim >= bsdVictim/5 {
		t.Fatalf("NI-LRP charged victim %dµs vs BSD %dµs; want <20%%", lrpVictim, bsdVictim)
	}
	if lrpReceiver == 0 {
		t.Fatal("LRP charged the receiver nothing")
	}
}

func TestIdleThreadProcessesWhenReceiverBusy(t *testing.T) {
	// Under LRP, a packet arriving while the receiver is blocked on other
	// I/O (the paper's example: a disk read before the receive call) is
	// still processed by the otherwise-idle CPU via the idle thread,
	// charged to the receiver, so the next recv call finds a ready
	// datagram and latency does not suffer.
	r := newRig(t, ArchSoftLRP)
	var sawProcessed bool
	var sock *socket.Socket
	r.server.K.Spawn("busy-recv", 0, func(p *kernel.Proc) {
		sock = r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(sock, 7)
		p.Delay(50 * 1000) // blocked on disk I/O while the packet arrives
		sawProcessed = sock.RecvDgrams.Len() > 0
	})
	r.eng.At(5*1000, func() {
		r.nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, []byte("hi"), true))
	})
	r.eng.RunFor(sim.Second)
	if !sawProcessed {
		t.Fatal("idle thread did not pre-process the queued packet")
	}
}

func TestNoIdleThreadLeavesPacketRaw(t *testing.T) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	server := NewHost(eng, nw, Config{Name: "server", Addr: addrB, Arch: ArchSoftLRP, NoIdleThread: true})
	defer server.Shutdown()
	var rawQueued bool
	server.K.Spawn("busy-recv", 0, func(p *kernel.Proc) {
		s := server.NewUDPSocket(p)
		_ = server.BindUDP(s, 7)
		p.Compute(50 * 1000)
		rawQueued = s.NIChan.Queue.Len() > 0 && s.RecvDgrams.Len() == 0
	})
	eng.At(5*1000, func() {
		nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, []byte("hi"), true))
	})
	eng.RunFor(sim.Second)
	if !rawQueued {
		t.Fatal("packet should remain raw on the channel without the idle thread")
	}
}

func TestCorruptedPacketsChargedToReceiverUnderLRP(t *testing.T) {
	// Corrupted packets demux to their destination and their (wasted)
	// processing is charged to the receiver — the scenario where
	// early-demux-without-LRP stays vulnerable.
	r := newRig(t, ArchSoftLRP)
	var recvProc *kernel.Proc
	var protoDrops func() uint64
	r.server.K.Spawn("recv", 0, func(p *kernel.Proc) {
		recvProc = p
		s := r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s, 7)
		protoDrops = func() uint64 { return s.Stats.ProtoDrops }
		for {
			if _, err := r.server.RecvFrom(p, s); err != nil {
				return
			}
		}
	})
	good := pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, []byte("payload"), true)
	bad := pkt.Corrupt(good)
	for i := 0; i < 50; i++ {
		d := int64(1000 * (i + 1))
		r.eng.At(d, func() { r.nw.Inject(bad) })
	}
	r.eng.RunFor(sim.Second)
	if protoDrops() != 50 {
		t.Fatalf("proto drops = %d, want 50", protoDrops())
	}
	if recvProc.STime == 0 {
		t.Fatal("receiver was not charged for processing corrupt packets")
	}
}

func TestHostStatsChannelsAccounting(t *testing.T) {
	r := newRig(t, ArchSoftLRP)
	base := r.server.Stats().Channels
	var s1, s2 *socket.Socket
	r.server.K.Spawn("a", 0, func(p *kernel.Proc) {
		s1 = r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s1, 100)
		s2 = r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s2, 101)
		p.Delay(1000)
		r.server.CloseUDP(p, s1)
		r.server.CloseUDP(p, s2)
	})
	r.eng.RunFor(sim.Second)
	st := r.server.Stats()
	if st.Channels != base {
		t.Fatalf("channels = %d, want %d after close", st.Channels, base)
	}
	if st.MaxChannels < base+2 {
		t.Fatalf("max channels = %d", st.MaxChannels)
	}
}
