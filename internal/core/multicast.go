package core

// UDP multicast groups. Per the paper (§3.1): "Multiple sockets bound to
// the same UDP multicast group share a single NI channel", and the
// priority at which the shared channel's traffic is processed is "the
// highest of the participating processes' priorities" (§3, footnote 5).
//
// A group is represented by a hidden group socket bound in the
// demultiplexing tables; arriving packets land on its (single) NI channel
// under LRP or are fanned out by the software interrupt under BSD.
// Whichever member performs the receive system call processes the packet
// lazily and fans the datagram out to every member's socket queue.

import (
	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/socket"
)

type mcastKey struct {
	group pkt.Addr
	port  uint16
}

// mcastGroup tracks one joined group on a host.
type mcastGroup struct {
	key     mcastKey
	gsock   *socket.Socket // hidden endpoint bound in the demux table
	members []*socket.Socket
}

// JoinGroup subscribes s (owned by p) to a multicast group on the given
// port. The socket must not be bound to a unicast port.
func (h *Host) JoinGroup(p *kernel.Proc, s *socket.Socket, group pkt.Addr, port uint16) error {
	if !group.IsMulticast() {
		return ErrNotBound
	}
	if s.Bound {
		return ErrPortInUse
	}
	if p != nil {
		p.ComputeSys(h.CM.SyscallFixed)
	}
	if h.mcast == nil {
		h.mcast = make(map[mcastKey]*mcastGroup)
		h.mcastBySock = make(map[*socket.Socket]*mcastGroup)
		h.mcastMember = make(map[*socket.Socket]*mcastGroup)
	}
	key := mcastKey{group, port}
	g := h.mcast[key]
	if g == nil {
		gs := socket.NewSocket(socket.Dgram, s.Owner)
		gs.Local = group
		gs.LPort = port
		gs.Bound = true
		gs.RecvDgrams = socket.NewDgramQueue(h.CM.SockQueueLimit)
		h.sockets = append(h.sockets, gs)
		h.pcbs.BindListen(pkt.ProtoUDP, group, port, gs)
		h.attachChannel(gs) // the single shared NI channel
		g = &mcastGroup{key: key, gsock: gs}
		h.mcast[key] = g
		h.mcastBySock[gs] = g
	}
	g.members = append(g.members, s)
	s.LPort = port
	s.Bound = true
	s.Local = group
	h.mcastMember[s] = g
	return nil
}

// LeaveGroup unsubscribes s; the last member tears the group down
// (releasing the shared channel).
func (h *Host) LeaveGroup(p *kernel.Proc, s *socket.Socket) {
	g := h.mcastMember[s]
	if g == nil {
		return
	}
	if p != nil {
		p.ComputeSys(h.CM.SyscallFixed)
	}
	delete(h.mcastMember, s)
	for i, m := range g.members {
		if m == s {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	s.Bound = false
	if len(g.members) == 0 {
		h.pcbs.UnbindListen(pkt.ProtoUDP, g.key.group, g.key.port)
		h.detachChannel(g.gsock)
		g.gsock.Closed = true
		delete(h.mcast, g.key)
		delete(h.mcastBySock, g.gsock)
	}
}

// groupOf returns the multicast group a demultiplexed socket represents,
// if any.
func (h *Host) groupOf(s *socket.Socket) *mcastGroup {
	if h.mcastBySock == nil {
		return nil
	}
	return h.mcastBySock[s]
}

// mcastFanout delivers one processed datagram to every member socket (see
// mcastFanoutStep). p may be nil for softint callers whose cost was
// pre-charged — the machine then never yields, so Block is never reached.
func (h *Host) mcastFanout(p *kernel.Proc, g *mcastGroup, d socket.Datagram) {
	fr := mcastFanoutOp{members: g.members}
	for !h.mcastFanoutStep(p, d, &fr) {
		p.Block()
	}
}

// mcastOwnerPrio returns the best (lowest) priority among member owners;
// the group socket's Owner mirrors that process so channel signals and
// APP charging follow "the highest of the participating processes'
// priorities".
func (g *mcastGroup) bestOwner() *kernel.Proc {
	var best *kernel.Proc
	for _, m := range g.members {
		o := m.Owner
		if o == nil {
			continue
		}
		if best == nil || o.Prio() < best.Prio() {
			best = o
		}
	}
	return best
}

// mcastSignal wakes the best-priority member with a sleeping receiver.
func (h *Host) mcastSignal(g *mcastGroup) {
	var best *socket.Socket
	for _, m := range g.members {
		if m.RcvWait.Len() == 0 {
			continue
		}
		if best == nil || (m.Owner != nil && best.Owner != nil && m.Owner.Prio() < best.Owner.Prio()) {
			best = m
		}
	}
	if best != nil {
		best.RcvWait.WakeupBest()
	}
}
