package core

// LRP daemon processes: the idle-time protocol processing thread and the
// ICMP proxy daemon. "Processing for certain network packets cannot be
// directly attributed to any application process... this processing is
// charged to daemon processes that act as proxies for a particular
// protocol."

import (
	"encoding/binary"

	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/socket"
)

// idlePollInterval is how often the idle thread re-checks channels when it
// found nothing to do. It runs at the weakest possible priority, so this
// only spends otherwise-idle cycles.
const idlePollInterval = 250

// startICMPDaemon creates the ICMP proxy: a pseudo-socket bound to the
// ICMP protocol with its own NI channel, drained by a daemon process that
// is charged for the processing (and whose priority controls it). The
// daemon body lives in daemonsteps.go (icmpdStep).
func (h *Host) startICMPDaemon() {
	s := socket.NewSocket(socket.Dgram, nil)
	s.Proto = pkt.ProtoICMP
	s.Local = h.Addr
	s.RecvDgrams = socket.NewDgramQueue(h.CM.SockQueueLimit)
	h.sockets = append(h.sockets, s)
	h.icmpSock = s
	h.attachChannel(s)
	h.pcbs.BindProto(pkt.ProtoICMP, s)
	proc := h.spawnDaemon(h.K, h.Name+"/icmpd", 0, h.icmpdStep(s))
	proc.Pinned = true // kernel daemon: never migrated off CPU 0
	s.Owner = proc
}

// icmpInput is the eager-path (BSD softint) ICMP handler.
func (h *Host) icmpInput(ih *pkt.IPv4Header, seg []byte) {
	h.icmpProcess(ih, seg)
}

// icmpProcess answers echo requests; everything else is counted and
// dropped (the stack does not originate errors).
//
//lrp:coldalloc control-plane path: echo replies are off the benchmarked data path
func (h *Host) icmpProcess(ih *pkt.IPv4Header, seg []byte) {
	if len(seg) < 8 || seg[0] != 8 { // ICMP echo request
		h.stats.ProtoDrops++
		return
	}
	if pkt.Checksum(seg) != 0 {
		h.stats.ProtoDrops++
		return
	}
	h.icmpEchoReplies++
	reply := make([]byte, pkt.IPv4HeaderLen+len(seg))
	copy(reply[pkt.IPv4HeaderLen:], seg)
	r := reply[pkt.IPv4HeaderLen:]
	r[0] = 0 // echo reply
	r[2], r[3] = 0, 0
	ck := pkt.Checksum(r)
	binary.BigEndian.PutUint16(r[2:], ck)
	oh := pkt.IPv4Header{
		TotalLen: uint16(len(reply)),
		ID:       h.nextIPID(),
		TTL:      64,
		Proto:    pkt.ProtoICMP,
		Src:      h.Addr,
		Dst:      ih.Src,
	}
	pkt.EncodeIPv4(reply, &oh)
	_ = h.ipOutput(nil, nil, reply)
}

// EchoReplies returns the number of ICMP echo replies the host has sent.
func (h *Host) EchoReplies() uint64 { return h.icmpEchoReplies }

// Ping sends an ICMP echo request from process p and returns once it has
// been transmitted (replies arrive asynchronously; use EchoesReceived on
// the sender to observe them). payloadLen pads the request.
func (h *Host) Ping(p *kernel.Proc, dst pkt.Addr, seqno uint16, payloadLen int) {
	p.ComputeSys(h.CM.SyscallFixed + h.CM.IPOutCost)
	seg := make([]byte, 8+payloadLen)
	seg[0] = 8 // echo request
	binary.BigEndian.PutUint16(seg[6:], seqno)
	binary.BigEndian.PutUint16(seg[2:], pkt.Checksum(seg))
	b := make([]byte, pkt.IPv4HeaderLen+len(seg))
	copy(b[pkt.IPv4HeaderLen:], seg)
	oh := pkt.IPv4Header{
		TotalLen: uint16(len(b)),
		ID:       h.nextIPID(),
		TTL:      64,
		Proto:    pkt.ProtoICMP,
		Src:      h.Addr,
		Dst:      dst,
	}
	pkt.EncodeIPv4(b, &oh)
	_ = h.ipOutput(p, nil, b)
}
