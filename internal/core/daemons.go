package core

// LRP daemon processes: the idle-time protocol processing thread and the
// ICMP proxy daemon. "Processing for certain network packets cannot be
// directly attributed to any application process... this processing is
// charged to daemon processes that act as proxies for a particular
// protocol."

import (
	"encoding/binary"

	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/socket"
)

// idlePollInterval is how often the idle thread re-checks channels when it
// found nothing to do. It runs at the weakest possible priority, so this
// only spends otherwise-idle cycles.
const idlePollInterval = 250

// idleMain is the minimum-priority kernel thread that "checks NI channels
// and performs protocol processing for any queued UDP packets" so that an
// otherwise idle CPU never leaves a packet waiting for the next receive
// system call.
func (h *Host) idleMain(p *kernel.Proc) {
	for {
		did := false
		for _, s := range h.sockets {
			if s.Type != socket.Dgram || s.Closed || s.NIChan == nil || s.Proto != pkt.ProtoUDP {
				continue
			}
			// Leave the packet if a receiver is about to pick it up lazily:
			// a blocked receiver means nobody is in a receive call, so
			// process on its behalf.
			m := s.NIChan.Queue.Dequeue()
			if m == nil {
				continue
			}
			did = true
			owner := appOwner(s)
			d, ok := h.udpLazyInput(p, owner, s, m)
			if !ok {
				continue
			}
			if g := h.groupOf(s); g != nil {
				// Shared multicast channel: fan out to every member.
				h.mcastFanout(p, g, d)
				continue
			}
			p.ComputeSysFor(owner, h.CM.SockQueueCost)
			if s.RecvDgrams.Enqueue(d) {
				s.RcvWait.WakeupAll()
			}
		}
		if !did {
			p.Delay(idlePollInterval)
		}
	}
}

// startICMPDaemon creates the ICMP proxy: a pseudo-socket bound to the
// ICMP protocol with its own NI channel, drained by a daemon process that
// is charged for the processing (and whose priority controls it).
func (h *Host) startICMPDaemon() {
	s := socket.NewSocket(socket.Dgram, nil)
	s.Proto = pkt.ProtoICMP
	s.Local = h.Addr
	s.RecvDgrams = socket.NewDgramQueue(h.CM.SockQueueLimit)
	h.sockets = append(h.sockets, s)
	h.icmpSock = s
	h.attachChannel(s)
	h.pcbs.BindProto(pkt.ProtoICMP, s)
	proc := h.K.Spawn(h.Name+"/icmpd", 0, func(p *kernel.Proc) {
		s.Owner = p
		for {
			m := s.NIChan.Queue.Dequeue()
			if m == nil {
				s.NIChan.IntrRequested = true
				p.Sleep(&s.RcvWait)
				continue
			}
			p.ComputeSys(h.channelDequeueCost() + h.lrpProtoInCost(m.Data))
			b := m.Data
			m.BeginTransfer() // echo replies are built in fresh buffers
			whole, done := h.reasm.Input(b, h.Eng.Now())
			if done {
				if ih, hlen, err := pkt.DecodeIPv4(whole); err == nil {
					h.icmpProcess(&ih, whole[hlen:int(ih.TotalLen)])
				}
			}
			m.EndTransfer()
		}
	})
	proc.Pinned = true // kernel daemon: never migrated off CPU 0
	s.Owner = proc
}

// icmpInput is the eager-path (BSD softint) ICMP handler.
func (h *Host) icmpInput(ih *pkt.IPv4Header, seg []byte) {
	h.icmpProcess(ih, seg)
}

// icmpProcess answers echo requests; everything else is counted and
// dropped (the stack does not originate errors).
func (h *Host) icmpProcess(ih *pkt.IPv4Header, seg []byte) {
	if len(seg) < 8 || seg[0] != 8 { // ICMP echo request
		h.stats.ProtoDrops++
		return
	}
	if pkt.Checksum(seg) != 0 {
		h.stats.ProtoDrops++
		return
	}
	h.icmpEchoReplies++
	reply := make([]byte, pkt.IPv4HeaderLen+len(seg))
	copy(reply[pkt.IPv4HeaderLen:], seg)
	r := reply[pkt.IPv4HeaderLen:]
	r[0] = 0 // echo reply
	r[2], r[3] = 0, 0
	ck := pkt.Checksum(r)
	binary.BigEndian.PutUint16(r[2:], ck)
	oh := pkt.IPv4Header{
		TotalLen: uint16(len(reply)),
		ID:       h.nextIPID(),
		TTL:      64,
		Proto:    pkt.ProtoICMP,
		Src:      h.Addr,
		Dst:      ih.Src,
	}
	pkt.EncodeIPv4(reply, &oh)
	_ = h.ipOutput(nil, nil, reply)
}

// EchoReplies returns the number of ICMP echo replies the host has sent.
func (h *Host) EchoReplies() uint64 { return h.icmpEchoReplies }

// Ping sends an ICMP echo request from process p and returns once it has
// been transmitted (replies arrive asynchronously; use EchoesReceived on
// the sender to observe them). payloadLen pads the request.
func (h *Host) Ping(p *kernel.Proc, dst pkt.Addr, seqno uint16, payloadLen int) {
	p.ComputeSys(h.CM.SyscallFixed + h.CM.IPOutCost)
	seg := make([]byte, 8+payloadLen)
	seg[0] = 8 // echo request
	binary.BigEndian.PutUint16(seg[6:], seqno)
	binary.BigEndian.PutUint16(seg[2:], pkt.Checksum(seg))
	b := make([]byte, pkt.IPv4HeaderLen+len(seg))
	copy(b[pkt.IPv4HeaderLen:], seg)
	oh := pkt.IPv4Header{
		TotalLen: uint16(len(b)),
		ID:       h.nextIPID(),
		TTL:      64,
		Proto:    pkt.ProtoICMP,
		Src:      h.Addr,
		Dst:      dst,
	}
	pkt.EncodeIPv4(b, &oh)
	_ = h.ipOutput(p, nil, b)
}
