package core

// Step-machine bodies for the host's kernel daemon processes: the APP
// thread, the idle-time protocol processing thread, the ICMP proxy and
// the IP forwarding daemon. Each *Step factory returns a kernel.StepFn
// whose locals live in the closure, so the scheduler can run the daemon
// stacklessly — one function call per dispatch, no goroutine switch. The
// same StepFn also runs unchanged on a goroutine coroutine when
// Config.CoroutineProcs selects the fallback execution mode.

import (
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// spawnDaemon starts a daemon process in the host's configured execution
// mode: stackless by default, goroutine-hosted under CoroutineProcs.
func (h *Host) spawnDaemon(k *kernel.Kernel, name string, nice int, step kernel.StepFn) *kernel.Proc {
	if h.coroProcs {
		return k.SpawnStepCoro(name, nice, step)
	}
	return k.SpawnStep(name, nice, step)
}

// APP thread machine states.
const (
	appHead  = iota // pop the next work item or sleep
	appTimer        // run a validated timer expiry
	appDrain        // drain one socket's NI channel
)

// appMainStep builds the APP kernel thread body: it processes queued TCP
// packets and timer expiries at the priority of — and charged to — the
// application that owns the socket.
func (h *Host) appMainStep() kernel.StepFn {
	var (
		pc    int
		w     appWork
		drain appDrainOp
	)
	return func(p *kernel.Proc) {
		for {
			switch pc {
			case appHead:
				if len(h.appQ) == 0 {
					p.PrioProxy = nil
					p.ReqSleep(&h.appWq)
					return
				}
				w = h.appQ[0]
				h.appQ = h.appQ[1:]
				switch {
				case w.conn != nil:
					owner := appOwner(connSocket(w.conn))
					p.PrioProxy = owner
					pc = appTimer
					if p.ReqComputeSysFor(owner, h.CM.TCPTimerCost) {
						return
					}
				case w.sock != nil:
					drain = appDrainOp{}
					pc = appDrain
				}
			case appTimer:
				if h.timerValid(w.conn, w.timer, w.gen) {
					w.conn.TimerExpire(w.timer)
				}
				w = appWork{}
				pc = appHead
			case appDrain:
				if !h.appDrainStep(p, w.sock, &drain) {
					return
				}
				drain = appDrainOp{}
				w = appWork{}
				pc = appHead
			}
		}
	}
}

// appDrainOp is the frame of one channel drain by the APP thread.
type appDrainOp struct {
	pc    int
	ch    *nic.Channel
	owner *kernel.Proc
	batch int
	i     int
	m     *mbuf.Mbuf
	in    appInputOp
}

// Channel-drain machine states.
const (
	drainEnter = iota // snapshot the batch bound
	drainNext         // dequeue the next packet, charge for it
	drainInput        // protocol-process it; police the listen backlog
	drainExit         // re-queue leftovers or re-arm the interrupt
)

// appDrainStep processes the packets queued on a socket's NI channel.
// The batch is bounded to the queue depth at entry: a channel being
// refilled as fast as it drains (e.g. a SYN flood) must not capture the
// APP thread forever and starve other sockets' protocol processing, so
// remaining work is re-queued behind them instead. Listener backlog state
// is synchronized after every packet, so a filling backlog disables the
// channel immediately rather than after the flood abates.
func (h *Host) appDrainStep(p *kernel.Proc, s *socket.Socket, fr *appDrainOp) bool {
	for {
		switch fr.pc {
		case drainEnter:
			fr.ch = s.NIChan
			if fr.ch == nil {
				return true
			}
			fr.owner = appOwner(s)
			p.PrioProxy = fr.owner
			fr.batch = fr.ch.Queue.Len()
			fr.pc = drainNext
		case drainNext:
			if fr.i >= fr.batch {
				fr.pc = drainExit
				continue
			}
			m := fr.ch.Queue.Dequeue()
			if m == nil {
				fr.pc = drainExit
				continue
			}
			fr.m = m
			fr.in = appInputOp{}
			fr.pc = drainInput
			if p.ReqComputeSysFor(fr.owner, h.channelDequeueCost()+h.lrpProtoInCost(m.Data)) {
				return false
			}
		case drainInput:
			if !h.appProtoInputStep(p, fr.m, s, &fr.in) {
				return false
			}
			fr.m = nil
			if s.Listening {
				h.syncListenChannel(s)
				if fr.ch.ProcessingDisabled {
					// Over-backlog: the remaining queued SYNs are discarded
					// like the ones now dying at the channel.
					for {
						r := fr.ch.Queue.Dequeue()
						if r == nil {
							break
						}
						fr.ch.DisabledDrops++
						r.Free()
					}
					fr.pc = drainExit
					continue
				}
			}
			fr.i++
			fr.pc = drainNext
		case drainExit:
			h.syncListenChannel(s)
			if fr.ch.Queue.Len() > 0 && !fr.ch.ProcessingDisabled {
				h.queueChannelWork(s)
				return true
			}
			if s.Type == socket.Stream {
				fr.ch.IntrRequested = true
			}
			return true
		}
	}
}

// appInputOp is the frame of appProtoInputStep.
type appInputOp struct {
	pc      int
	b       []byte
	arrival sim.Time
	whole   []byte
	drain   fragDrainOp
	hint    *socket.Socket
	ih      pkt.IPv4Header
	seg     []byte
}

// APP protocol-input machine states.
const (
	inEnter  = iota // read the packet, run reassembly
	inDrain         // pull missing fragments off the fragment channel
	inDecode        // decode the IP header, dispatch by protocol
	inTWHint        // TIME_WAIT channel: PCB lookup charged, drop the hint
	inTCP           // hand the segment to TCP
)

// appProtoInputStep is protoInput for APP context, with fragment-channel
// support (the per-packet cost has been charged already by the drain
// machine).
func (h *Host) appProtoInputStep(p *kernel.Proc, m *mbuf.Mbuf, hint *socket.Socket, fr *appInputOp) bool {
	for {
		switch fr.pc {
		case inEnter:
			fr.hint = hint
			fr.b = m.Data
			fr.arrival = m.Arrival
			// Release the slot before input, keep storage until done. The
			// transfer spans scheduler yields, so the flow-sensitive pairing
			// check cannot follow it: every state that completes the machine
			// ends or detaches the transfer.
			m.BeginTransfer() //lrp:nolint mbufown
			whole, done := h.reasm.Input(fr.b, h.Eng.Now())
			if !done {
				fr.drain = fragDrainOp{}
				fr.pc = inDrain
				continue
			}
			fr.whole = whole
			fr.pc = inDecode
		case inDrain:
			if !h.fragDrainStep(p, appOwner(fr.hint), fr.b, &fr.drain) {
				return false
			}
			if !fr.drain.ok {
				m.EndTransfer()
				return true
			}
			fr.whole = fr.drain.whole
			fr.pc = inDecode
		case inDecode:
			ih, hlen, err := pkt.DecodeIPv4(fr.whole)
			if err != nil {
				h.stats.MalformedDrops++
				m.EndTransfer()
				return true
			}
			fr.ih = ih
			fr.seg = fr.whole[hlen:int(ih.TotalLen)]
			switch ih.Proto {
			case pkt.ProtoTCP:
				// The hint socket is the channel owner, except for the shared
				// TIME_WAIT channel where a PCB lookup is needed.
				if fr.hint != nil && fr.hint.NIChan == h.twChan {
					fr.pc = inTWHint
					if p.ReqComputeSysFor(appOwner(fr.hint), h.CM.PCBLookupCost) {
						return false
					}
					continue
				}
				fr.pc = inTCP
			case pkt.ProtoUDP:
				// Delivered datagrams alias the packet bytes; hand the mbuf
				// along so the consumer can recycle the storage.
				var own *mbuf.Mbuf
				if aliases(fr.whole, fr.b) {
					own = m
				}
				h.udpInput(&fr.ih, fr.seg, fr.arrival, fr.hint, own)
				m.EndTransfer()
				return true
			default:
				h.stats.NoMatchDrops++
				m.EndTransfer()
				return true
			}
		case inTWHint:
			fr.hint = nil
			fr.pc = inTCP
		case inTCP:
			h.tcpInput(&fr.ih, fr.seg, fr.hint) // TCP copies what it retains
			m.EndTransfer()
			return true
		}
	}
}

// Idle-thread machine states.
const (
	idleHead    = iota // start a fresh pass over the sockets
	idleIter           // find the next channel with a queued packet
	idleLazy           // protocol-process it on the owner's dime
	idleFan            // multicast: fan the datagram out to the members
	idleEnqueue        // unicast: append to the socket queue, wake receivers
	idlePass           // pass done; nap if it found nothing
)

// idleMainStep builds the minimum-priority kernel thread that "checks NI
// channels and performs protocol processing for any queued UDP packets"
// so that an otherwise idle CPU never leaves a packet waiting for the
// next receive system call.
func (h *Host) idleMainStep() kernel.StepFn {
	var (
		pc    int
		socks []*socket.Socket
		i     int
		did   bool
		m     *mbuf.Mbuf
		owner *kernel.Proc
		d     socket.Datagram
		lazy  lazyInputOp
		fan   mcastFanoutOp
	)
	return func(p *kernel.Proc) {
		for {
			switch pc {
			case idleHead:
				socks = h.sockets
				i = 0
				did = false
				pc = idleIter
			case idleIter:
				if i >= len(socks) {
					pc = idlePass
					continue
				}
				s := socks[i]
				if s.Type != socket.Dgram || s.Closed || s.NIChan == nil || s.Proto != pkt.ProtoUDP {
					i++
					continue
				}
				// Leave the packet if a receiver is about to pick it up
				// lazily: a blocked receiver means nobody is in a receive
				// call, so process on its behalf.
				m = s.NIChan.Queue.Dequeue()
				if m == nil {
					i++
					continue
				}
				did = true
				owner = appOwner(s)
				lazy = lazyInputOp{}
				pc = idleLazy
			case idleLazy:
				if !h.udpLazyInputStep(p, owner, socks[i], m, &lazy) {
					return
				}
				m = nil
				if !lazy.ok {
					i++
					pc = idleIter
					continue
				}
				d = lazy.d
				lazy = lazyInputOp{}
				if g := h.groupOf(socks[i]); g != nil {
					// Shared multicast channel: fan out to every member. The
					// copies share the bytes, so disown the storage first.
					if mm := d.M; mm != nil {
						d.M = nil
						mm.Detach()
						mm.EndTransfer()
					}
					fan = mcastFanoutOp{members: g.members}
					pc = idleFan
					continue
				}
				pc = idleEnqueue
				if p.ReqComputeSysFor(owner, h.CM.SockQueueCost) {
					return
				}
			case idleFan:
				if !h.mcastFanoutStep(p, d, &fan) {
					return
				}
				fan = mcastFanoutOp{}
				i++
				pc = idleIter
			case idleEnqueue:
				s := socks[i]
				if s.RecvDgrams.Enqueue(d) {
					s.RcvWait.WakeupAll()
				} else {
					d.Release() // queue refused; recycle the buffer now
				}
				d = socket.Datagram{}
				i++
				pc = idleIter
			case idlePass:
				pc = idleHead
				if !did {
					if p.ReqDelay(idlePollInterval) {
						return
					}
				}
			}
		}
	}
}

// icmpdStep builds the ICMP proxy daemon body: drain the ICMP
// pseudo-socket's NI channel, charging the daemon for the processing.
func (h *Host) icmpdStep(s *socket.Socket) kernel.StepFn {
	var (
		pc int
		m  *mbuf.Mbuf
	)
	return func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				s.Owner = p
				pc = 1
			case 1:
				m = s.NIChan.Queue.Dequeue()
				if m == nil {
					s.NIChan.IntrRequested = true
					p.ReqSleep(&s.RcvWait)
					return
				}
				pc = 2
				if p.ReqComputeSys(h.channelDequeueCost() + h.lrpProtoInCost(m.Data)) {
					return
				}
			case 2:
				b := m.Data
				m.BeginTransfer() // echo replies are built in fresh buffers
				whole, done := h.reasm.Input(b, h.Eng.Now())
				if done {
					if ih, hlen, err := pkt.DecodeIPv4(whole); err == nil {
						h.icmpProcess(&ih, whole[hlen:int(ih.TotalLen)])
					}
				}
				m.EndTransfer()
				m = nil
				pc = 1
			}
		}
	}
}

// ipfwdStep builds the IP forwarding daemon body: drain the forwarding
// pseudo-socket's NI channel, charging the daemon per forwarded packet.
func (h *Host) ipfwdStep(s *socket.Socket) kernel.StepFn {
	var (
		pc int
		m  *mbuf.Mbuf
	)
	return func(p *kernel.Proc) {
		for {
			switch pc {
			case 0:
				m = s.NIChan.Queue.Dequeue()
				if m == nil {
					s.NIChan.IntrRequested = true
					p.ReqSleep(&s.RcvWait)
					return
				}
				pc = 1
				if p.ReqComputeSys(h.channelDequeueCost() + h.CM.IPInCost + h.CM.IPOutCost) {
					return
				}
			case 1:
				b := m.Data
				m.BeginTransfer() // forwardPacket rebuilds into its own buffer
				h.forwardPacket(b)
				m.EndTransfer()
				m = nil
				pc = 0
			}
		}
	}
}
