package core

import (
	"fmt"

	"lrp/internal/demux"
	"lrp/internal/ipv4"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/netsim"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/smp"
	"lrp/internal/socket"
	"lrp/internal/tcp"
	"lrp/internal/trace"
)

// Config parameterizes host construction.
type Config struct {
	Name      string
	Addr      pkt.Addr
	Arch      Arch
	Costs     *CostModel // nil: DefaultCosts
	LinkBps   int64      // link bandwidth, bits/s (default 155 Mbit/s)
	PropDelay int64      // one-way propagation delay, µs (default 10)
	MTU       int        // default 9180 (IP over ATM)
	// NoIdleThread disables LRP's idle-time protocol processing thread
	// (an ablation knob; the paper argues the thread preserves latency).
	NoIdleThread bool
	// NoICMPDaemon disables the ICMP proxy daemon on LRP hosts.
	NoICMPDaemon bool
	// FilterDemux replaces the hand-coded demultiplexing function with an
	// interpreted packet-filter scan (SOFT-LRP/Early-Demux only): the
	// user-level-network-subsystem configuration of the related work,
	// whose demux cost grows with the number of bound endpoints.
	FilterDemux bool
	// CPUs is the number of simulated CPUs (0 or 1: a uniprocessor,
	// exactly the pre-SMP host). CPU 0 is the boot CPU (Host.K); the
	// network daemon processes are pinned there.
	CPUs int
	// RxQueues is the number of NIC receive queues (0 or 1: one ring).
	// With more, a deterministic RSS hash over a packet's addresses and
	// ports steers each flow to one queue, and each queue interrupts
	// its assigned CPU. NI-LRP has no raw rx rings; there a value above
	// one instead routes each NI channel's wakeup interrupt to the
	// owning process's CPU. ArchPolling is single-queue only.
	RxQueues int
	// QueueCPU maps rx queue index -> CPU index. A nil slice (or any
	// queue beyond its length) defaults to queue i -> CPU i mod CPUs.
	QueueCPU []int
	// CoroutineProcs hosts the kernel daemon processes (APP thread, idle
	// thread, ICMP and forwarding daemons) on goroutine coroutines instead
	// of stepping them stacklessly — the fallback execution mode. The
	// bodies and request streams are identical either way; this knob
	// exists for the equivalence tests and as an escape hatch.
	CoroutineProcs bool
}

// Stats aggregates host-level drop and delivery accounting, by location —
// the instrumentation behind the paper's MLFRR analysis ("4.4BSD and LRP
// drop packets at the socket queue or NI channel queue, respectively...
// 4.4BSD additionally starts to drop packets at the IP queue").
type Stats struct {
	IPQDrops       uint64 // shared IP queue overflow (BSD)
	ChannelDrops   uint64 // NI channel queue overflow (LRP) / early discard
	EarlyDrops     uint64 // Early-Demux discard at full socket queue
	SockQDrops     uint64 // socket queue overflow (BSD)
	NoMatchDrops   uint64 // no endpoint bound
	MalformedDrops uint64
	ProtoDrops     uint64 // dropped during protocol processing (checksums…)
	DisabledDrops  uint64 // dropped at channels with processing disabled
	Channels       int    // NI channels currently allocated
	MaxChannels    int    // high water mark
	// PollTransitions counts entries into polled mode (ArchPolling).
	PollTransitions uint64
}

// Host is one simulated machine: kernel, NIC, protocol state, sockets.
type Host struct {
	Eng *sim.Engine
	K   *kernel.Kernel
	// CPUs holds every kernel, in CPU order; CPUs[0] == K. A
	// uniprocessor host has exactly one entry and a nil Cluster.
	CPUs    []*kernel.Kernel
	Cluster *smp.Cluster
	NIC     *nic.NIC
	Net     *netsim.Network
	Addr    pkt.Addr
	Arch    Arch
	CM      *CostModel
	Pool    *mbuf.Pool
	MTU     int
	Name    string

	pcbs  *demux.Table[*socket.Socket]
	reasm *ipv4.Reassembler

	// filterDemux, when non-nil, prices demultiplexing by interpreter
	// steps instead of the flat hand-coded cost.
	filterDemux *demux.FilterTable[*socket.Socket]
	filterProgs map[*socket.Socket]int // socket -> entry handle

	ipq *mbuf.Queue // BSD shared IP queue

	// Multi-queue receive state (nil/false on a single-queue host).
	multiQueue    bool          // per-flow rx steering is on
	queueCPU      []int         // rx queue -> CPU index
	ipqs          []*mbuf.Queue // per-CPU IP queues (BSD multi-queue); [0] == ipq
	bsdSoftintFns []func()      // per-CPU softint bodies, built once
	qStep         []func()      // per-queue driver-step closures, built once
	qIntr         []func()      // per-queue interrupt entries, built once

	fragChan *nic.Channel // LRP: fragments that missed the demux mapping
	twChan   *nic.Channel // NI-LRP: traffic for deallocated TIME_WAIT channels

	sockets   []*socket.Socket
	ephemeral uint16
	iss       uint32
	ipid      uint16

	// txScratch is reused for building outgoing UDP packets; ipOutput
	// copies into pool-owned storage before the next send overwrites it.
	txScratch []byte

	mcast       map[mcastKey]*mcastGroup
	mcastBySock map[*socket.Socket]*mcastGroup
	mcastMember map[*socket.Socket]*mcastGroup

	forwarding bool
	fwdSock    *socket.Socket
	fwdStats   ForwardStats

	// coroProcs mirrors Config.CoroutineProcs for daemons spawned later
	// (forwarding, ICMP).
	coroProcs bool

	// polled marks ArchPolling's overload mode (interrupts off).
	polled bool

	// Trace, when non-nil, records packet-path events (demux verdicts,
	// drops, deliveries). Enable with EnableTrace.
	Trace *trace.Log

	hooks           tcp.Hooks
	timers          map[*tcp.Conn]*connTimers
	appQ            []appWork
	appWq           kernel.WaitQ
	appProc         *kernel.Proc
	idleProc        *kernel.Proc
	icmpSock        *socket.Socket
	icmpEchoReplies uint64

	stats Stats
}

// connTimers tracks a connection's armed timers with generation counters,
// so a timer that fires but whose processing is still queued (e.g. behind
// the APP thread) can be invalidated by a later disarm.
type connTimers struct {
	ev  [tcp.NumTimers]sim.Event
	gen [tcp.NumTimers]uint64
}

// appWork is one unit of work for the asynchronous protocol processing
// thread: either "drain this socket's channel" or "this timer expired".
type appWork struct {
	sock  *socket.Socket // non-nil: drain its NI channel
	conn  *tcp.Conn      // non-nil with timer set: expiry
	timer tcp.Timer
	gen   uint64
}

// NewHost builds a host of the given architecture and attaches it to nw.
func NewHost(eng *sim.Engine, nw *netsim.Network, cfg Config) *Host {
	cm := cfg.Costs
	if cm == nil {
		cm = DefaultCosts()
	}
	if cfg.LinkBps == 0 {
		cfg.LinkBps = 155_000_000
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = 10
	}
	if cfg.MTU == 0 {
		cfg.MTU = ipv4.DefaultMTU
	}
	h := &Host{
		Eng:       eng,
		Net:       nw,
		Addr:      cfg.Addr,
		Arch:      cfg.Arch,
		CM:        cm,
		MTU:       cfg.MTU,
		Name:      cfg.Name,
		pcbs:      demux.NewTable[*socket.Socket](),
		reasm:     ipv4.NewReassembler(),
		ipq:       mbuf.NewQueue(cm.IPQueueLimit),
		timers:    make(map[*tcp.Conn]*connTimers),
		ephemeral: 49152,
		iss:       1,
	}
	h.Pool = mbuf.NewPool(cm.MbufPoolLimit)
	h.K = kernel.New(eng, cfg.Name)
	h.K.CtxSwitchCost = cm.CtxSwitchCost
	h.CPUs = []*kernel.Kernel{h.K}
	ncpu := cfg.CPUs
	if ncpu < 1 {
		ncpu = 1
	}
	for i := 1; i < ncpu; i++ {
		k := kernel.New(eng, fmt.Sprintf("%s/cpu%d", cfg.Name, i))
		k.CtxSwitchCost = cm.CtxSwitchCost
		h.CPUs = append(h.CPUs, k)
	}
	if ncpu > 1 {
		h.Cluster = smp.New(eng, h.CPUs, smp.Config{
			IPILatency:  cm.IPILatency,
			IPICost:     cm.IPICost,
			MigrateCost: cm.MigrateCost,
		})
	}

	// Rx queue count: raw-ring architectures can spread RSS-hashed flows
	// over several rings; NI-LRP's smart NIC has no raw rings (the flag
	// below routes channel interrupts instead) and polling is
	// single-queue by construction.
	nq := cfg.RxQueues
	if nq < 1 {
		nq = 1
	}
	h.multiQueue = nq > 1
	if cfg.Arch == ArchNILRP || cfg.Arch == ArchPolling {
		nq = 1
	}

	mode := nic.ModeRaw
	if cfg.Arch == ArchNILRP {
		mode = nic.ModeSmart
	}
	h.NIC = nic.New(eng, nic.Config{
		Name:          cfg.Name + "-nic",
		Mode:          mode,
		Pool:          h.Pool,
		IfqLimit:      cm.IPQueueLimit,
		NICPerPktCost: cm.NICDemuxCost,
		NICInputLimit: cm.NICInputLimit,
		RxQueues:      nq,
	})
	nw.Attach(h.NIC, cfg.Addr, cfg.LinkBps, cfg.PropDelay)

	if cfg.FilterDemux {
		h.filterDemux = demux.NewFilterTable[*socket.Socket]()
		h.filterProgs = make(map[*socket.Socket]int)
	}
	switch cfg.Arch {
	case ArchBSD:
		if nq > 1 {
			h.wireQueueRx(cfg.QueueCPU)
		} else {
			h.NIC.OnHostIntr = h.bsdHostIntr
		}
	case ArchSoftLRP, ArchEarlyDemux:
		if nq > 1 {
			h.wireQueueRx(cfg.QueueCPU)
		} else {
			h.NIC.OnHostIntr = h.demuxHostIntr
		}
	case ArchNILRP:
		h.NIC.OnNICProcess = h.niDemuxProcess
		h.NIC.OnHostIntr = nil // raised explicitly per channel signal
	case ArchPolling:
		h.NIC.OnHostIntr = h.pollingHostIntr
	}

	h.coroProcs = cfg.CoroutineProcs
	if cfg.Arch.IsLRP() {
		h.fragChan = nic.NewChannel(cm.ChannelLimit)
		h.twChan = nic.NewChannel(cm.ChannelLimit)
		h.twChan.IntrRequested = true
		h.initTCPHooks()
		h.appProc = h.spawnDaemon(h.K, cfg.Name+"/app-tcp", 0, h.appMainStep())
		h.appProc.Pinned = true // kernel daemon: never migrated off CPU 0
		if !cfg.NoIdleThread {
			h.idleProc = h.spawnDaemon(h.K, cfg.Name+"/idle-proto", 0, h.idleMainStep())
			h.idleProc.FixedPrio = kernel.PrioMax
			h.idleProc.Pinned = true
		}
		if !cfg.NoICMPDaemon {
			h.startICMPDaemon()
		}
	} else {
		h.initTCPHooks()
	}
	return h
}

// wireQueueRx installs the multi-queue receive path: one pre-built
// interrupt/driver-step closure pair per rx queue, each posting its
// work to the queue's assigned CPU. BSD additionally gets one IP queue
// and softint body per CPU (a per-CPU softnet queue), so protocol
// processing stays on the CPU that took the interrupt.
func (h *Host) wireQueueRx(queueCPU []int) {
	nq := h.NIC.NumRxQueues()
	h.queueCPU = make([]int, nq)
	for q := range h.queueCPU {
		ci := q % len(h.CPUs)
		if q < len(queueCPU) && queueCPU[q] >= 0 && queueCPU[q] < len(h.CPUs) {
			ci = queueCPU[q]
		}
		h.queueCPU[q] = ci
	}
	if h.Arch == ArchBSD {
		h.ipqs = make([]*mbuf.Queue, len(h.CPUs))
		h.bsdSoftintFns = make([]func(), len(h.CPUs))
		for i := range h.ipqs {
			if i == 0 {
				h.ipqs[0] = h.ipq
			} else {
				h.ipqs[i] = mbuf.NewQueue(h.CM.IPQueueLimit)
			}
			ipq := h.ipqs[i]
			h.bsdSoftintFns[i] = func() {
				if m := ipq.Dequeue(); m != nil {
					h.protoInput(m, nil)
				}
			}
		}
	}
	h.qStep = make([]func(), nq)
	h.qIntr = make([]func(), nq)
	for q := 0; q < nq; q++ {
		q := q
		ci := h.queueCPU[q]
		k := h.CPUs[ci]
		switch h.Arch {
		case ArchBSD:
			h.qStep[q] = func() { h.bsdDriverStepQ(q, ci, k) }
			h.qIntr[q] = func() {
				k.PostHW(kernel.WorkItem{Cost: h.CM.HWIntrFixed + h.CM.DriverPerPkt, Fn: h.qStep[q]})
			}
		default: // SOFT-LRP, Early-Demux
			h.qStep[q] = func() { h.demuxDriverStepQ(q, k) }
			h.qIntr[q] = func() {
				k.PostHW(kernel.WorkItem{Cost: h.CM.HWIntrFixed + h.CM.DriverPerPkt + h.headDemuxCostQ(q), Fn: h.qStep[q]})
			}
		}
	}
	h.NIC.OnQueueIntr = func(q int) { h.qIntr[q]() }
}

// KernelAt returns CPU i's kernel; index 0 is the boot CPU (Host.K).
func (h *Host) KernelAt(i int) *kernel.Kernel { return h.CPUs[i] }

// NumCPUs returns the number of simulated CPUs.
func (h *Host) NumCPUs() int { return len(h.CPUs) }

// EnableTrace attaches a bounded event log (capacity events) to the host
// and its kernels and returns it.
func (h *Host) EnableTrace(capacity int) *trace.Log {
	l := trace.New(capacity, h.Eng.Now)
	h.Trace = l
	for _, k := range h.CPUs {
		k.Trace = l
	}
	return l
}

// Stats returns a snapshot of drop/delivery accounting, folding in queue
// counters from the live structures.
func (h *Host) Stats() Stats {
	s := h.stats
	s.IPQDrops = h.ipq.Drops()
	for i := 1; i < len(h.ipqs); i++ { // per-CPU softnet queues (ipqs[0] == ipq)
		s.IPQDrops += h.ipqs[i].Drops()
	}
	for _, so := range h.sockets {
		if so.NIChan != nil {
			s.ChannelDrops += so.NIChan.Queue.Drops()
			s.DisabledDrops += so.NIChan.DisabledDrops
		}
		if so.RecvDgrams != nil {
			s.SockQDrops += so.RecvDgrams.Drops()
		}
		s.SockQDrops += so.Stats.SockQDrops
		s.ProtoDrops += so.Stats.ProtoDrops
	}
	if h.fragChan != nil {
		s.ChannelDrops += h.fragChan.Queue.Drops()
	}
	if h.twChan != nil {
		s.ChannelDrops += h.twChan.Queue.Drops()
	}
	return s
}

// Sockets returns all sockets created on the host.
func (h *Host) Sockets() []*socket.Socket { return append([]*socket.Socket(nil), h.sockets...) }

// Shutdown stops the host's process goroutines on every CPU.
func (h *Host) Shutdown() {
	for _, k := range h.CPUs {
		k.Shutdown()
	}
}

// allocPort returns a fresh ephemeral port.
func (h *Host) allocPort() uint16 {
	for {
		h.ephemeral++
		if h.ephemeral < 49152 {
			h.ephemeral = 49152
		}
		p := h.ephemeral
		if _, used := h.pcbs.LookupListen(pkt.ProtoTCP, pkt.Addr{}, p); used {
			continue
		}
		if _, used := h.pcbs.LookupListen(pkt.ProtoUDP, pkt.Addr{}, p); used {
			continue
		}
		return p
	}
}

// nextISS returns a fresh TCP initial sequence number.
func (h *Host) nextISS() uint32 {
	h.iss += 64021
	return h.iss
}

// nextIPID returns a fresh IP identification value.
func (h *Host) nextIPID() uint16 {
	h.ipid++
	return h.ipid
}

// registerFilter adds an interpreted demux filter for a bound socket
// (filter-demux mode only).
func (h *Host) registerFilter(s *socket.Socket, prog demux.Program) {
	if h.filterDemux == nil {
		return
	}
	h.filterProgs[s] = h.filterDemux.Bind(prog, s)
}

// unregisterFilter removes a socket's filter, compacting later handles.
func (h *Host) unregisterFilter(s *socket.Socket) {
	if h.filterDemux == nil {
		return
	}
	hd, ok := h.filterProgs[s]
	if !ok {
		return
	}
	h.filterDemux.Unbind(hd)
	delete(h.filterProgs, s)
	// Walk the (insertion-ordered) socket list rather than ranging the
	// map: sim-core code must not depend on map iteration order.
	for _, other := range h.sockets {
		if oh, ok := h.filterProgs[other]; ok && oh > hd {
			h.filterProgs[other] = oh - 1
		}
	}
}

// demuxCostFor prices the demultiplexing of one raw packet: the flat
// hand-coded cost, or the interpreter work of a linear filter scan.
func (h *Host) demuxCostFor(b []byte) int64 {
	if h.filterDemux == nil {
		return h.CM.DemuxCost
	}
	_, _, steps := h.filterDemux.Classify(b)
	c := int64(steps) * h.CM.FilterStepCostNs / 1000
	if c < 1 {
		c = 1
	}
	return c
}

// attachChannel gives s an NI channel (LRP architectures only).
func (h *Host) attachChannel(s *socket.Socket) {
	if !h.Arch.IsLRP() || s.NIChan != nil {
		return
	}
	ch := nic.NewChannel(h.CM.ChannelLimit)
	ch.Owner = s
	if s.Type == socket.Stream {
		// TCP requires asynchronous processing; the channel always
		// requests an interrupt on empty->nonempty.
		ch.IntrRequested = true
	}
	s.NIChan = ch
	h.stats.Channels++
	if h.stats.Channels > h.stats.MaxChannels {
		h.stats.MaxChannels = h.stats.Channels
	}
}

// detachChannel releases s's NI channel.
func (h *Host) detachChannel(s *socket.Socket) {
	if s.NIChan == nil {
		return
	}
	s.NIChan.Queue.Flush()
	s.NIChan = nil
	h.stats.Channels--
}

// protoInCost estimates eager protocol-processing cost for a raw packet
// (used to price software-interrupt work items before processing).
// Checksum validation is length-dependent: TCP segments always pay it;
// UDP datagrams pay it when the wire checksum is present.
func (h *Host) protoInCost(b []byte, pcbLookup bool) int64 {
	if h.forwarding && h.isForeign(b) {
		return h.CM.IPInCost + h.CM.IPOutCost
	}
	cost := h.CM.IPInCost
	if len(b) > 9 {
		switch b[9] {
		case pkt.ProtoUDP:
			cost += h.CM.UDPInCost
			if udpHasChecksum(b) {
				cost += h.CM.ChecksumCost(len(b))
			}
		case pkt.ProtoTCP:
			cost += h.CM.TCPInCost + h.CM.ChecksumCost(len(b))
		default:
			cost += h.CM.UDPInCost / 2
		}
	}
	if pcbLookup {
		cost += h.CM.PCBLookupCost
	}
	return cost
}

// udpHasChecksum peeks at a raw packet's UDP checksum field.
func udpHasChecksum(b []byte) bool {
	if len(b) < pkt.IPv4HeaderLen+pkt.UDPHeaderLen {
		return false
	}
	hlen := int(b[0]&0x0f) * 4
	if len(b) < hlen+pkt.UDPHeaderLen {
		return false
	}
	return b[hlen+6] != 0 || b[hlen+7] != 0
}

// channelDequeueCost is the host cost of pulling one packet off an NI
// channel; NI-LRP pays extra for the adaptor-resident queue.
func (h *Host) channelDequeueCost() int64 {
	c := h.CM.ChannelDequeueCost
	if h.Arch == ArchNILRP {
		c += h.CM.NIChannelPenalty
	}
	return c
}

// lrpProtoInCost is the lazy-path protocol cost: PCB lookup is bypassed
// (the demultiplexer already identified the endpoint) unless the
// redundant-lookup methodology switch is on.
func (h *Host) lrpProtoInCost(b []byte) int64 {
	return h.protoInCost(b, h.CM.RedundantPCBLookup)
}

func (h *Host) String() string {
	return fmt.Sprintf("host %s (%s, %v)", h.Name, h.Addr, h.Arch)
}
