package core

// TCP system calls. As in the paper, transmit-side processing happens in
// the sender's context; receive-side processing happens in softint context
// (BSD/Early-Demux) or in the APP thread (LRP), so these calls mainly
// block on protocol events.

import (
	"lrp/internal/demux"
	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/socket"
	"lrp/internal/tcp"
)

// NewTCPSocket creates a stream socket owned by owner.
func (h *Host) NewTCPSocket(owner *kernel.Proc) *socket.Socket {
	s := socket.NewSocket(socket.Stream, owner)
	s.Local = h.Addr
	h.sockets = append(h.sockets, s)
	return s
}

// BindTCP reserves a local TCP port for s (0 allocates ephemeral).
func (h *Host) BindTCP(s *socket.Socket, port uint16) error {
	if s.Bound {
		return ErrPortInUse
	}
	if port == 0 {
		port = h.allocPort()
	} else if _, used := h.pcbs.LookupListen(pkt.ProtoTCP, pkt.Addr{}, port); used {
		return ErrPortInUse
	}
	s.LPort = port
	s.Bound = true
	return nil
}

// Listen puts s into the listening state with the given backlog, binding
// the wildcard demux entry and (LRP) the listen channel.
func (h *Host) Listen(p *kernel.Proc, s *socket.Socket, backlog int) error {
	if !s.Bound {
		if err := h.BindTCP(s, 0); err != nil {
			return err
		}
	}
	if p != nil {
		p.ComputeSys(h.CM.SyscallFixed)
	}
	c := tcp.NewConn(&h.hooks, h.Addr, s.LPort, pkt.Addr{}, 0, h.nextISS())
	c.UserData = s
	c.ListenOn(backlog)
	s.Conn = c
	s.Listening = true
	s.Backlog = backlog
	h.pcbs.BindListen(pkt.ProtoTCP, pkt.Addr{}, s.LPort, s)
	h.registerFilter(s, demux.CompileTCPPortFilter(s.LPort))
	h.attachChannel(s)
	return nil
}

// Accept blocks until an established connection is available on listener
// l and returns its socket.
func (h *Host) Accept(p *kernel.Proc, l *socket.Socket) (*socket.Socket, error) {
	if !l.Listening {
		return nil, ErrNotListening
	}
	p.ComputeSys(h.CM.SyscallFixed)
	lc := l.Conn.(*tcp.Conn)
	for {
		if l.Closed {
			return nil, ErrClosed
		}
		if nc, ok := lc.Accept(); ok {
			h.syncListenChannel(l)
			ns := connSocket(nc)
			ns.Connected = true
			return ns, nil
		}
		p.Sleep(&l.AcceptWait)
	}
}

// ConnectTCP performs an active open and blocks until the connection is
// established or fails.
func (h *Host) ConnectTCP(p *kernel.Proc, s *socket.Socket, raddr pkt.Addr, rport uint16) error {
	if !s.Bound {
		if err := h.BindTCP(s, 0); err != nil {
			return err
		}
	}
	p.ComputeSys(h.CM.SyscallFixed + h.CM.TCPOutCost + h.CM.IPOutCost)
	s.Remote = raddr
	s.RPort = rport
	c := tcp.NewConn(&h.hooks, h.Addr, s.LPort, raddr, rport, h.nextISS())
	c.UserData = s
	s.Conn = c
	h.pcbs.BindConnected(pkt.ProtoTCP, h.Addr, s.LPort, raddr, rport, s)
	h.attachChannel(s)
	c.Connect()
	for {
		switch c.State {
		case tcp.Established:
			s.Connected = true
			return nil
		case tcp.Closed:
			return ErrConnRefused
		}
		p.Sleep(&s.SndWait)
	}
}

// SendStream writes data on a connected stream socket, blocking until all
// of it is accepted by the send buffer.
func (h *Host) SendStream(p *kernel.Proc, s *socket.Socket, data []byte) (int, error) {
	c, ok := s.Conn.(*tcp.Conn)
	if !ok {
		return 0, ErrNotBound
	}
	p.ComputeSys(h.CM.SyscallFixed)
	total := 0
	for len(data) > 0 {
		if s.Closed {
			return total, ErrClosed
		}
		switch c.State {
		case tcp.Closed:
			return total, ErrConnReset
		case tcp.Established, tcp.CloseWait:
		default:
			return total, ErrClosed
		}
		n := c.Write(data)
		if n > 0 {
			segs := int64(n/c.MSS) + 1
			p.ComputeSys(h.CM.CopyCost(n) + h.CM.ChecksumCost(n) + segs*(h.CM.TCPOutCost+h.CM.IPOutCost))
			total += n
			data = data[n:]
			continue
		}
		p.Sleep(&s.SndWait)
	}
	return total, nil
}

// RecvStream reads up to max bytes, blocking until data, EOF, or error.
// It returns n==0 with nil error at end of stream.
func (h *Host) RecvStream(p *kernel.Proc, s *socket.Socket, max int) ([]byte, error) {
	c, ok := s.Conn.(*tcp.Conn)
	if !ok {
		return nil, ErrNotBound
	}
	p.ComputeSys(h.CM.SyscallFixed)
	for {
		if s.Closed {
			return nil, ErrClosed
		}
		n, fin := c.Readable()
		if n > 0 {
			data := c.Read(max)
			p.ComputeSys(h.CM.CopyCost(len(data)))
			return data, nil
		}
		if fin {
			return nil, nil // EOF
		}
		if c.State == tcp.Closed {
			return nil, ErrConnReset
		}
		p.Sleep(&s.RcvWait)
	}
}

// CloseTCP closes a stream socket: orderly close for connections, released
// state for listeners.
func (h *Host) CloseTCP(p *kernel.Proc, s *socket.Socket) {
	if s.Closed {
		return
	}
	if p != nil {
		p.ComputeSys(h.CM.SyscallFixed)
	}
	if c, ok := s.Conn.(*tcp.Conn); ok {
		if s.Listening {
			s.Closed = true
			c.Close() // triggers Dealloc, which unbinds
		} else {
			c.Close()
			// The socket stays usable for draining received data until the
			// protocol finishes; mark it closed for new operations only
			// when fully dead.
		}
	} else {
		s.Closed = true
	}
	s.AcceptWait.WakeupAll()
}

// AbortTCP resets the connection immediately.
func (h *Host) AbortTCP(p *kernel.Proc, s *socket.Socket) {
	if c, ok := s.Conn.(*tcp.Conn); ok {
		if p != nil {
			p.ComputeSys(h.CM.SyscallFixed + h.CM.TCPOutCost)
		}
		c.Abort()
	}
	s.Closed = true
}

// ConnOf returns the TCP connection behind a stream socket (nil if none).
func ConnOf(s *socket.Socket) *tcp.Conn {
	if c, ok := s.Conn.(*tcp.Conn); ok {
		return c
	}
	return nil
}
