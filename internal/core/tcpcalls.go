package core

// TCP system calls. As in the paper, transmit-side processing happens in
// the sender's context; receive-side processing happens in softint context
// (BSD/Early-Demux) or in the APP thread (LRP), so these calls mainly
// block on protocol events.

import (
	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/socket"
	"lrp/internal/tcp"
)

// NewTCPSocket creates a stream socket owned by owner.
func (h *Host) NewTCPSocket(owner *kernel.Proc) *socket.Socket {
	s := socket.NewSocket(socket.Stream, owner)
	s.Local = h.Addr
	h.sockets = append(h.sockets, s)
	return s
}

// BindTCP reserves a local TCP port for s (0 allocates ephemeral).
func (h *Host) BindTCP(s *socket.Socket, port uint16) error {
	if s.Bound {
		return ErrPortInUse
	}
	if port == 0 {
		port = h.allocPort()
	} else if _, used := h.pcbs.LookupListen(pkt.ProtoTCP, pkt.Addr{}, port); used {
		return ErrPortInUse
	}
	s.LPort = port
	s.Bound = true
	return nil
}

// Listen puts s into the listening state with the given backlog, binding
// the wildcard demux entry and (LRP) the listen channel. p may be nil —
// the machine then never yields (see ListenStep).
func (h *Host) Listen(p *kernel.Proc, s *socket.Socket, backlog int) error {
	var fr ListenOp
	for !h.ListenStep(p, s, backlog, &fr) {
		p.Block()
	}
	return fr.Err
}

// Accept blocks until an established connection is available on listener
// l and returns its socket.
func (h *Host) Accept(p *kernel.Proc, l *socket.Socket) (*socket.Socket, error) {
	var fr AcceptOp
	for !h.AcceptStep(p, l, &fr) {
		p.Block()
	}
	return fr.NS, fr.Err
}

// ConnectTCP performs an active open and blocks until the connection is
// established or fails.
func (h *Host) ConnectTCP(p *kernel.Proc, s *socket.Socket, raddr pkt.Addr, rport uint16) error {
	var fr ConnectTCPOp
	for !h.ConnectTCPStep(p, s, raddr, rport, &fr) {
		p.Block()
	}
	return fr.Err
}

// SendStream writes data on a connected stream socket, blocking until all
// of it is accepted by the send buffer.
func (h *Host) SendStream(p *kernel.Proc, s *socket.Socket, data []byte) (int, error) {
	fr := SendStreamOp{Data: data}
	for !h.SendStreamStep(p, s, &fr) {
		p.Block()
	}
	return fr.Total, fr.Err
}

// RecvStream reads up to max bytes, blocking until data, EOF, or error.
// It returns n==0 with nil error at end of stream.
func (h *Host) RecvStream(p *kernel.Proc, s *socket.Socket, max int) ([]byte, error) {
	var fr RecvStreamOp
	for !h.RecvStreamStep(p, s, max, &fr) {
		p.Block()
	}
	return fr.Data, fr.Err
}

// CloseTCP closes a stream socket: orderly close for connections, released
// state for listeners. p may be nil — the machine then never yields.
func (h *Host) CloseTCP(p *kernel.Proc, s *socket.Socket) {
	var fr CloseTCPOp
	for !h.CloseTCPStep(p, s, &fr) {
		p.Block()
	}
}

// AbortTCP resets the connection immediately.
func (h *Host) AbortTCP(p *kernel.Proc, s *socket.Socket) {
	if c, ok := s.Conn.(*tcp.Conn); ok {
		if p != nil {
			p.ComputeSys(h.CM.SyscallFixed + h.CM.TCPOutCost)
		}
		c.Abort()
	}
	s.Closed = true
}

// ConnOf returns the TCP connection behind a stream socket (nil if none).
func ConnOf(s *socket.Socket) *tcp.Conn {
	if c, ok := s.Conn.(*tcp.Conn); ok {
		return c
	}
	return nil
}
