package core

// TCP socket system calls and the LRP asynchronous protocol processing
// (APP) machinery. TCP cannot be processed purely lazily — "transmission
// of data is paced by the receiver via acknowledgments", so incoming
// segments are processed asynchronously by a kernel thread that is
// scheduled at the receiving application's priority and whose CPU usage is
// charged back to that application. Under BSD and Early-Demux the same
// protocol code runs in software-interrupt context instead.

import (
	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
	"lrp/internal/tcp"
)

// initTCPHooks wires the tcp package's environment callbacks.
func (h *Host) initTCPHooks() {
	h.hooks = tcp.Hooks{
		Now: h.Eng.Now,
		Output: func(c *tcp.Conn, b []byte) {
			var s *socket.Socket
			if us, ok := c.UserData.(*socket.Socket); ok {
				s = us
			}
			_ = h.ipOutput(nil, s, b)
		},
		ArmTimer:      h.armConnTimer,
		DisarmTimer:   h.disarmConnTimer,
		Notify:        h.connNotify,
		NewChild:      h.newChildConn,
		Dealloc:       h.deallocConn,
		TimeWaitDur:   h.CM.TimeWaitDur,
		MaxSynRetries: 4,
	}
}

// armConnTimer schedules a connection timer. When it fires, processing is
// routed to the architecture's protocol-processing context.
func (h *Host) armConnTimer(c *tcp.Conn, t tcp.Timer, delay int64) {
	ct := h.timers[c]
	if ct == nil {
		ct = &connTimers{}
		h.timers[c] = ct
	}
	h.Eng.Cancel(ct.ev[t])
	ct.gen[t]++
	gen := ct.gen[t]
	ct.ev[t] = h.Eng.After(delay, func() {
		ct.ev[t] = sim.Event{}
		h.dispatchTimer(c, t, gen)
	})
}

func (h *Host) disarmConnTimer(c *tcp.Conn, t tcp.Timer) {
	ct := h.timers[c]
	if ct == nil {
		return
	}
	ct.gen[t]++ // invalidate any queued expiry
	h.Eng.Cancel(ct.ev[t])
	ct.ev[t] = sim.Event{}
}

// dispatchTimer routes a fired timer into protocol-processing context.
func (h *Host) dispatchTimer(c *tcp.Conn, t tcp.Timer, gen uint64) {
	if h.Arch.IsLRP() {
		h.appQ = append(h.appQ, appWork{conn: c, timer: t, gen: gen})
		h.appWq.WakeupAll()
		return
	}
	// BSD / Early-Demux: timer processing in software interrupt context.
	h.K.PostSW(kernel.WorkItem{Cost: h.CM.TCPTimerCost, Fn: func() {
		if h.timerValid(c, t, gen) {
			c.TimerExpire(t)
		}
	}})
}

func (h *Host) timerValid(c *tcp.Conn, t tcp.Timer, gen uint64) bool {
	ct := h.timers[c]
	return ct != nil && ct.gen[t] == gen
}

// connSocket returns the socket behind a connection, if any.
func connSocket(c *tcp.Conn) *socket.Socket {
	if s, ok := c.UserData.(*socket.Socket); ok {
		return s
	}
	return nil
}

// connNotify maps protocol events to socket wakeups and LRP channel
// management.
func (h *Host) connNotify(c *tcp.Conn, ev tcp.Event) {
	s := connSocket(c)
	if s == nil {
		return
	}
	switch ev {
	case tcp.EvEstablished:
		s.Connected = true
		s.SndWait.WakeupAll()
	case tcp.EvAcceptable:
		s.AcceptWait.WakeupAll()
		h.syncListenChannel(s)
	case tcp.EvReadable:
		s.RcvWait.WakeupAll()
	case tcp.EvWritable:
		s.SndWait.WakeupAll()
	case tcp.EvTimeWait:
		if h.Arch == ArchNILRP && s.NIChan != nil {
			// "deallocating an NI channel as soon as the associated TCP
			// connection enters the TIME_WAIT state. Any subsequently
			// arriving packets on this connection are queued at a special
			// NI channel."
			h.detachChannel(s)
			s.NIChan = nil
			h.redirectToTimeWaitChannel(s)
		}
	case tcp.EvReset, tcp.EvClosed:
		s.RcvWait.WakeupAll()
		s.SndWait.WakeupAll()
		s.AcceptWait.WakeupAll()
	}
}

// redirectToTimeWaitChannel rebinds a TIME_WAIT socket's demux entry onto
// the shared TIME_WAIT channel, drained by the APP thread.
func (h *Host) redirectToTimeWaitChannel(s *socket.Socket) {
	s.NIChan = h.twChan
}

// newChildConn services an incoming SYN on a listener: allocate the
// socket, the connection, the demultiplexing entry, and (LRP) the NI
// channel.
func (h *Host) newChildConn(l *tcp.Conn, remote pkt.Addr, rport uint16) *tcp.Conn {
	ls := connSocket(l)
	if ls == nil {
		return nil
	}
	s := socket.NewSocket(socket.Stream, ls.Owner)
	s.Local = h.Addr
	s.LPort = l.LPort
	s.Remote = remote
	s.RPort = rport
	s.Bound = true
	h.sockets = append(h.sockets, s)

	c := tcp.NewConn(&h.hooks, h.Addr, l.LPort, remote, rport, h.nextISS())
	c.SetBufSizes(l.SndBuf.Limit, l.RcvBuf.Limit)
	c.UserData = s
	s.Conn = c
	h.pcbs.BindConnected(pkt.ProtoTCP, h.Addr, l.LPort, remote, rport, s)
	h.attachChannel(s)
	return c
}

// deallocConn tears down host state when a connection dies.
func (h *Host) deallocConn(c *tcp.Conn) {
	delete(h.timers, c)
	s := connSocket(c)
	if s == nil {
		return
	}
	if s.Listening {
		h.pcbs.UnbindListen(pkt.ProtoTCP, pkt.Addr{}, s.LPort)
		h.unregisterFilter(s)
	} else if s.Bound && s.RPort != 0 {
		h.pcbs.UnbindConnected(pkt.ProtoTCP, h.Addr, s.LPort, s.Remote, s.RPort)
	}
	if s.NIChan != nil && s.NIChan != h.twChan {
		h.detachChannel(s)
	}
	s.NIChan = nil
	s.Closed = true
}

// syncListenChannel enables/disables protocol processing on a listener's
// channel according to its backlog: "protocol processing is disabled for
// listening sockets that have exceeded their listen backlog limit, thus
// causing the discard of further SYN packets at the NI channel queue."
func (h *Host) syncListenChannel(s *socket.Socket) {
	if s.NIChan == nil || !s.Listening {
		return
	}
	if c, ok := s.Conn.(*tcp.Conn); ok {
		s.NIChan.ProcessingDisabled = c.BacklogFull()
	}
}

// ---------------------------------------------------------------------------
// APP: the asynchronous protocol processing thread (LRP).

// queueChannelWork asks the APP thread to drain a TCP socket's channel.
//
//lrp:coldalloc amortized: appQ is drained in place and keeps its capacity across APP rounds
func (h *Host) queueChannelWork(s *socket.Socket) {
	h.appQ = append(h.appQ, appWork{sock: s})
	h.appWq.WakeupAll()
}

// appOwner resolves the process to charge for a socket's processing.
func appOwner(s *socket.Socket) *kernel.Proc {
	if s == nil {
		return nil
	}
	return s.Owner
}
