package core

// Additional integration tests: the LRP fragment channel, the NI-LRP
// TIME_WAIT channel, demultiplexing precedence, resource exhaustion, and
// cross-architecture interoperation.

import (
	"bytes"
	"strings"
	"testing"

	"lrp/internal/ipv4"
	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
	"lrp/internal/tcp"
)

// fragments splits a UDP packet into IP fragments for injection.
func fragments(payloadLen int, id uint16) [][]byte {
	whole := pkt.UDPPacket(addrA, addrB, 1000, 7, id, 64, make([]byte, payloadLen), false)
	return ipv4.Fragment(whole, ipv4.DefaultMTU)
}

func TestLRPFragmentChannelOutOfOrder(t *testing.T) {
	// Trailing fragments arriving before the header fragment land on the
	// special fragment channel; reassembly pulls them from there when the
	// header fragment arrives ("The IP reassembly function checks this
	// channel queue when it misses fragments during reassembly").
	for _, arch := range []Arch{ArchNILRP, ArchSoftLRP} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			r := newRig(t, arch)
			var got int
			r.server.K.Spawn("recv", 0, func(p *kernel.Proc) {
				s := r.server.NewUDPSocket(p)
				_ = r.server.BindUDP(s, 7)
				d, err := r.server.RecvFrom(p, s)
				if err == nil {
					got = len(d.Data)
				}
			})
			frags := fragments(25000, 42)
			if len(frags) < 3 {
				t.Fatalf("need ≥3 fragments, got %d", len(frags))
			}
			// Deliver in reverse order: all non-first fragments miss.
			for i := len(frags) - 1; i >= 0; i-- {
				f := frags[i]
				at := int64(1000 * (len(frags) - i))
				r.eng.At(at, func() { r.nw.Inject(f) })
			}
			r.eng.RunFor(sim.Second)
			if got != 25000 {
				t.Fatalf("reassembled %d bytes", got)
			}
		})
	}
}

func TestConnectedUDPBeatsWildcard(t *testing.T) {
	// A connected UDP socket's exact demux entry takes traffic from its
	// peer; a wildcard socket on the same port gets everything else.
	r := newRig(t, ArchSoftLRP)
	var exact, wild int
	r.server.K.Spawn("exact", 0, func(p *kernel.Proc) {
		s := r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s, 7)
		// Rebind as connected to client port 5000.
		_ = r.server.ConnectUDP(s, addrA, 5000)
		for {
			if _, err := r.server.RecvFrom(p, s); err != nil {
				return
			}
			exact++
		}
	})
	r.eng.RunFor(10 * sim.Millisecond)
	// A wildcard socket on a second port receives unrelated traffic.
	r.server.K.Spawn("wild", 0, func(p *kernel.Proc) {
		s := r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s, 8)
		for {
			if _, err := r.server.RecvFrom(p, s); err != nil {
				return
			}
			wild++
		}
	})
	r.eng.At(20*1000, func() {
		r.nw.Inject(pkt.UDPPacket(addrA, addrB, 5000, 7, 1, 64, []byte("to-exact"), true))
		r.nw.Inject(pkt.UDPPacket(addrA, addrB, 5001, 8, 2, 64, []byte("to-wild"), true))
	})
	r.eng.RunFor(sim.Second)
	if exact != 1 || wild != 1 {
		t.Fatalf("exact=%d wild=%d", exact, wild)
	}
}

func TestBindConflict(t *testing.T) {
	r := newRig(t, ArchBSD)
	r.server.K.Spawn("binder", 0, func(p *kernel.Proc) {
		a := r.server.NewUDPSocket(p)
		if err := r.server.BindUDP(a, 7); err != nil {
			t.Errorf("first bind: %v", err)
		}
		b := r.server.NewUDPSocket(p)
		if err := r.server.BindUDP(b, 7); err == nil {
			t.Error("duplicate bind succeeded")
		}
		// Ephemeral binds never collide.
		seen := map[uint16]bool{}
		for i := 0; i < 50; i++ {
			s := r.server.NewUDPSocket(p)
			if err := r.server.BindUDP(s, 0); err != nil {
				t.Errorf("ephemeral bind %d: %v", i, err)
			}
			if seen[s.LPort] {
				t.Errorf("ephemeral port %d reused", s.LPort)
			}
			seen[s.LPort] = true
		}
	})
	r.eng.RunFor(100 * sim.Millisecond)
}

func TestNILRPTimeWaitChannelHandlesLateSegments(t *testing.T) {
	// After a NI-LRP connection enters TIME_WAIT its channel is gone;
	// late segments are queued on the shared TIME_WAIT channel and still
	// processed (via a PCB lookup) so the late FIN gets its ACK.
	r := newRig(t, ArchNILRP)
	r.server.CM.TimeWaitDur = 2 * sim.Second
	r.client.CM.TimeWaitDur = 2 * sim.Second
	var clientSock *socket.Socket
	done := false
	r.server.K.Spawn("srv", 0, func(p *kernel.Proc) {
		l := r.server.NewTCPSocket(p)
		_ = r.server.BindTCP(l, 80)
		_ = r.server.Listen(p, l, 5)
		cs, err := r.server.Accept(p, l)
		if err != nil {
			return
		}
		_, _ = r.server.RecvStream(p, cs, 100)
		r.server.CloseTCP(p, cs) // server closes first -> server TIME_WAIT
	})
	r.client.K.Spawn("cli", 0, func(p *kernel.Proc) {
		s := r.client.NewTCPSocket(p)
		clientSock = s
		if err := r.client.ConnectTCP(p, s, addrB, 80); err != nil {
			t.Error(err)
			return
		}
		_, _ = r.client.SendStream(p, s, []byte("x"))
		for {
			data, err := r.client.RecvStream(p, s, 100)
			if err != nil || data == nil {
				break
			}
		}
		r.client.CloseTCP(p, s)
		done = true
	})
	r.eng.RunFor(sim.Second)
	if !done {
		t.Fatal("exchange incomplete")
	}
	// Find the server-side conn in TIME_WAIT and replay the client's FIN.
	var twConn *tcp.Conn
	for _, s := range r.server.Sockets() {
		if c := ConnOf(s); c != nil && c.State == tcp.TimeWait {
			twConn = c
		}
	}
	if twConn == nil {
		t.Fatal("no server conn in TIME_WAIT")
	}
	cc := ConnOf(clientSock)
	segsBefore := twConn.Stats.SegsIn
	// Retransmit the client's FIN|ACK as a raw packet.
	h := pkt.TCPHeader{
		SrcPort: cc.LPort, DstPort: 80,
		Seq: cc.SndNxt() - 1, Ack: cc.RcvNxt(),
		Flags: pkt.TCPFin | pkt.TCPAck, Window: 1000,
	}
	r.nw.Inject(pkt.TCPSegment(addrA, addrB, &h, 999, 64, nil))
	r.eng.RunFor(200 * sim.Millisecond)
	if twConn.Stats.SegsIn != segsBefore+1 {
		t.Fatalf("late segment not processed via TIME_WAIT channel: %d -> %d",
			segsBefore, twConn.Stats.SegsIn)
	}
	if twConn.State != tcp.TimeWait {
		t.Fatalf("late FIN corrupted state: %v", twConn.State)
	}
}

func TestMbufPoolExhaustionDropsAtNIC(t *testing.T) {
	// With a tiny pool, a burst overflows at the NIC ring with no host
	// CPU invested, and the counters say so.
	cm := DefaultCosts()
	cm.MbufPoolLimit = 8
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: ArchBSD, Costs: cm})
	defer server.Shutdown()
	server.K.Spawn("recv", 0, func(p *kernel.Proc) {
		s := server.NewUDPSocket(p)
		_ = server.BindUDP(s, 7)
		for {
			if _, err := server.RecvFrom(p, s); err != nil {
				return
			}
		}
	})
	eng.At(1000, func() {
		for i := 0; i < 64; i++ {
			nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, uint16(i), 64, make([]byte, 14), true))
		}
	})
	eng.RunFor(100 * sim.Millisecond)
	if d := server.NIC.Stats().RxRingDrops; d == 0 {
		t.Fatal("no drops despite 8-mbuf pool and a 64-packet burst")
	}
}

func TestCrossArchitectureInterop(t *testing.T) {
	// A BSD client talks to an LRP server: the wire format is the wire
	// format; architectures only change host-internal processing.
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: ArchNILRP})
	client := NewHost(eng, nw, Config{Name: "cli", Addr: addrA, Arch: ArchBSD})
	defer server.Shutdown()
	defer client.Shutdown()
	var reply []byte
	server.K.Spawn("echo", 0, func(p *kernel.Proc) {
		s := server.NewUDPSocket(p)
		_ = server.BindUDP(s, 7)
		for {
			d, err := server.RecvFrom(p, s)
			if err != nil {
				return
			}
			_ = server.SendTo(p, s, d.Src, d.SPort, bytes.ToUpper(d.Data))
		}
	})
	client.K.Spawn("cli", 0, func(p *kernel.Proc) {
		s := client.NewUDPSocket(p)
		_ = client.BindUDP(s, 0)
		_ = client.SendTo(p, s, addrB, 7, []byte("hello"))
		if d, err := client.RecvFrom(p, s); err == nil {
			reply = d.Data
		}
	})
	eng.RunFor(sim.Second)
	if string(reply) != "HELLO" {
		t.Fatalf("got %q", reply)
	}
}

func TestRecvFromTimeoutExpires(t *testing.T) {
	r := newRig(t, ArchSoftLRP)
	var timedOut bool
	var elapsed sim.Time
	r.server.K.Spawn("recv", 0, func(p *kernel.Proc) {
		s := r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s, 7)
		start := p.Now()
		_, ok, err := r.server.RecvFromTimeout(p, s, 50*sim.Millisecond)
		timedOut = !ok && err == nil
		elapsed = p.Now() - start
	})
	r.eng.RunFor(sim.Second)
	if !timedOut {
		t.Fatal("no timeout")
	}
	if elapsed < 50*sim.Millisecond || elapsed > 60*sim.Millisecond {
		t.Fatalf("timed out after %d", elapsed)
	}
}

func TestCloseUDPWakesBlockedReceiver(t *testing.T) {
	r := newRig(t, ArchSoftLRP)
	var got error
	var sock *socket.Socket
	r.server.K.Spawn("recv", 0, func(p *kernel.Proc) {
		sock = r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(sock, 7)
		_, got = r.server.RecvFrom(p, sock)
	})
	r.eng.At(10*1000, func() { r.server.CloseUDP(nil, sock) })
	r.eng.RunFor(100 * sim.Millisecond)
	if got != ErrClosed {
		t.Fatalf("blocked receiver got %v", got)
	}
}

func TestTryRecvFrom(t *testing.T) {
	r := newRig(t, ArchSoftLRP)
	var first, second bool
	r.server.K.Spawn("recv", 0, func(p *kernel.Proc) {
		s := r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s, 7)
		_, first = r.server.TryRecvFrom(p, s)
		p.Delay(20 * 1000)
		_, second = r.server.TryRecvFrom(p, s)
	})
	r.eng.At(10*1000, func() {
		r.nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, []byte("x"), true))
	})
	r.eng.RunFor(100 * sim.Millisecond)
	if first {
		t.Fatal("TryRecvFrom returned a datagram before any arrived")
	}
	if !second {
		t.Fatal("TryRecvFrom missed the waiting datagram")
	}
}

func TestForeCostsSlower(t *testing.T) {
	fore := SunOSForeCosts()
	def := DefaultCosts()
	if fore.DriverPerPkt <= def.DriverPerPkt || fore.CopyPerKB <= def.CopyPerKB {
		t.Fatal("Fore cost model is not slower than default")
	}
}

func TestHostStringerAndEcho(t *testing.T) {
	r := newRig(t, ArchNILRP)
	if r.server.String() == "" {
		t.Fatal("empty host string")
	}
}

func TestSharedSocketHighestPriorityProcesses(t *testing.T) {
	// Paper footnote: "more than one process can wait to read from a
	// socket. In this case, the process with the highest priority performs
	// the protocol processing." Two processes share one socket; the niced
	// one should be woken only when the normal-priority reader is busy.
	r := newRig(t, ArchSoftLRP)
	var normal, niced int
	var sock *socket.Socket
	r.server.K.Spawn("normal-reader", 0, func(p *kernel.Proc) {
		sock = r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(sock, 7)
		for {
			if _, err := r.server.RecvFrom(p, sock); err != nil {
				return
			}
			normal++
		}
	})
	r.server.K.Spawn("niced-reader", 10, func(p *kernel.Proc) {
		p.Delay(1000) // let the socket be created
		for {
			if _, err := r.server.RecvFrom(p, sock); err != nil {
				return
			}
			niced++
		}
	})
	for i := 0; i < 20; i++ {
		d := int64(5000 * (i + 2))
		seq := uint16(i)
		r.eng.At(d, func() {
			r.nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, seq, 64, []byte("x"), true))
		})
	}
	r.eng.RunFor(sim.Second)
	if normal+niced != 20 {
		t.Fatalf("delivered %d of 20", normal+niced)
	}
	// The high-priority reader should have handled (nearly) all of them.
	if normal < 18 {
		t.Fatalf("high-priority reader got %d of 20; wakeup not priority-ordered", normal)
	}
}

func TestOwnerlessSocketSurvives(t *testing.T) {
	// A socket created by an exited process must not break the receive
	// path bookkeeping (packets are dropped or queue up harmlessly).
	r := newRig(t, ArchSoftLRP)
	r.server.K.Spawn("creator", 0, func(p *kernel.Proc) {
		s := r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s, 7)
		// Exit immediately; the socket stays bound.
	})
	r.eng.At(5000, func() {
		for i := 0; i < 100; i++ {
			r.nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, uint16(i), 64, []byte("x"), true))
		}
	})
	r.eng.RunFor(200 * sim.Millisecond) // must not panic
}

func TestTraceRecordsPacketPath(t *testing.T) {
	r := newRig(t, ArchSoftLRP)
	log := r.server.EnableTrace(256)
	r.server.K.Spawn("recv", 0, func(p *kernel.Proc) {
		s := r.server.NewUDPSocket(p)
		_ = r.server.BindUDP(s, 7)
		for {
			if _, err := r.server.RecvFrom(p, s); err != nil {
				return
			}
		}
	})
	r.eng.At(5000, func() {
		r.nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, []byte("x"), true))
	})
	r.eng.RunFor(100 * sim.Millisecond)
	dump := log.Dump()
	for _, want := range []string{"demux", "dispatch"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("trace missing %q:\n%s", want, dump)
		}
	}
}

func TestTCPThroughLossyNetwork(t *testing.T) {
	// End-to-end failure injection: a 2% lossy LAN between full hosts.
	// TCP retransmission must deliver the complete stream on every
	// architecture.
	for _, arch := range []Arch{ArchBSD, ArchSoftLRP} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			nw := netsim.New(eng)
			nw.SetLoss(0.02, sim.NewRand(31337))
			server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: arch})
			client := NewHost(eng, nw, Config{Name: "cli", Addr: addrA, Arch: arch})
			defer server.Shutdown()
			defer client.Shutdown()
			const total = 512 * 1024
			received := 0
			server.K.Spawn("sink", 0, func(p *kernel.Proc) {
				l := server.NewTCPSocket(p)
				_ = server.BindTCP(l, 5001)
				_ = server.Listen(p, l, 5)
				cs, err := server.Accept(p, l)
				if err != nil {
					return
				}
				for {
					data, err := server.RecvStream(p, cs, 64*1024)
					if err != nil || data == nil {
						return
					}
					received += len(data)
				}
			})
			client.K.Spawn("src", 0, func(p *kernel.Proc) {
				s := client.NewTCPSocket(p)
				// Connect may need SYN retries under loss.
				for tries := 0; tries < 5; tries++ {
					if err := client.ConnectTCP(p, s, addrB, 5001); err == nil {
						break
					}
					s = client.NewTCPSocket(p)
				}
				chunk := make([]byte, 32*1024)
				sent := 0
				for sent < total {
					n, err := client.SendStream(p, s, chunk)
					if err != nil {
						return
					}
					sent += n
				}
				client.CloseTCP(p, s)
			})
			eng.RunFor(120 * sim.Second)
			if received != total {
				t.Fatalf("received %d of %d through lossy network", received, total)
			}
			if nw.Stats().Lost == 0 {
				t.Fatal("loss injection inactive; test vacuous")
			}
		})
	}
}

func TestAppThreadChargesTCPReceiverNotVictim(t *testing.T) {
	// The LRP APP thread's TCP processing is "scheduled at the priority of
	// the application process that uses the associated socket, and CPU
	// usage is charged back to that application" — a compute-bound victim
	// on the same host must absorb (almost) none of a TCP stream's
	// receive processing.
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: ArchNILRP})
	client := NewHost(eng, nw, Config{Name: "cli", Addr: addrA, Arch: ArchNILRP})
	defer server.Shutdown()
	defer client.Shutdown()

	victim := server.K.Spawn("victim", 0, func(p *kernel.Proc) {
		for {
			p.Compute(sim.Millisecond)
		}
	})
	var receiver *kernel.Proc
	server.K.Spawn("tcp-recv", 0, func(p *kernel.Proc) {
		receiver = p
		l := server.NewTCPSocket(p)
		_ = server.BindTCP(l, 5001)
		_ = server.Listen(p, l, 5)
		cs, err := server.Accept(p, l)
		if err != nil {
			return
		}
		for {
			data, err := server.RecvStream(p, cs, 64*1024)
			if err != nil || data == nil {
				return
			}
		}
	})
	client.K.Spawn("tcp-send", 0, func(p *kernel.Proc) {
		s := client.NewTCPSocket(p)
		if err := client.ConnectTCP(p, s, addrB, 5001); err != nil {
			return
		}
		chunk := make([]byte, 32*1024)
		for {
			if _, err := client.SendStream(p, s, chunk); err != nil {
				return
			}
		}
	})
	eng.RunFor(3 * sim.Second)
	if receiver.STime == 0 {
		t.Fatal("receiver charged nothing for its TCP stream")
	}
	if victim.IntrCharged > receiver.STime/10 {
		t.Fatalf("victim absorbed %dµs of the stream's processing (receiver: %dµs)",
			victim.IntrCharged, receiver.STime)
	}
}

func TestRedundantPCBLookupCostsMore(t *testing.T) {
	// The Fig. 5 methodology switch must actually cost something: the same
	// workload consumes more receiver CPU with the redundant lookup on.
	stime := func(redundant bool) int64 {
		cm := DefaultCosts()
		cm.RedundantPCBLookup = redundant
		eng := sim.NewEngine()
		nw := netsim.New(eng)
		server := NewHost(eng, nw, Config{Name: "srv", Addr: addrB, Arch: ArchSoftLRP, Costs: cm})
		defer server.Shutdown()
		var proc *kernel.Proc
		server.K.Spawn("recv", 0, func(p *kernel.Proc) {
			proc = p
			s := server.NewUDPSocket(p)
			_ = server.BindUDP(s, 7)
			for {
				if _, err := server.RecvFrom(p, s); err != nil {
					return
				}
			}
		})
		for i := 0; i < 500; i++ {
			d := int64(1000 * (i + 1))
			eng.At(d, func() {
				nw.Inject(pkt.UDPPacket(addrA, addrB, 9, 7, 1, 64, make([]byte, 14), true))
			})
		}
		eng.RunFor(sim.Second)
		return proc.STime
	}
	plain := stime(false)
	redundant := stime(true)
	if redundant <= plain {
		t.Fatalf("redundant PCB lookup did not cost more: %d vs %d", redundant, plain)
	}
}

// Regression for the unregisterFilter rewrite: handle compaction used to
// range over the filterProgs map; it now walks the insertion-ordered
// socket list. After closing sockets in the middle of the filter list,
// every surviving socket's stored handle must still agree with the
// compacted filter table, i.e. packets keep classifying to the right
// socket.
func TestUnregisterFilterCompactsHandles(t *testing.T) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	h := NewHost(eng, nw, Config{Name: "h", Addr: addrB, Arch: ArchSoftLRP, FilterDemux: true})
	defer h.Shutdown()

	ports := []uint16{1001, 1002, 1003, 1004, 1005}
	socks := make([]*socket.Socket, len(ports))
	h.K.Spawn("setup", 0, func(p *kernel.Proc) {
		for i, port := range ports {
			s := h.NewUDPSocket(p)
			if err := h.BindUDP(s, port); err != nil {
				t.Error(err)
				return
			}
			socks[i] = s
		}
		// Close two sockets in the middle: both compact the handles of
		// everything bound after them.
		h.CloseUDP(p, socks[1])
		h.CloseUDP(p, socks[3])
	})
	eng.RunFor(sim.Second)

	if n := h.filterDemux.Len(); n != 3 {
		t.Fatalf("filter entries = %d, want 3", n)
	}
	for i, s := range socks {
		b := pkt.UDPPacket(addrA, addrB, 9999, ports[i], 1, 64, []byte("x"), false)
		ep, ok, _ := h.filterDemux.Classify(b)
		if i == 1 || i == 3 {
			if ok {
				t.Fatalf("port %d: closed socket still classified", ports[i])
			}
			continue
		}
		if !ok || ep != s {
			t.Fatalf("port %d: classify ok=%v ep=%p, want socket %p", ports[i], ok, ep, s)
		}
		hd, present := h.filterProgs[s]
		if !present || hd < 0 || hd >= h.filterDemux.Len() {
			t.Fatalf("port %d: stored handle %d out of sync with table of %d", ports[i], hd, h.filterDemux.Len())
		}
	}
}
