package core

// The Mogul & Ramakrishnan polling mitigation (USENIX '96), which the
// paper's related work compares against: "These techniques avoid receiver
// livelock by temporarily disabling hardware interrupts and using polling
// under conditions of overload. Disabling interrupts limits the interrupt
// rate and causes early packet discard by the network interface. Polling
// is used to ensure progress by fairly allocating resources among receive
// and transmit processing." The paper notes its overload stability is
// comparable to NI-LRP's, but "their system does not achieve traffic
// separation ... does not attempt to charge resources spent in network
// processing to the receiving application, and it does not attempt to
// reduce context switching."
//
// The implementation reuses the BSD eager path verbatim; only the
// interrupt discipline changes. Under overload (receive ring occupancy at
// or above PollEnterThresh when an interrupt fires), receive interrupts
// are disabled and a periodic poll admits at most PollBatch packets per
// PollInterval; arrivals beyond the ring bound die on the adaptor at no
// host cost. A poll that finds the ring empty re-enables interrupts.

import "lrp/internal/kernel"

// pollingHostIntr is the interrupt-mode receive path: identical to BSD's,
// plus the overload transition check.
func (h *Host) pollingHostIntr() {
	h.K.PostHW(kernel.WorkItem{
		Cost: h.CM.HWIntrFixed + h.CM.DriverPerPkt,
		Fn:   h.pollingDriverStep,
	})
}

func (h *Host) pollingDriverStep() {
	if m := h.NIC.RxDequeue(); m != nil {
		swEmpty := h.K.SWPending() == 0
		if h.ipq.Enqueue(m) {
			cost := h.protoInCost(m.Data, true) + h.CM.EagerProtoPenalty
			if swEmpty {
				cost += h.CM.SWDispatchFixed
			}
			h.K.PostSW(kernel.WorkItem{Cost: cost, Fn: h.bsdSoftint})
		}
	}
	if h.ipq.Len() >= h.CM.PollEnterThresh {
		// Overload: protocol processing is falling behind (the shared IP
		// queue is backing up). Switch to polled mode; interrupts stay
		// off until a poll finds the ring drained.
		h.enterPolledMode()
		return
	}
	if h.NIC.RxPending() > 0 {
		h.K.PostHW(kernel.WorkItem{Cost: h.CM.DriverPerPkt, Fn: h.pollingDriverStep})
	} else {
		h.NIC.IntrDone()
	}
}

// enterPolledMode disables receive interrupts and starts the poll cycle.
func (h *Host) enterPolledMode() {
	if h.polled {
		return
	}
	h.polled = true
	h.stats.PollTransitions++
	h.NIC.SetIntrEnabled(false)
	h.NIC.IntrDone()
	h.Eng.After(h.CM.PollInterval, h.pollPass)
}

// pollPass runs once per PollInterval in polled mode: admit a bounded
// batch from the ring (as software-interrupt work, like the BSD driver
// would), or exit polled mode if the ring is empty.
func (h *Host) pollPass() {
	if !h.polled {
		return
	}
	n := h.NIC.RxPending()
	if n == 0 && h.ipq.Len() == 0 {
		h.polled = false
		h.NIC.SetIntrEnabled(true)
		return
	}
	if n == 0 {
		// Ring drained but protocol work still queued: stay polled.
		h.Eng.After(h.CM.PollInterval, h.pollPass)
		return
	}
	if n > h.CM.PollBatch {
		n = h.CM.PollBatch
	}
	// The poll's driver work: one fixed dispatch plus per-packet cost,
	// charged like any interrupt-level work (to whoever runs — polling
	// does not fix BSD's accounting).
	h.K.PostSW(kernel.WorkItem{
		Cost: h.CM.SWDispatchFixed + int64(n)*h.CM.DriverPerPkt,
		Fn: func() {
			for i := 0; i < n; i++ {
				m := h.NIC.RxDequeue()
				if m == nil {
					break
				}
				if h.ipq.Enqueue(m) {
					h.K.PostSW(kernel.WorkItem{
						Cost: h.protoInCost(m.Data, true) + h.CM.EagerProtoPenalty,
						Fn:   h.bsdSoftint,
					})
				}
			}
		},
	})
	h.Eng.After(h.CM.PollInterval, h.pollPass)
}
