package core

// Receive-path drivers: where each architecture spends host CPU between a
// packet's arrival and its delivery to a socket. All four paths feed the
// same protocol code (protoInput, udpInput, tcpInput); they differ in the
// execution context, the discard point, and the accounting.

import (
	"lrp/internal/demux"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/pkt"
	"lrp/internal/socket"
	"lrp/internal/tcp"
	"lrp/internal/trace"
)

// ---------------------------------------------------------------------------
// 4.4BSD: interrupt handler -> shared IP queue -> software interrupt ->
// socket queue. Highest priority to capture, second to protocol
// processing, lowest to the application.

// bsdHostIntr fires on a ring empty->nonempty transition.
func (h *Host) bsdHostIntr() {
	h.K.PostHW(kernel.WorkItem{
		Cost: h.CM.HWIntrFixed + h.CM.DriverPerPkt,
		Fn:   h.bsdDriverStep,
	})
}

// bsdDriverStep handles one packet in the interrupt handler, then chains
// to the next ring entry (batching: the fixed dispatch cost is paid once
// per interrupt, the per-packet cost per packet).
func (h *Host) bsdDriverStep() {
	if m := h.NIC.RxDequeue(); m != nil {
		// Queue on the shared IP queue; drop if full — after the driver
		// has already invested work in the packet.
		swEmpty := h.K.SWPending() == 0
		if h.ipq.Enqueue(m) {
			cost := h.protoInCost(m.Data, true) + h.CM.EagerProtoPenalty
			if swEmpty {
				cost += h.CM.SWDispatchFixed
			}
			h.K.PostSW(kernel.WorkItem{Cost: cost, Fn: h.bsdSoftint})
		}
	}
	if h.NIC.RxPending() > 0 {
		h.K.PostHW(kernel.WorkItem{Cost: h.CM.DriverPerPkt, Fn: h.bsdDriverStep})
	} else {
		h.NIC.IntrDone()
	}
}

// bsdSoftint performs eager protocol processing for the head of the IP
// queue (its cost was charged by the posted work item, to whatever process
// happened to be running — BSD's accounting).
func (h *Host) bsdSoftint() {
	m := h.ipq.Dequeue()
	if m == nil {
		return
	}
	h.protoInput(m, nil)
}

// bsdDriverStepQ is bsdDriverStep for one queue of a multi-queue NIC:
// the same batching interrupt handler, but queue q's ring feeds CPU
// ci's IP queue and software interrupt. The closures in Host.qStep
// bind q/ci/k once at construction, so the per-interrupt path
// allocates nothing.
func (h *Host) bsdDriverStepQ(q, ci int, k *kernel.Kernel) {
	if m := h.NIC.RxDequeueQ(q); m != nil {
		swEmpty := k.SWPending() == 0
		if h.ipqs[ci].Enqueue(m) {
			cost := h.protoInCost(m.Data, true) + h.CM.EagerProtoPenalty
			if swEmpty {
				cost += h.CM.SWDispatchFixed
			}
			k.PostSW(kernel.WorkItem{Cost: cost, Fn: h.bsdSoftintFns[ci]})
		}
	}
	if h.NIC.RxPendingQ(q) > 0 {
		k.PostHW(kernel.WorkItem{Cost: h.CM.DriverPerPkt, Fn: h.qStep[q]})
	} else {
		h.NIC.IntrDoneQ(q)
	}
}

// ---------------------------------------------------------------------------
// SOFT-LRP and Early-Demux: demultiplexing in the host interrupt handler.

func (h *Host) demuxHostIntr() {
	h.K.PostHW(kernel.WorkItem{
		Cost: h.CM.HWIntrFixed + h.CM.DriverPerPkt + h.headDemuxCost(),
		Fn:   h.demuxDriverStep,
	})
}

func (h *Host) demuxDriverStep() {
	if m := h.NIC.RxDequeue(); m != nil {
		h.demuxDeliver(m)
	}
	if h.NIC.RxPending() > 0 {
		h.K.PostHW(kernel.WorkItem{Cost: h.CM.DriverPerPkt + h.headDemuxCost(), Fn: h.demuxDriverStep})
	} else {
		h.NIC.IntrDone()
	}
}

// demuxDriverStepQ is demuxDriverStep for one queue of a multi-queue
// NIC: queue q's packets are demultiplexed in interrupt context on the
// queue's assigned CPU k.
func (h *Host) demuxDriverStepQ(q int, k *kernel.Kernel) {
	if m := h.NIC.RxDequeueQ(q); m != nil {
		h.demuxDeliverOn(k, m)
	}
	if h.NIC.RxPendingQ(q) > 0 {
		k.PostHW(kernel.WorkItem{Cost: h.CM.DriverPerPkt + h.headDemuxCostQ(q), Fn: h.qStep[q]})
	} else {
		h.NIC.IntrDoneQ(q)
	}
}

// headDemuxCost prices the demultiplexing of the packet the next driver
// step will dequeue (data-dependent under interpreted filter demux).
func (h *Host) headDemuxCost() int64 {
	if h.filterDemux == nil {
		return h.CM.DemuxCost
	}
	m := h.NIC.RxPeek()
	if m == nil {
		return h.CM.DemuxCost
	}
	return h.demuxCostFor(m.Data)
}

// headDemuxCostQ is headDemuxCost against one queue's ring.
func (h *Host) headDemuxCostQ(q int) int64 {
	if h.filterDemux == nil {
		return h.CM.DemuxCost
	}
	m := h.NIC.RxPeekQ(q)
	if m == nil {
		return h.CM.DemuxCost
	}
	return h.demuxCostFor(m.Data)
}

// niDemuxProcess runs on the NIC's embedded processor (NI-LRP): the packet
// has already paid the NIC's per-packet cost; classification costs the
// host nothing.
func (h *Host) niDemuxProcess(m *mbuf.Mbuf) {
	h.demuxDeliver(m)
}

// demuxDeliver classifies a packet and places it on the right NI channel
// (or socket queue for Early-Demux). Runs in host interrupt context
// (SOFT-LRP, Early-Demux) or on the NIC processor (NI-LRP).
//
//lrp:hotpath
func (h *Host) demuxDeliver(m *mbuf.Mbuf) { h.demuxDeliverOn(h.K, m) }

// demuxDeliverOn is demuxDeliver in the interrupt context of a specific
// CPU k: eager follow-up work (Early-Demux softints, foreign-traffic
// forwarding) stays on the CPU whose queue carried the packet.
//
//lrp:hotpath
func (h *Host) demuxDeliverOn(k *kernel.Kernel, m *mbuf.Mbuf) {
	sock, v := h.pcbs.Classify(m.Data, h.Eng.Now())
	if (v == demux.Match || v == demux.NoMatch) && h.forwarding && h.isForeign(m.Data) {
		// Transit traffic. (A Match can occur when a local port number
		// coincides with a foreign packet's; the address check wins.)
		h.deliverForeignOn(k, m)
		return
	}
	if h.Trace != nil {
		h.Trace.Add(trace.KindDemux, "%s: verdict=%v", h.Name, v) //lrp:coldalloc vararg boxing; only reached with tracing enabled
	}
	switch v {
	case demux.Malformed:
		h.stats.MalformedDrops++
		if h.Trace != nil {
			h.Trace.Add(trace.KindDrop, "%s: malformed", h.Name) //lrp:coldalloc vararg boxing; only reached with tracing enabled
		}
		m.Free()
		return
	case demux.NoMatch:
		h.stats.NoMatchDrops++
		if h.Trace != nil {
			h.Trace.Add(trace.KindDrop, "%s: no endpoint", h.Name) //lrp:coldalloc vararg boxing; only reached with tracing enabled
		}
		m.Free()
		return
	case demux.FragMiss:
		// Fragment with no mapping yet: the special fragment channel,
		// consulted by reassembly when it misses fragments.
		h.fragChan.Deliver(m)
		return
	}

	if h.Arch == ArchEarlyDemux {
		h.earlyDemuxDeliver(k, sock, m)
		return
	}

	ch := sock.NIChan
	if ch == nil {
		// Socket exists but has no channel (race with close).
		h.stats.NoMatchDrops++
		m.Free()
		return
	}
	wasEmpty, ok := ch.Deliver(m)
	if !ok {
		if h.Trace != nil {
			h.Trace.Add(trace.KindDrop, "%s: early discard at channel port %d", h.Name, sock.LPort) //lrp:coldalloc vararg boxing; only reached with tracing enabled
		}
		return // early discard (counted on the channel)
	}
	if wasEmpty && ch.IntrRequested {
		h.channelSignal(sock, ch)
	}
}

// channelSignal reacts to a channel's empty->nonempty transition when the
// receiver asked for interrupts: wake the receiver (UDP) or schedule
// asynchronous protocol processing (TCP). Under NI-LRP this requires an
// actual (minimal) host interrupt; under soft demux we are already in one.
//
// On a multi-queue NI-LRP host the channel's interrupt line is routed to
// the owning process's CPU — the NI-channel analogue of RSS steering —
// so the wakeup needs no follow-up IPI. Single-queue hosts take every
// channel interrupt on CPU 0, exactly the pre-SMP behavior.
func (h *Host) channelSignal(sock *socket.Socket, ch *nic.Channel) {
	// One signal per empty->nonempty transition: the APP thread (TCP) or
	// the woken receiver (UDP) re-requests interrupts when it next needs
	// them.
	ch.IntrRequested = false
	act := sock.SignalAct
	if act == nil {
		// Built once per socket: the signal path runs per empty->nonempty
		// transition and must not allocate a closure each time.
		act = func() {
			switch {
			case sock.Type == socket.Stream:
				h.queueChannelWork(sock)
			default:
				if g := h.groupOf(sock); g != nil {
					// Shared (multicast) channel: wake the highest-priority
					// member with a sleeping receiver.
					h.mcastSignal(g)
					return
				}
				// "the process with the highest priority performs the
				// protocol processing"
				sock.RcvWait.WakeupBest()
			}
		}
		sock.SignalAct = act
	}
	if h.Arch == ArchNILRP {
		// The NIC raises a minimal host interrupt. Its cost is charged to
		// the socket's owner: the receiver caused this work, and LRP
		// accounts network processing to the process that receives the
		// traffic.
		h.NIC.RaiseIntr()
		k := h.K
		if h.multiQueue && sock.Owner != nil {
			k = sock.Owner.K
		}
		k.PostHW(kernel.WorkItem{Cost: h.CM.HWIntrFixed, ChargeTo: sock.Owner, Fn: act})
	} else {
		act()
	}
}

// earlyDemuxDeliver implements the paper's Early-Demux ablation: drop
// immediately if the destination socket cannot accept more data, otherwise
// schedule conventional (eager, softint, BSD-accounted) processing on the
// CPU k whose interrupt carried the packet.
func (h *Host) earlyDemuxDeliver(k *kernel.Kernel, sock *socket.Socket, m *mbuf.Mbuf) {
	if sock.Type == socket.Dgram && sock.RecvDgrams != nil && sock.RecvDgrams.Full() {
		h.stats.EarlyDrops++
		m.Free()
		return
	}
	if sock.Type == socket.Stream && sock.Listening {
		if c, ok := sock.Conn.(*tcp.Conn); ok && c.BacklogFull() && isSYN(m.Data) {
			h.stats.EarlyDrops++
			m.Free()
			return
		}
	}
	swEmpty := k.SWPending() == 0
	// PCB lookup is bypassed: the demultiplexer already identified the
	// socket ("Due to the early demultiplexing, UDP's PCB lookup was
	// bypassed, as in the LRP kernels").
	cost := h.protoInCost(m.Data, false) + h.CM.EagerProtoPenalty
	if swEmpty {
		cost += h.CM.SWDispatchFixed
	}
	k.PostSW(kernel.WorkItem{Cost: cost, Fn: func() { h.protoInput(m, sock) }})
}

// deliverForeign hands transit traffic to the forwarding machinery: the
// LRP forwarding daemon's channel (early discard when the daemon cannot
// keep up), or an eager software interrupt under Early-Demux, on the
// CPU k whose interrupt carried the packet.
func (h *Host) deliverForeignOn(k *kernel.Kernel, m *mbuf.Mbuf) {
	if h.Arch.IsLRP() {
		ch := h.fwdSock.NIChan
		wasEmpty, ok := ch.Deliver(m)
		if ok && wasEmpty && ch.IntrRequested {
			h.channelSignal(h.fwdSock, ch)
		}
		return
	}
	// Early-Demux: conventional eager forwarding.
	swEmpty := k.SWPending() == 0
	cost := h.CM.IPInCost + h.CM.IPOutCost
	if swEmpty {
		cost += h.CM.SWDispatchFixed
	}
	k.PostSW(kernel.WorkItem{Cost: cost, Fn: func() {
		b := m.Data
		m.BeginTransfer() // release the slot first, as the old free-then-read did
		h.forwardPacket(b)
		m.EndTransfer()
	}})
}

// isSYN reports whether a raw packet is a TCP SYN (no ACK).
func isSYN(b []byte) bool {
	ih, hlen, err := pkt.DecodeIPv4(b)
	if err != nil || ih.Proto != pkt.ProtoTCP || ih.IsFragment() {
		return false
	}
	seg := b[hlen:int(ih.TotalLen)]
	if len(seg) < pkt.TCPHeaderLen {
		return false
	}
	fl := seg[13]
	return fl&pkt.TCPSyn != 0 && fl&pkt.TCPAck == 0
}

// ---------------------------------------------------------------------------
// Shared protocol input (the "same 4.4BSD networking code" of the paper).

// protoInput performs full protocol input processing for one raw packet.
// sockHint, when non-nil, identifies the destination (early demux did the
// lookup); otherwise a PCB lookup resolves it. The CPU cost was accounted
// by the caller's context.
//
// The mbuf's pool slot is released up front (protocol input can itself
// allocate — ACKs, echo replies — and must see the same pool occupancy as
// before buffer recycling); the storage is recycled at the end, once
// nothing references the raw bytes. Only delivered UDP payload outlives
// this function, and that path takes its own reference on the mbuf so the
// consumer can recycle the buffer (Datagram.Release).
//
//lrp:hotpath
func (h *Host) protoInput(m *mbuf.Mbuf, sockHint *socket.Socket) {
	b := m.Data
	arrival := m.Arrival
	m.BeginTransfer()
	whole, done := h.reasm.Input(b, h.Eng.Now())
	if !done {
		m.EndTransfer() // fragment payload was copied by the reassembler
		return
	}
	ih, hlen, err := pkt.DecodeIPv4(whole)
	if err != nil {
		h.stats.MalformedDrops++
		m.EndTransfer()
		return
	}
	if ih.Dst != h.Addr && !ih.Dst.IsMulticast() {
		// Not ours: forward (in this — softint — context, charged to
		// whoever runs, under the eager architectures) or drop.
		if h.forwarding {
			h.forwardPacket(whole)
		} else {
			h.stats.NoMatchDrops++
		}
		m.EndTransfer() // forwardPacket rebuilt the packet in its own buffer
		return
	}
	seg := whole[hlen:int(ih.TotalLen)]
	switch ih.Proto {
	case pkt.ProtoUDP:
		// Delivered datagrams alias the packet bytes for as long as the
		// application holds them: when the storage is ours, pass the mbuf
		// along so the delivery can hand it to the consumer for recycling.
		var own *mbuf.Mbuf
		if aliases(whole, b) {
			own = m
		}
		h.udpInput(&ih, seg, arrival, sockHint, own)
	case pkt.ProtoTCP:
		h.tcpInput(&ih, seg, sockHint) // TCP copies what it retains
	case pkt.ProtoICMP:
		h.icmpInput(&ih, seg) // replies are built in fresh buffers
	default:
		h.stats.NoMatchDrops++
	}
	m.EndTransfer()
}

// aliases reports whether x is backed by the same bytes as the original
// packet b — i.e. whether the reassembler passed the packet through rather
// than assembling a fresh buffer.
func aliases(x, b []byte) bool {
	return len(x) > 0 && len(b) > 0 && &x[0] == &b[0]
}

// udpInput validates a UDP datagram and appends it to the destination
// socket queue. m, when non-nil, is the packet's mbuf whose storage backs
// seg and whose release still belongs to the caller: on delivery udpInput
// takes an extra reference and attaches it to the datagram so the consumer
// can recycle the buffer; on a drop the caller's release recycles it.
//
//lrp:hotpath
func (h *Host) udpInput(ih *pkt.IPv4Header, seg []byte, arrival int64, sock *socket.Socket, m *mbuf.Mbuf) {
	uh, err := pkt.DecodeUDP(seg, ih.Src, ih.Dst)
	if err != nil {
		if sock != nil {
			sock.Stats.ProtoDrops++
		} else {
			h.stats.ProtoDrops++
		}
		return
	}
	if sock == nil {
		s, v := h.lookupSocket(ih, uh.SrcPort, uh.DstPort)
		if v != demux.Match {
			h.stats.NoMatchDrops++
			return
		}
		sock = s
	}
	if sock.Closed || sock.RecvDgrams == nil {
		h.stats.NoMatchDrops++
		return
	}
	d := socket.Datagram{
		Data:    seg[pkt.UDPHeaderLen:int(uh.Length)],
		Src:     ih.Src,
		SPort:   uh.SrcPort,
		Arrival: arrival,
	}
	if g := h.groupOf(sock); g != nil {
		// Multicast: fan the datagram out to every member socket. The
		// copies share the bytes, so no member may recycle them — disown
		// the storage and let the collector reclaim it.
		if m != nil {
			m.Detach()
		}
		h.mcastFanout(nil, g, d)
		return
	}
	if m != nil {
		d.M = m
		m.AddRef() // the queue's reference; dropped again if the queue refuses
	}
	if !sock.RecvDgrams.Enqueue(d) {
		if m != nil {
			m.EndTransfer()
		}
		if h.Trace != nil {
			h.Trace.Add(trace.KindDrop, "%s: socket queue overflow port %d", h.Name, sock.LPort) //lrp:coldalloc vararg boxing; only reached with tracing enabled
		}
		return // socket queue overflow (counted on the queue)
	}
	if h.Trace != nil {
		h.Trace.Add(trace.KindDeliver, "%s: udp %d bytes -> port %d", h.Name, len(d.Data), sock.LPort) //lrp:coldalloc vararg boxing; only reached with tracing enabled
	}
	sock.Stats.RxDelivered++
	sock.Stats.RxBytes += uint64(len(d.Data))
	sock.RcvWait.WakeupAll()
}

// tcpInput validates a TCP segment and hands it to the connection state
// machine.
func (h *Host) tcpInput(ih *pkt.IPv4Header, seg []byte, sock *socket.Socket) {
	th, off, err := pkt.DecodeTCP(seg, ih.Src, ih.Dst)
	if err != nil {
		if sock != nil {
			sock.Stats.ProtoDrops++
		} else {
			h.stats.ProtoDrops++
		}
		return
	}
	if sock == nil {
		s, v := h.lookupSocket(ih, th.SrcPort, th.DstPort)
		if v != demux.Match {
			// No endpoint: a real stack would answer RST; the overload
			// experiments only need the drop.
			h.stats.NoMatchDrops++
			return
		}
		sock = s
	}
	c, ok := sock.Conn.(*tcp.Conn)
	if !ok || c == nil {
		h.stats.NoMatchDrops++
		return
	}
	c.Input(ih.Src, &th, seg[off:])
}

// lookupSocket performs the BSD PCB lookup (exact then wildcard).
func (h *Host) lookupSocket(ih *pkt.IPv4Header, sport, dport uint16) (*socket.Socket, demux.Verdict) {
	if s, ok := h.pcbs.LookupConnected(ih.Proto, ih.Dst, dport, ih.Src, sport); ok {
		return s, demux.Match
	}
	if s, ok := h.pcbs.LookupListen(ih.Proto, ih.Dst, dport); ok {
		return s, demux.Match
	}
	return nil, demux.NoMatch
}
