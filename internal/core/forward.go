package core

// IP forwarding (§3.5). Forwarded packets "cannot be directly attributed
// to any application process", so under LRP they are demultiplexed onto
// the NI channel of an IP forwarding daemon: "an IP forwarding daemon is
// charged for CPU time spent on forwarding IP packets, and its priority
// controls resources spent on IP forwarding. The IP daemon competes with
// other processes for CPU time." Under BSD, forwarding happens in
// software-interrupt context, charged to whoever happens to run — and
// uncontrollable.

import (
	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/socket"
)

// ForwardStats counts gateway activity.
type ForwardStats struct {
	Forwarded uint64
	TTLDrops  uint64
	FwdErrors uint64
}

// ForwardStats returns the gateway counters.
func (h *Host) ForwardStats() ForwardStats { return h.fwdStats }

// EnableForwarding turns the host into an IP gateway. Under LRP a
// forwarding daemon process is spawned with the given nice value (its
// priority is the resource-control knob the paper describes); under BSD
// and Early-Demux the nice value is ignored — forwarding runs eagerly in
// interrupt context, which is exactly the uncontrolled behaviour LRP
// fixes.
func (h *Host) EnableForwarding(nice int) {
	if h.forwarding {
		return
	}
	h.forwarding = true
	if !h.Arch.IsLRP() {
		return
	}
	s := socket.NewSocket(socket.Dgram, nil)
	s.Proto = 0 // pseudo-protocol: bound explicitly, not via the demux table
	s.Local = h.Addr
	h.sockets = append(h.sockets, s)
	h.fwdSock = s
	h.attachChannel(s)
	proc := h.spawnDaemon(h.K, h.Name+"/ipfwd", nice, h.ipfwdStep(s))
	proc.Pinned = true // kernel daemon: never migrated off CPU 0
	s.Owner = proc
}

// FwdProc returns the LRP forwarding daemon process (nil otherwise).
func (h *Host) FwdProc() *kernel.Proc {
	if h.fwdSock == nil {
		return nil
	}
	return h.fwdSock.Owner
}

// isForeign reports whether a raw packet is addressed to another host.
func (h *Host) isForeign(b []byte) bool {
	if len(b) < pkt.IPv4HeaderLen {
		return false
	}
	var dst pkt.Addr
	copy(dst[:], b[16:20])
	return dst != h.Addr && !dst.IsMulticast()
}

// forwardPacket decrements TTL, rebuilds the header, and retransmits.
// The caller accounts the CPU cost.
func (h *Host) forwardPacket(b []byte) {
	ih, hlen, err := pkt.DecodeIPv4(b)
	if err != nil {
		h.fwdStats.FwdErrors++
		return
	}
	if ih.TTL <= 1 {
		// A router would send ICMP time-exceeded; the simulation counts
		// and drops.
		h.fwdStats.TTLDrops++
		return
	}
	out := make([]byte, int(ih.TotalLen))
	copy(out, b[:int(ih.TotalLen)])
	ih.TTL--
	_ = hlen
	pkt.EncodeIPv4(out, &ih)
	if h.ipOutput(nil, nil, out) == nil {
		h.fwdStats.Forwarded++
	} else {
		h.fwdStats.FwdErrors++
	}
}
