package core

// UDP socket system calls. The receive path is where the architectures
// diverge: under BSD and Early-Demux, datagrams were already processed by
// a software interrupt and sit in the socket queue; under LRP, raw packets
// wait on the socket's NI channel and are processed lazily here, in the
// context (and at the expense) of the receiving process.

import (
	"errors"

	"lrp/internal/demux"
	"lrp/internal/ipv4"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/pkt"
	"lrp/internal/socket"
)

// Socket-layer errors.
var (
	ErrClosed       = errors.New("core: socket closed")
	ErrNotBound     = errors.New("core: socket not bound")
	ErrPortInUse    = errors.New("core: port in use")
	ErrNoBufs       = errors.New("core: out of mbufs")
	ErrConnRefused  = errors.New("core: connection refused")
	ErrConnTimedOut = errors.New("core: connection timed out")
	ErrConnReset    = errors.New("core: connection reset")
	ErrNotListening = errors.New("core: socket not listening")
)

// NewUDPSocket creates a datagram socket owned by owner.
func (h *Host) NewUDPSocket(owner *kernel.Proc) *socket.Socket {
	s := socket.NewSocket(socket.Dgram, owner)
	s.RecvDgrams = socket.NewDgramQueue(h.CM.SockQueueLimit)
	s.Local = h.Addr
	h.sockets = append(h.sockets, s)
	return s
}

// BindUDP binds s to a local port (0 allocates an ephemeral port). On LRP
// hosts this also creates the socket's NI channel ("When a socket is bound
// to a local port... an NI channel is created").
func (h *Host) BindUDP(s *socket.Socket, port uint16) error {
	if s.Bound {
		return ErrPortInUse
	}
	if port == 0 {
		port = h.allocPort()
	} else if _, used := h.pcbs.LookupListen(pkt.ProtoUDP, pkt.Addr{}, port); used {
		return ErrPortInUse
	}
	s.LPort = port
	s.Bound = true
	h.pcbs.BindListen(pkt.ProtoUDP, pkt.Addr{}, port, s)
	h.registerFilter(s, demux.CompileUDPPortFilter(port))
	h.attachChannel(s)
	return nil
}

// ConnectUDP fixes the remote address of a datagram socket, installing an
// exact demultiplexing entry.
func (h *Host) ConnectUDP(s *socket.Socket, raddr pkt.Addr, rport uint16) error {
	if !s.Bound {
		if err := h.BindUDP(s, 0); err != nil {
			return err
		}
	}
	s.Remote = raddr
	s.RPort = rport
	s.Connected = true
	h.pcbs.BindConnected(pkt.ProtoUDP, h.Addr, s.LPort, raddr, rport, s)
	return nil
}

// SendTo transmits a datagram, blocking the calling process for the
// transmit-side processing charges (see SendToStep).
func (h *Host) SendTo(p *kernel.Proc, s *socket.Socket, dst pkt.Addr, dport uint16, data []byte) error {
	var fr SendToOp
	for !h.SendToStep(p, s, dst, dport, data, &fr) {
		p.Block()
	}
	return fr.Err
}

// Send transmits on a connected datagram socket.
func (h *Host) Send(p *kernel.Proc, s *socket.Socket, data []byte) error {
	if !s.Connected {
		return ErrNotBound
	}
	return h.SendTo(p, s, s.Remote, s.RPort, data)
}

// ipOutput fragments (charging per extra fragment) and queues packets on
// the interface.
func (h *Host) ipOutput(p *kernel.Proc, s *socket.Socket, b []byte) error {
	frags := [][]byte{b} //lrp:nolint hotalloc -- single-element scratch slice that does not escape: sendFrags only ranges over it
	if len(b) > h.MTU {
		frags = ipv4.Fragment(b, h.MTU)
		if frags == nil {
			return ErrNoBufs
		}
		if p != nil && len(frags) > 1 {
			p.ComputeSys(int64(len(frags)-1) * h.CM.IPOutCost)
		}
	}
	return h.sendFrags(s, frags)
}

// sendFrags copies each fragment into pool-owned storage and queues it on
// the interface: senders build packets in scratch buffers they reuse, so
// the mbufs must not alias them.
func (h *Host) sendFrags(s *socket.Socket, frags [][]byte) error {
	for _, f := range frags {
		m := h.Pool.AllocCopy(f)
		if m == nil {
			if s != nil {
				s.Stats.ProtoDrops++
			}
			return ErrNoBufs
		}
		if s != nil {
			s.Stats.TxPackets++
			s.Stats.TxBytes += uint64(len(f))
		}
		h.NIC.Send(m)
	}
	return nil
}

// RecvFrom blocks until a datagram is available and returns it (see
// RecvFromStep for the lazy-processing receive path).
func (h *Host) RecvFrom(p *kernel.Proc, s *socket.Socket) (socket.Datagram, error) {
	var fr RecvFromOp
	for !h.RecvFromStep(p, s, &fr) {
		p.Block()
	}
	return fr.D, fr.Err
}

// RecvFromTimeout is RecvFrom with a deadline: it returns ok=false if no
// datagram arrives within timeout µs.
func (h *Host) RecvFromTimeout(p *kernel.Proc, s *socket.Socket, timeout int64) (socket.Datagram, bool, error) {
	fr := RecvFromOp{Timed: true, Timeout: timeout}
	for !h.RecvFromStep(p, s, &fr) {
		p.Block()
	}
	return fr.D, fr.OK, fr.Err
}

// TryRecvFrom is the non-blocking variant; ok reports whether a datagram
// was available.
func (h *Host) TryRecvFrom(p *kernel.Proc, s *socket.Socket) (socket.Datagram, bool) {
	p.ComputeSys(h.CM.SyscallFixed)
	if d, ok := s.RecvDgrams.Dequeue(); ok {
		p.ComputeSys(h.CM.SockQueueCost + h.CM.CopyCost(len(d.Data)))
		return d, true
	}
	if s.NIChan != nil {
		if m := s.NIChan.Queue.Dequeue(); m != nil {
			if d, ok := h.udpLazyInput(p, p, s, m); ok {
				p.ComputeSys(h.CM.CopyCost(len(d.Data)))
				return d, true
			}
		}
	}
	return socket.Datagram{}, false
}

// udpLazyInput performs IP+UDP receive processing for one raw packet in
// process context. CPU is consumed by p but charged to owner (identical to
// p for a process in a receive call; the socket owner when the idle thread
// processes on its behalf). It consults the fragment channel when
// reassembly is missing pieces.
func (h *Host) udpLazyInput(p, owner *kernel.Proc, s *socket.Socket, m *mbuf.Mbuf) (socket.Datagram, bool) {
	var fr lazyInputOp
	for !h.udpLazyInputStep(p, owner, s, m, &fr) {
		p.Block()
	}
	return fr.d, fr.ok
}

// drainFragChannelFor feeds packets from the special fragment channel to
// the reassembler. Returns a completed datagram if one emerges. p may be
// nil (engine-context callers that pre-charged) — with a nil p the machine
// never yields, so Block is never reached.
func (h *Host) drainFragChannelFor(p, owner *kernel.Proc, trigger []byte) ([]byte, bool) {
	var fr fragDrainOp
	for !h.fragDrainStep(p, owner, trigger, &fr) {
		p.Block()
	}
	return fr.whole, fr.ok
}

// CloseUDP closes a datagram socket, releasing its port, channel and any
// queued data.
func (h *Host) CloseUDP(p *kernel.Proc, s *socket.Socket) {
	if s.Closed {
		return
	}
	if p != nil {
		p.ComputeSys(h.CM.SyscallFixed)
	}
	s.Closed = true
	if s.Bound {
		h.pcbs.UnbindListen(pkt.ProtoUDP, pkt.Addr{}, s.LPort)
		h.unregisterFilter(s)
	}
	if s.Connected {
		h.pcbs.UnbindConnected(pkt.ProtoUDP, h.Addr, s.LPort, s.Remote, s.RPort)
	}
	h.detachChannel(s)
	s.RcvWait.WakeupAll()
}
