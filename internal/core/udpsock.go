package core

// UDP socket system calls. The receive path is where the architectures
// diverge: under BSD and Early-Demux, datagrams were already processed by
// a software interrupt and sit in the socket queue; under LRP, raw packets
// wait on the socket's NI channel and are processed lazily here, in the
// context (and at the expense) of the receiving process.

import (
	"errors"

	"lrp/internal/demux"
	"lrp/internal/ipv4"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/pkt"
	"lrp/internal/socket"
)

// Socket-layer errors.
var (
	ErrClosed       = errors.New("core: socket closed")
	ErrNotBound     = errors.New("core: socket not bound")
	ErrPortInUse    = errors.New("core: port in use")
	ErrNoBufs       = errors.New("core: out of mbufs")
	ErrConnRefused  = errors.New("core: connection refused")
	ErrConnTimedOut = errors.New("core: connection timed out")
	ErrConnReset    = errors.New("core: connection reset")
	ErrNotListening = errors.New("core: socket not listening")
)

// NewUDPSocket creates a datagram socket owned by owner.
func (h *Host) NewUDPSocket(owner *kernel.Proc) *socket.Socket {
	s := socket.NewSocket(socket.Dgram, owner)
	s.RecvDgrams = socket.NewDgramQueue(h.CM.SockQueueLimit)
	s.Local = h.Addr
	h.sockets = append(h.sockets, s)
	return s
}

// BindUDP binds s to a local port (0 allocates an ephemeral port). On LRP
// hosts this also creates the socket's NI channel ("When a socket is bound
// to a local port... an NI channel is created").
func (h *Host) BindUDP(s *socket.Socket, port uint16) error {
	if s.Bound {
		return ErrPortInUse
	}
	if port == 0 {
		port = h.allocPort()
	} else if _, used := h.pcbs.LookupListen(pkt.ProtoUDP, pkt.Addr{}, port); used {
		return ErrPortInUse
	}
	s.LPort = port
	s.Bound = true
	h.pcbs.BindListen(pkt.ProtoUDP, pkt.Addr{}, port, s)
	h.registerFilter(s, demux.CompileUDPPortFilter(port))
	h.attachChannel(s)
	return nil
}

// ConnectUDP fixes the remote address of a datagram socket, installing an
// exact demultiplexing entry.
func (h *Host) ConnectUDP(s *socket.Socket, raddr pkt.Addr, rport uint16) error {
	if !s.Bound {
		if err := h.BindUDP(s, 0); err != nil {
			return err
		}
	}
	s.Remote = raddr
	s.RPort = rport
	s.Connected = true
	h.pcbs.BindConnected(pkt.ProtoUDP, h.Addr, s.LPort, raddr, rport, s)
	return nil
}

// SendTo transmits a datagram. All architectures perform transmit-side
// processing in the sender's context, as BSD does.
func (h *Host) SendTo(p *kernel.Proc, s *socket.Socket, dst pkt.Addr, dport uint16, data []byte) error {
	if s.Closed {
		return ErrClosed
	}
	if !s.Bound {
		if err := h.BindUDP(s, 0); err != nil {
			return err
		}
	}
	cost := h.CM.SyscallFixed + h.CM.CopyCost(len(data)) + h.CM.UDPOutCost + h.CM.IPOutCost
	if !s.NoUDPChecksum {
		cost += h.CM.ChecksumCost(len(data))
	}
	p.ComputeSys(cost)
	// Build into the host's scratch buffer; ipOutput copies each fragment
	// into pool-owned storage, so the scratch is free for the next send.
	h.txScratch = pkt.AppendUDP(h.txScratch[:0], h.Addr, dst, s.LPort, dport, h.nextIPID(), 64, data, !s.NoUDPChecksum)
	return h.ipOutput(p, s, h.txScratch)
}

// Send transmits on a connected datagram socket.
func (h *Host) Send(p *kernel.Proc, s *socket.Socket, data []byte) error {
	if !s.Connected {
		return ErrNotBound
	}
	return h.SendTo(p, s, s.Remote, s.RPort, data)
}

// ipOutput fragments (charging per extra fragment) and queues packets on
// the interface.
func (h *Host) ipOutput(p *kernel.Proc, s *socket.Socket, b []byte) error {
	frags := [][]byte{b}
	if len(b) > h.MTU {
		frags = ipv4.Fragment(b, h.MTU)
		if frags == nil {
			return ErrNoBufs
		}
		if p != nil && len(frags) > 1 {
			p.ComputeSys(int64(len(frags)-1) * h.CM.IPOutCost)
		}
	}
	for _, f := range frags {
		// Copy into pool-owned storage: senders build b in scratch buffers
		// they reuse for the next packet, so the mbuf must not alias it.
		m := h.Pool.AllocCopy(f)
		if m == nil {
			if s != nil {
				s.Stats.ProtoDrops++
			}
			return ErrNoBufs
		}
		if s != nil {
			s.Stats.TxPackets++
			s.Stats.TxBytes += uint64(len(f))
		}
		h.NIC.Send(m)
	}
	return nil
}

// RecvFrom blocks until a datagram is available and returns it. Under LRP,
// protocol processing for queued raw packets happens here — "in the
// context of the user process performing the system call".
func (h *Host) RecvFrom(p *kernel.Proc, s *socket.Socket) (socket.Datagram, error) {
	p.ComputeSys(h.CM.SyscallFixed)
	if g := h.mcastMember[s]; g != nil {
		return h.mcastRecvFrom(p, s, g)
	}
	for {
		if s.Closed {
			return socket.Datagram{}, ErrClosed
		}
		// Already-processed datagrams first (softint under BSD/Early-Demux;
		// the idle thread under LRP).
		if d, ok := s.RecvDgrams.Dequeue(); ok {
			p.ComputeSys(h.CM.SockQueueCost + h.CM.CopyCost(len(d.Data)))
			return d, nil
		}
		// LRP lazy path: raw packets on the NI channel.
		if s.NIChan != nil {
			if m := s.NIChan.Queue.Dequeue(); m != nil {
				d, ok := h.udpLazyInput(p, p, s, m)
				if !ok {
					continue // bad packet; keep trying
				}
				p.ComputeSys(h.CM.CopyCost(len(d.Data)))
				return d, nil
			}
			s.NIChan.IntrRequested = true
		}
		p.Sleep(&s.RcvWait)
	}
}

// RecvFromTimeout is RecvFrom with a deadline: it returns ok=false if no
// datagram arrives within timeout µs.
func (h *Host) RecvFromTimeout(p *kernel.Proc, s *socket.Socket, timeout int64) (socket.Datagram, bool, error) {
	deadline := h.Eng.Now() + timeout
	p.ComputeSys(h.CM.SyscallFixed)
	for {
		if s.Closed {
			return socket.Datagram{}, false, ErrClosed
		}
		if d, ok := s.RecvDgrams.Dequeue(); ok {
			p.ComputeSys(h.CM.SockQueueCost + h.CM.CopyCost(len(d.Data)))
			return d, true, nil
		}
		if s.NIChan != nil {
			if m := s.NIChan.Queue.Dequeue(); m != nil {
				d, ok := h.udpLazyInput(p, p, s, m)
				if !ok {
					continue
				}
				p.ComputeSys(h.CM.CopyCost(len(d.Data)))
				return d, true, nil
			}
			s.NIChan.IntrRequested = true
		}
		remain := deadline - h.Eng.Now()
		if remain <= 0 {
			return socket.Datagram{}, false, nil
		}
		if p.SleepTimeout(&s.RcvWait, remain) {
			return socket.Datagram{}, false, nil
		}
	}
}

// TryRecvFrom is the non-blocking variant; ok reports whether a datagram
// was available.
func (h *Host) TryRecvFrom(p *kernel.Proc, s *socket.Socket) (socket.Datagram, bool) {
	p.ComputeSys(h.CM.SyscallFixed)
	if d, ok := s.RecvDgrams.Dequeue(); ok {
		p.ComputeSys(h.CM.SockQueueCost + h.CM.CopyCost(len(d.Data)))
		return d, true
	}
	if s.NIChan != nil {
		if m := s.NIChan.Queue.Dequeue(); m != nil {
			if d, ok := h.udpLazyInput(p, p, s, m); ok {
				p.ComputeSys(h.CM.CopyCost(len(d.Data)))
				return d, true
			}
		}
	}
	return socket.Datagram{}, false
}

// udpLazyInput performs IP+UDP receive processing for one raw packet in
// process context. CPU is consumed by p but charged to owner (identical to
// p for a process in a receive call; the socket owner when the idle thread
// processes on its behalf). It consults the fragment channel when
// reassembly is missing pieces.
func (h *Host) udpLazyInput(p, owner *kernel.Proc, s *socket.Socket, m *mbuf.Mbuf) (socket.Datagram, bool) {
	p.ComputeSysFor(owner, h.channelDequeueCost()+h.lrpProtoInCost(m.Data))
	b := m.Data
	arrival := m.Arrival
	// Release the pool slot before protocol processing (matching the old
	// free-then-read accounting) but keep the storage until the raw bytes
	// are no longer needed — or detach it if they escape into the datagram.
	m.BeginTransfer()
	whole, done := h.reasm.Input(b, h.Eng.Now())
	if !done {
		whole, done = h.drainFragChannelFor(p, owner, b)
		if !done {
			m.EndTransfer()
			return socket.Datagram{}, false
		}
	}
	ih, hlen, err := pkt.DecodeIPv4(whole)
	if err != nil || ih.Proto != pkt.ProtoUDP {
		s.Stats.ProtoDrops++
		m.EndTransfer()
		return socket.Datagram{}, false
	}
	seg := whole[hlen:int(ih.TotalLen)]
	uh, err := pkt.DecodeUDP(seg, ih.Src, ih.Dst)
	if err != nil {
		s.Stats.ProtoDrops++
		m.EndTransfer()
		return socket.Datagram{}, false
	}
	s.Stats.RxDelivered++
	s.Stats.RxBytes += uint64(int(uh.Length) - pkt.UDPHeaderLen)
	if aliases(whole, b) {
		m.Detach()
	}
	m.EndTransfer()
	return socket.Datagram{
		Data:    seg[pkt.UDPHeaderLen:int(uh.Length)],
		Src:     ih.Src,
		SPort:   uh.SrcPort,
		Arrival: arrival,
	}, true
}

// drainFragChannelFor feeds packets from the special fragment channel to
// the reassembler ("The IP reassembly function checks this channel queue
// when it misses fragments during reassembly"). Returns a completed
// datagram if one emerges. p may be nil (engine-context callers that
// pre-charged).
func (h *Host) drainFragChannelFor(p, owner *kernel.Proc, trigger []byte) ([]byte, bool) {
	if h.fragChan == nil {
		return nil, false
	}
	ih, _, err := pkt.DecodeIPv4(trigger)
	if err != nil || !h.reasm.MissingFor(ih.Src, ih.Dst, ih.ID, ih.Proto) {
		return nil, false
	}
	for {
		fm := h.fragChan.Queue.Dequeue()
		if fm == nil {
			return nil, false
		}
		if p != nil {
			p.ComputeSysFor(owner, h.CM.IPInCost)
		}
		// Fragments are copied by the reassembler; the assembled datagram
		// never aliases this mbuf, so its storage recycles immediately.
		fb := fm.Data
		fm.BeginTransfer()
		whole, done := h.reasm.Input(fb, h.Eng.Now())
		fm.EndTransfer()
		if done {
			return whole, true
		}
	}
}

// CloseUDP closes a datagram socket, releasing its port, channel and any
// queued data.
func (h *Host) CloseUDP(p *kernel.Proc, s *socket.Socket) {
	if s.Closed {
		return
	}
	if p != nil {
		p.ComputeSys(h.CM.SyscallFixed)
	}
	s.Closed = true
	if s.Bound {
		h.pcbs.UnbindListen(pkt.ProtoUDP, pkt.Addr{}, s.LPort)
		h.unregisterFilter(s)
	}
	if s.Connected {
		h.pcbs.UnbindConnected(pkt.ProtoUDP, h.Addr, s.LPort, s.Remote, s.RPort)
	}
	h.detachChannel(s)
	s.RcvWait.WakeupAll()
}
