// Package core composes the substrates into complete network-subsystem
// architectures and implements the paper's contribution: lazy receiver
// processing. It provides a Host abstraction — one simulated machine with
// a kernel, a NIC, protocol state and a socket system-call API — in four
// architecture variants that share all protocol code and differ only in
// where, when and at whose expense receiver processing happens:
//
//	ArchBSD        eager interrupt-driven processing, shared IP queue
//	ArchNILRP      LRP with demultiplexing on the NIC's embedded CPU
//	ArchSoftLRP    LRP with demultiplexing in the host interrupt handler
//	ArchEarlyDemux early demux + early discard, but eager processing and
//	               BSD accounting (the paper's ablation)
package core

// CostModel holds the CPU cost, in microseconds, of each processing step.
// The defaults are calibrated against the instrumentation the paper
// reports for a 60 MHz SPARCstation 20 (e.g. "hardware plus software
// interrupt, including protocol processing, approximately 60 µs"
// for BSD; "hardware interrupt, including demux, approx. 25 µs" for
// SOFT-LRP) and against the absolute throughput/latency anchors in
// Table 1 and Figure 3. EXPERIMENTS.md documents the calibration.
type CostModel struct {
	// HWIntrFixed is the per-interrupt dispatch overhead (trap entry/exit,
	// register save). Amortized over batches when packets queue up.
	HWIntrFixed int64
	// DriverPerPkt is the per-packet device-driver cost in the interrupt
	// handler: ring handling and mbuf allocation.
	DriverPerPkt int64
	// DemuxCost is one execution of the demultiplexing function (soft
	// demux in the host interrupt handler, or Early-Demux's classifier).
	DemuxCost int64
	// NICDemuxCost is the same function on the NIC's embedded CPU
	// (NI-LRP); it spends adaptor cycles, not host cycles.
	NICDemuxCost int64
	// SWDispatchFixed is the cost of raising and dispatching a software
	// interrupt (paid once per batch of packets processed at splnet).
	SWDispatchFixed int64
	// IPInCost is IP input processing for one packet (validation, routing,
	// reassembly bookkeeping).
	IPInCost int64
	// UDPInCost is UDP input processing (checksum, header).
	UDPInCost int64
	// TCPInCost is TCP segment input processing.
	TCPInCost int64
	// TCPTimerCost is processing one TCP timer expiry.
	TCPTimerCost int64
	// PCBLookupCost is the BSD protocol-control-block lookup during
	// protocol input. LRP kernels bypass it (the demux already identified
	// the socket); Fig. 5's LRP runs re-add it as a redundant lookup to
	// remove that advantage from the comparison.
	PCBLookupCost int64
	// UDPOutCost and TCPOutCost are transmit-side protocol processing
	// (header construction, checksum) per packet, excluding the copy.
	UDPOutCost int64
	TCPOutCost int64
	// IPOutCost is transmit-side IP processing per packet.
	IPOutCost int64
	// SyscallFixed is system-call entry/exit overhead.
	SyscallFixed int64
	// CopyFixed + CopyPerKB model data copies between kernel and user
	// space (and mbuf chains).
	CopyFixed int64
	CopyPerKB int64
	// ChecksumPerKB is the in-software Internet checksum cost, applied to
	// TCP segments always and to UDP datagrams unless the socket disables
	// checksumming (the paper's UDP throughput test disabled it).
	ChecksumPerKB int64
	// ChannelDequeueCost is the host cost of taking one packet off an NI
	// channel. NIChannelPenalty is added under NI-LRP, where the channel
	// lives in adaptor memory across the (slow, uncached) SBus rather
	// than in host RAM.
	ChannelDequeueCost int64
	NIChannelPenalty   int64
	// SockQueueCost is appending/removing a message on a socket queue,
	// including wakeup bookkeeping.
	SockQueueCost int64
	// CtxSwitchCost is a full process context switch.
	CtxSwitchCost int64
	// IPILatency, IPICost and MigrateCost parameterize multi-CPU hosts
	// (Config.CPUs > 1): the flight time of an inter-processor
	// interrupt, the receiving CPU's per-delivery interrupt work, and
	// the cache-refill cost a process migrated between CPUs pays on its
	// next burst. Zero values take the internal/smp defaults.
	IPILatency  int64
	IPICost     int64
	MigrateCost int64
	// RxDisturbPenalty models the cache disturbance a process suffers when
	// it resumes after interrupt-level work ran (see kernel.Proc.IntrPenalty).
	// Applied to receiver processes in the experiments; under LRP, fewer
	// interrupts mean the penalty is rarely paid.
	RxDisturbPenalty int64
	// EagerProtoPenalty is extra per-packet cost of protocol processing in
	// software-interrupt context relative to lazy processing: the softint
	// runs against a cold cache (the packet was just DMA'd and an unrelated
	// process's state occupies the cache), whereas lazy processing runs
	// immediately before the data copy, cache-warm. The paper attributes a
	// large part of LRP's throughput gain to exactly this locality
	// difference plus software-interrupt dispatch.
	EagerProtoPenalty int64

	// Queue limits.
	IPQueueLimit   int // shared IP queue (BSD): ipintrq default 50
	SockQueueLimit int // per-socket receive queue, in datagrams
	ChannelLimit   int // NI channel receive queue, in packets

	// RedundantPCBLookup makes LRP kernels perform (and pay for) the BSD
	// PCB lookup anyway, as in the paper's Fig. 5 methodology.
	RedundantPCBLookup bool

	// PollInterval/PollBatch/PollEnterThresh parameterize ArchPolling:
	// under overload (ring occupancy >= threshold at interrupt time),
	// interrupts are disabled and every PollInterval µs a poll admits at
	// most PollBatch packets; interrupts re-enable when a poll finds the
	// ring empty.
	PollInterval    int64
	PollBatch       int
	PollEnterThresh int

	// FilterStepCostNs prices one interpreted packet-filter instruction
	// (nanoseconds) when a host runs filter-based demultiplexing — the
	// related-work configuration whose "overhead is likely to be high,
	// and livelock protection poor".
	FilterStepCostNs int64

	// TimeWaitDur is TCP's 2MSL period. The paper's HTTP tests set 500 ms.
	TimeWaitDur int64

	// NICInputLimit bounds the smart NIC's input backlog (NI-LRP).
	NICInputLimit int

	// MbufPoolLimit bounds the host mbuf pool (0 = unlimited).
	MbufPoolLimit int
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() *CostModel {
	return &CostModel{
		HWIntrFixed:        8,
		DriverPerPkt:       12,
		DemuxCost:          5,
		NICDemuxCost:       10,
		SWDispatchFixed:    8,
		IPInCost:           10,
		UDPInCost:          12,
		TCPInCost:          30,
		TCPTimerCost:       15,
		PCBLookupCost:      5,
		UDPOutCost:         18,
		TCPOutCost:         30,
		IPOutCost:          25,
		SyscallFixed:       32,
		CopyFixed:          8,
		CopyPerKB:          80,
		ChecksumPerKB:      15,
		ChannelDequeueCost: 5,
		NIChannelPenalty:   15,
		SockQueueCost:      4,
		CtxSwitchCost:      12,
		IPILatency:         2,
		IPICost:            8,
		MigrateCost:        30,
		RxDisturbPenalty:   10,
		EagerProtoPenalty:  10,
		FilterStepCostNs:   300,
		PollInterval:       500,
		PollBatch:          4,
		PollEnterThresh:    12,

		IPQueueLimit:   50,
		SockQueueLimit: 64,
		ChannelLimit:   64,

		TimeWaitDur: 30 * 1000 * 1000,

		NICInputLimit: 256,
		MbufPoolLimit: 4096,
	}
}

// CopyCost returns the cost of copying n bytes.
func (cm *CostModel) CopyCost(n int) int64 {
	return cm.CopyFixed + cm.CopyPerKB*int64(n)/1024
}

// ChecksumCost returns the cost of checksumming n bytes.
func (cm *CostModel) ChecksumCost(n int) int64 {
	return cm.ChecksumPerKB * int64(n) / 1024
}

// Arch selects a network subsystem architecture.
type Arch int

// The four architectures of the paper's evaluation, plus the vendor
// baseline used in Table 1.
const (
	// ArchBSD is the conventional 4.4BSD interrupt-driven subsystem.
	ArchBSD Arch = iota
	// ArchNILRP is LRP with demultiplexing on the network interface.
	ArchNILRP
	// ArchSoftLRP is LRP with demultiplexing in the host interrupt handler.
	ArchSoftLRP
	// ArchEarlyDemux combines early demultiplexing and early discard with
	// eager (software-interrupt) protocol processing and BSD accounting.
	ArchEarlyDemux
	// ArchPolling is the Mogul & Ramakrishnan mitigation the paper's
	// related work discusses: conventional BSD processing, but under
	// overload receive interrupts are disabled and the ring is polled
	// with a bounded per-interval quota, so excess traffic dies in the
	// ring for free. Stable like NI-LRP, but with no traffic separation
	// and no receiver accounting.
	ArchPolling
)

func (a Arch) String() string {
	switch a {
	case ArchBSD:
		return "4.4BSD"
	case ArchNILRP:
		return "NI-LRP"
	case ArchSoftLRP:
		return "SOFT-LRP"
	case ArchEarlyDemux:
		return "Early-Demux"
	case ArchPolling:
		return "Polling (M&R)"
	}
	return "?"
}

// IsLRP reports whether the architecture performs lazy receiver processing.
func (a Arch) IsLRP() bool { return a == ArchNILRP || a == ArchSoftLRP }

// SunOSForeCosts returns the cost model for the "SunOS with Fore driver"
// baseline of Table 1: the same machine with the vendor's much slower
// driver path (the paper measured ~150 µs higher round-trip latency and
// substantially lower UDP throughput and attributes it to "performance
// problems with the Fore driver").
func SunOSForeCosts() *CostModel {
	cm := DefaultCosts()
	cm.DriverPerPkt += 60 // inefficient per-packet driver work
	cm.CopyPerKB += 45    // extra data copy through driver buffers
	return cm
}
