package core

// Step machines for the TCP system calls (see steps.go for the calling
// convention). Transmit-side processing happens in the caller's context;
// receive-side processing happens in softint context (BSD/Early-Demux) or
// in the APP thread (LRP), so these machines mainly block on protocol
// events.

import (
	"lrp/internal/demux"
	"lrp/internal/kernel"
	"lrp/internal/pkt"
	"lrp/internal/socket"
	"lrp/internal/tcp"
)

// ListenOp is the frame of one Listen call (ListenStep).
type ListenOp struct {
	pc  int
	Err error
}

// ListenStep puts s into the listening state with the given backlog,
// binding the wildcard demux entry and (LRP) the listen channel. p may be
// nil (setup code outside process context); a nil p never yields.
func (h *Host) ListenStep(p *kernel.Proc, s *socket.Socket, backlog int, fr *ListenOp) bool {
	for {
		switch fr.pc {
		case 0:
			if !s.Bound {
				if err := h.BindTCP(s, 0); err != nil {
					fr.Err = err
					return true
				}
			}
			fr.pc = 1
			if p != nil && p.ReqComputeSys(h.CM.SyscallFixed) {
				return false
			}
		case 1:
			c := tcp.NewConn(&h.hooks, h.Addr, s.LPort, pkt.Addr{}, 0, h.nextISS())
			c.UserData = s
			c.ListenOn(backlog)
			s.Conn = c
			s.Listening = true
			s.Backlog = backlog
			h.pcbs.BindListen(pkt.ProtoTCP, pkt.Addr{}, s.LPort, s)
			h.registerFilter(s, demux.CompileTCPPortFilter(s.LPort))
			h.attachChannel(s)
			return true
		}
	}
}

// AcceptOp is the frame of one Accept call (AcceptStep).
type AcceptOp struct {
	pc int

	// Results, valid once Step returns true.
	NS  *socket.Socket
	Err error
}

// AcceptStep completes when an established connection is available on
// listener l, delivering its socket in NS.
func (h *Host) AcceptStep(p *kernel.Proc, l *socket.Socket, fr *AcceptOp) bool {
	for {
		switch fr.pc {
		case 0:
			if !l.Listening {
				fr.Err = ErrNotListening
				return true
			}
			fr.pc = 1
			if p.ReqComputeSys(h.CM.SyscallFixed) {
				return false
			}
		case 1:
			if l.Closed {
				fr.Err = ErrClosed
				return true
			}
			lc := l.Conn.(*tcp.Conn)
			if nc, ok := lc.Accept(); ok {
				h.syncListenChannel(l)
				ns := connSocket(nc)
				ns.Connected = true
				fr.NS = ns
				return true
			}
			p.ReqSleep(&l.AcceptWait)
			return false
		}
	}
}

// ConnectTCPOp is the frame of one active open (ConnectTCPStep).
type ConnectTCPOp struct {
	pc  int
	c   *tcp.Conn
	Err error
}

// ConnectTCP machine states.
const (
	connBind = iota // bind, charge syscall + SYN transmit
	connOpen        // create the connection and send the SYN
	connWait        // wait for establishment or failure
)

// ConnectTCPStep performs an active open, completing when the connection
// is established or has failed.
func (h *Host) ConnectTCPStep(p *kernel.Proc, s *socket.Socket, raddr pkt.Addr, rport uint16, fr *ConnectTCPOp) bool {
	for {
		switch fr.pc {
		case connBind:
			if !s.Bound {
				if err := h.BindTCP(s, 0); err != nil {
					fr.Err = err
					return true
				}
			}
			fr.pc = connOpen
			if p.ReqComputeSys(h.CM.SyscallFixed + h.CM.TCPOutCost + h.CM.IPOutCost) {
				return false
			}
		case connOpen:
			s.Remote = raddr
			s.RPort = rport
			c := tcp.NewConn(&h.hooks, h.Addr, s.LPort, raddr, rport, h.nextISS())
			c.UserData = s
			s.Conn = c
			h.pcbs.BindConnected(pkt.ProtoTCP, h.Addr, s.LPort, raddr, rport, s)
			h.attachChannel(s)
			c.Connect()
			fr.c = c
			fr.pc = connWait
		case connWait:
			switch fr.c.State {
			case tcp.Established:
				s.Connected = true
				return true
			case tcp.Closed:
				fr.Err = ErrConnRefused
				return true
			}
			p.ReqSleep(&s.SndWait)
			return false
		}
	}
}

// SendStreamOp is the frame of one stream write (SendStreamStep). Data
// must be set before the first Step call; the machine consumes it as the
// send buffer accepts bytes.
type SendStreamOp struct {
	// Data is the remaining unwritten portion of the caller's buffer.
	Data []byte

	pc int
	c  *tcp.Conn

	// Results, valid once Step returns true.
	Total int
	Err   error
}

// SendStreamStep writes Data on a connected stream socket, completing
// when all of it has been accepted by the send buffer.
func (h *Host) SendStreamStep(p *kernel.Proc, s *socket.Socket, fr *SendStreamOp) bool {
	for {
		switch fr.pc {
		case 0:
			c, ok := s.Conn.(*tcp.Conn)
			if !ok {
				fr.Err = ErrNotBound
				return true
			}
			fr.c = c
			fr.pc = 1
			if p.ReqComputeSys(h.CM.SyscallFixed) {
				return false
			}
		case 1:
			if len(fr.Data) == 0 {
				return true
			}
			if s.Closed {
				fr.Err = ErrClosed
				return true
			}
			switch fr.c.State {
			case tcp.Closed:
				fr.Err = ErrConnReset
				return true
			case tcp.Established, tcp.CloseWait:
			default:
				fr.Err = ErrClosed
				return true
			}
			n := fr.c.Write(fr.Data)
			if n > 0 {
				segs := int64(n/fr.c.MSS) + 1
				fr.Total += n
				fr.Data = fr.Data[n:]
				if p.ReqComputeSys(h.CM.CopyCost(n) + h.CM.ChecksumCost(n) + segs*(h.CM.TCPOutCost+h.CM.IPOutCost)) {
					return false
				}
				continue
			}
			p.ReqSleep(&s.SndWait)
			return false
		}
	}
}

// RecvStreamOp is the frame of one stream read (RecvStreamStep).
type RecvStreamOp struct {
	pc int
	c  *tcp.Conn

	// Results, valid once Step returns true. Data is nil with a nil Err at
	// end of stream.
	Data []byte
	Err  error
}

// RecvStreamStep reads up to max bytes, completing on data, EOF, or
// error.
func (h *Host) RecvStreamStep(p *kernel.Proc, s *socket.Socket, max int, fr *RecvStreamOp) bool {
	for {
		switch fr.pc {
		case 0:
			c, ok := s.Conn.(*tcp.Conn)
			if !ok {
				fr.Err = ErrNotBound
				return true
			}
			fr.c = c
			fr.pc = 1
			if p.ReqComputeSys(h.CM.SyscallFixed) {
				return false
			}
		case 1:
			if s.Closed {
				fr.Err = ErrClosed
				return true
			}
			n, fin := fr.c.Readable()
			if n > 0 {
				fr.Data = fr.c.Read(max)
				fr.pc = 2
				if p.ReqComputeSys(h.CM.CopyCost(len(fr.Data))) {
					return false
				}
				continue
			}
			if fin {
				return true // EOF: Data nil, Err nil
			}
			if fr.c.State == tcp.Closed {
				fr.Err = ErrConnReset
				return true
			}
			p.ReqSleep(&s.RcvWait)
			return false
		case 2:
			return true
		}
	}
}

// CloseTCPOp is the frame of one stream close (CloseTCPStep).
type CloseTCPOp struct {
	pc int
}

// CloseTCPStep closes a stream socket: orderly close for connections,
// released state for listeners. p may be nil; a nil p never yields.
func (h *Host) CloseTCPStep(p *kernel.Proc, s *socket.Socket, fr *CloseTCPOp) bool {
	for {
		switch fr.pc {
		case 0:
			if s.Closed {
				return true
			}
			fr.pc = 1
			if p != nil && p.ReqComputeSys(h.CM.SyscallFixed) {
				return false
			}
		case 1:
			if c, ok := s.Conn.(*tcp.Conn); ok {
				if s.Listening {
					s.Closed = true
					c.Close() // triggers Dealloc, which unbinds
				} else {
					c.Close()
					// The socket stays usable for draining received data until
					// the protocol finishes; mark it closed for new operations
					// only when fully dead.
				}
			} else {
				s.Closed = true
			}
			s.AcceptWait.WakeupAll()
			return true
		}
	}
}
