package core_test

import (
	"fmt"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// Example builds the smallest possible two-host LRP network and runs one
// UDP round trip through it.
func Example() {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	serverAddr := pkt.IP(10, 0, 0, 2)
	clientAddr := pkt.IP(10, 0, 0, 1)
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: serverAddr, Arch: core.ArchSoftLRP})
	client := core.NewHost(eng, nw, core.Config{Name: "client", Addr: clientAddr, Arch: core.ArchSoftLRP})
	defer server.Shutdown()
	defer client.Shutdown()

	server.K.Spawn("echo", 0, func(p *kernel.Proc) {
		sock := server.NewUDPSocket(p)
		_ = server.BindUDP(sock, 7)
		for {
			d, err := server.RecvFrom(p, sock)
			if err != nil {
				return
			}
			_ = server.SendTo(p, sock, d.Src, d.SPort, d.Data)
		}
	})
	client.K.Spawn("client", 0, func(p *kernel.Proc) {
		sock := client.NewUDPSocket(p)
		_ = client.BindUDP(sock, 0)
		_ = client.SendTo(p, sock, serverAddr, 7, []byte("hello"))
		d, err := client.RecvFrom(p, sock)
		if err == nil {
			fmt.Printf("echoed %q\n", d.Data)
		}
	})
	eng.RunFor(sim.Second)
	// Output:
	// echoed "hello"
}
