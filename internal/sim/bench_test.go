package sim

import "testing"

// BenchmarkEngineAtFire measures the steady-state cost of scheduling one
// event and firing it: the engine hot path every simulated packet, timer
// and CPU burst goes through.
func BenchmarkEngineAtFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now(), fn)
		e.Step()
	}
}

// BenchmarkEngineDeepQueue measures scheduling and firing against a queue
// that already holds many pending events (heap reheapification cost).
func BenchmarkEngineDeepQueue(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for j := 0; j < 1024; j++ {
		e.At(Time(1_000_000+j), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now(), fn)
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule+cancel cycle used by every
// retransmit timer that is armed and then disarmed by an ACK.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(e.Now()+100, fn)
		e.Cancel(ev)
	}
}

// BenchmarkPostBatch measures batched posting: 8 events handed to the
// engine in one call (the NIC ring-drain pattern) and then fired. ns/op
// covers the whole batch, so divide by 8 to compare against the
// single-event rows.
func BenchmarkPostBatch(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	var batch [8]Post
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := e.Now()
		for j := range batch {
			batch[j] = Post{At: now + Time(j), Fn: fn}
		}
		e.PostBatch(batch[:])
		for range batch {
			e.Step()
		}
	}
}

// BenchmarkWheelCascade measures the worst-case timer-wheel path: every
// event lands at tier-2 distance, so firing it first migrates it down
// through tier 1 and into tier 0 as the cursor advances.
func BenchmarkWheelCascade(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+(1<<(2*tierBits))+3, fn)
		e.Step()
	}
}

// BenchmarkLanePostFire measures the per-source FIFO fast path: post to a
// hot-array-resident lane, fire, repeat. This is the path every NIC
// packet and kernel burst completion rides.
func BenchmarkLanePostFire(b *testing.B) {
	e := NewEngine()
	l := e.NewLane()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Post(e.Now(), fn)
		e.Step()
	}
}
