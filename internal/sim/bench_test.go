package sim

import "testing"

// BenchmarkEngineAtFire measures the steady-state cost of scheduling one
// event and firing it: the engine hot path every simulated packet, timer
// and CPU burst goes through.
func BenchmarkEngineAtFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now(), fn)
		e.Step()
	}
}

// BenchmarkEngineDeepQueue measures scheduling and firing against a queue
// that already holds many pending events (heap reheapification cost).
func BenchmarkEngineDeepQueue(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for j := 0; j < 1024; j++ {
		e.At(Time(1_000_000+j), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now(), fn)
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule+cancel cycle used by every
// retransmit timer that is armed and then disarmed by an ACK.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(e.Now()+100, fn)
		e.Cancel(ev)
	}
}
