package sim_test

import (
	"fmt"

	"lrp/internal/sim"
)

// Example shows the basic event-scheduling workflow.
func Example() {
	eng := sim.NewEngine()
	eng.At(100, func() { fmt.Println("first, at", eng.Now()) })
	eng.After(250, func() { fmt.Println("second, at", eng.Now()) })
	eng.RunFor(sim.Millisecond)
	fmt.Println("clock:", eng.Now())
	// Output:
	// first, at 100
	// second, at 250
	// clock: 1000
}

// ExampleEngine_Cancel shows that cancelled events never fire.
func ExampleEngine_Cancel() {
	eng := sim.NewEngine()
	ev := eng.At(10, func() { fmt.Println("never") })
	eng.Cancel(ev)
	eng.Run()
	fmt.Println("done at", eng.Now())
	// Output:
	// done at 0
}

// ExampleRand shows deterministic traffic-pacing randomness.
func ExampleRand() {
	a, b := sim.NewRand(42), sim.NewRand(42)
	fmt.Println(a.Int63n(1000) == b.Int63n(1000))
	// Output:
	// true
}
