package sim

// Hierarchical timer wheel: the engine's structure for future-dated events.
//
// The wheel has numTiers tiers of tierSlots buckets each. Tier t buckets
// are 2^(tierBits*t) microseconds wide, so tier 0 resolves single
// microseconds and the whole wheel spans 2^wheelBits µs (~71 minutes of
// simulated time) ahead of the cursor. Placement is cursor-relative: an
// event lands in the tier of the highest bit in which its deadline differs
// from the cursor wpos, at slot (when >> tierBits*t) & slotMask. Because
// every tier-t resident shares the cursor's tier-(t+1) slot prefix, slot
// indices never wrap: within a tier, bucket index order equals deadline
// order, bits below the cursor are always clear, and a plain lowest-set-bit
// scan of the occupancy bitmap finds the tier's earliest bucket.
//
// The cursor only moves forward, and moving it is fused with cascading: an
// advance re-places the members of the new cursor-path bucket of every tier
// whose cursor slot changed, top tier first. Top-down order is what makes
// the (when, seq) total order exact across tiers — a bucket only ever
// receives cascaded-in members before any direct insert with the same
// prefix can occur, so every bucket holds its same-deadline members in
// sequence order and the tier-0 bucket head is the true wheel minimum.
//
// Buckets track a stale-low minimum (never raised by cancellation) used as
// a conservative merge candidate for tiers >= 1: the merge never fires on a
// stale key, it advances the cursor there and re-derives an exact winner.
// Events beyond the wheel span — and events scheduled behind the cursor
// after a speculative peek advanced it past Now — live in the overflow
// heap, which participates in the merge by exact compare and drains back
// into the wheel when the cursor crosses a span boundary.

import "math/bits"

const (
	tierBits  = 8
	tierSlots = 1 << tierBits
	slotMask  = tierSlots - 1
	numTiers  = 4
	wheelBits = tierBits * numTiers
)

// evList is one intrusive doubly-linked event list: a wheel bucket
// (tier >= 0) or the body of a per-source Lane (tier < 0).
type evList struct {
	head, tail *event
	min        Time  // stale-low bound on members' when (wheel tiers >= 1)
	tier, slot int32 // wheel coordinates; tier < 0 for a lane
	lane       *Lane // owning lane when tier < 0
}

// unlink removes ev from l in O(1). The detached event's own link fields
// are left stale; retire is the single point that clears them.
//
//lrp:hotpath
func (l *evList) unlink(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		l.tail = ev.prev
	}
}

// place files ev into the wheel bucket its deadline selects relative to the
// cursor, or pushes it on the overflow heap when it lies beyond the wheel
// span (or behind the cursor). It returns the bucket, or nil for overflow,
// so PostBatch can append follow-on same-instant events directly.
//
//lrp:hotpath
func (e *Engine) place(ev *event) *evList {
	w := ev.when
	x := uint64(w ^ e.wpos)
	if w < e.wpos || x>>wheelBits != 0 {
		e.overflow.push(ev)
		return nil
	}
	t := 0
	if x != 0 {
		t = (bits.Len64(x) - 1) / tierBits
	}
	l := &e.tiers[t][(w>>(tierBits*uint(t)))&slotMask]
	e.bucketAppend(l, ev)
	return l
}

// bucketAppend links ev at the tail of wheel bucket l, maintaining the
// occupancy bit, the per-tier census and the bucket's stale-low minimum.
//
//lrp:hotpath
func (e *Engine) bucketAppend(l *evList, ev *event) {
	if l.head == nil {
		l.head, l.tail = ev, ev
		l.min = ev.when
		e.bitmap[l.tier][l.slot>>6] |= 1 << uint(l.slot&63)
	} else {
		ev.prev = l.tail
		l.tail.next = ev
		l.tail = ev
		if ev.when < l.min {
			l.min = ev.when
		}
	}
	ev.list = l
	e.tierCount[l.tier]++
	e.tierMask |= 1 << uint(l.tier)
}

// lowestSlot returns the index of the earliest occupied bucket of tier t,
// which must have at least one resident. Bits below the cursor are always
// clear (no wrap), so the scan starts at the cursor's word and the first
// set bit is the answer.
//
//lrp:hotpath
func (e *Engine) lowestSlot(t int) int {
	bm := &e.bitmap[t]
	for w := int(e.wpos>>(tierBits*uint(t))&slotMask) >> 6; w < len(bm); w++ {
		if bm[w] != 0 {
			return w<<6 + bits.TrailingZeros64(bm[w])
		}
	}
	return -1 // unreachable while tierCount[t] > 0
}

// advance moves the wheel cursor forward to `to` and cascades, top tier
// first, the new cursor-path bucket of every tier whose cursor slot
// changed: members re-place relative to the new cursor and land in a
// strictly lower tier. When the cursor crosses a wheel-span boundary,
// overflow events that now fit the span drain back in. Called with a
// target no later than the earliest pending event, so slots skipped over
// are provably empty. A target at or behind the cursor is a no-op.
//
//lrp:hotpath
func (e *Engine) advance(to Time) {
	old := e.wpos
	if to <= old {
		return
	}
	e.wpos = to
	if uint64(old^to)>>tierBits == 0 {
		return // same cursor slot at every tier >= 1
	}
	for t := numTiers - 1; t >= 1; t-- {
		sh := tierBits * uint(t)
		if old>>sh == to>>sh {
			continue // cursor slot unchanged at this tier (and below it may differ)
		}
		if e.tierCount[t] == 0 {
			continue
		}
		s := int(to>>sh) & slotMask
		l := &e.tiers[t][s]
		if l.head == nil {
			continue
		}
		ev := l.head
		l.head, l.tail = nil, nil
		e.bitmap[t][s>>6] &^= 1 << uint(s&63)
		for ev != nil {
			next := ev.next
			ev.prev, ev.next, ev.list = nil, nil, nil
			e.tierDec(int32(t))
			e.place(ev)
			ev = next
		}
	}
	if uint64(old^to)>>wheelBits != 0 {
		// Drain overflow events that now fit the wheel span. A root behind
		// the cursor (scheduled behind wpos after a speculative peek
		// advance) intentionally stops the drain early: place would push it
		// straight back into overflow, and it fires before anything blocked
		// behind it anyway, so deferring those events' drain to a later
		// span crossing costs a few exact compares in peek — never ordering.
		for {
			r := e.overflow.root()
			if r == nil || r.when < to || uint64(r.when^to)>>wheelBits != 0 {
				break
			}
			e.overflow.pop()
			e.place(r)
		}
	}
}

// peek returns the earliest pending event, or nil. It merges the exact
// candidates — earliest lane head, tier-0 bucket head, overflow root — by
// (when, seq); when the earliest wheel material sits in a tier >= 1 bucket
// it uses the bucket's stale-low minimum as a conservative key and, if that
// key is not strictly beaten by an exact candidate, advances the cursor to
// it (cascading the bucket toward tier 0) and re-merges. The loop
// terminates because every cascade moves the occupied bucket's members to
// a strictly lower tier. The winner is cached until an earlier insert, a
// cancellation of the winner, or a fire invalidates it.
//
//lrp:hotpath
func (e *Engine) peek() *event {
	if e.peeked != nil {
		return e.peeked
	}
	for {
		best := e.laneRoot()
		if r := e.overflow.root(); r != nil && (best == nil || less(r, best)) {
			best = r
		}
		if e.tierMask == 0 {
			e.peeked = best
			return best
		}
		t := bits.TrailingZeros8(e.tierMask)
		l := &e.tiers[t][e.lowestSlot(t)]
		if t == 0 {
			if h := l.head; best == nil || less(h, best) {
				best = h
			}
			e.peeked = best
			return best
		}
		m := l.min
		if m <= e.wpos {
			// The bucket minimum went stale below the cursor (its event was
			// cancelled and the cursor moved past it). Recompute the true
			// minimum — strictly above the cursor — so advance progresses.
			m = l.head.when
			for x := l.head.next; x != nil; x = x.next {
				if x.when < m {
					m = x.when
				}
			}
			l.min = m
		}
		if best != nil && best.when < m {
			e.peeked = best
			return best
		}
		e.advance(m)
	}
}
