package sim

import "testing"

// Lane re-arm semantics: posts to a non-empty lane must be monotone, but
// once the lane drains — by firing OR by cancellation — any time >= now is
// acceptable again. The kernel leans on this for burst preemption: cancel
// the outstanding burst-completion event, re-post it earlier.

func TestLaneCancelThenRearmEarlier(t *testing.T) {
	e := NewEngine()
	l := e.NewLane()
	var got []int64

	ev := l.Post(100, func() { t.Fatal("cancelled event fired") })
	e.At(70, func() { got = append(got, e.Now()) })
	e.Cancel(ev)
	// The lane is empty again: an earlier deadline than the cancelled
	// tail's must be accepted, and must win the merge.
	l.Post(50, func() { got = append(got, e.Now()) })
	e.Run()

	want := []int64{50, 70}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// The spill-heap variant: a lane beyond laneHotMax keeps a lazily frozen
// slot key after a cancel drains it. A re-post at an EARLIER time than the
// frozen key must re-key the slot both ways (the regression this pins: a
// down-only sift would leave the slot too deep and fire the event late).
func TestLaneSpilledCancelThenRearmEarlier(t *testing.T) {
	e := NewEngine()
	var lanes []*Lane
	// laneHotMax lanes occupy the hot array; two more spill.
	for i := 0; i < laneHotMax+2; i++ {
		lanes = append(lanes, e.NewLane())
	}
	var got []int64
	var victimEv Event
	for i, l := range lanes {
		when := int64(1000 + i)
		if i == laneHotMax+1 {
			when = 5000 // the victim: spilled, far in the future
		}
		ev := l.Post(when, func() { got = append(got, e.Now()) })
		if i == laneHotMax+1 {
			victimEv = ev
		}
	}
	victim := lanes[laneHotMax+1]
	if victim.hidx < 0 {
		t.Fatalf("test setup: victim lane not spill-resident (hidx=%d, hot=%d)", victim.hidx, victim.hot)
	}

	// Drain the victim by cancel; its slot stays in the spill heap with
	// the frozen 5000 key.
	e.Cancel(victimEv)
	// Re-arm earlier than every other pending event.
	victim.Post(10, func() { got = append(got, -e.Now()) })
	e.Run()

	if len(got) != laneHotMax+2 {
		t.Fatalf("fired %d events, want %d", len(got), laneHotMax+2)
	}
	if got[0] != -10 {
		t.Fatalf("re-armed event fired at position with value %d, want first (-10); full order %v", got[0], got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != int64(1000+i-1) {
			t.Fatalf("unexpected order %v", got)
		}
	}
}

// A fired (not cancelled) drain must grant the same any-time-≥-now
// freedom, including posting at the very instant the lane drained.
func TestLaneRearmAtSameInstantAfterDrain(t *testing.T) {
	e := NewEngine()
	l := e.NewLane()
	var got []string
	l.Post(100, func() {
		got = append(got, "first")
		// Re-arm from inside the firing callback at the current instant.
		l.Post(e.Now(), func() { got = append(got, "second") })
	})
	e.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
}

// Posting before a non-empty lane's tail must still panic: monotonicity is
// only waived when the lane is empty.
func TestLanePostBeforeTailPanics(t *testing.T) {
	e := NewEngine()
	l := e.NewLane()
	l.Post(100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic posting before the lane tail")
		}
	}()
	l.Post(50, func() {})
}
