package sim

// Coroutine support for the simulated kernel's processes.
//
// The kernel runs application logic on one goroutine per simulated
// process, strictly interlocked so that exactly one goroutine is
// runnable at any instant. Rather than bouncing every process step
// through a central dispatcher goroutine (two channel round trips per
// step), control moves by direct handoff: whichever goroutine must run
// next is woken in a single channel operation, and a process that keeps
// the simulated CPU fires its own burst-completion event in place and
// continues with no goroutine switch at all.
//
// Determinism is unaffected: the engine's (when, seq) merge fixes the
// total order of events, and the strict one-runnable-goroutine discipline means the
// order of all state mutations is identical no matter which goroutine
// happens to host a given event. Every handoff is a channel send/receive
// pair, so the race detector sees a happens-before edge across every
// transfer of engine state between goroutines.

// Coro is one parked coroutine: the root (whoever called RunUntil) or a
// simulated process. Its channel has capacity 1 so a wake posted before
// the target has parked — a freshly spawned process, for example — is
// never lost and never blocks the waker.
type Coro struct {
	wake   chan struct{}
	killed bool
}

// NewCoro returns a coroutine handle ready to park.
func (e *Engine) NewCoro() *Coro {
	return &Coro{wake: make(chan struct{}, 1)}
}

// Kill marks the coroutine for teardown: its next wake-up reports
// killed=true and the owner must unwind without touching engine state.
func (c *Coro) Kill() { c.killed = true }

// Killed reports whether Kill has been called. A coroutine checks this
// after its birth Park, the one wake-up site that predates user code.
func (c *Coro) Killed() bool { return c.killed }

// Signal posts a wake token without parking the caller. Used by teardown
// (Kill+Signal) and by dying coroutines that pass the loop on as they
// exit.
func (c *Coro) Signal() { c.wake <- struct{}{} }

// Park blocks until the coroutine is signalled. Exposed for the
// coroutine's birth park, before it has ever run.
func (c *Coro) Park() { <-c.wake }

// Current returns the coroutine executing right now. The kernel uses it
// to record who to switch back to after a nested process step.
func (e *Engine) Current() *Coro { return e.cur }

// Root returns the root coroutine (the goroutine driving RunUntil).
func (e *Engine) Root() *Coro { return &e.root }

// SwitchTo wakes `to` and parks the caller until somebody switches back.
// The caller's goroutine resumes when it is next woken; the return value
// reports whether it was woken for teardown (Kill) rather than to
// continue.
//
//lrp:hotpath
func (e *Engine) SwitchTo(to *Coro) (killed bool) {
	from := e.cur
	e.cur = to
	to.wake <- struct{}{}
	<-from.wake
	return from.killed
}

// Handoff transfers control to `to` and parks the caller. If `to` is
// already the executing coroutine this is free: no channel operation, no
// goroutine switch — the fast path for a process that keeps the CPU
// after its own burst completes.
//
//lrp:hotpath
func (e *Engine) Handoff(to *Coro) (killed bool) {
	if e.cur == to {
		return false
	}
	return e.SwitchTo(to)
}

// YieldToRoot parks the caller and resumes the root coroutine — a
// process coroutine has nothing it may run in place (it is going to
// sleep, was preempted, or the next event is not its own to fire).
func (e *Engine) YieldToRoot() (killed bool) {
	return e.SwitchTo(&e.root)
}

// LeaveTo wakes `to` without parking: the caller's coroutine is exiting
// and will never run again.
func (e *Engine) LeaveTo(to *Coro) {
	e.cur = to
	to.wake <- struct{}{}
}

// LeaveToRoot resumes the root coroutine as the caller exits.
func (e *Engine) LeaveToRoot() {
	e.LeaveTo(&e.root)
}

// HeadIs reports whether ev is the next event the engine will fire. A
// process coroutine uses this to recognise its own burst-completion
// event as the global merge winner — the one event it may fire in place
// without changing the global event order.
//
//lrp:hotpath
func (e *Engine) HeadIs(ev Event) bool {
	if ev.e == nil || ev.gen != ev.e.gen {
		return false
	}
	if ev.e.idx < 0 && ev.e.list == nil {
		return false
	}
	return e.peek() == ev.e
}

// Horizon returns the deadline of the innermost Run/RunUntil in
// progress: the time past which the current drive must not fire events.
// MaxTime outside any bounded run.
func (e *Engine) Horizon() Time { return e.horizon }

// StepWithin fires the next event if it is scheduled at or before the
// horizon. It returns false — without advancing the clock — when the
// engine is stopped, the queue is empty, or the head event lies beyond
// the horizon. This is the loop body shared by RunUntil and by driving
// process coroutines.
//
//lrp:hotpath
func (e *Engine) StepWithin() bool {
	if e.stopped {
		return false
	}
	ev := e.peek()
	if ev == nil || ev.when > e.horizon {
		return false
	}
	return e.Step()
}
