package sim

import "testing"

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestForkIndependentStreams(t *testing.T) {
	base := NewRand(42)
	f0, f1 := base.Fork(0), base.Fork(1)
	// Forking consumed nothing from the parent.
	if got, want := base.Uint64(), NewRand(42).Uint64(); got != want {
		t.Fatalf("Fork consumed a draw from the parent: %x vs %x", got, want)
	}
	// Nearby salts give well-separated streams.
	same := 0
	for i := 0; i < 1000; i++ {
		if f0.Uint64() == f1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("salt 0 and salt 1 streams collided %d/1000 times", same)
	}
	// Forks are themselves reproducible.
	g0 := NewRand(42).Fork(0)
	h0 := NewRand(42).Fork(0)
	for i := 0; i < 100; i++ {
		if g0.Uint64() != h0.Uint64() {
			t.Fatalf("same fork diverged at draw %d", i)
		}
	}
}

func TestForkReflectsConsumedState(t *testing.T) {
	// A fork taken after draws differs from one taken before: the fork
	// seeds from the parent's current state, not its original seed.
	a := NewRand(9)
	before := a.Fork(3).Uint64()
	a.Uint64()
	after := a.Fork(3).Uint64()
	if before == after {
		t.Fatal("fork ignores the parent's consumed state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %d outside [90,110]", v)
		}
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Fatal("jitter of zero duration should stay zero")
	}
}
