package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). The simulation cannot use math/rand's global state because
// experiments must be reproducible from an explicit seed, and cannot use
// crypto/rand or time-based seeding at all.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is replaced with
// a fixed non-zero constant, since xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Fork derives an independent generator from seed material (r's current
// state) and a caller-chosen salt, without consuming any draws from r.
// Subsystems that compose several random processes (the fault pipeline's
// per-impairment streams) fork one labelled stream per process, so adding
// or removing one process never shifts the draws any other one sees.
// The derivation runs the combined bits through a SplitMix64 finalizer,
// so nearby salts (0, 1, 2, …) yield well-separated states.
func (r *Rand) Fork(salt uint64) *Rand {
	return NewRand(splitmix64(r.state ^ (salt + 0x9e3779b97f4a7c15)))
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer that
// spreads low-entropy inputs (small seeds, sequential salts) across the
// whole state space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Int63n returns a uniform pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns d perturbed by up to ±frac (e.g. frac = 0.1 for ±10%).
// It never returns a negative duration.
func (r *Rand) Jitter(d int64, frac float64) int64 {
	if d <= 0 || frac <= 0 {
		return d
	}
	span := float64(d) * frac
	v := d + int64((r.Float64()*2-1)*span)
	if v < 0 {
		return 0
	}
	return v
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, truncated at 20x the mean to keep event queues bounded. It is used
// for Poisson packet sources.
func (r *Rand) ExpDuration(mean int64) int64 {
	if mean <= 0 {
		return 0
	}
	// Inverse-CDF sampling: -ln(1-U) * mean.
	u := r.Float64()
	// ln via math is fine; avoid u==1 which would yield +Inf.
	if u > 0.999999 {
		u = 0.999999
	}
	d := int64(-math.Log(1-u) * float64(mean))
	if max := 20 * mean; d > max {
		d = max
	}
	return d
}
