package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel must be a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]Event, 0, 20)
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	want := 0
	for i, ev := range evs {
		if i%3 == 1 {
			e.Cancel(ev)
		} else {
			want++
		}
	}
	e.Run()
	if len(got) != want {
		t.Fatalf("got %d events, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order after cancels: %v", got)
		}
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, tm := range []Time{5, 10, 15, 20, 25} {
		tm := tm
		e.At(tm, func() { got = append(got, tm) })
	}
	n := e.RunUntil(15)
	if n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	if e.Now() != 15 {
		t.Fatalf("clock = %d, want 15 (advance to deadline)", e.Now())
	}
	n = e.RunUntil(100)
	if n != 2 {
		t.Fatalf("processed %d more events, want 2", n)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("idle engine clock = %d, want 500", e.Now())
	}
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(10, func() {
		e.After(-5, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("After with negative delay did not fire")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d, want 10", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++; e.Stop() })
	e.At(3, func() { count++ })
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (stop mid-run)", count)
	}
	if !e.Stopped() {
		t.Fatal("engine does not report stopped")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(10, func() {
		got = append(got, e.Now())
		e.After(5, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("nested scheduling failed: %v", got)
	}
}

func TestEngineNextEventTime(t *testing.T) {
	e := NewEngine()
	if e.NextEventTime() != MaxTime {
		t.Fatal("empty queue should report MaxTime")
	}
	e.At(42, func() {})
	if e.NextEventTime() != 42 {
		t.Fatalf("NextEventTime = %d, want 42", e.NextEventTime())
	}
}

// Regression: a cached merge winner living in a tier >= 1 wheel bucket
// must not be followed by that bucket's (append-ordered) list head. The
// sequence below caches the lane head via NextEventTime, then inserts
// descending times that each become the cached winner and land in one
// tier-1 bucket in list order 950, 920, 900; firing 900 out of it must
// re-derive the minimum (920), not trust the list head (950).
func TestEngineCachedWinnerInHighTierBucket(t *testing.T) {
	e := NewEngine()
	lane := e.NewLane()
	var got []Time
	rec := func() { got = append(got, e.Now()) }
	lane.Post(1000, rec)
	if e.NextEventTime() != 1000 {
		t.Fatalf("NextEventTime = %d, want 1000", e.NextEventTime())
	}
	e.At(950, rec)
	e.At(920, rec)
	e.At(900, rec)
	e.Run()
	want := []Time{900, 920, 950, 1000}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// Property: any batch of events fires in nondecreasing time order and the
// engine processes exactly the scheduled count.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(7).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(123)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandInt63nRange(t *testing.T) {
	r := NewRand(99)
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Int63n(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Int63n(10) only produced %d distinct values", len(seen))
	}
}

func TestRandJitter(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(1000, 0.1)
		if v < 900 || v > 1100 {
			t.Fatalf("Jitter out of band: %d", v)
		}
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Fatal("Jitter(0) should be 0")
	}
	if r.Jitter(100, 0) != 100 {
		t.Fatal("Jitter with zero frac should be identity")
	}
}

func TestRandExpDurationMean(t *testing.T) {
	r := NewRand(42)
	const mean = 1000
	var sum int64
	const n = 200000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 {
			t.Fatalf("negative duration %d", d)
		}
		sum += d
	}
	got := float64(sum) / n
	if got < 0.9*mean || got > 1.1*mean {
		t.Fatalf("exp mean = %.1f, want ~%d", got, mean)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j), func() {})
		}
		e.Run()
	}
}
