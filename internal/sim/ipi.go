package sim

// IPI models an inter-processor interrupt line: a one-way signal from
// one simulated CPU to another with a fixed delivery latency. Like the
// hardware it models, the line is level-triggered and coalescing —
// sending while a delivery is already in flight does not queue a second
// delivery, it is absorbed into the pending one. The receiver's handler
// must therefore drain all work made visible to it (a wakeup list, a
// reschedule flag), not assume one signal per unit of work.
//
// Deliveries are ordinary engine events, so IPIs interleave with all
// other simulated activity in deterministic (when, seq) order: two runs
// that send the same IPIs at the same instants deliver them
// identically.
type IPI struct {
	Eng *Engine
	// Latency is the signal's flight time in microseconds.
	Latency int64
	// Deliver runs in engine context when the signal lands.
	Deliver func()

	// Sent and Delivered count signals; Sent - Delivered - (0 or 1
	// in-flight) signals were coalesced.
	Sent      uint64
	Delivered uint64

	pending bool
	fire    func() // cached delivery thunk; built on first Send
	lane    *Lane  // per-line FIFO lane; at most one delivery in flight
}

// Send raises the line. If a delivery is already in flight the signal
// coalesces into it and no new event is scheduled.
//
//lrp:hotpath
func (i *IPI) Send() {
	i.Sent++
	if i.pending {
		return
	}
	if i.fire == nil {
		i.fire = func() { //lrp:coldalloc one thunk per line, built on first use
			i.pending = false
			i.Delivered++
			i.Deliver()
		}
		i.lane = i.Eng.NewLane() //lrp:coldalloc one lane per line, built on first use
	}
	i.pending = true
	i.lane.PostAfter(i.Latency, i.fire)
}

// Pending reports whether a delivery is in flight.
func (i *IPI) Pending() bool { return i.pending }
