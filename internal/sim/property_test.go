package sim

import (
	"container/heap"
	"fmt"
	"math"
	"testing"
)

// This file checks the two-tier scheduler (timer wheel + lanes + overflow
// heap + top-level merge) against a reference engine that reproduces the
// old implementation: one global priority heap ordered by (when, seq).
// The same seeded randomized program — schedules, same-instant bursts,
// batched posts, cancels, cancel-then-rearm, lane traffic, far-future
// events beyond the wheel span, and nested scheduling from inside
// callbacks — runs against both, and the firing traces must be identical
// down to tie order.

// refEvent is one pending entry of the reference engine.
type refEvent struct {
	when      int64
	seq       uint64
	fn        func()
	cancelled bool
	idx       int
}

// refHeap is a plain container/heap min-heap by (when, seq) — deliberately
// the dumbest correct implementation of the engine's total order.
type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

// refEngine is the single-global-heap scheduler the engine used before the
// wheel/lane split. Cancellation marks the entry and drops it at pop time,
// which leaves the fire order untouched.
type refEngine struct {
	now  int64
	seq  uint64
	h    refHeap
	live int
}

func (r *refEngine) at(t int64, fn func()) *refEvent {
	if t < r.now {
		panic("ref: schedule in the past")
	}
	ev := &refEvent{when: t, seq: r.seq, fn: fn}
	r.seq++
	heap.Push(&r.h, ev)
	r.live++
	return ev
}

func (r *refEngine) cancel(ev *refEvent) {
	if ev.cancelled || ev.fn == nil {
		return
	}
	ev.cancelled = true
	r.live--
}

func (r *refEngine) step() bool {
	for len(r.h) > 0 {
		ev := heap.Pop(&r.h).(*refEvent)
		if ev.cancelled {
			continue
		}
		r.now = ev.when
		fn := ev.fn
		ev.fn = nil
		r.live--
		fn()
		return true
	}
	return false
}

// propSched is the common surface the randomized program drives; one
// adapter wraps the real engine, the other the reference. next is
// NextEventTime: on the real engine it populates the peek cache (and may
// advance the wheel cursor), so interleaving it with later inserts
// exercises the cached-winner fast paths.
type propSched interface {
	now() int64
	next() int64
	at(t int64, fn func()) (cancel func(), active func() bool)
	lanePost(lane int, t int64, fn func())
	batch(at []int64, fn []func())
	step() bool
	pending() int
}

type newSched struct {
	e     *Engine
	lanes []*Lane
}

func (s *newSched) now() int64  { return s.e.Now() }
func (s *newSched) next() int64 { return s.e.NextEventTime() }
func (s *newSched) at(t int64, fn func()) (func(), func() bool) {
	h := s.e.At(t, fn)
	return func() { s.e.Cancel(h) }, h.Active
}
func (s *newSched) lanePost(lane int, t int64, fn func()) {
	s.lanes[lane].Post(t, fn)
}
func (s *newSched) batch(at []int64, fn []func()) {
	posts := make([]Post, len(at))
	for i := range at {
		posts[i] = Post{At: at[i], Fn: fn[i]}
	}
	s.e.PostBatch(posts)
}
func (s *newSched) step() bool   { return s.e.Step() }
func (s *newSched) pending() int { return s.e.Pending() }

type refSched struct {
	e *refEngine
}

func (s *refSched) now() int64 { return s.e.now }
func (s *refSched) next() int64 {
	// Min over live entries; the heap root may be a cancelled tombstone.
	min := int64(math.MaxInt64)
	for _, ev := range s.e.h {
		if !ev.cancelled && ev.fn != nil && ev.when < min {
			min = ev.when
		}
	}
	return min
}
func (s *refSched) at(t int64, fn func()) (func(), func() bool) {
	ev := s.e.at(t, fn)
	return func() { s.e.cancel(ev) },
		func() bool { return !ev.cancelled && ev.fn != nil }
}
func (s *refSched) lanePost(lane int, t int64, fn func()) {
	s.e.at(t, fn) // a lane post is just an ordered At
}
func (s *refSched) batch(at []int64, fn []func()) {
	for i := range at {
		s.e.at(at[i], fn[i]) // consecutive seqs in slice order, like PostBatch
	}
}
func (s *refSched) step() bool   { return s.e.step() }
func (s *refSched) pending() int { return s.e.live }

// propLanes exceeds laneHotMax so the spill heap and its lazy residency
// are exercised, not just the dense hot array.
const propLanes = laneHotMax + 8

// propWorld runs the randomized program against one scheduler. Both worlds
// get same-seed RNGs; as long as the engines fire in the same order, every
// draw mirrors, so any trace divergence is an ordering bug in the engine
// under test, not in the harness.
type propWorld struct {
	s     propSched
	rng   *Rand
	trace []string

	// Live cancellable handles, as parallel slices (cancel, active).
	cancels []func()
	actives []func() bool

	// Per-lane bookkeeping so lane posts respect the non-decreasing
	// constraint: while a lane has pending events, posts must not precede
	// its tail; once it drains, any time >= now is fair game again.
	lanePending [propLanes]int
	laneTail    [propLanes]int64

	nextID int
}

func (w *propWorld) record(id int) {
	w.trace = append(w.trace, fmt.Sprintf("t=%d id=%d", w.s.now(), id))
}

// fire builds the callback for event id: record, then maybe do nested work
// (more schedules, a cancel) using the world's RNG.
func (w *propWorld) fire(id, lane int) func() {
	return func() {
		w.record(id)
		if lane >= 0 {
			w.lanePending[lane]--
		}
		// Nested scheduling: follow-ups with mean < 1 so cascades stay
		// finite (the outer loop keeps seeding new work anyway).
		n := 0
		switch w.rng.Int63n(8) {
		case 0:
			n = 2
		case 1, 2, 3:
			n = 1
		}
		for i := 0; i < n; i++ {
			w.scheduleOne(true)
		}
		if w.rng.Int63n(4) == 0 {
			w.cancelOne()
		}
	}
}

// scheduleOne issues one random scheduling op. nested marks calls made
// from inside a callback (they skip batches to keep recursion shallow).
func (w *propWorld) scheduleOne(nested bool) {
	id := w.nextID
	w.nextID++
	now := w.s.now()
	switch k := w.rng.Int63n(12); {
	case k < 4: // plain At, near-term (0 often: same-instant burst)
		d := w.rng.Int63n(50)
		c, a := w.s.at(now+d, w.fire(id, -1))
		w.cancels = append(w.cancels, c)
		w.actives = append(w.actives, a)
	case k < 7: // lane post
		lane := int(w.rng.Int63n(propLanes))
		t := now + w.rng.Int63n(40)
		if w.lanePending[lane] > 0 && t < w.laneTail[lane] {
			t = w.laneTail[lane]
		}
		w.s.lanePost(lane, t, w.fire(id, lane))
		w.lanePending[lane]++
		w.laneTail[lane] = t
	case k < 8: // far future: overflow heap, multi-tier cascades
		d := 1 + w.rng.Int63n(int64(2)<<wheelBits)
		c, a := w.s.at(now+d, w.fire(id, -1))
		w.cancels = append(w.cancels, c)
		w.actives = append(w.actives, a)
	case k < 9 && !nested: // batch of 2–4 with non-decreasing times
		n := 2 + int(w.rng.Int63n(3))
		at := make([]int64, n)
		fns := make([]func(), n)
		t := now + w.rng.Int63n(30)
		for i := 0; i < n; i++ {
			at[i] = t
			fns[i] = w.fire(w.nextID-1+i, -1)
			t += w.rng.Int63n(3) // repeats exercise the same-bucket append
		}
		w.nextID += n - 1
		w.s.batch(at, fns)
	case k < 10: // the cached-winner-in-high-tier-bucket hazard: park a
		// far-future lane event (peeking a lane head does not advance the
		// wheel cursor), populate the winner cache via next(), then insert
		// descending times. When that lane head was the global minimum,
		// each insert beats the cached winner while resident in a tier >= 1
		// bucket and fires straight from there — Step must not trust the
		// (append-ordered) bucket list for the next minimum. Decrements
		// also exceed a tier-1 slot (256µs) across the group, so the
		// inserts land both in one bucket and across bucket boundaries.
		lane := int(w.rng.Int63n(propLanes))
		lt := now + 1200 + w.rng.Int63n(4000)
		if w.lanePending[lane] > 0 && lt < w.laneTail[lane] {
			lt = w.laneTail[lane]
		}
		w.s.lanePost(lane, lt, w.fire(id, lane))
		w.lanePending[lane]++
		w.laneTail[lane] = lt
		nt := w.s.next()
		w.trace = append(w.trace, fmt.Sprintf("next@%d=%d", now, nt))
		d := 700 + w.rng.Int63n(400)
		if gap := nt - now; gap > 1200 && gap < int64(1)<<wheelBits {
			// The queue head is far out: start just below it so every
			// descending insert beats the cached winner.
			d = gap - 1 - w.rng.Int63n(100)
		}
		for i := 0; ; i++ {
			id = w.nextID
			w.nextID++
			c, a := w.s.at(now+d, w.fire(id, -1))
			w.cancels = append(w.cancels, c)
			w.actives = append(w.actives, a)
			if i == 2 {
				break
			}
			d -= 100 + w.rng.Int63n(120)
		}
	default: // mid-range At, lands in a higher wheel tier
		d := 100 + w.rng.Int63n(100_000)
		c, a := w.s.at(now+d, w.fire(id, -1))
		w.cancels = append(w.cancels, c)
		w.actives = append(w.actives, a)
	}
}

// cancelOne cancels a randomly chosen outstanding handle (possibly one
// that already fired — that must be a no-op).
func (w *propWorld) cancelOne() {
	if len(w.cancels) == 0 {
		return
	}
	i := int(w.rng.Int63n(int64(len(w.cancels))))
	w.trace = append(w.trace, fmt.Sprintf("cancel@%d active=%v", w.s.now(), w.actives[i]()))
	w.cancels[i]()
	n := len(w.cancels) - 1
	w.cancels[i] = w.cancels[n]
	w.actives[i] = w.actives[n]
	w.cancels = w.cancels[:n]
	w.actives = w.actives[:n]
}

// run executes the program: interleaved scheduling and stepping, then a
// full drain.
func (w *propWorld) run(steps int) {
	for i := 0; i < steps; i++ {
		for w.rng.Int63n(2) == 0 {
			w.scheduleOne(false)
		}
		if w.rng.Int63n(6) == 0 {
			w.cancelOne()
		}
		if !w.s.step() {
			continue
		}
	}
	for w.s.step() {
	}
	if w.s.pending() != 0 {
		w.trace = append(w.trace, fmt.Sprintf("PENDING LEFT: %d", w.s.pending()))
	}
}

func TestEngineMatchesGlobalHeapReference(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			e := NewEngine()
			ns := &newSched{e: e}
			for i := 0; i < propLanes; i++ {
				ns.lanes = append(ns.lanes, e.NewLane())
			}
			wNew := &propWorld{s: ns, rng: NewRand(seed)}
			wRef := &propWorld{s: &refSched{e: &refEngine{}}, rng: NewRand(seed)}

			wNew.run(4000)
			wRef.run(4000)

			if len(wNew.trace) < 4000 {
				t.Fatalf("workload too small to mean anything: %d trace entries", len(wNew.trace))
			}
			if len(wNew.trace) != len(wRef.trace) {
				t.Fatalf("trace lengths differ: engine %d vs reference %d",
					len(wNew.trace), len(wRef.trace))
			}
			for i := range wNew.trace {
				if wNew.trace[i] != wRef.trace[i] {
					t.Fatalf("trace diverges at %d:\n  engine:    %s\n  reference: %s",
						i, wNew.trace[i], wRef.trace[i])
				}
			}
		})
	}
}
