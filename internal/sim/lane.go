package sim

// Per-source FIFO lanes: the engine's structure for the dominant case of
// near-term, already-ordered event traffic.
//
// Most hot producers in the simulation emit events whose deadlines are
// non-decreasing by construction — a NIC's embedded processor finishes
// packets in arrival order, a link serializes transmissions, a kernel's
// burst-completion chain follows its own clock, an IPI line has at most one
// interrupt in flight. For such a producer a priority queue is pure
// overhead: posting is a plain tail append onto the producer's own lane,
// and only the *lanes* (not the events) are merged. The merge works on
// value-type laneSlot entries — the lane's head-event key plus a lane id —
// so it compares and moves plain integers: no pointer chasing into event
// storage and no GC write barriers.
//
// The merge structure is chosen for the *churn* pattern, not the lookup
// pattern. The hottest producers keep exactly one event outstanding and
// re-arm on every firing (kernel burst chains, traffic generators, IPI
// lines), so a lane's key changes about as often as the minimum is asked
// for — a heap would pay a sift per change for ordering that is thrown
// away a moment later. Instead the first laneHotMax simultaneously active
// lanes sit in a small UNSORTED dense array: activation is an append,
// draining is a swap-remove, a head change is an in-place key store — all
// O(1) with no compares — and the merge scans the array (a few contiguous
// cache lines of integer keys) when it needs the minimum. Only when more
// than laneHotMax lanes are active at once does the excess spill into a
// 4-ary slot heap; spilled lanes stay heap-resident lazily — a drained
// lane's slot keeps its frozen key (heap order is preserved; keys only
// change under a sift) until a later post re-keys it in place or it
// surfaces at the root and is discarded.

import "fmt"

// laneHotMax bounds the unsorted active-lane array: small enough that the
// merge scan stays within a few cache lines, large enough that every lane
// of a typical single-host world avoids the spill heap.
const laneHotMax = 16

// Lane is a per-source FIFO feeder queue into the engine. Posts to one lane
// must have non-decreasing times while the lane is non-empty (the source's
// own causality); once the lane drains, any time >= Now is again
// acceptable, which is what lets a producer cancel its outstanding event
// and re-arm earlier (kernel burst preemption). Create lanes with
// Engine.NewLane; a lane is bound to its engine for life.
type Lane struct {
	eng  *Engine
	l    evList
	id   int32 // index in the engine's lane registry
	hot  int32 // index in the active-lane array; -1 when not resident
	hidx int32 // index in the spill heap; -1 when not resident
}

// laneSlot is one merge entry: the owning lane's id and a copy of its head
// event's key. Keeping the key in the slot (rather than behind the lane
// pointer) makes merge compares and moves pointer-free.
type laneSlot struct {
	kwhen Time
	kseq  uint64
	id    int32
}

// slotLess orders merge entries by their cached head key.
func slotLess(a, b laneSlot) bool {
	if a.kwhen != b.kwhen {
		return a.kwhen < b.kwhen
	}
	return a.kseq < b.kseq
}

// NewLane returns a new, empty lane. An empty lane costs nothing at merge
// time, so it is fine to create one per potential source and leave it idle.
func (e *Engine) NewLane() *Lane {
	l := &Lane{eng: e, id: int32(len(e.lanes)), hot: -1, hidx: -1} //lrp:coldalloc one allocation per source, at setup
	l.l.tier = -1
	l.l.lane = l
	e.lanes = append(e.lanes, l) //lrp:coldalloc lane registry grows once per source
	return l
}

// Len returns the number of events pending on the lane.
func (l *Lane) Len() int {
	n := 0
	for ev := l.l.head; ev != nil; ev = ev.next {
		n++
	}
	return n
}

// Post schedules fn at absolute time t on the lane. It panics if t is in
// the past, or if the lane is non-empty and t precedes its tail — lane
// order is the poster's promise, not something the engine sorts out. The
// returned handle behaves exactly like one from Engine.At: cancellable
// until fired, stale afterwards.
//
//lrp:hotpath
func (l *Lane) Post(t Time, fn func()) Event {
	e := l.eng
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := e.alloc(t, fn)
	if tail := l.l.tail; tail != nil {
		if t < tail.when {
			panic(fmt.Sprintf("sim: lane post at %d before pending tail %d", t, tail.when))
		}
		ev.prev = tail
		tail.next = ev
		l.l.tail = ev
	} else {
		l.l.head, l.l.tail = ev, ev
		switch {
		case l.hidx >= 0:
			// Lazily heap-resident with the drained key; re-key in place.
			// The new key is usually larger (time moved on), but a cancel
			// can leave a stale future key, so fix both directions.
			i := l.hidx
			e.laneHeap[i].kwhen, e.laneHeap[i].kseq = ev.when, ev.seq
			e.laneDown(i)
			e.laneUp(l.hidx)
		case len(e.laneHot) < laneHotMax:
			l.hot = int32(len(e.laneHot))
			e.laneHot = append(e.laneHot, laneSlot{kwhen: ev.when, kseq: ev.seq, id: l.id}) //lrp:coldalloc grows to laneHotMax, then stabilizes
		default:
			e.lanePush(laneSlot{kwhen: ev.when, kseq: ev.seq, id: l.id})
		}
	}
	ev.list = &l.l
	e.live++
	if p := e.peeked; p != nil && t < p.when {
		// The new event beats the cached winner, so it beats everything.
		e.peeked = ev
	}
	return Event{e: ev, gen: ev.gen, when: t}
}

// PostAfter schedules fn d microseconds from now on the lane, clamping a
// negative d to "this instant" like Engine.After.
//
//lrp:hotpath
func (l *Lane) PostAfter(d int64, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return l.Post(l.eng.now+d, fn)
}

// laneHeadChanged records that l's head changed to ev (the old head fired
// or was cancelled, with a survivor behind it): an active-array slot is
// re-keyed with a plain store; a spill-heap slot's key can only grow, so
// one down-sift restores heap order.
//
//lrp:hotpath
func (e *Engine) laneHeadChanged(l *Lane, ev *event) {
	if l.hot >= 0 {
		s := &e.laneHot[l.hot]
		s.kwhen, s.kseq = ev.when, ev.seq
		return
	}
	i := l.hidx
	e.laneHeap[i].kwhen, e.laneHeap[i].kseq = ev.when, ev.seq
	e.laneDown(i)
}

// laneDrained records that l's last event fired or was cancelled: an
// active-array resident leaves by swap-remove; a spill-heap resident stays
// put with its frozen key (see the lazy-residency note atop the file).
//
//lrp:hotpath
func (e *Engine) laneDrained(l *Lane) {
	if i := l.hot; i >= 0 {
		h := e.laneHot
		n := int32(len(h)) - 1
		l.hot = -1
		if i != n {
			h[i] = h[n]
			e.lanes[h[i].id].hot = i
		}
		e.laneHot = h[:n]
	}
}

// laneRoot returns the head event of the earliest non-empty lane, or nil:
// the minimum over the active array (linear scan of inline keys) and the
// spill-heap root. Spilled lanes that drained since their last sift are
// discarded as they surface at the root.
//
//lrp:hotpath
func (e *Engine) laneRoot() *event {
	h := e.laneHot
	bi := -1
	var bw Time
	var bs uint64
	if len(h) > 0 {
		bi, bw, bs = 0, h[0].kwhen, h[0].kseq
		for i := 1; i < len(h); i++ {
			w := h[i].kwhen
			if w > bw {
				continue // the common case: one compare, no key juggling
			}
			if w < bw || h[i].kseq < bs {
				bi, bw, bs = i, w, h[i].kseq
			}
		}
	}
	for len(e.laneHeap) > 0 {
		s := e.laneHeap[0]
		ln := e.lanes[s.id]
		if ln.l.head == nil {
			e.laneRemove(0)
			continue
		}
		if bi < 0 || s.kwhen < bw || (s.kwhen == bw && s.kseq < bs) {
			return ln.l.head
		}
		break
	}
	if bi < 0 {
		return nil
	}
	return e.lanes[h[bi].id].l.head
}

// lanePush adds a newly non-empty lane's slot to the spill heap.
//
//lrp:hotpath
func (e *Engine) lanePush(s laneSlot) {
	i := int32(len(e.laneHeap))
	e.laneHeap = append(e.laneHeap, s) //lrp:coldalloc grows to the high-water count of spilled lanes
	e.lanes[s.id].hidx = i
	e.laneUp(i)
}

// laneRemove deletes the slot at spill-heap index i.
//
//lrp:hotpath
func (e *Engine) laneRemove(i int32) {
	h := e.laneHeap
	n := int32(len(h)) - 1
	e.lanes[h[i].id].hidx = -1
	if i != n {
		h[i] = h[n]
		e.lanes[h[i].id].hidx = i
	}
	e.laneHeap = h[:n]
	if i < n {
		e.laneDown(i)
		e.laneUp(i)
	}
}

// laneUp sifts the slot at spill-heap index i toward the root.
//
//lrp:hotpath
func (e *Engine) laneUp(i int32) {
	h := e.laneHeap
	s := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h[parent]
		if !slotLess(s, p) {
			break
		}
		h[i] = p
		e.lanes[p.id].hidx = i
		i = parent
	}
	h[i] = s
	e.lanes[s.id].hidx = i
}

// laneDown sifts the slot at spill-heap index i toward the leaves.
//
//lrp:hotpath
func (e *Engine) laneDown(i int32) {
	h := e.laneHeap
	s := h[i]
	n := int32(len(h))
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if slotLess(h[c], h[min]) {
				min = c
			}
		}
		if !slotLess(h[min], s) {
			break
		}
		h[i] = h[min]
		e.lanes[h[i].id].hidx = i
		i = min
	}
	h[i] = s
	e.lanes[s.id].hidx = i
}
