// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in integer microseconds and
// a pending-event set ordered by (time, sequence number): events scheduled
// for the same time fire in the order they were scheduled (FIFO
// tie-breaking), which keeps whole-system runs deterministic and
// reproducible.
//
// Internally the pending set is a two-tier scheduler rather than one global
// priority heap (see wheel.go and lane.go):
//
//   - a hierarchical timer wheel — numTiers tiers of tierSlots power-of-two
//     slot buckets — holds future-dated events with O(1) amortized insert
//     and expire; an overflow 4-ary heap holds the rare event beyond the
//     wheel's span and cascades back into the wheel as the cursor advances;
//   - per-source FIFO lanes (Lane) hold the dominant near-term traffic —
//     NIC ring drain, kernel burst chains, link serialization — where each
//     producer's posts are already in time order, so insertion is a plain
//     list append with no sifting at all;
//   - a tiny top-level merge (peek) picks the global minimum across the
//     lanes, the wheel and the overflow heap by exact (when, seq) compare,
//     preserving the engine's total order bit-for-bit.
//
// All higher layers of the LRP reproduction — the simulated kernel, NICs,
// links, protocols and applications — advance time exclusively through this
// engine. Nothing in the repository reads the wall clock.
//
// Scheduling is allocation-free in steady state: fired and cancelled events
// return to a per-engine free list and are reused by later At/After calls.
// A generation counter in each pooled event makes stale handles harmless —
// cancelling an event that already fired is a no-op even after its storage
// has been reused for an unrelated event.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in microseconds since the start of the
// run. Durations are expressed as plain int64 microsecond counts.
type Time = int64

// Common durations, in microseconds.
const (
	Microsecond int64 = 1
	Millisecond int64 = 1000
	Second      int64 = 1000 * 1000
)

// MaxTime is the largest representable simulated time. It is used as a
// sentinel "never" deadline.
const MaxTime Time = math.MaxInt64

// event is the pooled representation of one scheduled callback. Storage is
// reused across schedulings; gen distinguishes incarnations. An event is
// resident in exactly one place while pending: a wheel bucket or lane
// (list != nil) or the overflow heap (idx >= 0).
type event struct {
	when Time
	seq  uint64
	gen  uint64
	idx  int // overflow-heap index; -1 when not heap-resident
	fn   func()

	// Intrusive doubly-linked membership in a wheel bucket or lane, so
	// cancellation unlinks in O(1) without searching.
	list       *evList
	prev, next *event
}

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so callers can cancel it before it fires. The zero Event is valid
// and behaves like an event that has already been cancelled. Handles stay
// safe after the event fires: the generation counter they carry no longer
// matches the pooled storage, so Cancel and Active degrade to no-ops even
// if the storage now backs a different event.
type Event struct {
	e    *event
	gen  uint64
	when Time
}

// When returns the time at which the event is (or was) scheduled to fire.
func (ev Event) When() Time { return ev.when }

// Active reports whether the event is still pending: scheduled, not yet
// fired, and not cancelled.
func (ev Event) Active() bool {
	return ev.e != nil && ev.e.gen == ev.gen && (ev.e.idx >= 0 || ev.e.list != nil)
}

// Cancelled reports whether the event has fired or been cancelled.
func (ev Event) Cancelled() bool { return !ev.Active() }

// IsZero reports whether ev is the zero handle, i.e. no event was ever
// scheduled into it. Holders that use "a handle is stored" as state (as the
// kernel does for its open burst) must test IsZero, not Active: a fired
// event's handle is stale but still records that a burst was opened.
func (ev Event) IsZero() bool { return ev.e == nil }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now  Time
	seq  uint64
	free []*event // retired events awaiting reuse

	// The pending set: hierarchical timer wheel + overflow heap (wheel.go)
	// and per-source FIFO lanes (lane.go).
	wpos      Time // wheel cursor: every wheel-resident event has when >= wpos
	tiers     [numTiers][tierSlots]evList
	bitmap    [numTiers][tierSlots / 64]uint64 // occupancy, one bit per slot
	tierCount [numTiers]int                    // events resident per tier
	tierMask  uint8                            // bit t set iff tierCount[t] > 0
	overflow  eventHeap                        // beyond wheel span, or behind the cursor
	lanes     []*Lane                          // registry of every lane created on this engine
	laneHot   []laneSlot                       // active lanes, unsorted dense array of head keys
	laneHeap  []laneSlot                       // spill beyond laneHotMax: 4-ary heap by head key

	// peeked caches the winner of the last merge; nil means unknown. It is
	// invalidated by firing, by cancelling the cached event, and by any
	// insert that orders before it.
	peeked *event

	live    int // pending events across all structures
	stopped bool

	// processed counts events that have fired, for diagnostics and for the
	// runaway-loop guard in RunUntil.
	processed uint64

	// horizon is the deadline of the innermost Run/RunUntil in progress
	// (MaxTime outside any bounded run). Process coroutines that fire
	// events in place consult it through StepWithin so a direct-handoff
	// run stops at exactly the same instant a root-driven run would.
	horizon Time

	// cur is the coroutine executing right now; root is the coroutine of
	// whoever calls Run/RunUntil. See coro.go.
	cur  *Coro
	root Coro
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	e := &Engine{horizon: MaxTime}
	for t := range e.tiers {
		for s := range e.tiers[t] {
			l := &e.tiers[t][s]
			l.tier, l.slot = int32(t), int32(s)
		}
	}
	e.root.wake = make(chan struct{}, 1)
	e.cur = &e.root
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// alloc takes an event from the free list (or allocates on a miss) and
// stamps it with the next sequence number. Every pending event gets exactly
// one sequence number, in scheduling-call order — this is the FIFO
// tie-break that fixes the engine's total order.
//
//lrp:hotpath
func (e *Engine) alloc(t Time, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		// The stale pointer left beyond len keeps at most one pooled (and
		// immortal anyway) event reachable; not nil-ing it skips a write
		// barrier per schedule.
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ev = &event{idx: -1} //lrp:coldalloc free-list miss; steady state pops the list
	}
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	return ev
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it always indicates a logic error in a simulation layer.
//
//lrp:hotpath
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := e.alloc(t, fn)
	e.place(ev)
	e.live++
	if p := e.peeked; p != nil && t < p.when {
		// The new event beats the cached winner, so it beats everything.
		e.peeked = ev
	}
	return Event{e: ev, gen: ev.gen, when: t}
}

// After schedules fn to run d microseconds from now. A non-positive d runs
// the event at the current time, after any already-queued events for this
// instant.
//
//lrp:hotpath
func (e *Engine) After(d int64, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Post is one entry of a PostBatch call.
type Post struct {
	At Time
	Fn func()
}

// PostBatch schedules a batch of events whose times are non-decreasing,
// amortizing queue placement across the batch: consecutive entries for the
// same instant append to the bucket located for the first of them, so a
// burst of k same-time events costs one placement, not k. Times before Now
// or out of order panic. Entries receive consecutive sequence numbers in
// slice order, exactly as k separate At calls would, so batching never
// changes the firing order. No handles are returned: batched events cannot
// be individually cancelled.
//
//lrp:hotpath
func (e *Engine) PostBatch(posts []Post) {
	var bucket *evList
	var first *event
	var when Time
	for i := range posts {
		p := &posts[i]
		if p.At < e.now {
			panic(fmt.Sprintf("sim: scheduling event at %d before now %d", p.At, e.now))
		}
		if i > 0 && p.At < when {
			panic(fmt.Sprintf("sim: PostBatch times out of order (%d after %d)", p.At, when))
		}
		ev := e.alloc(p.At, p.Fn)
		if i == 0 {
			first = ev
		}
		if bucket != nil && p.At == when {
			e.bucketAppend(bucket, ev)
		} else {
			bucket = e.place(ev)
			when = p.At
		}
		e.live++
	}
	if p := e.peeked; p != nil && first != nil && first.when < p.when {
		// The batch head beats the cached winner, so it beats everything.
		e.peeked = first
	}
}

// Cancel removes a pending event from the queue. Cancelling a zero handle,
// or one whose event has already fired or been cancelled, is a no-op, so
// callers may cancel unconditionally. Cancellation is eager — the event's
// storage returns to the free list immediately — so cancel-heavy workloads
// (kernel burst preemption, request timeouts) stay allocation-free.
//
//lrp:hotpath
func (e *Engine) Cancel(ev Event) {
	if !ev.Active() {
		return
	}
	x := ev.e
	if e.peeked == x {
		e.peeked = nil
	}
	if x.idx >= 0 {
		e.overflow.remove(x.idx)
	} else {
		l := x.list
		wasHead := l.head == x
		l.unlink(x)
		if l.tier >= 0 {
			e.tierDec(l.tier)
			if l.head == nil {
				e.bitmap[l.tier][l.slot>>6] &^= 1 << uint(l.slot&63)
			}
		} else if lane := l.lane; l.head == nil {
			e.laneDrained(lane)
		} else if wasHead {
			e.laneHeadChanged(lane, l.head)
		}
	}
	e.live--
	e.retire(x)
}

// retire returns a fired or cancelled event to the free list, bumping its
// generation so outstanding handles go stale. This is the single point
// that clears an event's links: unlink and the heap's pop/remove leave
// the detached event's fields stale to save duplicate write barriers
// (idx is already -1 for every non-heap resident and is reset by every
// heap removal).
//
//lrp:hotpath
func (e *Engine) retire(ev *event) {
	ev.list = nil
	ev.prev, ev.next = nil, nil
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev) //lrp:coldalloc free list grows to high-water, then stabilizes
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false if the queue is empty or the engine has been stopped.
//
//lrp:hotpath
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	ev := e.peek()
	if ev == nil {
		return false
	}
	if hint := e.unscheduleHead(ev); hint != nil {
		// The fired event's tier-0 bucket still has members (same instant,
		// next seq): the next winner is a 2-way compare, no scan needed.
		if lr := e.laneRoot(); lr != nil && less(lr, hint) {
			hint = lr
		}
		if r := e.overflow.root(); r != nil && less(r, hint) {
			hint = r
		}
		e.peeked = hint
	} else {
		e.peeked = nil
	}
	e.now = ev.when
	if ev.when > e.wpos {
		e.advance(ev.when)
	}
	fn := ev.fn
	e.retire(ev)
	e.live--
	e.processed++
	fn()
	return true
}

// tierDec decrements a tier's census, clearing its occupancy bit in the
// tier mask on the last resident.
//
//lrp:hotpath
func (e *Engine) tierDec(t int32) {
	e.tierCount[t]--
	if e.tierCount[t] == 0 {
		e.tierMask &^= 1 << uint(t)
	}
}

// unscheduleHead detaches the merge winner from whichever structure holds
// it. The winner is a lane head, the overflow-heap root, or a wheel-bucket
// member — a tier-0 head when peek derived it, but possibly a tier >= 1
// resident when the At/Post/PostBatch fast path cached a fresh insert that
// beat the previous winner. Only a surviving tier-0 bucket yields a hint:
// its members all share one instant and append in seq order, so the new
// head is still the exact wheel minimum. Tier >= 1 bucket lists are
// append-ordered, not time-ordered, so firing out of one must return nil
// and let the next peek re-derive the minimum through the cascade loop.
//
//lrp:hotpath
func (e *Engine) unscheduleHead(ev *event) (wheelHint *event) {
	if ev.idx >= 0 {
		e.overflow.pop()
		return nil
	}
	l := ev.list
	l.unlink(ev)
	if l.tier >= 0 {
		e.tierDec(l.tier)
		if l.head == nil {
			e.bitmap[l.tier][l.slot>>6] &^= 1 << uint(l.slot&63)
		} else if l.tier == 0 {
			return l.head
		}
		return nil
	}
	if l.head != nil {
		e.laneHeadChanged(l.lane, l.head)
	} else {
		e.laneDrained(l.lane)
	}
	return nil
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	prev := e.horizon
	e.horizon = MaxTime
	for e.StepWithin() {
	}
	e.horizon = prev
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline. Events scheduled exactly at the deadline fire. It returns
// the number of events processed.
//
// An event may hand control to a process coroutine (see coro.go); the
// loop resumes here once every coroutine has parked again, so by return
// all simulated activity up to the deadline has completed regardless of
// which goroutine hosted it.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.processed
	prev := e.horizon
	e.horizon = deadline
	for e.StepWithin() {
	}
	e.horizon = prev
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.processed - start
}

// RunFor advances the simulation by d microseconds from the current time.
func (e *Engine) RunFor(d int64) uint64 {
	return e.RunUntil(e.now + d)
}

// Stop halts the engine: no further events fire from Run/RunUntil/Step.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.live }

// NextEventTime returns the timestamp of the earliest queued event, or
// MaxTime if the queue is empty. Locating the minimum may cascade wheel
// buckets toward tier 0 (a semantics-preserving internal reshuffle).
func (e *Engine) NextEventTime() Time {
	if ev := e.peek(); ev != nil {
		return ev.when
	}
	return MaxTime
}

// eventHeap is an inlined 4-ary min-heap ordered by (when, seq), used for
// the overflow tier: events beyond the wheel's span, or (rarely) scheduled
// behind the wheel cursor after a speculative cascade. A 4-ary layout
// halves tree depth versus binary, and the inlined sift loops avoid
// container/heap's interface boxing on every operation — the reason
// scheduling used to allocate.
type eventHeap struct {
	a []*event
}

func (h *eventHeap) len() int { return len(h.a) }

// root returns the minimum event without removing it, or nil when empty.
func (h *eventHeap) root() *event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// less orders events by firing time, FIFO within the same instant.
func less(x, y *event) bool {
	if x.when != y.when {
		return x.when < y.when
	}
	return x.seq < y.seq
}

// push inserts ev, sifting it up to its (when, seq) position.
//
//lrp:hotpath
func (h *eventHeap) push(ev *event) {
	ev.idx = len(h.a)
	h.a = append(h.a, ev) //lrp:coldalloc heap array grows to high-water, then stabilizes
	h.up(ev.idx)
}

// pop removes and returns the minimum event.
//
//lrp:hotpath
func (h *eventHeap) pop() *event {
	ev := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[0].idx = 0
	h.a[n] = nil
	h.a = h.a[:n]
	if n > 0 {
		h.down(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the event at heap index i.
//
//lrp:hotpath
func (h *eventHeap) remove(i int) {
	n := len(h.a) - 1
	ev := h.a[i]
	if i != n {
		h.a[i] = h.a[n]
		h.a[i].idx = i
	}
	h.a[n] = nil
	h.a = h.a[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	ev.idx = -1
}

// up sifts the event at index i toward the root.
//
//lrp:hotpath
func (h *eventHeap) up(i int) {
	ev := h.a[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h.a[parent]
		if !less(ev, p) {
			break
		}
		h.a[i] = p
		p.idx = i
		i = parent
	}
	h.a[i] = ev
	ev.idx = i
}

// down sifts the event at index i toward the leaves.
//
//lrp:hotpath
func (h *eventHeap) down(i int) {
	ev := h.a[i]
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(h.a[c], h.a[min]) {
				min = c
			}
		}
		if !less(h.a[min], ev) {
			break
		}
		h.a[i] = h.a[min]
		h.a[i].idx = i
		i = min
	}
	h.a[i] = ev
	ev.idx = i
}
