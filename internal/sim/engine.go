// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in integer microseconds and
// a priority queue of scheduled events. Events scheduled for the same time
// fire in the order they were scheduled (FIFO tie-breaking via a sequence
// number), which keeps whole-system runs deterministic and reproducible.
//
// All higher layers of the LRP reproduction — the simulated kernel, NICs,
// links, protocols and applications — advance time exclusively through this
// engine. Nothing in the repository reads the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in microseconds since the start of the
// run. Durations are expressed as plain int64 microsecond counts.
type Time = int64

// Common durations, in microseconds.
const (
	Microsecond int64 = 1
	Millisecond int64 = 1000
	Second      int64 = 1000 * 1000
)

// MaxTime is the largest representable simulated time. It is used as a
// sentinel "never" deadline.
const MaxTime Time = math.MaxInt64

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	when Time
	seq  uint64
	idx  int // heap index; -1 once fired or cancelled
	fn   func()
}

// When returns the time at which the event is (or was) scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event has fired or been cancelled.
func (e *Event) Cancelled() bool { return e.idx < 0 }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool

	// processed counts events that have fired, for diagnostics and for the
	// runaway-loop guard in RunUntil.
	processed uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it always indicates a logic error in a simulation layer.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d microseconds from now. A non-positive d runs
// the event at the current time, after any already-queued events for this
// instant.
func (e *Engine) After(d int64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// has already fired or been cancelled is a no-op, so callers may cancel
// unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	ev.fn = nil
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false if the queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped || e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.idx = -1
	e.now = ev.when
	fn := ev.fn
	ev.fn = nil
	e.processed++
	fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline. Events scheduled exactly at the deadline fire. It returns
// the number of events processed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.processed
	for !e.stopped && e.queue.Len() > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.processed - start
}

// RunFor advances the simulation by d microseconds from the current time.
func (e *Engine) RunFor(d int64) uint64 {
	return e.RunUntil(e.now + d)
}

// Stop halts the engine: no further events fire from Run/RunUntil/Step.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.queue.Len() }

// NextEventTime returns the timestamp of the earliest queued event, or
// MaxTime if the queue is empty.
func (e *Engine) NextEventTime() Time {
	if e.queue.Len() == 0 {
		return MaxTime
	}
	return e.queue[0].when
}

// eventHeap implements container/heap ordered by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
