// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in integer microseconds and
// a priority queue of scheduled events. Events scheduled for the same time
// fire in the order they were scheduled (FIFO tie-breaking via a sequence
// number), which keeps whole-system runs deterministic and reproducible.
//
// All higher layers of the LRP reproduction — the simulated kernel, NICs,
// links, protocols and applications — advance time exclusively through this
// engine. Nothing in the repository reads the wall clock.
//
// Scheduling is allocation-free in steady state: fired and cancelled events
// return to a per-engine free list and are reused by later At/After calls.
// A generation counter in each pooled event makes stale handles harmless —
// cancelling an event that already fired is a no-op even after its storage
// has been reused for an unrelated event.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in microseconds since the start of the
// run. Durations are expressed as plain int64 microsecond counts.
type Time = int64

// Common durations, in microseconds.
const (
	Microsecond int64 = 1
	Millisecond int64 = 1000
	Second      int64 = 1000 * 1000
)

// MaxTime is the largest representable simulated time. It is used as a
// sentinel "never" deadline.
const MaxTime Time = math.MaxInt64

// event is the pooled representation of one scheduled callback. Storage is
// reused across schedulings; gen distinguishes incarnations.
type event struct {
	when Time
	seq  uint64
	gen  uint64
	idx  int // heap index; -1 once fired or cancelled
	fn   func()
}

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so callers can cancel it before it fires. The zero Event is valid
// and behaves like an event that has already been cancelled. Handles stay
// safe after the event fires: the generation counter they carry no longer
// matches the pooled storage, so Cancel and Active degrade to no-ops even
// if the storage now backs a different event.
type Event struct {
	e    *event
	gen  uint64
	when Time
}

// When returns the time at which the event is (or was) scheduled to fire.
func (ev Event) When() Time { return ev.when }

// Active reports whether the event is still pending: scheduled, not yet
// fired, and not cancelled.
func (ev Event) Active() bool {
	return ev.e != nil && ev.e.gen == ev.gen && ev.e.idx >= 0
}

// Cancelled reports whether the event has fired or been cancelled.
func (ev Event) Cancelled() bool { return !ev.Active() }

// IsZero reports whether ev is the zero handle, i.e. no event was ever
// scheduled into it. Holders that use "a handle is stored" as state (as the
// kernel does for its open burst) must test IsZero, not Active: a fired
// event's handle is stale but still records that a burst was opened.
func (ev Event) IsZero() bool { return ev.e == nil }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	free    []*event // retired events awaiting reuse
	stopped bool

	// processed counts events that have fired, for diagnostics and for the
	// runaway-loop guard in RunUntil.
	processed uint64

	// horizon is the deadline of the innermost Run/RunUntil in progress
	// (MaxTime outside any bounded run). Process coroutines that fire
	// events in place consult it through StepWithin so a direct-handoff
	// run stops at exactly the same instant a root-driven run would.
	horizon Time

	// cur is the coroutine executing right now; root is the coroutine of
	// whoever calls Run/RunUntil. See coro.go.
	cur  *Coro
	root Coro
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	e := &Engine{horizon: MaxTime}
	e.root.wake = make(chan struct{}, 1)
	e.cur = &e.root
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it always indicates a logic error in a simulation layer.
//
//lrp:hotpath
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{} //lrp:coldalloc free-list miss; steady state pops the list
	}
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.queue.push(ev)
	return Event{e: ev, gen: ev.gen, when: t}
}

// After schedules fn to run d microseconds from now. A non-positive d runs
// the event at the current time, after any already-queued events for this
// instant.
//
//lrp:hotpath
func (e *Engine) After(d int64, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling a zero handle,
// or one whose event has already fired or been cancelled, is a no-op, so
// callers may cancel unconditionally.
//
//lrp:hotpath
func (e *Engine) Cancel(ev Event) {
	if !ev.Active() {
		return
	}
	e.queue.remove(ev.e.idx)
	e.retire(ev.e)
}

// retire returns a fired or cancelled event to the free list, bumping its
// generation so outstanding handles go stale.
//
//lrp:hotpath
func (e *Engine) retire(ev *event) {
	ev.idx = -1
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev) //lrp:coldalloc free list grows to high-water, then stabilizes
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false if the queue is empty or the engine has been stopped.
//
//lrp:hotpath
func (e *Engine) Step() bool {
	if e.stopped || e.queue.len() == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.when
	fn := ev.fn
	e.retire(ev)
	e.processed++
	fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	prev := e.horizon
	e.horizon = MaxTime
	for e.StepWithin() {
	}
	e.horizon = prev
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline. Events scheduled exactly at the deadline fire. It returns
// the number of events processed.
//
// An event may hand control to a process coroutine (see coro.go); the
// loop resumes here once every coroutine has parked again, so by return
// all simulated activity up to the deadline has completed regardless of
// which goroutine hosted it.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.processed
	prev := e.horizon
	e.horizon = deadline
	for e.StepWithin() {
	}
	e.horizon = prev
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.processed - start
}

// RunFor advances the simulation by d microseconds from the current time.
func (e *Engine) RunFor(d int64) uint64 {
	return e.RunUntil(e.now + d)
}

// Stop halts the engine: no further events fire from Run/RunUntil/Step.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.queue.len() }

// NextEventTime returns the timestamp of the earliest queued event, or
// MaxTime if the queue is empty.
func (e *Engine) NextEventTime() Time {
	if e.queue.len() == 0 {
		return MaxTime
	}
	return e.queue.a[0].when
}

// eventHeap is an inlined 4-ary min-heap ordered by (when, seq). A 4-ary
// layout halves tree depth versus binary, and the inlined sift loops avoid
// container/heap's interface boxing on every operation — the reason
// scheduling used to allocate.
type eventHeap struct {
	a []*event
}

func (h *eventHeap) len() int { return len(h.a) }

// less orders events by firing time, FIFO within the same instant.
func less(x, y *event) bool {
	if x.when != y.when {
		return x.when < y.when
	}
	return x.seq < y.seq
}

// push inserts ev, sifting it up to its (when, seq) position.
//
//lrp:hotpath
func (h *eventHeap) push(ev *event) {
	ev.idx = len(h.a)
	h.a = append(h.a, ev) //lrp:coldalloc heap array grows to high-water, then stabilizes
	h.up(ev.idx)
}

// pop removes and returns the minimum event.
//
//lrp:hotpath
func (h *eventHeap) pop() *event {
	ev := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[0].idx = 0
	h.a[n] = nil
	h.a = h.a[:n]
	if n > 0 {
		h.down(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the event at heap index i.
//
//lrp:hotpath
func (h *eventHeap) remove(i int) {
	n := len(h.a) - 1
	ev := h.a[i]
	if i != n {
		h.a[i] = h.a[n]
		h.a[i].idx = i
	}
	h.a[n] = nil
	h.a = h.a[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	ev.idx = -1
}

// up sifts the event at index i toward the root.
//
//lrp:hotpath
func (h *eventHeap) up(i int) {
	ev := h.a[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h.a[parent]
		if !less(ev, p) {
			break
		}
		h.a[i] = p
		p.idx = i
		i = parent
	}
	h.a[i] = ev
	ev.idx = i
}

// down sifts the event at index i toward the leaves.
//
//lrp:hotpath
func (h *eventHeap) down(i int) {
	ev := h.a[i]
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(h.a[c], h.a[min]) {
				min = c
			}
		}
		if !less(h.a[min], ev) {
			break
		}
		h.a[i] = h.a[min]
		h.a[i].idx = i
		i = min
	}
	h.a[i] = ev
	ev.idx = i
}
