package sim

import (
	"testing"

	"lrp/internal/race"
)

// TestEngineHotPathZeroAllocs pins the schedule+fire cycle at zero
// allocations per operation once the event free list is warm. Every
// simulated packet, timer and CPU burst rides this path, so a regression
// here is a regression everywhere.
func TestEngineHotPathZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	e := NewEngine()
	fn := func() {}
	// Warm up: populate the free list and the heap's backing array.
	for i := 0; i < 16; i++ {
		e.At(e.Now(), fn)
		e.Step()
	}
	if n := testing.AllocsPerRun(100, func() {
		e.At(e.Now(), fn)
		e.Step()
	}); n != 0 {
		t.Errorf("At+Step allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ev := e.At(e.Now()+100, fn)
		e.Cancel(ev)
	}); n != 0 {
		t.Errorf("At+Cancel allocates %v per op, want 0", n)
	}
}
