package sim

import (
	"testing"

	"lrp/internal/race"
)

// TestEngineHotPathZeroAllocs pins the schedule+fire cycle at zero
// allocations per operation once the event free list is warm. Every
// simulated packet, timer and CPU burst rides this path, so a regression
// here is a regression everywhere.
func TestEngineHotPathZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	e := NewEngine()
	fn := func() {}
	// Warm up: populate the free list and the heap's backing array.
	for i := 0; i < 16; i++ {
		e.At(e.Now(), fn)
		e.Step()
	}
	if n := testing.AllocsPerRun(100, func() {
		e.At(e.Now(), fn)
		e.Step()
	}); n != 0 {
		t.Errorf("At+Step allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ev := e.At(e.Now()+100, fn)
		e.Cancel(ev)
	}); n != 0 {
		t.Errorf("At+Cancel allocates %v per op, want 0", n)
	}
}

// TestLaneHotPathZeroAllocs pins lane post+fire — the path every NIC ring
// drain, kernel burst chain and traffic generator rides — at zero
// allocations, both for a hot-array-resident lane and for one that lives
// in the spill heap.
func TestLaneHotPathZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	e := NewEngine()
	fn := func() {}
	var lanes []*Lane
	for i := 0; i < laneHotMax+2; i++ {
		lanes = append(lanes, e.NewLane())
	}
	hot, spilled := lanes[0], lanes[laneHotMax+1]
	// Warm up: free list, hot array, spill heap. Keep every lane non-empty
	// briefly so the spilled lane really spills.
	for _, l := range lanes {
		l.Post(e.Now(), fn)
	}
	if spilled.hidx < 0 {
		t.Fatalf("test setup: lane %d should be spill-resident", laneHotMax+1)
	}
	e.Run()
	for _, l := range []*Lane{hot, spilled} {
		l := l
		if n := testing.AllocsPerRun(100, func() {
			l.Post(e.Now(), fn)
			e.Step()
		}); n != 0 {
			t.Errorf("lane Post+Step allocates %v per op, want 0", n)
		}
		if n := testing.AllocsPerRun(100, func() {
			ev := l.Post(e.Now()+50, fn)
			e.Cancel(ev)
		}); n != 0 {
			t.Errorf("lane Post+Cancel allocates %v per op, want 0", n)
		}
	}
}

// TestWheelCascadeZeroAllocs pins the tier cascade: an event far enough
// out to land in a high wheel tier migrates down through the tiers as the
// cursor advances, and none of that movement may allocate.
func TestWheelCascadeZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 16; i++ { // warm the free list
		e.At(e.Now(), fn)
		e.Step()
	}
	if n := testing.AllocsPerRun(100, func() {
		// Tier-2 distance: fires only after cascading through tier 1.
		e.At(e.Now()+(1<<(2*tierBits))+3, fn)
		e.Step()
	}); n != 0 {
		t.Errorf("cascading schedule+fire allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		e.PostBatch([]Post{
			{At: e.Now() + 10, Fn: fn},
			{At: e.Now() + 10, Fn: fn},
			{At: e.Now() + 20, Fn: fn},
		})
		e.Step()
		e.Step()
		e.Step()
	}); n != 0 {
		t.Errorf("PostBatch of 3 allocates %v per run, want 0", n)
	}
}
