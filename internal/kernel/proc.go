package kernel

import (
	"errors"

	"lrp/internal/sim"
)

type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateSleeping
	stateDead
)

func (s procState) String() string {
	switch s {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateDead:
		return "dead"
	}
	return "?"
}

var (
	errKilled = errors.New("kernel: process killed at shutdown")
	errExited = errors.New("kernel: process exited")
)

// reqKind identifies the request a process goroutine hands to the
// scheduler at each yield. Requests are carried in typed Proc fields
// (reqD, reqSys, ...) rather than an interface value so issuing one
// never allocates — the switch path is exercised millions of times per
// experiment.
type reqKind uint8

const (
	reqNone reqKind = iota
	reqConsume
	reqSleep
	reqExit
)

// Proc is a simulated process (or kernel thread). Application logic runs on
// the process goroutine and interacts with simulated time only through
// these methods. Fields are documented as read-only for application code
// unless stated otherwise.
type Proc struct {
	K    *Kernel
	Name string
	// Nice biases scheduling priority by 2 points per unit, like BSD's
	// nice: +20 yields the weakest user priority.
	Nice int
	// CachePenalty, when nonzero, models a memory-bound working set: each
	// time the process retakes the CPU after something else ran, this many
	// microseconds of cache-refill work are added. Used by the Table 2
	// worker workload.
	CachePenalty int64
	// IntrPenalty, when nonzero, models cache disturbance from interrupt
	// handling: each time the process resumes after interrupt-level work
	// ran, this many microseconds of cache-refill work are added. Eager
	// (interrupt-driven) protocol processing therefore costs a cache-busy
	// receiver more than lazy processing does — one of the locality
	// effects the paper credits for LRP's throughput gains.
	IntrPenalty int64
	// PrioProxy, when set, makes this process schedule at the proxy's
	// priority instead of its own. The LRP asynchronous protocol processing
	// thread uses this to run "at the priority of the application process
	// that uses the associated socket".
	PrioProxy *Proc
	// FixedPrio, when positive, pins the priority (usage and nice are
	// ignored). The LRP idle-time protocol processing thread runs pinned
	// at PrioMax so it only consumes otherwise-idle cycles.
	FixedPrio int
	// Pinned excludes the process from cross-CPU migration (work
	// stealing). Host daemons whose state is tied to one CPU — the
	// idle-time protocol thread, the APP thread — are pinned.
	Pinned bool

	// Accounting (µs). UTime is application compute, STime is system-call
	// work performed in this process's context, IntrCharged is interrupt-
	// level time billed to this process by the accounting policy.
	UTime        int64
	STime        int64
	IntrCharged  int64
	CtxSwitches  uint64
	CacheRefills uint64
	IntrRefills  uint64
	ExitTime     sim.Time

	state     procState
	prio      int
	estcpu    int64 // decaying CPU usage, µs
	seq       uint64
	wq        *WaitQ
	timedOut  bool
	timeoutEv sim.Event
	timeoutFn func() // cached sleep-timeout callback, allocated once at Spawn

	pendingWork   int64
	pendingSys    bool
	chargeTo      *Proc
	lastBandEpoch uint64

	// The pending request, valid from the yield that issues it until the
	// scheduler applies it.
	reqKind     reqKind
	reqD        int64
	reqSys      bool
	reqChargeTo *Proc
	reqWq       *WaitQ
	reqTimeout  int64

	// step, when non-nil, is the body of a stackless process: the
	// scheduler calls it inline at each dispatch instead of switching to
	// a goroutine, and coro/done stay nil. See step.go.
	step StepFn
	// delayWq is the private wait queue backing ReqDelay/Delay: nothing
	// but the sleep timeout ever wakes it, so one reusable queue per
	// process replaces an allocation per Delay call.
	delayWq WaitQ

	coro *sim.Coro
	// resumedBy, when non-nil, is the coroutine parked inside runProcStep
	// waiting for this process's next request; the next yield switches
	// straight back to it. Nil means the process was dispatched by direct
	// handoff and owns the event loop itself.
	resumedBy *sim.Coro
	// dispatched is set by the scheduler when it selects this process to
	// run and cleared by the process as it resumes user code. A parked
	// process uses it to distinguish "run your next step" from "the event
	// loop merely passed through your goroutine".
	dispatched bool
	done       chan struct{}
	crash      any
}

// procMain is the goroutine body wrapping user code.
func procMain(p *Proc, fn func(*Proc)) {
	defer close(p.done)
	p.coro.Park() // birth: wait for the first dispatch
	if p.coro.Killed() {
		return
	}
	p.dispatched = false
	res := func() (r any) {
		defer func() { r = recover() }()
		fn(p)
		return nil
	}()
	if res == errKilled {
		return
	}
	if res != nil && res != errExited {
		p.crash = res
	}
	k := p.K
	p.reqKind = reqExit
	if rb := p.resumedBy; rb != nil {
		// A dispatcher is parked in runProcStep waiting for this step's
		// request; wake it as the goroutine unwinds and let it apply the
		// exit, exactly as it applies any other request.
		p.resumedBy = nil
		k.Eng.LeaveTo(rb)
		return
	}
	// This process owns the event loop: apply its own exit, pick the next
	// work, and return the loop to the root coroutine on the way out.
	k.applyRequest(p)
	k.inSched = false
	k.reschedule()
	k.Eng.LeaveToRoot()
}

// yield hands the pending request (already stored in p.req*) to the
// scheduler and blocks until the process is dispatched again.
//
// Two postures, mirroring how the process was last dispatched. If a
// dispatcher coroutine is parked in runProcStep waiting on us
// (resumedBy), switch straight back: it applies the request and
// continues its scheduling loop. Otherwise this process was dispatched
// by direct handoff and owns the event loop itself: apply the request
// in place, reschedule, and keep driving — if the scheduler picked us
// again the yield returns without any goroutine switch at all.
//
//lrp:hotpath
func (p *Proc) yield() {
	if p.step != nil {
		// Blocking methods need a goroutine to park; a stackless body
		// must issue requests with the Req* setters and return instead.
		panic("kernel: blocking call on stackless process " + p.Name) //lrp:coldalloc assertion path
	}
	k := p.K
	if rb := p.resumedBy; rb != nil {
		p.resumedBy = nil
		if k.Eng.SwitchTo(rb) {
			panic(errKilled)
		}
		p.dispatched = false
		return
	}
	k.applyRequest(p)
	k.inSched = false
	k.reschedule()
	k.drive(p)
}

// Compute consumes d microseconds of CPU as user time. The process may be
// preempted and interrupted while computing; it returns once d microseconds
// of CPU have actually been granted.
//
//lrp:hotpath
func (p *Proc) Compute(d int64) {
	if p.ReqCompute(d) {
		p.yield()
	}
}

// ComputeSys consumes d microseconds of CPU as system time (work done in
// kernel context on this process's behalf: system calls, lazy protocol
// processing, data copies).
//
//lrp:hotpath
func (p *Proc) ComputeSys(d int64) {
	if p.ReqComputeSys(d) {
		p.yield()
	}
}

// ComputeSysFor consumes d microseconds of CPU as system time but charges
// the scheduler usage to owner. The LRP asynchronous TCP processing thread
// uses this so that "CPU usage is charged back to that application".
//
//lrp:hotpath
func (p *Proc) ComputeSysFor(owner *Proc, d int64) {
	if p.ReqComputeSysFor(owner, d) {
		p.yield()
	}
}

// Sleep blocks the process on wq until a wakeup.
//
//lrp:hotpath
func (p *Proc) Sleep(wq *WaitQ) {
	p.ReqSleep(wq)
	p.yield()
}

// SleepTimeout blocks the process on wq until a wakeup or until timeout
// microseconds pass; it reports whether it timed out.
//
//lrp:hotpath
func (p *Proc) SleepTimeout(wq *WaitQ, timeout int64) (timedOut bool) {
	p.ReqSleepTimeout(wq, timeout)
	p.yield()
	if timeout <= 0 {
		return false
	}
	return p.timedOut
}

// Delay blocks the process for d microseconds of simulated time without
// consuming CPU (like sleeping on a timer).
func (p *Proc) Delay(d int64) {
	if p.ReqDelay(d) {
		p.yield()
	}
}

// Exit terminates the process immediately, unwinding its goroutine.
func (p *Proc) Exit() {
	if p.step != nil {
		panic("kernel: Exit on stackless process " + p.Name + "; request exit with ReqExit") //lrp:coldalloc assertion path
	}
	panic(errExited)
}

// Now returns the current simulated time (valid while the process runs).
func (p *Proc) Now() sim.Time { return p.K.Eng.Now() }

// Dead reports whether the process has exited.
func (p *Proc) Dead() bool { return p.state == stateDead }

// Sleeping reports whether the process is blocked.
func (p *Proc) Sleeping() bool { return p.state == stateSleeping }

// Prio returns the current scheduler priority (lower runs first).
func (p *Proc) Prio() int {
	if p.PrioProxy != nil && p.PrioProxy != p {
		return p.PrioProxy.prio
	}
	return p.prio
}

// EstCPU returns the decayed CPU usage the scheduler currently sees, in µs.
func (p *Proc) EstCPU() int64 { return p.estcpu }

// CPUTime returns user+system time consumed by the process, excluding
// interrupt time merely charged to it.
func (p *Proc) CPUTime() int64 { return p.UTime + p.STime }

// addUsage accumulates scheduler-visible usage with saturation.
func (p *Proc) addUsage(d int64) {
	p.estcpu += d
	if p.estcpu > estcpuMax {
		p.estcpu = estcpuMax
	}
}

// recomputePrio refreshes the scheduling priority from usage and nice,
// clamped to [PUser, PrioMax] as in BSD.
func (p *Proc) recomputePrio() {
	if p.FixedPrio > 0 {
		p.prio = p.FixedPrio
		return
	}
	pr := PUser + int(p.estcpu/estcpuPerPrioPoint) + 2*p.Nice
	if pr < PUser {
		pr = PUser
	}
	if pr > PrioMax {
		pr = PrioMax
	}
	p.prio = pr
}

// pendingTarget resolves whose account the pending work bills to.
func (p *Proc) pendingTarget() *Proc {
	if p.chargeTo != nil {
		return p.chargeTo
	}
	return p
}

// wakeup moves a sleeping process back to the run queue. Engine context.
//
// On a multi-CPU host, a wakeup initiated from a different CPU than the
// process's home CPU does not touch the home run queue directly: the
// process is detached from its wait queue (the waker owns that), its
// timeout is cancelled, and runnability is delivered by the cluster's
// RemoteWake hook — an inter-processor interrupt that later calls
// DeliverWakeup on the home CPU. Same-CPU wakeups take the exact
// uniprocessor path.
func (p *Proc) wakeup() {
	if p.state != stateSleeping {
		return
	}
	if g := p.K.Group; g != nil && g.RemoteWake != nil && g.Executing != nil && g.Executing != p.K {
		if p.wq != nil {
			p.wq.remove(p)
			p.wq = nil
		}
		if !p.timeoutEv.IsZero() {
			p.K.Eng.Cancel(p.timeoutEv)
			p.timeoutEv = sim.Event{}
		}
		g.RemoteWake(p)
		return
	}
	if p.wq != nil {
		p.wq.remove(p)
		p.wq = nil
	}
	if !p.timeoutEv.IsZero() {
		p.K.Eng.Cancel(p.timeoutEv)
		p.timeoutEv = sim.Event{}
	}
	p.state = stateRunnable
	p.recomputePrio()
	p.K.addRunnable(p)
	p.K.reschedule()
}

// DeliverWakeup completes a remotely-initiated wakeup on the process's
// home CPU: the IPI delivery path calls it (typically from a
// hardware-interrupt work item on the home kernel) after wakeup already
// detached the process from its wait queue. The process joins the home
// run queue with a fresh FIFO sequence at delivery time, so it never
// reorders processes that became runnable before the IPI landed. A
// process that is no longer sleeping (woken locally in the interim) is
// left alone.
func (p *Proc) DeliverWakeup() {
	if p.state != stateSleeping {
		return
	}
	p.state = stateRunnable
	p.recomputePrio()
	p.K.addRunnable(p)
	p.K.reschedule()
}

// MigrateTo moves a runnable process to dst's run queue, modelling a
// work-stealing migration: the process leaves its home kernel's process
// and run lists, joins dst's (with a fresh FIFO sequence), and pays
// cost microseconds of extra work on its next burst (the cache-refill
// price of running cold on another CPU). It reports whether the
// migration happened: pinned, non-runnable, dispatched, or mid-burst
// processes — and processes already on dst — do not move.
func (p *Proc) MigrateTo(dst *Kernel, cost int64) bool {
	src := p.K
	if dst == src || p.state != stateRunnable || p.Pinned || p.dispatched || src.curRunProc == p {
		return false
	}
	src.removeRunnable(p)
	for i, q := range src.procs {
		if q == p {
			src.procs = append(src.procs[:i], src.procs[i+1:]...)
			break
		}
	}
	p.K = dst
	dst.procs = append(dst.procs, p)
	if cost > 0 {
		p.pendingWork += cost
	}
	dst.addRunnable(p)
	return true
}

// decayUsage applies the per-second schedcpu decay (factor 2/3, the BSD
// filter with load average ~1) to every process and refreshes priorities.
func (k *Kernel) decayUsage() {
	for _, p := range k.procs {
		if p.state == stateDead {
			continue
		}
		p.estcpu = p.estcpu * 2 / 3
		p.recomputePrio()
	}
	k.closeBurst()
	k.reschedule()
}

// WaitQ is a queue of sleeping processes (a BSD sleep channel).
type WaitQ struct {
	procs []*Proc
}

// Len returns the number of sleeping processes.
func (w *WaitQ) Len() int { return len(w.procs) }

func (w *WaitQ) remove(p *Proc) {
	for i, q := range w.procs {
		if q == p {
			w.procs = append(w.procs[:i], w.procs[i+1:]...)
			return
		}
	}
}

// WakeupAll wakes every process sleeping on the queue (BSD wakeup()).
func (w *WaitQ) WakeupAll() {
	for len(w.procs) > 0 {
		w.procs[0].wakeup()
	}
}

// WakeupOne wakes the process that has slept longest. Among sleepers, the
// paper notes "the process with the highest priority performs the protocol
// processing"; WakeupBest implements that variant.
func (w *WaitQ) WakeupOne() {
	if len(w.procs) > 0 {
		w.procs[0].wakeup()
	}
}

// WakeupBest wakes the highest-priority sleeper.
func (w *WaitQ) WakeupBest() {
	if len(w.procs) == 0 {
		return
	}
	best := w.procs[0]
	for _, p := range w.procs[1:] {
		if p.Prio() < best.Prio() {
			best = p
		}
	}
	best.wakeup()
}
