package kernel

// Stress and equivalence coverage for stackless processes: the 100k-proc
// world the stackless mode exists to make cheap (100k goroutines would
// cost gigabytes of stacks and channel-pair context switches), and the
// mixed-mode scheduling contract (stackless and goroutine-hosted bodies
// interleave with identical accounting).

import (
	"testing"

	"lrp/internal/sim"
)

// TestStackless100kProcs holds 100,000 stackless processes asleep in one
// world, then runs every one through a full lifecycle — wake, compute,
// wake the next, exit — and checks each finishes with exact accounting.
// Per-proc footprint is one Proc plus one closure; a goroutine per
// process would need ~100k stacks. Spawning is staggered in batches so
// the runnable set stays small (the scheduler's pick is O(runnable),
// priced for worlds where nearly everything is blocked on I/O — the
// paper's server scenario — not for 100k simultaneously-runnable procs).
func TestStackless100kProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-process world; skipped in -short")
	}
	eng, k := newTestKernel(t)
	const (
		n     = 100_000
		batch = 100
	)
	wqs := make([]WaitQ, n)
	procs := make([]*Proc, n)
	done := 0
	for b := 0; b < n/batch; b++ {
		lo := b * batch
		eng.At(int64(b+1), func() {
			for i := lo; i < lo+batch; i++ {
				i := i
				pc := 0
				procs[i] = k.SpawnStep("stress", 0, func(p *Proc) {
					for {
						switch pc {
						case 0:
							pc = 1
							p.ReqSleep(&wqs[i])
							return
						case 1:
							pc = 2
							if p.ReqCompute(10) {
								return
							}
						case 2:
							pc = 3
							if p.ReqComputeSys(5) {
								return
							}
						case 3:
							done++
							if i+1 < n {
								wqs[i+1].WakeupAll()
							}
							p.ReqExit()
							return
						}
					}
				})
			}
		})
	}
	// All batches are spawned and asleep well before t=10ms: 100k live
	// processes in one world. Then a wakeup chain passes through every
	// process in sequence.
	eng.At(10*sim.Millisecond, func() { wqs[0].WakeupAll() })
	// The chain consumes 100k × 15µs = 1.5 simulated seconds of CPU.
	eng.RunFor(3 * sim.Second)
	if done != n {
		t.Fatalf("%d of %d processes completed", done, n)
	}
	for _, p := range procs {
		if !p.Dead() {
			t.Fatalf("process %s not dead after completing", p.Name)
		}
		if p.UTime != 10 || p.STime != 5 {
			t.Fatalf("accounting utime=%d stime=%d, want 10/5", p.UTime, p.STime)
		}
	}
}

// TestMixedModeEquivalence runs the same two-process producer/consumer
// state machine three ways — both stackless, both goroutine-hosted
// (SpawnStepCoro), and one of each — and requires identical completion
// times and accounting. This is the mixing contract: scheduling depends
// only on the request stream, never on which goroutine hosts the body.
func TestMixedModeEquivalence(t *testing.T) {
	type result struct {
		doneAt sim.Time
		prodU  int64
		prodS  int64
		consS  int64
	}
	run := func(coroA, coroB bool) result {
		eng := sim.NewEngine()
		k := New(eng, "test")
		defer k.Shutdown()
		var full, empty WaitQ
		queued := 0
		spawn := func(coro bool, name string, step StepFn) *Proc {
			if coro {
				return k.SpawnStepCoro(name, 0, step)
			}
			return k.SpawnStep(name, 0, step)
		}
		produced := 0
		a := spawn(coroA, "producer", func(p *Proc) {
			for {
				if produced == 50 {
					p.ReqExit()
					return
				}
				if queued >= 4 {
					p.ReqSleep(&empty)
					return
				}
				produced++
				queued++
				full.WakeupAll()
				if p.ReqCompute(30) {
					return
				}
			}
		})
		consumed := 0
		var doneAt sim.Time
		b := spawn(coroB, "consumer", func(p *Proc) {
			for {
				if consumed == 50 {
					doneAt = p.Now()
					p.ReqExit()
					return
				}
				if queued == 0 {
					p.ReqSleep(&full)
					return
				}
				queued--
				consumed++
				empty.WakeupAll()
				if p.ReqComputeSys(70) {
					return
				}
			}
		})
		eng.RunFor(10 * sim.Second)
		if consumed != 50 {
			t.Fatalf("consumed %d of 50 (coroA=%v coroB=%v)", consumed, coroA, coroB)
		}
		return result{doneAt: doneAt, prodU: a.UTime, prodS: a.STime, consS: b.STime}
	}
	base := run(false, false)
	if coro := run(true, true); coro != base {
		t.Errorf("all-coroutine run diverged: %+v vs %+v", coro, base)
	}
	if mixed := run(false, true); mixed != base {
		t.Errorf("mixed run diverged: %+v vs %+v", mixed, base)
	}
	if mixed := run(true, false); mixed != base {
		t.Errorf("mixed run diverged: %+v vs %+v", mixed, base)
	}
}
