package kernel

import (
	"testing"

	"lrp/internal/sim"
)

// The kernel benchmarks measure the simulator's own execution engine: how
// much real CPU one simulated context switch, one Consume round trip, and
// one sleep/wakeup cycle cost. Every experiment in the suite is built out
// of millions of these operations, so they are the denominator of total
// suite wall-clock time. BENCH_kernel.json records before/after numbers
// for the direct-handoff switch-path rework.

// benchKernel builds a kernel on a fresh engine.
func benchKernel() (*sim.Engine, *Kernel) {
	eng := sim.NewEngine()
	return eng, New(eng, "bench")
}

// BenchmarkConsume measures the Compute round trip of a single process
// that keeps the CPU: the process requests a 10 µs burst, the burst
// completes, and the same process continues. One op = one Compute call.
// This is the path the direct-handoff design makes switch-free.
func BenchmarkConsume(b *testing.B) {
	eng, k := benchKernel()
	k.Spawn("worker", 0, func(p *Proc) {
		for {
			p.Compute(10)
		}
	})
	eng.RunFor(sim.Millisecond) // settle: clocks armed, free lists warm
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkConsumeSys is BenchmarkConsume for system-time bursts with an
// explicit charge target, the LRP protocol-thread accounting path.
func BenchmarkConsumeSys(b *testing.B) {
	eng, k := benchKernel()
	var owner *Proc
	owner = k.Spawn("owner", 0, func(p *Proc) {
		for {
			p.Compute(10)
		}
	})
	k.Spawn("proto", 0, func(p *Proc) {
		for {
			p.ComputeSysFor(owner, 10)
		}
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkContextSwitch measures a full simulated context switch: two
// equal-priority processes alternately compute, wake the other, and
// sleep. One op = one handoff from one process goroutine to the other.
func BenchmarkContextSwitch(b *testing.B) {
	eng, k := benchKernel()
	var aq, bq WaitQ
	k.Spawn("a", 0, func(p *Proc) {
		for {
			p.Compute(5)
			bq.WakeupAll()
			p.Sleep(&aq)
		}
	})
	k.Spawn("b", 0, func(p *Proc) {
		for {
			p.Compute(5)
			aq.WakeupAll()
			p.Sleep(&bq)
		}
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 5)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkSleepWakeup measures the timer path: a process sleeps with a
// timeout and is woken by the engine each cycle. One op = one
// SleepTimeout round trip (park, timer event, wakeup, dispatch).
func BenchmarkSleepWakeup(b *testing.B) {
	eng, k := benchKernel()
	var wq WaitQ
	k.Spawn("sleeper", 0, func(p *Proc) {
		for {
			p.SleepTimeout(&wq, 10)
		}
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkInterruptedConsume measures a compute burst that is repeatedly
// preempted by interrupt-level work, the overload scenario of Figure 3:
// the process must resume its burst after every interrupt without a
// process-level context switch.
func BenchmarkInterruptedConsume(b *testing.B) {
	eng, k := benchKernel()
	k.Spawn("worker", 0, func(p *Proc) {
		for {
			p.Compute(10)
		}
	})
	var post func()
	post = func() {
		if k.shutdown {
			return
		}
		k.PostHW(WorkItem{Cost: 2})
		eng.After(10, post)
	}
	eng.After(10, post)
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 12)
	b.StopTimer()
	k.Shutdown()
}
