package kernel

import (
	"testing"

	"lrp/internal/sim"
)

// The kernel benchmarks measure the simulator's own execution engine: how
// much real CPU one simulated context switch, one Consume round trip, and
// one sleep/wakeup cycle cost. Every experiment in the suite is built out
// of millions of these operations, so they are the denominator of total
// suite wall-clock time. The primary benchmarks run stackless processes
// (SpawnStep) — the mode the hot bodies use; the *Coro variants run the
// same workloads on goroutine coroutines, the PR 5 execution model kept
// as a fallback. BENCH_kernel.json records before/after numbers for the
// stackless rework.

// benchKernel builds a kernel on a fresh engine.
func benchKernel() (*sim.Engine, *Kernel) {
	eng := sim.NewEngine()
	return eng, New(eng, "bench")
}

// BenchmarkConsume measures the Compute round trip of a single stackless
// process that keeps the CPU: the process requests a 10 µs burst, the
// burst completes, and the scheduler steps the same process inline. One
// op = one step.
func BenchmarkConsume(b *testing.B) {
	eng, k := benchKernel()
	k.SpawnStep("worker", 0, func(p *Proc) {
		p.ReqCompute(10)
	})
	eng.RunFor(sim.Millisecond) // settle: clocks armed, free lists warm
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkConsumeCoro is BenchmarkConsume on a goroutine process — the
// keep-CPU fast path of the direct-handoff design.
func BenchmarkConsumeCoro(b *testing.B) {
	eng, k := benchKernel()
	k.Spawn("worker", 0, func(p *Proc) {
		for {
			p.Compute(10)
		}
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkConsumeSys is BenchmarkConsume for system-time bursts with an
// explicit charge target, the LRP protocol-thread accounting path.
func BenchmarkConsumeSys(b *testing.B) {
	eng, k := benchKernel()
	owner := k.SpawnStep("owner", 0, func(p *Proc) {
		p.ReqCompute(10)
	})
	k.SpawnStep("proto", 0, func(p *Proc) {
		p.ReqComputeSysFor(owner, 10)
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkContextSwitch measures a full simulated context switch
// between two stackless processes: two equal-priority state machines
// alternately compute, wake the other, and sleep. One op = one handoff
// from one process to the other — a function return plus a function
// call, no goroutine switch.
func BenchmarkContextSwitch(b *testing.B) {
	eng, k := benchKernel()
	var aq, bq WaitQ
	pingpong := func(self, other *WaitQ) StepFn {
		computed := false
		return func(p *Proc) {
			if !computed {
				computed = true
				p.ReqCompute(5)
				return
			}
			other.WakeupAll()
			computed = false
			p.ReqSleep(self)
		}
	}
	k.SpawnStep("a", 0, pingpong(&aq, &bq))
	k.SpawnStep("b", 0, pingpong(&bq, &aq))
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 5)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkContextSwitchCoro is BenchmarkContextSwitch on goroutine
// processes: the same workload, but each handoff wakes the other
// process's goroutine through a sim.Coro channel pair.
func BenchmarkContextSwitchCoro(b *testing.B) {
	eng, k := benchKernel()
	var aq, bq WaitQ
	k.Spawn("a", 0, func(p *Proc) {
		for {
			p.Compute(5)
			bq.WakeupAll()
			p.Sleep(&aq)
		}
	})
	k.Spawn("b", 0, func(p *Proc) {
		for {
			p.Compute(5)
			aq.WakeupAll()
			p.Sleep(&bq)
		}
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 5)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkSleepWakeup measures the timer path: a stackless process
// sleeps with a timeout and is woken by the engine each cycle. One op =
// one SleepTimeout round trip (park, timer event, wakeup, dispatch).
func BenchmarkSleepWakeup(b *testing.B) {
	eng, k := benchKernel()
	var wq WaitQ
	k.SpawnStep("sleeper", 0, func(p *Proc) {
		p.ReqSleepTimeout(&wq, 10)
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkSleepWakeupCoro is BenchmarkSleepWakeup on a goroutine
// process.
func BenchmarkSleepWakeupCoro(b *testing.B) {
	eng, k := benchKernel()
	var wq WaitQ
	k.Spawn("sleeper", 0, func(p *Proc) {
		for {
			p.SleepTimeout(&wq, 10)
		}
	})
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 10)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkInterruptedConsume measures a compute burst that is repeatedly
// preempted by interrupt-level work, the overload scenario of Figure 3:
// the process must resume its burst after every interrupt without a
// process-level context switch. The WorkItem free list and the event
// pool make the whole cycle allocation-free.
func BenchmarkInterruptedConsume(b *testing.B) {
	eng, k := benchKernel()
	k.SpawnStep("worker", 0, func(p *Proc) {
		p.ReqCompute(10)
	})
	var post func()
	post = func() {
		if k.shutdown {
			return
		}
		k.PostHW(WorkItem{Cost: 2})
		eng.After(10, post)
	}
	eng.After(10, post)
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 12)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkInterruptedConsumeCoro is BenchmarkInterruptedConsume on a
// goroutine process.
func BenchmarkInterruptedConsumeCoro(b *testing.B) {
	eng, k := benchKernel()
	k.Spawn("worker", 0, func(p *Proc) {
		for {
			p.Compute(10)
		}
	})
	var post func()
	post = func() {
		if k.shutdown {
			return
		}
		k.PostHW(WorkItem{Cost: 2})
		eng.After(10, post)
	}
	eng.After(10, post)
	eng.RunFor(sim.Millisecond)
	b.ResetTimer()
	eng.RunFor(int64(b.N) * 12)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkSpawn100k measures cold spawn throughput of stackless
// processes — the path the 100k-process worlds lean on.
func BenchmarkSpawn100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, k := benchKernel()
		var wq WaitQ
		for i := 0; i < 100_000; i++ {
			k.SpawnStep("p", 0, func(p *Proc) {
				p.ReqSleep(&wq)
			})
		}
		eng.RunFor(sim.Millisecond)
		k.Shutdown()
	}
}
