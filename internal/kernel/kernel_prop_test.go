package kernel

// Property and invariant tests: the kernel's accounting must balance and
// its scheduler must stay fair under arbitrary workloads.

import (
	"testing"
	"testing/quick"

	"lrp/internal/sim"
)

// TestAccountingBalanceProperty: for any random mix of processes,
// interrupts and sleeps, total accounted time (bands + idle) equals
// elapsed time, and per-process CPU time sums to the process band total.
func TestAccountingBalanceProperty(t *testing.T) {
	f := func(seed uint64, nProcs, nIntrs uint8) bool {
		rng := sim.NewRand(seed)
		eng := sim.NewEngine()
		k := New(eng, "prop")
		defer k.Shutdown()

		procs := int(nProcs%5) + 1
		for i := 0; i < procs; i++ {
			nice := int(rng.Int63n(3)) * 10
			k.Spawn("p", nice, func(p *Proc) {
				for {
					p.Compute(rng.Int63n(5000) + 1)
					if rng.Float64() < 0.3 {
						p.Delay(rng.Int63n(3000) + 1)
					}
					if rng.Float64() < 0.2 {
						p.ComputeSys(rng.Int63n(1000) + 1)
					}
				}
			})
		}
		intrs := int(nIntrs%30) + 1
		for i := 0; i < intrs; i++ {
			at := rng.Int63n(900 * 1000)
			cost := rng.Int63n(200) + 1
			sw := rng.Float64() < 0.5
			eng.At(at, func() {
				if sw {
					k.PostSW(WorkItem{Cost: cost})
				} else {
					k.PostHW(WorkItem{Cost: cost})
				}
			})
		}
		eng.RunFor(sim.Second)
		st := k.Stats()
		if st.Busy()+st.IdleTime != eng.Now() {
			return false
		}
		var procSum int64
		var charged int64
		for _, p := range k.Procs() {
			procSum += p.UTime + p.STime
			charged += p.IntrCharged
		}
		if procSum != st.ProcTime {
			return false
		}
		if charged+st.IntrUnattributed != st.HWTime+st.SWTime {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFairShareLongRun: N identical CPU-bound processes each get ~1/N.
func TestFairShareLongRun(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, "fair")
	defer k.Shutdown()
	const n = 4
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = k.Spawn("worker", 0, func(p *Proc) {
			for {
				p.Compute(777)
			}
		})
	}
	eng.RunFor(20 * sim.Second)
	for i, p := range procs {
		share := float64(p.UTime) / float64(eng.Now())
		if share < 0.22 || share > 0.28 {
			t.Fatalf("proc %d share = %.3f, want ~0.25", i, share)
		}
	}
}

// TestDeterminism: identical runs produce identical accounting.
func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		eng := sim.NewEngine()
		k := New(eng, "det")
		defer k.Shutdown()
		rng := sim.NewRand(42)
		for i := 0; i < 3; i++ {
			k.Spawn("p", i*5, func(p *Proc) {
				for {
					p.Compute(rng.Int63n(900) + 1)
					p.Delay(rng.Int63n(300) + 1)
				}
			})
		}
		var pump func()
		pump = func() {
			k.PostHW(WorkItem{Cost: 40})
			eng.After(777, pump)
		}
		eng.At(0, pump)
		eng.RunFor(2 * sim.Second)
		var out []int64
		for _, p := range k.Procs() {
			out = append(out, p.UTime, p.STime, p.IntrCharged, int64(p.CtxSwitches))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different process counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestPrioProxyScheduling: a proxy thread inherits its owner's priority,
// so a proxy for a fresh (high-priority) owner preempts a CPU hog.
func TestPrioProxyScheduling(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, "proxy")
	defer k.Shutdown()
	k.Spawn("hog", 0, func(p *Proc) {
		for {
			p.Compute(sim.Second)
		}
	})
	owner := k.Spawn("owner", 0, func(p *Proc) { p.Sleep(&WaitQ{}) })
	var appDone sim.Time
	wq := &WaitQ{}
	appThread := k.Spawn("app-thread", 0, func(p *Proc) {
		p.Sleep(wq)
		p.ComputeSysFor(owner, 10*1000)
		appDone = p.Now()
	})
	appThread.PrioProxy = owner
	// Let the hog accumulate usage, then wake the proxy thread.
	eng.At(2*sim.Second, func() { wq.WakeupAll() })
	eng.RunFor(5 * sim.Second)
	if appDone == 0 {
		t.Fatal("proxy thread never ran")
	}
	// The sleeping owner's priority is pristine while the hog's decayed,
	// so the proxy should get the CPU promptly (well before the hog's
	// next full second of work completes).
	if appDone > 2*sim.Second+200*sim.Millisecond {
		t.Fatalf("proxy thread done at %d, was not prioritized", appDone)
	}
	if owner.STime != 10*1000 {
		t.Fatalf("owner charged %d", owner.STime)
	}
}

// TestTwoKernelsShareEngine: two hosts on one engine stay independent.
func TestTwoKernelsShareEngine(t *testing.T) {
	eng := sim.NewEngine()
	k1 := New(eng, "host1")
	k2 := New(eng, "host2")
	defer k1.Shutdown()
	defer k2.Shutdown()
	p1 := k1.Spawn("a", 0, func(p *Proc) {
		for {
			p.Compute(1000)
		}
	})
	p2 := k2.Spawn("b", 0, func(p *Proc) {
		for {
			p.Compute(1000)
		}
	})
	eng.RunFor(sim.Second)
	// Each host has its own CPU: both processes run at full speed.
	if p1.UTime < 990*1000 || p2.UTime < 990*1000 {
		t.Fatalf("cross-kernel interference: %d, %d", p1.UTime, p2.UTime)
	}
	// Interrupt work on one kernel must not charge processes on the other.
	k1.PostHW(WorkItem{Cost: 100})
	eng.RunFor(sim.Millisecond)
	if p2.IntrCharged != 0 {
		t.Fatal("interrupt charged across kernels")
	}
}

// TestIntrPenaltyAppliesOncePerDisturbance: penalties fire per resume, not
// per interrupt item.
func TestIntrPenaltyAppliesOncePerDisturbance(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, "pen")
	defer k.Shutdown()
	p := k.Spawn("sensitive", 0, func(p *Proc) { p.Compute(100 * 1000) })
	p.IntrPenalty = 50
	// Three back-to-back interrupts at one instant: one disturbance.
	eng.At(10*1000, func() {
		k.PostHW(WorkItem{Cost: 10})
		k.PostHW(WorkItem{Cost: 10})
		k.PostHW(WorkItem{Cost: 10})
	})
	eng.RunFor(sim.Second)
	if p.IntrRefills != 1 {
		t.Fatalf("refills = %d, want 1 for one interrupt batch", p.IntrRefills)
	}
	// Work stretched by 3 interrupts + 1 refill.
	if p.UTime != 100*1000+50 {
		t.Fatalf("utime = %d", p.UTime)
	}
}

// TestSleepBoostFavorsInteractive: a process that mostly sleeps keeps a
// better priority than a CPU hog and gets the CPU promptly on wakeup.
func TestSleepBoostFavorsInteractive(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, "boost")
	defer k.Shutdown()
	k.Spawn("hog", 0, func(p *Proc) {
		for {
			p.Compute(sim.Second)
		}
	})
	var worst int64
	inter := k.Spawn("interactive", 0, func(p *Proc) {
		for {
			p.Delay(50 * sim.Millisecond)
			start := p.Now()
			p.Compute(1000)
			if d := p.Now() - start - 1000; d > worst {
				worst = d
			}
		}
	})
	eng.RunFor(10 * sim.Second)
	if inter.UTime == 0 {
		t.Fatal("interactive process starved")
	}
	// After priorities separate, the interactive process should preempt
	// the hog within a tick or two.
	if worst > 50*sim.Millisecond {
		t.Fatalf("interactive process waited %dµs for the CPU", worst)
	}
}

// TestChargedTimeAffectsScheduling: the end-to-end consequence of BSD
// mis-accounting — two identical compute processes, one of which is
// additionally billed interrupt time, split the CPU unevenly.
func TestChargedTimeAffectsScheduling(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, "bias")
	defer k.Shutdown()
	victim := k.Spawn("victim", 0, func(p *Proc) {
		for {
			p.Compute(500)
		}
	})
	peer := k.Spawn("peer", 0, func(p *Proc) {
		for {
			p.Compute(500)
		}
	})
	// A steady interrupt load explicitly billed to the victim.
	var pump func()
	pump = func() {
		k.PostHW(WorkItem{Cost: 30, ChargeTo: victim})
		eng.After(100, pump)
	}
	eng.At(0, pump)
	eng.RunFor(10 * sim.Second)
	// The victim's scheduler-visible usage includes 30% phantom load, so
	// its real CPU share falls well below its peer's.
	if victim.UTime >= peer.UTime {
		t.Fatalf("victim %dµs >= peer %dµs; charged time did not bias scheduling",
			victim.UTime, peer.UTime)
	}
	gap := float64(peer.UTime-victim.UTime) / float64(peer.UTime)
	if gap < 0.15 {
		t.Fatalf("scheduling bias only %.2f; expected pronounced effect", gap)
	}
}
