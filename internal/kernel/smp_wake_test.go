package kernel

// Regression tests for the cross-CPU wakeup path: a remote wakeup is
// only an IPI until it lands, and landing must grant the woken process
// a run-queue position from its delivery time — never from the earlier
// instant the waker ran on the other CPU. An implementation that
// enqueued the process eagerly at initiation would let a remote waker
// jump its victim ahead of processes that became runnable on the home
// CPU while the IPI was in flight.

import (
	"testing"

	"lrp/internal/sim"
)

func TestRemoteWakeupDoesNotReorderSameCPURunnables(t *testing.T) {
	eng := sim.NewEngine()
	k0 := New(eng, "cpu0")
	k1 := New(eng, "cpu1")
	t.Cleanup(k0.Shutdown)
	t.Cleanup(k1.Shutdown)
	g := &Group{}
	k0.Group, k1.Group = g, g
	const ipiLat = 50
	g.RemoteWake = func(p *Proc) {
		home := p.K
		eng.At(eng.Now()+ipiLat, func() {
			home.PostHW(WorkItem{Cost: 1, Fn: p.DeliverWakeup})
		})
	}

	var order []string
	var at []sim.Time
	var wqRemote, wqLocal WaitQ
	k0.Spawn("remote", 0, func(p *Proc) {
		p.Sleep(&wqRemote)
		order = append(order, "remote")
		at = append(at, p.Now())
	})
	k0.Spawn("local", 0, func(p *Proc) {
		p.SleepTimeout(&wqLocal, 120)
		order = append(order, "local")
		at = append(at, p.Now())
	})
	// t=100: a process on CPU 1 wakes "remote". The wakeup is cross-CPU,
	// so until the IPI lands "remote" is runnable nowhere.
	k1.Spawn("waker", 0, func(p *Proc) {
		p.Delay(100)
		wqRemote.WakeupAll()
	})
	// CPU 0 is pinned in the interrupt band from t=90 to t=210, so both
	// wakeups — "local" at its t=120 timeout, "remote" when the IPI work
	// item drains after the band clears — join the run queue before the
	// scheduler can dispatch either. FIFO order at equal priority is then
	// the whole story.
	eng.At(90, func() { k0.PostHW(WorkItem{Cost: 120}) })
	eng.RunFor(sim.Second)

	if len(order) != 2 || order[0] != "local" || order[1] != "remote" {
		t.Fatalf("run order = %v, want [local remote]: the in-flight remote wakeup "+
			"(initiated t=100) must not outrank a process runnable since t=120", order)
	}
	if at[1] < 210+1 {
		t.Errorf("remote resumed at t=%d, want after its IPI work item drained (t>=211)", at[1])
	}
}

// TestDeliverWakeupStaleIPIIsHarmless pins the race the delivery path
// must tolerate: the process was woken by other means (here its sleep
// timeout) while the IPI was in flight. The late DeliverWakeup must
// leave it alone — no double enqueue, no state change.
func TestDeliverWakeupStaleIPIIsHarmless(t *testing.T) {
	eng, k := newTestKernel(t)
	var wq WaitQ
	runs := 0
	p := k.Spawn("sleeper", 0, func(p *Proc) {
		p.SleepTimeout(&wq, 100)
		runs++
		p.Compute(50)
	})
	// The "IPI" lands at t=300, long after the t=100 timeout woke and ran
	// the process to completion.
	eng.At(300, p.DeliverWakeup)
	eng.RunFor(sim.Second)
	if runs != 1 {
		t.Fatalf("process ran %d times, want 1: a stale DeliverWakeup must be a no-op", runs)
	}
	if !p.Dead() {
		t.Fatalf("process not dead after its single run")
	}
}
