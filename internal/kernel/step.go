package kernel

// Stackless processes.
//
// A stackless process has no goroutine and no sim.Coro: its body is an
// explicit state machine — a StepFn closed over a state word and typed
// locals — that the scheduler calls inline at every dispatch. Where a
// goroutine body blocks (Compute, Sleep, ...), a step body stores the
// same typed request in the Proc's req* fields via the Req* setters and
// returns; the scheduler applies the request exactly where the old
// dispatcher applied a yielded one. A simulated context switch is then
// a function return plus a function call, with no channel operations
// and no goroutine wakeup.
//
// The two modes are interchangeable: scheduling decisions, accounting
// and event order depend only on the request stream, never on which
// goroutine hosts the body, so a world may mix stackless and goroutine
// processes freely and produce bit-identical results either way.
// SpawnStepCoro runs a StepFn state machine on a goroutine coroutine —
// the fallback for debugging and the lever the equivalence tests use.
//
// Step bodies must not call the blocking Proc methods (Compute, Sleep,
// Delay, Exit, Block, ...); the stepfn lrplint analyzer enforces this
// statically and Proc.yield guards it at runtime. See DESIGN.md §11.

// StepFn is the body of a stackless process. The scheduler calls it
// once per dispatch; it must store exactly one request via a Req*
// setter before returning (returning with no request pending is a
// fatal error). Control state lives in the closure (or a struct the
// closure points at), not on a stack.
type StepFn func(*Proc)

// SpawnStep creates a stackless process running the step state machine
// and makes it runnable. The step function executes inline on whichever
// goroutine is driving the simulation; it must interact with simulated
// time only through the non-blocking Proc methods.
func (k *Kernel) SpawnStep(name string, nice int, step StepFn) *Proc {
	p := k.newProc(name, nice)
	p.step = step
	k.addRunnable(p)
	k.reschedule()
	return p
}

// SpawnStepCoro runs the same state machine on a goroutine coroutine:
// the step function is called in a loop on a dedicated goroutine, with
// a blocking yield between steps. Simulation behaviour is identical to
// SpawnStep — only the hosting (and the real-time cost of a dispatch)
// differs — so a workload written as a StepFn can be flipped between
// modes for debugging or A/B equivalence checks.
func (k *Kernel) SpawnStepCoro(name string, nice int, step StepFn) *Proc {
	return k.Spawn(name, nice, func(p *Proc) {
		for {
			p.reqKind = reqNone
			step(p)
			switch p.reqKind {
			case reqNone:
				panic("kernel: step body of " + p.Name + " returned without a request") //lrp:coldalloc assertion path
			case reqExit:
				return
			}
			p.yield()
		}
	})
}

// stepStackless runs one step of a stackless process and applies the
// request it returns with — the stackless twin of [user step, apply]
// inside runProcStep. Engine context; the caller holds inSched as the
// user-window guard for the duration of the step.
//
//lrp:hotpath
func (k *Kernel) stepStackless(p *Proc) {
	p.reqKind = reqNone
	p.step(p)
	if p.reqKind == reqNone {
		panic("kernel: step body of " + p.Name + " returned without a request") //lrp:coldalloc assertion path
	}
	k.applyRequest(p)
}

// Request setters. Each stores the typed request a blocking Proc method
// would have yielded and reports whether the caller must return to the
// scheduler. A false result (zero-cost compute, zero delay) means the
// request is a no-op and the step may simply continue — mirroring how
// the blocking variants return without yielding — so step machines can
// be written as `if p.ReqCompute(d) { frame.pc = next; return }`.

// ReqCompute requests d microseconds of user-time CPU (the stackless
// Compute).
//
//lrp:hotpath
func (p *Proc) ReqCompute(d int64) bool {
	if d <= 0 {
		return false
	}
	p.reqKind = reqConsume
	p.reqD = d
	p.reqSys = false
	p.reqChargeTo = nil
	return true
}

// ReqComputeSys requests d microseconds of system-time CPU (the
// stackless ComputeSys).
//
//lrp:hotpath
func (p *Proc) ReqComputeSys(d int64) bool {
	if d <= 0 {
		return false
	}
	p.reqKind = reqConsume
	p.reqD = d
	p.reqSys = true
	p.reqChargeTo = nil
	return true
}

// ReqComputeSysFor requests d microseconds of system-time CPU charged
// to owner (the stackless ComputeSysFor).
//
//lrp:hotpath
func (p *Proc) ReqComputeSysFor(owner *Proc, d int64) bool {
	if d <= 0 {
		return false
	}
	p.reqKind = reqConsume
	p.reqD = d
	p.reqSys = true
	p.reqChargeTo = owner
	return true
}

// ReqSleep requests a block on wq until a wakeup (the stackless Sleep).
// It always requires a return to the scheduler.
//
//lrp:hotpath
func (p *Proc) ReqSleep(wq *WaitQ) bool {
	p.reqKind = reqSleep
	p.reqWq = wq
	p.reqTimeout = 0
	return true
}

// ReqSleepTimeout requests a block on wq until a wakeup or until
// timeout microseconds pass (the stackless SleepTimeout). After the
// process is next stepped, TimedOut reports which one ended the sleep.
//
//lrp:hotpath
func (p *Proc) ReqSleepTimeout(wq *WaitQ, timeout int64) bool {
	p.reqKind = reqSleep
	p.reqWq = wq
	if timeout > 0 {
		p.reqTimeout = timeout
	} else {
		p.reqTimeout = 0
	}
	return true
}

// ReqDelay requests a block for d microseconds of simulated time
// without consuming CPU (the stackless Delay), using the process's
// private delay queue.
//
//lrp:hotpath
func (p *Proc) ReqDelay(d int64) bool {
	if d <= 0 {
		return false
	}
	p.reqKind = reqSleep
	p.reqWq = &p.delayWq
	p.reqTimeout = d
	return true
}

// ReqExit requests process termination (the stackless Exit).
func (p *Proc) ReqExit() bool {
	p.reqKind = reqExit
	return true
}

// TimedOut reports whether the process's last timed sleep ended by
// timeout rather than wakeup. Valid from the dispatch that follows a
// ReqSleepTimeout until the next sleep.
func (p *Proc) TimedOut() bool { return p.timedOut }

// Stackless reports whether the process runs as an inline-stepped state
// machine (no goroutine).
func (p *Proc) Stackless() bool { return p.step != nil }

// Block yields the request already stored by a Req* setter and returns
// when the process is dispatched again. It is how a goroutine-mode body
// drives a shared step machine: `for !op.Step(p) { p.Block() }`. On a
// stackless process Block panics — a step body returns to the scheduler
// instead. A pending exit request unwinds the goroutine like Exit.
//
//lrp:hotpath
func (p *Proc) Block() {
	switch p.reqKind {
	case reqNone:
		panic("kernel: Block on " + p.Name + " with no pending request") //lrp:coldalloc assertion path
	case reqExit:
		panic(errExited)
	}
	p.yield()
}
