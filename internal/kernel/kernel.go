// Package kernel simulates a small uniprocessor UNIX kernel: processes,
// a 4.3BSD-style decay-usage scheduler, and the three-level CPU priority
// structure (hardware interrupts > software interrupts > user processes)
// whose consequences the LRP paper analyses.
//
// The kernel is a pure discrete-event model driven by a sim.Engine. CPU
// time is consumed in preemptible "bursts"; hardware- and software-
// interrupt work always preempts process execution, software-interrupt
// work is preempted by hardware interrupts, and processes preempt each
// other according to scheduler priority. CPU time spent in interrupt
// context is charged to a configurable target — by default the current
// process, reproducing BSD's mis-accounting ("CPU time spent in interrupt
// context during the reception of packets is charged to the application
// that happens to execute when a packet arrives").
//
// Application code runs in one of two interchangeable modes. In
// goroutine mode (Spawn), each process gets a goroutine strictly
// interlocked with the engine so the whole simulation executes one
// goroutine at a time; control moves by direct handoff (sim.Coro), and
// a process that keeps the CPU after a burst fires its own
// burst-completion event in place without any goroutine switch. In
// stackless mode (SpawnStep), the process body is an explicit state
// machine the scheduler steps inline at dispatch — a simulated context
// switch is a function return plus a function call. Scheduling
// decisions, accounting and event order are identical in both modes.
// See DESIGN.md §9 and §11.
package kernel

import (
	"fmt"

	"lrp/internal/sim"
	"lrp/internal/trace"
)

// Scheduler constants, following 4.3BSD conventions: numerically lower
// priority values run first.
const (
	// PUser is the base user-mode priority.
	PUser = 50
	// PrioMax is the worst (weakest) priority.
	PrioMax = 127

	// TickInterval is the statclock period: priority of the running process
	// is recomputed this often.
	TickInterval = 10 * sim.Millisecond
	// RoundRobinInterval is the quantum for round-robin rotation among
	// equal-priority processes.
	RoundRobinInterval = 100 * sim.Millisecond
	// DecayInterval is the schedcpu period: accumulated CPU usage of every
	// process decays this often.
	DecayInterval = 1 * sim.Second

	// estcpuPerPrioPoint converts accumulated CPU microseconds into
	// priority points: one point per 4 ticks of usage, as in BSD's
	// p_usrpri = PUSER + p_cpu/4.
	estcpuPerPrioPoint = 4 * TickInterval
	// estcpuMax caps accumulated usage so priorities stay in range.
	estcpuMax = int64(PrioMax-PUser) * estcpuPerPrioPoint
)

// band identifies which CPU level owns the current burst.
type band int

const (
	bandIdle band = iota
	bandHW
	bandSW
	bandProc
)

func (b band) String() string {
	switch b {
	case bandIdle:
		return "idle"
	case bandHW:
		return "hwintr"
	case bandSW:
		return "swintr"
	case bandProc:
		return "proc"
	}
	return "?"
}

// WorkItem is a unit of interrupt-level work: Cost microseconds of CPU
// followed by Fn (which runs in engine context at completion). ChargeTo
// names the process whose scheduler usage absorbs the cost; nil applies
// the kernel's default policy (charge the current process, as BSD does).
type WorkItem struct {
	Cost     int64
	ChargeTo *Proc
	Fn       func()
}

// Stats aggregates kernel-wide CPU accounting.
type Stats struct {
	HWTime   int64 // µs spent at hardware interrupt level
	SWTime   int64 // µs spent at software interrupt level
	ProcTime int64 // µs spent running processes
	IdleTime int64 // µs idle
	// IntrUnattributed counts interrupt µs that had no process to charge
	// (the machine was idle when the interrupt arrived).
	IntrUnattributed int64
	CtxSwitches      uint64
}

// Busy returns total non-idle CPU microseconds.
func (s Stats) Busy() int64 { return s.HWTime + s.SWTime + s.ProcTime }

// Group links the kernels of one multi-CPU host. The zero value is not
// used; a cluster layer (internal/smp) creates one, points every member
// kernel's Group field at it, and installs the policy hooks. A nil
// Group on a kernel means uniprocessor: every hook site below is
// skipped and behaviour is identical to the pre-SMP kernel.
type Group struct {
	// Executing is the kernel whose context the currently-running code
	// belongs to. Member kernels maintain it at every control transfer
	// into simulation code (burst completion, process dispatch, timer
	// fire); Proc.wakeup compares it against the woken process's home
	// kernel to classify the wakeup as local or cross-CPU.
	Executing *Kernel

	// RemoteWake, when non-nil, delivers a cross-CPU wakeup: the woken
	// process has already been detached from its wait queue and timeout,
	// and the hook must eventually call Proc.DeliverWakeup on the
	// process's home CPU (typically after an IPI latency plus a
	// hardware-interrupt cost). When nil, cross-CPU wakeups degrade to
	// the local path.
	RemoteWake func(p *Proc)

	// Steal, when non-nil, is consulted by a member kernel about to go
	// idle: it may migrate a runnable process from a sibling into k's
	// run queue (Proc.MigrateTo) and return it, or return nil to let k
	// halt.
	Steal func(k *Kernel) *Proc

	// OnHalt, when non-nil, is invoked each time a member kernel goes
	// idle with nothing to run (after a failed steal) — the idle-halt
	// instrumentation point.
	OnHalt func(k *Kernel)
}

// Kernel is one simulated host CPU plus its scheduler state. Create with
// New. All methods must be called from the engine goroutine or from the
// currently running process goroutine (the simulation guarantees only one
// of those is active at a time).
type Kernel struct {
	Eng  *sim.Engine
	Name string

	// CtxSwitchCost is charged (as system time) to a process when it takes
	// the CPU from a different process.
	CtxSwitchCost int64

	// Group links this kernel to its sibling CPUs; nil on a
	// uniprocessor. See Group.
	Group *Group

	// Trace, when non-nil, records scheduler and interrupt events.
	Trace *trace.Log

	hwQ []*WorkItem
	swQ []*WorkItem
	// itemFree recycles WorkItems between PostHW/PostSW and burst
	// completion so posting interrupt work does not allocate once warm.
	itemFree []*WorkItem

	procs []*Proc
	runq  []*Proc
	seq   uint64

	cur        band
	curItem    *WorkItem // head item when cur is bandHW/bandSW
	curRunProc *Proc     // process owning the burst when cur is bandProc
	burstEv    sim.Event
	burstStart sim.Time
	idleStart  sim.Time

	// burstLane feeds this kernel's burst-completion events to the engine:
	// at most one is outstanding, and it is cancelled on preemption before
	// the next is posted, so the lane's FIFO-order contract holds trivially
	// and posting is a plain list append instead of a heap sift.
	burstLane *sim.Lane

	// burstDoneFn caches the onBurstDone method value so opening a burst
	// does not allocate a closure.
	burstDoneFn func()

	// curProc is the BSD "curproc": the process most recently dispatched.
	// Interrupt time with no explicit charge target is charged here.
	curProc *Proc
	// lastOnCPU tracks the last process to own a CPU burst, for context
	// switch cost and cache-penalty modelling.
	lastOnCPU *Proc

	// inSched is held while the scheduling loop runs and, crucially, for
	// the whole of every dispatched user step: kernel calls made by user
	// code (wakeups, interrupt posts) defer their reschedule to the step's
	// end via needResched instead of recursing into the dispatcher.
	inSched     bool
	needResched bool
	rrBypass    bool

	// bandEpoch increments whenever interrupt-band work consumes CPU; used
	// to detect that a process is resuming after interrupt activity.
	bandEpoch uint64

	stats    Stats
	shutdown bool
}

// New creates a kernel on eng and starts its periodic scheduler machinery.
func New(eng *sim.Engine, name string) *Kernel {
	k := &Kernel{Eng: eng, Name: name, idleStart: eng.Now()}
	k.burstDoneFn = k.onBurstDone
	k.burstLane = eng.NewLane()
	k.startClocks()
	return k
}

func (k *Kernel) startClocks() {
	var tick, rr, decay func()
	tick = func() {
		if k.shutdown {
			return
		}
		k.closeBurst()
		k.recomputePriorities()
		k.reschedule()
		k.Eng.After(TickInterval, tick)
	}
	rr = func() {
		if k.shutdown {
			return
		}
		k.roundRobin()
		k.Eng.After(RoundRobinInterval, rr)
	}
	decay = func() {
		if k.shutdown {
			return
		}
		k.decayUsage()
		k.Eng.After(DecayInterval, decay)
	}
	k.Eng.After(TickInterval, tick)
	k.Eng.After(RoundRobinInterval, rr)
	k.Eng.After(DecayInterval, decay)
}

// Now returns the current simulated time.
func (k *Kernel) Now() sim.Time { return k.Eng.Now() }

// enter marks this kernel as the owner of the executing context (a
// no-op on a uniprocessor). Called at every control transfer into code
// that may invoke wakeups: burst completion, process dispatch, timer
// expiry.
//
//lrp:hotpath
func (k *Kernel) enter() {
	if k.Group != nil {
		k.Group.Executing = k
	}
}

// Stats returns a copy of the kernel-wide accounting counters, with any
// in-progress burst or idle period folded in up to the current instant.
func (k *Kernel) Stats() Stats {
	k.closeBurst()
	k.reschedule()
	return k.stats
}

// Procs returns all processes ever created on this kernel (including dead
// ones), in creation order.
func (k *Kernel) Procs() []*Proc { return append([]*Proc(nil), k.procs...) }

// CurProc returns the most recently dispatched process (BSD curproc); nil
// before any process has run.
func (k *Kernel) CurProc() *Proc { return k.curProc }

// PostHW queues hardware-interrupt work. It preempts everything else on
// this CPU and runs FIFO with other hardware work.
//
//lrp:hotpath
func (k *Kernel) PostHW(item WorkItem) {
	k.hwQ = append(k.hwQ, k.takeItem(item)) //lrp:coldalloc queue slice retains capacity across posts
	k.reschedule()
}

// PostSW queues software-interrupt work. It preempts process execution
// but not hardware interrupts.
//
//lrp:hotpath
func (k *Kernel) PostSW(item WorkItem) {
	k.swQ = append(k.swQ, k.takeItem(item)) //lrp:coldalloc queue slice retains capacity across posts
	k.reschedule()
}

// takeItem boxes item into a recycled (or fresh) heap slot.
//
//lrp:hotpath
func (k *Kernel) takeItem(item WorkItem) *WorkItem {
	if n := len(k.itemFree); n > 0 {
		it := k.itemFree[n-1]
		k.itemFree = k.itemFree[:n-1]
		*it = item
		return it
	}
	it := new(WorkItem) //lrp:coldalloc free list warms to the high-water mark of in-flight items
	*it = item
	return it
}

// releaseItem returns a completed item to the free list.
//
//lrp:hotpath
func (k *Kernel) releaseItem(it *WorkItem) {
	it.ChargeTo = nil
	it.Fn = nil
	k.itemFree = append(k.itemFree, it) //lrp:coldalloc free list warms to the high-water mark of in-flight items
}

// popIntr removes the head of an interrupt queue in place, preserving
// the slice's backing array so a queue that drains and refills never
// re-allocates.
//
//lrp:hotpath
func popIntr(q []*WorkItem) []*WorkItem {
	copy(q, q[1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

// SWPending returns the number of queued software-interrupt work items.
func (k *Kernel) SWPending() int { return len(k.swQ) }

// newProc allocates and registers a process shell shared by Spawn and
// SpawnStep: runnable state, cached timeout callback, process list
// membership. The caller attaches a body and makes it runnable.
func (k *Kernel) newProc(name string, nice int) *Proc {
	p := &Proc{
		K:     k,
		Name:  name,
		Nice:  nice,
		state: stateRunnable,
	}
	p.timeoutFn = func() {
		// A sleep timeout is a timer interrupt on the CPU that armed it:
		// home-CPU context, so the wakeup below is always local.
		p.K.enter()
		p.timeoutEv = sim.Event{}
		if p.state == stateSleeping {
			p.timedOut = true
			p.wakeup()
		}
	}
	p.recomputePrio()
	k.procs = append(k.procs, p)
	return p
}

// Spawn creates a process running fn and makes it runnable. fn executes on
// its own goroutine, interlocked with the engine; it must interact with
// simulated time only through Proc methods. See SpawnStep for the
// stackless alternative.
func (k *Kernel) Spawn(name string, nice int, fn func(*Proc)) *Proc {
	p := k.newProc(name, nice)
	p.coro = k.Eng.NewCoro()
	p.done = make(chan struct{})
	k.addRunnable(p)
	go procMain(p, fn) //lrp:coroutine — parked immediately; the scheduler keeps exactly one goroutine runnable
	k.reschedule()
	return p
}

// Shutdown terminates all live process goroutines so a finished simulation
// does not leak them. The kernel is unusable afterwards.
func (k *Kernel) Shutdown() {
	k.shutdown = true
	if !k.burstEv.IsZero() {
		k.Eng.Cancel(k.burstEv)
		k.burstEv = sim.Event{}
	}
	for _, p := range k.procs {
		if p.state == stateDead {
			continue
		}
		if !p.timeoutEv.IsZero() {
			k.Eng.Cancel(p.timeoutEv)
			p.timeoutEv = sim.Event{}
		}
		p.state = stateDead
		if p.coro != nil {
			// Goroutine-mode process: unwind its goroutine. A stackless
			// process has no goroutine — marking it dead is enough.
			p.coro.Kill()
			p.coro.Signal()
			<-p.done
		}
	}
	k.runq = nil
}

// addRunnable appends p to the run queue with a fresh FIFO sequence.
//
//lrp:coldalloc amortized: run-queue capacity is retained across scheduling rounds (removal shifts in place)
func (k *Kernel) addRunnable(p *Proc) {
	p.seq = k.seq
	k.seq++
	k.runq = append(k.runq, p)
}

// removeRunnable deletes p from the run queue if present.
func (k *Kernel) removeRunnable(p *Proc) {
	for i, q := range k.runq {
		if q == p {
			k.runq = append(k.runq[:i], k.runq[i+1:]...)
			return
		}
	}
}

// pickProc selects the runnable process with the best (lowest) priority,
// breaking ties in favour of the last process on CPU (to avoid gratuitous
// switches) and then FIFO order.
func (k *Kernel) pickProc() *Proc {
	var best *Proc
	for _, p := range k.runq {
		if best == nil {
			best = p
			continue
		}
		if p.Prio() < best.Prio() {
			best = p
			continue
		}
		if p.Prio() == best.Prio() {
			switch {
			case k.rrBypass:
				if p.seq < best.seq {
					best = p
				}
			case p == k.lastOnCPU && best != k.lastOnCPU:
				best = p
			case best != k.lastOnCPU && p.seq < best.seq:
				best = p
			}
		}
	}
	return best
}

// StealCandidate returns the process a sibling CPU should steal from
// this kernel's run queue, or nil: the best-priority runnable process
// that can migrate (see Proc.MigrateTo) and is not the process this
// kernel would dispatch next — a CPU with a single runnable process is
// left alone. Ties break FIFO, matching pickProc's determinism.
func (k *Kernel) StealCandidate() *Proc {
	next := k.pickProc()
	var best *Proc
	for _, p := range k.runq {
		if p == next || p.Pinned || p.dispatched || k.curRunProc == p || p.state != stateRunnable {
			continue
		}
		if best == nil || p.Prio() < best.Prio() || (p.Prio() == best.Prio() && p.seq < best.seq) {
			best = p
		}
	}
	return best
}

// charge records d microseconds of CPU consumed at level b on behalf of
// target (nil means the current process, BSD-style).
func (k *Kernel) charge(b band, target *Proc, sys bool, d int64) {
	if d <= 0 {
		return
	}
	switch b {
	case bandHW:
		k.stats.HWTime += d
	case bandSW:
		k.stats.SWTime += d
	case bandProc:
		k.stats.ProcTime += d
	case bandIdle:
		k.stats.IdleTime += d
		return
	}
	if b == bandProc {
		target.addUsage(d)
		if sys {
			target.STime += d
		} else {
			target.UTime += d
		}
		return
	}
	// Interrupt-level time.
	if target == nil {
		target = k.curProc
	}
	if target == nil || target.state == stateDead {
		k.stats.IntrUnattributed += d
		return
	}
	target.addUsage(d)
	target.IntrCharged += d
}

// closeBurst accounts the elapsed portion of the current burst (or idle
// period) and cancels its completion event. After closeBurst the CPU is in
// a "nothing dispatched" state; reschedule must follow.
func (k *Kernel) closeBurst() {
	now := k.Eng.Now()
	if k.cur == bandIdle {
		if now > k.idleStart {
			k.stats.IdleTime += now - k.idleStart
			k.idleStart = now
		}
		return
	}
	if k.burstEv.IsZero() {
		return
	}
	elapsed := now - k.burstStart
	k.Eng.Cancel(k.burstEv)
	k.burstEv = sim.Event{}
	switch k.cur {
	case bandHW, bandSW:
		it := k.curItem
		it.Cost -= elapsed
		if elapsed > 0 {
			k.bandEpoch++
		}
		k.charge(k.cur, it.ChargeTo, false, elapsed)
	case bandProc:
		p := k.curRunProc
		p.pendingWork -= elapsed
		k.charge(bandProc, p.pendingTarget(), p.pendingSys, elapsed)
	}
	k.cur = bandIdle
	k.curItem = nil
	k.curRunProc = nil
	k.idleStart = now
}

// reschedule is the dispatcher: it decides which band/process should own
// the CPU and opens a burst for it. Re-entrant calls (from code running
// inside a dispatched process step) are deferred to the step's end.
//
// inSched is managed explicitly rather than with defer because of the
// self-dispatch early return: when the scheduling loop picks the very
// process whose goroutine is executing it, the loop returns with inSched
// still held — that process resumes user code, and the flag is its
// user-window guard until its next yield releases it.
func (k *Kernel) reschedule() {
	if k.inSched {
		k.needResched = true
		return
	}
	if k.shutdown {
		return
	}
	k.inSched = true

	for {
		k.needResched = false
		k.closeBurst()
		switch {
		case len(k.hwQ) > 0:
			k.openItemBurst(bandHW, k.hwQ[0])
		case len(k.swQ) > 0:
			k.openItemBurst(bandSW, k.swQ[0])
		default:
			p := k.pickProc()
			if p == nil && k.Group != nil && k.Group.Steal != nil {
				// About to go idle: ask the cluster's work-stealing
				// policy for a migratable process from a sibling CPU.
				p = k.Group.Steal(k)
			}
			if p == nil {
				// Idle ("halt"): idleStart was set by closeBurst; the
				// next event to touch this CPU un-halts it.
				if k.Group != nil && k.Group.OnHalt != nil {
					k.Group.OnHalt(k)
				}
				k.inSched = false
				return
			}
			if p.pendingWork <= 0 {
				if k.runProcStep(p) {
					return // self-dispatch: inSched stays held for the user window
				}
				continue // process state changed; re-pick
			}
			k.openProcBurst(p)
		}
		if !k.needResched {
			k.inSched = false
			return
		}
	}
}

// openItemBurst starts executing the head interrupt work item.
func (k *Kernel) openItemBurst(b band, it *WorkItem) {
	k.cur = b
	k.curItem = it
	k.burstStart = k.Eng.Now()
	cost := it.Cost
	if cost < 0 {
		cost = 0
	}
	k.burstEv = k.burstLane.PostAfter(cost, k.burstDoneFn)
}

// openProcBurst starts executing p's pending work, applying context-switch
// and cache-refill costs when the CPU is changing hands.
//
//lrp:hotpath
func (k *Kernel) openProcBurst(p *Proc) {
	if k.lastOnCPU != p {
		if k.Trace != nil {
			k.Trace.Add(trace.KindDispatch, "%s: %s takes CPU (prio %d)", k.Name, p.Name, p.Prio()) //lrp:coldalloc vararg boxing; only reached with tracing enabled
		}
		if k.lastOnCPU != nil {
			k.stats.CtxSwitches++
			p.CtxSwitches++
			if k.CtxSwitchCost > 0 {
				p.pendingWork += k.CtxSwitchCost
			}
		}
		if p.CachePenalty > 0 && k.lastOnCPU != nil {
			p.pendingWork += p.CachePenalty
			p.CacheRefills++
		}
		k.lastOnCPU = p
	}
	if p.IntrPenalty > 0 && p.lastBandEpoch != k.bandEpoch {
		p.pendingWork += p.IntrPenalty
		p.IntrRefills++
	}
	p.lastBandEpoch = k.bandEpoch
	k.curProc = p
	k.cur = bandProc
	k.curRunProc = p
	k.burstStart = k.Eng.Now()
	k.burstEv = k.burstLane.PostAfter(p.pendingWork, k.burstDoneFn)
}

// onBurstDone fires when the current burst's work is exhausted.
//
//lrp:hotpath
func (k *Kernel) onBurstDone() {
	k.enter()
	was, item, p := k.cur, k.curItem, k.curRunProc
	k.closeBurst()
	switch was {
	case bandHW:
		k.hwQ = popIntr(k.hwQ)
		if k.Trace != nil {
			k.Trace.Add(trace.KindIntr, "%s: hw work done", k.Name) //lrp:coldalloc vararg boxing; only reached with tracing enabled
		}
		if item.Fn != nil {
			item.Fn()
		}
		k.releaseItem(item)
	case bandSW:
		k.swQ = popIntr(k.swQ)
		if k.Trace != nil {
			k.Trace.Add(trace.KindSoftIntr, "%s: sw work done", k.Name) //lrp:coldalloc vararg boxing; only reached with tracing enabled
		}
		if item.Fn != nil {
			item.Fn()
		}
		k.releaseItem(item)
	case bandProc:
		if p.pendingWork <= 0 {
			// Tail handoff: the process resumes its user step on this
			// very goroutine (free when it fired its own burst event);
			// its next yield applies the request and reschedules — the
			// same [user step, apply, reschedule] sequence the central
			// dispatcher used to run, minus the goroutine round trip.
			k.dispatchContinue(p)
			return
		}
	}
	k.reschedule()
}

// dispatchContinue grants p the CPU after its burst completed, by direct
// handoff. Must be the last action of its caller's event: nothing may
// run after it until p's next yield. inSched is taken as the user-window
// guard and released by that yield.
//
//lrp:hotpath
func (k *Kernel) dispatchContinue(p *Proc) {
	k.enter()
	k.curProc = p
	p.state = stateRunning
	if p.step != nil {
		// Stackless tail handoff: run the next step inline, then the
		// same [apply, reschedule] a goroutine process's yield performs,
		// and return to the event loop. No goroutine is woken; the event
		// order is the one a root-driven goroutine run produces.
		k.inSched = true
		k.stepStackless(p)
		k.inSched = false
		k.reschedule()
		return
	}
	p.resumedBy = nil
	p.dispatched = true
	k.inSched = true
	if k.Eng.Handoff(p.coro) {
		panic(errKilled)
	}
}

// runProcStep transfers control to p's goroutine until it issues its next
// request, then applies that request. Called from the scheduling loop with
// inSched held.
//
// If p is the process whose goroutine is executing the loop (it just
// yielded, and the scheduler picked it again), there is no goroutine to
// switch to: runProcStep reports true and the loop returns, unwinding to
// p's yield frame, which resumes user code directly. Otherwise the step
// runs nested: this goroutine parks inside SwitchTo until p's next yield
// switches back, preserving the exact operation order of the old central
// dispatcher.
//
//lrp:hotpath
func (k *Kernel) runProcStep(p *Proc) bool {
	k.enter()
	k.curProc = p
	p.state = stateRunning
	if p.step != nil {
		// Stackless: the step runs inline on this goroutine (inSched is
		// already held by the scheduling loop) and its request is applied
		// on return — the same [user step, apply] sequence the nested
		// goroutine path below performs, minus the two switches.
		k.stepStackless(p)
		return false
	}
	p.dispatched = true
	self := k.Eng.Current()
	if p.coro == self {
		p.resumedBy = nil
		return true
	}
	p.resumedBy = self
	if k.Eng.SwitchTo(p.coro) {
		panic(errKilled)
	}
	k.applyRequest(p)
	return false
}

// drive runs the event loop from a process goroutine that owns it, until
// the scheduler dispatches the process again. It fires only events that
// are unambiguously its own — the process's burst completion at the head
// of the queue, within the run horizon — and hands everything else to
// the root coroutine, so the global event order is identical to a fully
// root-driven run.
//
//lrp:hotpath
func (k *Kernel) drive(p *Proc) {
	for !p.dispatched {
		if k.curRunProc == p && k.Eng.HeadIs(k.burstEv) && k.Eng.StepWithin() {
			continue
		}
		if k.Eng.YieldToRoot() {
			panic(errKilled)
		}
	}
	p.dispatched = false
}

// applyRequest consumes p's pending request, updating scheduler state.
// Runs on whichever goroutine is dispatching: the parked resumer for a
// nested step, or p itself when it owns the event loop.
//
//lrp:hotpath
func (k *Kernel) applyRequest(p *Proc) {
	switch p.reqKind {
	case reqConsume:
		p.state = stateRunnable
		p.pendingWork = p.reqD
		p.pendingSys = p.reqSys
		p.chargeTo = p.reqChargeTo
	case reqSleep:
		p.state = stateSleeping
		p.pendingWork = 0
		k.removeRunnable(p)
		p.wq = p.reqWq
		p.reqWq.procs = append(p.reqWq.procs, p) //lrp:coldalloc wait queues grow to high-water, then recycle capacity
		p.reqWq = nil
		p.timedOut = false
		if p.reqTimeout > 0 {
			p.timeoutEv = k.Eng.After(p.reqTimeout, p.timeoutFn)
		}
	case reqExit:
		p.state = stateDead
		p.pendingWork = 0
		k.removeRunnable(p)
		p.ExitTime = k.Now()
		if p.crash != nil {
			panic(fmt.Sprintf("kernel: process %q crashed: %v", p.Name, p.crash)) //lrp:coldalloc crash path
		}
	default:
		panic(fmt.Sprintf("kernel: process %q issued unknown request %d", p.Name, p.reqKind)) //lrp:coldalloc assertion path
	}
	p.reqKind = reqNone
}

// recomputePriorities refreshes priorities of all runnable processes.
func (k *Kernel) recomputePriorities() {
	for _, p := range k.runq {
		p.recomputePrio()
	}
}

// roundRobin rotates the current process to the back of its priority class.
func (k *Kernel) roundRobin() {
	k.closeBurst()
	if p := k.lastOnCPU; p != nil && p.state != stateDead && p.state != stateSleeping {
		// Rotate the incumbent to the back of its priority class and let
		// the pick ignore the usual keep-running tie preference once.
		p.seq = k.seq
		k.seq++
		k.rrBypass = true
	}
	k.reschedule()
	k.rrBypass = false
}
