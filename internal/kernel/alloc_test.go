package kernel

import (
	"testing"

	"lrp/internal/race"
	"lrp/internal/sim"
)

// TestSwitchPathZeroAllocs pins the switch path at zero allocations per
// operation in both execution modes: the Consume keep-CPU fast path, the
// proc-to-proc context switch (stackless and goroutine), the
// sleep/timeout/wakeup cycle, and the interrupt-preempted burst.
// Requests travel as typed fields on the Proc (no interface boxing),
// all the closures involved are cached at Spawn/New time, and WorkItems
// ride a free list, so once wait queues and free lists are warm nothing
// on these paths may allocate.
func TestSwitchPathZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}

	t.Run("consume-stackless", func(t *testing.T) {
		eng := sim.NewEngine()
		k := New(eng, "alloc")
		k.SpawnStep("worker", 0, func(p *Proc) {
			p.ReqCompute(10)
		})
		eng.RunFor(sim.Millisecond)
		if n := testing.AllocsPerRun(100, func() {
			eng.RunFor(10)
		}); n != 0 {
			t.Errorf("stackless Consume round trip allocates %v per op, want 0", n)
		}
		k.Shutdown()
	})

	t.Run("context-switch-stackless", func(t *testing.T) {
		eng := sim.NewEngine()
		k := New(eng, "alloc")
		var aq, bq WaitQ
		pingpong := func(self, other *WaitQ) StepFn {
			computed := false
			return func(p *Proc) {
				if !computed {
					computed = true
					p.ReqCompute(5)
					return
				}
				other.WakeupAll()
				computed = false
				p.ReqSleep(self)
			}
		}
		k.SpawnStep("a", 0, pingpong(&aq, &bq))
		k.SpawnStep("b", 0, pingpong(&bq, &aq))
		eng.RunFor(sim.Millisecond)
		if n := testing.AllocsPerRun(100, func() {
			eng.RunFor(5) // one burst + inline handoff to the other proc
		}); n != 0 {
			t.Errorf("stackless context switch allocates %v per op, want 0", n)
		}
		k.Shutdown()
	})

	t.Run("interrupted", func(t *testing.T) {
		eng := sim.NewEngine()
		k := New(eng, "alloc")
		k.SpawnStep("worker", 0, func(p *Proc) {
			p.ReqCompute(10)
		})
		var post func()
		post = func() {
			if k.shutdown {
				return
			}
			k.PostHW(WorkItem{Cost: 2})
			eng.After(10, post)
		}
		eng.After(10, post)
		eng.RunFor(sim.Millisecond) // warm: WorkItem free list, event pool
		if n := testing.AllocsPerRun(100, func() {
			eng.RunFor(12) // one burst + one preempting interrupt
		}); n != 0 {
			t.Errorf("interrupted consume cycle allocates %v per op, want 0", n)
		}
		k.Shutdown()
	})

	t.Run("delay", func(t *testing.T) {
		eng := sim.NewEngine()
		k := New(eng, "alloc")
		k.SpawnStep("delayer", 0, func(p *Proc) {
			p.ReqDelay(10)
		})
		eng.RunFor(sim.Millisecond) // warm: private delay queue
		if n := testing.AllocsPerRun(100, func() {
			eng.RunFor(10)
		}); n != 0 {
			t.Errorf("delay cycle allocates %v per op, want 0", n)
		}
		k.Shutdown()
	})

	t.Run("consume", func(t *testing.T) {
		eng := sim.NewEngine()
		k := New(eng, "alloc")
		k.Spawn("worker", 0, func(p *Proc) {
			for {
				p.Compute(10)
			}
		})
		eng.RunFor(sim.Millisecond) // warm: free lists, heap backing array
		if n := testing.AllocsPerRun(100, func() {
			eng.RunFor(10) // exactly one Compute round trip
		}); n != 0 {
			t.Errorf("Consume round trip allocates %v per op, want 0", n)
		}
		k.Shutdown()
	})

	t.Run("context-switch", func(t *testing.T) {
		eng := sim.NewEngine()
		k := New(eng, "alloc")
		var aq, bq WaitQ
		k.Spawn("a", 0, func(p *Proc) {
			for {
				p.Compute(5)
				bq.WakeupAll()
				p.Sleep(&aq)
			}
		})
		k.Spawn("b", 0, func(p *Proc) {
			for {
				p.Compute(5)
				aq.WakeupAll()
				p.Sleep(&bq)
			}
		})
		eng.RunFor(sim.Millisecond) // warm: wait-queue slices at high-water
		if n := testing.AllocsPerRun(100, func() {
			eng.RunFor(5) // one burst + handoff to the other proc
		}); n != 0 {
			t.Errorf("context switch allocates %v per op, want 0", n)
		}
		k.Shutdown()
	})

	t.Run("sleep-timeout", func(t *testing.T) {
		eng := sim.NewEngine()
		k := New(eng, "alloc")
		var wq WaitQ
		k.Spawn("sleeper", 0, func(p *Proc) {
			for {
				p.SleepTimeout(&wq, 10)
			}
		})
		eng.RunFor(sim.Millisecond)
		if n := testing.AllocsPerRun(100, func() {
			eng.RunFor(10) // one park + timer fire + wakeup + dispatch
		}); n != 0 {
			t.Errorf("sleep/timeout cycle allocates %v per op, want 0", n)
		}
		k.Shutdown()
	})
}
