package kernel

import (
	"testing"

	"lrp/internal/sim"
)

// newTestKernel builds an engine+kernel pair and returns a cleanup that
// terminates process goroutines.
func newTestKernel(t *testing.T) (*sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	k := New(eng, "test")
	t.Cleanup(k.Shutdown)
	return eng, k
}

func TestComputeConsumesSimTime(t *testing.T) {
	eng, k := newTestKernel(t)
	var doneAt sim.Time
	k.Spawn("a", 0, func(p *Proc) {
		p.Compute(5000)
		doneAt = p.Now()
	})
	eng.RunFor(sim.Second)
	if doneAt != 5000 {
		t.Fatalf("compute finished at %d, want 5000", doneAt)
	}
}

func TestAccountingUserVsSys(t *testing.T) {
	eng, k := newTestKernel(t)
	p := k.Spawn("a", 0, func(p *Proc) {
		p.Compute(3000)
		p.ComputeSys(2000)
	})
	eng.RunFor(sim.Second)
	if p.UTime != 3000 || p.STime != 2000 {
		t.Fatalf("utime=%d stime=%d", p.UTime, p.STime)
	}
	if p.CPUTime() != 5000 {
		t.Fatalf("cputime=%d", p.CPUTime())
	}
}

func TestHWPreemptsProc(t *testing.T) {
	eng, k := newTestKernel(t)
	var doneAt sim.Time
	k.Spawn("a", 0, func(p *Proc) {
		p.Compute(1000)
		doneAt = p.Now()
	})
	// At t=500, 300µs of hardware interrupt work arrives; the process's
	// compute must stretch to 1300.
	eng.At(500, func() {
		k.PostHW(WorkItem{Cost: 300})
	})
	eng.RunFor(sim.Second)
	if doneAt != 1300 {
		t.Fatalf("compute finished at %d, want 1300", doneAt)
	}
}

func TestHWPreemptsSW(t *testing.T) {
	eng, k := newTestKernel(t)
	var order []string
	eng.At(0, func() {
		k.PostSW(WorkItem{Cost: 1000, Fn: func() { order = append(order, "sw") }})
	})
	eng.At(100, func() {
		k.PostHW(WorkItem{Cost: 200, Fn: func() { order = append(order, "hw") }})
	})
	eng.RunFor(sim.Second)
	if len(order) != 2 || order[0] != "hw" || order[1] != "sw" {
		t.Fatalf("order = %v", order)
	}
	// SW work: 100µs before preemption + 900 after hw's 200 = done at 1200.
	st := k.Stats()
	if st.SWTime != 1000 || st.HWTime != 200 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSWDoesNotPreemptHW(t *testing.T) {
	eng, k := newTestKernel(t)
	var order []string
	eng.At(0, func() {
		k.PostHW(WorkItem{Cost: 500, Fn: func() { order = append(order, "hw") }})
		k.PostSW(WorkItem{Cost: 100, Fn: func() { order = append(order, "sw") }})
	})
	eng.RunFor(sim.Second)
	if len(order) != 2 || order[0] != "hw" {
		t.Fatalf("order = %v", order)
	}
}

func TestInterruptChargedToCurrentProc(t *testing.T) {
	eng, k := newTestKernel(t)
	victim := k.Spawn("victim", 0, func(p *Proc) {
		p.Compute(100 * 1000)
	})
	eng.At(5000, func() {
		k.PostHW(WorkItem{Cost: 1000})
	})
	eng.RunFor(sim.Second)
	if victim.IntrCharged != 1000 {
		t.Fatalf("victim charged %d µs of interrupt time, want 1000", victim.IntrCharged)
	}
	// The mis-charge raises scheduler-visible usage beyond actual CPU time.
	if victim.EstCPU() <= victim.UTime-victim.UTime { // estcpu decays; just check it was counted
		t.Logf("estcpu=%d", victim.EstCPU())
	}
}

func TestInterruptChargedToExplicitTarget(t *testing.T) {
	eng, k := newTestKernel(t)
	victim := k.Spawn("victim", 0, func(p *Proc) { p.Compute(100 * 1000) })
	other := k.Spawn("other", 0, func(p *Proc) { p.Sleep(&WaitQ{}) })
	eng.At(5000, func() {
		k.PostHW(WorkItem{Cost: 1000, ChargeTo: other})
	})
	eng.RunFor(100 * sim.Millisecond)
	if victim.IntrCharged != 0 {
		t.Fatalf("victim wrongly charged %d", victim.IntrCharged)
	}
	if other.IntrCharged != 1000 {
		t.Fatalf("target charged %d, want 1000", other.IntrCharged)
	}
}

func TestInterruptWhileIdleUnattributed(t *testing.T) {
	eng, k := newTestKernel(t)
	eng.At(100, func() { k.PostHW(WorkItem{Cost: 50}) })
	eng.RunFor(10 * sim.Millisecond)
	st := k.Stats()
	if st.IntrUnattributed != 50 {
		t.Fatalf("unattributed = %d, want 50", st.IntrUnattributed)
	}
	if st.IdleTime == 0 {
		t.Fatal("idle time not accounted")
	}
}

func TestSleepWakeup(t *testing.T) {
	eng, k := newTestKernel(t)
	wq := &WaitQ{}
	var wokeAt sim.Time
	k.Spawn("sleeper", 0, func(p *Proc) {
		p.Sleep(wq)
		wokeAt = p.Now()
	})
	eng.At(7000, func() { wq.WakeupAll() })
	eng.RunFor(sim.Second)
	if wokeAt != 7000 {
		t.Fatalf("woke at %d, want 7000", wokeAt)
	}
}

func TestSleepTimeout(t *testing.T) {
	eng, k := newTestKernel(t)
	wq := &WaitQ{}
	var timedOut bool
	var at sim.Time
	k.Spawn("sleeper", 0, func(p *Proc) {
		timedOut = p.SleepTimeout(wq, 3000)
		at = p.Now()
	})
	eng.RunFor(sim.Second)
	if !timedOut || at != 3000 {
		t.Fatalf("timedOut=%v at=%d", timedOut, at)
	}
	if wq.Len() != 0 {
		t.Fatal("timed-out proc still on wait queue")
	}
}

func TestSleepTimeoutWokenEarly(t *testing.T) {
	eng, k := newTestKernel(t)
	wq := &WaitQ{}
	var timedOut bool
	k.Spawn("sleeper", 0, func(p *Proc) {
		timedOut = p.SleepTimeout(wq, 50000)
	})
	eng.At(1000, func() { wq.WakeupAll() })
	eng.RunFor(sim.Second)
	if timedOut {
		t.Fatal("reported timeout despite early wakeup")
	}
}

func TestDelay(t *testing.T) {
	eng, k := newTestKernel(t)
	var at sim.Time
	p := k.Spawn("d", 0, func(p *Proc) {
		p.Delay(12345)
		at = p.Now()
	})
	eng.RunFor(sim.Second)
	if at != 12345 {
		t.Fatalf("delay ended at %d", at)
	}
	if p.CPUTime() != 0 {
		t.Fatalf("delay consumed CPU: %d", p.CPUTime())
	}
}

func TestPriorityPreemption(t *testing.T) {
	eng, k := newTestKernel(t)
	// A long-running CPU hog and a sleeper that wakes mid-run. After the
	// hog has accumulated usage, the fresh sleeper has better priority and
	// must preempt promptly (at the next dispatch opportunity).
	var hogDone, lightDone sim.Time
	k.Spawn("hog", 0, func(p *Proc) {
		p.Compute(3 * sim.Second)
		hogDone = p.Now()
	})
	wq := &WaitQ{}
	k.Spawn("light", 0, func(p *Proc) {
		p.Sleep(wq)
		p.Compute(100 * 1000)
		lightDone = p.Now()
	})
	eng.At(2*sim.Second, func() { wq.WakeupAll() })
	eng.RunFor(10 * sim.Second)
	if lightDone == 0 || hogDone == 0 {
		t.Fatal("processes did not finish")
	}
	// The light process should finish long before the hog's remaining
	// second of work stretches out; specifically it should not have to
	// wait for the hog to finish.
	if lightDone >= hogDone {
		t.Fatalf("light finished at %d, after hog at %d", lightDone, hogDone)
	}
}

func TestNicePenalty(t *testing.T) {
	eng, k := newTestKernel(t)
	// A nice +20 spinner must not materially delay a normal process.
	var normalDone sim.Time
	k.Spawn("spinner", 20, func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Compute(100 * 1000)
		}
	})
	k.Spawn("normal", 0, func(p *Proc) {
		p.Delay(500 * 1000) // arrive after spinner has the CPU
		p.Compute(1 * sim.Second)
		normalDone = p.Now()
	})
	eng.RunFor(20 * sim.Second)
	if normalDone == 0 {
		t.Fatal("normal process starved")
	}
	// Ideal completion at 1.5s; allow some slack for round-robin effects
	// before the priorities separate.
	if normalDone > 2*sim.Second {
		t.Fatalf("normal finished at %v, niced spinner interfered too much", normalDone)
	}
}

func TestRoundRobinSharesEqualPriority(t *testing.T) {
	eng, k := newTestKernel(t)
	var aDone, bDone sim.Time
	k.Spawn("a", 0, func(p *Proc) {
		p.Compute(1 * sim.Second)
		aDone = p.Now()
	})
	k.Spawn("b", 0, func(p *Proc) {
		p.Compute(1 * sim.Second)
		bDone = p.Now()
	})
	eng.RunFor(10 * sim.Second)
	if aDone == 0 || bDone == 0 {
		t.Fatal("did not finish")
	}
	// With fair sharing both finish near 2s, far from the serial schedule
	// where one finishes at 1s.
	if aDone < 1500*sim.Millisecond || bDone < 1500*sim.Millisecond {
		t.Fatalf("a=%d b=%d: scheduling was serial, not time-shared", aDone, bDone)
	}
}

func TestContextSwitchCost(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, "test")
	defer k.Shutdown()
	k.CtxSwitchCost = 100
	var aDone, bDone sim.Time
	k.Spawn("a", 0, func(p *Proc) { p.Compute(20 * 1000); aDone = p.Now() })
	k.Spawn("b", 0, func(p *Proc) { p.Compute(20 * 1000); bDone = p.Now() })
	eng.RunFor(sim.Second)
	// Both bursts are short enough that neither accumulates a priority
	// point, so the schedule is a, then b; only b pays a switch cost (a's
	// dispatch had no predecessor on the CPU).
	if aDone != 20*1000 {
		t.Fatalf("a done at %d", aDone)
	}
	if bDone != 40*1000+100 {
		t.Fatalf("b done at %d, want 40100", bDone)
	}
	if k.Stats().CtxSwitches != 1 {
		t.Fatalf("switches = %d", k.Stats().CtxSwitches)
	}
}

func TestCachePenalty(t *testing.T) {
	eng, k := newTestKernel(t)
	var done sim.Time
	p := k.Spawn("memory-bound", 0, func(p *Proc) {
		p.Compute(10 * 1000)
		done = p.Now()
	})
	p.CachePenalty = 500
	eng.At(2000, func() { k.PostHW(WorkItem{Cost: 100}) })
	eng.RunFor(sim.Second)
	// Interrupt work does not change lastOnCPU, so no cache refill charge
	// for interrupts (the penalty models losing the CPU to another proc).
	if p.CacheRefills != 0 {
		t.Fatalf("refills = %d from interrupt", p.CacheRefills)
	}
	if done != 10*1000+100 {
		t.Fatalf("done at %d", done)
	}
}

func TestCachePenaltyOnProcessSwitch(t *testing.T) {
	eng, k := newTestKernel(t)
	wq := &WaitQ{}
	var worker *Proc
	worker = k.Spawn("worker", 0, func(p *Proc) {
		p.Compute(400 * 1000)
	})
	worker.CachePenalty = 1000
	k.Spawn("intruder", 0, func(p *Proc) {
		p.Sleep(wq)
		p.Compute(1000)
	})
	eng.At(50*1000, func() { wq.WakeupAll() })
	eng.RunFor(5 * sim.Second)
	if worker.CacheRefills == 0 {
		t.Fatal("worker never paid a cache refill after losing the CPU")
	}
}

func TestPrioProxy(t *testing.T) {
	eng, k := newTestKernel(t)
	owner := k.Spawn("owner", 0, func(p *Proc) { p.Sleep(&WaitQ{}) })
	app := k.Spawn("app-thread", 0, func(p *Proc) { p.Sleep(&WaitQ{}) })
	app.PrioProxy = owner
	eng.RunFor(10 * sim.Millisecond)
	if app.Prio() != owner.Prio() {
		t.Fatalf("proxy prio %d != owner prio %d", app.Prio(), owner.Prio())
	}
}

func TestComputeSysForChargesOwner(t *testing.T) {
	eng, k := newTestKernel(t)
	owner := k.Spawn("owner", 0, func(p *Proc) { p.Sleep(&WaitQ{}) })
	k.Spawn("app-thread", 0, func(p *Proc) {
		p.ComputeSysFor(owner, 4000)
	})
	eng.RunFor(100 * sim.Millisecond)
	if owner.STime != 4000 {
		t.Fatalf("owner stime = %d, want 4000", owner.STime)
	}
	if owner.EstCPU() == 0 {
		t.Fatal("owner scheduler usage not charged")
	}
}

func TestDecayReducesUsage(t *testing.T) {
	eng, k := newTestKernel(t)
	p := k.Spawn("a", 0, func(p *Proc) {
		p.Compute(500 * 1000)
		p.Sleep(&WaitQ{})
	})
	eng.RunFor(900 * sim.Millisecond)
	before := p.EstCPU()
	eng.RunFor(3 * sim.Second)
	after := p.EstCPU()
	if before == 0 {
		t.Fatal("no usage accumulated")
	}
	if after >= before {
		t.Fatalf("usage did not decay: %d -> %d", before, after)
	}
}

func TestExit(t *testing.T) {
	eng, k := newTestKernel(t)
	p := k.Spawn("e", 0, func(p *Proc) {
		p.Compute(1000)
		p.Exit()
	})
	eng.RunFor(sim.Second)
	if !p.Dead() {
		t.Fatal("process not dead after Exit")
	}
	if p.ExitTime != 1000 {
		t.Fatalf("exit time %d", p.ExitTime)
	}
}

func TestNormalReturnExits(t *testing.T) {
	eng, k := newTestKernel(t)
	p := k.Spawn("r", 0, func(p *Proc) {})
	eng.RunFor(sim.Millisecond)
	if !p.Dead() {
		t.Fatal("process not dead after return")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	eng, k := newTestKernel(t)
	var childDone sim.Time
	k.Spawn("parent", 0, func(p *Proc) {
		p.Compute(1000)
		k.Spawn("child", 0, func(c *Proc) {
			c.Compute(2000)
			childDone = c.Now()
		})
		p.Compute(1000)
	})
	eng.RunFor(sim.Second)
	if childDone == 0 {
		t.Fatal("child never ran")
	}
}

func TestWakeupFromProcess(t *testing.T) {
	eng, k := newTestKernel(t)
	wq := &WaitQ{}
	var got sim.Time
	k.Spawn("sleeper", 0, func(p *Proc) {
		p.Sleep(wq)
		got = p.Now()
	})
	k.Spawn("waker", 0, func(p *Proc) {
		p.Compute(5000)
		wq.WakeupAll()
	})
	eng.RunFor(sim.Second)
	if got != 5000 {
		t.Fatalf("woke at %d, want 5000", got)
	}
}

func TestWakeupBestPicksHighestPriority(t *testing.T) {
	eng, k := newTestKernel(t)
	wq := &WaitQ{}
	var woken []string
	mk := func(name string, nice int) {
		k.Spawn(name, nice, func(p *Proc) {
			p.Sleep(wq)
			woken = append(woken, name)
		})
	}
	mk("low", 10)
	mk("high", 0)
	eng.At(50*sim.Millisecond, func() { wq.WakeupBest() })
	eng.RunFor(200 * sim.Millisecond)
	if len(woken) != 1 || woken[0] != "high" {
		t.Fatalf("woken = %v, want [high]", woken)
	}
}

func TestStatsBalance(t *testing.T) {
	eng, k := newTestKernel(t)
	k.Spawn("a", 0, func(p *Proc) { p.Compute(30 * 1000) })
	eng.At(1000, func() { k.PostHW(WorkItem{Cost: 2000}) })
	eng.At(2000, func() { k.PostSW(WorkItem{Cost: 3000}) })
	eng.RunFor(100 * sim.Millisecond)
	st := k.Stats()
	total := st.Busy() + st.IdleTime
	if total != eng.Now() {
		t.Fatalf("accounted %d µs of %d", total, eng.Now())
	}
	if st.HWTime != 2000 || st.SWTime != 3000 || st.ProcTime != 30*1000 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShutdownTerminatesGoroutines(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, "test")
	wq := &WaitQ{}
	k.Spawn("sleeper", 0, func(p *Proc) { p.Sleep(wq) })
	k.Spawn("computer", 0, func(p *Proc) { p.Compute(sim.Second) })
	k.Spawn("never-ran", 0, func(p *Proc) { p.Compute(1) })
	eng.RunFor(10 * sim.Millisecond)
	k.Shutdown() // must not hang
	for _, p := range k.Procs() {
		if !p.Dead() {
			t.Fatalf("proc %s alive after shutdown", p.Name)
		}
	}
}

func TestMisAccountingRaisesVictimUsage(t *testing.T) {
	// The scheduling-relevant consequence of BSD charging: a process that
	// merely suffers interrupts accumulates scheduler usage and loses
	// priority relative to an identical undisturbed process.
	eng, k := newTestKernel(t)
	victim := k.Spawn("victim", 0, func(p *Proc) { p.Compute(2 * sim.Second) })
	peer := k.Spawn("peer", 0, func(p *Proc) { p.Compute(2 * sim.Second) })
	// Steady interrupt load, always charged to curproc.
	var pump func()
	pump = func() {
		if eng.Now() > 900*sim.Millisecond {
			return
		}
		k.PostHW(WorkItem{Cost: 50})
		eng.After(200, pump)
	}
	eng.At(0, pump)
	eng.RunFor(900 * sim.Millisecond)
	tot := victim.IntrCharged + peer.IntrCharged
	if tot == 0 {
		t.Fatal("no interrupt time charged")
	}
	// Both run round-robin so both get charged; the sum must equal the
	// interrupt time delivered.
	if st := k.Stats(); st.HWTime != tot {
		t.Fatalf("hw time %d, charged %d", st.HWTime, tot)
	}
}
