// Package ipv4 implements IP-layer processing for the simulated stack:
// outbound fragmentation and inbound reassembly. Header construction and
// validation live in package pkt; routing is the network simulator's job.
//
// The reassembler supports the LRP fragment-channel protocol: when it is
// missing fragments, the caller can feed it packets from the special NI
// fragment channel ("The IP reassembly function checks this channel queue
// when it misses fragments during reassembly").
package ipv4

import (
	"sort"

	"lrp/internal/pkt"
)

// DefaultMTU is the link MTU: classical IP over ATM (RFC 1577) uses 9180.
const DefaultMTU = 9180

// ReassemblyTTL is how long a partial datagram is kept, in µs.
const ReassemblyTTL = 30 * 1000 * 1000

// Fragment splits an encoded IPv4 packet into fragments that fit mtu.
// If the packet already fits, it is returned unchanged as the only
// element. The DF bit is honoured: a too-big DF packet returns nil.
//
//lrp:coldalloc fragmentation allocates the fragment set by design; the ATM MTU (9180) keeps it off the common path
func Fragment(b []byte, mtu int) [][]byte {
	if len(b) <= mtu {
		return [][]byte{b}
	}
	ih, hlen, err := pkt.DecodeIPv4(b)
	if err != nil {
		return nil
	}
	if ih.Flags&pkt.FlagDontFragment != 0 {
		return nil
	}
	payload := b[hlen:int(ih.TotalLen)]
	// Payload bytes per fragment: multiple of 8.
	per := (mtu - hlen) &^ 7
	if per <= 0 {
		return nil
	}
	var out [][]byte
	for off := 0; off < len(payload); off += per {
		end := off + per
		more := true
		if end >= len(payload) {
			end = len(payload)
			more = false
		}
		fb := make([]byte, hlen+end-off)
		fh := ih
		fh.TotalLen = uint16(len(fb))
		fh.FragOff = ih.FragOff + uint16(off/8)
		if more || ih.MoreFragments() {
			fh.Flags |= pkt.FlagMoreFrags
		} else {
			fh.Flags &^= pkt.FlagMoreFrags
		}
		copy(fb[hlen:], payload[off:end])
		pkt.EncodeIPv4(fb, &fh)
		out = append(out, fb)
	}
	return out
}

// fragPiece is one received fragment's payload.
type fragPiece struct {
	off  int // byte offset within the datagram payload
	data []byte
	more bool
}

type reasmKey struct {
	src, dst pkt.Addr
	id       uint16
	proto    byte
}

type partial struct {
	pieces  []fragPiece
	expires int64
}

// Reassembler reconstructs fragmented datagrams.
type Reassembler struct {
	parts map[reasmKey]*partial

	// order lists keys in insertion order so expire scans are
	// deterministic (sim-core code must not range over maps). Keys whose
	// datagram completed leave tombstones; expire compacts them.
	order []reasmKey

	// Completed counts datagrams fully reassembled; Expired counts
	// partials dropped on timeout.
	Completed uint64
	Expired   uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{parts: make(map[reasmKey]*partial)}
}

// Pending returns the number of incomplete datagrams held.
func (r *Reassembler) Pending() int { return len(r.parts) }

// Input accepts one fragment (the full encoded IP packet). If the datagram
// is now complete it returns the reassembled packet (a fresh buffer with a
// rebuilt header) and true. Non-fragmented packets pass through untouched.
//
//lrp:coldalloc reassembly state and the rebuilt datagram are per-fragmented-packet allocations; fragmented traffic is the slow path
func (r *Reassembler) Input(b []byte, now int64) ([]byte, bool) {
	ih, hlen, err := pkt.DecodeIPv4(b)
	if err != nil {
		return nil, false
	}
	if !ih.IsFragment() {
		return b, true
	}
	r.expire(now)
	key := reasmKey{ih.Src, ih.Dst, ih.ID, ih.Proto}
	p := r.parts[key]
	if p == nil {
		p = &partial{expires: now + ReassemblyTTL}
		r.parts[key] = p
		r.order = append(r.order, key)
	}
	p.pieces = append(p.pieces, fragPiece{
		off:  int(ih.FragOff) * 8,
		data: append([]byte(nil), b[hlen:int(ih.TotalLen)]...),
		more: ih.MoreFragments(),
	})
	whole, ok := assemble(p.pieces)
	if !ok {
		return nil, false
	}
	delete(r.parts, key)
	r.Completed++
	// Rebuild a single packet with the original header, offset 0, MF clear.
	out := make([]byte, pkt.IPv4HeaderLen+len(whole))
	oh := ih
	oh.TotalLen = uint16(len(out))
	oh.Flags &^= pkt.FlagMoreFrags
	oh.FragOff = 0
	copy(out[pkt.IPv4HeaderLen:], whole)
	pkt.EncodeIPv4(out, &oh)
	return out, true
}

// assemble tries to stitch pieces into a contiguous payload ending at a
// piece with MF clear.
func assemble(pieces []fragPiece) ([]byte, bool) {
	sorted := append([]fragPiece(nil), pieces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].off < sorted[j].off })
	var out []byte
	next := 0
	sawLast := false
	for _, fp := range sorted {
		if fp.off > next {
			return nil, false // hole
		}
		if fp.off+len(fp.data) <= next {
			continue // full overlap / duplicate
		}
		out = append(out, fp.data[next-fp.off:]...)
		next = fp.off + len(fp.data)
		if !fp.more {
			sawLast = true
			break
		}
	}
	if !sawLast {
		return nil, false
	}
	return out, true
}

// MissingFor reports whether the reassembler holds an incomplete datagram
// matching the key — i.e. whether checking the LRP fragment channel could
// help.
func (r *Reassembler) MissingFor(src, dst pkt.Addr, id uint16, proto byte) bool {
	_, ok := r.parts[reasmKey{src, dst, id, proto}]
	return ok
}

// expire drops partial datagrams past their deadline. It scans the
// insertion-order key list, not the map, so the scan is deterministic;
// tombstones from completed datagrams are compacted on the same pass.
func (r *Reassembler) expire(now int64) {
	if len(r.parts) == 0 {
		r.order = r.order[:0]
		return
	}
	kept := r.order[:0]
	for _, k := range r.order {
		p, ok := r.parts[k]
		if !ok {
			continue // tombstone: datagram completed
		}
		if p.expires <= now {
			delete(r.parts, k)
			r.Expired++
			continue
		}
		kept = append(kept, k)
	}
	r.order = kept
}
