package ipv4

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lrp/internal/pkt"
)

var (
	src = pkt.IP(10, 0, 0, 1)
	dst = pkt.IP(10, 0, 0, 2)
)

func udpPacket(n int) []byte {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	return pkt.UDPPacket(src, dst, 1000, 2000, 42, 64, payload, false)
}

func TestFragmentSmallPassThrough(t *testing.T) {
	p := udpPacket(100)
	frags := Fragment(p, DefaultMTU)
	if len(frags) != 1 || &frags[0][0] != &p[0] {
		t.Fatal("small packet should pass through unchanged")
	}
}

func TestFragmentAndReassemble(t *testing.T) {
	p := udpPacket(25000)
	frags := Fragment(p, DefaultMTU)
	if len(frags) < 3 {
		t.Fatalf("got %d fragments", len(frags))
	}
	for _, f := range frags {
		if len(f) > DefaultMTU {
			t.Fatalf("fragment size %d exceeds MTU", len(f))
		}
		if _, _, err := pkt.DecodeIPv4(f); err != nil {
			t.Fatalf("fragment header invalid: %v", err)
		}
	}
	r := NewReassembler()
	var out []byte
	done := false
	for _, f := range frags {
		if o, ok := r.Input(f, 0); ok {
			out, done = o, true
		}
	}
	if !done {
		t.Fatal("reassembly incomplete")
	}
	if !bytes.Equal(out[pkt.IPv4HeaderLen:], p[pkt.IPv4HeaderLen:]) {
		t.Fatal("reassembled payload differs")
	}
	ih, _, err := pkt.DecodeIPv4(out)
	if err != nil || ih.IsFragment() {
		t.Fatalf("rebuilt header invalid: %+v %v", ih, err)
	}
	if r.Completed != 1 || r.Pending() != 0 {
		t.Fatalf("completed=%d pending=%d", r.Completed, r.Pending())
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	p := udpPacket(25000)
	frags := Fragment(p, DefaultMTU)
	r := NewReassembler()
	// Deliver in reverse.
	var out []byte
	done := false
	for i := len(frags) - 1; i >= 0; i-- {
		if o, ok := r.Input(frags[i], 0); ok {
			out, done = o, true
		}
	}
	if !done {
		t.Fatal("reverse-order reassembly failed")
	}
	if !bytes.Equal(out[pkt.IPv4HeaderLen:], p[pkt.IPv4HeaderLen:]) {
		t.Fatal("payload mismatch")
	}
}

func TestReassembleDuplicates(t *testing.T) {
	p := udpPacket(20000)
	frags := Fragment(p, DefaultMTU)
	r := NewReassembler()
	// Duplicate the first fragment.
	if _, ok := r.Input(frags[0], 0); ok {
		t.Fatal("incomplete datagram reported complete")
	}
	if _, ok := r.Input(frags[0], 0); ok {
		t.Fatal("duplicate should not complete")
	}
	var done bool
	for _, f := range frags[1:] {
		if _, ok := r.Input(f, 0); ok {
			done = true
		}
	}
	if !done {
		t.Fatal("reassembly with duplicates failed")
	}
}

func TestReassemblyHole(t *testing.T) {
	p := udpPacket(25000)
	frags := Fragment(p, DefaultMTU)
	r := NewReassembler()
	r.Input(frags[0], 0)
	// Skip the middle fragment.
	if _, ok := r.Input(frags[2], 0); ok {
		t.Fatal("hole not detected")
	}
	if !r.MissingFor(src, dst, 42, pkt.ProtoUDP) {
		t.Fatal("MissingFor should report the partial datagram")
	}
}

func TestReassemblyExpiry(t *testing.T) {
	p := udpPacket(25000)
	frags := Fragment(p, DefaultMTU)
	r := NewReassembler()
	r.Input(frags[0], 0)
	// A later packet (different IP ID) past the TTL triggers expiry of the
	// stale partial.
	other := pkt.UDPPacket(src, dst, 1000, 2000, 43, 64, make([]byte, 20000), false)
	of := Fragment(other, DefaultMTU)
	r.Input(of[0], ReassemblyTTL+1)
	if r.Expired != 1 {
		t.Fatalf("expired = %d", r.Expired)
	}
	if r.MissingFor(src, dst, 42, pkt.ProtoUDP) {
		t.Fatal("expired partial still present")
	}
}

func TestFragmentHonoursDF(t *testing.T) {
	payload := make([]byte, 20000)
	b := pkt.UDPPacket(src, dst, 1, 2, 7, 64, payload, false)
	// Set DF by re-encoding the header.
	ih, _, _ := pkt.DecodeIPv4(b)
	ih.Flags |= pkt.FlagDontFragment
	pkt.EncodeIPv4(b, &ih)
	if Fragment(b, DefaultMTU) != nil {
		t.Fatal("DF packet was fragmented")
	}
}

// Property: fragmentation and reassembly is the identity for any payload
// size, in any delivery order (forward/reverse).
func TestFragmentReassembleProperty(t *testing.T) {
	// Largest UDP payload representable in one IPv4 datagram: TotalLen is
	// a uint16, minus the IP and UDP headers. Sizes past it cannot be
	// encoded, so the generated size is clamped into the valid range.
	const maxPayload = 65535 - pkt.IPv4HeaderLen - pkt.UDPHeaderLen
	f := func(sz uint16, reverse bool) bool {
		n := int(sz) % (maxPayload + 1)
		p := udpPacket(n)
		frags := Fragment(p, DefaultMTU)
		if frags == nil {
			return false
		}
		r := NewReassembler()
		order := frags
		if reverse {
			order = make([][]byte, len(frags))
			for i, f := range frags {
				order[len(frags)-1-i] = f
			}
		}
		for i, f := range order {
			out, ok := r.Input(f, 0)
			if ok {
				return i == len(order)-1 && bytes.Equal(out[pkt.IPv4HeaderLen:], p[pkt.IPv4HeaderLen:])
			}
		}
		return false
	}
	// Seeded explicitly: the default quick source is wall-clock seeded,
	// which made this test flake whenever it happened to draw an
	// unencodable size.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Regression for the expire rewrite: expiry used to range over the parts
// map; it now walks the insertion-order key list, skipping tombstones left
// by completed datagrams, so the scan does identical work on every run.
func TestExpireCompactsCompletedTombstones(t *testing.T) {
	r := NewReassembler()
	frag := func(id uint16, size int) [][]byte {
		p := pkt.UDPPacket(src, dst, 1000, 2000, id, 64, make([]byte, size), false)
		return Fragment(p, DefaultMTU)
	}
	// Complete 40 datagrams: each leaves a tombstone in the order list.
	for id := uint16(0); id < 40; id++ {
		done := false
		for _, f := range frag(id, 20000) {
			if _, ok := r.Input(f, 0); ok {
				done = true
			}
		}
		if !done {
			t.Fatalf("datagram %d did not complete", id)
		}
	}
	if r.Completed != 40 || r.Pending() != 0 {
		t.Fatalf("completed=%d pending=%d", r.Completed, r.Pending())
	}
	// Two partials started now, one started past the TTL. The late input
	// triggers expiry: exactly the two stale partials are dropped, the
	// tombstones are compacted, and completed datagrams are not counted.
	r.Input(frag(100, 20000)[0], 0)
	r.Input(frag(101, 20000)[0], 0)
	r.Input(frag(102, 20000)[0], ReassemblyTTL+1)
	if r.Expired != 2 {
		t.Fatalf("expired=%d, want 2", r.Expired)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending=%d, want 1", r.Pending())
	}
	if len(r.order) != 1 || r.order[0].id != 102 {
		t.Fatalf("order=%v, want exactly the surviving key (id 102)", r.order)
	}
	if r.MissingFor(src, dst, 100, pkt.ProtoUDP) || !r.MissingFor(src, dst, 102, pkt.ProtoUDP) {
		t.Fatal("expiry dropped the wrong partials")
	}
}
