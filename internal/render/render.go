// Package render formats result payloads as the text tables lrpbench
// prints. It is a separate package so the CLI and the archive
// regression tests share one renderer: the tests re-run the suite
// in-process and compare against results/lrpbench_full.txt
// byte-for-byte, which only means anything if both paths print through
// the same code.
package render

import (
	"fmt"
	"io"

	"lrp/internal/plot"
	"lrp/internal/results"
)

// Options tunes rendering.
type Options struct {
	// Plot renders ASCII charts above the figures' tables.
	Plot bool
}

// Suite prints every experiment in s the way `lrpbench all` does: each
// payload's table, with a blank line after each when there is more than
// one.
func Suite(w io.Writer, s *results.Suite, o Options) {
	for _, e := range s.Experiments {
		Experiment(w, e, o)
		if len(s.Experiments) > 1 {
			fmt.Fprintln(w)
		}
	}
}

// Experiment prints one experiment's table.
func Experiment(w io.Writer, e results.Experiment, o Options) {
	switch e.Name {
	case "table1":
		printTable1(w, e.Table1)
	case "fig3":
		printFig3(w, e.Fig3, o)
	case "mlfrr":
		printMLFRR(w, e.MLFRR)
	case "fig4":
		printFig4(w, e.Fig4, o)
	case "table2":
		printTable2(w, e.Table2)
	case "fig5":
		printFig5(w, e.Fig5, o)
	case "ablations":
		printAblations(w, e.Ablations)
	case "media":
		printMedia(w, e.Media)
	case "faults":
		printFaults(w, e.Faults)
	case "smp":
		printSMP(w, e.SMP)
	case "wan":
		printWAN(w, e.WAN)
	}
}

func printTable1(w io.Writer, rows []results.Table1Row) {
	fmt.Fprintln(w, "Table 1: Throughput and Latency")
	fmt.Fprintln(w, "(paper: RTT 1006/855/840/864 µs; UDP 64/82/92/86 Mbps; TCP 63/69/67/66 Mbps)")
	fmt.Fprintf(w, "%-22s %14s %16s %16s\n", "System", "RTT (µs)", "UDP (Mbit/s)", "TCP (Mbit/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %12.0f %16.1f %16.1f\n", r.System, r.RTTMicros, r.UDPMbps, r.TCPMbps)
	}
}

func printFig3(w io.Writer, series []results.Fig3Series, o Options) {
	fmt.Fprintln(w, "Figure 3: Throughput versus offered load (14-byte UDP, pkts/s)")
	if o.Plot {
		c := plot.Chart{Title: "Figure 3", XLabel: "offered rate (pkts/s)", YLabel: "delivered (pkts/s)", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				xs = append(xs, float64(p.Offered))
				ys = append(ys, p.Delivered)
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Fprintln(w, c.Render())
	}
	fmt.Fprintf(w, "%-10s", "offered")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", s.System)
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-10d", series[0].Points[i].Offered)
		for _, s := range series {
			fmt.Fprintf(w, " %12.0f", s.Points[i].Delivered)
		}
		fmt.Fprintln(w)
	}
}

func printMLFRR(w io.Writer, rows []results.MLFRRRow) {
	fmt.Fprintln(w, "Maximum Loss-Free Receive Rate (paper: SOFT-LRP 9210 vs BSD 6380, +44%)")
	fmt.Fprintf(w, "%-14s %10s %12s\n", "System", "MLFRR", "Peak (pkt/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10d %12.0f\n", r.System, r.MLFRR, r.Peak)
	}
}

func printFig4(w io.Writer, series []results.Fig4Series, o Options) {
	fmt.Fprintln(w, "Figure 4: Latency with concurrent load (µs round trip; * = probes lost)")
	if o.Plot {
		c := plot.Chart{Title: "Figure 4", XLabel: "background rate (pkts/s)", YLabel: "round trip (µs)", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				if p.RTTMicros > 0 {
					xs = append(xs, float64(p.BgRate))
					ys = append(ys, p.RTTMicros)
				}
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Fprintln(w, c.Render())
	}
	fmt.Fprintf(w, "%-10s", "bg pkt/s")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", s.System)
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-10d", series[0].Points[i].BgRate)
		for _, s := range series {
			mark := ""
			if s.Points[i].Lost > 0 {
				mark = "*"
			}
			fmt.Fprintf(w, " %11.0f%1s", s.Points[i].RTTMicros, mark)
		}
		fmt.Fprintln(w)
	}
}

func printTable2(w io.Writer, rows []results.Table2Row) {
	fmt.Fprintln(w, "Table 2: Synthetic RPC Server Workload")
	fmt.Fprintln(w, "(paper Fast: elapsed 49.7/34.6/38.7 s; shares 23-26% BSD vs 29-33% LRP)")
	fmt.Fprintf(w, "%-8s %-12s %16s %14s %14s\n", "RPC", "System", "Worker (s)", "RPCs/s", "Worker share")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-12s %16.1f %14.0f %13.1f%%\n",
			r.Workload, r.System, r.WorkerElapsed, r.ServerRPCRate, r.WorkerShare*100)
	}
}

func printFig5(w io.Writer, series []results.Fig5Series, o Options) {
	fmt.Fprintln(w, "Figure 5: HTTP Server Throughput under SYN flood (transfers/s)")
	fmt.Fprintln(w, "(paper: BSD livelocks near 10k SYN/s; LRP keeps ~50% at 20k)")
	if o.Plot {
		c := plot.Chart{Title: "Figure 5", XLabel: "SYN rate (pkts/s)", YLabel: "HTTP transfers/s", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				xs = append(xs, float64(p.SYNRate))
				ys = append(ys, p.HTTPPerSec)
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Fprintln(w, c.Render())
	}
	fmt.Fprintf(w, "%-10s", "SYN/s")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", s.System)
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-10d", series[0].Points[i].SYNRate)
		for _, s := range series {
			fmt.Fprintf(w, " %12.1f", s.Points[i].HTTPPerSec)
		}
		fmt.Fprintln(w)
	}
}

func printAblations(w io.Writer, rows []results.AblationRow) {
	fmt.Fprintln(w, "Ablations: isolating LRP's individual design choices")
	fmt.Fprintf(w, "%-16s %-20s %-22s %10s\n", "experiment", "variant", "metric", "value")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-20s %-22s %10.1f\n", r.Experiment, r.Variant, r.Metric, r.Value)
	}
}

func printMedia(w io.Writer, rows []results.MediaRow) {
	fmt.Fprintln(w, "Media stream (30 fps) delivery jitter vs background blast")
	fmt.Fprintf(w, "%-12s %10s %14s %12s\n", "System", "bg pkt/s", "mean jitter µs", "p99 µs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %14.0f %12d\n", r.System, r.BgRate, r.MeanJitterUs, r.P99JitterUs)
	}
}

func printSMP(w io.Writer, series []results.SMPSeries) {
	fmt.Fprintln(w, "Multi-core scaling: single-queue vs RSS multi-queue receive")
	fmt.Fprintf(w, "%-10s %-8s %6s %12s %14s %8s %8s %8s %8s\n",
		"System", "queues", "cores", "offered", "goodput pkt/s", "p99 µs", "ipis", "steals", "wakes")
	for _, s := range series {
		for _, p := range s.Points {
			p99 := fmt.Sprintf("%d", p.P99Us)
			if p.P99Us < 0 {
				p99 = "-"
			}
			fmt.Fprintf(w, "%-10s %-8s %6d %12d %14.0f %8s %8d %8d %8d\n",
				s.System, s.Queues, p.Cores, p.OfferedPps, p.GoodputPps, p99, p.IPIs, p.Steals, p.RemoteWakes)
		}
	}
}

func printWAN(w io.Writer, series []results.WANSeries) {
	fmt.Fprintln(w, "Internet-scale sweep: aggregated client populations through multi-hop topologies")
	fmt.Fprintln(w, "(gateways run the same kernel as the server; eager processing livelocks per hop)")
	fmt.Fprintf(w, "%-24s %-10s %8s %6s %10s %14s %10s %10s %10s\n",
		"Topology", "System", "clients", "procs", "offered", "goodput pkt/s", "srv drops", "gw drops", "forwarded")
	for _, s := range series {
		name := s.Topology
		if s.Impaired != "" {
			name += "+" + s.Impaired
		}
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-24s %-10s %8d %6d %10d %14.0f %10d %10d %10d\n",
				name, s.System, s.Clients, s.Procs, p.OfferedPps, p.GoodputPps, p.ServerDrops, p.GwDrops, p.Forwarded)
		}
	}
}

func printFaults(w io.Writer, curves []results.FaultCurve) {
	fmt.Fprintln(w, "Robustness curves: per-architecture behavior under injected faults")
	for i, cv := range curves {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s — severity axis: %s\n", cv.Impairment, cv.Axis)
		if cv.Impairment == "tcp-reorder" {
			fmt.Fprintf(w, "%-14s %10s %12s\n", "System", "severity", "TCP Mbit/s")
			for _, s := range cv.Series {
				for _, p := range s.Points {
					fmt.Fprintf(w, "%-14s %10g %12.1f\n", s.System, p.Severity, p.TCPMbps)
				}
			}
			continue
		}
		fmt.Fprintf(w, "%-14s %10s %14s %10s %8s %8s\n",
			"System", "severity", "goodput pkt/s", "p99 µs", "lost", "victim")
		for _, s := range cv.Series {
			for _, p := range s.Points {
				p99 := fmt.Sprintf("%d", p.P99Us)
				if p.P99Us < 0 {
					p99 = "-"
				}
				fmt.Fprintf(w, "%-14s %10g %14.0f %10s %8d %7.1f%%\n",
					s.System, p.Severity, p.GoodputPps, p99, p.ProbesLost, p.VictimShare*100)
			}
		}
	}
}
