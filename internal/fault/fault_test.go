package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/sim"
)

// applyN runs n packets through p at 1µs spacing starting at t0 and
// returns the verdicts.
func applyN(p *Pipeline, t0 sim.Time, n int) []Verdict {
	vs := make([]Verdict, n)
	for i := range vs {
		vs[i] = p.Apply(t0 + sim.Time(i))
	}
	return vs
}

func countDrops(vs []Verdict) int {
	n := 0
	for _, v := range vs {
		if v.Drop {
			n++
		}
	}
	return n
}

func TestBernoulliLossRate(t *testing.T) {
	p := MustNew(LossPlan(1, 0.3))
	const N = 20000
	drops := countDrops(applyN(p, 0, N))
	if frac := float64(drops) / N; frac < 0.27 || frac > 0.33 {
		t.Fatalf("loss fraction %.3f, want ~0.30", frac)
	}
	if s := p.Stats(); s.Dropped != uint64(drops) || s.Applied != N {
		t.Fatalf("stats %+v disagree with %d observed drops", s, drops)
	}
}

func TestLossZeroAndOne(t *testing.T) {
	if countDrops(applyN(MustNew(LossPlan(1, 0)), 0, 1000)) != 0 {
		t.Fatal("rate 0 dropped packets")
	}
	if countDrops(applyN(MustNew(LossPlan(1, 1)), 0, 1000)) != 1000 {
		t.Fatal("rate 1 passed packets")
	}
}

// meanBurstLen returns the average length of runs of consecutive drops.
func meanBurstLen(vs []Verdict) float64 {
	bursts, total, run := 0, 0, 0
	for _, v := range vs {
		if v.Drop {
			run++
			continue
		}
		if run > 0 {
			bursts++
			total += run
			run = 0
		}
	}
	if run > 0 {
		bursts++
		total += run
	}
	if bursts == 0 {
		return 0
	}
	return float64(total) / float64(bursts)
}

func TestGilbertElliottLossAndBurstiness(t *testing.T) {
	const N = 50000
	const target = 0.2
	ge := applyN(MustNew(GilbertElliottPlan(7, target, 10)), 0, N)
	if frac := float64(countDrops(ge)) / N; frac < 0.15 || frac > 0.25 {
		t.Fatalf("GE long-run loss %.3f, want ~%.2f", frac, target)
	}
	// The defining property: at equal average loss, GE drops cluster.
	// Bernoulli mean run length at rate L is 1/(1-L) ≈ 1.25; GE with mean
	// dwell 10 should be several times that.
	bern := applyN(MustNew(LossPlan(7, target)), 0, N)
	geBurst, bernBurst := meanBurstLen(ge), meanBurstLen(bern)
	if geBurst < 2*bernBurst {
		t.Fatalf("GE mean burst %.2f not clearly burstier than Bernoulli %.2f", geBurst, bernBurst)
	}
}

func TestReorderSelection(t *testing.T) {
	p := MustNew(ReorderPlan(3, 0.25, 500))
	const N = 20000
	vs := applyN(p, 0, N)
	held := 0
	for _, v := range vs {
		if v.Drop || v.Duplicate || v.Corrupt {
			t.Fatalf("reorder produced a foreign effect: %+v", v)
		}
		if v.ExtraDelayUs != 0 {
			if v.ExtraDelayUs != 500 {
				t.Fatalf("held packet delayed %dµs, want 500", v.ExtraDelayUs)
			}
			held++
		}
	}
	if frac := float64(held) / N; frac < 0.22 || frac > 0.28 {
		t.Fatalf("reorder fraction %.3f, want ~0.25", frac)
	}
	if p.Stats().Reordered != uint64(held) {
		t.Fatalf("stats %+v disagree with %d held", p.Stats(), held)
	}
}

func TestDuplicateSelection(t *testing.T) {
	p := MustNew(DuplicatePlan(4, 0.1, 40))
	const N = 20000
	dups := 0
	for _, v := range applyN(p, 0, N) {
		if v.Duplicate {
			if v.DupDelayUs != 40 {
				t.Fatalf("copy gap %dµs, want 40", v.DupDelayUs)
			}
			dups++
		}
	}
	if frac := float64(dups) / N; frac < 0.08 || frac > 0.12 {
		t.Fatalf("duplicate fraction %.3f, want ~0.10", frac)
	}
}

func TestCorruptSelection(t *testing.T) {
	p := MustNew(CorruptPlan(5, 0.15))
	const N = 20000
	bad := 0
	for _, v := range applyN(p, 0, N) {
		if v.Corrupt {
			bad++
		}
	}
	if frac := float64(bad) / N; frac < 0.12 || frac > 0.18 {
		t.Fatalf("corrupt fraction %.3f, want ~0.15", frac)
	}
}

func TestJitterDistribution(t *testing.T) {
	const bound = 200
	p := MustNew(JitterPlan(6, bound))
	const N = 20000
	var sum int64
	for _, v := range applyN(p, 0, N) {
		if v.ExtraDelayUs < 0 || v.ExtraDelayUs > bound {
			t.Fatalf("jitter %dµs outside [0, %d]", v.ExtraDelayUs, bound)
		}
		sum += v.ExtraDelayUs
	}
	if mean := float64(sum) / N; mean < 0.9*bound/2 || mean > 1.1*bound/2 {
		t.Fatalf("jitter mean %.1fµs, want ~%d", mean, bound/2)
	}
}

func TestFlapTimeline(t *testing.T) {
	// 100µs down / 300µs up starting at t=1000: the outage windows are
	// exact clock arithmetic, no randomness.
	p := MustNew(Plan{Seed: 1, Segments: []Segment{{
		Kind: KindFlap, Start: 1000, DownUs: 100, UpUs: 300,
	}}})
	for _, tc := range []struct {
		at   sim.Time
		drop bool
	}{
		{0, false},    // before the segment starts
		{999, false},  // still before
		{1000, true},  // first down window opens
		{1099, true},  // last µs of the outage
		{1100, false}, // link back up
		{1399, false}, // end of the up window
		{1400, true},  // second cycle's outage
		{1500, false},
	} {
		if got := p.Apply(tc.at).Drop; got != tc.drop {
			t.Fatalf("flap at %dµs: drop=%v, want %v", tc.at, got, tc.drop)
		}
	}
	if p.Stats().FlapDrops != 3 {
		t.Fatalf("FlapDrops = %d, want 3", p.Stats().FlapDrops)
	}
}

func TestSegmentWindowActivation(t *testing.T) {
	// Total loss, but only over [100, 200).
	p := MustNew(Plan{Seed: 1, Segments: []Segment{{
		Kind: KindLoss, Rate: 1, Start: 100, End: 200,
	}}})
	for _, tc := range []struct {
		at   sim.Time
		drop bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if got := p.Apply(tc.at).Drop; got != tc.drop {
			t.Fatalf("at %dµs: drop=%v, want %v", tc.at, got, tc.drop)
		}
	}
}

func TestPipelineDeterministic(t *testing.T) {
	plan := Plan{Seed: 99, Segments: []Segment{
		{Kind: KindGilbertElliott, PGoodBad: 0.02, PBadGood: 0.1, BadLoss: 1},
		{Kind: KindReorder, Rate: 0.1, DelayUs: 300},
		{Kind: KindJitter, JitterUs: 50},
		{Kind: KindDuplicate, Rate: 0.05, DelayUs: 20},
		{Kind: KindCorrupt, Rate: 0.05},
	}}
	a := applyN(MustNew(plan), 0, 5000)
	b := applyN(MustNew(plan), 0, 5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical plans produced different verdict sequences")
	}
}

func TestSegmentStreamsIndependent(t *testing.T) {
	// Appending a jitter segment must not change the loss segment's
	// decisions: each segment draws from its own forked stream.
	lossOnly := applyN(MustNew(Plan{Seed: 5, Segments: []Segment{
		{Kind: KindLoss, Rate: 0.3},
	}}), 0, 2000)
	withJitter := applyN(MustNew(Plan{Seed: 5, Segments: []Segment{
		{Kind: KindLoss, Rate: 0.3},
		{Kind: KindJitter, JitterUs: 100},
	}}), 0, 2000)
	for i := range lossOnly {
		if lossOnly[i].Drop != withJitter[i].Drop {
			t.Fatalf("loss decision %d changed when a jitter segment was added", i)
		}
	}
}

func TestNewBernoulliMatchesLegacyDraws(t *testing.T) {
	// The SetLoss shim must consume exactly one Float64 per packet from
	// the caller's generator and make the same decisions the legacy
	// inline check made.
	p := NewBernoulli(0.4, sim.NewRand(123))
	legacy := sim.NewRand(123)
	for i := 0; i < 5000; i++ {
		want := legacy.Float64() < 0.4
		if got := p.Apply(sim.Time(i)).Drop; got != want {
			t.Fatalf("packet %d: shim drop=%v, legacy drop=%v", i, got, want)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plan := Plan{Seed: 42, Segments: []Segment{
		{Kind: KindGilbertElliott, PGoodBad: 0.01, PBadGood: 0.2, BadLoss: 1, Start: 10, End: 5000},
		{Kind: KindFlap, DownUs: 100, UpUs: 900},
	}}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, back) {
		t.Fatalf("round trip changed the plan:\n  in  %+v\n  out %+v", plan, back)
	}
	// The empty plan still encodes segments as a list.
	data, err = json.Marshal(Plan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"seed":1,"segments":[]}` {
		t.Fatalf("empty plan encoding %s", data)
	}
}

func TestPlanValidation(t *testing.T) {
	for name, plan := range map[string]Plan{
		"unknown kind":   {Segments: []Segment{{Kind: "gremlins"}}},
		"rate above one": {Segments: []Segment{{Kind: KindLoss, Rate: 1.5}}},
		"negative rate":  {Segments: []Segment{{Kind: KindCorrupt, Rate: -0.1}}},
		"empty window":   {Segments: []Segment{{Kind: KindLoss, Start: 50, End: 50}}},
		"no delay":       {Segments: []Segment{{Kind: KindReorder, Rate: 0.1}}},
		"no jitter":      {Segments: []Segment{{Kind: KindJitter}}},
		"no flap period": {Segments: []Segment{{Kind: KindFlap, DownUs: 10}}},
		"bad ge prob":    {Segments: []Segment{{Kind: KindGilbertElliott, PGoodBad: 2}}},
	} {
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, plan)
		}
		if _, err := New(plan); err == nil {
			t.Errorf("%s: New accepted %+v", name, plan)
		}
	}
	good := GilbertElliottPlan(1, 0.1, 8)
	if err := good.Validate(); err != nil {
		t.Fatalf("builder plan rejected: %v", err)
	}
}

// --- host-side faults -------------------------------------------------------

func TestRingOverrunDropRate(t *testing.T) {
	eng := sim.NewEngine()
	n := nic.New(eng, nic.Config{Name: "eth0"})
	_, err := InstallNIC(eng, n, nil, NICPlan{
		Seed:        11,
		RingOverrun: []RingFault{{Rate: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pktb := make([]byte, 64)
	const N = 10000
	for i := 0; i < N; i++ {
		n.Rx(pktb)
		if m := n.RxDequeue(); m != nil {
			m.Free()
		}
		n.IntrDone()
	}
	s := n.Stats()
	if s.RxPackets != N {
		t.Fatalf("RxPackets = %d, want %d", s.RxPackets, N)
	}
	if frac := float64(s.FaultDrops) / N; frac < 0.46 || frac > 0.54 {
		t.Fatalf("ring-overrun drop fraction %.3f, want ~0.50", frac)
	}
}

func TestRingOverrunWindow(t *testing.T) {
	eng := sim.NewEngine()
	n := nic.New(eng, nic.Config{Name: "eth0"})
	if _, err := InstallNIC(eng, n, nil, NICPlan{
		RingOverrun: []RingFault{{Rate: 1, Start: 100, End: 200}},
	}); err != nil {
		t.Fatal(err)
	}
	pktb := make([]byte, 64)
	drain := func() bool {
		m := n.RxDequeue()
		if m != nil {
			m.Free()
		}
		n.IntrDone()
		return m != nil
	}
	n.Rx(pktb) // t=0: before the window
	if !drain() {
		t.Fatal("packet before the fault window was dropped")
	}
	eng.At(150, func() { n.Rx(pktb) })
	eng.RunUntil(150)
	if drain() {
		t.Fatal("packet inside the fault window survived")
	}
	eng.At(250, func() { n.Rx(pktb) })
	eng.RunUntil(250)
	if !drain() {
		t.Fatal("packet after the fault window was dropped")
	}
}

func TestSpuriousInterrupts(t *testing.T) {
	eng := sim.NewEngine()
	n := nic.New(eng, nic.Config{Name: "eth0"})
	h, err := InstallNIC(eng, n, nil, NICPlan{
		SpuriousIntrs: []IntrFault{{Start: 0, End: 1000, PeriodUs: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5000)
	// Fires at 0, 100, ..., 900 — the t=1000 firing sees End and stops.
	if h.SpuriousRaised != 10 {
		t.Fatalf("SpuriousRaised = %d, want 10", h.SpuriousRaised)
	}
	if s := n.Stats(); s.HostIntrs != 10 {
		t.Fatalf("HostIntrs = %d, want 10", s.HostIntrs)
	}
}

func TestPoolPressureWindow(t *testing.T) {
	eng := sim.NewEngine()
	pool := mbuf.NewPool(10)
	n := nic.New(eng, nic.Config{Name: "eth0", Pool: pool})
	if _, err := InstallNIC(eng, n, pool, NICPlan{
		PoolPressure: []PressureFault{{Start: 100, End: 200, Amount: 8}},
	}); err != nil {
		t.Fatal(err)
	}
	fill := func() int {
		var ms []*mbuf.Mbuf
		for {
			m := pool.Alloc(nil)
			if m == nil {
				break
			}
			ms = append(ms, m)
		}
		for _, m := range ms {
			m.Free()
		}
		return len(ms)
	}
	got := make(map[sim.Time]int)
	for _, at := range []sim.Time{50, 150, 250} {
		at := at
		eng.At(at, func() { got[at] = fill() })
	}
	eng.Run()
	if got[50] != 10 || got[150] != 2 || got[250] != 10 {
		t.Fatalf("effective pool capacity before/during/after pressure = %d/%d/%d, want 10/2/10", got[50], got[150], got[250])
	}
}

func TestNICPlanValidation(t *testing.T) {
	eng := sim.NewEngine()
	n := nic.New(eng, nic.Config{Name: "eth0"})
	for name, plan := range map[string]NICPlan{
		"bad ring rate":    {RingOverrun: []RingFault{{Rate: 2}}},
		"bad ring window":  {RingOverrun: []RingFault{{Rate: 0.5, Start: 10, End: 5}}},
		"no intr period":   {SpuriousIntrs: []IntrFault{{}}},
		"no pressure amt":  {PoolPressure: []PressureFault{{}}},
		"pressure no pool": {PoolPressure: []PressureFault{{Amount: 5}}},
	} {
		if _, err := InstallNIC(eng, n, nil, plan); err == nil {
			t.Errorf("%s: InstallNIC accepted %+v", name, plan)
		}
	}
}
