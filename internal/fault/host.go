package fault

import (
	"fmt"

	"lrp/internal/mbuf"
	"lrp/internal/nic"
	"lrp/internal/sim"
	"lrp/internal/trace"
)

// RingFault drops each packet arriving at the adaptor with probability
// Rate over [Start, End), modelling a DMA engine overrunning its
// descriptor ring: the packet is gone before any host buffer is
// allocated and before the host spends a cycle on it.
type RingFault struct {
	Start sim.Time `json:"start_us,omitempty"`
	End   sim.Time `json:"end_us,omitempty"`
	Rate  float64  `json:"rate"`
}

// IntrFault raises a spurious host interrupt (no packet behind it) every
// PeriodUs over [Start, End), modelling a glitching interrupt line. The
// host pays the full interrupt entry/exit cost to discover an empty
// ring.
type IntrFault struct {
	Start    sim.Time `json:"start_us,omitempty"`
	End      sim.Time `json:"end_us,omitempty"`
	PeriodUs int64    `json:"period_us"`
}

// PressureFault withholds Amount buffers from the host mbuf pool over
// [Start, End), modelling transient external demand (another interface's
// burst) exhausting the shared pool.
type PressureFault struct {
	Start  sim.Time `json:"start_us,omitempty"`
	End    sim.Time `json:"end_us,omitempty"`
	Amount int      `json:"amount"`
}

// NICPlan scripts host-side faults for one adaptor, as Plan does for one
// link. End == 0 on any entry means "until the end of the run".
// PoolPressure windows must not overlap one another.
type NICPlan struct {
	Seed          uint64          `json:"seed"`
	RingOverrun   []RingFault     `json:"ring_overrun,omitempty"`
	SpuriousIntrs []IntrFault     `json:"spurious_intrs,omitempty"`
	PoolPressure  []PressureFault `json:"pool_pressure,omitempty"`
}

// Validate checks windows and parameters.
func (p *NICPlan) Validate() error {
	window := func(what string, i int, start, end sim.Time) error {
		if start < 0 || end < 0 || (end != 0 && end <= start) {
			return fmt.Errorf("fault: %s %d: window [%d, %d) is empty or negative", what, i, start, end)
		}
		return nil
	}
	for i, f := range p.RingOverrun {
		if err := window("ring_overrun", i, f.Start, f.End); err != nil {
			return err
		}
		if err := probability("ring_overrun", "rate", f.Rate); err != nil {
			return err
		}
	}
	for i, f := range p.SpuriousIntrs {
		if err := window("spurious_intrs", i, f.Start, f.End); err != nil {
			return err
		}
		if f.PeriodUs <= 0 {
			return fmt.Errorf("fault: spurious_intrs %d: period_us must be positive", i)
		}
	}
	for i, f := range p.PoolPressure {
		if err := window("pool_pressure", i, f.Start, f.End); err != nil {
			return err
		}
		if f.Amount <= 0 {
			return fmt.Errorf("fault: pool_pressure %d: amount must be positive", i)
		}
	}
	return nil
}

// HostFaults is a compiled NICPlan installed against a live adaptor.
type HostFaults struct {
	// SpuriousRaised counts spurious interrupts delivered so far; ring
	// overrun drops appear in the NIC's own Stats.FaultDrops, and pool
	// pressure effects in the pool's failure counter.
	SpuriousRaised uint64

	// Trace, when non-nil, receives KindFault events on pressure and
	// interrupt-burst edges — never per packet.
	Trace *trace.Log

	eng  *sim.Engine
	n    *nic.NIC
	ring []ringStage
}

type ringStage struct {
	f   RingFault
	rng *sim.Rand
}

// InstallNIC compiles plan and arms it against n: the ring-overrun hook
// is installed now, and spurious-interrupt and pool-pressure events are
// scheduled on eng. pool may be nil when the plan has no pressure
// windows. Call before the run starts (windows beginning before "now"
// are clamped to start immediately).
func InstallNIC(eng *sim.Engine, n *nic.NIC, pool *mbuf.Pool, plan NICPlan) (*HostFaults, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(plan.PoolPressure) > 0 && pool == nil {
		return nil, fmt.Errorf("fault: plan has pool_pressure windows but no pool")
	}
	h := &HostFaults{eng: eng, n: n}
	base := sim.NewRand(plan.Seed)
	for i, f := range plan.RingOverrun {
		h.ring = append(h.ring, ringStage{f: f, rng: base.Fork(uint64(i))})
	}
	if len(h.ring) > 0 {
		n.RxFault = h.rxFault
	}
	at := func(t sim.Time, fn func()) {
		if t < eng.Now() {
			t = eng.Now()
		}
		eng.At(t, fn)
	}
	for i := range plan.SpuriousIntrs {
		f := plan.SpuriousIntrs[i]
		// Each storm is a self-chained strictly-forward sequence with one
		// event outstanding, so it rides its own engine lane.
		lane := eng.NewLane()
		var fire func()
		fire = func() {
			if f.End != 0 && eng.Now() >= f.End {
				return
			}
			h.SpuriousRaised++
			if h.Trace != nil {
				h.Trace.Add(trace.KindFault, "spurious interrupt") //lrp:coldalloc vararg boxing; only reached with tracing enabled
			}
			n.RaiseIntr()
			lane.Post(eng.Now()+sim.Time(f.PeriodUs), fire)
		}
		start := f.Start
		if start < eng.Now() {
			start = eng.Now()
		}
		lane.Post(start, fire)
	}
	for i := range plan.PoolPressure {
		f := plan.PoolPressure[i]
		at(f.Start, func() {
			pool.SetPressure(f.Amount)
			if h.Trace != nil {
				h.Trace.Add(trace.KindFault, "pool pressure on: %d withheld", f.Amount) //lrp:coldalloc vararg boxing; only reached with tracing enabled
			}
		})
		if f.End != 0 {
			at(f.End, func() {
				pool.SetPressure(0)
				if h.Trace != nil {
					h.Trace.Add(trace.KindFault, "pool pressure off") //lrp:coldalloc vararg boxing; only reached with tracing enabled
				}
			})
		}
	}
	return h, nil
}

// rxFault is the NIC receive hook: true means drop this packet at the
// adaptor. Every active window consumes exactly one draw per packet so
// each window's stream tracks the arrival sequence alone.
//
//lrp:hotpath
func (h *HostFaults) rxFault() bool {
	drop := false
	now := h.eng.Now()
	for i := range h.ring {
		st := &h.ring[i]
		if now < st.f.Start || (st.f.End != 0 && now >= st.f.End) {
			continue
		}
		if st.f.Rate > 0 && st.rng.Float64() < st.f.Rate {
			drop = true
		}
	}
	return drop
}
