package fault

import (
	"testing"

	"lrp/internal/nic"
	"lrp/internal/race"
	"lrp/internal/sim"
)

var verdictSink Verdict

// TestApplyZeroAllocs pins the per-packet pipeline hot path at zero
// allocations: a full pipeline (every impairment kind active) must issue
// its verdict without touching the heap.
func TestApplyZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	p := MustNew(Plan{Seed: 2, Segments: []Segment{
		{Kind: KindLoss, Rate: 0.1},
		{Kind: KindGilbertElliott, PGoodBad: 0.05, PBadGood: 0.2, BadLoss: 1},
		{Kind: KindReorder, Rate: 0.1, DelayUs: 100},
		{Kind: KindDuplicate, Rate: 0.1, DelayUs: 10},
		{Kind: KindCorrupt, Rate: 0.1},
		{Kind: KindJitter, JitterUs: 50},
		{Kind: KindFlap, DownUs: 100, UpUs: 900},
	}})
	var now sim.Time
	if n := testing.AllocsPerRun(1000, func() {
		verdictSink = p.Apply(now)
		now++
	}); n != 0 {
		t.Errorf("Apply allocates %v per packet, want 0", n)
	}
}

var boolSink bool

// TestRxFaultZeroAllocs pins the NIC receive fault hook: it runs on
// every wire arrival, so it must not allocate.
func TestRxFaultZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	eng := sim.NewEngine()
	n := nic.New(eng, nic.Config{Name: "eth0"})
	h, err := InstallNIC(eng, n, nil, NICPlan{
		Seed:        3,
		RingOverrun: []RingFault{{Rate: 0.3}, {Rate: 0.1, Start: 0, End: 1 << 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(1000, func() {
		boolSink = h.rxFault()
	}); got != 0 {
		t.Errorf("rxFault allocates %v per packet, want 0", got)
	}
}
