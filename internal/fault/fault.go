// Package fault is the deterministic fault-injection subsystem: a
// scripted, seeded model of network and host impairments for probing how
// each receive architecture degrades under hostile or degraded input.
//
// The paper's central claim is stability under adversarial load; the
// related work (Wu et al. on packet reordering, COREC on driver-level
// robustness) shows that loss is only one of the ways real traffic
// misbehaves. This package scripts the rest: bursty (Gilbert–Elliott)
// loss, delay-based reordering, duplication, payload corruption, delay
// jitter, and scheduled link flaps, plus host-side faults at the NIC and
// mbuf layer (DMA-ring overruns, spurious interrupts, transient buffer
// pressure).
//
// Everything is declared up front in a serializable Plan — a timeline of
// impairment segments — and driven by sim.Rand streams forked from the
// plan seed, so a run is a pure function of (plan, workload): the same
// plan replays the same drops, delays and corruptions event for event.
// The netsim layer consults a compiled Pipeline per delivered packet;
// host faults install against a NIC via Attach.
package fault

import (
	"encoding/json"
	"fmt"

	"lrp/internal/sim"
)

// Impairment kinds. Each names one packet-level fault process; a Plan
// composes any number of them, each active over its own time window.
const (
	// KindLoss drops each packet independently with probability Rate
	// (Bernoulli loss — the model behind the legacy netsim.SetLoss).
	KindLoss = "loss"
	// KindGilbertElliott drops packets from a two-state Markov chain:
	// a good state losing GoodLoss of packets and a bad state losing
	// BadLoss, with per-packet transition probabilities PGoodBad and
	// PBadGood. This produces the bursty loss of fading links and
	// overflowing upstream queues.
	KindGilbertElliott = "ge-loss"
	// KindReorder holds each selected packet (probability Rate) back by
	// DelayUs beyond its normal arrival, letting later packets overtake
	// it — delay-based reordering, the mechanism Wu et al. study.
	KindReorder = "reorder"
	// KindDuplicate delivers each selected packet (probability Rate)
	// twice, the copy arriving DelayUs after the original.
	KindDuplicate = "duplicate"
	// KindCorrupt flips a payload byte of each selected packet
	// (probability Rate) so transport checksums fail after protocol
	// processing has been paid — the paper's "corrupted data packets"
	// overload source, generalized into a rate-controlled process.
	KindCorrupt = "corrupt"
	// KindJitter adds an independent uniform delay in [0, JitterUs] to
	// every packet.
	KindJitter = "jitter"
	// KindFlap takes the link down for DownUs then up for UpUs,
	// repeating; packets arriving during a down window are dropped.
	KindFlap = "flap"
)

// Kinds lists every pipeline impairment kind, in canonical order.
var Kinds = []string{
	KindLoss, KindGilbertElliott, KindReorder, KindDuplicate,
	KindCorrupt, KindJitter, KindFlap,
}

// Segment is one impairment active over [Start, End) of simulated time.
// End == 0 means "until the end of the run". Parameter fields not used
// by the segment's Kind are ignored (and should be zero).
type Segment struct {
	Kind  string   `json:"kind"`
	Start sim.Time `json:"start_us,omitempty"`
	End   sim.Time `json:"end_us,omitempty"`

	// Rate is the per-packet selection probability for loss, reorder,
	// duplicate and corrupt.
	Rate float64 `json:"rate,omitempty"`
	// DelayUs is the hold-back delay for reorder and the copy gap for
	// duplicate.
	DelayUs int64 `json:"delay_us,omitempty"`
	// JitterUs bounds the uniform per-packet delay for jitter.
	JitterUs int64 `json:"jitter_us,omitempty"`
	// Gilbert–Elliott parameters.
	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	GoodLoss float64 `json:"good_loss,omitempty"`
	BadLoss  float64 `json:"bad_loss,omitempty"`
	// Link-flap period: DownUs of outage followed by UpUs of service.
	DownUs int64 `json:"down_us,omitempty"`
	UpUs   int64 `json:"up_us,omitempty"`
}

// active reports whether the segment covers time t.
//
//lrp:hotpath
func (s *Segment) active(t sim.Time) bool {
	return t >= s.Start && (s.End == 0 || t < s.End)
}

// Plan is a scripted fault timeline: a seed plus a list of impairment
// segments. Plans are plain data — serializable, comparable, and
// reusable across runs; compile one into a live Pipeline with New.
type Plan struct {
	Seed     uint64    `json:"seed"`
	Segments []Segment `json:"segments"`
}

// probability validates one [0,1] parameter.
func probability(kind, name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("fault: %s segment: %s = %v outside [0, 1]", kind, name, v)
	}
	return nil
}

// Validate checks every segment for a known kind, sane windows, and
// in-range parameters.
func (p *Plan) Validate() error {
	for i := range p.Segments {
		s := &p.Segments[i]
		if s.Start < 0 || s.End < 0 || (s.End != 0 && s.End <= s.Start) {
			return fmt.Errorf("fault: segment %d (%s): window [%d, %d) is empty or negative", i, s.Kind, s.Start, s.End)
		}
		switch s.Kind {
		case KindLoss:
			if err := probability(s.Kind, "rate", s.Rate); err != nil {
				return err
			}
		case KindGilbertElliott:
			for _, pr := range []struct {
				name string
				v    float64
			}{
				{"p_good_bad", s.PGoodBad}, {"p_bad_good", s.PBadGood},
				{"good_loss", s.GoodLoss}, {"bad_loss", s.BadLoss},
			} {
				if err := probability(s.Kind, pr.name, pr.v); err != nil {
					return err
				}
			}
		case KindReorder, KindDuplicate:
			if err := probability(s.Kind, "rate", s.Rate); err != nil {
				return err
			}
			if s.DelayUs <= 0 {
				return fmt.Errorf("fault: %s segment %d: delay_us must be positive", s.Kind, i)
			}
		case KindCorrupt:
			if err := probability(s.Kind, "rate", s.Rate); err != nil {
				return err
			}
		case KindJitter:
			if s.JitterUs <= 0 {
				return fmt.Errorf("fault: jitter segment %d: jitter_us must be positive", i)
			}
		case KindFlap:
			if s.DownUs <= 0 || s.UpUs <= 0 {
				return fmt.Errorf("fault: flap segment %d: down_us and up_us must be positive", i)
			}
		default:
			return fmt.Errorf("fault: segment %d: unknown kind %q", i, s.Kind)
		}
	}
	return nil
}

// MarshalJSON gives the zero-segment plan a stable encoding (segments as
// [], never null) so plan diffs are meaningful.
func (p Plan) MarshalJSON() ([]byte, error) {
	type alias Plan // drop methods to avoid recursion
	a := alias(p)
	if a.Segments == nil {
		a.Segments = []Segment{}
	}
	return json.Marshal(a)
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// ---------------------------------------------------------------------------
// Plan builders for the common single-impairment cases. Each returns a
// whole-run plan (one segment, active from time zero onward).

// one wraps a single segment into a plan.
func one(seed uint64, s Segment) Plan { return Plan{Seed: seed, Segments: []Segment{s}} }

// LossPlan is uniform Bernoulli loss at rate.
func LossPlan(seed uint64, rate float64) Plan {
	return one(seed, Segment{Kind: KindLoss, Rate: rate})
}

// GilbertElliottPlan is bursty loss: the bad state loses every packet,
// the good state none; meanBurst sets the expected bad-state dwell in
// packets and avgLoss the long-run loss fraction.
func GilbertElliottPlan(seed uint64, avgLoss float64, meanBurst float64) Plan {
	if meanBurst < 1 {
		meanBurst = 1
	}
	pBadGood := 1 / meanBurst
	// Stationary bad-state share pi = pGB/(pGB+pBG); solve for pGB.
	var pGoodBad float64
	if avgLoss > 0 && avgLoss < 1 {
		pGoodBad = pBadGood * avgLoss / (1 - avgLoss)
	} else if avgLoss >= 1 {
		pGoodBad = 1
	}
	if pGoodBad > 1 {
		pGoodBad = 1
	}
	return one(seed, Segment{
		Kind:     KindGilbertElliott,
		PGoodBad: pGoodBad, PBadGood: pBadGood,
		GoodLoss: 0, BadLoss: 1,
	})
}

// ReorderPlan holds back rate of packets by delayUs.
func ReorderPlan(seed uint64, rate float64, delayUs int64) Plan {
	return one(seed, Segment{Kind: KindReorder, Rate: rate, DelayUs: delayUs})
}

// DuplicatePlan duplicates rate of packets, copies arriving delayUs later.
func DuplicatePlan(seed uint64, rate float64, delayUs int64) Plan {
	return one(seed, Segment{Kind: KindDuplicate, Rate: rate, DelayUs: delayUs})
}

// CorruptPlan flips a payload byte in rate of packets.
func CorruptPlan(seed uint64, rate float64) Plan {
	return one(seed, Segment{Kind: KindCorrupt, Rate: rate})
}

// JitterPlan delays every packet by an independent uniform [0, jitterUs].
func JitterPlan(seed uint64, jitterUs int64) Plan {
	return one(seed, Segment{Kind: KindJitter, JitterUs: jitterUs})
}

// FlapPlan cycles the link down for downUs, up for upUs.
func FlapPlan(seed uint64, downUs, upUs int64) Plan {
	return one(seed, Segment{Kind: KindFlap, DownUs: downUs, UpUs: upUs})
}
