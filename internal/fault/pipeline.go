package fault

import (
	"lrp/internal/sim"
	"lrp/internal/trace"
)

// Verdict is the pipeline's decision for one packet delivery. It is a
// plain value so the per-packet hot path allocates nothing.
type Verdict struct {
	// Drop: do not deliver the packet at all.
	Drop bool
	// ExtraDelayUs is added to the arrival time after normal link
	// serialization, so a delayed packet can genuinely be overtaken by
	// later ones (reordering, jitter).
	ExtraDelayUs int64
	// Duplicate: deliver a second copy, DupDelayUs after the original.
	Duplicate  bool
	DupDelayUs int64
	// Corrupt: flip a payload byte before delivery so the transport
	// checksum fails at the receiver.
	Corrupt bool
}

// Merge folds o into v, composing verdicts from stacked pipelines (the
// network-wide pipeline plus a per-port one): drops and corruption are
// sticky, delays add, and the later duplicate wins the copy gap.
//
//lrp:hotpath
func (v *Verdict) Merge(o Verdict) {
	v.Drop = v.Drop || o.Drop
	v.ExtraDelayUs += o.ExtraDelayUs
	if o.Duplicate {
		v.Duplicate = true
		v.DupDelayUs = o.DupDelayUs
	}
	v.Corrupt = v.Corrupt || o.Corrupt
}

// Stats counts what the pipeline did, by effect.
type Stats struct {
	Applied    uint64 // packets examined
	Dropped    uint64 // Bernoulli-loss drops
	BurstDrops uint64 // Gilbert–Elliott drops
	FlapDrops  uint64 // drops during link-down windows
	Reordered  uint64 // packets held back by a reorder stage
	Duplicated uint64 // packets scheduled for double delivery
	Corrupted  uint64 // packets marked for payload corruption
	Jittered   uint64 // packets given nonzero jitter delay
}

// stage is one compiled segment: its parameters plus a private rng
// stream and any running state (the Gilbert–Elliott chain position, the
// last observed flap phase for edge tracing).
type stage struct {
	seg  Segment
	rng  *sim.Rand
	bad  bool // Gilbert–Elliott: currently in the bad state
	down bool // flap: last observed link state was down
}

// Pipeline is a compiled Plan: an ordered list of live impairment
// stages. One pipeline serves one link direction (netsim installs them
// per destination port, or network-wide); it must not be shared across
// goroutines — like the rest of the simulation it is single-threaded by
// construction.
type Pipeline struct {
	stages []stage
	stats  Stats

	// Trace, when non-nil, receives KindFault events on rare edges
	// (Gilbert–Elliott state changes, link flap transitions) — never
	// per packet.
	Trace *trace.Log
}

// New compiles a plan into a live pipeline. Each segment gets an
// independent rng stream forked from the plan seed and the segment
// index, so editing one segment's parameters never perturbs the draws
// any other segment sees.
func New(plan Plan) (*Pipeline, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	base := sim.NewRand(plan.Seed)
	p := &Pipeline{stages: make([]stage, len(plan.Segments))}
	for i := range plan.Segments {
		p.stages[i] = stage{seg: plan.Segments[i], rng: base.Fork(uint64(i))}
	}
	return p, nil
}

// MustNew is New for static plans known to be valid (tests, builders).
func MustNew(plan Plan) *Pipeline {
	p, err := New(plan)
	if err != nil {
		panic(err)
	}
	return p
}

// NewBernoulli builds the one-stage pipeline behind the legacy
// netsim.SetLoss compatibility shim. Unlike New it adopts the
// caller-provided generator directly — legacy callers pass their own
// seeded rng and depend on the exact draw sequence (one Float64 per
// delivered packet), which forking would change.
func NewBernoulli(rate float64, rng *sim.Rand) *Pipeline {
	if rng == nil {
		rng = sim.NewRand(0x105e) // mirrors the historical SetLoss default
	}
	return &Pipeline{stages: []stage{{seg: Segment{Kind: KindLoss, Rate: rate}, rng: rng}}}
}

// Stats returns a copy of the pipeline's counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Apply runs every active stage against one packet delivery at time now
// and returns the combined verdict. Every active stage consumes its
// draws regardless of what earlier stages decided, so each stage's
// stream is a pure function of the arrival sequence — dropping a packet
// in one stage never shifts another stage's randomness.
//
//lrp:hotpath
func (p *Pipeline) Apply(now sim.Time) Verdict {
	var v Verdict
	p.stats.Applied++
	for i := range p.stages {
		st := &p.stages[i]
		if !st.seg.active(now) {
			continue
		}
		switch st.seg.Kind {
		case KindLoss:
			if st.seg.Rate > 0 && st.rng.Float64() < st.seg.Rate {
				v.Drop = true
				p.stats.Dropped++
			}
		case KindGilbertElliott:
			// Two draws per packet, always: a state-transition draw and
			// a loss draw. Constant draw count keeps the stream aligned
			// with the packet sequence whatever the chain does.
			t := st.rng.Float64()
			if st.bad {
				if t < st.seg.PBadGood {
					st.bad = false
					if p.Trace != nil {
						p.Trace.Add(trace.KindFault, "ge-loss: burst end") //lrp:coldalloc vararg boxing; only reached with tracing enabled
					}
				}
			} else if t < st.seg.PGoodBad {
				st.bad = true
				if p.Trace != nil {
					p.Trace.Add(trace.KindFault, "ge-loss: burst start") //lrp:coldalloc vararg boxing; only reached with tracing enabled
				}
			}
			loss := st.seg.GoodLoss
			if st.bad {
				loss = st.seg.BadLoss
			}
			if d := st.rng.Float64(); loss > 0 && d < loss {
				v.Drop = true
				p.stats.BurstDrops++
			}
		case KindReorder:
			if st.seg.Rate > 0 && st.rng.Float64() < st.seg.Rate {
				v.ExtraDelayUs += st.seg.DelayUs
				p.stats.Reordered++
			}
		case KindDuplicate:
			if st.seg.Rate > 0 && st.rng.Float64() < st.seg.Rate {
				v.Duplicate = true
				v.DupDelayUs = st.seg.DelayUs
				p.stats.Duplicated++
			}
		case KindCorrupt:
			if st.seg.Rate > 0 && st.rng.Float64() < st.seg.Rate {
				v.Corrupt = true
				p.stats.Corrupted++
			}
		case KindJitter:
			// Uniform integer delay in [0, JitterUs]; one draw per packet.
			if d := st.rng.Int63n(st.seg.JitterUs + 1); d > 0 {
				v.ExtraDelayUs += d
				p.stats.Jittered++
			}
		case KindFlap:
			// Pure clock arithmetic, no draws: position within the
			// down/up cycle decides the link state.
			phase := int64(now-st.seg.Start) % (st.seg.DownUs + st.seg.UpUs)
			down := phase < st.seg.DownUs
			if down != st.down {
				st.down = down
				if p.Trace != nil {
					if down {
						p.Trace.Add(trace.KindFault, "flap: link down") //lrp:coldalloc vararg boxing; only reached with tracing enabled
					} else {
						p.Trace.Add(trace.KindFault, "flap: link up") //lrp:coldalloc vararg boxing; only reached with tracing enabled
					}
				}
			}
			if down {
				v.Drop = true
				p.stats.FlapDrops++
			}
		}
	}
	return v
}
