// Package pop generates aggregated client populations: one stackless
// kernel proc per attach point statistically models thousands to
// millions of clients, instead of one process (let alone one goroutine)
// per client. The paper measured LRP with a handful of LAN clients; the
// architecture's claims are about internet server operation, where the
// offered load is the superposition of an enormous, churning client
// population — far past what per-client simulation can afford.
//
// The model is open-loop: clients do not wait for the server, so offered
// load does not back off when the server livelocks (exactly the regime
// where BSD collapses and LRP must not). Aggregate arrivals follow a
// Poisson process, optionally modulated by a two-state MMPP (calm/flash)
// for flash-crowd behaviour; request sizes are bounded Pareto
// (heavy-tailed, like measured web traffic); the active-client count
// churns over time. Every stochastic choice draws from its own forked
// RNG stream, so a population's packet trace is a pure function of its
// seed and config — byte-identical across runs and parallelism levels.
//
// Each modeled client has a synthetic identity (address in 172.16/12,
// stable source port) so the server-side demultiplexer sees a realistic
// flow population, but the traffic is injected at the attach point's
// netsim port and follows that port's routes through the topology.
package pop

import (
	"fmt"
	"math"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/mbuf"
	"lrp/internal/metrics"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

// MaxClients bounds the synthetic client identity space: 172.16/12
// holds 2^20 addresses the way clientAddr packs them.
const MaxClients = 1 << 20

// genPoolLimit bounds the generator's private buffer pool (see
// app.genPoolLimit: recycling efficiency, not correctness).
const genPoolLimit = 4096

// never is an event time that does not arrive.
const never = int64(1) << 62

// zeroPayload backs the all-zero payloads; copied from, never into.
var zeroPayload = make([]byte, 64*1024)

func zeros(n int) []byte {
	if n <= len(zeroPayload) {
		return zeroPayload[:n]
	}
	return make([]byte, n)
}

// Config parameterizes one aggregated population.
type Config struct {
	// Clients is the number of modeled clients behind this attach point.
	Clients int
	// RatePps is the aggregate request rate (packets/s) with every
	// client active and no flash modulation.
	RatePps float64

	// FlashFactor > 1 enables two-state MMPP modulation: in the flash
	// state the aggregate rate is multiplied by FlashFactor. Sojourn
	// times in each state are exponential with the given means (µs).
	FlashFactor float64
	CalmMeanUs  int64
	FlashMeanUs int64

	// Request sizes are bounded Pareto over [SizeMin, SizeMax] bytes
	// with tail index SizeAlpha (defaults 14, 1400, 1.3).
	SizeMin   int
	SizeMax   int
	SizeAlpha float64

	// ChurnPerSec > 0 enables connection churn: at exponentially spaced
	// events, ChurnBlock clients join or leave, with the active count
	// reflected into [MinActiveFrac*Clients, Clients] (default frac 0.5).
	ChurnPerSec   float64
	ChurnBlock    int
	MinActiveFrac float64

	// ClientBase offsets this population's client identities so
	// populations on different attach points do not share addresses.
	ClientBase int

	// Seed roots the population's forked RNG streams.
	Seed uint64
	// TTL of generated packets (default 64; must exceed the topology's
	// hop count).
	TTL byte
	// Coroutine hosts the proc on a goroutine instead of stepping it
	// stacklessly (the fallback execution mode).
	Coroutine bool
}

func (c Config) withDefaults() Config {
	if c.SizeMin <= 0 {
		c.SizeMin = 14
	}
	if c.SizeMax < c.SizeMin {
		c.SizeMax = 1400
		if c.SizeMax < c.SizeMin {
			c.SizeMax = c.SizeMin
		}
	}
	if c.SizeAlpha <= 0 {
		c.SizeAlpha = 1.3
	}
	if c.MinActiveFrac <= 0 || c.MinActiveFrac > 1 {
		c.MinActiveFrac = 0.5
	}
	if c.CalmMeanUs <= 0 {
		c.CalmMeanUs = 500 * sim.Millisecond
	}
	if c.FlashMeanUs <= 0 {
		c.FlashMeanUs = 100 * sim.Millisecond
	}
	if c.ChurnBlock <= 0 {
		c.ChurnBlock = c.Clients / 10
		if c.ChurnBlock < 1 {
			c.ChurnBlock = 1
		}
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	return c
}

// Population is one aggregated client population attached at an edge
// host: a single stackless proc emitting the whole population's traffic.
type Population struct {
	Host  *core.Host // attach-point host whose kernel runs the proc
	Net   *netsim.Network
	Src   pkt.Addr // attach-point address: injection observes its routes
	Dst   pkt.Addr // server under test
	DPort uint16
	Cfg   Config

	// OnSend, if set, observes every generated packet (test hook).
	OnSend func(src pkt.Addr, sport uint16, size int)

	Sent      metrics.Counter
	SentBytes metrics.Counter
	Proc      *kernel.Proc

	pool    *mbuf.Pool
	ipid    uint16
	stopped bool
}

// Start validates the config and spawns the population proc.
func (g *Population) Start() {
	cfg := g.Cfg.withDefaults()
	if cfg.Clients < 1 || cfg.RatePps <= 0 {
		panic(fmt.Sprintf("pop: population needs Clients >= 1 and RatePps > 0 (got %d, %g)", cfg.Clients, cfg.RatePps))
	}
	if cfg.ClientBase+cfg.Clients > MaxClients {
		panic(fmt.Sprintf("pop: client identities %d..%d exceed the %d-address space", cfg.ClientBase, cfg.ClientBase+cfg.Clients, MaxClients))
	}
	g.Cfg = cfg
	g.pool = mbuf.NewPool(genPoolLimit)

	// One forked stream per stochastic dimension: arrival gaps, request
	// sizes, client identity, churn, MMPP modulation. Forking (rather
	// than sharing one stream) keeps each dimension's sequence stable
	// when another dimension is reconfigured.
	root := sim.NewRand(cfg.Seed)
	arr := root.Fork(1)
	szr := root.Fork(2)
	cli := root.Fork(3)
	chn := root.Fork(4)
	mod := root.Fork(5)

	var (
		pc     int
		tNext  float64 // absolute next-arrival time, fractional µs
		tMod   = never
		tChurn = never
		flash  bool
	)
	active := cfg.Clients
	rate := func() float64 {
		r := cfg.RatePps * float64(active) / float64(cfg.Clients)
		if flash {
			r *= cfg.FlashFactor
		}
		return r
	}
	g.Proc = spawnStep(g.Host.K, "pop", 0, cfg.Coroutine, func(p *kernel.Proc) {
		for {
			if g.stopped {
				p.ReqExit()
				return
			}
			now := int64(p.Now())
			switch pc {
			case 0:
				tNext = float64(now) + expGap(arr, rate())
				if cfg.FlashFactor > 1 {
					tMod = now + mod.ExpDuration(cfg.CalmMeanUs)
				}
				if cfg.ChurnPerSec > 0 {
					tChurn = now + churnGap(chn, cfg.ChurnPerSec)
				}
				pc = 1
			case 1:
				// Apply due modulation and churn events, then thin the
				// pending arrival gap to the new rate (the standard MMPP
				// rescaling: the remaining exponential gap shrinks or
				// stretches by oldRate/newRate).
				old := rate()
				for tMod <= now {
					flash = !flash
					mean := cfg.CalmMeanUs
					if flash {
						mean = cfg.FlashMeanUs
					}
					tMod += mod.ExpDuration(mean)
				}
				for tChurn <= now {
					delta := cfg.ChurnBlock
					if chn.Float64() < 0.5 {
						delta = -delta
					}
					active += delta
					lo := int(cfg.MinActiveFrac * float64(cfg.Clients))
					if lo < 1 {
						lo = 1
					}
					if active < lo {
						active = lo
					}
					if active > cfg.Clients {
						active = cfg.Clients
					}
					tChurn += churnGap(chn, cfg.ChurnPerSec)
				}
				if nr := rate(); nr != old && tNext > float64(now) {
					tNext = float64(now) + (tNext-float64(now))*old/nr
				}
				for int64(tNext) <= now {
					g.sendOne(szr, cli, active)
					tNext += expGap(arr, rate())
				}
				d := int64(math.Ceil(tNext)) - now
				if t := tMod - now; t < d {
					d = t
				}
				if t := tChurn - now; t < d {
					d = t
				}
				if d < 1 {
					d = 1
				}
				if p.ReqDelay(d) {
					return
				}
			}
		}
	})
}

// Stop halts generation: the proc exits at its next wakeup.
func (g *Population) Stop() { g.stopped = true }

// sendOne emits one request from a uniformly chosen active client.
func (g *Population) sendOne(szr, cli *sim.Rand, active int) {
	c := g.Cfg.ClientBase + int(cli.Int63n(int64(active)))
	size := paretoSize(szr, g.Cfg.SizeMin, g.Cfg.SizeMax, g.Cfg.SizeAlpha)
	src := clientAddr(c)
	sport := uint16(1024 + c%60000)
	g.ipid++
	g.Sent.Inc()
	g.SentBytes.Addn(uint64(size))
	if g.OnSend != nil {
		g.OnSend(src, sport, size)
	}
	if m := g.pool.AllocBuf(pkt.UDPTotalLen(size)); m != nil {
		m.Data = pkt.AppendUDP(m.Data, src, g.Dst, sport, g.DPort, g.ipid, g.Cfg.TTL, zeros(size), true)
		g.Net.InjectMbufFrom(g.Src, m)
		return
	}
	g.Net.InjectFrom(g.Src, pkt.UDPPacket(src, g.Dst, sport, g.DPort, g.ipid, g.Cfg.TTL, make([]byte, size), true))
}

// clientAddr maps a client identity to its synthetic 172.16/12 address.
//
//lrp:hotpath per-packet on the generate path
func clientAddr(c int) pkt.Addr {
	return pkt.IP(172, 16+byte(c>>16), byte(c>>8), byte(c))
}

// expGap samples an exponential inter-arrival gap in fractional µs for
// an aggregate rate of ratePps, truncated at 20x the mean like
// sim.Rand.ExpDuration.
//
//lrp:hotpath per-packet on the generate path
func expGap(r *sim.Rand, ratePps float64) float64 {
	if ratePps <= 0 {
		return float64(never)
	}
	u := r.Float64()
	if u > 0.999999 {
		u = 0.999999
	}
	mean := 1e6 / ratePps
	g := -math.Log(1-u) * mean
	if g > 20*mean {
		g = 20 * mean
	}
	return g
}

// churnGap samples the exponential wait to the next churn event, µs.
func churnGap(r *sim.Rand, perSec float64) int64 {
	g := int64(expGap(r, perSec))
	if g < 1 {
		g = 1
	}
	return g
}

// paretoSize samples a bounded Pareto over [lo, hi] with tail index
// alpha by inverse-CDF.
//
//lrp:hotpath per-packet on the generate path
func paretoSize(r *sim.Rand, lo, hi int, alpha float64) int {
	if hi <= lo {
		return lo
	}
	u := r.Float64()
	l, h := float64(lo), float64(hi)
	x := l / math.Pow(1-u*(1-math.Pow(l/h, alpha)), 1/alpha)
	if x > h {
		x = h
	}
	if x < l {
		x = l
	}
	return int(x)
}

// spawnStep starts the proc in the requested execution mode (see
// app.spawnStep: same body, same request stream either way).
func spawnStep(k *kernel.Kernel, name string, nice int, coro bool, step kernel.StepFn) *kernel.Proc {
	if coro {
		return k.SpawnStepCoro(name, nice, step)
	}
	return k.SpawnStep(name, nice, step)
}
