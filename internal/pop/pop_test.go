package pop

import (
	"fmt"
	"math"
	"testing"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/topo"
)

// sendEvent is one generated packet, as observed by the OnSend hook.
type sendEvent struct {
	at    int64
	src   pkt.Addr
	sport uint16
	size  int
}

// runTrace builds a 3-link chain with a population on the edge and
// returns the packet trace after d of sim time.
func runTrace(cfg Config, coro bool, d int64) []sendEvent {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	spec := topo.Spec{
		Eng: eng,
		Net: nw,
		Make: func(name string, addr pkt.Addr) *core.Host {
			return core.NewHost(eng, nw, core.Config{Name: name, Addr: addr, Arch: core.ArchSoftLRP})
		},
	}
	t := topo.Chain(spec, 2)
	defer t.Shutdown()
	cfg.Coroutine = coro
	g := &Population{
		Host:  t.Edges[0],
		Net:   nw,
		Src:   t.Edges[0].Addr,
		Dst:   t.Server.Addr,
		DPort: 7,
		Cfg:   cfg,
	}
	var trace []sendEvent
	g.OnSend = func(src pkt.Addr, sport uint16, size int) {
		trace = append(trace, sendEvent{int64(eng.Now()), src, sport, size})
	}
	g.Start()
	eng.RunFor(d)
	return trace
}

func TestSameSeedSamePacketTrace(t *testing.T) {
	cfg := Config{
		Clients:     50_000,
		RatePps:     4000,
		FlashFactor: 4,
		CalmMeanUs:  200 * sim.Millisecond,
		FlashMeanUs: 50 * sim.Millisecond,
		ChurnPerSec: 20,
		Seed:        42,
	}
	a := runTrace(cfg, false, 2*sim.Second)
	b := runTrace(cfg, false, 2*sim.Second)
	if len(a) == 0 {
		t.Fatal("population generated nothing")
	}
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Fatalf("same seed produced different traces (%d vs %d events)", len(a), len(b))
	}
	// A different seed must not replay the same trace.
	cfg.Seed = 43
	c := runTrace(cfg, false, 2*sim.Second)
	if fmt.Sprintf("%v", a) == fmt.Sprintf("%v", c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCoroutineModeMatchesStackless(t *testing.T) {
	// The fallback goroutine execution mode must emit the identical
	// trace: the StepFn issues the same request stream either way.
	cfg := Config{Clients: 1000, RatePps: 3000, ChurnPerSec: 10, Seed: 7}
	a := runTrace(cfg, false, sim.Second)
	b := runTrace(cfg, true, sim.Second)
	if len(a) == 0 || fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Fatalf("stackless (%d events) and coroutine (%d events) traces differ", len(a), len(b))
	}
}

// boundedParetoMean is the analytic mean of the bounded Pareto on
// [l, h] with tail index a (a != 1).
func boundedParetoMean(l, h, a float64) float64 {
	num := math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1)
	return num * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

func TestArrivalAndSizeDistributions(t *testing.T) {
	// Long pure-Poisson run: empirical rate and size moments must match
	// the configured model within tolerance.
	cfg := Config{
		Clients:   100_000,
		RatePps:   5000,
		SizeMin:   14,
		SizeMax:   8000,
		SizeAlpha: 1.3,
		Seed:      1,
	}
	const dur = 20 * sim.Second
	trace := runTrace(cfg, false, dur)
	n := len(trace)
	want := cfg.RatePps * float64(dur) / 1e6
	if math.Abs(float64(n)-want) > 0.05*want {
		t.Fatalf("generated %d packets in %ds, want %.0f ± 5%%", n, dur/sim.Second, want)
	}

	// Inter-arrival gaps: an exponential's mean and standard deviation
	// are equal; both must land near 1/rate.
	meanGap := float64(trace[n-1].at-trace[0].at) / float64(n-1)
	wantGap := 1e6 / cfg.RatePps
	if math.Abs(meanGap-wantGap) > 0.05*wantGap {
		t.Fatalf("mean gap %.1fµs, want %.1f ± 5%%", meanGap, wantGap)
	}
	var ss float64
	for i := 1; i < n; i++ {
		d := float64(trace[i].at-trace[i-1].at) - meanGap
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-2))
	if math.Abs(sd-wantGap) > 0.10*wantGap {
		t.Fatalf("gap stddev %.1fµs, want %.1f ± 10%% (Poisson gaps are exponential)", sd, wantGap)
	}

	// Sizes: empirical mean vs the analytic bounded-Pareto mean, and the
	// bounds must hold with the tail actually exercised.
	var sum float64
	maxSeen := 0
	for _, e := range trace {
		if e.size < cfg.SizeMin || e.size > cfg.SizeMax {
			t.Fatalf("size %d outside [%d, %d]", e.size, cfg.SizeMin, cfg.SizeMax)
		}
		if e.size > maxSeen {
			maxSeen = e.size
		}
		sum += float64(e.size)
	}
	meanSize := sum / float64(n)
	wantSize := boundedParetoMean(float64(cfg.SizeMin), float64(cfg.SizeMax), cfg.SizeAlpha)
	if math.Abs(meanSize-wantSize) > 0.05*wantSize {
		t.Fatalf("mean size %.1fB, want %.1f ± 5%%", meanSize, wantSize)
	}
	if maxSeen < cfg.SizeMax/2 {
		t.Fatalf("heavy tail unexercised: max size %d over %d samples", maxSeen, n)
	}
}

func TestFlashCrowdRaisesRate(t *testing.T) {
	base := Config{Clients: 10_000, RatePps: 2000, Seed: 5}
	calm := len(runTrace(base, false, 5*sim.Second))
	flashy := base
	flashy.FlashFactor = 8
	flashy.CalmMeanUs = 100 * sim.Millisecond
	flashy.FlashMeanUs = 100 * sim.Millisecond
	hot := len(runTrace(flashy, false, 5*sim.Second))
	// Expected long-run rate with equal sojourns: (1+8)/2 = 4.5x calm.
	if hot < calm*2 {
		t.Fatalf("flash-crowd modulation raised %d calm packets only to %d", calm, hot)
	}
}

func TestClientIdentitiesSpanPopulation(t *testing.T) {
	cfg := Config{Clients: 200_000, RatePps: 10_000, ClientBase: 100_000, Seed: 3}
	trace := runTrace(cfg, false, 2*sim.Second)
	distinct := make(map[pkt.Addr]bool)
	for _, e := range trace {
		distinct[e.src] = true
	}
	// ~20k draws from 200k clients: birthday math says the overwhelming
	// majority are distinct.
	if len(distinct) < len(trace)*9/10 {
		t.Fatalf("%d sends map to only %d distinct client addresses", len(trace), len(distinct))
	}
}

func TestSessionChurnCompletesOverChain(t *testing.T) {
	// Real TCP sessions from the edge must cross the forwarding chain in
	// both directions (SYN out, SYN-ACK back, data, FINs).
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	spec := topo.Spec{
		Eng: eng,
		Net: nw,
		Make: func(name string, addr pkt.Addr) *core.Host {
			return core.NewHost(eng, nw, core.Config{Name: name, Addr: addr, Arch: core.ArchSoftLRP})
		},
	}
	tp := topo.Chain(spec, 2)
	defer tp.Shutdown()
	srv := &app.HTTPServer{Host: tp.Server, Port: 80}
	srv.Start()
	churn := &SessionChurn{
		Host:       tp.Edges[0],
		ServerAddr: tp.Server.Addr,
		ServerPort: 80,
		Seed:       9,
	}
	churn.Start()
	eng.RunFor(3 * sim.Second)
	if churn.Completed.Total() == 0 {
		t.Fatalf("no TCP sessions completed across the chain (failures=%d, served=%d)",
			churn.Failures.Total(), srv.Served.Total())
	}
	if tp.Gateways[0].ForwardStats().Forwarded == 0 || tp.Gateways[1].ForwardStats().Forwarded == 0 {
		t.Fatal("TCP traffic bypassed the chain gateways")
	}
}
