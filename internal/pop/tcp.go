package pop

// TCP connection churn: where the UDP population is pure open-loop
// offered load, SessionChurn models the stream of short-lived TCP
// sessions an attach point contributes — each cycle is one modeled
// client's connection: handshake, a heavy-tailed request, read to EOF,
// close, then an exponential think gap before the next client's session.
// Every connection uses a fresh socket (fresh ephemeral port), so the
// server's PCB and listen-queue machinery sees real setup/teardown
// churn, not one long-lived flow.

import (
	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/metrics"
	"lrp/internal/pkt"
	"lrp/internal/sim"
	"lrp/internal/socket"
)

// SessionChurn runs cycling TCP sessions from an attach-point host
// through the topology to the server.
type SessionChurn struct {
	Host       *core.Host
	ServerAddr pkt.Addr
	ServerPort uint16
	// ThinkMeanUs is the mean exponential gap between sessions (µs);
	// default 10ms.
	ThinkMeanUs int64
	// Request sizes are bounded Pareto (defaults as pop.Config).
	SizeMin   int
	SizeMax   int
	SizeAlpha float64
	Seed      uint64
	// Coroutine hosts the proc on a goroutine (fallback execution mode).
	Coroutine bool

	Completed metrics.Counter
	Failures  metrics.Counter
	Proc      *kernel.Proc

	stopped bool
}

// Session machine states.
const (
	scThink = iota
	scConn
	scSend
	scRecv
	scClose
)

// Start spawns the churn proc.
func (c *SessionChurn) Start() {
	if c.ThinkMeanUs <= 0 {
		c.ThinkMeanUs = 10 * sim.Millisecond
	}
	if c.SizeMin <= 0 {
		c.SizeMin = 64
	}
	if c.SizeMax < c.SizeMin {
		c.SizeMax = 4096
	}
	if c.SizeAlpha <= 0 {
		c.SizeAlpha = 1.3
	}
	root := sim.NewRand(c.Seed)
	think := root.Fork(1)
	szr := root.Fork(2)
	var (
		pc   int
		sck  *socket.Socket
		ok   bool
		conn core.ConnectTCPOp
		ss   core.SendStreamOp
		rs   core.RecvStreamOp
		cl   core.CloseTCPOp
	)
	fail := func(p *kernel.Proc) bool {
		c.Host.AbortTCP(nil, sck)
		c.Failures.Inc()
		pc = scThink
		return p.ReqDelay(think.ExpDuration(c.ThinkMeanUs))
	}
	c.Proc = spawnStep(c.Host.K, "pop-tcp", 0, c.Coroutine, func(p *kernel.Proc) {
		// The body is a pure `for { switch pc }` machine so the stepreq
		// analyzer partitions its state per arm; the stop check lives in
		// scThink, the only arm every session cycles through.
		for {
			switch pc {
			case scThink:
				if c.stopped {
					p.ReqExit()
					return
				}
				sck = c.Host.NewTCPSocket(p)
				ok = false
				conn = core.ConnectTCPOp{}
				pc = scConn
				if p.ReqDelay(think.ExpDuration(c.ThinkMeanUs)) {
					return
				}
			case scConn:
				if !c.Host.ConnectTCPStep(p, sck, c.ServerAddr, c.ServerPort, &conn) {
					return
				}
				if conn.Err != nil {
					if fail(p) {
						return
					}
					continue
				}
				ss = core.SendStreamOp{Data: zeros(paretoSize(szr, c.SizeMin, c.SizeMax, c.SizeAlpha))}
				pc = scSend
			case scSend:
				if !c.Host.SendStreamStep(p, sck, &ss) {
					return
				}
				if ss.Err != nil {
					if fail(p) {
						return
					}
					continue
				}
				rs = core.RecvStreamOp{}
				pc = scRecv
			case scRecv:
				if !c.Host.RecvStreamStep(p, sck, 16*1024, &rs) {
					return
				}
				if rs.Err != nil {
					if fail(p) {
						return
					}
					continue
				}
				if rs.Data == nil { // EOF
					cl = core.CloseTCPOp{}
					pc = scClose
					continue
				}
				if len(rs.Data) > 0 {
					ok = true
				}
				rs = core.RecvStreamOp{}
			case scClose:
				if !c.Host.CloseTCPStep(p, sck, &cl) {
					return
				}
				if ok {
					c.Completed.Inc()
				} else {
					c.Failures.Inc()
				}
				pc = scThink
			}
		}
	})
}

// Stop halts the churn: the proc exits before starting its next
// session (a session already in flight runs to completion).
func (c *SessionChurn) Stop() { c.stopped = true }
